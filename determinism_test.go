package specwise

import (
	"math"
	"testing"
)

// determinismOpts is small enough to keep the test quick but still runs
// the full pipeline: worst-case searches, linearization, coordinate
// search, line search and Monte-Carlo verification.
var determinismOpts = Options{
	ModelSamples:  2000,
	VerifySamples: 80,
	MaxIterations: 1,
	Seed:          11,
}

// runConfig optimizes p under opts and returns the per-iteration yields
// and final design for bitwise comparison.
func runConfig(t *testing.T, p *Problem, opts Options) ([]float64, []float64, []float64) {
	t.Helper()
	res, err := Optimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	var my, mc []float64
	for _, it := range res.Iterations {
		my = append(my, it.ModelYield)
		mc = append(mc, it.MCYield)
	}
	return my, mc, res.FinalDesign
}

// sameBits compares float slices for exact bit equality (NaN == NaN).
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func checkIdentical(t *testing.T, label string, p *Problem, base, alt Options) {
	t.Helper()
	my0, mc0, d0 := runConfig(t, p, base)
	my1, mc1, d1 := runConfig(t, p, alt)
	if !sameBits(my0, my1) {
		t.Errorf("%s: model yields differ: %v vs %v", label, my0, my1)
	}
	if !sameBits(mc0, mc1) {
		t.Errorf("%s: MC yields differ: %v vs %v", label, mc0, mc1)
	}
	if !sameBits(d0, d1) {
		t.Errorf("%s: final designs differ: %v vs %v", label, d0, d1)
	}
}

// TestEvalCacheDeterminismOTA checks the tentpole invariant: memoizing
// evaluations must not change a single bit of the optimizer's output.
// The cache keys on exact IEEE-754 bit patterns and the DC warm start
// solves from a fixed reference operating point, so cache-on and
// cache-off runs follow identical trajectories.
func TestEvalCacheDeterminismOTA(t *testing.T) {
	off := determinismOpts
	off.NoEvalCache = true
	checkIdentical(t, "ota cache on/off", OTA(), determinismOpts, off)
}

func TestEvalCacheDeterminismMiller(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: OTA covers the cache invariant")
	}
	off := determinismOpts
	off.NoEvalCache = true
	checkIdentical(t, "miller cache on/off", Miller(), determinismOpts, off)
}

// TestParallelGradientDeterminism checks that the parallel
// finite-difference gradient assembles bit-identical vectors regardless
// of worker count: every probe is an independent simulation and the
// components are stored by index, so scheduling order cannot leak into
// the result.
func TestParallelGradientDeterminism(t *testing.T) {
	serial := determinismOpts
	serial.WC.GradWorkers = 1
	par := determinismOpts
	par.WC.GradWorkers = 4
	checkIdentical(t, "ota grad serial/parallel", OTA(), serial, par)
}

// TestWorkerKnobDeterminism checks the two remaining worker knobs the
// same way: the Monte-Carlo verification pool and the per-frequency
// AC-sweep fan-out must not change a single bit of the optimizer's
// output — scheduling order never leaks because every sample and every
// frequency point writes its result by index.
func TestWorkerKnobDeterminism(t *testing.T) {
	serial := determinismOpts
	serial.VerifyWorkers = 1
	serial.SweepWorkers = 1
	par := determinismOpts
	par.VerifyWorkers = 5
	par.SweepWorkers = 4
	checkIdentical(t, "ota verify/sweep workers", OTA(), serial, par)
}

// TestSpeculationDeterminismOTA checks the predict-ahead pipeline the
// same way as every other worker knob: pre-running the predicted next
// step's simulations must not change a single bit of the trajectory.
// Speculative results only ever enter through the evaluation cache and
// are claimed (never recomputed) by the authoritative pass, so the
// numbers the optimizer sees are the same IEEE-754 words either way.
func TestSpeculationDeterminismOTA(t *testing.T) {
	spec := determinismOpts
	spec.Speculate = true
	spec.SpecWorkers = 4
	checkIdentical(t, "ota speculate on/off", OTA(), determinismOpts, spec)
}

// TestSpeculationDeterminismCEM covers the population speculator: the
// cem backend predicts its next population from a forked RNG without
// advancing the authoritative stream, so speculation must be invisible
// there too.
func TestSpeculationDeterminismCEM(t *testing.T) {
	base := determinismOpts
	base.Algorithm = "cem"
	spec := base
	spec.Speculate = true
	spec.SpecWorkers = 4
	checkIdentical(t, "ota cem speculate on/off", OTA(), base, spec)
}

// TestSpeculationSimulationCount pins the accounting half of the
// determinism contract: a speculating run reports exactly the simulation
// count of a non-speculating run (speculative computes are claimed, not
// double-counted), while still reporting its own speculation effort.
func TestSpeculationSimulationCount(t *testing.T) {
	base, err := Optimize(OTA(), determinismOpts)
	if err != nil {
		t.Fatal(err)
	}
	opts := determinismOpts
	opts.Speculate = true
	opts.SpecWorkers = 4
	spec, err := Optimize(OTA(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Simulations != spec.Simulations {
		t.Errorf("simulations counter moved: %d without speculation, %d with",
			base.Simulations, spec.Simulations)
	}
	if base.ConstraintSims != spec.ConstraintSims {
		t.Errorf("constraint sims moved: %d vs %d", base.ConstraintSims, spec.ConstraintSims)
	}
	if spec.Speculation.Claims > spec.Speculation.Computes {
		t.Errorf("claims %d > computes %d", spec.Speculation.Claims, spec.Speculation.Computes)
	}
	if base.Speculation.Computes != 0 || base.Speculation.Predicted != 0 {
		t.Errorf("non-speculating run reports speculation effort: %+v", base.Speculation)
	}
}
