// Command mismatch runs the paper's Sec.-3 mismatch analysis on one of the
// built-in benchmark circuits: per specification, the worst-case
// statistical point is located and all like-kind device-pair measures
// (Eq. 9) are ranked.
//
// Usage:
//
//	mismatch -circuit foldedcascode|miller|ota [-top N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"specwise"
	"specwise/internal/yieldspec"
)

func main() {
	circuit := flag.String("circuit", "foldedcascode", "circuit: "+strings.Join(specwise.Circuits(), ", "))
	specFile := flag.String("spec", "", "analyze a JSON+netlist-defined problem instead")
	top := flag.Int("top", 3, "pairs to list in the overall ranking")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	var p *specwise.Problem
	if *specFile != "" {
		var err error
		p, err = yieldspec.Load(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		var err error
		p, err = specwise.Circuit(*circuit)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	reports, err := specwise.AnalyzeMismatch(p, p.InitialDesign(), *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analysis failed: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("Per-spec mismatch measures for %s at the initial design:\n\n", p.Name)
	for _, r := range reports {
		fmt.Printf("spec %-6s (worst-case distance beta = %+.2f)\n", r.Spec, r.Beta)
		shown := 0
		for _, pm := range r.Pairs {
			if pm.Value <= 0 || shown >= *top {
				break
			}
			fmt.Printf("    %-12s / %-12s  m = %.3f\n", pm.ParamK, pm.ParamL, pm.Value)
			shown++
		}
		if shown == 0 {
			fmt.Println("    (no mismatch-sensitive pairs)")
		}
	}

	fmt.Printf("\nOverall ranking (paper Table-5 style):\n")
	for i, f := range specwise.TopPairs(reports, *top) {
		fmt.Printf("P%d: %-6s %-12s / %-12s  m = %.3f\n", i+1, f.Spec, f.ParamK, f.ParamL, f.Value)
	}
}
