// Command benchreport parses `go test -bench` output on stdin and writes
// a machine-readable JSON summary, one record per benchmark, to the file
// named by -o (default BENCH_core.json). It understands the standard
// testing-package metrics (ns/op, B/op, allocs/op) and the custom
// per-benchmark metrics this repo reports (simulations, final-yield-%).
//
// Usage:
//
//	go test -run xxx -bench 'Table[16]' -benchtime 1x -benchmem . | benchreport -o BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result.
type Entry struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"` // unit → value (e.g. "ns/op")
}

// Report is the full output document.
type Report struct {
	// Note is free-form context (baseline commit, machine, flags).
	Note string `json:"note,omitempty"`
	// Baseline holds reference numbers parsed from -baseline, so a
	// committed report carries its before/after comparison.
	Baseline   []Entry `json:"baseline,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output JSON file")
	note := flag.String("note", "", "free-form context recorded in the report")
	baseline := flag.String("baseline", "", "raw `go test -bench` output file parsed into the baseline section")
	compare := flag.String("compare", "", "reference file (raw bench output or a benchreport JSON); exit nonzero when any shared benchmark regresses in ns/op beyond -threshold")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional ns/op regression for -compare (0.20 = 20%)")
	flag.Parse()

	rep := Report{Note: *note}
	if *baseline != "" {
		entries, err := parseFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		rep.Baseline = entries
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the terminal
		if e, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)

	if *compare != "" {
		ref, err := parseReference(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		if regressed := compareRuns(os.Stderr, rep.Benchmarks, ref, *threshold); regressed {
			os.Exit(2)
		}
	}
}

// parseReference loads comparison entries from either a benchreport JSON
// document (its benchmarks section) or raw `go test -bench` output,
// sniffing the format from the first non-space byte.
func parseReference(path string) ([]Entry, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(buf))
	if strings.HasPrefix(trimmed, "{") {
		var rep Report
		if err := json.Unmarshal(buf, &rep); err != nil {
			return nil, fmt.Errorf("parsing %s as benchreport JSON: %w", path, err)
		}
		if len(rep.Benchmarks) == 0 {
			return nil, fmt.Errorf("no benchmarks in %s", path)
		}
		return rep.Benchmarks, nil
	}
	return parseFile(path)
}

// benchKey normalizes a benchmark name for cross-machine comparison by
// dropping the -N GOMAXPROCS suffix the testing package appends.
func benchKey(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compareRuns checks every current benchmark that also appears in ref:
// an ns/op increase beyond the threshold fraction is a regression. It
// reports true when any benchmark regressed.
func compareRuns(w io.Writer, cur, ref []Entry, threshold float64) bool {
	refNs := make(map[string]float64, len(ref))
	for _, e := range ref {
		if ns, ok := e.Metrics["ns/op"]; ok {
			refNs[benchKey(e.Name)] = ns
		}
	}
	regressed := false
	compared := 0
	for _, e := range cur {
		ns, ok := e.Metrics["ns/op"]
		if !ok {
			continue
		}
		base, ok := refNs[benchKey(e.Name)]
		if !ok || base <= 0 {
			continue
		}
		compared++
		delta := ns/base - 1
		status := "ok"
		if delta > threshold {
			status = "REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "benchreport: compare %-40s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			benchKey(e.Name), base, ns, delta*100, status)
	}
	if compared == 0 {
		fmt.Fprintln(w, "benchreport: compare found no overlapping benchmarks with ns/op")
		return true
	}
	return regressed
}

// parseFile extracts every benchmark line from a raw bench-output file.
func parseFile(path string) ([]Entry, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	for _, line := range strings.Split(string(buf), "\n") {
		if e, ok := parseLine(line); ok {
			entries = append(entries, e)
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no benchmark lines in %s", path)
	}
	return entries, nil
}

// parseLine decodes one `Benchmark...  N  <value> <unit> ...` line. The
// testing package emits value/unit pairs after the run count; custom
// ReportMetric units keep the same shape.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, len(e.Metrics) > 0
}
