// Command benchreport parses `go test -bench` output on stdin and writes
// a machine-readable JSON summary, one record per benchmark, to the file
// named by -o (default BENCH_core.json). It understands the standard
// testing-package metrics (ns/op, B/op, allocs/op) and the custom
// per-benchmark metrics this repo reports (simulations, final-yield-%).
//
// Usage:
//
//	go test -run xxx -bench 'Table[16]' -benchtime 1x -benchmem . | benchreport -o BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result.
type Entry struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"` // unit → value (e.g. "ns/op")
}

// Report is the full output document.
type Report struct {
	// Note is free-form context (baseline commit, machine, flags).
	Note string `json:"note,omitempty"`
	// Baseline holds reference numbers parsed from -baseline, so a
	// committed report carries its before/after comparison.
	Baseline   []Entry `json:"baseline,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output JSON file")
	note := flag.String("note", "", "free-form context recorded in the report")
	baseline := flag.String("baseline", "", "raw `go test -bench` output file parsed into the baseline section")
	flag.Parse()

	rep := Report{Note: *note}
	if *baseline != "" {
		entries, err := parseFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		rep.Baseline = entries
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the terminal
		if e, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parseFile extracts every benchmark line from a raw bench-output file.
func parseFile(path string) ([]Entry, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	for _, line := range strings.Split(string(buf), "\n") {
		if e, ok := parseLine(line); ok {
			entries = append(entries, e)
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no benchmark lines in %s", path)
	}
	return entries, nil
}

// parseLine decodes one `Benchmark...  N  <value> <unit> ...` line. The
// testing package emits value/unit pairs after the run count; custom
// ReportMetric units keep the same shape.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, len(e.Metrics) > 0
}
