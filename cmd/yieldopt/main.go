// Command yieldopt runs the spec-wise-linearization yield optimizer on one
// of the built-in benchmark circuits and prints the optimization trace.
//
// Usage:
//
//	yieldopt -circuit foldedcascode|miller|ota [-algorithm name] [-iters N]
//	         [-samples N] [-verify N] [-seed N] [-no-constraints] [-nominal] [-v]
//	yieldopt -spec problem.json [...]
//
// With -spec, the problem is built from a JSON + netlist definition (see
// internal/yieldspec) instead of a built-in circuit. The -no-constraints
// and -nominal flags reproduce the paper's Table-3 and Table-4 ablations
// on any circuit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"specwise"
	"specwise/internal/report"
	"specwise/internal/yieldspec"
)

func main() {
	circuit := flag.String("circuit", "ota", "circuit: "+strings.Join(specwise.Circuits(), ", "))
	specFile := flag.String("spec", "", "build the problem from a JSON+netlist definition instead")
	algorithm := flag.String("algorithm", "", "search backend: "+strings.Join(specwise.Algorithms(), ", ")+" (default feasguided)")
	iters := flag.Int("iters", 3, "maximum accepted optimization iterations")
	samples := flag.Int("samples", 10000, "Monte-Carlo samples over the linear models")
	verify := flag.Int("verify", 300, "simulation-based verification samples")
	seed := flag.Uint64("seed", 1, "random seed")
	noConstraints := flag.Bool("no-constraints", false, "disable functional constraints (Table-3 ablation)")
	nominal := flag.Bool("nominal", false, "linearize at the nominal point (Table-4 ablation)")
	quadratic := flag.Bool("quadratic", false, "radial-quadratic models for quadratic specs (extension)")
	lhs := flag.Bool("lhs", false, "Latin-hypercube model sampling (extension)")
	refineTheta := flag.Int("refine-theta", 0, "golden-section worst-case-theta refinement passes (extension)")
	verbose := flag.Bool("v", false, "log optimizer progress to stderr")
	flag.Parse()

	var p *specwise.Problem
	if *specFile != "" {
		var err error
		p, err = yieldspec.Load(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		var err error
		p, err = specwise.Circuit(*circuit)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	fmt.Print(specwise.DescribeProblem(p))
	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	res, err := specwise.Optimize(p, specwise.Options{
		Algorithm:          *algorithm,
		ModelSamples:       *samples,
		VerifySamples:      *verify,
		MaxIterations:      *iters,
		Seed:               *seed,
		NoConstraints:      *noConstraints,
		LinearizeAtNominal: *nominal,
		QuadraticSpecs:     *quadratic,
		LHS:                *lhs,
		RefineThetaPasses:  *refineTheta,
		Log:                log,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "optimization failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	report.OptimizationTrace(os.Stdout, res)
}
