// Command specwise-worker is a remote pull-worker for the specwised
// yield-optimization service: it polls a specwised instance over the
// /v1/worker lease protocol, runs claimed jobs with the same optimizer
// machinery the daemon's in-process pool uses (results are
// bit-identical whichever pool runs a job), heartbeats its leases, and
// reports back with exponential backoff on transient HTTP errors.
//
// The paper farmed its verification Monte-Carlo out to five machines;
// this is that shape: one specwised (possibly -remote-only) front end,
// N specwise-worker processes wherever there are spare cores.
//
// Usage:
//
//	specwise-worker -server http://daemon:8080 [-token T] [-name host-1] \
//	    [-lane verify|optimize] [-poll 500ms] [-verify-workers N] \
//	    [-sweep-workers N] [-speculate] [-spec-workers N] [-max-jobs N]
//
// The worker exits on SIGINT/SIGTERM (in-flight leases are dropped and
// requeue on the daemon after the lease TTL), after -max-jobs jobs, or
// on a fatal protocol error such as a rejected token.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specwise/internal/jobs"
	"specwise/internal/search"
	"specwise/internal/worker"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "base URL of the specwised instance")
	token := flag.String("token", "", "worker bearer token (matching specwised -worker-token)")
	name := flag.String("name", "", "worker name for leases and per-shard metrics (default hostname-pid)")
	lane := flag.String("lane", "",
		"claim only this priority lane (verify|optimize; empty = any lane under the server's weighted round-robin)")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle wait between claim attempts")
	verifyWorkers := flag.Int("verify-workers", 0,
		"Monte-Carlo verification pool per job (0 = GOMAXPROCS; bit-identical results for any value)")
	sweepWorkers := flag.Int("sweep-workers", 0,
		"per-frequency AC-sweep fan-out per job (0 = GOMAXPROCS; bit-identical results for any value)")
	speculate := flag.Bool("speculate", false,
		"predict-ahead evaluation for claimed optimize jobs that omit options.speculate; an explicit options.speculate=false opts out (bit-identical results and simulation counts)")
	specWorkers := flag.Int("spec-workers", 0,
		"speculation pool per job (0 = GOMAXPROCS; requires -speculate or options.speculate)")
	maxJobs := flag.Int("max-jobs", 0, "exit after this many executed jobs (0 = run forever)")
	sharedEvalCache := flag.Bool("shared-eval-cache", false,
		"share one local evaluation cache across jobs claimed on the same problem (bit-identical results)")
	evalCacheSize := flag.Int("eval-cache-size", 0,
		"shared evaluation-cache capacity in entries (0 = default; requires -shared-eval-cache)")
	listAlgorithms := flag.Bool("list-algorithms", false,
		"print the search backends this worker can execute and exit")
	flag.Parse()

	if *listAlgorithms {
		for _, algo := range search.Names() {
			fmt.Println(algo)
		}
		return
	}

	if *lane != "" && !jobs.ValidLane(*lane) {
		fmt.Fprintf(os.Stderr, "specwise-worker: unknown -lane %q (want verify or optimize)\n", *lane)
		os.Exit(2)
	}

	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("specwise-worker %s polling %s", *name, *server)
	err := worker.Run(ctx, worker.Config{
		Server:          *server,
		Token:           *token,
		Name:            *name,
		Lane:            *lane,
		Poll:            *poll,
		VerifyWorkers:   *verifyWorkers,
		SweepWorkers:    *sweepWorkers,
		Speculate:       *speculate,
		SpecWorkers:     *specWorkers,
		MaxJobs:         *maxJobs,
		SharedEvalCache: *sharedEvalCache,
		EvalCacheSize:   *evalCacheSize,
		Logf:            log.Printf,
	})
	switch {
	case err == nil || errors.Is(err, context.Canceled):
		log.Printf("specwise-worker %s exiting", *name)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
