package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"specwise/internal/jobs"
	"specwise/internal/server"
	"specwise/internal/worker"
)

// TestWorkerSmoke is the `make workersmoke` target: one remote-only
// specwised manager behind httptest, one pull-worker with -max-jobs 1
// semantics, one OTA verify job end to end.
func TestWorkerSmoke(t *testing.T) {
	m := jobs.New(jobs.Config{RemoteOnly: true, LeaseTTL: 10 * time.Second})
	defer m.Close()
	ts := httptest.NewServer(server.New(m, server.WithWorkerToken("smoke")))
	defer ts.Close()

	opts := jobs.RunOptions{VerifySamples: 30, Seed: jobs.Seed(11)}
	job, err := m.Submit(jobs.Request{Kind: jobs.KindVerify, Circuit: "ota", Options: opts})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err = worker.Run(ctx, worker.Config{
		Server:  ts.URL,
		Token:   "smoke",
		Name:    "smoke-1",
		Poll:    10 * time.Millisecond,
		Backoff: 10 * time.Millisecond,
		MaxJobs: 1,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("worker.Run: %v", err)
	}

	if st := job.Status(); st.State != jobs.StateDone || st.Worker != "smoke-1" {
		t.Fatalf("job after smoke run: %+v", st)
	}
	res, ok := job.Result()
	if !ok || res.Verification == nil || res.Verification.Samples != 30 {
		t.Fatalf("bad verification payload: %+v", res)
	}
}

// TestBatchSmoke is the `make batchsmoke` target: an 8-member OTA seed
// sweep submitted as one batch to a remote-only daemon, drained by a
// single pull-worker running its process-local shared evaluation cache.
// The pinned wcSeed makes the members' worst-case searches probe
// identical points, so later members must hit entries earlier members
// stored — the batch effort rollup has to show cross-job cache hits.
func TestBatchSmoke(t *testing.T) {
	m := jobs.New(jobs.Config{RemoteOnly: true, LeaseTTL: 30 * time.Second})
	defer m.Close()
	ts := httptest.NewServer(server.New(m, server.WithWorkerToken("smoke")))
	defer ts.Close()

	reqs := make([]jobs.Request, 8)
	for i := range reqs {
		reqs[i] = jobs.Request{
			Kind:    jobs.KindOptimize,
			Circuit: "ota",
			Options: jobs.RunOptions{
				ModelSamples:  500,
				VerifySamples: 30,
				MaxIterations: 1,
				Seed:          jobs.Seed(uint64(i + 1)),
				WCSeed:        jobs.Seed(7),
			},
		}
	}
	batch, err := m.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	err = worker.Run(ctx, worker.Config{
		Server:          ts.URL,
		Token:           "smoke",
		Name:            "smoke-batch",
		Poll:            10 * time.Millisecond,
		Backoff:         10 * time.Millisecond,
		MaxJobs:         8,
		SharedEvalCache: true,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("worker.Run: %v", err)
	}

	st, err := m.BatchStatus(batch.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != jobs.StateDone || st.Done != 8 {
		t.Fatalf("batch after smoke run: %+v", st)
	}
	if st.Effort.EvalCacheCrossHits <= 0 {
		t.Fatalf("no cross-job cache hits in effort rollup: %+v", st.Effort)
	}
	t.Logf("cross-job hits %d of %d would-be simulator calls",
		st.Effort.EvalCacheCrossHits, st.Effort.EvalCacheCrossHits+st.Effort.EvalCacheMisses)
}
