package main

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"specwise/internal/jobs"
	"specwise/internal/server"
	"specwise/internal/worker"
)

// TestWorkerSmoke is the `make workersmoke` target: one remote-only
// specwised manager behind httptest, one pull-worker with -max-jobs 1
// semantics, one OTA verify job end to end.
func TestWorkerSmoke(t *testing.T) {
	m := jobs.New(jobs.Config{RemoteOnly: true, LeaseTTL: 10 * time.Second})
	defer m.Close()
	ts := httptest.NewServer(server.New(m, server.WithWorkerToken("smoke")))
	defer ts.Close()

	opts := jobs.RunOptions{VerifySamples: 30, Seed: jobs.Seed(11)}
	job, err := m.Submit(jobs.Request{Kind: jobs.KindVerify, Circuit: "ota", Options: opts})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err = worker.Run(ctx, worker.Config{
		Server:  ts.URL,
		Token:   "smoke",
		Name:    "smoke-1",
		Poll:    10 * time.Millisecond,
		Backoff: 10 * time.Millisecond,
		MaxJobs: 1,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("worker.Run: %v", err)
	}

	if st := job.Status(); st.State != jobs.StateDone || st.Worker != "smoke-1" {
		t.Fatalf("job after smoke run: %+v", st)
	}
	res, ok := job.Result()
	if !ok || res.Verification == nil || res.Verification.Samples != 30 {
		t.Fatalf("bad verification payload: %+v", res)
	}
}
