// Command papertables regenerates every table and figure of the DAC-2001
// paper from this reproduction. By default it runs everything at paper
// scale; -quick switches to reduced sample counts, and individual
// experiments can be selected with flags like -table1 or -fig5.
//
// Usage:
//
//	papertables [-quick] [-v] [-table1 ... -table7] [-fig1 ... -fig5]
//
// With no experiment flags, all experiments run in order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"specwise/internal/core"
	"specwise/internal/paper"
	"specwise/internal/report"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sample counts for a fast pass")
	verbose := flag.Bool("v", false, "log optimizer progress to stderr")
	var sel [12]*bool
	names := []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"fig1", "fig2", "fig3", "fig4", "fig5"}
	for i, n := range names {
		sel[i] = flag.Bool(n, false, "run only "+n+" (combinable)")
	}
	flag.Parse()

	any := false
	for _, s := range sel {
		any = any || *s
	}
	want := func(i int) bool { return !any || *sel[i] }

	cfg := paper.Full()
	if *quick {
		cfg = paper.Quick()
	}
	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	w := os.Stdout

	var table1Res, table6Res *core.Result
	runTimed := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	// Tables 1 and 2 share one optimization run; Table 7 needs 1 and 6.
	if want(0) || want(1) || want(6) {
		runTimed("table1", func() error {
			res, err := paper.Table1(cfg, log)
			if err != nil {
				return err
			}
			table1Res = res
			fmt.Fprintln(w, "=== Table 1: folded-cascode yield optimization (with constraints) ===")
			report.OptimizationTrace(w, res)
			return nil
		})
	}
	if want(1) {
		fmt.Fprintln(w, "=== Table 2: improvement between iterations (folded-cascode) ===")
		last := len(table1Res.Iterations) - 1
		fmt.Fprintf(w, "(comparing iteration 1 to %d)\n", last)
		rows := paper.Table2(table1Res, 1, last)
		fmt.Fprintf(w, "%-8s %16s %16s %12s %12s\n", "Perf.", "dmu/|mu-fb|", "dsigma/sigma", "sigma(1)", fmt.Sprintf("sigma(%d)", last))
		for _, r := range rows {
			fmt.Fprintf(w, "%-8s %15.1f%% %15.1f%% %12.3g %12.3g\n", r.Spec, 100*r.DMuRel, 100*r.DSigmaRel, r.SigA, r.SigB)
		}
		fmt.Fprintln(w)
	}
	if want(2) {
		runTimed("table3", func() error {
			res, err := paper.Table3(cfg, log)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "=== Table 3: ablation without functional constraints ===")
			report.OptimizationTrace(w, res)
			return nil
		})
	}
	if want(3) {
		runTimed("table4", func() error {
			res, err := paper.Table4(cfg, log)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "=== Table 4: ablation with nominal-point linearization ===")
			report.OptimizationTrace(w, res)
			return nil
		})
	}
	if want(4) {
		runTimed("table5", func() error {
			entries, err := paper.Table5(5)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "=== Table 5: mismatch measure ranking at the initial design ===")
			fmt.Fprintf(w, "%-5s %-6s %-12s %-12s %8s\n", "Rank", "Spec", "Param k", "Param l", "m_kl")
			for _, e := range entries {
				fmt.Fprintf(w, "P%-4d %-6s %-12s %-12s %8.3f\n", e.Rank, e.Spec, e.ParamK, e.ParamL, e.Measure)
			}
			return nil
		})
	}
	if want(5) || want(6) {
		runTimed("table6", func() error {
			res, err := paper.Table6(cfg, log)
			if err != nil {
				return err
			}
			table6Res = res
			fmt.Fprintln(w, "=== Table 6: Miller opamp (global variations only) ===")
			report.OptimizationTrace(w, res)
			return nil
		})
	}
	if want(6) {
		fmt.Fprintln(w, "=== Table 7: computational effort ===")
		fmt.Fprintf(w, "%-16s %14s %16s %12s %12s %12s\n",
			"Circuit", "# Simulations", "# Constraint DC", "Cache hits", "Warm starts", "Warm conv.")
		effortRow := func(name string, res *core.Result) {
			fmt.Fprintf(w, "%-16s %14d %16d %12d %12d %12d\n",
				name, res.Simulations, res.ConstraintSims,
				res.EvalCache.Hits+res.EvalCache.ConstraintHits,
				res.Sim.WarmStarts, res.Sim.WarmConverged)
		}
		effortRow("Folded-Cascode", table1Res)
		effortRow("Miller", table6Res)
		fmt.Fprintln(w)
	}
	if want(7) {
		runTimed("fig1", func() error {
			sf, err := paper.Fig1(13)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "=== Figure 1: CMRR over the critical mismatch pair ===")
			printSurface(w, sf)
			return nil
		})
	}
	if want(8) {
		fmt.Fprintln(w, "=== Figure 2: selector function Phi ===")
		printCurve(w, paper.Fig2(33))
	}
	if want(9) {
		fmt.Fprintln(w, "=== Figure 3: robustness weight Eta ===")
		printCurve(w, paper.Fig3(33))
	}
	if want(10) {
		runTimed("fig4", func() error {
			a0, margin, err := paper.Fig4(25)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "=== Figure 4: A0 over the feasibility region ===")
			printCurve(w, a0)
			printCurve(w, margin)
			return nil
		})
	}
	if want(11) {
		runTimed("fig5", func() error {
			c, err := paper.Fig5(41, cfg.ModelSamples)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "=== Figure 5: yield estimate over one design parameter ===")
			printCurve(w, c)
			return nil
		})
	}
}

func printCurve(w io.Writer, c *paper.Curve) {
	fmt.Fprintf(w, "# %s\n", c.Label)
	for i := range c.X {
		fmt.Fprintf(w, "%12.5g %12.5g\n", c.X[i], c.Y[i])
	}
	fmt.Fprintln(w)
}

func printSurface(w io.Writer, s *paper.Surface) {
	fmt.Fprintf(w, "# %s\n", s.Label)
	fmt.Fprintf(w, "%8s", "")
	for _, y := range s.Y {
		fmt.Fprintf(w, "%9.2f", y)
	}
	fmt.Fprintln(w)
	for i, x := range s.X {
		fmt.Fprintf(w, "%8.2f", x)
		for j := range s.Y {
			fmt.Fprintf(w, "%9.2f", s.Z[i][j])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
