// Command specwised is the yield-optimization daemon: it serves the
// spec-wise-linearization optimizer over an HTTP JSON API with an async
// job queue, a worker pool and a content-hash result cache.
//
// Usage:
//
//	specwised [-addr :8080] [-workers N] [-queue N] \
//	    [-verify-queue N] [-optimize-queue N] \
//	    [-verify-weight 3] [-optimize-weight 1] \
//	    [-worker-token T] [-lease-ttl 30s] [-remote-only] \
//	    [-retain-jobs N] [-retain-for D] \
//	    [-store jobs.wal] [-snapshot-every N] \
//	    [-speculate] [-spec-workers N] [-pprof-addr :6060]
//
// Jobs are classified into two priority lanes at submit — cheap
// "verify" jobs and heavy "optimize" jobs (options.lane overrides the
// kind-based default) — and drained by a weighted round-robin so an
// interactive verify never waits behind a wall of optimizes. Each lane
// has its own bounded queue (-verify-queue / -optimize-queue, falling
// back to -queue); a full lane rejects submissions with 429 and a
// Retry-After computed from the lane's recent drain rate. Job progress
// can be streamed live over server-sent events from
// GET /v1/jobs/{id}/events.
//
// -speculate turns on the predict-ahead evaluation pipeline for
// optimize jobs that leave options.speculate unset (an explicit
// options.speculate — true or false — always wins, so a request can opt
// out): while the optimizer executes its authoritative step, idle cores
// pre-run the simulations the predicted next step will need. Results and
// simulation counts are bit-identical with speculation on or off;
// -spec-workers bounds the per-job speculation pool (0 = GOMAXPROCS).
//
// -pprof-addr serves net/http/pprof on a separate listener (off by
// default, never on the API address): profile a live daemon with
// `go tool pprof http://host:6060/debug/pprof/profile` — the offline
// counterpart of `make profile`, which captures CPU/mutex/block
// profiles of the Table-1 benchmark.
//
// Remote pull-workers (cmd/specwise-worker) claim jobs over the
// /v1/worker lease endpoints; -worker-token gates that API,
// -lease-ttl bounds how long a silent worker holds a job before it is
// requeued, and -remote-only disables the in-process pool so every job
// runs on remote workers.
//
// -store enables the durable control plane: every submission, lease
// and result is journaled to the given single-file WAL before it is
// acknowledged, and a restart recovers the full pre-crash state —
// queued jobs re-enter the queue in submit order, finished results
// re-warm the cache, and remote workers reattach to leases still
// within their TTL. -snapshot-every bounds the journal by compacting
// it into a snapshot after that many records. Without -store the
// daemon runs in-memory only, exactly as before.
//
// Submit a job and read it back:
//
//	curl -s -X POST localhost:8080/v1/jobs -d '{"circuit":"ota",
//	  "options":{"modelSamples":2000,"verifySamples":200,"maxIterations":2,"seed":7}}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/metrics
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener
// drains, and with a persistent store the queue and in-flight state are
// journaled (interrupted local runs requeue with their retry budget
// intact) before the store is synced and closed; without one, in-flight
// jobs are cancelled through their contexts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"specwise/internal/core"
	"specwise/internal/jobs"
	"specwise/internal/search"
	"specwise/internal/server"
	"specwise/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 0, "optimizer workers (0 = half the CPUs)")
	queue := flag.Int("queue", 64, "per-lane job queue capacity (default for both lanes)")
	verifyQueue := flag.Int("verify-queue", 0,
		"verify-lane queue capacity (0 = use -queue)")
	optimizeQueue := flag.Int("optimize-queue", 0,
		"optimize-lane queue capacity (0 = use -queue)")
	verifyWeight := flag.Int("verify-weight", 3,
		"verify-lane share of the drain round-robin (relative to -optimize-weight)")
	optimizeWeight := flag.Int("optimize-weight", 1,
		"optimize-lane share of the drain round-robin (relative to -verify-weight)")
	verifyWorkers := flag.Int("verify-workers", 0,
		"default Monte-Carlo verification pool per job (0 = GOMAXPROCS; bit-identical results for any value)")
	sweepWorkers := flag.Int("sweep-workers", 0,
		"default per-frequency AC-sweep fan-out per job (0 = GOMAXPROCS; bit-identical results for any value)")
	speculate := flag.Bool("speculate", false,
		"predict-ahead evaluation for optimize jobs that omit options.speculate; an explicit options.speculate=false opts out (bit-identical results and simulation counts)")
	specWorkers := flag.Int("spec-workers", 0,
		"speculation pool per job (0 = GOMAXPROCS; requires -speculate or options.speculate)")
	pprofAddr := flag.String("pprof-addr", "",
		"serve net/http/pprof on this separate listen address (empty = disabled)")
	workerToken := flag.String("worker-token", "",
		"bearer token required on the /v1/worker endpoints (empty = open)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second,
		"remote-worker lease TTL; a silent lease past this is requeued")
	remoteOnly := flag.Bool("remote-only", false,
		"disable the in-process pool: every job runs on remote pull-workers")
	retainJobs := flag.Int("retain-jobs", 0,
		"max terminal jobs kept for status queries (0 = default 512, negative = unlimited)")
	retainFor := flag.Duration("retain-for", 0,
		"evict terminal jobs older than this (0 = no TTL sweep)")
	storePath := flag.String("store", "",
		"persistent job-store file (WAL + snapshots); empty = in-memory only")
	snapshotEvery := flag.Int("snapshot-every", 0,
		"compact the store after this many journaled records (0 = default 1024, negative = never)")
	sharedEvalCache := flag.Bool("shared-eval-cache", false,
		"share one evaluation cache across jobs on the same problem (sweep members reuse each other's simulations; bit-identical results)")
	evalCacheSize := flag.Int("eval-cache-size", 0,
		"shared evaluation-cache capacity in entries (0 = default; requires -shared-eval-cache)")
	defaultAlgorithm := flag.String("default-algorithm", "",
		"search backend stamped onto optimize jobs that omit options.algorithm "+
			"(empty keeps requests untouched and request hashes byte-compatible; see -list-algorithms)")
	listAlgorithms := flag.Bool("list-algorithms", false,
		"print the registered search backends and exit")
	flag.Parse()

	if *listAlgorithms {
		for _, name := range search.Names() {
			fmt.Println(name)
		}
		return
	}
	if *defaultAlgorithm != "" && !core.KnownBackend(*defaultAlgorithm) {
		fmt.Fprintf(os.Stderr, "unknown -default-algorithm %q (registered: %s)\n",
			*defaultAlgorithm, strings.Join(search.Names(), ", "))
		os.Exit(2)
	}

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	if err := run(*addr, *workerToken, *storePath, jobs.Config{
		Workers:    *workers,
		RemoteOnly: *remoteOnly,
		QueueSize:  *queue,
		LaneQueueSize: map[string]int{
			jobs.LaneVerify:   *verifyQueue,
			jobs.LaneOptimize: *optimizeQueue,
		},
		LaneWeights: map[string]int{
			jobs.LaneVerify:   *verifyWeight,
			jobs.LaneOptimize: *optimizeWeight,
		},
		VerifyWorkers:    *verifyWorkers,
		SweepWorkers:     *sweepWorkers,
		Speculate:        *speculate,
		SpecWorkers:      *specWorkers,
		LeaseTTL:         *leaseTTL,
		RetainJobs:       *retainJobs,
		RetainFor:        *retainFor,
		SnapshotEvery:    *snapshotEvery,
		SharedEvalCache:  *sharedEvalCache,
		EvalCacheSize:    *evalCacheSize,
		DefaultAlgorithm: *defaultAlgorithm,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// servePprof exposes net/http/pprof on its own listener and mux, so the
// profiling surface never shares an address (or an auth story) with the
// public API. Errors are logged, not fatal: a daemon that cannot bind
// its debug port still serves jobs.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("pprof listener: %v", err)
		return
	}
	log.Printf("pprof listening on %s", ln.Addr())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := srv.Serve(ln); err != nil {
		log.Printf("pprof server: %v", err)
	}
}

func run(addr, workerToken, storePath string, cfg jobs.Config) error {
	if storePath != "" {
		st, err := store.Open(storePath, store.Options{})
		if err != nil {
			return err
		}
		cfg.Store = st
	}
	manager, err := jobs.Open(cfg)
	if err != nil {
		return err
	}
	if storePath != "" {
		if n := manager.Metrics().RecoveredJobs(); n > 0 {
			log.Printf("recovered %d jobs from %s", n, storePath)
		}
	}
	srv := &http.Server{
		Handler:           server.New(manager, server.WithWorkerToken(workerToken)),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// An explicit listener (rather than ListenAndServe) so ":0" logs the
	// actual port — the crash-recovery e2e and local smoke runs depend
	// on scraping it.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("specwised listening on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case s := <-sig:
		log.Printf("signal %v: shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		// Shutdown (not Close): with a persistent store the queue and
		// lease table stay journaled for the next boot, and interrupted
		// local runs requeue instead of cancelling.
		manager.Shutdown()
		log.Printf("specwised stopped")
	}
	return nil
}
