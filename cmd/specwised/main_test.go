package main

// Crash-recovery end-to-end: the real daemon binary, a real WAL file,
// a real SIGKILL. The test re-execs itself as specwised (TestMain
// checks SPECWISED_MAIN), runs a mixed workload — one finished job,
// one mid-run on the local pool, one held by a "remote worker" (the
// test speaking the lease protocol), one queued — kills the daemon
// without ceremony, restarts it on the same store, and asserts the
// recovery contract over plain HTTP.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	if os.Getenv("SPECWISED_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// daemon is one spawned specwised process.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:port
	logs *bytes.Buffer
	mu   sync.Mutex
}

// startDaemon spawns the test binary as specwised and waits for the
// listen line to learn the port.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	d := &daemon{logs: &bytes.Buffer{}}
	d.cmd = exec.Command(exe, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	d.cmd.Env = append(os.Environ(), "SPECWISED_MAIN=1")
	stderr, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			fmt.Fprintln(d.logs, line)
			d.mu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrc <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		d.base = "http://" + addr
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill() //nolint:errcheck
		t.Fatalf("daemon never reported its listen address; logs:\n%s", d.log())
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill() //nolint:errcheck
			d.cmd.Wait()         //nolint:errcheck
		}
	})
	return d
}

func (d *daemon) log() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.logs.String()
}

// sigkill models the crash: no drain, no fsync beyond what Append
// already did.
func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait() //nolint:errcheck // the kill is the expected "error"
}

func httpJSON(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(blob, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, blob, err)
		}
	}
	return resp.StatusCode
}

func httpBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(blob)
}

type jobStatus struct {
	ID        string     `json:"id"`
	State     string     `json:"state"`
	Cached    bool       `json:"cached"`
	Attempts  int        `json:"attempts"`
	StartedAt *time.Time `json:"startedAt"`
}

func submit(t *testing.T, d *daemon, body string) string {
	t.Helper()
	var ack struct {
		ID string `json:"id"`
	}
	if code := httpJSON(t, http.MethodPost, d.base+"/v1/jobs", body, &ack); code != http.StatusAccepted {
		t.Fatalf("submit returned %d; logs:\n%s", code, d.log())
	}
	return ack.ID
}

func status(t *testing.T, d *daemon, id string) jobStatus {
	t.Helper()
	var st jobStatus
	if code := httpJSON(t, http.MethodGet, d.base+"/v1/jobs/"+id, "", &st); code != http.StatusOK {
		t.Fatalf("status %s returned %d", id, code)
	}
	return st
}

func waitFor(t *testing.T, d *daemon, id, state string, timeout time.Duration) jobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var st jobStatus
	for time.Now().Before(deadline) {
		st = status(t, d, id)
		if st.State == state || st.State == "failed" {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != state {
		t.Fatalf("job %s state = %q after %v, want %q; logs:\n%s", id, st.State, timeout, state, d.log())
	}
	return st
}

const fastBody = `{"circuit": "ota",
  "options": {"modelSamples": 500, "verifySamples": 60, "maxIterations": 1, "seed": 7}}`

// slowBody is sized to still be mid-run when the SIGKILL lands.
const slowBody = `{"circuit": "ota",
  "options": {"modelSamples": 6000, "verifySamples": 2000, "maxIterations": 3, "seed": 11}}`

func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons and full optimizations")
	}
	storePath := filepath.Join(t.TempDir(), "jobs.wal")
	args := []string{"-workers", "1", "-store", storePath, "-lease-ttl", "2m"}

	d1 := startDaemon(t, args...)

	// Job 1 finishes before the crash; its result must survive verbatim.
	done := submit(t, d1, fastBody)
	waitFor(t, d1, done, "done", 2*time.Minute)
	code, wantResult := httpBody(t, d1.base+"/v1/jobs/"+done+"/result")
	if code != http.StatusOK {
		t.Fatalf("result fetch pre-crash: %d", code)
	}

	// Job 2 occupies the single local worker when the crash hits.
	interrupted := submit(t, d1, slowBody)
	deadline := time.Now().Add(time.Minute)
	for status(t, d1, interrupted).State != "running" && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st := status(t, d1, interrupted); st.State != "running" {
		t.Fatalf("slow job state = %q, want running", st.State)
	}

	// Jobs 3 and 4 wait in the queue; job 3 is then claimed by this test
	// acting as a remote pull-worker, so a live lease spans the crash.
	leased := submit(t, d1, `{"circuit": "ota",
	  "options": {"modelSamples": 500, "verifySamples": 60, "maxIterations": 1, "seed": 21}}`)
	queued := submit(t, d1, `{"circuit": "ota",
	  "options": {"modelSamples": 500, "verifySamples": 60, "maxIterations": 1, "seed": 22}}`)
	var lease struct {
		JobID   string `json:"job"`
		LeaseID string `json:"lease"`
	}
	if code := httpJSON(t, http.MethodPost, d1.base+"/v1/worker/claim", `{"worker":"w-e2e"}`, &lease); code != http.StatusOK {
		t.Fatalf("claim returned %d", code)
	}
	if lease.JobID != leased {
		t.Fatalf("claim handed out %s, want %s (queue head)", lease.JobID, leased)
	}

	d1.sigkill(t)

	// Restart on the same store. Everything below is the recovery
	// contract.
	d2 := startDaemon(t, args...)

	// Terminal job: still done, result bit-identical.
	rst := status(t, d2, done)
	if rst.State != "done" {
		t.Fatalf("finished job recovered as %q", rst.State)
	}
	code, gotResult := httpBody(t, d2.base+"/v1/jobs/"+done+"/result")
	if code != http.StatusOK {
		t.Fatalf("result fetch post-crash: %d", code)
	}
	if gotResult != wantResult {
		t.Errorf("result changed across the crash:\n pre %s\npost %s", wantResult, gotResult)
	}

	// Live lease: the old lease ID is honored — heartbeat extends it and
	// the result posts without the job ever being re-executed. The
	// sentinel result could not come from an execution, which proves the
	// settlement is the reattached post, not a re-run.
	if code := httpJSON(t, http.MethodPost, d2.base+"/v1/worker/jobs/"+lease.JobID+"/heartbeat",
		`{"lease":"`+lease.LeaseID+`"}`, nil); code != http.StatusOK {
		t.Fatalf("heartbeat on recovered lease returned %d (reattach broken); logs:\n%s", code, d2.log())
	}
	if code := httpJSON(t, http.MethodPost, d2.base+"/v1/worker/jobs/"+lease.JobID+"/result",
		`{"lease":"`+lease.LeaseID+`","result":{"kind":"optimize"}}`, nil); code != http.StatusOK {
		t.Fatalf("result post on recovered lease returned %d", code)
	}
	lst := status(t, d2, lease.JobID)
	if lst.State != "done" || lst.Attempts != 1 {
		t.Errorf("reattached job state=%s attempts=%d, want done/1 (no re-execution)", lst.State, lst.Attempts)
	}

	// Interrupted local run: requeued with its budget intact and re-run
	// to completion (second attempt). The queued job runs after it —
	// original submit order.
	ist := waitFor(t, d2, interrupted, "done", 5*time.Minute)
	if ist.Attempts != 2 {
		t.Errorf("interrupted job attempts = %d, want 2 (1 pre-crash + 1 resumed)", ist.Attempts)
	}
	qst := waitFor(t, d2, queued, "done", 5*time.Minute)
	if qst.Attempts != 1 {
		t.Errorf("queued job attempts = %d, want 1", qst.Attempts)
	}
	if ist.StartedAt == nil || qst.StartedAt == nil || !ist.StartedAt.Before(*qst.StartedAt) {
		t.Errorf("recovered queue order wrong: interrupted started %v, queued started %v (want interrupted first)",
			ist.StartedAt, qst.StartedAt)
	}

	// The re-warmed cache answers the pre-crash request instantly.
	var ack struct {
		ID     string `json:"id"`
		Cached bool   `json:"cached"`
	}
	// 200 (not 202) is the server's cache-hit answer: the result is
	// already terminal at submit time.
	if code := httpJSON(t, http.MethodPost, d2.base+"/v1/jobs", fastBody, &ack); code != http.StatusOK {
		t.Fatalf("post-recovery submit returned %d, want 200 cache hit", code)
	}
	if !ack.Cached {
		t.Error("pre-crash result not served from the re-warmed cache")
	}
	code, metrics := httpBody(t, d2.base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"specwised_cache_warm_hits_total 1",
		"specwised_store_recovered_jobs 4",
		"specwised_store_snapshots",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// SIGTERM is the graceful path: exit 0, store synced and closed.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exited with %v; logs:\n%s", err, d2.log())
	}

	// And a third boot still recovers cleanly from the shut-down store.
	d3 := startDaemon(t, args...)
	if st := status(t, d3, done); st.State != "done" {
		t.Errorf("job %s state after third boot = %q", done, st.State)
	}
}

// batchStatus mirrors the JSON of GET /v1/batches/{id}.
type batchStatus struct {
	ID      string      `json:"id"`
	State   string      `json:"state"`
	Unique  int         `json:"unique"`
	Deduped int         `json:"deduped"`
	Done    int         `json:"done"`
	Members []jobStatus `json:"members"`
}

func batchStat(t *testing.T, d *daemon, id string) batchStatus {
	t.Helper()
	var st batchStatus
	if code := httpJSON(t, http.MethodGet, d.base+"/v1/batches/"+id, "", &st); code != http.StatusOK {
		t.Fatalf("batch status %s returned %d", id, code)
	}
	return st
}

// TestBatchCrashRecoverySIGKILL: a batch sweep must survive a crash as
// one unit. One member finishes before the kill (its result must come
// back bit-identical), one is mid-run (requeued, budget intact), one is
// queued, and one is an in-batch duplicate (the dedupe fold must also
// survive recovery). After the restart the batch reconstitutes with the
// same ID, member IDs and counts, and drains to done in submit order.
func TestBatchCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons and full optimizations")
	}
	storePath := filepath.Join(t.TempDir(), "jobs.wal")
	args := []string{"-workers", "1", "-store", storePath, "-shared-eval-cache"}

	d1 := startDaemon(t, args...)
	var sub batchStatus
	batchBody := `{"jobs": [
	  {"circuit": "ota", "options": {"modelSamples": 500, "verifySamples": 60, "maxIterations": 1, "seed": 31, "wcSeed": 7}},
	  {"circuit": "ota", "options": {"modelSamples": 6000, "verifySamples": 2000, "maxIterations": 3, "seed": 32, "wcSeed": 7}},
	  {"circuit": "ota", "options": {"modelSamples": 500, "verifySamples": 60, "maxIterations": 1, "seed": 33, "wcSeed": 7}},
	  {"circuit": "ota", "options": {"modelSamples": 500, "verifySamples": 60, "maxIterations": 1, "seed": 33, "wcSeed": 7}}
	]}`
	if code := httpJSON(t, http.MethodPost, d1.base+"/v1/batches", batchBody, &sub); code != http.StatusAccepted {
		t.Fatalf("batch submit returned %d; logs:\n%s", code, d1.log())
	}
	if sub.Unique != 3 || sub.Deduped != 1 || len(sub.Members) != 4 {
		t.Fatalf("batch submit ack: %+v", sub)
	}

	// Member 0 finishes; member 1 is mid-run on the single local worker
	// when the SIGKILL lands.
	waitFor(t, d1, sub.Members[0].ID, "done", 2*time.Minute)
	code, wantResult := httpBody(t, d1.base+"/v1/jobs/"+sub.Members[0].ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("member result pre-crash: %d", code)
	}
	deadline := time.Now().Add(time.Minute)
	for status(t, d1, sub.Members[1].ID).State != "running" && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st := status(t, d1, sub.Members[1].ID); st.State != "running" {
		t.Fatalf("slow member state = %q, want running", st.State)
	}

	d1.sigkill(t)
	d2 := startDaemon(t, args...)

	// The batch reconstitutes as a unit: same ID, same member IDs in
	// submit order, dedupe fold intact, finished work preserved.
	rst := batchStat(t, d2, sub.ID)
	if rst.Unique != 3 || rst.Deduped != 1 || len(rst.Members) != 4 || rst.Done < 1 {
		t.Fatalf("recovered batch: %+v", rst)
	}
	for i := range sub.Members {
		if rst.Members[i].ID != sub.Members[i].ID {
			t.Errorf("member %d ID changed across crash: %s -> %s", i, sub.Members[i].ID, rst.Members[i].ID)
		}
	}
	if rst.Members[2].ID != rst.Members[3].ID {
		t.Errorf("in-batch dedupe lost on recovery: %s vs %s", rst.Members[2].ID, rst.Members[3].ID)
	}
	code, gotResult := httpBody(t, d2.base+"/v1/jobs/"+sub.Members[0].ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("member result post-crash: %d", code)
	}
	if gotResult != wantResult {
		t.Errorf("member result changed across the crash:\n pre %s\npost %s", wantResult, gotResult)
	}

	// The interrupted and queued members re-run to completion in submit
	// order, and the batch settles.
	ist := waitFor(t, d2, sub.Members[1].ID, "done", 5*time.Minute)
	if ist.Attempts != 2 {
		t.Errorf("interrupted member attempts = %d, want 2", ist.Attempts)
	}
	qst := waitFor(t, d2, sub.Members[2].ID, "done", 5*time.Minute)
	if qst.Attempts != 1 {
		t.Errorf("queued member attempts = %d, want 1", qst.Attempts)
	}
	if ist.StartedAt == nil || qst.StartedAt == nil || !ist.StartedAt.Before(*qst.StartedAt) {
		t.Errorf("recovered members ran out of submit order: %v vs %v", ist.StartedAt, qst.StartedAt)
	}
	fin := batchStat(t, d2, sub.ID)
	if fin.State != "done" || fin.Done != 3 {
		t.Fatalf("batch after recovery drain: %+v", fin)
	}
}

// TestLaneSmoke is the fast path `make lanesmoke` runs: with a single
// local worker saturated by a wall of optimize jobs, an interactive
// verify submission still jumps the line (the weighted round-robin
// prefers the cheap lane) and its progress streams over SSE to the
// terminal state while optimize work is still outstanding.
func TestLaneSmoke(t *testing.T) {
	d := startDaemon(t, "-workers", "1")
	defer d.sigkill(t)

	// Three medium optimize jobs: one occupies the single worker, two
	// wait in the heavy lane.
	var optimizeIDs []string
	for seed := 41; seed <= 43; seed++ {
		optimizeIDs = append(optimizeIDs, submit(t, d, fmt.Sprintf(`{"circuit": "ota",
		  "options": {"modelSamples": 2000, "verifySamples": 2000, "maxIterations": 2, "seed": %d}}`, seed)))
	}
	verifyID := submit(t, d, `{"kind": "verify", "circuit": "ota",
	  "options": {"verifySamples": 60, "seed": 7}}`)

	// Stream the verify job's events to its terminal state. The stream
	// closing is the synchronization point: the verify is done while the
	// optimize wall is (at most minus one) still outstanding.
	resp, err := http.Get(d.base + "/v1/jobs/" + verifyID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: code %d", resp.StatusCode)
	}
	finalState := ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"state"`) {
			var st jobStatus
			if err := json.Unmarshal([]byte(line[len("data: "):]), &st); err == nil && st.State != "" {
				finalState = st.State
			}
		}
	}
	if finalState != "done" {
		t.Fatalf("verify stream ended in state %q, want done; logs:\n%s", finalState, d.log())
	}

	pendingOptimize := 0
	for _, id := range optimizeIDs {
		if status(t, d, id).State != "done" {
			pendingOptimize++
		}
	}
	if pendingOptimize == 0 {
		t.Error("verify finished only after the whole optimize wall drained (lane priority not observable)")
	}

	code, metrics := httpBody(t, d.base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if !strings.Contains(metrics, `specwised_lane_done{lane="verify"} 1`) {
		t.Errorf("metrics missing verify-lane done counter:\n%s", metrics)
	}

	for _, id := range optimizeIDs {
		waitFor(t, d, id, "done", 5*time.Minute)
	}
}

// TestStoreSmoke is the fast path `make storesmoke` runs: submit, kill,
// recover, verify — no mid-run interruption, so it completes in a few
// seconds.
func TestStoreSmoke(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "jobs.wal")
	args := []string{"-workers", "1", "-store", storePath}

	d1 := startDaemon(t, args...)
	id := submit(t, d1, fastBody)
	waitFor(t, d1, id, "done", 2*time.Minute)
	code, want := httpBody(t, d1.base+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	d1.sigkill(t)

	d2 := startDaemon(t, args...)
	defer d2.sigkill(t)
	if st := status(t, d2, id); st.State != "done" {
		t.Fatalf("recovered state = %q, want done", st.State)
	}
	code, got := httpBody(t, d2.base+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK || got != want {
		t.Fatalf("recovered result differs (status %d)", code)
	}
}
