// Command spicesim is a small standalone driver for the embedded circuit
// simulator: it reads a SPICE-like netlist and runs operating-point, AC
// or transient analyses.
//
// Usage:
//
//	spicesim [-op] [-ac fstart,fstop[,pts/dec]] [-tran step,stop]
//	         [-dc source,start,stop[,points]] [-probe node] file.cir
//
// With no analysis flags, the operating point is printed. Reading from
// standard input is selected with "-" as the file name.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"os"
	"sort"
	"strconv"
	"strings"

	"specwise/internal/netlist"
	"specwise/internal/spice"
)

func main() {
	op := flag.Bool("op", false, "print the DC operating point (default when no analysis is selected)")
	acSpec := flag.String("ac", "", "AC sweep: fstart,fstop[,pointsPerDecade]")
	tranSpec := flag.String("tran", "", "transient: step,stop (seconds)")
	dcSpec := flag.String("dc", "", "DC sweep: source,start,stop[,points]")
	probe := flag.String("probe", "", "node to report in AC/transient analyses")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: spicesim [flags] file.cir")
		os.Exit(2)
	}
	var src io.Reader
	if flag.Arg(0) == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}

	deck, err := netlist.Parse(src)
	if err != nil {
		fatal(err)
	}
	if deck.Title != "" {
		fmt.Printf("* %s\n", deck.Title)
	}
	fmt.Printf("* %s\n\n", deck.Circuit)

	dc, err := deck.Circuit.DC(spice.DCOptions{})
	if err != nil {
		fatal(err)
	}

	runAny := false
	if *acSpec != "" {
		runAC(deck, dc, *acSpec, *probe)
		runAny = true
	}
	if *tranSpec != "" {
		runTran(deck, *tranSpec, *probe)
		runAny = true
	}
	if *dcSpec != "" {
		runDC(deck, *dcSpec, *probe)
		runAny = true
	}
	if *op || !runAny {
		printOP(deck, dc)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spicesim:", err)
	os.Exit(1)
}

func printOP(deck *netlist.Deck, dc *spice.DCResult) {
	fmt.Println("Operating point:")
	names := make([]string, 0, len(deck.Nodes))
	for n := range deck.Nodes {
		if n != spice.Ground && !strings.EqualFold(n, "gnd") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  v(%-8s) = %12.6g V\n", n, dc.Voltage(deck.Nodes[n]))
	}
	if len(deck.Mosfets) > 0 {
		fmt.Println("\nMOSFET operating points:")
		fmt.Printf("  %-8s %12s %10s %10s %10s %10s %-10s\n",
			"device", "Id [A]", "Vgs [V]", "Vds [V]", "gm [S]", "gds [S]", "region")
		mnames := make([]string, 0, len(deck.Mosfets))
		for n := range deck.Mosfets {
			mnames = append(mnames, n)
		}
		sort.Strings(mnames)
		for _, n := range mnames {
			opInfo := deck.Mosfets[n].Op(dc.X)
			region := [...]string{"cutoff", "triode", "saturation"}[opInfo.Region]
			fmt.Printf("  %-8s %12.4g %10.4f %10.4f %10.4g %10.4g %-10s\n",
				n, opInfo.ID, opInfo.VGS, opInfo.VDS, opInfo.Gm, opInfo.Gds, region)
		}
	}
}

func runAC(deck *netlist.Deck, dc *spice.DCResult, spec, probe string) {
	parts := strings.Split(spec, ",")
	if len(parts) < 2 {
		fatal(fmt.Errorf("bad -ac spec %q", spec))
	}
	fStart := parseF(parts[0])
	fStop := parseF(parts[1])
	ppd := 10
	if len(parts) > 2 {
		p, err := strconv.Atoi(parts[2])
		if err != nil || p < 1 {
			fatal(fmt.Errorf("bad points-per-decade %q", parts[2]))
		}
		ppd = p
	}
	node := probeNode(deck, probe)
	bode, err := deck.Circuit.ACSweep(dc, node, fStart, fStop, ppd)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("AC sweep of v(%s):\n", probe)
	fmt.Printf("  %12s %12s %12s\n", "f [Hz]", "mag [dB]", "phase [deg]")
	for i, f := range bode.Freq {
		fmt.Printf("  %12.5g %12.4f %12.4f\n", f, bode.MagDB(i),
			cmplx.Phase(bode.H[i])*180/math.Pi)
	}
	if fu, _, ok := bode.UnityCrossing(); ok {
		pm, _ := bode.PhaseMarginDeg()
		fmt.Printf("  unity crossing at %.4g Hz, phase margin %.2f deg\n", fu, pm)
	}
	fmt.Println()
}

func runTran(deck *netlist.Deck, spec, probe string) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		fatal(fmt.Errorf("bad -tran spec %q", spec))
	}
	step := parseF(parts[0])
	stop := parseF(parts[1])
	node := probeNode(deck, probe)
	res, err := deck.Circuit.Tran(spice.TranOptions{Step: step, Stop: stop})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Transient of v(%s):\n", probe)
	fmt.Printf("  %12s %12s\n", "t [s]", "v [V]")
	v := res.Voltage(node)
	// Thin the printout to at most ~200 rows.
	stride := len(res.Time)/200 + 1
	for k := 0; k < len(res.Time); k += stride {
		fmt.Printf("  %12.6g %12.6g\n", res.Time[k], v[k])
	}
	fmt.Println()
}

func runDC(deck *netlist.Deck, spec, probe string) {
	parts := strings.Split(spec, ",")
	if len(parts) < 3 {
		fatal(fmt.Errorf("bad -dc spec %q", spec))
	}
	src, ok := deck.Circuit.FindDevice(strings.TrimSpace(parts[0])).(*spice.VSource)
	if !ok || src == nil {
		fatal(fmt.Errorf("-dc source %q is not a V element", parts[0]))
	}
	start, stop := parseF(parts[1]), parseF(parts[2])
	points := 51
	if len(parts) > 3 {
		p, err := strconv.Atoi(strings.TrimSpace(parts[3]))
		if err != nil || p < 2 {
			fatal(fmt.Errorf("bad point count %q", parts[3]))
		}
		points = p
	}
	node := probeNode(deck, probe)
	res, err := deck.Circuit.DCSweep(src, start, stop, points, spice.DCOptions{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("DC sweep of %s, observing v(%s):\n", src.Name(), probe)
	fmt.Printf("  %12s %12s\n", src.Name()+" [V]", "v [V]")
	v := res.Voltage(node)
	for k := range res.Values {
		fmt.Printf("  %12.6g %12.6g\n", res.Values[k], v[k])
	}
	fmt.Println()
}

func probeNode(deck *netlist.Deck, probe string) int {
	if probe == "" {
		fatal(fmt.Errorf("-probe node required for this analysis"))
	}
	node, ok := deck.Nodes[probe]
	if !ok {
		fatal(fmt.Errorf("unknown probe node %q", probe))
	}
	return node
}

func parseF(s string) float64 {
	v, err := netlist.ParseValue(strings.TrimSpace(s))
	if err != nil {
		fatal(err)
	}
	return v
}
