# Development targets. `make check` is the pre-merge gate: it runs the
# tier-1 suite plus vet/format lint and the race-detector pass over the
# concurrent service layers.

GO ?= go

.PHONY: all build test race vet fmt check serve

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The jobs and server layers are the concurrency-heavy code paths; run
# them under the race detector on every check.
race:
	$(GO) test -race ./internal/jobs/... ./internal/server/... ./internal/core/...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt test race

# Run the yield-optimization daemon locally.
serve:
	$(GO) run ./cmd/specwised -addr :8080
