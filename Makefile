# Development targets. `make check` is the pre-merge gate: it runs the
# tier-1 suite plus vet/format lint and the race-detector pass over the
# concurrent service layers.

GO ?= go

.PHONY: all build test race vet fmt bench bench-check benchsmoke workersmoke storesmoke batchsmoke lanesmoke profile check serve

all: check

# Benchmarks that define the performance contract of the hot path. The
# core table benchmarks run once each (they are full optimizations, not
# microbenchmarks) and the parsed numbers land in BENCH_core.json.
# Table[1-7] covers every table of the paper (the old [13456] class
# silently skipped Table2MeanSigma and Table7Effort) plus the
# Table1FoldedCascodeSpec speculation legs. SweepOTA16 is the
# batch-engine contract: the shared-evaluation-cache run must answer
# >=30% of would-be simulator calls cross-job (it fails the bench
# otherwise). BackendsOTA tracks the registered search backends side by
# side on the same OTA task.
BENCH_PATTERN ?= 'Table[1-7]|SweepOTA16|BackendsOTA'
bench: build
	$(GO) test -run xxx -bench $(BENCH_PATTERN) -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/benchreport -o BENCH_core.json \
			-baseline BENCH_baseline.txt \
			-note "make bench ($(BENCH_PATTERN), -benchtime 1x, single run); baseline = pre-memoization seed (commit 3e9f61b)"

# Performance regression gate: re-run the hottest benchmark and fail
# (exit nonzero) if it is more than 20% slower than the committed
# BENCH_core.json. Run this before merging changes that touch the
# simulation or optimization hot path; it is not part of `make check`
# because a full Table-1 optimization takes minutes.
bench-check: build
	$(GO) test -run xxx -bench 'Table1FoldedCascode$$' -benchtime 1x . \
		| $(GO) run ./cmd/benchreport -o /dev/null -compare BENCH_core.json

# One-iteration smoke of the hottest benchmark so `make check` notices a
# broken or pathologically slow optimization path without paying for the
# full suite.
benchsmoke: build
	$(GO) test -run xxx -bench 'Table1FoldedCascode$$' -benchtime 1x . >/dev/null

# CPU/heap/mutex/block profiles of the hottest benchmark (the full
# Table-1 folded-cascode optimization, serial and speculating legs) with
# a flat top of each. The mutex and block profiles are what to read
# after touching internal/sched or the speculation executor: lock
# contention and semaphore waits show up there, not in CPU samples. The
# raw profiles stay in profile.out/ for interactive digging:
#   go tool pprof -http=:8000 profile.out/cpu.pprof
# To profile a live daemon instead, start specwised with -pprof-addr
# :6060 and point pprof at http://host:6060/debug/pprof/.
profile: build
	mkdir -p profile.out
	$(GO) test -run xxx -bench Table1FoldedCascode -benchtime 1x \
		-cpuprofile profile.out/cpu.pprof -memprofile profile.out/mem.pprof \
		-mutexprofile profile.out/mutex.pprof -blockprofile profile.out/block.pprof \
		-o profile.out/specwise.test .
	@echo "== CPU, flat top 15 =="
	$(GO) tool pprof -top -nodecount 15 profile.out/specwise.test profile.out/cpu.pprof
	@echo "== Allocated space, flat top 15 =="
	$(GO) tool pprof -top -nodecount 15 -sample_index=alloc_space \
		profile.out/specwise.test profile.out/mem.pprof
	@echo "== Mutex contention, flat top 10 =="
	$(GO) tool pprof -top -nodecount 10 profile.out/specwise.test profile.out/mutex.pprof
	@echo "== Blocking, flat top 10 =="
	$(GO) tool pprof -top -nodecount 10 profile.out/specwise.test profile.out/block.pprof

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The jobs, server and worker layers are the concurrency-heavy code
# paths (queue, leases, heartbeats); the store joins them because the
# WAL is appended from every mutation path; the spice and wcd packages
# join because the optimizer evaluates circuits (and their shared
# solver-stat counters) from parallel gradient workers; coord, feasopt
# and the search backends join because the engine/backend split moved
# the search loops there and they drive the parallel evaluators; sched
# joins because every one of those pools now admits work through its
# shared semaphore.
race:
	$(GO) test -race ./internal/jobs/... ./internal/server/... ./internal/worker/... \
		./internal/store/... ./internal/core/... ./internal/spice/... ./internal/wcd/... \
		./internal/evalcache/... ./internal/coord/... ./internal/feasopt/... \
		./internal/search/... ./internal/sched/...

# End-to-end smoke of the remote pull-worker binary path: one
# remote-only manager behind httptest, one pull-worker, one verify job.
workersmoke: build
	$(GO) test -run TestWorkerSmoke ./cmd/specwise-worker

# End-to-end smoke of the durable control plane: a real specwised
# process with -store, one finished job, SIGKILL, restart, and a
# bit-identical recovered result. TestCrashRecoverySIGKILL in the same
# package is the exhaustive version (runs under plain `make test`).
storesmoke: build
	$(GO) test -run TestStoreSmoke ./cmd/specwised

# End-to-end smoke of the batch sweep engine: an 8-member OTA seed sweep
# submitted as one batch to a remote-only daemon, drained by a
# pull-worker with its process-local shared evaluation cache; asserts
# cross-job cache hits in the batch effort rollup.
batchsmoke: build
	$(GO) test -run TestBatchSmoke ./cmd/specwise-worker

# End-to-end smoke of the traffic controls: a single-worker daemon
# saturated with optimize jobs still completes an interactive verify
# promptly (weighted lane round-robin), streaming its progress over SSE
# to the terminal state.
lanesmoke: build
	$(GO) test -run TestLaneSmoke ./cmd/specwised

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Pre-merge gate. For hot-path changes, additionally run `make
# bench-check` to catch >20% ns/op regressions against BENCH_core.json.
check: build vet fmt test race workersmoke storesmoke batchsmoke lanesmoke benchsmoke

# Run the yield-optimization daemon locally.
serve:
	$(GO) run ./cmd/specwised -addr :8080
