# Development targets. `make check` is the pre-merge gate: it runs the
# tier-1 suite plus vet/format lint and the race-detector pass over the
# concurrent service layers.

GO ?= go

.PHONY: all build test race vet fmt bench benchsmoke check serve

all: check

# Benchmarks that define the performance contract of the hot path. The
# core table benchmarks run once each (they are full optimizations, not
# microbenchmarks) and the parsed numbers land in BENCH_core.json.
BENCH_PATTERN ?= 'Table[13456]'
bench: build
	$(GO) test -run xxx -bench $(BENCH_PATTERN) -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/benchreport -o BENCH_core.json \
			-baseline BENCH_baseline.txt \
			-note "make bench ($(BENCH_PATTERN), -benchtime 1x, single run); baseline = pre-memoization seed (commit 3e9f61b)"

# One-iteration smoke of the hottest benchmark so `make check` notices a
# broken or pathologically slow optimization path without paying for the
# full suite.
benchsmoke: build
	$(GO) test -run xxx -bench Table1 -benchtime 1x . >/dev/null

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The jobs and server layers are the concurrency-heavy code paths; run
# them under the race detector on every check.
race:
	$(GO) test -race ./internal/jobs/... ./internal/server/... ./internal/core/...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt test race benchsmoke

# Run the yield-optimization daemon locally.
serve:
	$(GO) run ./cmd/specwised -addr :8080
