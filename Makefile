# Development targets. `make check` is the pre-merge gate: it runs the
# tier-1 suite plus vet/format lint and the race-detector pass over the
# concurrent service layers.

GO ?= go

.PHONY: all build test race vet fmt bench bench-check benchsmoke workersmoke storesmoke batchsmoke profile check serve

all: check

# Benchmarks that define the performance contract of the hot path. The
# core table benchmarks run once each (they are full optimizations, not
# microbenchmarks) and the parsed numbers land in BENCH_core.json.
# SweepOTA16 is the batch-engine contract: the shared-evaluation-cache
# run must answer >=30% of would-be simulator calls cross-job (it fails
# the bench otherwise). BackendsOTA tracks the registered search
# backends side by side on the same OTA task.
BENCH_PATTERN ?= 'Table[13456]|SweepOTA16|BackendsOTA'
bench: build
	$(GO) test -run xxx -bench $(BENCH_PATTERN) -benchtime 1x -benchmem . \
		| $(GO) run ./cmd/benchreport -o BENCH_core.json \
			-baseline BENCH_baseline.txt \
			-note "make bench ($(BENCH_PATTERN), -benchtime 1x, single run); baseline = pre-memoization seed (commit 3e9f61b)"

# Performance regression gate: re-run the hottest benchmark and fail
# (exit nonzero) if it is more than 20% slower than the committed
# BENCH_core.json. Run this before merging changes that touch the
# simulation or optimization hot path; it is not part of `make check`
# because a full Table-1 optimization takes minutes.
bench-check: build
	$(GO) test -run xxx -bench Table1 -benchtime 1x . \
		| $(GO) run ./cmd/benchreport -o /dev/null -compare BENCH_core.json

# One-iteration smoke of the hottest benchmark so `make check` notices a
# broken or pathologically slow optimization path without paying for the
# full suite.
benchsmoke: build
	$(GO) test -run xxx -bench Table1 -benchtime 1x . >/dev/null

# CPU/heap profile of the hottest benchmark (the full Table-1 folded-
# cascode optimization) and a flat top-15 of each. The raw profiles stay
# in profile.out/ for interactive digging:
#   go tool pprof -http=:8000 profile.out/cpu.pprof
profile: build
	mkdir -p profile.out
	$(GO) test -run xxx -bench Table1 -benchtime 1x \
		-cpuprofile profile.out/cpu.pprof -memprofile profile.out/mem.pprof \
		-o profile.out/specwise.test .
	@echo "== CPU, flat top 15 =="
	$(GO) tool pprof -top -nodecount 15 profile.out/specwise.test profile.out/cpu.pprof
	@echo "== Allocated space, flat top 15 =="
	$(GO) tool pprof -top -nodecount 15 -sample_index=alloc_space \
		profile.out/specwise.test profile.out/mem.pprof

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The jobs, server and worker layers are the concurrency-heavy code
# paths (queue, leases, heartbeats); the store joins them because the
# WAL is appended from every mutation path; the spice and wcd packages
# join because the optimizer evaluates circuits (and their shared
# solver-stat counters) from parallel gradient workers; coord, feasopt
# and the search backends join because the engine/backend split moved
# the search loops there and they drive the parallel evaluators.
race:
	$(GO) test -race ./internal/jobs/... ./internal/server/... ./internal/worker/... \
		./internal/store/... ./internal/core/... ./internal/spice/... ./internal/wcd/... \
		./internal/evalcache/... ./internal/coord/... ./internal/feasopt/... \
		./internal/search/...

# End-to-end smoke of the remote pull-worker binary path: one
# remote-only manager behind httptest, one pull-worker, one verify job.
workersmoke: build
	$(GO) test -run TestWorkerSmoke ./cmd/specwise-worker

# End-to-end smoke of the durable control plane: a real specwised
# process with -store, one finished job, SIGKILL, restart, and a
# bit-identical recovered result. TestCrashRecoverySIGKILL in the same
# package is the exhaustive version (runs under plain `make test`).
storesmoke: build
	$(GO) test -run TestStoreSmoke ./cmd/specwised

# End-to-end smoke of the batch sweep engine: an 8-member OTA seed sweep
# submitted as one batch to a remote-only daemon, drained by a
# pull-worker with its process-local shared evaluation cache; asserts
# cross-job cache hits in the batch effort rollup.
batchsmoke: build
	$(GO) test -run TestBatchSmoke ./cmd/specwise-worker

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Pre-merge gate. For hot-path changes, additionally run `make
# bench-check` to catch >20% ns/op regressions against BENCH_core.json.
check: build vet fmt test race workersmoke storesmoke batchsmoke benchsmoke

# Run the yield-optimization daemon locally.
serve:
	$(GO) run ./cmd/specwised -addr :8080
