module specwise

go 1.22
