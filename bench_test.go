// Benchmark harness: one benchmark per table and figure of the paper
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record). The table benchmarks run the corresponding
// experiment end-to-end at reduced-but-faithful scale and report, besides
// ns/op, the headline metrics of the experiment (initial/final yield,
// simulation counts) as custom benchmark outputs.
//
// Regenerate everything at paper scale with:
//
//	go run ./cmd/papertables
package specwise

import (
	"math"
	"testing"
	"time"

	"specwise/internal/circuits"
	"specwise/internal/coord"
	"specwise/internal/core"
	"specwise/internal/jobs"
	"specwise/internal/linmodel"
	"specwise/internal/paper"
	"specwise/internal/rng"
	"specwise/internal/wcd"
)

// benchCfg keeps the bench wall-clock sane while preserving the shape of
// every experiment.
func benchCfg() paper.RunConfig {
	return paper.RunConfig{ModelSamples: 3000, VerifySamples: 150, Iterations: 3}
}

func reportYields(b *testing.B, res *core.Result) {
	b.ReportMetric(100*res.Iterations[0].MCYield, "initial-yield-%")
	b.ReportMetric(100*res.Iterations[len(res.Iterations)-1].MCYield, "final-yield-%")
	b.ReportMetric(float64(res.Simulations), "simulations")
}

// BenchmarkTable1FoldedCascode: full yield optimization with functional
// constraints; initial yield 0%, final ≈100% (paper Table 1).
func BenchmarkTable1FoldedCascode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := paper.Table1(benchCfg(), nil)
		if err != nil {
			b.Fatal(err)
		}
		reportYields(b, res)
	}
}

// BenchmarkTable1FoldedCascodeSpec: the same Table-1 run with the
// predict-ahead evaluation pipeline off and on, at the worker counts of
// interest. The serial leg is the baseline; the speculate legs trade
// idle cores for wall clock while — by the claim-based determinism
// contract — reporting the exact simulation count and yields of the
// baseline. spec-hit-% is the fraction of speculative computes the
// authoritative pass claimed (wasted work is 100 minus that). On a
// single-core runner the speculate legs degrade to roughly the baseline:
// the pool finds no idle cycles to use, which is the point.
func BenchmarkTable1FoldedCascodeSpec(b *testing.B) {
	for _, tc := range []struct {
		name        string
		speculate   bool
		specWorkers int
	}{
		{"serial", false, 0},
		{"speculate-2", true, 2},
		{"speculate-gomaxprocs", true, 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := benchCfg()
			cfg.Speculate = tc.speculate
			cfg.SpecWorkers = tc.specWorkers
			for i := 0; i < b.N; i++ {
				res, err := paper.Table1(cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				reportYields(b, res)
				if tc.speculate {
					b.ReportMetric(float64(res.Speculation.Computes), "spec-computes")
					if res.Speculation.Computes > 0 {
						b.ReportMetric(100*float64(res.Speculation.Claims)/float64(res.Speculation.Computes), "spec-hit-%")
					}
				}
			}
		})
	}
}

// BenchmarkTable2MeanSigma: per-performance μ/σ improvement extraction
// between iterations (paper Table 2); derived from a Table-1 run.
func BenchmarkTable2MeanSigma(b *testing.B) {
	res, err := paper.Table1(benchCfg(), nil)
	if err != nil {
		b.Fatal(err)
	}
	last := len(res.Iterations) - 1
	from := last - 2
	if from < 1 {
		from = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := paper.Table2(res, from, last)
		if len(rows) != len(res.Problem.Specs) {
			b.Fatal("row count mismatch")
		}
	}
	rows := paper.Table2(res, from, last)
	// CMRR sigma must shrink between accepted iterations (the paper's
	// "variance of the performances is decreased").
	for _, r := range rows {
		if r.Spec == "CMRR" {
			b.ReportMetric(100*r.DSigmaRel, "cmrr-dsigma-%")
		}
	}
}

// BenchmarkTable3NoConstraints: the no-functional-constraints ablation;
// the model improves, the true yield stays at zero (paper Table 3).
func BenchmarkTable3NoConstraints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := paper.Table3(benchCfg(), nil)
		if err != nil {
			b.Fatal(err)
		}
		reportYields(b, res)
	}
}

// BenchmarkTable4NominalLinearization: the nominal-point-linearization
// ablation; blind to quadratic mismatch behaviour, it saturates far below
// the full method (paper Table 4).
func BenchmarkTable4NominalLinearization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := paper.Table4(benchCfg(), nil)
		if err != nil {
			b.Fatal(err)
		}
		reportYields(b, res)
	}
}

// BenchmarkTable5MismatchMeasure: worst-case-point mismatch analysis and
// pair ranking at the initial folded-cascode design (paper Table 5).
func BenchmarkTable5MismatchMeasure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := paper.Table5(3)
		if err != nil {
			b.Fatal(err)
		}
		if len(entries) == 0 {
			b.Fatal("no mismatch pairs found")
		}
		b.ReportMetric(entries[0].Measure, "top-measure")
	}
}

// BenchmarkTable6Miller: Miller opamp optimization under global
// variations; initial ≈35%, final ≈100% (paper Table 6).
func BenchmarkTable6Miller(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := paper.Table6(benchCfg(), nil)
		if err != nil {
			b.Fatal(err)
		}
		reportYields(b, res)
	}
}

// BenchmarkTable7Effort: the computational-effort bookkeeping (paper
// Table 7) — simulation counting overhead on the instrumented problem.
func BenchmarkTable7Effort(b *testing.B) {
	p := circuits.OTAProblem()
	var counter core.Counter
	ip := counter.Instrument(p)
	d := p.InitialDesign()
	s := make([]float64, p.NumStat())
	th := p.NominalTheta()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.Eval(d, s, th); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(counter.Evals())/float64(b.N), "evals/op")
}

// BenchmarkFig1CMRRSurface: the CMRR-over-mismatch-pair surface (paper
// Fig. 1); verifies the neutral-line/mismatch-line geometry.
func BenchmarkFig1CMRRSurface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sf, err := paper.Fig1(9)
		if err != nil {
			b.Fatal(err)
		}
		n := len(sf.X)
		center := sf.Z[n/2][n/2]
		neutral := sf.Z[n-1][n-1] // both +3σ: neutral line
		mismatch := sf.Z[n-1][0]  // +3σ/−3σ: mismatch line
		if center-neutral > 6 {
			b.Fatalf("neutral line dropped %.1f dB; should be flat", center-neutral)
		}
		if center-mismatch < 10 {
			b.Fatalf("mismatch line dropped only %.1f dB; should collapse", center-mismatch)
		}
		b.ReportMetric(center-mismatch, "mismatch-drop-dB")
	}
}

// BenchmarkFig2PhiSelector: the Φ selector curve (paper Fig. 2).
func BenchmarkFig2PhiSelector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := paper.Fig2(257)
		peak := 0.0
		for _, v := range c.Y {
			if v > peak {
				peak = v
			}
		}
		if peak != 1 {
			b.Fatalf("Phi peak = %v", peak)
		}
	}
}

// BenchmarkFig3EtaWeight: the η robustness-weight curve (paper Fig. 3).
func BenchmarkFig3EtaWeight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := paper.Fig3(257)
		for j := 1; j < len(c.Y); j++ {
			if c.Y[j] > c.Y[j-1] {
				b.Fatal("Eta must be monotone decreasing")
			}
		}
	}
}

// BenchmarkFig4FeasibilityRegion: A0 over a design sweep with the
// constraint margin (paper Fig. 4): weakly nonlinear inside the
// feasibility region, collapsing outside.
func BenchmarkFig4FeasibilityRegion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a0, margin, err := paper.Fig4(17)
		if err != nil {
			b.Fatal(err)
		}
		// Inside the feasibility region A0 must stay in a narrow band.
		lo, hi := math.Inf(1), math.Inf(-1)
		for j := range a0.X {
			if margin.Y[j] < 0 {
				continue
			}
			if a0.Y[j] < lo {
				lo = a0.Y[j]
			}
			if a0.Y[j] > hi {
				hi = a0.Y[j]
			}
		}
		b.ReportMetric(hi-lo, "a0-span-dB")
	}
}

// BenchmarkFig5YieldOverDesign: the sampled yield estimate over one design
// parameter from lb to ub (paper Fig. 5): zero plateaus and strong
// non-monotonicity.
func BenchmarkFig5YieldOverDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := paper.Fig5(21, 2000)
		if err != nil {
			b.Fatal(err)
		}
		max := 0.0
		for _, v := range c.Y {
			if v > max {
				max = v
			}
		}
		b.ReportMetric(100*max, "peak-yield-%")
	}
}

// --- Ablation and micro benchmarks (design-choice candidates from
// DESIGN.md §5) ---

// BenchmarkSweepOTA16: a 16-seed OTA optimization sweep through the
// batch engine with a pinned worst-case seed (wcSeed), run once with
// per-job evaluation caches ("isolated") and once with the
// manager-scoped shared cache ("shared"). The sweep members differ only
// in their sampling streams, so their worst-case searches and
// finite-difference linearizations probe identical points; the shared
// run answers those repeats from siblings' entries instead of the
// simulator. cross-hit-% is the fraction of would-be simulator calls
// (cross hits / (cross hits + misses)) served cross-job; per-member
// results stay bit-identical either way (TestSharedEvalCacheBitIdentity).
func BenchmarkSweepOTA16(b *testing.B) {
	sweep := func() []jobs.Request {
		reqs := make([]jobs.Request, 16)
		for i := range reqs {
			reqs[i] = jobs.Request{
				Kind:    jobs.KindOptimize,
				Circuit: "ota",
				Options: jobs.RunOptions{
					ModelSamples:  2000,
					VerifySamples: 50,
					MaxIterations: 1,
					Seed:          jobs.Seed(uint64(i + 1)),
					WCSeed:        jobs.Seed(7),
				},
			}
		}
		return reqs
	}
	run := func(b *testing.B, shared bool) {
		for i := 0; i < b.N; i++ {
			m := jobs.New(jobs.Config{Workers: 4, SharedEvalCache: shared})
			batch, err := m.SubmitBatch(sweep())
			if err != nil {
				b.Fatal(err)
			}
			var st jobs.BatchStatus
			for {
				st, err = m.BatchStatus(batch.ID())
				if err != nil {
					b.Fatal(err)
				}
				if st.State.Terminal() {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if st.State != jobs.StateDone {
				b.Fatalf("sweep ended %s: %d failed", st.State, st.Failed)
			}
			cross := float64(st.Effort.EvalCacheCrossHits)
			misses := float64(st.Effort.EvalCacheMisses)
			rate := 100 * cross / (cross + misses)
			b.ReportMetric(float64(st.Effort.Simulations), "simulations")
			b.ReportMetric(rate, "cross-hit-%")
			if shared && rate < 30 {
				b.Fatalf("cross-job hit rate %.1f%%, want >= 30%%", rate)
			}
			m.Close()
		}
	}
	b.Run("isolated", func(b *testing.B) { run(b, false) })
	b.Run("shared", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationMirrorSpecs compares model construction with and
// without the Eq. 21–22 mirror models on the quadratic CMRR spec.
func BenchmarkAblationMirrorSpecs(b *testing.B) {
	p := circuits.FoldedCascodeProblem()
	d := p.InitialDesign()
	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		b.Fatal(err)
	}
	wcs := make([]*wcd.WorstCase, p.NumSpecs())
	for i := range p.Specs {
		i := i
		theta := thetaRes.PerSpec[i]
		fn := func(s []float64) (float64, error) {
			vals, err := p.Eval(d, s, theta)
			if err != nil {
				return 0, err
			}
			return p.Specs[i].Margin(vals[i]), nil
		}
		wcs[i], err = wcd.FindWorstCase(fn, p.NumStat(), wcd.Options{Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, mirror := range []bool{true, false} {
		name := "with-mirror"
		if !mirror {
			name = "without-mirror"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				models, err := linmodel.Build(p, d, wcs, thetaRes.PerSpec,
					linmodel.BuildOptions{MirrorSpecs: mirror})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(models)), "models")
			}
		})
	}
}

// BenchmarkAblationIncrementalYield compares the Eq.-20 single-coordinate
// estimate update against full re-evaluation of the linear models.
func BenchmarkAblationIncrementalYield(b *testing.B) {
	models := syntheticModels(6, 30, 8)
	est := linmodel.NewEstimator(models, 30, 10000, rng.New(5))
	d := make([]float64, 8)

	b.Run("incremental-coordinate", func(b *testing.B) {
		cd := est.Coordinate(d, 3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			count := 0
			for j := 0; j < est.N; j++ {
				ok := true
				for m := range cd.G {
					if cd.C[m][j]+cd.G[m]*0.1 < 0 {
						ok = false
						break
					}
				}
				if ok {
					count++
				}
			}
		}
	})
	b.Run("full-reevaluation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d[3] = 0.1
			est.Yield(d)
			d[3] = 0
		}
	})
}

// BenchmarkWorstCaseSearch measures the Eq.-8 solver on an analytic
// 30-dimensional margin.
func BenchmarkWorstCaseSearch(b *testing.B) {
	m := func(s []float64) (float64, error) {
		v := 3.0
		for i := range s {
			v -= 0.1 * float64(i%3) * s[i]
		}
		return v, nil
	}
	for i := 0; i < b.N; i++ {
		if _, err := wcd.FindWorstCase(m, 30, wcd.Options{Seed: 9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorEval measures one full opamp performance evaluation
// (DC + AC sweeps), the unit of the paper's Table-7 effort metric.
func BenchmarkSimulatorEval(b *testing.B) {
	for _, tc := range []struct {
		name string
		p    *core.Problem
	}{
		{"ota", circuits.OTAProblem()},
		{"miller", circuits.MillerProblem()},
		{"foldedcascode", circuits.FoldedCascodeProblem()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			d := tc.p.InitialDesign()
			s := make([]float64, tc.p.NumStat())
			th := tc.p.NominalTheta()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tc.p.Eval(d, s, th); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonteCarloVerify measures the Sec.-2 verification loop.
func BenchmarkMonteCarloVerify(b *testing.B) {
	p := circuits.OTAProblem()
	d := p.InitialDesign()
	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.VerifyMC(p, d, thetaRes.PerSpec, 100, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// syntheticModels builds analytic spec models for estimator benchmarks.
func syntheticModels(nSpec, nStat, nDesign int) []*linmodel.SpecModel {
	r := rng.New(11)
	models := make([]*linmodel.SpecModel, nSpec)
	for m := range models {
		gs := make([]float64, nStat)
		gd := make([]float64, nDesign)
		s := make([]float64, nStat)
		r.NormVector(gs)
		r.NormVector(gd)
		r.NormVector(s)
		models[m] = &linmodel.SpecModel{
			Spec: m, S: s, Df: make([]float64, nDesign),
			Margin0: 0.5 + r.Float64(), GradS: gs, GradD: gd,
		}
	}
	return models
}

// BenchmarkAblationCoordinateVsGradient compares the paper's coordinate
// search against a baseline gradient ascent on the same linear models at
// the initial folded-cascode design, where the yield estimate sits on a
// near-zero plateau (Fig. 5): the gradient stalls, the coordinate search
// escapes.
func BenchmarkAblationCoordinateVsGradient(b *testing.B) {
	p := circuits.FoldedCascodeProblem()
	d := p.InitialDesign()
	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		b.Fatal(err)
	}
	wcs := make([]*wcd.WorstCase, p.NumSpecs())
	for i := range p.Specs {
		i := i
		theta := thetaRes.PerSpec[i]
		fn := func(s []float64) (float64, error) {
			vals, err := p.Eval(d, s, theta)
			if err != nil {
				return 0, err
			}
			return p.Specs[i].Margin(vals[i]), nil
		}
		wcs[i], err = wcd.FindWorstCase(fn, p.NumStat(), wcd.Options{Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	models, err := linmodel.Build(p, d, wcs, thetaRes.PerSpec, linmodel.BuildOptions{MirrorSpecs: true})
	if err != nil {
		b.Fatal(err)
	}
	est := linmodel.NewEstimator(models, p.NumStat(), 4000, rng.New(paper.Seed))
	box := coord.Box{
		Lo:  make([]float64, p.NumDesign()),
		Hi:  make([]float64, p.NumDesign()),
		Log: make([]bool, p.NumDesign()),
	}
	for k, prm := range p.Design {
		box.Lo[k], box.Hi[k], box.Log[k] = prm.Lo, prm.Hi, prm.LogScale
	}

	b.Run("coordinate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := coord.Search(box, est, nil, d, coord.Options{})
			b.ReportMetric(100*res.Yield, "model-yield-%")
		}
	})
	b.Run("gradient", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := coord.GradientSearch(box, est, nil, d, coord.GradientOptions{})
			b.ReportMetric(100*res.Yield, "model-yield-%")
		}
	})
}

// BenchmarkAblationLHSSampling compares the seed-to-seed noise of the
// linear-model yield estimate under plain Monte-Carlo and Latin-hypercube
// sampling at identical sample counts, in two regimes: a single spec
// dominated by one statistical direction (where per-dimension
// stratification pays off strongly) and an isotropic multi-spec
// intersection (where it cannot).
func BenchmarkAblationLHSSampling(b *testing.B) {
	dominant := []*linmodel.SpecModel{{
		Spec: 0,
		S:    make([]float64, 20), Df: make([]float64, 6),
		Margin0: 0.5,
		GradS:   append([]float64{2}, make([]float64, 19)...),
		GradD:   make([]float64, 6),
	}}
	isotropic := syntheticModels(4, 20, 6)
	d := make([]float64, 6)

	for _, scenario := range []struct {
		name   string
		models []*linmodel.SpecModel
	}{
		{"dominant-direction", dominant},
		{"isotropic-multispec", isotropic},
	} {
		for _, tc := range []struct {
			name string
			mk   func(seed uint64) *linmodel.Estimator
		}{
			{"plain-mc", func(seed uint64) *linmodel.Estimator {
				return linmodel.NewEstimator(scenario.models, 20, 2000, rng.New(seed))
			}},
			{"latin-hypercube", func(seed uint64) *linmodel.Estimator {
				return linmodel.NewEstimatorLHS(scenario.models, 20, 2000, rng.New(seed))
			}},
		} {
			b.Run(scenario.name+"/"+tc.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mean, sq := 0.0, 0.0
					const reps = 20
					for seed := uint64(1); seed <= reps; seed++ {
						y := tc.mk(seed).Yield(d)
						mean += y
						sq += y * y
					}
					mean /= reps
					b.ReportMetric(math.Sqrt(sq/reps-mean*mean)*1000, "yield-noise-1e-3")
				}
			})
		}
	}
}

// BenchmarkAblationQuadraticModel tests the paper's "no higher-order model
// is needed" claim: per-spec CMRR yield error of a single linearization,
// the paper's linear+mirror pair, and a radial quadratic model, against a
// simulated reference.
func BenchmarkAblationQuadraticModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := paper.RunQuadStudy(3000, 200)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1000*st.LinearErr, "linear-err-1e-3")
		b.ReportMetric(1000*st.MirrorErr, "mirror-err-1e-3")
		b.ReportMetric(1000*st.QuadErr, "quad-err-1e-3")
	}
}

// BenchmarkAblationYieldVsBetaCentering compares the paper's direct
// sampled-yield coordinate search against the older worst-case-distance
// design centering (maximize min β, the paper's ref. [10]) on the
// folded-cascode's initial linear models.
func BenchmarkAblationYieldVsBetaCentering(b *testing.B) {
	p := circuits.FoldedCascodeProblem()
	d := p.InitialDesign()
	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		b.Fatal(err)
	}
	wcs := make([]*wcd.WorstCase, p.NumSpecs())
	for i := range p.Specs {
		i := i
		theta := thetaRes.PerSpec[i]
		fn := func(s []float64) (float64, error) {
			vals, err := p.Eval(d, s, theta)
			if err != nil {
				return 0, err
			}
			return p.Specs[i].Margin(vals[i]), nil
		}
		wcs[i], err = wcd.FindWorstCase(fn, p.NumStat(), wcd.Options{Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	models, err := linmodel.Build(p, d, wcs, thetaRes.PerSpec, linmodel.BuildOptions{MirrorSpecs: true})
	if err != nil {
		b.Fatal(err)
	}
	est := linmodel.NewEstimator(models, p.NumStat(), 4000, rng.New(paper.Seed))
	box := coord.Box{
		Lo:  make([]float64, p.NumDesign()),
		Hi:  make([]float64, p.NumDesign()),
		Log: make([]bool, p.NumDesign()),
	}
	for k, prm := range p.Design {
		box.Lo[k], box.Hi[k], box.Log[k] = prm.Lo, prm.Hi, prm.LogScale
	}
	b.Run("yield-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := coord.Search(box, est, nil, d, coord.Options{})
			b.ReportMetric(100*res.Yield, "model-yield-%")
		}
	})
	b.Run("beta-centering", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := coord.MaxMinBeta(box, est, nil, d, coord.Options{})
			b.ReportMetric(100*res.Yield, "model-yield-%")
		}
	})
}

// BenchmarkBackendsOTA runs the same reduced-scale OTA yield
// optimization under every registered search backend, so the bench
// record tracks the relative cost of the strategies side by side.
func BenchmarkBackendsOTA(b *testing.B) {
	for _, algo := range Algorithms() {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Optimize(circuits.OTAProblem(), Options{
					Algorithm:     algo,
					ModelSamples:  1500,
					VerifySamples: 80,
					MaxIterations: 2,
					Seed:          7,
					HasSeed:       true,
				})
				if err != nil {
					b.Fatal(err)
				}
				reportYields(b, res)
			}
		})
	}
}
