// Signoff: after yield optimization reports "0 bad samples out of
// 10,000", how safe is the design really? Plain Monte Carlo cannot tell
// 1e-4 from 1e-9. This example optimizes the OTA, then quantifies each
// spec's true failure probability by worst-case-guided importance
// sampling — the quantitative companion to the paper's worst-case
// distances (a spec at β has failure rate ≈ Φ(−β)).
package main

import (
	"fmt"
	"log"

	"specwise"
)

func main() {
	problem := specwise.OTA()
	result, err := specwise.Optimize(problem, specwise.Options{
		ModelSamples:  5000,
		VerifySamples: 300,
		MaxIterations: 2,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	last := result.Iterations[len(result.Iterations)-1]
	fmt.Printf("optimized yield (300-sample MC): %.1f%%\n", 100*last.MCYield)

	for _, point := range []struct {
		label string
		d     []float64
	}{
		{"initial design", problem.InitialDesign()},
		{"final design", result.FinalDesign},
	} {
		fmt.Printf("\nper-spec failure probabilities at the %s:\n", point.label)
		fmt.Printf("%-8s %8s %14s %14s\n", "spec", "beta", "P(fail)", "std err")
		for _, s := range problem.Specs {
			rf, err := specwise.EstimateRareFailure(problem, point.d, s.Name, 1500, 11)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %8.2f %14.3e %14.1e\n", rf.Spec, rf.Beta, rf.PFail, rf.StdErr)
		}
	}
	fmt.Println("\n(beta is the worst-case distance in sigma; P(fail) ≈ Phi(-beta)" +
		" for linear specs — failure rates far below Monte-Carlo resolution)")
}
