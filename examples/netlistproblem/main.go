// Netlist-defined problem: the optimizer without writing any Go. The
// circuit lives in csamp.cir (a SPICE-like netlist), the yield problem in
// csamp.json (design parameters, process statistics, specs, operating
// ranges); this program just loads and runs them. The same pair of files
// works with the CLI:
//
//	go run ./cmd/yieldopt -spec examples/netlistproblem/csamp.json
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"specwise"
	"specwise/internal/report"
	"specwise/internal/yieldspec"
)

func main() {
	dir := "examples/netlistproblem"
	if _, err := os.Stat(filepath.Join(dir, "csamp.json")); err != nil {
		dir = "." // also runnable from inside the example directory
	}
	problem, err := yieldspec.Load(filepath.Join(dir, "csamp.json"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(specwise.DescribeProblem(problem))

	result, err := specwise.Optimize(problem, specwise.Options{
		ModelSamples:  5000,
		VerifySamples: 200,
		MaxIterations: 2,
		Seed:          3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	report.OptimizationTrace(os.Stdout, result)
}
