// Miller opamp walkthrough: the paper's second experiment (Table 6). Only
// global process variations are modeled; the initial design yields ~35%
// because the phase margin fails at the hot corner and the slew rate is
// marginal at the cold corner. One optimizer iteration recovers full
// yield; further iterations grow the robustness margins.
package main

import (
	"fmt"
	"log"
	"os"

	"specwise"
	"specwise/internal/report"
)

func main() {
	problem := specwise.Miller()
	fmt.Print(specwise.DescribeProblem(problem))

	// Show the operating-corner structure first: the parametric
	// *operational* yield evaluates every spec at its own worst-case
	// corner, which is what makes the initial design fail.
	d := problem.InitialDesign()
	fmt.Println("\ninitial performance across operating corners:")
	for _, th := range [][]float64{{27, 3.3}, {-40, 3.0}, {125, 3.6}} {
		vals, err := problem.Eval(d, make([]float64, problem.NumStat()), th)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  T=%4.0f°C VDD=%.1fV:", th[0], th[1])
		for i, s := range problem.Specs {
			mark := " "
			if !s.Satisfied(vals[i]) {
				mark = "!"
			}
			fmt.Printf("  %s=%.2f%s", s.Name, vals[i], mark)
		}
		fmt.Println()
	}

	result, err := specwise.Optimize(problem, specwise.Options{
		ModelSamples:  10000,
		VerifySamples: 300,
		MaxIterations: 3,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	report.OptimizationTrace(os.Stdout, result)
}
