// Custom problem: the optimizer is not tied to the built-in circuits —
// any black box mapping (design, normalized statistics, operating point)
// to performance values plugs in. This example optimizes a two-stage RC
// filter's corner frequency and passband droop against component
// tolerances, using the embedded circuit simulator directly.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"specwise"
	"specwise/internal/spice"
)

// evalFilter builds a two-stage RC low-pass and measures its -3 dB corner
// frequency [kHz] and its attenuation at a fixed 50 kHz [dB]. Raising the
// corner (bandwidth) costs stopband attenuation, so the two specs fight —
// the yield optimizer has to center the design between them under
// component tolerances. d = [R in kΩ, C in nF]; s = normalized tolerances
// of the four parts (2% resistors, 5% capacitors); theta = [temperature
// °C] with 200 ppm/°C resistor drift.
func evalFilter(d, s, theta []float64) ([]float64, error) {
	rBase := d[0] * 1e3 * (1 + 200e-6*(theta[0]-27))
	cBase := d[1] * 1e-9
	r1 := rBase * (1 + 0.02*s[0])
	r2 := rBase * (1 + 0.02*s[1])
	c1 := cBase * (1 + 0.05*s[2])
	c2 := cBase * (1 + 0.05*s[3])

	ckt := spice.New()
	in := ckt.Node("in")
	mid := ckt.Node("mid")
	out := ckt.Node("out")
	gnd := ckt.Node(spice.Ground)
	ckt.Add(spice.NewVSource("VIN", in, gnd, 0, 1))
	ckt.Add(spice.NewResistor("R1", in, mid, r1))
	ckt.Add(spice.NewCapacitor("C1", mid, gnd, c1))
	ckt.Add(spice.NewResistor("R2", mid, out, r2))
	ckt.Add(spice.NewCapacitor("C2", out, gnd, c2))

	dc, err := ckt.DC(spice.DCOptions{})
	if err != nil {
		return nil, err
	}
	// Find the -3 dB corner by bisection on |H(jw)|.
	mag := func(f float64) float64 {
		ac, err := ckt.AC(dc, 2*math.Pi*f)
		if err != nil {
			return 0
		}
		return cmplx.Abs(ac.Voltage(out))
	}
	target := 1 / math.Sqrt2
	lo, hi := 10.0, 10e6
	for i := 0; i < 40; i++ {
		fm := math.Sqrt(lo * hi)
		if mag(fm) > target {
			lo = fm
		} else {
			hi = fm
		}
	}
	corner := math.Sqrt(lo * hi)
	stop := -20 * math.Log10(math.Max(mag(50e3), 1e-12))
	return []float64{corner / 1e3, stop}, nil
}

func main() {
	problem := &specwise.Problem{
		Name: "rc-filter",
		Specs: []specwise.Spec{
			{Name: "fc", Unit: "kHz", Kind: specwise.GE, Bound: 10},  // corner at least 10 kHz
			{Name: "stop", Unit: "dB", Kind: specwise.GE, Bound: 12}, // ≥12 dB at 50 kHz
		},
		Design: []specwise.Param{
			{Name: "R", Unit: "kΩ", Init: 22, Lo: 1, Hi: 100, LogScale: true},
			{Name: "C", Unit: "nF", Init: 1.0, Lo: 0.1, Hi: 10, LogScale: true},
		},
		StatNames: []string{"R1.tol", "R2.tol", "C1.tol", "C2.tol"},
		Theta: []specwise.OpRange{
			{Name: "T", Unit: "°C", Nominal: 27, Lo: -20, Hi: 85},
		},
		Eval: evalFilter,
	}

	fmt.Print(specwise.DescribeProblem(problem))
	d := problem.InitialDesign()
	vals, err := problem.Eval(d, make([]float64, 4), problem.NominalTheta())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninitial nominal: fc = %.2f kHz, attenuation@50kHz = %.1f dB\n", vals[0], vals[1])

	result, err := specwise.Optimize(problem, specwise.Options{
		ModelSamples:  5000,
		VerifySamples: 300,
		MaxIterations: 3,
		Seed:          3,
	})
	if err != nil {
		log.Fatal(err)
	}
	first := result.Iterations[0]
	last := result.Iterations[len(result.Iterations)-1]
	fmt.Printf("yield: %.1f%% -> %.1f%%\n", 100*first.MCYield, 100*last.MCYield)
	fmt.Printf("final design: R = %.2f kΩ, C = %.3f nF\n",
		result.FinalDesign[0], result.FinalDesign[1])
}
