// Folded-cascode walkthrough: the paper's flagship experiment. The initial
// design has zero parametric yield — the transit frequency misses its
// bound outright, the slew rate fails at the cold supply corner, and CMRR
// is degraded by threshold mismatch of the current-sink pair. The run
// below performs the mismatch analysis (paper Table 5), then the full
// yield optimization (paper Table 1), and reports the per-performance
// mean/sigma improvements (paper Table 2).
package main

import (
	"fmt"
	"log"
	"os"

	"specwise"
	"specwise/internal/report"
)

func main() {
	problem := specwise.FoldedCascode()
	fmt.Print(specwise.DescribeProblem(problem))

	// --- Mismatch analysis at the initial design (Table 5) ---
	fmt.Println("\nmismatch-sensitive pairs at the initial design:")
	reports, err := specwise.AnalyzeMismatch(problem, problem.InitialDesign(), 7)
	if err != nil {
		log.Fatal(err)
	}
	for i, f := range specwise.TopPairs(reports, 3) {
		fmt.Printf("  P%d: %-6s %-10s / %-10s  m = %.3f\n", i+1, f.Spec, f.ParamK, f.ParamL, f.Value)
	}
	fmt.Println("  (CMRR dominated by current-sink and input-pair matching, as expected)")

	// --- Yield optimization (Table 1) ---
	fmt.Println("\nrunning yield optimization (takes ~1 minute at full scale)...")
	result, err := specwise.Optimize(problem, specwise.Options{
		ModelSamples:  10000,
		VerifySamples: 300,
		MaxIterations: 4,
		Seed:          42,
		Log:           os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	report.OptimizationTrace(os.Stdout, result)

	// --- Mean/sigma improvements between iterations (Table 2) ---
	if len(result.Iterations) >= 3 {
		fmt.Println("improvement between 1st and final iteration (Table-2 style):")
		report.ImprovementTable(os.Stdout, result, 1, len(result.Iterations)-1)
	}
}
