// Quickstart: optimize the parametric yield of a small five-transistor
// OTA in a few lines. The initial sizing misses its unity-gain-frequency
// target for a noticeable fraction of manufactured samples; two
// iterations of the spec-wise-linearization optimizer fix it.
package main

import (
	"fmt"
	"log"

	"specwise"
)

func main() {
	problem := specwise.OTA()
	fmt.Print(specwise.DescribeProblem(problem))

	result, err := specwise.Optimize(problem, specwise.Options{
		ModelSamples:  5000, // Monte-Carlo samples over the linear models
		VerifySamples: 200,  // simulation-based verification samples
		MaxIterations: 2,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}

	first := result.Iterations[0]
	last := result.Iterations[len(result.Iterations)-1]
	fmt.Printf("\nyield: %.1f%% -> %.1f%% in %d iterations (%d circuit simulations)\n",
		100*first.MCYield, 100*last.MCYield,
		len(result.Iterations)-1, result.Simulations)

	fmt.Println("\nfinal design:")
	for k, prm := range problem.Design {
		fmt.Printf("  %-4s %7.2f %s (was %g)\n", prm.Name, result.FinalDesign[k], prm.Unit, prm.Init)
	}

	// Independent re-verification at the final design.
	mc, err := specwise.VerifyYield(problem, result.FinalDesign, 500, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nindependent verification: %.1f%% yield (95%% CI [%.1f%%, %.1f%%])\n",
		100*mc.Estimate.Yield(), 100*mc.Estimate.Lo, 100*mc.Estimate.Hi)

	// Classic 3-sigma skew-corner check at the final design.
	corners, err := specwise.AnalyzeCorners(problem, result.FinalDesign, 3)
	if err != nil {
		log.Fatal(err)
	}
	fails := 0
	for _, c := range corners {
		if !c.Pass {
			fails++
		}
	}
	fmt.Printf("corner check: %d/%d skew corners pass\n", len(corners)-fails, len(corners))
}
