package specwise

import (
	"strings"
	"testing"
)

func TestPublicProblemConstructors(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *Problem
	}{
		{"folded-cascode", FoldedCascode()},
		{"miller", Miller()},
		{"ota5", OTA()},
	} {
		if err := tc.p.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if tc.p.Name != tc.name {
			t.Errorf("name = %q want %q", tc.p.Name, tc.name)
		}
		// Every built-in problem must evaluate cleanly at its initial
		// design and nominal conditions.
		vals, err := tc.p.Eval(tc.p.InitialDesign(), make([]float64, tc.p.NumStat()), tc.p.NominalTheta())
		if err != nil {
			t.Fatalf("%s eval: %v", tc.name, err)
		}
		if len(vals) != tc.p.NumSpecs() {
			t.Errorf("%s: %d values for %d specs", tc.name, len(vals), tc.p.NumSpecs())
		}
	}
}

func TestOptimizeOTAPublicAPI(t *testing.T) {
	p := OTA()
	res, err := Optimize(p, Options{
		ModelSamples:  2000,
		VerifySamples: 100,
		MaxIterations: 1,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) < 2 {
		t.Fatalf("iterations = %d", len(res.Iterations))
	}
	first, last := res.Iterations[0], res.Iterations[len(res.Iterations)-1]
	if last.MCYield < first.MCYield {
		t.Errorf("yield fell: %v -> %v", first.MCYield, last.MCYield)
	}
}

func TestVerifyYieldPublicAPI(t *testing.T) {
	p := OTA()
	mc, err := VerifyYield(p, p.InitialDesign(), 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Estimate.Total != 60 {
		t.Errorf("total = %d", mc.Estimate.Total)
	}
	if y := mc.Estimate.Yield(); y < 0 || y > 1 {
		t.Errorf("yield = %v", y)
	}
	if len(mc.BadPerSpec) != p.NumSpecs() {
		t.Errorf("bad-per-spec length %d", len(mc.BadPerSpec))
	}
}

func TestAnalyzeMismatchPublicAPI(t *testing.T) {
	p := OTA()
	reports, err := AnalyzeMismatch(p, p.InitialDesign(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != p.NumSpecs() {
		t.Fatalf("reports = %d want %d", len(reports), p.NumSpecs())
	}
	for _, r := range reports {
		for i := 1; i < len(r.Pairs); i++ {
			if r.Pairs[i].Value > r.Pairs[i-1].Value {
				t.Errorf("spec %s: pairs not sorted", r.Spec)
			}
		}
		for _, pm := range r.Pairs {
			if pm.Value < 0 || pm.Value > 1 {
				t.Errorf("measure out of range: %v", pm.Value)
			}
			// Like-kind pairing only.
			kindK := pm.ParamK[strings.LastIndex(pm.ParamK, "."):]
			kindL := pm.ParamL[strings.LastIndex(pm.ParamL, "."):]
			if kindK != kindL {
				t.Errorf("mixed-kind pair %s/%s", pm.ParamK, pm.ParamL)
			}
		}
	}
	top := TopPairs(reports, 4)
	for i := 1; i < len(top); i++ {
		if top[i].Value > top[i-1].Value {
			t.Error("TopPairs not sorted")
		}
	}
}

func TestLikeKindPairsExcludesGlobals(t *testing.T) {
	pairs := likeKindPairs([]string{"g.dVthN", "M1.dVth", "M2.dVth", "M1.dBeta", "M2.dBeta"})
	for _, pr := range pairs {
		if pr[0] == 0 || pr[1] == 0 {
			t.Errorf("global parameter paired: %v", pr)
		}
	}
	// Two kinds with two members each → exactly two pairs.
	if len(pairs) != 2 {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestDescribeProblem(t *testing.T) {
	desc := DescribeProblem(OTA())
	for _, want := range []string{"ota5", "spec", "design", "theta", "CMRR"} {
		if !strings.Contains(desc, want) {
			t.Errorf("description missing %q:\n%s", want, desc)
		}
	}
}

func TestEstimateRareFailure(t *testing.T) {
	p := OTA()
	// At the initial design the Power spec is extremely robust: plain MC
	// sees zero failures, the IS estimate must resolve a tiny PFail.
	rf, err := EstimateRareFailure(p, p.InitialDesign(), "Power", 600, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Beta < 3 {
		t.Errorf("Power beta = %v; expected a robust spec", rf.Beta)
	}
	if rf.PFail < 0 || rf.PFail > 0.01 {
		t.Errorf("PFail = %v; expected a small probability", rf.PFail)
	}
	if rf.Evals == 0 {
		t.Error("no evaluations counted")
	}
	if _, err := EstimateRareFailure(p, p.InitialDesign(), "nope", 10, 1); err == nil {
		t.Error("unknown spec accepted")
	}
}

func TestAnalyzeCorners(t *testing.T) {
	p := OTA()
	corners, err := AnalyzeCorners(p, p.InitialDesign(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// OTA: 2 globals → 4 skews; 2 theta axes → 4 corners + nominal = 5.
	if len(corners) != 4*5 {
		t.Fatalf("corners = %d want 20", len(corners))
	}
	anyFail := false
	for _, c := range corners {
		if len(c.Values) != p.NumSpecs() {
			t.Fatalf("corner %s has %d values", c.Name, len(c.Values))
		}
		if c.WorstSpec == "" {
			t.Error("missing worst spec")
		}
		if !c.Pass {
			anyFail = true
		}
	}
	// The marginal initial OTA must fail somewhere at ±3σ skew corners.
	if !anyFail {
		t.Error("no corner failures at 3-sigma skew; initial OTA should be marginal")
	}
}
