// Package testprob provides cheap closed-form test problems shared by
// the engine and search-backend test suites. They live outside the
// packages under test so that both internal/core tests and the backend
// packages (which import core, and therefore cannot be imported by
// core's in-package tests) can use the same fixtures.
package testprob

import "specwise/internal/problem"

// Analytic returns a two-knob linear problem with a known optimum.
// Spec "f" = d0 − 2 + 0.5·s0 must be >= 0; spec "g" = 6 − d0 − d1 +
// 0.5·s1 must be >= 0; constraint c = 8 − d0 − d1 >= 0. Raising d0
// fixes f; the constraint and g cap it.
func Analytic() *problem.Problem {
	return &problem.Problem{
		Name: "analytic",
		Specs: []problem.Spec{
			{Name: "f", Kind: problem.GE, Bound: 0},
			{Name: "g", Kind: problem.GE, Bound: 0},
		},
		Design: []problem.Param{
			{Name: "d0", Init: 0, Lo: -1, Hi: 10},
			{Name: "d1", Init: 0, Lo: -1, Hi: 10},
		},
		StatNames: []string{"s0", "s1"},
		Theta:     []problem.OpRange{{Name: "t", Nominal: 0, Lo: -1, Hi: 1}},
		Eval: func(d, s, th []float64) ([]float64, error) {
			f := d[0] - 2 + 0.5*s[0] - 0.1*th[0]
			g := 6 - d[0] - d[1] + 0.5*s[1] - 0.1*th[0]
			return []float64{f, g}, nil
		},
		ConstraintNames: []string{"cap"},
		Constraints: func(d []float64) ([]float64, error) {
			return []float64{8 - d[0] - d[1]}, nil
		},
	}
}

// Quad returns a one-knob problem with a symmetric quadratic spec whose
// nominal statistical gradient vanishes: q = d0 − 0.25·(s0 − s1)². The
// nominal-point linearization is blind to it; the worst-case
// linearization (with its mirror model) is not.
func Quad() *problem.Problem {
	return &problem.Problem{
		Name:  "quad",
		Specs: []problem.Spec{{Name: "q", Kind: problem.GE, Bound: 0}},
		Design: []problem.Param{
			{Name: "d0", Init: 1, Lo: 0.5, Hi: 4},
		},
		StatNames: []string{"s0", "s1"},
		Theta:     []problem.OpRange{},
		Eval: func(d, s, th []float64) ([]float64, error) {
			diff := s[0] - s[1]
			return []float64{d[0] - 0.25*diff*diff}, nil
		},
	}
}
