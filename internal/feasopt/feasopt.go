// Package feasopt implements the feasibility machinery of the paper's
// Secs. 5.1, 5.4 and 5.5: linearization of the functional constraints
// c(d) ≥ 0 at the current iteration point (Eq. 15), the search for a
// feasible starting point (closest feasible design to d0), and the
// simulation-based line search (Eq. 23) that pulls the coordinate-search
// optimum back into the true feasibility region.
package feasopt

import (
	"errors"
	"fmt"

	"specwise/internal/coord"
	"specwise/internal/linalg"
	"specwise/internal/problem"
)

// Linearize measures c(d_f) and its Jacobian by forward differences,
// producing the linearized feasibility polytope of Eq. 15. It costs
// numDesign+1 constraint evaluations.
func Linearize(p *problem.Problem, df []float64, fdStep float64) (*coord.LinearConstraints, error) {
	if p.Constraints == nil {
		return nil, errors.New("feasopt: problem has no constraints")
	}
	if fdStep == 0 {
		fdStep = 0.02
	}
	c0, err := p.Constraints(df)
	if err != nil {
		return nil, err
	}
	nc := len(c0)
	jac := make([][]float64, nc)
	for j := range jac {
		jac[j] = make([]float64, p.NumDesign())
	}
	work := append([]float64(nil), df...)
	for k, prm := range p.Design {
		h := fdStep * (prm.Hi - prm.Lo)
		if h == 0 {
			continue
		}
		if work[k]+h > prm.Hi {
			h = -h
		}
		work[k] = df[k] + h
		ck, err := p.Constraints(work)
		if err != nil {
			return nil, err
		}
		work[k] = df[k]
		for j := range ck {
			jac[j][k] = (ck[j] - c0[j]) / h
		}
	}
	return &coord.LinearConstraints{
		Df: append([]float64(nil), df...),
		C0: c0,
		J:  jac,
	}, nil
}

// MinMargin returns the smallest constraint margin (+Inf when the problem
// has no constraints).
func MinMargin(c []float64) float64 {
	min := 1e308
	for _, v := range c {
		if v < min {
			min = v
		}
	}
	if len(c) == 0 {
		return 1e308
	}
	return min
}

// FeasibleStart implements Sec. 5.5: when d0 violates c(d) ≥ 0, it
// iterates damped Gauss–Newton corrections on the linearized violated
// constraints — the minimum-norm design change zeroing them — until the
// design is feasible, staying inside the design box throughout.
func FeasibleStart(p *problem.Problem, d0 []float64, maxIter int) ([]float64, error) {
	if maxIter == 0 {
		maxIter = 12
	}
	d := append([]float64(nil), d0...)
	p.ClampDesign(d)
	if p.Constraints == nil {
		return d, nil
	}
	const safety = 0.01 // target margin so the start is strictly feasible

	for iter := 0; iter < maxIter; iter++ {
		lc, err := Linearize(p, d, 0)
		if err != nil {
			return nil, err
		}
		if MinMargin(lc.C0) >= 0 {
			return d, nil
		}
		// Collect the violated (and nearly violated) rows and solve the
		// least-squares step that lifts them to the safety margin.
		var rows [][]float64
		var rhs []float64
		for j, c := range lc.C0 {
			if c < safety {
				rows = append(rows, lc.J[j])
				rhs = append(rhs, safety-c)
			}
		}
		a := linalg.NewMatrix(len(rows), p.NumDesign())
		for j, r := range rows {
			copy(a.Row(j), r)
		}
		// Damped least squares: (AᵀA + λI)Δ = Aᵀr keeps steps sane when
		// rows are nearly dependent.
		at := a.T()
		ata := at.Mul(a)
		for k := 0; k < p.NumDesign(); k++ {
			ata.Addto(k, k, 1e-6)
		}
		atr := at.MulVec(linalg.Vector(rhs))
		step, err := linalg.Solve(ata, atr)
		if err != nil {
			return nil, fmt.Errorf("feasopt: feasible-start step failed: %w", err)
		}
		for k := range d {
			d[k] += step[k]
		}
		p.ClampDesign(d)
	}
	// Accept the best effort; the caller decides whether a residual
	// violation is fatal.
	c, err := p.Constraints(d)
	if err != nil {
		return nil, err
	}
	if MinMargin(c) < 0 {
		return d, fmt.Errorf("feasopt: no feasible start found within %d iterations (min margin %.4g)",
			maxIter, MinMargin(c))
	}
	return d, nil
}

// LineSearch implements Eq. 23: the largest γ ∈ [0, 1] for which
// d_f + γ·(d* − d_f) satisfies the true (simulated) constraints. It uses
// bisection against real constraint evaluations, about log2(1/tol) + 1
// simulations, mirroring the paper's "small number of circuit
// simulations (e.g. 10)".
func LineSearch(p *problem.Problem, df, dstar []float64, steps int) (gamma float64, dNew []float64, err error) {
	if steps == 0 {
		steps = 9
	}
	r := make([]float64, len(df))
	for k := range r {
		r[k] = dstar[k] - df[k]
	}
	at := func(g float64) []float64 {
		d := make([]float64, len(df))
		for k := range d {
			d[k] = df[k] + g*r[k]
		}
		return p.ClampDesign(d)
	}
	if p.Constraints == nil {
		return 1, at(1), nil
	}
	feasible := func(g float64) (bool, error) {
		c, err := p.Constraints(at(g))
		if err != nil {
			return false, err
		}
		return MinMargin(c) >= 0, nil
	}
	ok, err := feasible(1)
	if err != nil {
		return 0, nil, err
	}
	if ok {
		return 1, at(1), nil
	}
	lo, hi := 0.0, 1.0 // lo assumed feasible (df is), hi infeasible
	for i := 0; i < steps; i++ {
		mid := (lo + hi) / 2
		ok, err := feasible(mid)
		if err != nil {
			return 0, nil, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, at(lo), nil
}
