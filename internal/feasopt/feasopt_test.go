package feasopt

import (
	"math"
	"testing"

	"specwise/internal/problem"
)

// boxProblem: constraints c1 = 4 − d0 − d1, c2 = d0 − 1 (so the feasible
// region is 1 <= d0, d0 + d1 <= 4).
func boxProblem() *problem.Problem {
	return &problem.Problem{
		Name:  "box",
		Specs: []problem.Spec{{Name: "f", Kind: problem.GE, Bound: 0}},
		Design: []problem.Param{
			{Name: "d0", Init: 0, Lo: -10, Hi: 10},
			{Name: "d1", Init: 0, Lo: -10, Hi: 10},
		},
		StatNames:       []string{"s0"},
		ConstraintNames: []string{"cap", "floor"},
		Eval: func(d, s, th []float64) ([]float64, error) {
			return []float64{1}, nil
		},
		Constraints: func(d []float64) ([]float64, error) {
			return []float64{4 - d[0] - d[1], d[0] - 1}, nil
		},
	}
}

func TestLinearizeExactOnLinearConstraints(t *testing.T) {
	p := boxProblem()
	lc, err := Linearize(p, []float64{2, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lc.C0[0]-1) > 1e-9 || math.Abs(lc.C0[1]-1) > 1e-9 {
		t.Errorf("C0 = %v", lc.C0)
	}
	// Jacobian rows: [-1, -1] and [1, 0].
	if math.Abs(lc.J[0][0]+1) > 1e-6 || math.Abs(lc.J[0][1]+1) > 1e-6 {
		t.Errorf("J[0] = %v", lc.J[0])
	}
	if math.Abs(lc.J[1][0]-1) > 1e-6 || math.Abs(lc.J[1][1]) > 1e-6 {
		t.Errorf("J[1] = %v", lc.J[1])
	}
}

func TestLinearizeRequiresConstraints(t *testing.T) {
	p := boxProblem()
	p.Constraints = nil
	if _, err := Linearize(p, []float64{0, 0}, 0); err == nil {
		t.Error("expected error without constraints")
	}
}

func TestMinMargin(t *testing.T) {
	if MinMargin([]float64{3, -1, 2}) != -1 {
		t.Error("MinMargin wrong")
	}
	if MinMargin(nil) < 1e300 {
		t.Error("empty MinMargin should be huge")
	}
}

func TestFeasibleStartAlreadyFeasible(t *testing.T) {
	p := boxProblem()
	d, err := FeasibleStart(p, []float64{2, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 2 || d[1] != 1 {
		t.Errorf("feasible point moved: %v", d)
	}
}

func TestFeasibleStartRecovers(t *testing.T) {
	p := boxProblem()
	// d0 = 0 violates d0 >= 1; d = (5, 5) violates the cap.
	for _, start := range [][]float64{{0, 0}, {5, 5}, {-3, 9}} {
		d, err := FeasibleStart(p, start, 0)
		if err != nil {
			t.Fatalf("start %v: %v", start, err)
		}
		c, _ := p.Constraints(d)
		if MinMargin(c) < 0 {
			t.Errorf("start %v: result %v still infeasible (%v)", start, d, c)
		}
	}
}

func TestFeasibleStartMinimalMove(t *testing.T) {
	p := boxProblem()
	// From (0.5, 0): nearest feasible point is (1, 0) — only d0 moves.
	d, err := FeasibleStart(p, []float64{0.5, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[0]-1) > 0.1 || math.Abs(d[1]) > 0.1 {
		t.Errorf("moved to %v; nearest feasible is ≈(1, 0)", d)
	}
}

func TestLineSearchFullStep(t *testing.T) {
	p := boxProblem()
	gamma, d, err := LineSearch(p, []float64{1.5, 0}, []float64{2, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gamma != 1 {
		t.Errorf("gamma = %v want 1 (target feasible)", gamma)
	}
	if d[0] != 2 || d[1] != 1 {
		t.Errorf("d = %v", d)
	}
}

func TestLineSearchStopsAtBoundary(t *testing.T) {
	p := boxProblem()
	// Target (5, 5) violates d0+d1 <= 4; the ray from (1.5, 0.5) hits the
	// boundary at γ where 2 + γ·(10−2) = 4 → γ = 0.25.
	gamma, d, err := LineSearch(p, []float64{1.5, 0.5}, []float64{5, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gamma >= 0.26 || gamma < 0.2 {
		t.Errorf("gamma = %v want just below 0.25", gamma)
	}
	c, _ := p.Constraints(d)
	if MinMargin(c) < 0 {
		t.Errorf("line-search result infeasible: %v", d)
	}
}

func TestLineSearchNoConstraints(t *testing.T) {
	p := boxProblem()
	p.Constraints = nil
	gamma, d, err := LineSearch(p, []float64{0, 0}, []float64{3, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gamma != 1 || d[0] != 3 {
		t.Errorf("gamma=%v d=%v", gamma, d)
	}
}
