package report

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"specwise/internal/core"
	"specwise/internal/stat"
)

func jsonFixtureResult() *core.Result {
	p := &core.Problem{
		Name: "fixture",
		Specs: []core.Spec{
			{Name: "A0", Unit: "dB", Kind: core.GE, Bound: 40},
			{Name: "P", Unit: "mW", Kind: core.LE, Bound: 2},
		},
		Design: []core.Param{
			{Name: "W1", Unit: "um", Init: 10, Lo: 1, Hi: 100},
		},
		StatNames: []string{"s0"},
		Eval:      func(d, s, th []float64) ([]float64, error) { return []float64{50, 1}, nil },
	}
	mc := &core.MCResult{
		Estimate:   stat.NewYieldEstimate(95, 100),
		BadPerSpec: []int{5, 0},
		Moments:    make([]stat.Moments, 2),
		Evals:      100,
	}
	return &core.Result{
		Problem: p,
		Iterations: []core.Iteration{
			{
				Design:     []float64{10},
				ModelYield: 0.5,
				MCYield:    -1, // verification skipped
				Specs: []core.SpecState{
					{NominalMargin: 10, BadPerMille: 500, Beta: 1.5},
					{NominalMargin: 1, BadPerMille: 0, Beta: 3},
				},
			},
			{
				Design:     []float64{20},
				ModelYield: 0.96,
				MCYield:    0.95,
				MCResult:   mc,
				Specs: []core.SpecState{
					// NaN moments (e.g. broken samples only) must vanish
					// rather than poison the JSON encoding.
					{NominalMargin: 12, BadPerMille: 40, Beta: 2.1, MCMean: math.NaN(), MCSigma: math.NaN(), MCBad: 5},
					{NominalMargin: 1, BadPerMille: 0, Beta: 3, MCMean: 1.0, MCSigma: 0.1},
				},
			},
		},
		FinalDesign:    []float64{20},
		Simulations:    1234,
		ConstraintSims: 56,
	}
}

func TestJSONResultRoundTrips(t *testing.T) {
	out := JSONResult(jsonFixtureResult())
	blob, err := json.Marshal(out)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	s := string(blob)
	if strings.Contains(s, "NaN") {
		t.Error("NaN leaked into the JSON encoding")
	}

	var back Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Problem != "fixture" || len(back.Iterations) != 2 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	if back.Specs[0].Op != ">=" || back.Specs[1].Op != "<=" {
		t.Errorf("spec ops = %q, %q", back.Specs[0].Op, back.Specs[1].Op)
	}
	if back.Iterations[0].Label != "Initial" || back.Iterations[1].Label != "1st Iter." {
		t.Errorf("labels = %q, %q", back.Iterations[0].Label, back.Iterations[1].Label)
	}
	// Unverified iteration: no MC fields at all.
	if back.Iterations[0].MCYield != nil {
		t.Error("skipped verification produced an MC yield")
	}
	// Verified iteration: yield and Wilson interval present.
	it := back.Iterations[1]
	if it.MCYield == nil || *it.MCYield != 0.95 {
		t.Errorf("MCYield = %v", it.MCYield)
	}
	if it.MCYieldLo == nil || it.MCYieldHi == nil || !(*it.MCYieldLo < 0.95 && 0.95 < *it.MCYieldHi) {
		t.Errorf("Wilson interval = %v, %v", it.MCYieldLo, it.MCYieldHi)
	}
	// The NaN moment became an absent field, not a zero.
	if it.Specs[0].MCMean != nil {
		t.Errorf("NaN mean survived as %v", *it.Specs[0].MCMean)
	}
	if it.Specs[1].MCMean == nil || *it.Specs[1].MCMean != 1.0 {
		t.Errorf("finite mean lost: %v", it.Specs[1].MCMean)
	}
	if back.FinalDesign[0].Name != "W1" || back.FinalDesign[0].Value != 20 {
		t.Errorf("final design = %+v", back.FinalDesign)
	}
	if back.Simulations != 1234 || back.ConstraintSims != 56 {
		t.Errorf("effort counters = %d, %d", back.Simulations, back.ConstraintSims)
	}
}

func TestJSONVerification(t *testing.T) {
	p := &core.Problem{
		Name:      "fixture",
		Specs:     []core.Spec{{Name: "A0", Kind: core.GE, Bound: 40}},
		StatNames: []string{"s0"},
		Eval:      func(d, s, th []float64) ([]float64, error) { return []float64{50}, nil },
	}
	var mom stat.Moments
	mom.Add(49)
	mom.Add(51)
	mc := &core.MCResult{
		Estimate:   stat.NewYieldEstimate(98, 100),
		BadPerSpec: []int{2},
		Moments:    []stat.Moments{mom},
		Evals:      100,
	}
	v := JSONVerification(p, mc)
	if v.Yield != 0.98 || v.Samples != 100 || v.Evals != 100 {
		t.Errorf("verification = %+v", v)
	}
	if v.Specs[0].Bad != 2 || v.Specs[0].Mean == nil || *v.Specs[0].Mean != 50 {
		t.Errorf("spec summary = %+v", v.Specs[0])
	}
	if _, err := json.Marshal(v); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}
