package report

import (
	"strings"
	"testing"

	"specwise/internal/core"
	"specwise/internal/stat"
)

func fakeResult() *core.Result {
	p := &core.Problem{
		Name: "fake",
		Specs: []core.Spec{
			{Name: "A0", Unit: "dB", Kind: core.GE, Bound: 40},
			{Name: "P", Unit: "mW", Kind: core.LE, Bound: 2},
		},
		Design: []core.Param{
			{Name: "W", Unit: "µm", Init: 10, Lo: 1, Hi: 100},
		},
		StatNames: []string{"s"},
		Eval:      func(d, s, th []float64) ([]float64, error) { return []float64{50, 1}, nil },
	}
	mc := &core.MCResult{
		Estimate:   stat.NewYieldEstimate(90, 100),
		BadPerSpec: []int{10, 0},
	}
	return &core.Result{
		Problem: p,
		Iterations: []core.Iteration{
			{
				Design: []float64{10},
				Specs: []core.SpecState{
					{NominalMargin: -2.3, BadPerMille: 980.4, MCBad: 10, MCMean: 38, MCSigma: 2, Beta: -1.25},
					{NominalMargin: 0.5, BadPerMille: 0, MCMean: 1.5, MCSigma: 0.1, Beta: 3},
				},
				ModelYield: 0.1, MCYield: 0.9, MCResult: mc,
			},
			{
				Design: []float64{20},
				Specs: []core.SpecState{
					{NominalMargin: 4.7, BadPerMille: 0.9, MCMean: 45, MCSigma: 1},
					{NominalMargin: 0.6, BadPerMille: 0, MCMean: 1.4, MCSigma: 0.08},
				},
				ModelYield: 0.99, MCYield: 0.99, MCResult: mc,
			},
		},
		FinalDesign:    []float64{20},
		Simulations:    123,
		ConstraintSims: 7,
	}
}

func TestOptimizationTraceFormat(t *testing.T) {
	var b strings.Builder
	OptimizationTrace(&b, fakeResult())
	out := b.String()
	for _, want := range []string{
		"A0 [dB]", "P [mW]", "> 40", "< 2",
		"Initial", "1st Iter.",
		"980.4", "90.0%", "99.0%", "-1.25",
		"final design: W=20µm",
		"123 performance + 7 constraint",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestBlockLabels(t *testing.T) {
	for i, want := range []string{"Initial", "1st Iter.", "2nd Iter.", "3rd Iter.", "4th Iter."} {
		if got := blockLabel(i); got != want {
			t.Errorf("blockLabel(%d) = %q want %q", i, got, want)
		}
	}
}

func TestImprovementTable(t *testing.T) {
	var b strings.Builder
	ImprovementTable(&b, fakeResult(), 0, 1)
	out := b.String()
	if !strings.Contains(out, "A0") || !strings.Contains(out, "dmu") {
		t.Errorf("improvement table malformed:\n%s", out)
	}
	// A0: μ 38→45, distance to bound −2 → dμ/(μ−fb) = 7/−2 = −350%; the
	// sign convention follows the raw ratio, so just require the sigma
	// column: σ 2→1 → −50%.
	if !strings.Contains(out, "-50.0%") {
		t.Errorf("sigma reduction missing:\n%s", out)
	}
}

func TestMismatchTable(t *testing.T) {
	var b strings.Builder
	MismatchTable(&b, "CMRR", []string{"M3/M4", "M1/M2"}, []float64{0.84, 0.11})
	out := b.String()
	for _, want := range []string{"CMRR", "P1", "M3/M4", "0.840", "P2", "0.110"} {
		if !strings.Contains(out, want) {
			t.Errorf("mismatch table missing %q:\n%s", want, out)
		}
	}
}
