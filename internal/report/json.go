package report

import (
	"math"

	"specwise/internal/core"
)

// This file defines the JSON-serializable mirror of core.Result used by
// the HTTP job service. The optimizer's native records hold models,
// worst-case points and NaN sentinels that either do not belong on the
// wire or do not survive encoding/json; Result flattens them into plain
// numbers keyed by spec and parameter names.

// DesignValue is one named design-parameter value.
type DesignValue struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit,omitempty"`
	Value float64 `json:"value"`
}

// SpecInfo describes one performance specification.
type SpecInfo struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit,omitempty"`
	Op    string  `json:"op"` // ">=" or "<="
	Bound float64 `json:"bound"`
}

// SpecState is one spec's situation at one iteration, mirroring the
// per-spec rows of the paper's tables.
type SpecState struct {
	Name          string   `json:"name"`
	NominalMargin float64  `json:"nominalMargin"`
	BadPerMille   float64  `json:"badPerMille"`
	Beta          float64  `json:"beta"`
	MCMean        *float64 `json:"mcMean,omitempty"`
	MCSigma       *float64 `json:"mcSigma,omitempty"`
	MCBad         int      `json:"mcBad,omitempty"`
}

// IterationRecord is one optimizer state ("Initial", "1st Iter.", ...).
type IterationRecord struct {
	Label      string        `json:"label"`
	Design     []DesignValue `json:"design"`
	ModelYield float64       `json:"modelYield"`
	// MCYield is the verified yield with its Wilson interval; all three
	// are absent when verification was skipped.
	MCYield   *float64    `json:"mcYield,omitempty"`
	MCYieldLo *float64    `json:"mcYieldLo,omitempty"`
	MCYieldHi *float64    `json:"mcYieldHi,omitempty"`
	Specs     []SpecState `json:"specs"`
}

// Perf reports the evaluation-reuse counters of a run: how often the
// memoization cache and singleflight layer spared a simulation, and how
// the DC warm-start machinery behaved underneath the evaluations that
// did run.
type Perf struct {
	EvalCacheHits   int64 `json:"evalCacheHits"`
	EvalCacheMisses int64 `json:"evalCacheMisses"`
	// EvalCacheCrossHits is the subset of hits answered from an entry a
	// sibling job stored in a shared cache (always zero for per-run
	// caching) — the cross-job reuse a batch sweep buys.
	EvalCacheCrossHits    int64 `json:"evalCacheCrossHits,omitempty"`
	EvalCacheDeduped      int64 `json:"evalCacheDeduped"`
	EvalCacheOverflow     int64 `json:"evalCacheOverflow,omitempty"`
	ConstraintCacheHits   int64 `json:"constraintCacheHits"`
	ConstraintCacheMisses int64 `json:"constraintCacheMisses"`
	WarmStarts            int64 `json:"warmStarts"`
	WarmConverged         int64 `json:"warmConverged"`
	DCFallbacks           int64 `json:"dcFallbacks"`
	NewtonIters           int64 `json:"newtonIters"`
	// Linear-solver effort underneath the Newton iterations: the backend
	// in use, its factorization/solve counts, and the sparsity of the
	// last assembled MNA system (factorNNZ − matrixNNZ is the fill-in).
	Solver         string `json:"solver,omitempty"`
	Factorizations int64  `json:"factorizations"`
	Solves         int64  `json:"solves"`
	SymbolicFacts  int64  `json:"symbolicFactorizations"`
	MatrixNNZ      int64  `json:"matrixNNZ,omitempty"`
	FactorNNZ      int64  `json:"factorNNZ,omitempty"`
	// Solver wall time split by analysis type, in nanoseconds.
	DCSolveNanos   int64 `json:"dcSolveNanos,omitempty"`
	ACSolveNanos   int64 `json:"acSolveNanos,omitempty"`
	TranSolveNanos int64 `json:"tranSolveNanos,omitempty"`
}

// Result is the full JSON-serializable record of an optimization run.
type Result struct {
	Problem string `json:"problem"`
	// Algorithm names the search backend that produced the run
	// ("feasguided", "cem", ...). omitempty keeps results written before
	// the field existed byte-stable on re-marshal.
	Algorithm      string            `json:"algorithm,omitempty"`
	Specs          []SpecInfo        `json:"specs"`
	Iterations     []IterationRecord `json:"iterations"`
	FinalDesign    []DesignValue     `json:"finalDesign"`
	Simulations    int64             `json:"simulations"`
	ConstraintSims int64             `json:"constraintSims"`
	Perf           Perf              `json:"perf"`
}

// StripVolatile zeroes the perf fields that legitimately vary between
// bit-identical runs: the wall-clock solver timings and the
// scheduling-dependent cache-hit/dedup split (a lookup racing an
// in-flight computation lands as a hit or a dedup depending on timing;
// the miss count — one per unique simulation — stays deterministic).
// Everything else in a Result is deterministic for a given (problem,
// seed, options), so two runs of the same request — on the in-process
// pool or on any remote worker — compare byte-equal after stripping.
func (r *Result) StripVolatile() {
	r.Perf.DCSolveNanos = 0
	r.Perf.ACSolveNanos = 0
	r.Perf.TranSolveNanos = 0
	r.Perf.EvalCacheHits = 0
	r.Perf.EvalCacheCrossHits = 0
	r.Perf.EvalCacheDeduped = 0
}

// StripEffortVolatile additionally zeroes the effort counters that a
// shared evaluation cache legitimately changes: with sharing on, which
// job pays for a simulation depends on sweep scheduling, so per-member
// Simulations, ConstraintSims and the remaining cache counters vary even
// though every reported design, yield and margin is bit-identical. Use
// this (not StripVolatile) when comparing a shared-cache run against an
// isolated one; keep StripVolatile for same-configuration comparisons,
// where the effort counters are themselves a deterministic signal.
func (r *Result) StripEffortVolatile() {
	r.StripVolatile()
	r.Simulations = 0
	r.ConstraintSims = 0
	r.Perf.EvalCacheMisses = 0
	r.Perf.EvalCacheOverflow = 0
	r.Perf.ConstraintCacheHits = 0
	r.Perf.ConstraintCacheMisses = 0
	// The simulator-side counters follow the simulation count.
	r.Perf.WarmStarts = 0
	r.Perf.WarmConverged = 0
	r.Perf.DCFallbacks = 0
	r.Perf.NewtonIters = 0
	r.Perf.Factorizations = 0
	r.Perf.Solves = 0
	r.Perf.SymbolicFacts = 0
}

// num returns a pointer to v, or nil when v is not a finite number —
// encoding/json rejects NaN and ±Inf, so they become absent fields.
func num(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// JSONResult flattens a core.Result into its wire form.
func JSONResult(res *core.Result) *Result {
	p := res.Problem
	out := &Result{
		Problem:        p.Name,
		Algorithm:      res.Algorithm,
		Simulations:    res.Simulations,
		ConstraintSims: res.ConstraintSims,
		Perf: Perf{
			EvalCacheHits:         res.EvalCache.Hits,
			EvalCacheMisses:       res.EvalCache.Misses,
			EvalCacheCrossHits:    res.EvalCache.CrossHits,
			EvalCacheDeduped:      res.EvalCache.Deduped,
			EvalCacheOverflow:     res.EvalCache.Overflow,
			ConstraintCacheHits:   res.EvalCache.ConstraintHits,
			ConstraintCacheMisses: res.EvalCache.ConstraintMisses,
			WarmStarts:            res.Sim.WarmStarts,
			WarmConverged:         res.Sim.WarmConverged,
			DCFallbacks:           res.Sim.Fallbacks,
			NewtonIters:           res.Sim.NewtonIters,
			Solver:                res.Sim.Solver,
			Factorizations:        res.Sim.Factorizations,
			Solves:                res.Sim.Solves,
			SymbolicFacts:         res.Sim.SymbolicFacts,
			MatrixNNZ:             res.Sim.MatrixNNZ,
			FactorNNZ:             res.Sim.FactorNNZ,
			DCSolveNanos:          res.Sim.DCSolveNanos,
			ACSolveNanos:          res.Sim.ACSolveNanos,
			TranSolveNanos:        res.Sim.TranSolveNanos,
		},
	}
	for _, s := range p.Specs {
		op := ">="
		if s.Kind == core.LE {
			op = "<="
		}
		out.Specs = append(out.Specs, SpecInfo{Name: s.Name, Unit: s.Unit, Op: op, Bound: s.Bound})
	}
	design := func(d []float64) []DesignValue {
		vals := make([]DesignValue, len(p.Design))
		for k, prm := range p.Design {
			vals[k] = DesignValue{Name: prm.Name, Unit: prm.Unit, Value: d[k]}
		}
		return vals
	}
	for i, it := range res.Iterations {
		rec := IterationRecord{
			Label:      blockLabel(i),
			Design:     design(it.Design),
			ModelYield: it.ModelYield,
		}
		verified := it.MCYield >= 0
		if verified {
			rec.MCYield = num(it.MCYield)
			if it.MCResult != nil {
				rec.MCYieldLo = num(it.MCResult.Estimate.Lo)
				rec.MCYieldHi = num(it.MCResult.Estimate.Hi)
			}
		}
		for j, st := range it.Specs {
			ss := SpecState{
				Name:          p.Specs[j].Name,
				NominalMargin: st.NominalMargin,
				BadPerMille:   st.BadPerMille,
				Beta:          st.Beta,
			}
			if verified {
				ss.MCMean = num(st.MCMean)
				ss.MCSigma = num(st.MCSigma)
				ss.MCBad = st.MCBad
			}
			rec.Specs = append(rec.Specs, ss)
		}
		out.Iterations = append(out.Iterations, rec)
	}
	out.FinalDesign = design(res.FinalDesign)
	return out
}

// SpecMC is one spec's Monte-Carlo verification summary.
type SpecMC struct {
	Name  string   `json:"name"`
	Bad   int      `json:"bad"`
	Mean  *float64 `json:"mean,omitempty"`
	Sigma *float64 `json:"sigma,omitempty"`
}

// Verification is the JSON-serializable record of a standalone
// Monte-Carlo yield verification.
type Verification struct {
	Problem string   `json:"problem"`
	Yield   float64  `json:"yield"`
	YieldLo float64  `json:"yieldLo"`
	YieldHi float64  `json:"yieldHi"`
	Samples int      `json:"samples"`
	Evals   int      `json:"evals"`
	Specs   []SpecMC `json:"specs"`
}

// JSONVerification flattens a core.MCResult into its wire form.
func JSONVerification(p *core.Problem, mc *core.MCResult) *Verification {
	out := &Verification{
		Problem: p.Name,
		Yield:   mc.Estimate.Yield(),
		YieldLo: mc.Estimate.Lo,
		YieldHi: mc.Estimate.Hi,
		Samples: mc.Estimate.Total,
		Evals:   mc.Evals,
	}
	for i, s := range p.Specs {
		sm := SpecMC{Name: s.Name, Bad: mc.BadPerSpec[i]}
		sm.Mean = num(mc.Moments[i].Mean())
		sm.Sigma = num(mc.Moments[i].Sigma())
		out.Specs = append(out.Specs, sm)
	}
	return out
}
