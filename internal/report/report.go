// Package report renders the optimizer's iteration records in the layout
// of the paper's tables: one column per performance, blocks of
// (f − f_b, bad samples ‰, Ỹ) per iteration.
package report

import (
	"fmt"
	"io"
	"strings"

	"specwise/internal/core"
)

// blockLabel names iteration i the way the paper does.
func blockLabel(i int) string {
	switch i {
	case 0:
		return "Initial"
	case 1:
		return "1st Iter."
	case 2:
		return "2nd Iter."
	case 3:
		return "3rd Iter."
	default:
		return fmt.Sprintf("%dth Iter.", i)
	}
}

// OptimizationTrace writes a Table-1/3/4/6-style trace of a run.
func OptimizationTrace(w io.Writer, res *core.Result) {
	p := res.Problem
	cols := make([]string, 0, len(p.Specs))
	for _, s := range p.Specs {
		cols = append(cols, fmt.Sprintf("%s [%s]", s.Name, s.Unit))
	}
	fmt.Fprintf(w, "%-24s", "Performance")
	for _, c := range cols {
		fmt.Fprintf(w, "%14s", c)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-24s", "Specification")
	for _, s := range p.Specs {
		op := ">"
		if s.Kind == core.LE {
			op = "<"
		}
		fmt.Fprintf(w, "%14s", fmt.Sprintf("%s %g", op, s.Bound))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 24+14*len(cols)))

	for i, it := range res.Iterations {
		fmt.Fprintf(w, "%-24s", blockLabel(i)+"  f-fb")
		for _, st := range it.Specs {
			fmt.Fprintf(w, "%14.3g", st.NominalMargin)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-24s", "  bad samples [permil]")
		for _, st := range it.Specs {
			fmt.Fprintf(w, "%14.1f", st.BadPerMille)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-24s", "  beta (wc distance)")
		for _, st := range it.Specs {
			fmt.Fprintf(w, "%14.2f", st.Beta)
		}
		fmt.Fprintln(w)
		if it.MCYield >= 0 {
			fmt.Fprintf(w, "%-24s", "  MC bad [permil]")
			n := 1
			if it.MCResult != nil && it.MCResult.Estimate.Total > 0 {
				n = it.MCResult.Estimate.Total
			}
			for _, st := range it.Specs {
				fmt.Fprintf(w, "%14.1f", 1000*float64(st.MCBad)/float64(n))
			}
			fmt.Fprintln(w)
			ci := ""
			if it.MCResult != nil && it.MCResult.Estimate.Total > 0 {
				e := it.MCResult.Estimate
				ci = fmt.Sprintf("  (95%% CI [%.1f%%, %.1f%%])", 100*e.Lo, 100*e.Hi)
			}
			fmt.Fprintf(w, "%-24s%14s%s\n", "  Y~ (MC)", fmt.Sprintf("%.1f%%", 100*it.MCYield), ci)
		}
		fmt.Fprintln(w, strings.Repeat("-", 24+14*len(cols)))
	}
	fmt.Fprintf(w, "final design:")
	for k, prm := range p.Design {
		fmt.Fprintf(w, " %s=%.3g%s", prm.Name, res.FinalDesign[k], prm.Unit)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "simulations: %d performance + %d constraint\n",
		res.Simulations, res.ConstraintSims)
}

// ImprovementTable writes a Table-2-style μ/σ improvement comparison
// between two recorded iterations (verification moments must be present).
func ImprovementTable(w io.Writer, res *core.Result, from, to int) {
	p := res.Problem
	a, b := res.Iterations[from], res.Iterations[to]
	fmt.Fprintf(w, "%-10s %18s %18s\n", "Perf.", "dmu/(mu-fb)", "dsigma/sigma")
	for i, s := range p.Specs {
		muA, muB := a.Specs[i].MCMean, b.Specs[i].MCMean
		sgA, sgB := a.Specs[i].MCSigma, b.Specs[i].MCSigma
		// Normalize the mean shift by the initial distance to the bound,
		// signed so that "+" always means improvement, as in the paper.
		distA := muA - s.Bound
		if s.Kind == core.LE {
			distA = s.Bound - muA
		}
		dmu := (muB - muA) / distA
		if s.Kind == core.LE {
			dmu = (muA - muB) / distA
		}
		dsg := (sgB - sgA) / sgA
		fmt.Fprintf(w, "%-10s %17.1f%% %17.1f%%\n", s.Name, 100*dmu, 100*dsg)
	}
}

// MismatchTable writes a Table-5-style ranking of mismatch measures.
func MismatchTable(w io.Writer, spec string, names []string, values []float64) {
	fmt.Fprintf(w, "Mismatch measure for %s\n", spec)
	fmt.Fprintf(w, "%-6s %-24s %8s\n", "Rank", "Pair", "m_kl")
	for i := range names {
		fmt.Fprintf(w, "P%-5d %-24s %8.3f\n", i+1, names[i], values[i])
	}
}
