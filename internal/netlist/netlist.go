// Package netlist parses a SPICE-like text netlist into a spice.Circuit.
// It supports the device set of the simulator substrate:
//
//   - comment lines and blank lines
//     Rname n1 n2 value              resistor [Ω]
//     Cname n1 n2 value              capacitor [F]
//     Vname n+ n- dc [AC mag]        independent voltage source
//     Iname n+ n- dc                 independent current source
//     Ename out+ out- c+ c- gain     voltage-controlled voltage source
//     Gname out+ out- c+ c- gm       voltage-controlled current source
//     Mname d g s b model W=.. L=..  MOSFET referencing a .model card
//     .model name NMOS|PMOS [VT0=.. KP=.. LAMBDA=.. TCV=.. BEX=..]
//     .end                           optional terminator
//
// Values accept engineering suffixes (f p n u m k meg g t) and unit tails
// (e.g. 10k, 2.2u, 0.5pF). Node "0" (or "gnd") is ground. Continuation
// lines start with "+". Everything is case-insensitive except node and
// device names.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"specwise/internal/spice"
)

// Deck is a parsed netlist: the circuit plus lookup tables for the
// elements a driver program needs to reference.
type Deck struct {
	Title   string
	Circuit *spice.Circuit
	Models  map[string]spice.MosParams
	// Mosfets by instance name, for operating-point reporting.
	Mosfets map[string]*spice.Mosfet
	// Nodes maps every node name in the deck to its MNA index.
	Nodes map[string]int

	// modelPolarity records each model card's declared type
	// (NMOS = +1, PMOS = −1).
	modelPolarity map[string]int
}

// ParseError reports a syntax problem with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("netlist: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads a netlist. The first line is the title (SPICE convention)
// unless it starts with a recognized element or directive.
func Parse(r io.Reader) (*Deck, error) {
	deck := &Deck{
		Circuit:       spice.New(),
		Models:        make(map[string]spice.MosParams),
		Mosfets:       make(map[string]*spice.Mosfet),
		Nodes:         make(map[string]int),
		modelPolarity: make(map[string]int),
	}

	// Read physical lines, folding "+" continuations.
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	type logical struct {
		text string
		line int
	}
	var lines []logical
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		text := scanner.Text()
		if idx := strings.IndexAny(text, ";"); idx >= 0 {
			text = text[:idx]
		}
		trimmed := strings.TrimSpace(text)
		if trimmed == "" || strings.HasPrefix(trimmed, "*") {
			continue
		}
		if strings.HasPrefix(trimmed, "+") {
			if len(lines) == 0 {
				return nil, errf(lineNo, "continuation with no previous line")
			}
			lines[len(lines)-1].text += " " + strings.TrimSpace(trimmed[1:])
			continue
		}
		lines = append(lines, logical{trimmed, lineNo})
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("netlist: empty input")
	}

	start := 0
	if !deck.isElementOrDirective(lines[0].text) {
		deck.Title = lines[0].text
		start = 1
	}

	// Two passes: models first, then elements (so forward references work).
	for _, l := range lines[start:] {
		low := strings.ToLower(l.text)
		if strings.HasPrefix(low, ".model") {
			if err := deck.parseModel(l.text, l.line); err != nil {
				return nil, err
			}
		}
	}
	for _, l := range lines[start:] {
		low := strings.ToLower(l.text)
		switch {
		case strings.HasPrefix(low, ".model"):
			// handled above
		case strings.HasPrefix(low, ".end"):
			return deck, nil
		case strings.HasPrefix(low, "."):
			return nil, errf(l.line, "unsupported directive %q", strings.Fields(l.text)[0])
		default:
			if err := deck.parseElement(l.text, l.line); err != nil {
				return nil, err
			}
		}
	}
	return deck, nil
}

// ParseString parses a netlist held in a string.
func ParseString(s string) (*Deck, error) { return Parse(strings.NewReader(s)) }

// isElementOrDirective decides whether the first line is a title (SPICE
// convention) or already part of the netlist. Directives are obvious;
// element candidacy is settled by a dry-run parse against a scratch deck,
// so "common source amplifier" stays a title while "C1 a 0 1u" does not.
func (d *Deck) isElementOrDirective(line string) bool {
	if line == "" {
		return false
	}
	if line[0] == '.' {
		return true
	}
	switch line[0] | 0x20 {
	case 'm':
		// MOSFETs reference models that may not be parsed yet; classify
		// by shape alone.
		return len(strings.Fields(line)) >= 6
	case 'r', 'c', 'v', 'i', 'e', 'g':
		scratch := &Deck{
			Circuit:       spice.New(),
			Models:        d.Models,
			Mosfets:       make(map[string]*spice.Mosfet),
			Nodes:         make(map[string]int),
			modelPolarity: d.modelPolarity,
		}
		return scratch.parseElement(line, 0) == nil
	}
	return false
}

func (d *Deck) node(name string) int {
	idx := d.Circuit.Node(name)
	d.Nodes[name] = idx
	return idx
}

func (d *Deck) parseModel(line string, ln int) error {
	// .model NAME NMOS|PMOS [key=value ...] — parentheses optional.
	clean := strings.NewReplacer("(", " ", ")", " ").Replace(line)
	f := strings.Fields(clean)
	if len(f) < 3 {
		return errf(ln, ".model needs a name and a type")
	}
	name := strings.ToLower(f[1])
	var p spice.MosParams
	switch strings.ToUpper(f[2]) {
	case "NMOS":
		p = spice.DefaultNMOS()
		d.modelPolarity[name] = +1
	case "PMOS":
		p = spice.DefaultPMOS()
		d.modelPolarity[name] = -1
	default:
		return errf(ln, "unknown model type %q", f[2])
	}
	for _, kv := range f[3:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return errf(ln, "malformed model parameter %q", kv)
		}
		x, err := ParseValue(val)
		if err != nil {
			return errf(ln, "model parameter %s: %v", key, err)
		}
		switch strings.ToUpper(key) {
		case "VT0", "VTO":
			p.VT0 = x
		case "KP":
			p.KP = x
		case "LAMBDA":
			p.LambdaC = x
		case "COX":
			p.CoxA = x
		case "CGSO":
			p.CGSO = x
		case "CGDO":
			p.CGDO = x
		case "CJ":
			p.CJ = x
		case "TCV":
			p.TCV = x
		case "BEX":
			p.BEX = x
		default:
			return errf(ln, "unknown model parameter %q", key)
		}
	}
	d.Models[name] = p
	return nil
}

func (d *Deck) parseElement(line string, ln int) error {
	f := strings.Fields(line)
	name := f[0]
	kind := name[0] | 0x20 // lowercase
	switch kind {
	case 'r', 'c':
		if len(f) != 4 {
			return errf(ln, "%s needs 2 nodes and a value", name)
		}
		v, err := ParseValue(f[3])
		if err != nil {
			return errf(ln, "%s value: %v", name, err)
		}
		n1, n2 := d.node(f[1]), d.node(f[2])
		if kind == 'r' {
			if v <= 0 {
				return errf(ln, "%s: resistance must be positive", name)
			}
			d.Circuit.Add(spice.NewResistor(name, n1, n2, v))
		} else {
			d.Circuit.Add(spice.NewCapacitor(name, n1, n2, v))
		}
	case 'v':
		if len(f) != 4 && len(f) != 6 {
			return errf(ln, "%s needs: n+ n- dc [AC mag]", name)
		}
		dc, err := ParseValue(f[3])
		if err != nil {
			return errf(ln, "%s dc value: %v", name, err)
		}
		ac := 0.0
		if len(f) == 6 {
			if !strings.EqualFold(f[4], "ac") {
				return errf(ln, "%s: expected AC keyword, got %q", name, f[4])
			}
			ac, err = ParseValue(f[5])
			if err != nil {
				return errf(ln, "%s ac value: %v", name, err)
			}
		}
		d.Circuit.Add(spice.NewVSource(name, d.node(f[1]), d.node(f[2]), dc, complex(ac, 0)))
	case 'i':
		if len(f) != 4 {
			return errf(ln, "%s needs: n+ n- dc", name)
		}
		v, err := ParseValue(f[3])
		if err != nil {
			return errf(ln, "%s value: %v", name, err)
		}
		d.Circuit.Add(spice.NewISource(name, d.node(f[1]), d.node(f[2]), v))
	case 'e', 'g':
		if len(f) != 6 {
			return errf(ln, "%s needs: out+ out- c+ c- gain", name)
		}
		gain, err := ParseValue(f[5])
		if err != nil {
			return errf(ln, "%s gain: %v", name, err)
		}
		p, n := d.node(f[1]), d.node(f[2])
		cp, cn := d.node(f[3]), d.node(f[4])
		if kind == 'e' {
			d.Circuit.Add(spice.NewVCVS(name, p, n, cp, cn, gain))
		} else {
			d.Circuit.Add(spice.NewVCCS(name, p, n, cp, cn, gain))
		}
	case 'm':
		if len(f) < 6 {
			return errf(ln, "%s needs: d g s b model [W=..] [L=..]", name)
		}
		model, ok := d.Models[strings.ToLower(f[5])]
		if !ok {
			return errf(ln, "%s references unknown model %q", name, f[5])
		}
		w, l := 10e-6, 1e-6
		// Polarity follows the model card's declared type.
		polarity := d.modelPolarity[strings.ToLower(f[5])]
		for _, kv := range f[6:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return errf(ln, "%s: malformed parameter %q", name, kv)
			}
			x, err := ParseValue(val)
			if err != nil {
				return errf(ln, "%s %s: %v", name, key, err)
			}
			switch strings.ToUpper(key) {
			case "W":
				w = x
			case "L":
				l = x
			default:
				return errf(ln, "%s: unknown parameter %q", name, key)
			}
		}
		if w <= 0 || l <= 0 {
			return errf(ln, "%s: W and L must be positive", name)
		}
		m := spice.NewMosfet(name, d.node(f[1]), d.node(f[2]), d.node(f[3]), d.node(f[4]), polarity, w, l, model)
		d.Circuit.Add(m)
		d.Mosfets[name] = m
	default:
		return errf(ln, "unknown element type %q", name)
	}
	return nil
}

// ParseValue parses a SPICE number with engineering suffixes and an
// optional unit tail: "10k" = 1e4, "2.2uF" = 2.2e-6, "1meg" = 1e6.
func ParseValue(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	low := strings.ToLower(s)
	// Longest-match suffix table; "meg" must be checked before "m".
	type suffix struct {
		tag  string
		mult float64
	}
	suffixes := []suffix{
		{"meg", 1e6}, {"f", 1e-15}, {"p", 1e-12}, {"n", 1e-9},
		{"u", 1e-6}, {"m", 1e-3}, {"k", 1e3}, {"g", 1e9}, {"t", 1e12},
	}
	// Split the numeric prefix.
	numEnd := len(low)
	for i, r := range low {
		if (r >= '0' && r <= '9') || r == '.' || r == '+' || r == '-' ||
			r == 'e' && i > 0 && isDigitOrDot(low[i-1]) {
			continue
		}
		numEnd = i
		break
	}
	num := low[:numEnd]
	rest := low[numEnd:]
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if rest == "" {
		return v, nil
	}
	for _, sf := range suffixes {
		if strings.HasPrefix(rest, sf.tag) {
			return v * sf.mult, nil
		}
	}
	// Pure unit tail like "V", "F", "Hz" scales by 1.
	if isAlpha(rest) {
		return v, nil
	}
	return 0, fmt.Errorf("bad value %q", s)
}

func isDigitOrDot(b byte) bool { return b >= '0' && b <= '9' || b == '.' }

func isAlpha(s string) bool {
	for _, r := range s {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
			return false
		}
	}
	return len(s) > 0
}
