package netlist

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"specwise/internal/spice"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"10", 10}, {"10k", 1e4}, {"2.2u", 2.2e-6}, {"1meg", 1e6},
		{"0.5p", 0.5e-12}, {"3n", 3e-9}, {"1.5m", 1.5e-3},
		{"4f", 4e-15}, {"2g", 2e9}, {"7t", 7e12},
		{"1e3", 1e3}, {"-2.5", -2.5}, {"3.3V", 3.3}, {"10kohm", 1e4},
		{"2.2uF", 2.2e-6}, {"1MEG", 1e6},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want) {
			t.Errorf("ParseValue(%q) = %v want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "1..2", "=5"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) should fail", bad)
		}
	}
}

func TestParseDividerAndSolve(t *testing.T) {
	deck, err := ParseString(`simple divider
V1 in 0 10
R1 in mid 1k
R2 mid 0 3k
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	if deck.Title != "simple divider" {
		t.Errorf("title = %q", deck.Title)
	}
	dc, err := deck.Circuit.DC(spice.DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dc.Voltage(deck.Nodes["mid"]); math.Abs(got-7.5) > 1e-6 {
		t.Errorf("mid = %v want 7.5", got)
	}
}

func TestParseContinuationAndComments(t *testing.T) {
	deck, err := ParseString(`* a comment title line is skipped entirely
V1 in 0
+ 5
* another comment
R1 in 0 1k ; trailing comment
`)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := deck.Circuit.DC(spice.DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dc.Voltage(deck.Nodes["in"]); math.Abs(got-5) > 1e-9 {
		t.Errorf("in = %v want 5", got)
	}
}

func TestParseMosfetWithModel(t *testing.T) {
	deck, err := ParseString(`mos test
.model nch NMOS VT0=0.6 KP=100u LAMBDA=0.05
VDD vdd 0 3.3
VG g 0 1.2
M1 vdd g 0 0 nch W=20u L=2u
`)
	if err != nil {
		t.Fatal(err)
	}
	m := deck.Mosfets["M1"]
	if m == nil {
		t.Fatal("M1 not registered")
	}
	if m.Polarity != 1 || math.Abs(m.W-20e-6) > 1e-12 || math.Abs(m.L-2e-6) > 1e-12 {
		t.Errorf("M1 = %+v", m)
	}
	dc, err := deck.Circuit.DC(spice.DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	op := m.Op(dc.X)
	// Id = 0.5·100µ·10·(1.2−0.6)²·(1+λ'·3.3), λ' = 0.05·1µ/2µ = 0.025.
	want := 0.5 * 100e-6 * 10 * 0.36 * (1 + 0.025*3.3)
	if math.Abs(op.ID-want)/want > 1e-9 {
		t.Errorf("Id = %v want %v", op.ID, want)
	}
}

func TestParsePMOSPolarity(t *testing.T) {
	deck, err := ParseString(`.model pch PMOS
VDD vdd 0 3.3
M1 0 g vdd vdd pch W=10u L=1u
VG g 0 2.0
`)
	if err != nil {
		t.Fatal(err)
	}
	if deck.Mosfets["M1"].Polarity != -1 {
		t.Error("PMOS polarity not applied")
	}
}

func TestParseControlledSources(t *testing.T) {
	deck, err := ParseString(`controlled sources
V1 in 0 1
E1 e 0 in 0 5
G1 0 gout in 0 1m
RL gout 0 2k
RE e 0 1k
`)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := deck.Circuit.DC(spice.DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dc.Voltage(deck.Nodes["e"]); math.Abs(got-5) > 1e-6 {
		t.Errorf("VCVS out = %v want 5", got)
	}
	// G1 injects 1 mA into gout through 2 kΩ → +2 V.
	if got := dc.Voltage(deck.Nodes["gout"]); math.Abs(got-2) > 1e-6 {
		t.Errorf("VCCS out = %v want 2", got)
	}
}

func TestParseACSource(t *testing.T) {
	deck, err := ParseString(`V1 in 0 0 AC 1
R1 in out 1k
C1 out 0 1u
`)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := deck.Circuit.DC(spice.DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ac, err := deck.Circuit.AC(dc, 2*math.Pi*159.15)
	if err != nil {
		t.Fatal(err)
	}
	mag := math.Hypot(real(ac.Voltage(deck.Nodes["out"])), imag(ac.Voltage(deck.Nodes["out"])))
	if math.Abs(mag-1/math.Sqrt2) > 1e-3 {
		t.Errorf("|H| = %v want 0.707", mag)
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		src  string
		line int
		frag string
	}{
		{"title\nR1 a b\n", 2, "2 nodes and a value"},
		{"title\nR1 a b -5\n", 2, "positive"},
		{"title\nX1 a b 5\n", 2, "unknown element"},
		{"title\nM1 d g s b nomodel W=1u L=1u\n", 2, "unknown model"},
		{"title\n.model m1 JFET\n", 2, "unknown model type"},
		{"title\n.tran 1n 1u\n", 2, "unsupported directive"},
		{"title\nV1 a 0 1 DC 2\n", 2, "expected AC"},
		{"+ continuation first\n", 1, "continuation"},
	}
	for _, c := range cases {
		_, err := ParseString(c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Errorf("%q: error %v is not a ParseError", c.src, err)
			continue
		}
		if pe.Line != c.line || !strings.Contains(pe.Msg, c.frag) {
			t.Errorf("%q: got %v want line %d containing %q", c.src, err, c.line, c.frag)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := ParseString("  \n* only comments\n"); err == nil {
		t.Error("empty netlist accepted")
	}
}

func TestEndStopsParsing(t *testing.T) {
	deck, err := ParseString(`t
R1 a 0 1k
.end
garbage that would not parse
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(deck.Circuit.Devices()) != 1 {
		t.Errorf("devices = %d want 1", len(deck.Circuit.Devices()))
	}
}

// Property: ParseValue is the left inverse of Go's float formatting.
func TestParseValueRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := strconv.FormatFloat(x, 'g', -1, 64)
		got, err := ParseValue(s)
		if err != nil {
			return false
		}
		return got == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: engineering suffixes compose multiplicatively with the
// numeric prefix.
func TestParseValueSuffixProperty(t *testing.T) {
	suffixes := map[string]float64{
		"f": 1e-15, "p": 1e-12, "n": 1e-9, "u": 1e-6,
		"m": 1e-3, "k": 1e3, "meg": 1e6, "g": 1e9, "t": 1e12,
	}
	f := func(raw float64, pick uint8) bool {
		x := math.Abs(math.Mod(raw, 1000))
		if math.IsNaN(x) {
			return true
		}
		keys := []string{"f", "p", "n", "u", "m", "k", "meg", "g", "t"}
		sfx := keys[int(pick)%len(keys)]
		s := strconv.FormatFloat(x, 'f', 6, 64) + sfx
		got, err := ParseValue(s)
		if err != nil {
			return false
		}
		want, _ := strconv.ParseFloat(strconv.FormatFloat(x, 'f', 6, 64), 64)
		want *= suffixes[sfx]
		return math.Abs(got-want) <= 1e-12*math.Abs(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
