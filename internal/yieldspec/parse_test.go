package yieldspec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The Parse entry point must reject malformed documents with a
// yieldspec-prefixed error rather than panicking or silently defaulting.
func TestParseErrorCases(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		errFrag string
	}{
		{"bad JSON", `{"name": "x",`, "yieldspec"},
		{"wrong type", `{"name": 42}`, "yieldspec"},
		{"missing netlist", strings.Replace(csAmpConfig,
			`"netlist": "common source amplifier\n.model nch NMOS VT0=0.71 KP=120u LAMBDA=0.06\nVDD vdd 0 3.3\nVIN g 0 1.0 AC 1\nM1 d g 0 0 nch W=20u L=2u\nRL vdd d 47k\nCL d 0 1p\n",`,
			``, 1), "netlist or netlistFile is required"},
		{"netlist file not found", strings.Replace(csAmpConfig,
			`"netlist": "common source amplifier\n.model nch NMOS VT0=0.71 KP=120u LAMBDA=0.06\nVDD vdd 0 3.3\nVIN g 0 1.0 AC 1\nM1 d g 0 0 nch W=20u L=2u\nRL vdd d 47k\nCL d 0 1p\n"`,
			`"netlistFile": "does-not-exist.cir"`, 1), "does-not-exist.cir"},
		{"unknown spec kind", strings.Replace(csAmpConfig,
			`"kind": "ge", "bound": 17`, `"kind": "between", "bound": 17`, 1),
			"kind must be ge or le"},
		{"unknown measure", strings.Replace(csAmpConfig,
			`"measure": "a0_db"`, `"measure": "thd_pct"`, 1),
			"unknown measure"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := Parse(strings.NewReader(c.src), ".")
			if err == nil {
				t.Fatalf("Parse accepted %s (problem %v)", c.name, p.Name)
			}
			if !strings.Contains(err.Error(), c.errFrag) {
				t.Errorf("error %q missing %q", err, c.errFrag)
			}
		})
	}
}

// Load is a thin wrapper over Parse: it must resolve netlistFile
// references relative to the config file's own directory.
func TestLoadResolvesRelativeNetlist(t *testing.T) {
	dir := t.TempDir()
	netlist := `common source amplifier
.model nch NMOS VT0=0.71 KP=120u LAMBDA=0.06
VDD vdd 0 3.3
VIN g 0 1.0 AC 1
M1 d g 0 0 nch W=20u L=2u
RL vdd d 47k
CL d 0 1p
`
	if err := os.WriteFile(filepath.Join(dir, "amp.cir"), []byte(netlist), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := strings.Replace(csAmpConfig,
		`"netlist": "common source amplifier\n.model nch NMOS VT0=0.71 KP=120u LAMBDA=0.06\nVDD vdd 0 3.3\nVIN g 0 1.0 AC 1\nM1 d g 0 0 nch W=20u L=2u\nRL vdd d 47k\nCL d 0 1p\n"`,
		`"netlistFile": "amp.cir"`, 1)
	if cfg == csAmpConfig {
		t.Fatal("fixture replacement did not apply")
	}
	path := filepath.Join(dir, "amp.json")
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "cs-amp" || p.NumSpecs() != 4 {
		t.Errorf("loaded problem %q with %d specs, want cs-amp with 4", p.Name, p.NumSpecs())
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load of a missing file must fail")
	}
}

// Parse and Load must agree bit-for-bit on the same document.
func TestParseLoadEquivalence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "amp.json")
	if err := os.WriteFile(path, []byte(csAmpConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	fromLoad, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	fromParse, err := Parse(strings.NewReader(csAmpConfig), dir)
	if err != nil {
		t.Fatal(err)
	}
	d := fromLoad.InitialDesign()
	th := fromLoad.NominalTheta()
	s := make([]float64, fromLoad.NumStat())
	a, err := fromLoad.Eval(d, s, th)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fromParse.Eval(d, s, th)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("spec %d: Load gives %v, Parse gives %v", i, a[i], b[i])
		}
	}
}
