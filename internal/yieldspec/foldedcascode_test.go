package yieldspec

import (
	"math"
	"strings"
	"testing"
)

// fcNetlist is the folded-cascode opamp of internal/circuits expressed as
// a plain netlist. The bias rails track the supply through VCVS+offset
// pairs (v(vbt) = v(vdd) − 1.1 etc.), reproducing the native builder's
// supply-referenced biasing.
const fcNetlist = `folded-cascode opamp, netlist port of internal/circuits
.model nch NMOS VT0=0.71 KP=120u LAMBDA=0.06 TCV=1.5m BEX=-1.5
.model pch PMOS VT0=0.78 KP=40u LAMBDA=0.08 TCV=1.7m BEX=-1.5
VDD vdd 0 3.3
VINP inp 0 1.65
EFB inn 0 out 0 1
* supply-tracking bias rails
EBT vbtx 0 vdd 0 1
VBT vbt vbtx -1.1
VBN1 vbn1 0 1.0
VBN2 vbn2 0 1.6
EBP vbpx 0 vdd 0 1
VBP vbp vbpx -1.7
* core
MT tail vbt vdd vdd pch W=100u L=2u
M1 f1 inp tail vdd pch W=30u L=1u
M2 f2 inn tail vdd pch W=30u L=1u
M3 f1 vbn1 0 0 nch W=60u L=2u
M4 f2 vbn1 0 0 nch W=60u L=2u
M5 o1 vbn2 f1 0 nch W=50u L=1u
M6 out vbn2 f2 0 nch W=50u L=1u
M7 m1 o1 vdd vdd pch W=100u L=2u
M8 m2 o1 vdd vdd pch W=100u L=2u
M9 o1 vbp m1 vdd pch W=100u L=1u
M10 out vbp m2 vdd pch W=100u L=1u
CL out 0 2p
.end
`

// fcSpec wires the same design parameters, statistics and specs as
// circuits.FoldedCascodeProblem. The input common mode is fixed at the
// nominal 1.65 V (the native builder tracks VDD/2; over the ±0.3 V VDD
// range the difference is immaterial for this validation).
func fcSpec() string {
	var b strings.Builder
	b.WriteString(`{
  "name": "fc-netlist",
  "netlist": `)
	b.WriteString(jsonString(fcNetlist))
	b.WriteString(`,
  "testbench": {
    "out": "out", "drive": "VINP", "feedback": "EFB", "supply": "VDD",
    "acStart": 100, "acStop": 1e9,
    "tail": "MT", "slewCapF": 2e-12
  },
  "design": [
    {"name": "W1", "unit": "um", "init": 30, "lo": 5, "hi": 400, "log": true,
     "targets": [{"device": "M1", "param": "W", "scale": 1e-6},
                 {"device": "M2", "param": "W", "scale": 1e-6}]},
    {"name": "W3", "unit": "um", "init": 60, "lo": 5, "hi": 400, "log": true,
     "targets": [{"device": "M3", "param": "W", "scale": 1e-6},
                 {"device": "M4", "param": "W", "scale": 1e-6}]},
    {"name": "WT", "unit": "um", "init": 100, "lo": 10, "hi": 800, "log": true,
     "targets": [{"device": "MT", "param": "W", "scale": 1e-6}]}
  ],
  "statistical": {
    "globals": [
      {"name": "g.dVthN", "kind": "vth", "polarity": 1, "sigma": 0.015},
      {"name": "g.dVthP", "kind": "vth", "polarity": -1, "sigma": 0.015},
      {"name": "g.dBetaN", "kind": "beta", "polarity": 1, "sigma": 0.025},
      {"name": "g.dBetaP", "kind": "beta", "polarity": -1, "sigma": 0.025}
    ],
    "locals": [
      {"device": "M1", "avt": 0.010, "abeta": 0.012},
      {"device": "M2", "avt": 0.010, "abeta": 0.012},
      {"device": "M3", "avt": 0.010, "abeta": 0.012},
      {"device": "M4", "avt": 0.010, "abeta": 0.012}
    ]
  },
  "specs": [
    {"name": "A0", "measure": "a0_db", "kind": "ge", "bound": 40, "unit": "dB"},
    {"name": "ft", "measure": "ft_mhz", "kind": "ge", "bound": 40, "unit": "MHz"},
    {"name": "CMRR", "measure": "cmrr_db", "kind": "ge", "bound": 80, "unit": "dB"},
    {"name": "SRp", "measure": "sr_vus", "kind": "ge", "bound": 35, "unit": "V/us"},
    {"name": "Power", "measure": "power_mw", "kind": "le", "bound": 3.5, "unit": "mW"}
  ],
  "theta": [
    {"name": "T", "nominal": 27, "lo": -40, "hi": 125, "apply": "temp"},
    {"name": "VDD", "nominal": 3.3, "lo": 3.0, "hi": 3.6, "apply": "source:VDD"}
  ]
}`)
	return b.String()
}

// jsonString encodes a Go string as a JSON string literal.
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// TestFoldedCascodeNetlistPort validates the yieldspec path on the
// flagship circuit: the netlist-defined folded-cascode must reproduce the
// native implementation's nominal performances closely.
func TestFoldedCascodeNetlistPort(t *testing.T) {
	p, err := FromReader(strings.NewReader(fcSpec()), ".")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStat() != 12 { // 4 globals + 4 devices × 2 locals
		t.Fatalf("stat dim = %d", p.NumStat())
	}
	vals, err := p.Eval(p.InitialDesign(), make([]float64, p.NumStat()), p.NominalTheta())
	if err != nil {
		t.Fatal(err)
	}
	// Native nominal values (see circuits.TestProbeFoldedCascodeNominal):
	// A0 ≈ 74.3 dB, ft ≈ 27.8 MHz, CMRR ≈ 110.4 dB, SR ≈ 52.4 V/µs,
	// Power ≈ 1.02 mW.
	want := []struct {
		name string
		val  float64
		tol  float64
	}{
		{"A0", 74.3, 1.0},
		{"ft", 27.8, 1.0},
		{"CMRR", 110.4, 2.0},
		{"SRp", 52.4, 2.0},
		{"Power", 1.02, 0.05},
	}
	for i, w := range want {
		if math.Abs(vals[i]-w.val) > w.tol {
			t.Errorf("%s = %v want %v ± %v (native implementation)", w.name, vals[i], w.val, w.tol)
		}
	}

	// Supply tracking: at VDD = 3.6 the bias rails must follow, keeping
	// the circuit biased (power rises, A0 stays sane).
	hi, err := p.Eval(p.InitialDesign(), make([]float64, p.NumStat()), []float64{27, 3.6})
	if err != nil {
		t.Fatal(err)
	}
	if hi[0] < 50 {
		t.Errorf("A0 at VDD=3.6 collapsed to %v; bias rails not tracking", hi[0])
	}
	if hi[4] <= vals[4] {
		t.Errorf("power must rise with VDD: %v vs %v", hi[4], vals[4])
	}

	// Constraints: 11 transistors → 22 sizing rules, all satisfied.
	cons, err := p.Constraints(p.InitialDesign())
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) != 22 {
		t.Fatalf("constraints = %d want 22", len(cons))
	}
	for i, c := range cons {
		if c < 0 {
			t.Errorf("constraint %s violated: %v", p.ConstraintNames[i], c)
		}
	}
}
