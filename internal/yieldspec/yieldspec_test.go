package yieldspec

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specwise/internal/core"
	"specwise/internal/netlist"
	_ "specwise/internal/search" // register the search backends
	"specwise/internal/spice"
)

// csAmpConfig is a complete spec for a common-source amplifier whose gain
// and power trade off through the width and the load resistor.
const csAmpConfig = `{
  "name": "cs-amp",
  "netlist": "common source amplifier\n.model nch NMOS VT0=0.71 KP=120u LAMBDA=0.06\nVDD vdd 0 3.3\nVIN g 0 1.0 AC 1\nM1 d g 0 0 nch W=20u L=2u\nRL vdd d 47k\nCL d 0 1p\n",
  "testbench": {
    "out": "d",
    "drive": "VIN",
    "supply": "VDD",
    "acStart": 1000,
    "acStop": 1e9
  },
  "design": [
    {"name": "W1", "unit": "um", "init": 20, "lo": 2, "hi": 200, "log": true,
     "targets": [{"device": "M1", "param": "W", "scale": 1e-6}]},
    {"name": "RL", "unit": "kohm", "init": 47, "lo": 5, "hi": 200, "log": true,
     "targets": [{"device": "RL", "param": "R", "scale": 1e3}]}
  ],
  "statistical": {
    "globals": [
      {"name": "g.dVthN", "kind": "vth", "polarity": 1, "sigma": 0.015},
      {"name": "g.dBetaN", "kind": "beta", "polarity": 1, "sigma": 0.025}
    ],
    "locals": [{"device": "M1", "avt": 0.010, "abeta": 0.012}]
  },
  "specs": [
    {"name": "A0", "measure": "a0_db", "kind": "ge", "bound": 17, "unit": "dB"},
    {"name": "ft", "measure": "ft_mhz", "kind": "ge", "bound": 25, "unit": "MHz"},
    {"name": "Power", "measure": "power_mw", "kind": "le", "bound": 0.5, "unit": "mW"},
    {"name": "Vout", "measure": "vdc:d", "kind": "ge", "bound": 0.4, "unit": "V"}
  ],
  "theta": [
    {"name": "T", "nominal": 27, "lo": -40, "hi": 125, "apply": "temp"},
    {"name": "VDD", "nominal": 3.3, "lo": 3.0, "hi": 3.6, "apply": "source:VDD"}
  ]
}`

func TestBuildFromConfig(t *testing.T) {
	p, err := FromReader(strings.NewReader(csAmpConfig), ".")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Name != "cs-amp" || p.NumSpecs() != 4 || p.NumDesign() != 2 || p.NumStat() != 4 {
		t.Fatalf("shape: %d specs %d design %d stat", p.NumSpecs(), p.NumDesign(), p.NumStat())
	}
	if len(p.ConstraintNames) != 2 { // one MOSFET: sat + von
		t.Errorf("constraints = %v", p.ConstraintNames)
	}

	vals, err := p.Eval(p.InitialDesign(), make([]float64, p.NumStat()), p.NominalTheta())
	if err != nil {
		t.Fatal(err)
	}
	// The hand-built equivalent (see spicesim smoke run) gives ≈23.9 dB.
	if math.Abs(vals[0]-23.9) > 0.5 {
		t.Errorf("A0 = %v want ≈23.9 dB", vals[0])
	}
	if vals[1] < 30 || vals[1] > 120 {
		t.Errorf("ft = %v MHz out of plausible band", vals[1])
	}
	if vals[3] < 0.5 || vals[3] > 3.3 {
		t.Errorf("Vout = %v", vals[3])
	}
}

func TestDesignTargetsApply(t *testing.T) {
	p, err := FromReader(strings.NewReader(csAmpConfig), ".")
	if err != nil {
		t.Fatal(err)
	}
	d := p.InitialDesign()
	s := make([]float64, p.NumStat())
	th := p.NominalTheta()
	base, err := p.Eval(d, s, th)
	if err != nil {
		t.Fatal(err)
	}
	// Halving RL halves the gain (−6 dB) while the drain current barely
	// moves (channel-length modulation only).
	d[1] = d[1] / 2
	half, err := p.Eval(d, s, th)
	if err != nil {
		t.Fatal(err)
	}
	if diff := base[0] - half[0]; math.Abs(diff-6) > 1.5 {
		t.Errorf("gain drop for RL/2 = %v dB want ≈6", diff)
	}
}

func TestStatisticalDeltasApply(t *testing.T) {
	p, err := FromReader(strings.NewReader(csAmpConfig), ".")
	if err != nil {
		t.Fatal(err)
	}
	d := p.InitialDesign()
	th := p.NominalTheta()
	s := make([]float64, p.NumStat())
	base, _ := p.Eval(d, s, th)
	// +3σ global Vth shift cuts the overdrive and the current: the DC
	// output voltage must rise (less drop across RL).
	s[0] = 3
	shifted, _ := p.Eval(d, s, th)
	if shifted[3] <= base[3] {
		t.Errorf("Vth+ should raise Vout: %v vs %v", shifted[3], base[3])
	}
}

func TestThetaApplies(t *testing.T) {
	p, err := FromReader(strings.NewReader(csAmpConfig), ".")
	if err != nil {
		t.Fatal(err)
	}
	d := p.InitialDesign()
	s := make([]float64, p.NumStat())
	hot, _ := p.Eval(d, s, []float64{125, 3.3})
	cold, _ := p.Eval(d, s, []float64{-40, 3.3})
	if hot[3] == cold[3] {
		t.Error("temperature did not affect the operating point")
	}
	lo, _ := p.Eval(d, s, []float64{27, 3.0})
	hi, _ := p.Eval(d, s, []float64{27, 3.6})
	if lo[2] >= hi[2] {
		t.Errorf("power must rise with VDD: %v vs %v", lo[2], hi[2])
	}
}

func TestEndToEndOptimizeFromSpec(t *testing.T) {
	p, err := FromReader(strings.NewReader(csAmpConfig), ".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewAndRun(p, core.Options{
		ModelSamples:  1500,
		VerifySamples: 80,
		MaxIterations: 2,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Iterations[0].MCYield
	last := res.Iterations[len(res.Iterations)-1].MCYield
	t.Logf("cs-amp yield from spec file: %.3f -> %.3f", first, last)
	if last < first {
		t.Errorf("optimization regressed: %v -> %v", first, last)
	}
	if last < 0.85 {
		t.Errorf("final yield = %v want >= 0.85", last)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(s string) string
		errFrag string
	}{
		{"missing netlist", func(s string) string {
			return strings.Replace(s, `"netlist":`, `"netlistFile": "", "xnetlist":`, 1)
		}, ""},
		{"bad measure", func(s string) string {
			return strings.Replace(s, `"a0_db"`, `"nonsense"`, 1)
		}, "unknown measure"},
		{"bad kind", func(s string) string {
			return strings.Replace(s, `"kind": "ge", "bound": 17`, `"kind": "eq", "bound": 17`, 1)
		}, "kind must be"},
		{"unknown device target", func(s string) string {
			return strings.Replace(s, `"device": "M1", "param": "W"`, `"device": "M9", "param": "W"`, 1)
		}, "unknown device"},
		{"bad theta apply", func(s string) string {
			return strings.Replace(s, `"apply": "temp"`, `"apply": "frobnicate"`, 1)
		}, "apply must be"},
		{"unknown probe node", func(s string) string {
			return strings.Replace(s, `"vdc:d"`, `"vdc:nowhere"`, 1)
		}, "unknown node"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := FromReader(strings.NewReader(c.mutate(csAmpConfig)), ".")
			if err == nil {
				t.Fatal("expected error")
			}
			if c.errFrag != "" && !strings.Contains(err.Error(), c.errFrag) {
				t.Errorf("error %q missing %q", err, c.errFrag)
			}
		})
	}
}

func TestUnknownJSONFieldRejected(t *testing.T) {
	bad := strings.Replace(csAmpConfig, `"name": "cs-amp"`, `"name": "cs-amp", "typo": 1`, 1)
	if _, err := FromReader(strings.NewReader(bad), "."); err == nil {
		t.Error("unknown JSON field accepted")
	}
}

func TestConstraintsDeterministicOrder(t *testing.T) {
	p, err := FromReader(strings.NewReader(csAmpConfig), ".")
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Constraints(p.InitialDesign())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := p.Constraints(p.InitialDesign())
		if err != nil {
			t.Fatal(err)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("constraint order/value not deterministic at %d", j)
			}
		}
	}
}

func TestLoadFromFiles(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "amp.cir")
	if err := os.WriteFile(netPath, []byte("t\nV1 in 0 1\nR1 in out 1k\nR2 out 0 1k\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "amp.json")
	cfg := `{
	  "name": "divider",
	  "netlistFile": "amp.cir",
	  "design": [
	    {"name": "R2", "unit": "kohm", "init": 1, "lo": 0.1, "hi": 10,
	     "targets": [{"device": "R2", "param": "R", "scale": 1e3}]}
	  ],
	  "specs": [
	    {"name": "Vout", "measure": "vdc:out", "kind": "ge", "bound": 0.4, "unit": "V"}
	  ]
	}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := p.Eval(p.InitialDesign(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-0.5) > 1e-6 {
		t.Errorf("divider Vout = %v want 0.5", vals[0])
	}
	// Raising R2 raises the tap voltage.
	v2, err := p.Eval([]float64{3}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v2[0]-0.75) > 1e-6 {
		t.Errorf("R2=3k Vout = %v want 0.75", v2[0])
	}
	if _, err := Load(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing config accepted")
	}
}

func TestApplyTargetAllKinds(t *testing.T) {
	nl := `t
.model nch NMOS
V1 a 0 2
R1 a b 1k
C1 b 0 1p
M1 b a 0 0 nch W=1u L=1u
`
	deck, err := mustDeck(t, nl)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dev, param string
		value      float64
		check      func() float64
	}{
		{"R1", "R", 2e3, func() float64 { return deck.Circuit.FindDevice("R1").(*spice.Resistor).R }},
		{"C1", "C", 5e-12, func() float64 { return deck.Circuit.FindDevice("C1").(*spice.Capacitor).C }},
		{"V1", "DC", 3, func() float64 { return deck.Circuit.FindDevice("V1").(*spice.VSource).DC }},
		{"M1", "W", 9e-6, func() float64 { return deck.Mosfets["M1"].W }},
		{"M1", "L", 2e-6, func() float64 { return deck.Mosfets["M1"].L }},
	}
	for _, c := range cases {
		err := applyTarget(deck.Circuit.FindDevice(c.dev), Target{Device: c.dev, Param: c.param}, c.value)
		if err != nil {
			t.Fatalf("%s.%s: %v", c.dev, c.param, err)
		}
		if got := c.check(); got != c.value {
			t.Errorf("%s.%s = %v want %v", c.dev, c.param, got, c.value)
		}
	}
	// Wrong attribute names must error.
	for _, c := range []struct{ dev, param string }{
		{"R1", "C"}, {"C1", "R"}, {"V1", "AC"}, {"M1", "VT0"},
	} {
		if err := applyTarget(deck.Circuit.FindDevice(c.dev), Target{Device: c.dev, Param: c.param}, 1); err == nil {
			t.Errorf("%s.%s accepted", c.dev, c.param)
		}
	}
}

func mustDeck(t *testing.T, src string) (*netlist.Deck, error) {
	t.Helper()
	return netlist.ParseString(src)
}

func TestMeasurePrerequisitesValidated(t *testing.T) {
	// sr_vus without a tail must be rejected at build time.
	cfg := strings.Replace(csAmpConfig,
		`{"name": "A0", "measure": "a0_db", "kind": "ge", "bound": 17, "unit": "dB"}`,
		`{"name": "SR", "measure": "sr_vus", "kind": "ge", "bound": 1, "unit": "V/us"}`, 1)
	if _, err := FromReader(strings.NewReader(cfg), "."); err == nil ||
		!strings.Contains(err.Error(), "tail") {
		t.Errorf("sr_vus without tail: %v", err)
	}
	// cmrr_db without a feedback element likewise.
	cfg2 := strings.Replace(csAmpConfig,
		`{"name": "A0", "measure": "a0_db", "kind": "ge", "bound": 17, "unit": "dB"}`,
		`{"name": "CMRR", "measure": "cmrr_db", "kind": "ge", "bound": 60, "unit": "dB"}`, 1)
	if _, err := FromReader(strings.NewReader(cfg2), "."); err == nil ||
		!strings.Contains(err.Error(), "feedback") {
		t.Errorf("cmrr_db without feedback: %v", err)
	}
}
