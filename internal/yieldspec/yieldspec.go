// Package yieldspec builds a complete yield-optimization problem from two
// plain files: a SPICE-like netlist (see internal/netlist) and a JSON
// specification describing the design parameters, the statistical model,
// the performance specs with their measurements, and the operating
// ranges. It is the no-Go-code entry point to the optimizer:
//
//	go run ./cmd/yieldopt -spec myamp.json
//
// The JSON schema (all units designer-friendly):
//
//	{
//	  "name": "my-amp",
//	  "netlistFile": "myamp.cir",        // or "netlist": "inline text"
//	  "testbench": {
//	    "out": "out",                    // AC measurement node
//	    "drive": "VIN",                  // AC drive source (V element)
//	    "feedback": "EFB",               // optional loop-break VCVS
//	    "supply": "VDD",                 // power measurement source
//	    "acStart": 100, "acStop": 1e9,
//	    "tail": "MT", "slewCapF": 2e-12  // only for the sr_vus measure
//	  },
//	  "design": [
//	    {"name": "W1", "unit": "µm", "init": 30, "lo": 5, "hi": 400,
//	     "log": true,
//	     "targets": [{"device": "M1", "param": "W", "scale": 1e-6}]}
//	  ],
//	  "statistical": {
//	    "globals": [{"name": "g.dVthN", "kind": "vth", "polarity": 1,
//	                 "sigma": 0.015}],
//	    "locals":  [{"device": "M1", "avt": 0.010, "abeta": 0.012}]
//	  },
//	  "specs": [
//	    {"name": "A0", "measure": "a0_db", "kind": "ge", "bound": 40,
//	     "unit": "dB"},
//	    {"name": "Vout", "measure": "vdc:out", "kind": "ge", "bound": 1}
//	  ],
//	  "theta": [
//	    {"name": "T", "nominal": 27, "lo": -40, "hi": 125,
//	     "apply": "temp"},
//	    {"name": "VDD", "nominal": 3.3, "lo": 3.0, "hi": 3.6,
//	     "apply": "source:VDD"}
//	  ],
//	  "constraints": {"satMargin": 0.05, "vonMargin": 0.03}
//	}
//
// Available measures: a0_db, ft_mhz, pm_deg, cmrr_db, power_mw, sr_vus,
// vdc:<node>. Design-parameter targets may set "W" or "L" of a MOSFET,
// "R", "C" or "DC" of the matching element; "scale" converts designer
// units into SI (e.g. 1e-6 for µm).
package yieldspec

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"specwise/internal/netlist"
	"specwise/internal/problem"
	"specwise/internal/spice"
	"specwise/internal/variation"
)

// Config is the top-level JSON document.
type Config struct {
	Name        string       `json:"name"`
	Netlist     string       `json:"netlist"`
	NetlistFile string       `json:"netlistFile"`
	Testbench   Testbench    `json:"testbench"`
	Design      []Design     `json:"design"`
	Statistical Statistical  `json:"statistical"`
	Specs       []SpecConfig `json:"specs"`
	Theta       []Theta      `json:"theta"`
	Constraints Constraints  `json:"constraints"`
}

// Testbench names the circuit elements the measurements use.
type Testbench struct {
	Out      string  `json:"out"`
	Drive    string  `json:"drive"`
	Feedback string  `json:"feedback"`
	Supply   string  `json:"supply"`
	ACStart  float64 `json:"acStart"`
	ACStop   float64 `json:"acStop"`
	Tail     string  `json:"tail"`
	SlewCapF float64 `json:"slewCapF"`
}

// Design is one bounded design parameter with its netlist bindings.
type Design struct {
	Name    string   `json:"name"`
	Unit    string   `json:"unit"`
	Init    float64  `json:"init"`
	Lo      float64  `json:"lo"`
	Hi      float64  `json:"hi"`
	Log     bool     `json:"log"`
	Targets []Target `json:"targets"`
}

// Target maps a design parameter onto one element attribute.
type Target struct {
	Device string  `json:"device"`
	Param  string  `json:"param"` // W, L, R, C, DC
	Scale  float64 `json:"scale"` // designer units → SI (default 1)
}

// Statistical declares the process-variation model.
type Statistical struct {
	Globals []GlobalVar `json:"globals"`
	Locals  []LocalVar  `json:"locals"`
}

// GlobalVar is a die-level variation shared by one polarity.
type GlobalVar struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"` // "vth" or "beta"
	Polarity int     `json:"polarity"`
	Sigma    float64 `json:"sigma"`
}

// LocalVar attaches Pelgrom mismatch to one device; zero coefficients
// are skipped.
type LocalVar struct {
	Device string  `json:"device"`
	AVT    float64 `json:"avt"`   // V·µm
	ABeta  float64 `json:"abeta"` // µm (relative)
}

// SpecConfig is one performance specification.
type SpecConfig struct {
	Name    string  `json:"name"`
	Measure string  `json:"measure"`
	Kind    string  `json:"kind"` // "ge" or "le"
	Bound   float64 `json:"bound"`
	Unit    string  `json:"unit"`
}

// Theta is one operating parameter.
type Theta struct {
	Name    string  `json:"name"`
	Nominal float64 `json:"nominal"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Apply   string  `json:"apply"` // "temp" or "source:<name>"
}

// Constraints configures the automatic sizing rules.
type Constraints struct {
	SatMargin float64 `json:"satMargin"`
	VonMargin float64 `json:"vonMargin"`
	// Disable turns the functional constraints off entirely.
	Disable bool `json:"disable"`
}

// Load reads a JSON config file and builds the problem. It is a thin
// wrapper over Parse; relative netlistFile paths resolve against the
// config file's directory.
func Load(path string) (*problem.Problem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f, filepath.Dir(path))
}

// FromReader builds the problem from JSON on a reader.
//
// Deprecated: use Parse, which it aliases.
func FromReader(r io.Reader, baseDir string) (*problem.Problem, error) {
	return Parse(r, baseDir)
}

// Parse decodes a JSON configuration from r and builds the problem. It
// is the core entry point: Load (files) and the job service (request
// bodies) both funnel through it. A netlistFile reference resolves
// against baseDir; an inline netlist needs no filesystem access at all.
func Parse(r io.Reader, baseDir string) (*problem.Problem, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("yieldspec: %w", err)
	}
	if cfg.Netlist == "" {
		if cfg.NetlistFile == "" {
			return nil, fmt.Errorf("yieldspec: either netlist or netlistFile is required")
		}
		data, err := os.ReadFile(filepath.Join(baseDir, cfg.NetlistFile))
		if err != nil {
			return nil, fmt.Errorf("yieldspec: %w", err)
		}
		cfg.Netlist = string(data)
	}
	return Build(&cfg)
}

// Build assembles the problem from an in-memory configuration (Netlist
// must hold the netlist text).
func Build(cfg *Config) (*problem.Problem, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}

	// Parse once to validate and to freeze the statistical model geometry
	// sources; every evaluation re-parses (cheap) so circuits stay
	// independent across concurrent calls.
	base, err := netlist.ParseString(cfg.Netlist)
	if err != nil {
		return nil, err
	}
	if err := validateBindings(cfg, base); err != nil {
		return nil, err
	}

	model := buildVariationModel(cfg)

	specs := make([]problem.Spec, len(cfg.Specs))
	for i, s := range cfg.Specs {
		kind := problem.GE
		if strings.EqualFold(s.Kind, "le") {
			kind = problem.LE
		}
		specs[i] = problem.Spec{Name: s.Name, Unit: s.Unit, Kind: kind, Bound: s.Bound}
	}
	design := make([]problem.Param, len(cfg.Design))
	for i, d := range cfg.Design {
		design[i] = problem.Param{
			Name: d.Name, Unit: d.Unit, Init: d.Init,
			Lo: d.Lo, Hi: d.Hi, LogScale: d.Log,
		}
	}
	theta := make([]problem.OpRange, len(cfg.Theta))
	for i, t := range cfg.Theta {
		theta[i] = problem.OpRange{Name: t.Name, Nominal: t.Nominal, Lo: t.Lo, Hi: t.Hi}
	}

	ev := &evaluator{cfg: cfg, model: model}

	p := &problem.Problem{
		Name:      cfg.Name,
		Specs:     specs,
		Design:    design,
		StatNames: model.Names(),
		Theta:     theta,
		Eval:      ev.eval,
	}
	if !cfg.Constraints.Disable {
		p.Constraints = ev.constraints
		for _, name := range sortedMosNames(base.Mosfets) {
			p.ConstraintNames = append(p.ConstraintNames, name+".sat", name+".von")
		}
	}
	return p, nil
}

func validate(cfg *Config) error {
	if cfg.Name == "" {
		return fmt.Errorf("yieldspec: name is required")
	}
	if len(cfg.Specs) == 0 {
		return fmt.Errorf("yieldspec: at least one spec is required")
	}
	if cfg.Testbench.ACStart <= 0 || cfg.Testbench.ACStop <= cfg.Testbench.ACStart {
		// Only required when an AC measure is used.
		for _, s := range cfg.Specs {
			switch s.Measure {
			case "a0_db", "ft_mhz", "pm_deg", "cmrr_db":
				return fmt.Errorf("yieldspec: spec %q needs a valid testbench acStart/acStop", s.Name)
			}
		}
	}
	for _, s := range cfg.Specs {
		if !strings.EqualFold(s.Kind, "ge") && !strings.EqualFold(s.Kind, "le") {
			return fmt.Errorf("yieldspec: spec %q kind must be ge or le", s.Name)
		}
		if err := checkMeasure(s.Measure); err != nil {
			return fmt.Errorf("yieldspec: spec %q: %w", s.Name, err)
		}
		// Measures with testbench prerequisites fail here, not at eval.
		switch s.Measure {
		case "a0_db", "ft_mhz", "pm_deg":
			if cfg.Testbench.Drive == "" || cfg.Testbench.Out == "" {
				return fmt.Errorf("yieldspec: spec %q needs testbench drive and out", s.Name)
			}
		case "cmrr_db":
			if cfg.Testbench.Feedback == "" {
				return fmt.Errorf("yieldspec: spec %q needs a testbench feedback VCVS", s.Name)
			}
		case "power_mw":
			if cfg.Testbench.Supply == "" {
				return fmt.Errorf("yieldspec: spec %q needs a testbench supply source", s.Name)
			}
		case "sr_vus":
			if cfg.Testbench.Tail == "" || cfg.Testbench.SlewCapF <= 0 {
				return fmt.Errorf("yieldspec: spec %q needs testbench tail and slewCapF", s.Name)
			}
		}
	}
	for _, d := range cfg.Design {
		if d.Lo > d.Hi || d.Init < d.Lo || d.Init > d.Hi {
			return fmt.Errorf("yieldspec: design %q bounds invalid", d.Name)
		}
		if len(d.Targets) == 0 {
			return fmt.Errorf("yieldspec: design %q has no targets", d.Name)
		}
	}
	for _, t := range cfg.Theta {
		if t.Apply != "temp" && !strings.HasPrefix(t.Apply, "source:") {
			return fmt.Errorf("yieldspec: theta %q apply must be \"temp\" or \"source:<name>\"", t.Name)
		}
	}
	for _, g := range cfg.Statistical.Globals {
		if g.Kind != "vth" && g.Kind != "beta" {
			return fmt.Errorf("yieldspec: global %q kind must be vth or beta", g.Name)
		}
	}
	return nil
}

func checkMeasure(m string) error {
	switch m {
	case "a0_db", "ft_mhz", "pm_deg", "cmrr_db", "power_mw", "sr_vus":
		return nil
	}
	if strings.HasPrefix(m, "vdc:") && len(m) > 4 {
		return nil
	}
	return fmt.Errorf("unknown measure %q", m)
}

// validateBindings checks that every named element exists in the netlist.
func validateBindings(cfg *Config, deck *netlist.Deck) error {
	find := func(name string) spice.Device { return deck.Circuit.FindDevice(name) }
	for _, d := range cfg.Design {
		for _, t := range d.Targets {
			dev := find(t.Device)
			if dev == nil {
				return fmt.Errorf("yieldspec: design %q targets unknown device %q", d.Name, t.Device)
			}
			if err := applyTarget(dev, t, 1); err != nil {
				return fmt.Errorf("yieldspec: design %q: %w", d.Name, err)
			}
		}
	}
	for _, l := range cfg.Statistical.Locals {
		if _, ok := deck.Mosfets[l.Device]; !ok {
			return fmt.Errorf("yieldspec: local variation targets unknown MOSFET %q", l.Device)
		}
	}
	tb := cfg.Testbench
	for _, req := range []struct{ what, name string }{
		{"drive", tb.Drive}, {"feedback", tb.Feedback},
		{"supply", tb.Supply}, {"tail", tb.Tail},
	} {
		if req.name != "" && find(req.name) == nil {
			return fmt.Errorf("yieldspec: testbench %s element %q not in netlist", req.what, req.name)
		}
	}
	if tb.Out != "" {
		if _, ok := deck.Nodes[tb.Out]; !ok {
			return fmt.Errorf("yieldspec: testbench out node %q not in netlist", tb.Out)
		}
	}
	for _, t := range cfg.Theta {
		if src, ok := strings.CutPrefix(t.Apply, "source:"); ok {
			if find(src) == nil {
				return fmt.Errorf("yieldspec: theta %q targets unknown source %q", t.Name, src)
			}
		}
	}
	for _, s := range cfg.Specs {
		if node, ok := strings.CutPrefix(s.Measure, "vdc:"); ok {
			if _, ok := deck.Nodes[node]; !ok {
				return fmt.Errorf("yieldspec: spec %q probes unknown node %q", s.Name, node)
			}
		}
	}
	return nil
}

func buildVariationModel(cfg *Config) *variation.Model {
	m := &variation.Model{}
	for _, g := range cfg.Statistical.Globals {
		kind := variation.VthShift
		if g.Kind == "beta" {
			kind = variation.BetaRel
		}
		m.Globals = append(m.Globals, variation.Global{
			Name: g.Name, Kind: kind, Polarity: g.Polarity, Sigma: g.Sigma,
		})
	}
	for _, l := range cfg.Statistical.Locals {
		if l.AVT > 0 {
			m.Locals = append(m.Locals, variation.Local{
				Name: l.Device + ".dVth", Device: l.Device,
				Kind: variation.VthShift, A: l.AVT,
			})
		}
		if l.ABeta > 0 {
			m.Locals = append(m.Locals, variation.Local{
				Name: l.Device + ".dBeta", Device: l.Device,
				Kind: variation.BetaRel, A: l.ABeta,
			})
		}
	}
	return m
}

// applyTarget writes one design value into a parsed element.
func applyTarget(dev spice.Device, t Target, value float64) error {
	scale := t.Scale
	if scale == 0 {
		scale = 1
	}
	v := value * scale
	switch d := dev.(type) {
	case *spice.Mosfet:
		switch strings.ToUpper(t.Param) {
		case "W":
			d.W = v
		case "L":
			d.L = v
		default:
			return fmt.Errorf("MOSFET %q has no parameter %q", t.Device, t.Param)
		}
	case *spice.Resistor:
		if !strings.EqualFold(t.Param, "R") {
			return fmt.Errorf("resistor %q has no parameter %q", t.Device, t.Param)
		}
		d.R = v
	case *spice.Capacitor:
		if !strings.EqualFold(t.Param, "C") {
			return fmt.Errorf("capacitor %q has no parameter %q", t.Device, t.Param)
		}
		d.C = v
	case *spice.VSource:
		if !strings.EqualFold(t.Param, "DC") {
			return fmt.Errorf("source %q has no parameter %q", t.Device, t.Param)
		}
		d.DC = v
	default:
		return fmt.Errorf("device %q (%T) cannot be a design target", t.Device, dev)
	}
	return nil
}

// evaluator performs the measurement flow for one configuration.
type evaluator struct {
	cfg   *Config
	model *variation.Model
}

// instantiate parses a fresh deck and applies design, statistical and
// operating values.
func (ev *evaluator) instantiate(d, s, theta []float64) (*netlist.Deck, error) {
	deck, err := netlist.ParseString(ev.cfg.Netlist)
	if err != nil {
		return nil, err
	}
	// Design values.
	for i, dp := range ev.cfg.Design {
		for _, t := range dp.Targets {
			dev := deck.Circuit.FindDevice(t.Device)
			if err := applyTarget(dev, t, d[i]); err != nil {
				return nil, err
			}
		}
	}
	// Operating values: sources first, temperature last (model cards).
	var tempC float64 = 27
	for i, t := range ev.cfg.Theta {
		if t.Apply == "temp" {
			tempC = theta[i]
			continue
		}
		src := strings.TrimPrefix(t.Apply, "source:")
		vs, ok := deck.Circuit.FindDevice(src).(*spice.VSource)
		if !ok {
			return nil, fmt.Errorf("yieldspec: theta %q target %q is not a V source", t.Name, src)
		}
		vs.DC = theta[i]
	}
	for _, m := range deck.Mosfets {
		m.P = m.P.AtTemp(tempC)
	}
	// Statistical deltas, Pelgrom sigmas from the post-design geometry.
	if s != nil && ev.model.Dim() > 0 {
		geom := func(device string) (w, l float64) {
			m := deck.Mosfets[device]
			return m.W, m.L
		}
		for _, delta := range ev.model.Physical(s, geom) {
			for name, m := range deck.Mosfets {
				if delta.Device != "" {
					if name != delta.Device {
						continue
					}
				} else if delta.Polarity != 0 && m.Polarity != delta.Polarity {
					continue
				}
				switch delta.Kind {
				case variation.VthShift:
					m.DVth += delta.Value
				case variation.BetaRel:
					m.BetaScale *= 1 + delta.Value
				}
			}
		}
	}
	return deck, nil
}

// eval implements problem.EvalFunc.
func (ev *evaluator) eval(d, s, theta []float64) ([]float64, error) {
	deck, err := ev.instantiate(d, s, theta)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ev.cfg.Specs))
	meas, err := ev.measure(deck)
	if err != nil {
		// Broken operating point: every measure reads NaN (see the
		// failedPerf convention in internal/circuits).
		for i := range out {
			out[i] = math.NaN()
		}
		return out, nil
	}
	for i, sp := range ev.cfg.Specs {
		v, ok := meas[sp.Measure]
		if !ok {
			return nil, fmt.Errorf("yieldspec: measure %q missing", sp.Measure)
		}
		out[i] = v
	}
	return out, nil
}

// measure runs DC (+AC) and extracts every measure the config mentions.
func (ev *evaluator) measure(deck *netlist.Deck) (map[string]float64, error) {
	tb := ev.cfg.Testbench
	dc, err := deck.Circuit.DC(spice.DCOptions{})
	if err != nil {
		return nil, err
	}
	meas := make(map[string]float64)
	need := make(map[string]bool)
	for _, sp := range ev.cfg.Specs {
		need[sp.Measure] = true
	}

	for m := range need {
		if node, ok := strings.CutPrefix(m, "vdc:"); ok {
			meas[m] = dc.Voltage(deck.Nodes[node])
		}
	}
	if need["power_mw"] {
		vs := deck.Circuit.FindDevice(tb.Supply).(*spice.VSource)
		meas["power_mw"] = math.Abs(dc.BranchCurrent(vs.Branch())) * vs.DC * 1e3
	}
	if need["sr_vus"] {
		tail, ok := deck.Mosfets[tb.Tail]
		if !ok {
			return nil, fmt.Errorf("yieldspec: sr_vus needs a MOSFET tail, %q not found", tb.Tail)
		}
		if tb.SlewCapF <= 0 {
			return nil, fmt.Errorf("yieldspec: sr_vus needs slewCapF > 0")
		}
		meas["sr_vus"] = tail.Op(dc.X).ID / tb.SlewCapF / 1e6
	}

	if need["a0_db"] || need["ft_mhz"] || need["pm_deg"] || need["cmrr_db"] {
		drive, ok := deck.Circuit.FindDevice(tb.Drive).(*spice.VSource)
		if !ok {
			return nil, fmt.Errorf("yieldspec: AC measures need a V-source drive")
		}
		drive.AC = 1
		var fb *spice.VCVS
		if tb.Feedback != "" {
			fb, _ = deck.Circuit.FindDevice(tb.Feedback).(*spice.VCVS)
		}
		if fb != nil {
			fb.ACMode = spice.VCVSACFixed
			fb.ACValue = 0
		}
		bode, err := deck.Circuit.ACSweep(dc, deck.Nodes[tb.Out], tb.ACStart, tb.ACStop, 8)
		if err != nil {
			return nil, err
		}
		a0 := bode.DCGainDB()
		meas["a0_db"] = a0
		ftHz, _, okFt := bode.UnityCrossing()
		pm, okPM := bode.PhaseMarginDeg()
		if !okFt || !okPM {
			ftHz = tb.ACStart * math.Pow(10, math.Min(a0, 0)/20)
			pm = 0
		}
		meas["ft_mhz"] = ftHz / 1e6
		meas["pm_deg"] = pm

		if need["cmrr_db"] {
			if fb == nil {
				return nil, fmt.Errorf("yieldspec: cmrr_db needs a feedback VCVS")
			}
			fb.ACValue = 1
			acCM, err := deck.Circuit.AC(dc, 2*math.Pi*tb.ACStart)
			if err != nil {
				return nil, err
			}
			cm := acCM.Voltage(deck.Nodes[tb.Out])
			mag := math.Hypot(real(cm), imag(cm))
			meas["cmrr_db"] = a0 - 20*math.Log10(math.Max(mag, 1e-12))
		}
	}
	return meas, nil
}

// constraints implements problem.ConstraintFunc: automatic sizing rules
// for every MOSFET in the deck.
func (ev *evaluator) constraints(d []float64) ([]float64, error) {
	nominalTheta := make([]float64, len(ev.cfg.Theta))
	for i, t := range ev.cfg.Theta {
		nominalTheta[i] = t.Nominal
	}
	deck, err := ev.instantiate(d, nil, nominalTheta)
	if err != nil {
		return nil, err
	}
	satM := ev.cfg.Constraints.SatMargin
	vonM := ev.cfg.Constraints.VonMargin
	if satM == 0 {
		satM = 0.05
	}
	if vonM == 0 {
		vonM = 0.03
	}
	n := 2 * len(deck.Mosfets)
	dc, err := deck.Circuit.DC(spice.DCOptions{})
	if err != nil {
		out := make([]float64, n)
		for i := range out {
			out[i] = -1e3
		}
		return out, nil
	}
	out := make([]float64, 0, n)
	for _, name := range sortedMosNames(deck.Mosfets) {
		op := deck.Mosfets[name].Op(dc.X)
		out = append(out, op.SatMargin-satM, op.Vov-vonM)
	}
	return out, nil
}

// sortedMosNames gives map iteration a deterministic order so constraint
// vectors always line up with ConstraintNames.
func sortedMosNames(ms map[string]*spice.Mosfet) []string {
	names := make([]string, 0, len(ms))
	for n := range ms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
