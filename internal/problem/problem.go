// Package problem defines the black-box abstraction the yield optimizer
// works on: performance specifications, bounded design parameters,
// normalized statistical parameters, operating ranges, and the evaluation
// callbacks the circuit layer implements — plus the simulation counter
// used for the paper's effort reporting (Table 7).
package problem

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// SpecKind says which side of the bound is acceptable.
type SpecKind int

const (
	// GE means the performance must satisfy f >= Bound (e.g. gain).
	GE SpecKind = iota
	// LE means the performance must satisfy f <= Bound (e.g. power).
	LE
)

// Spec is one performance specification f^(i) together with its bound
// f_b^(i) from the paper's Sec. 2.
type Spec struct {
	Name  string
	Unit  string
	Kind  SpecKind
	Bound float64
}

// Margin converts a raw performance value into the normalized
// "satisfied when >= 0" form used throughout the optimizer.
func (s Spec) Margin(f float64) float64 {
	if s.Kind == GE {
		return f - s.Bound
	}
	return s.Bound - f
}

// Satisfied reports whether performance value f meets the spec.
func (s Spec) Satisfied(f float64) bool { return s.Margin(f) >= 0 }

// Param is a bounded design parameter d_k (widths, lengths, bias levels).
// Values are expressed in designer units (µm, µA) so that coordinate
// steps are naturally scaled.
type Param struct {
	Name string
	Unit string
	Init float64
	Lo   float64
	Hi   float64
	// LogScale marks parameters that act multiplicatively (transistor
	// widths, capacitances): trust regions then bound the ratio of
	// change rather than the absolute step.
	LogScale bool
}

// OpRange is one operating parameter θ_j with its tolerance range Θ.
type OpRange struct {
	Name    string
	Unit    string
	Nominal float64
	Lo      float64
	Hi      float64
}

// EvalFunc computes every performance at design point d, normalized
// statistical point s (ŝ ~ N(0,I) in the transformed space of Eq. 11) and
// operating point theta. One call corresponds to one circuit simulation.
type EvalFunc func(d, s, theta []float64) ([]float64, error)

// ConstraintFunc evaluates the functional constraints c(d) >= 0 of
// Sec. 5.1 at the nominal statistical and operating point. One call
// corresponds to one (cheaper, DC-only) circuit simulation.
type ConstraintFunc func(d []float64) ([]float64, error)

// SimCounters reports how the simulator behind a problem spent its
// effort, in simulator-neutral terms. All fields are cumulative since
// problem construction.
type SimCounters struct {
	// WarmStarts counts DC solves attempted from a reference operating
	// point instead of the cold homotopy ladder.
	WarmStarts int64 `json:"warm_starts"`
	// WarmConverged counts warm-started solves that converged directly,
	// without falling back to gmin/source stepping.
	WarmConverged int64 `json:"warm_converged"`
	// Fallbacks counts DC solves that needed the gmin/source-stepping
	// homotopy ladder after plain Newton failed.
	Fallbacks int64 `json:"fallbacks"`
	// NewtonIters counts DC Newton iterations across all solves.
	NewtonIters int64 `json:"newton_iters"`
	// Solver names the linear-solver backend ("sparse" or "dense").
	Solver string `json:"solver,omitempty"`
	// Factorizations counts numeric matrix factorizations.
	Factorizations int64 `json:"factorizations"`
	// Solves counts triangular solves.
	Solves int64 `json:"solves"`
	// SymbolicFacts counts symbolic factorizations (sparsity analysis and
	// fill-reducing ordering); the sparse backend pays one per topology.
	SymbolicFacts int64 `json:"symbolic_factorizations"`
	// MatrixNNZ is the stored-entry count of the last assembled MNA
	// system (a gauge, not a counter).
	MatrixNNZ int64 `json:"matrix_nnz"`
	// FactorNNZ is the stored-entry count of its L+U factors; the excess
	// over MatrixNNZ is the factorization fill-in.
	FactorNNZ int64 `json:"factor_nnz"`
	// DCSolveNanos, ACSolveNanos and TranSolveNanos split solver wall
	// time (assembly + factorization + solves) by analysis type, so the
	// simulator's cost structure is visible without a profiler.
	DCSolveNanos int64 `json:"dc_solve_nanos"`
	// ACSolveNanos: see DCSolveNanos.
	ACSolveNanos int64 `json:"ac_solve_nanos"`
	// TranSolveNanos: see DCSolveNanos.
	TranSolveNanos int64 `json:"tran_solve_nanos"`
}

// Add accumulates o into c: counters add, the backend name and the NNZ
// gauges take o's values when o observed a system.
func (c *SimCounters) Add(o SimCounters) {
	c.WarmStarts += o.WarmStarts
	c.WarmConverged += o.WarmConverged
	c.Fallbacks += o.Fallbacks
	c.NewtonIters += o.NewtonIters
	c.Factorizations += o.Factorizations
	c.Solves += o.Solves
	c.SymbolicFacts += o.SymbolicFacts
	c.DCSolveNanos += o.DCSolveNanos
	c.ACSolveNanos += o.ACSolveNanos
	c.TranSolveNanos += o.TranSolveNanos
	if o.Solver != "" {
		c.Solver = o.Solver
	}
	if o.MatrixNNZ != 0 {
		c.MatrixNNZ = o.MatrixNNZ
	}
	if o.FactorNNZ != 0 {
		c.FactorNNZ = o.FactorNNZ
	}
}

// Problem is the black-box circuit abstraction the optimizer works on.
type Problem struct {
	Name            string
	Specs           []Spec
	Design          []Param
	StatNames       []string // length = statistical dimension
	Theta           []OpRange
	ConstraintNames []string
	Eval            EvalFunc
	Constraints     ConstraintFunc
	// SimStats, when non-nil, snapshots the simulator-side effort
	// counters (DC warm starts, fallbacks, Newton iterations) so the
	// optimizer can report them alongside the simulation counts.
	SimStats func() SimCounters
	// SimConfigure, when non-nil, applies runtime simulator tuning (e.g.
	// the AC-sweep worker fan-out) before a run. Implementations must
	// keep evaluation results bit-identical across settings.
	SimConfigure func(SimOptions)
}

// SimOptions is runtime simulator tuning a problem may accept through
// Problem.SimConfigure. Every option must be behaviour-preserving:
// changing it may alter speed but never results.
type SimOptions struct {
	// SweepWorkers bounds the per-frequency worker fan-out inside each
	// AC sweep. 0 means the simulator default (GOMAXPROCS).
	SweepWorkers int
}

// NumSpecs returns the number of performance specifications.
func (p *Problem) NumSpecs() int { return len(p.Specs) }

// NumDesign returns the design-space dimension.
func (p *Problem) NumDesign() int { return len(p.Design) }

// NumStat returns the statistical-space dimension.
func (p *Problem) NumStat() int { return len(p.StatNames) }

// InitialDesign returns the initial design vector d0.
func (p *Problem) InitialDesign() []float64 {
	d := make([]float64, len(p.Design))
	for i, prm := range p.Design {
		d[i] = prm.Init
	}
	return d
}

// NominalTheta returns the nominal operating point.
func (p *Problem) NominalTheta() []float64 {
	t := make([]float64, len(p.Theta))
	for i, op := range p.Theta {
		t[i] = op.Nominal
	}
	return t
}

// ClampDesign clips d into the design box in place and returns it.
func (p *Problem) ClampDesign(d []float64) []float64 {
	for i, prm := range p.Design {
		if d[i] < prm.Lo {
			d[i] = prm.Lo
		}
		if d[i] > prm.Hi {
			d[i] = prm.Hi
		}
	}
	return d
}

// Validate checks structural consistency of the problem definition.
func (p *Problem) Validate() error {
	if p.Eval == nil {
		return errors.New("core: Problem.Eval is nil")
	}
	if len(p.Specs) == 0 {
		return errors.New("core: Problem has no specifications")
	}
	for i, prm := range p.Design {
		if prm.Lo > prm.Hi {
			return fmt.Errorf("core: design param %q has Lo > Hi", prm.Name)
		}
		if prm.Init < prm.Lo || prm.Init > prm.Hi {
			return fmt.Errorf("core: design param %d (%q) initial value %g outside [%g, %g]",
				i, prm.Name, prm.Init, prm.Lo, prm.Hi)
		}
	}
	for _, op := range p.Theta {
		if op.Lo > op.Hi || op.Nominal < op.Lo || op.Nominal > op.Hi {
			return fmt.Errorf("core: operating param %q range invalid", op.Name)
		}
	}
	return nil
}

// Counter tallies simulator invocations so the effort table (paper
// Table 7) can be reported. It is safe for concurrent use.
type Counter struct {
	evals       atomic.Int64
	constraints atomic.Int64
}

// Evals returns the number of full performance simulations so far.
func (c *Counter) Evals() int64 { return c.evals.Load() }

// ConstraintEvals returns the number of constraint (DC-only) simulations.
func (c *Counter) ConstraintEvals() int64 { return c.constraints.Load() }

// Total returns all simulator invocations.
func (c *Counter) Total() int64 { return c.evals.Load() + c.constraints.Load() }

// AddEvals credits n full-performance simulations that ran outside the
// instrumented path — the speculation pipeline calls this when the
// authoritative run claims a pre-computed cache entry, so effort
// accounting matches a run that simulated the point itself.
func (c *Counter) AddEvals(n int64) { c.evals.Add(n) }

// AddConstraintEvals credits n constraint simulations; see AddEvals.
func (c *Counter) AddConstraintEvals(n int64) { c.constraints.Add(n) }

// Reset zeroes the counters.
func (c *Counter) Reset() {
	c.evals.Store(0)
	c.constraints.Store(0)
}

// Instrument wraps the problem's evaluation functions with the counter and
// returns a shallow copy; the original problem is left untouched.
func (c *Counter) Instrument(p *Problem) *Problem {
	q := *p
	inner := p.Eval
	q.Eval = func(d, s, theta []float64) ([]float64, error) {
		c.evals.Add(1)
		return inner(d, s, theta)
	}
	if p.Constraints != nil {
		innerC := p.Constraints
		q.Constraints = func(d []float64) ([]float64, error) {
			c.constraints.Add(1)
			return innerC(d)
		}
	}
	return &q
}
