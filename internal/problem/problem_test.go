package problem

import (
	"errors"
	"sync"
	"testing"
)

func validProblem() *Problem {
	return &Problem{
		Name: "t",
		Specs: []Spec{
			{Name: "a", Kind: GE, Bound: 2},
			{Name: "b", Kind: LE, Bound: 5},
		},
		Design: []Param{
			{Name: "d0", Init: 1, Lo: 0, Hi: 2},
		},
		StatNames: []string{"s0"},
		Theta:     []OpRange{{Name: "t", Nominal: 0, Lo: -1, Hi: 1}},
		Eval: func(d, s, th []float64) ([]float64, error) {
			return []float64{d[0], d[0]}, nil
		},
		Constraints: func(d []float64) ([]float64, error) {
			return []float64{1 - d[0]}, nil
		},
	}
}

func TestSpecMarginAndSatisfied(t *testing.T) {
	ge := Spec{Kind: GE, Bound: 2}
	if ge.Margin(3) != 1 || ge.Margin(1) != -1 {
		t.Error("GE margin wrong")
	}
	if !ge.Satisfied(2) || ge.Satisfied(1.999) {
		t.Error("GE satisfied wrong")
	}
	le := Spec{Kind: LE, Bound: 5}
	if le.Margin(3) != 2 || le.Margin(7) != -2 {
		t.Error("LE margin wrong")
	}
	if !le.Satisfied(5) || le.Satisfied(5.001) {
		t.Error("LE satisfied wrong")
	}
}

func TestProblemAccessors(t *testing.T) {
	p := validProblem()
	if p.NumSpecs() != 2 || p.NumDesign() != 1 || p.NumStat() != 1 {
		t.Error("counts wrong")
	}
	if d := p.InitialDesign(); d[0] != 1 {
		t.Error("InitialDesign wrong")
	}
	if th := p.NominalTheta(); th[0] != 0 {
		t.Error("NominalTheta wrong")
	}
	d := []float64{-5}
	p.ClampDesign(d)
	if d[0] != 0 {
		t.Errorf("clamp low = %v", d[0])
	}
	d[0] = 99
	p.ClampDesign(d)
	if d[0] != 2 {
		t.Errorf("clamp high = %v", d[0])
	}
}

func TestValidate(t *testing.T) {
	if err := validProblem().Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	p := validProblem()
	p.Eval = nil
	if p.Validate() == nil {
		t.Error("nil Eval accepted")
	}
	p = validProblem()
	p.Specs = nil
	if p.Validate() == nil {
		t.Error("no specs accepted")
	}
	p = validProblem()
	p.Design[0].Lo = 3
	if p.Validate() == nil {
		t.Error("Lo > Hi accepted")
	}
	p = validProblem()
	p.Design[0].Init = 5
	if p.Validate() == nil {
		t.Error("init outside box accepted")
	}
	p = validProblem()
	p.Theta[0].Nominal = 9
	if p.Validate() == nil {
		t.Error("theta nominal outside range accepted")
	}
}

func TestCounterInstrument(t *testing.T) {
	p := validProblem()
	var c Counter
	q := c.Instrument(p)
	d1 := []float64{1}
	for i := 0; i < 3; i++ {
		if _, err := q.Eval(d1, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Constraints([]float64{0}); err != nil {
		t.Fatal(err)
	}
	if c.Evals() != 3 || c.ConstraintEvals() != 1 || c.Total() != 4 {
		t.Errorf("counts = %d/%d", c.Evals(), c.ConstraintEvals())
	}
	// The original problem stays uninstrumented.
	if _, err := p.Eval(d1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if c.Evals() != 3 {
		t.Error("original Eval leaked into counter")
	}
	c.Reset()
	if c.Total() != 0 {
		t.Error("Reset failed")
	}
}

func TestCounterConcurrentSafety(t *testing.T) {
	p := validProblem()
	var c Counter
	q := c.Instrument(p)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := []float64{1}
			for i := 0; i < 100; i++ {
				_, _ = q.Eval(d, nil, nil)
			}
		}()
	}
	wg.Wait()
	if c.Evals() != 800 {
		t.Errorf("evals = %d want 800", c.Evals())
	}
}

func TestInstrumentPreservesErrors(t *testing.T) {
	p := validProblem()
	sentinel := errors.New("boom")
	p.Eval = func(d, s, th []float64) ([]float64, error) { return nil, sentinel }
	var c Counter
	q := c.Instrument(p)
	if _, err := q.Eval(nil, nil, nil); !errors.Is(err, sentinel) {
		t.Error("error not propagated")
	}
	if c.Evals() != 1 {
		t.Error("failed eval not counted")
	}
}

func TestInstrumentNilConstraints(t *testing.T) {
	p := validProblem()
	p.Constraints = nil
	var c Counter
	q := c.Instrument(p)
	if q.Constraints != nil {
		t.Error("nil constraints must stay nil")
	}
}
