package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices, which must all share one length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("linalg: ragged row %d: %d vs %d", i, len(r), c))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Addto adds v to the element at row i, column j.
func (m *Matrix) Addto(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns an independent copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears every entry of m.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MulVec returns m*v as a new vector.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Mul returns the matrix product m*b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// Symmetrize replaces m with (m + mᵀ)/2. It panics if m is not square.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize requires a square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// MaxAbs returns the largest absolute entry of m.
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "% .6e ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
