package linalg

// This file defines the solver-agnostic assembly and factorization
// interfaces the circuit simulator targets, plus the dense reference
// implementations. The MNA matrices the simulator builds are mostly
// structural zeros, so the spice layer stamps through Stamper/CStamper
// and lets the selected backend decide the storage: the dense backends
// here wrap the existing Matrix/LU and CMatrix elimination unchanged,
// while sparse.go provides compressed-column backends with a
// symbolic/numeric factorization split.

// Stamper accumulates real matrix entries during system assembly. Device
// stamps write their Jacobian contributions through this interface so
// the matrix representation stays pluggable.
type Stamper interface {
	// Addto adds v to entry (i, j).
	Addto(i, j int, v float64)
}

// CStamper is the complex analogue of Stamper, used for the AC system
// (G + jωC) assembly.
type CStamper interface {
	Addto(i, j int, v complex128)
}

// SolverStats is a value snapshot of the work a solver backend has done
// since construction. Counters are cumulative; N, NNZ and FillNNZ
// describe the current system.
type SolverStats struct {
	// Kind names the backend ("dense" or "sparse").
	Kind string
	// N is the system order.
	N int
	// NNZ is the number of stored matrix entries (n² for dense).
	NNZ int
	// FillNNZ is the number of stored factor entries, L plus U (n² for
	// dense); FillNNZ − NNZ is the fill-in of the factorization.
	FillNNZ int
	// Symbolic counts symbolic factorizations: pattern analysis, the
	// fill-reducing ordering and pivot-order selection. The sparse
	// backend pays this once per topology and reuses it across every
	// numeric refactorization.
	Symbolic int64
	// Factorizations counts numeric factorizations.
	Factorizations int64
	// Solves counts triangular solves.
	Solves int64
}

// Solver is a real linear-system backend over a reusable assembly
// structure. The cycle is Reset (clear values), stamp through Addto,
// Factor, then SolveInto — repeated across Newton iterations with the
// structure discovered on the first assembly reused afterwards.
type Solver interface {
	Stamper
	// Order returns the system order n.
	Order() int
	// Reset clears the assembled values for a fresh round of stamping.
	Reset()
	// Factor factors the assembled matrix, returning ErrSingular (wrapped
	// in a PivotError) when a pivot vanishes.
	Factor() error
	// SolveInto solves A x = b with the current factorization. x and b
	// must have length Order and must not alias.
	SolveInto(x, b Vector) error
	// Stats snapshots the backend's work counters.
	Stats() SolverStats
}

// ComplexSolver is the complex analogue of Solver, used for the AC
// frequency sweep: one Reset/stamp/Factor/SolveInto cycle per frequency
// point over a fixed sparsity structure.
type ComplexSolver interface {
	CStamper
	Order() int
	Reset()
	Factor() error
	SolveInto(x, b []complex128) error
	Stats() SolverStats
}

// DenseSolver adapts the dense Matrix storage and LU factorization to
// the Solver interface. It is the reference backend: simple, pivot-robust
// and bit-identical to the pre-interface dense path.
type DenseSolver struct {
	a     *Matrix
	lu    *LU
	stats SolverStats
}

// NewDenseSolver returns a dense backend for order-n systems.
func NewDenseSolver(n int) *DenseSolver {
	return &DenseSolver{
		a:     NewMatrix(n, n),
		lu:    NewLUWorkspace(n),
		stats: SolverStats{Kind: "dense", N: n, NNZ: n * n, FillNNZ: n * n},
	}
}

// Addto implements Stamper.
func (s *DenseSolver) Addto(i, j int, v float64) { s.a.Addto(i, j, v) }

// Order implements Solver.
func (s *DenseSolver) Order() int { return s.a.Rows }

// Reset implements Solver.
func (s *DenseSolver) Reset() { s.a.Zero() }

// Factor implements Solver.
func (s *DenseSolver) Factor() error {
	s.stats.Factorizations++
	return s.lu.Factor(s.a)
}

// SolveInto implements Solver.
func (s *DenseSolver) SolveInto(x, b Vector) error {
	s.lu.SolveInto(x, b)
	s.stats.Solves++
	return nil
}

// Stats implements Solver.
func (s *DenseSolver) Stats() SolverStats { return s.stats }

// DenseComplexSolver adapts dense complex storage and partially pivoted
// elimination to the ComplexSolver interface. Splitting Factor from
// SolveInto reorders no floating-point operation relative to the fused
// CSolve elimination, so solutions stay bit-identical to the historical
// AC path.
type DenseComplexSolver struct {
	a     *CMatrix
	lu    *CMatrix
	piv   []int
	x     []complex128
	stats SolverStats
}

// NewDenseComplexSolver returns a dense complex backend for order-n
// systems.
func NewDenseComplexSolver(n int) *DenseComplexSolver {
	return &DenseComplexSolver{
		a:     NewCMatrix(n, n),
		lu:    NewCMatrix(n, n),
		piv:   make([]int, n),
		stats: SolverStats{Kind: "dense", N: n, NNZ: n * n, FillNNZ: n * n},
	}
}

// Addto implements CStamper.
func (s *DenseComplexSolver) Addto(i, j int, v complex128) { s.a.Addto(i, j, v) }

// Order implements ComplexSolver.
func (s *DenseComplexSolver) Order() int { return s.a.Rows }

// Reset implements ComplexSolver.
func (s *DenseComplexSolver) Reset() { s.a.Zero() }

// Factor implements ComplexSolver: partially pivoted elimination storing
// the multipliers below the diagonal. The pivot choice (squared
// magnitude) and update order match csolve exactly.
func (s *DenseComplexSolver) Factor() error {
	s.stats.Factorizations++
	n := s.lu.Rows
	copy(s.lu.Data, s.a.Data)
	data := s.lu.Data
	for i := range s.piv {
		s.piv[i] = i
	}
	for k := 0; k < n; k++ {
		p, maxv := k, sqmag(data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := sqmag(data[i*n+k]); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return &PivotError{Index: k, Err: ErrSingular}
		}
		if p != k {
			rk, rp := data[k*n:(k+1)*n], data[p*n:(p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			s.piv[k], s.piv[p] = s.piv[p], s.piv[k]
		}
		pivot := data[k*n+k]
		pd := newPivotDiv(pivot)
		for i := k + 1; i < n; i++ {
			e := data[i*n+k]
			if e == 0 {
				continue
			}
			m := pd.div(e, pivot)
			data[i*n+k] = m
			if m == 0 {
				continue
			}
			ri, rk := data[i*n:(i+1)*n], data[k*n:(k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return nil
}

// SolveInto implements ComplexSolver.
func (s *DenseComplexSolver) SolveInto(x, b []complex128) error {
	n := s.lu.Rows
	if len(x) != n || len(b) != n {
		return errDimension
	}
	data := s.lu.Data
	for i := 0; i < n; i++ {
		x[i] = b[s.piv[i]]
	}
	for i := 1; i < n; i++ {
		row := data[i*n : (i+1)*n]
		sum := x[i]
		for j := 0; j < i; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum
	}
	for i := n - 1; i >= 0; i-- {
		row := data[i*n : (i+1)*n]
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= row[j] * x[j]
		}
		x[i] = sum / row[i]
	}
	s.stats.Solves++
	return nil
}

// Stats implements ComplexSolver.
func (s *DenseComplexSolver) Stats() SolverStats { return s.stats }

// CaptureValues copies the dense assembly (row-major, zeros included)
// into dst, reusing its capacity. See SparseComplexSolver.CaptureValues
// for the affine-reassembly protocol it supports.
func (s *DenseComplexSolver) CaptureValues(dst []complex128) []complex128 {
	return append(dst[:0], s.a.Data...)
}

// LoadValues overwrites the dense assembly with base[k] + t·slope[k],
// reporting false on a length mismatch.
func (s *DenseComplexSolver) LoadValues(base, slope []complex128, t float64) bool {
	if len(base) != len(s.a.Data) || len(slope) != len(s.a.Data) {
		return false
	}
	for k, sl := range slope {
		s.a.Data[k] = base[k] + complex(real(sl)*t, imag(sl)*t)
	}
	return true
}
