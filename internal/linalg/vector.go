// Package linalg provides the dense linear algebra kernels used throughout
// the yield optimizer: real and complex LU factorizations for the circuit
// simulator's MNA systems, Cholesky factorization for covariance models,
// and QR-based least squares for gradient fitting.
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS replacement: matrices in this problem domain are dense and
// modest in size (tens of rows), and the simulator refactorizes them inside
// Newton loops, so predictable performance matters more than asymptotics.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector of float64 values.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow.
func (v Vector) Norm2() float64 {
	scale, ssq := 0.0, 1.0
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry of v (0 for an empty vector).
func (v Vector) NormInf() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies every entry of v by a in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// AddScaled performs v += a*w in place and returns v.
func (v Vector) AddScaled(a float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Sub returns the difference v-w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Add returns the sum v+w as a new vector.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Add length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Zero sets all entries of v to zero.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}
