package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randSystem builds a random sparse-ish system with a structurally
// guaranteed nonzero somewhere in every row and column, mimicking MNA
// Jacobians (including zero diagonal entries on branch rows).
func randSystem(rng *rand.Rand, n int, density float64) (*Matrix, Vector) {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				a.Set(i, j, rng.NormFloat64())
			}
		}
	}
	// Couple row i to column (i+1)%n so the matrix is structurally
	// nonsingular without relying on the diagonal.
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a.Addto(i, j, 2+rng.Float64())
	}
	b := NewVector(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

func stampDense(s Stamper, a *Matrix) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if v := a.At(i, j); v != 0 {
				s.Addto(i, j, v)
			}
		}
	}
}

func maxRelDiff(x, y Vector) float64 {
	worst := 0.0
	for i := range x {
		scale := math.Max(math.Abs(x[i]), math.Abs(y[i]))
		if scale < 1e-12 {
			scale = 1
		}
		if d := math.Abs(x[i]-y[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

func TestSparseMatchesDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 3, 5, 8, 13, 21, 34} {
		for trial := 0; trial < 20; trial++ {
			a, b := randSystem(rng, n, 0.25)
			ds := NewDenseSolver(n)
			sp := NewSparseSolver(n)
			stampDense(ds, a)
			stampDense(sp, a)
			if err := ds.Factor(); err != nil {
				continue // skip the rare numerically singular draw
			}
			if err := sp.Factor(); err != nil {
				t.Fatalf("n=%d trial=%d: sparse Factor: %v", n, trial, err)
			}
			xd, xs := NewVector(n), NewVector(n)
			if err := ds.SolveInto(xd, b); err != nil {
				t.Fatal(err)
			}
			if err := sp.SolveInto(xs, b); err != nil {
				t.Fatal(err)
			}
			if d := maxRelDiff(xd, xs); d > 1e-9 {
				t.Fatalf("n=%d trial=%d: dense/sparse disagree, max rel diff %g", n, trial, d)
			}
		}
	}
}

// TestSparseMNAZeroDiagonal exercises the MNA shape that breaks naive
// no-pivot sparse LU: voltage-source branch rows with structurally zero
// diagonals.
func TestSparseMNAZeroDiagonal(t *testing.T) {
	// 2-node circuit: V source 5V at node 0 (branch var 2), R=2 from
	// node 0 to node 1, R=1 from node 1 to ground.
	//   [ 0.5 -0.5  1 ] [v0]   [0]
	//   [-0.5  1.5  0 ] [v1] = [0]
	//   [ 1    0    0 ] [iV]   [5]
	n := 3
	sp := NewSparseSolver(n)
	sp.Addto(0, 0, 0.5)
	sp.Addto(0, 1, -0.5)
	sp.Addto(0, 2, 1)
	sp.Addto(1, 0, -0.5)
	sp.Addto(1, 1, 1.5)
	sp.Addto(2, 0, 1)
	if err := sp.Factor(); err != nil {
		t.Fatalf("Factor: %v", err)
	}
	x := NewVector(n)
	if err := sp.SolveInto(x, Vector{0, 0, 5}); err != nil {
		t.Fatal(err)
	}
	want := Vector{5, 5.0 / 3.0, -(5 - 5.0/3.0) / 2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x[%d] = %g, want %g (x=%v)", i, x[i], want[i], x)
		}
	}
	st := sp.Stats()
	if st.Kind != "sparse" || st.N != 3 || st.NNZ != 6 {
		t.Fatalf("stats = %+v, want sparse/3/6", st)
	}
	if st.Symbolic != 1 || st.Factorizations != 1 || st.Solves != 1 {
		t.Fatalf("counters = %+v", st)
	}
}

// TestSparseRefactorBitIdentical verifies the symbolic/numeric split:
// refactoring on identical values must reproduce bit-identical solutions
// (the determinism contract the simulator's eval cache relies on), and
// the second Factor must not redo symbolic analysis.
func TestSparseRefactorBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n := 12
	a, b := randSystem(rng, n, 0.3)
	sp := NewSparseSolver(n)
	stampDense(sp, a)
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	x1 := NewVector(n)
	if err := sp.SolveInto(x1, b); err != nil {
		t.Fatal(err)
	}
	// Same values, second factorization: must take the refactor path.
	sp.Reset()
	stampDense(sp, a)
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	x2 := NewVector(n)
	if err := sp.SolveInto(x2, b); err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
			t.Fatalf("refactor not bit-identical at %d: %x vs %x", i, x1[i], x2[i])
		}
	}
	st := sp.Stats()
	if st.Symbolic != 1 {
		t.Fatalf("expected 1 symbolic factorization, got %d", st.Symbolic)
	}
	if st.Factorizations != 2 {
		t.Fatalf("expected 2 numeric factorizations, got %d", st.Factorizations)
	}
	// Perturbed values along the same pattern still go through refactor.
	sp.Reset()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := a.At(i, j); v != 0 {
				sp.Addto(i, j, v*(1+1e-6))
			}
		}
	}
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	if st := sp.Stats(); st.Symbolic != 1 {
		t.Fatalf("perturbed refactor redid symbolic analysis: %+v", st)
	}
}

// TestSparseRepivotFallback drives the stored pivot order degenerate so
// refactor must fall back to a fresh symbolic factorization.
func TestSparseRepivotFallback(t *testing.T) {
	n := 2
	sp := NewSparseSolver(n)
	// First system: diagonal dominant, pivots on the diagonal.
	sp.Addto(0, 0, 10)
	sp.Addto(0, 1, 1)
	sp.Addto(1, 0, 1)
	sp.Addto(1, 1, 10)
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	// Second system, same pattern: the old pivot (0,0) collapses to
	// ~zero relative to its column, forcing a repivot.
	sp.Reset()
	sp.Addto(0, 0, 1e-12)
	sp.Addto(0, 1, 1)
	sp.Addto(1, 0, 1)
	sp.Addto(1, 1, 1e-12)
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	x := NewVector(n)
	if err := sp.SolveInto(x, Vector{1, 2}); err != nil {
		t.Fatal(err)
	}
	// x ≈ [2, 1] for the anti-diagonal system.
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Fatalf("x = %v, want ~[2 1]", x)
	}
	if st := sp.Stats(); st.Symbolic != 2 {
		t.Fatalf("expected repivot to redo symbolic analysis: %+v", st)
	}
}

// TestSparseStructureGrowth stamps an entry outside the compiled
// structure (the transient-after-DC case) and checks the backend
// recompiles and still solves correctly.
func TestSparseStructureGrowth(t *testing.T) {
	n := 3
	sp := NewSparseSolver(n)
	sp.Addto(0, 0, 2)
	sp.Addto(1, 1, 3)
	sp.Addto(2, 2, 4)
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	nnz0 := sp.Stats().NNZ
	if nnz0 != 3 {
		t.Fatalf("NNZ = %d, want 3", nnz0)
	}
	// New position (0,1) arrives mid-assembly of the next system.
	sp.Reset()
	sp.Addto(0, 0, 2)
	sp.Addto(1, 1, 3)
	sp.Addto(2, 2, 4)
	sp.Addto(0, 1, 1)
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	if nnz := sp.Stats().NNZ; nnz != 4 {
		t.Fatalf("NNZ after growth = %d, want 4", nnz)
	}
	x := NewVector(n)
	if err := sp.SolveInto(x, Vector{2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	// 2x0 + x1 = 2, 3x1 = 3, 4x2 = 4 → x = [0.5, 1, 1].
	want := Vector{0.5, 1, 1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSparseSingularPivotError(t *testing.T) {
	sp := NewSparseSolver(3)
	sp.Addto(0, 0, 1)
	sp.Addto(1, 1, 1)
	// Row/column 2 entirely empty → structurally singular.
	err := sp.Factor()
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("Factor err = %v, want ErrSingular", err)
	}
	var pe *PivotError
	if !errors.As(err, &pe) {
		t.Fatalf("Factor err %T does not wrap PivotError", err)
	}
	if pe.Index != 2 {
		t.Fatalf("PivotError.Index = %d, want 2", pe.Index)
	}
	if err := sp.SolveInto(NewVector(3), NewVector(3)); err == nil {
		t.Fatal("SolveInto after failed Factor should error")
	}
}

func TestSparseTinyOrders(t *testing.T) {
	// 0×0: Factor and SolveInto are trivial no-ops.
	sp := NewSparseSolver(0)
	if err := sp.Factor(); err != nil {
		t.Fatalf("0x0 Factor: %v", err)
	}
	if err := sp.SolveInto(Vector{}, Vector{}); err != nil {
		t.Fatalf("0x0 SolveInto: %v", err)
	}
	// 1×1.
	sp1 := NewSparseSolver(1)
	sp1.Addto(0, 0, 4)
	if err := sp1.Factor(); err != nil {
		t.Fatal(err)
	}
	x := NewVector(1)
	if err := sp1.SolveInto(x, Vector{8}); err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 {
		t.Fatalf("x = %v, want [2]", x)
	}
	// Duplicate stamps at one position must merge.
	sp1.Reset()
	sp1.Addto(0, 0, 1)
	sp1.Addto(0, 0, 3)
	if err := sp1.Factor(); err != nil {
		t.Fatal(err)
	}
	if err := sp1.SolveInto(x, Vector{8}); err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 {
		t.Fatalf("after duplicate merge x = %v, want [2]", x)
	}
}

func TestSparseDimensionMismatch(t *testing.T) {
	sp := NewSparseSolver(2)
	sp.Addto(0, 0, 1)
	sp.Addto(1, 1, 1)
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	if err := sp.SolveInto(NewVector(3), NewVector(2)); !errors.Is(err, errDimension) {
		t.Fatalf("err = %v, want dimension mismatch", err)
	}
}

func TestSparseComplexMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 11
	for trial := 0; trial < 20; trial++ {
		a := NewCMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.3 {
					a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
				}
			}
			a.Addto(i, (i+1)%n, complex(2+rng.Float64(), rng.NormFloat64()))
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		ds := NewDenseComplexSolver(n)
		sp := NewSparseComplexSolver(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if v := a.At(i, j); v != 0 {
					ds.Addto(i, j, v)
					sp.Addto(i, j, v)
				}
			}
		}
		if err := ds.Factor(); err != nil {
			continue
		}
		if err := sp.Factor(); err != nil {
			t.Fatalf("trial %d: sparse Factor: %v", trial, err)
		}
		xd := make([]complex128, n)
		xs := make([]complex128, n)
		if err := ds.SolveInto(xd, b); err != nil {
			t.Fatal(err)
		}
		if err := sp.SolveInto(xs, b); err != nil {
			t.Fatal(err)
		}
		for i := range xd {
			scale := math.Max(math.Sqrt(sqmag(xd[i])), 1)
			if d := math.Sqrt(sqmag(xd[i]-xs[i])) / scale; d > 1e-9 {
				t.Fatalf("trial %d: complex dense/sparse disagree at %d: %v vs %v", trial, i, xd[i], xs[i])
			}
		}
	}
}

// TestDenseComplexSolverMatchesCSolve pins the split Factor/SolveInto
// dense complex path to the historical fused elimination bit-for-bit.
func TestDenseComplexSolverMatchesCSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 9
	for trial := 0; trial < 10; trial++ {
		a := NewCMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.5 {
					a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
				}
			}
			a.Addto(i, i, complex(1+rng.Float64(), 0))
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want, err := CSolve(a, b)
		if err != nil {
			continue
		}
		ds := NewDenseComplexSolver(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if v := a.At(i, j); v != 0 {
					ds.Addto(i, j, v)
				}
			}
		}
		if err := ds.Factor(); err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, n)
		if err := ds.SolveInto(got, b); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(real(want[i])) != math.Float64bits(real(got[i])) ||
				math.Float64bits(imag(want[i])) != math.Float64bits(imag(got[i])) {
				t.Fatalf("trial %d: split solver differs from CSolve at %d: %v vs %v", trial, i, want[i], got[i])
			}
		}
	}
}

func TestMinDegreeOrderProperties(t *testing.T) {
	// Arrow matrix: dense first row/column + diagonal. Natural order
	// fills completely; minimum degree must defer the hub (node 0) to
	// the end and keep the factorization fill-free.
	n := 16
	sp := NewSparseSolver(n)
	for i := 0; i < n; i++ {
		sp.Addto(i, i, 4)
		if i > 0 {
			sp.Addto(0, i, 1)
			sp.Addto(i, 0, 1)
		}
	}
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	st := sp.Stats()
	// Fill-free: factors hold exactly the lower+upper halves of the
	// arrow (NNZ + n accounts for the duplicated diagonal in L's
	// implicit units vs U's stored diagonal).
	if st.FillNNZ > st.NNZ+n {
		t.Fatalf("arrow matrix filled in: NNZ=%d FillNNZ=%d", st.NNZ, st.FillNNZ)
	}
	b := NewVector(n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	x := NewVector(n)
	if err := sp.SolveInto(x, b); err != nil {
		t.Fatal(err)
	}
	// Spot-check against the dense solve.
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 4)
		if i > 0 {
			a.Set(0, i, 1)
			a.Set(i, 0, 1)
		}
	}
	xd, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(x, xd); d > 1e-12 {
		t.Fatalf("arrow solve disagrees with dense: %g", d)
	}

	// Determinism: same input twice gives the identical permutation.
	m := newSPMatrix[float64](4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 0}, {1, 1}, {2, 2}, {3, 3}} {
		m.addto(e[0], e[1], 1)
	}
	m.compile()
	p1 := minDegreeOrder(m.n, m.colp, m.rowi)
	p2 := minDegreeOrder(m.n, m.colp, m.rowi)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("minDegreeOrder not deterministic: %v vs %v", p1, p2)
		}
	}
}

// TestSparseComplexWorkspace checks the symbolic/numeric split's sharing
// contract: numeric workspaces cloned from one factored solver must
// reproduce the parent's refactor-and-solve results bit-for-bit, for any
// distribution of points over workspaces, including concurrent use.
func TestSparseComplexWorkspace(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 13
	type entry struct{ i, j int }
	var pat []entry
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.3 || j == (i+1)%n || i == j {
				pat = append(pat, entry{i, j})
			}
		}
	}
	sp := NewSparseComplexSolver(n)
	stamp := func(scale float64) {
		sp.Reset()
		for _, e := range pat {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			if e.i == e.j || e.j == (e.i+1)%n {
				v += complex(3*scale, 0)
			}
			sp.Addto(e.i, e.j, v)
		}
	}
	stamp(1)
	base := sp.CaptureValues(nil)
	stamp(0.5)
	slope := sp.CaptureValues(nil)
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	ts := []float64{0, 0.25, 1, 3, 10, 100}
	// Reference: serial refactor-and-solve through the parent solver.
	ref := make([][]complex128, len(ts))
	for p, tv := range ts {
		if !sp.LoadValues(base, slope, tv) {
			t.Fatal("LoadValues rejected captured snapshot")
		}
		if err := sp.Factor(); err != nil {
			t.Fatalf("t=%g: %v", tv, err)
		}
		ref[p] = make([]complex128, n)
		if err := sp.SolveInto(ref[p], b); err != nil {
			t.Fatal(err)
		}
	}
	// Workspaces: same points fanned over three concurrent clones.
	if !sp.LoadValues(base, slope, ts[0]) {
		t.Fatal("LoadValues rejected captured snapshot")
	}
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	ws0, err := sp.NumericWorkspace()
	if err != nil {
		t.Fatal(err)
	}
	workers := []*SparseComplexWorkspace{ws0, ws0.Clone(), ws0.Clone()}
	got := make([][]complex128, len(ts))
	errs := make([]error, len(workers))
	done := make(chan int, len(workers))
	for w, ws := range workers {
		go func(w int, ws *SparseComplexWorkspace) {
			defer func() { done <- w }()
			for p := w; p < len(ts); p += len(workers) {
				if !ws.LoadValues(base, slope, ts[p]) {
					errs[w] = errors.New("workspace LoadValues rejected snapshot")
					return
				}
				if err := ws.Factor(); err != nil {
					errs[w] = err
					return
				}
				x := make([]complex128, n)
				if err := ws.SolveInto(x, b); err != nil {
					errs[w] = err
					return
				}
				got[p] = x
			}
		}(w, ws)
	}
	for range workers {
		<-done
	}
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for p := range ts {
		for i := range ref[p] {
			if math.Float64bits(real(ref[p][i])) != math.Float64bits(real(got[p][i])) ||
				math.Float64bits(imag(ref[p][i])) != math.Float64bits(imag(got[p][i])) {
				t.Fatalf("t=%g: workspace solve differs at %d: %v vs %v", ts[p], i, ref[p][i], got[p][i])
			}
		}
	}
	// Counters flow back through Absorb.
	before := sp.Stats()
	var fact, solv int64
	for _, ws := range workers {
		st := ws.Stats()
		fact += st.Factorizations
		solv += st.Solves
		sp.Absorb(st)
	}
	if fact != int64(len(ts)) || solv != int64(len(ts)) {
		t.Fatalf("workspace counters = %d/%d, want %d/%d", fact, solv, len(ts), len(ts))
	}
	after := sp.Stats()
	if after.Factorizations != before.Factorizations+fact || after.Solves != before.Solves+solv {
		t.Fatalf("Absorb did not fold counters: %+v -> %+v", before, after)
	}
}

// TestSparseComplexWorkspaceRepivot drives one workspace point into the
// repivot fallback and checks it solves correctly without corrupting the
// shared symbolic used by other points.
func TestSparseComplexWorkspaceRepivot(t *testing.T) {
	n := 2
	sp := NewSparseComplexSolver(n)
	sp.Addto(0, 0, 10)
	sp.Addto(0, 1, 1)
	sp.Addto(1, 0, 1)
	sp.Addto(1, 1, 10)
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	base := sp.CaptureValues(nil)
	ws, err := sp.NumericWorkspace()
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]complex128, len(base))
	// Degenerate values: diagonal collapses, forcing the private full
	// factorization fallback.
	degen := []complex128{1e-12, 1, 1, 1e-12}
	if len(base) != 4 {
		t.Fatalf("unexpected nnz %d", len(base))
	}
	if !ws.LoadValues(degen, zero, 0) {
		t.Fatal("LoadValues rejected")
	}
	if err := ws.Factor(); err != nil {
		t.Fatalf("repivot fallback failed: %v", err)
	}
	x := make([]complex128, n)
	if err := ws.SolveInto(x, []complex128{1, 2}); err != nil {
		t.Fatal(err)
	}
	if sqmag(x[0]-2) > 1e-18 || sqmag(x[1]-1) > 1e-18 {
		t.Fatalf("x = %v, want ~[2 1]", x)
	}
	if ws.Stats().Symbolic != 1 {
		t.Fatalf("expected private symbolic fallback, got %+v", ws.Stats())
	}
	// The same workspace returns to the shared fast path on good values.
	if !ws.LoadValues(base, zero, 0) {
		t.Fatal("LoadValues rejected")
	}
	if err := ws.Factor(); err != nil {
		t.Fatal(err)
	}
	if err := ws.SolveInto(x, []complex128{11, 11}); err != nil {
		t.Fatal(err)
	}
	if sqmag(x[0]-1) > 1e-18 || sqmag(x[1]-1) > 1e-18 {
		t.Fatalf("x = %v, want ~[1 1]", x)
	}
	if ws.Stats().Symbolic != 1 {
		t.Fatalf("good values should not refactor symbolically: %+v", ws.Stats())
	}
}
