package linalg

import (
	"errors"
	"math/cmplx"
)

// CMatrix is a dense, row-major matrix of complex128 values. The AC
// analysis of the circuit simulator solves (G + jωC)·x = b systems with it.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zero complex matrix with the given shape.
func NewCMatrix(rows, cols int) *CMatrix {
	return &CMatrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns the element at row i, column j.
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Addto adds v to the element at row i, column j.
func (m *CMatrix) Addto(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Row returns row i aliasing the matrix storage.
func (m *CMatrix) Row(i int) []complex128 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns an independent copy of m.
func (m *CMatrix) Clone() *CMatrix {
	c := NewCMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears every entry of m.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CSolve solves a x = b in place of a copy of a using partially pivoted
// Gaussian elimination and returns x. a and b are not modified.
func CSolve(a *CMatrix, b []complex128) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: CSolve requires a square matrix")
	}
	n := a.Rows
	if len(b) != n {
		return nil, errors.New("linalg: CSolve dimension mismatch")
	}
	lu := a.Clone()
	x := make([]complex128, n)
	copy(x, b)
	for k := 0; k < n; k++ {
		p, maxv := k, cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(lu.At(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			x[k], x[p] = x[p], x[k]
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
			x[i] -= m * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		row := lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}
