package linalg

import (
	"errors"
	"math"
)

// CMatrix is a dense, row-major matrix of complex128 values. The AC
// analysis of the circuit simulator solves (G + jωC)·x = b systems with it.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zero complex matrix with the given shape.
func NewCMatrix(rows, cols int) *CMatrix {
	return &CMatrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns the element at row i, column j.
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Addto adds v to the element at row i, column j.
func (m *CMatrix) Addto(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Row returns row i aliasing the matrix storage.
func (m *CMatrix) Row(i int) []complex128 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns an independent copy of m.
func (m *CMatrix) Clone() *CMatrix {
	c := NewCMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears every entry of m.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CSolver is reusable workspace for solving complex dense systems of a
// fixed order. The AC sweep solves one (G + jωC)·x = b system per
// frequency point; reusing the elimination scratch and solution storage
// across points removes the dominant allocation on that path. The
// elimination is the same code CSolve runs, so a reused workspace yields
// bit-identical solutions.
type CSolver struct {
	lu *CMatrix
	x  []complex128
}

// NewCSolver returns workspace for order-n systems.
func NewCSolver(n int) *CSolver {
	return &CSolver{lu: NewCMatrix(n, n), x: make([]complex128, n)}
}

// SolveInto solves a x = b and returns x aliasing the workspace: the
// slice is valid until the next SolveInto call. a and b are not modified.
func (cs *CSolver) SolveInto(a *CMatrix, b []complex128) ([]complex128, error) {
	n := cs.lu.Rows
	if a.Rows != n || a.Cols != n {
		return nil, errors.New("linalg: CSolver dimension mismatch")
	}
	if len(b) != n {
		return nil, errors.New("linalg: CSolver dimension mismatch")
	}
	copy(cs.lu.Data, a.Data)
	copy(cs.x, b)
	return csolve(cs.lu, cs.x)
}

// CSolve solves a x = b in place of a copy of a using partially pivoted
// Gaussian elimination and returns x. a and b are not modified. For
// repeated solves of same-order systems, use a CSolver.
func CSolve(a *CMatrix, b []complex128) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: CSolve requires a square matrix")
	}
	n := a.Rows
	if len(b) != n {
		return nil, errors.New("linalg: CSolve dimension mismatch")
	}
	lu := a.Clone()
	x := make([]complex128, n)
	copy(x, b)
	return csolve(lu, x)
}

// csolve eliminates lu in place with partial pivoting and overwrites x
// (initially the right-hand side) with the solution, which it returns.
func csolve(lu *CMatrix, x []complex128) ([]complex128, error) {
	n := lu.Rows
	data := lu.Data
	for k := 0; k < n; k++ {
		// Pivot on the squared magnitude: strictly monotone in |·|, so
		// the same row wins as with cmplx.Abs, without a sqrt per
		// candidate. (Entries below ~1e-154 square to zero; columns that
		// small are singular to working precision anyway.)
		p, maxv := k, sqmag(data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := sqmag(data[i*n+k]); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return nil, &PivotError{Index: k, Err: ErrSingular}
		}
		if p != k {
			rk, rp := data[k*n:(k+1)*n], data[p*n:(p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			x[k], x[p] = x[p], x[k]
		}
		pivot := data[k*n+k]
		pd := newPivotDiv(pivot)
		for i := k + 1; i < n; i++ {
			// MNA columns are sparse: checking the entry before dividing
			// skips the (expensive) complex division for the common
			// structurally-zero case, with the same outcome.
			e := data[i*n+k]
			if e == 0 {
				continue
			}
			m := pd.div(e, pivot)
			if m == 0 {
				continue
			}
			ri, rk := data[i*n:(i+1)*n], data[k*n:(k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
			x[i] -= m * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		row := data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// sqmag returns |c|² without the square root of cmplx.Abs.
func sqmag(c complex128) float64 {
	re, im := real(c), imag(c)
	return re*re + im*im
}

// pivotDiv divides many numerators by one fixed complex divisor. It
// hoists the ratio/denominator of Smith's robust-division algorithm
// (Algorithm 116, CACM 1962) — the same algorithm the Go runtime uses
// for complex128 division — out of the per-element call, producing
// bit-identical quotients for finite inputs. The rare all-NaN outcome
// falls back to the native division so special-value semantics match
// the runtime exactly.
type pivotDiv struct {
	ratio, denom float64
	swapped      bool // |imag(pivot)| > |real(pivot)|
}

func newPivotDiv(pivot complex128) pivotDiv {
	re, im := real(pivot), imag(pivot)
	if math.Abs(re) >= math.Abs(im) {
		r := im / re
		return pivotDiv{ratio: r, denom: re + r*im}
	}
	r := re / im
	return pivotDiv{ratio: r, denom: im + r*re, swapped: true}
}

func (d pivotDiv) div(n, pivot complex128) complex128 {
	var e, f float64
	if !d.swapped {
		e = (real(n) + imag(n)*d.ratio) / d.denom
		f = (imag(n) - real(n)*d.ratio) / d.denom
	} else {
		e = (real(n)*d.ratio + imag(n)) / d.denom
		f = (imag(n)*d.ratio - real(n)) / d.denom
	}
	if math.IsNaN(e) && math.IsNaN(f) {
		return n / pivot
	}
	return complex(e, f)
}
