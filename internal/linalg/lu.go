package linalg

import (
	"errors"
	"math"
)

// ErrSingular reports that a factorization encountered a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds an in-place LU factorization with partial pivoting, PA = LU.
// It is reusable: Solve may be called repeatedly with different right-hand
// sides, which is how the circuit simulator amortizes Newton iterations.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int // +1 or -1, parity of the permutation
}

// NewLU factors a copy of a with partial pivoting. The input is not
// modified. It returns ErrSingular when a pivot underflows.
func NewLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: LU requires a square matrix")
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Pivot: largest magnitude in column k at or below the diagonal.
		p, maxv := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 || math.IsNaN(maxv) {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b and returns x. b is not modified.
func (f *LU) Solve(b Vector) Vector {
	n := f.lu.Rows
	if len(b) != n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	x := NewVector(n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with the unit-lower-triangular factor.
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with the upper-triangular factor.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve factors a and solves a single system a x = b. For repeated solves
// against the same matrix, use NewLU once and call LU.Solve.
func Solve(a *Matrix, b Vector) (Vector, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns the inverse of a, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := NewVector(n)
	for j := 0; j < n; j++ {
		e.Zero()
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
