package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports that a factorization encountered a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// errDimension reports a shape mismatch between a solver and its inputs.
var errDimension = errors.New("linalg: dimension mismatch")

// PivotError wraps ErrSingular with the position of the vanished pivot,
// so callers that know the meaning of the matrix variables (e.g. the
// circuit layer's MNA node map) can name the offending unknown instead
// of reporting a bare "singular matrix".
type PivotError struct {
	// Index is the row/column, in the matrix's original numbering, whose
	// pivot underflowed during elimination.
	Index int
	// Err is the underlying sentinel, normally ErrSingular.
	Err error
}

// Error implements error.
func (e *PivotError) Error() string {
	return fmt.Sprintf("%v (zero pivot at index %d)", e.Err, e.Index)
}

// Unwrap makes errors.Is(err, ErrSingular) hold for wrapped pivots.
func (e *PivotError) Unwrap() error { return e.Err }

// LU holds an in-place LU factorization with partial pivoting, PA = LU.
// It is reusable in two ways: Solve may be called repeatedly with
// different right-hand sides, and Factor may be called repeatedly with
// different matrices of the same order — which is how the circuit
// simulator amortizes Newton iterations without reallocating.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int // +1 or -1, parity of the permutation
}

// NewLUWorkspace returns an LU with storage for order-n systems but no
// factorization yet; call Factor before Solve.
func NewLUWorkspace(n int) *LU {
	return &LU{lu: NewMatrix(n, n), piv: make([]int, n)}
}

// NewLU factors a copy of a with partial pivoting. The input is not
// modified. It returns ErrSingular when a pivot underflows.
func NewLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: LU requires a square matrix")
	}
	f := NewLUWorkspace(a.Rows)
	if err := f.Factor(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Factor copies a into the workspace and factors it in place, replacing
// any previous factorization. a must match the workspace order and is
// not modified. The elimination is identical to NewLU's, so refactoring
// through a reused workspace yields bit-identical factors.
func (f *LU) Factor(a *Matrix) error {
	n := f.lu.Rows
	if a.Rows != n || a.Cols != n {
		return errors.New("linalg: LU.Factor dimension mismatch")
	}
	copy(f.lu.Data, a.Data)
	f.sign = 1
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Pivot: largest magnitude in column k at or below the diagonal.
		p, maxv := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 || math.IsNaN(maxv) {
			return &PivotError{Index: k, Err: ErrSingular}
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return nil
}

// Solve solves A x = b and returns x. b is not modified.
func (f *LU) Solve(b Vector) Vector {
	x := NewVector(f.lu.Rows)
	f.SolveInto(x, b)
	return x
}

// SolveInto solves A x = b into x without allocating. x and b must not
// alias.
func (f *LU) SolveInto(x, b Vector) {
	n := f.lu.Rows
	if len(b) != n || len(x) != n {
		panic("linalg: LU.SolveInto dimension mismatch")
	}
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with the unit-lower-triangular factor.
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with the upper-triangular factor.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve factors a and solves a single system a x = b. For repeated solves
// against the same matrix, use NewLU once and call LU.Solve.
func Solve(a *Matrix, b Vector) (Vector, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns the inverse of a, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := NewVector(n)
	for j := 0; j < n; j++ {
		e.Zero()
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
