package linalg

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite reports that Cholesky factorization failed.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with L Lᵀ = a for a
// symmetric positive-definite matrix. Only the lower triangle of a is read.
// This is the G(d) factor of the paper's Eq. (11): statistical samples in
// the normalized space ŝ ~ N(0,I) map to physical deltas via s = L·ŝ + s0.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// SolveLowerTriangular solves L x = b for lower-triangular L.
func SolveLowerTriangular(l *Matrix, b Vector) Vector {
	n := l.Rows
	x := NewVector(n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveUpperTriangular solves U x = b for upper-triangular U.
func SolveUpperTriangular(u *Matrix, b Vector) Vector {
	n := u.Rows
	x := NewVector(n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := u.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveSPD solves a x = b for symmetric positive-definite a via Cholesky.
func SolveSPD(a *Matrix, b Vector) (Vector, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	y := SolveLowerTriangular(l, b)
	return SolveUpperTriangular(l.T(), y), nil
}
