package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func randomMatrix(r *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func randomSPD(r *rand.Rand, n int) *Matrix {
	a := randomMatrix(r, n)
	spd := a.Mul(a.T())
	for i := 0; i < n; i++ {
		spd.Addto(i, i, float64(n)) // ensure well-conditioned
	}
	return spd
}

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, -5, 6}
	if got := v.Dot(w); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Norm2(); !almostEqual(got, math.Sqrt(14), tol) {
		t.Errorf("Norm2 = %v", got)
	}
	if got := w.NormInf(); got != 6 {
		t.Errorf("NormInf = %v", got)
	}
	s := v.Clone()
	s.AddScaled(2, w)
	want := Vector{9, -8, 15}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("AddScaled[%d] = %v want %v", i, s[i], want[i])
		}
	}
	if d := v.Sub(w); d[0] != -3 || d[1] != 7 || d[2] != -3 {
		t.Errorf("Sub = %v", d)
	}
	if a := v.Add(w); a[0] != 5 || a[1] != -3 || a[2] != 9 {
		t.Errorf("Add = %v", a)
	}
}

func TestVectorNorm2Overflow(t *testing.T) {
	v := Vector{1e200, 1e200}
	if got := v.Norm2(); math.IsInf(got, 0) || !almostEqual(got, 1e200*math.Sqrt2, 1e-12) {
		t.Errorf("Norm2 overflowed: %v", got)
	}
}

func TestVectorDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestMatrixMulIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randomMatrix(r, 5)
	got := a.Mul(Identity(5))
	for i := range a.Data {
		if !almostEqual(got.Data[i], a.Data[i], tol) {
			t.Fatalf("A*I != A at %d", i)
		}
	}
}

func TestMatrixTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("shape %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if at.At(j, i) != a.At(i, j) {
				t.Errorf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := Vector{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], tol) {
			t.Errorf("x[%d] = %v want %v", i, x[i], want[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := NewLU(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestLUDeterminant(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); !almostEqual(d, -6, tol) {
		t.Errorf("Det = %v want -6", d)
	}
}

func TestInverse(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randomSPD(r, 6)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(prod.At(i, j), want, 1e-8) {
				t.Fatalf("A*inv(A) at %d,%d = %v", i, j, prod.At(i, j))
			}
		}
	}
}

// Property: for random well-conditioned systems, LU solve satisfies A x = b.
func TestLUSolveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(10)
		a := randomSPD(rr, n)
		b := NewVector(n)
		for i := range b {
			b[i] = rr.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		res := a.MulVec(x).Sub(b)
		return res.NormInf() < 1e-8*(1+b.NormInf())
	}
	cfg := &quick.Config{MaxCount: 50, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Cholesky factor reproduces the matrix, L Lᵀ = A.
func TestCholeskyProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(12)
		a := randomSPD(rr, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		// Verify lower-triangular structure.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					return false
				}
			}
		}
		llt := l.Mul(l.T())
		for i := range a.Data {
			if !almostEqual(llt.Data[i], a.Data[i], 1e-8) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
}

func TestSolveSPD(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randomSPD(r, 8)
	b := NewVector(8)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := a.MulVec(x).Sub(b)
	if res.NormInf() > 1e-8 {
		t.Errorf("residual %v", res.NormInf())
	}
}

func TestTriangularSolves(t *testing.T) {
	l := FromRows([][]float64{{2, 0}, {1, 3}})
	x := SolveLowerTriangular(l, Vector{4, 7})
	if !almostEqual(x[0], 2, tol) || !almostEqual(x[1], 5.0/3.0, tol) {
		t.Errorf("lower solve = %v", x)
	}
	u := FromRows([][]float64{{2, 1}, {0, 3}})
	y := SolveUpperTriangular(u, Vector{5, 6})
	if !almostEqual(y[1], 2, tol) || !almostEqual(y[0], 1.5, tol) {
		t.Errorf("upper solve = %v", y)
	}
}

func TestQRLeastSquaresExact(t *testing.T) {
	// Square, well-posed system: least squares must reproduce the solution.
	a := FromRows([][]float64{{3, 1}, {1, 2}})
	b := Vector{9, 8}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-8) || !almostEqual(x[1], 3, 1e-8) {
		t.Errorf("x = %v", x)
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 1 + 2t on noisy-free samples: exact recovery expected.
	ts := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(ts), 2)
	b := NewVector(len(ts))
	for i, tv := range ts {
		a.Set(i, 0, 1)
		a.Set(i, 1, tv)
		b[i] = 1 + 2*tv
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-8) || !almostEqual(x[1], 2, 1e-8) {
		t.Errorf("fit = %v", x)
	}
}

// Property: least-squares residual is orthogonal to the column space.
func TestQRNormalEquationsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		m := 4 + rr.Intn(8)
		n := 1 + rr.Intn(3)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rr.NormFloat64()
		}
		b := NewVector(m)
		for i := range b {
			b[i] = rr.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient random draw; skip
		}
		res := a.MulVec(x).Sub(b)
		// Aᵀ r must vanish.
		atr := a.T().MulVec(res)
		return atr.NormInf() < 1e-7*(1+b.NormInf())
	}
	cfg := &quick.Config{MaxCount: 50, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCSolveKnown(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, complex(1, 1))
	a.Set(0, 1, complex(2, 0))
	a.Set(1, 0, complex(0, -1))
	a.Set(1, 1, complex(1, 0))
	want := []complex128{complex(1, -1), complex(0, 2)}
	b := []complex128{
		a.At(0, 0)*want[0] + a.At(0, 1)*want[1],
		a.At(1, 0)*want[0] + a.At(1, 1)*want[1],
	}
	x, err := CSolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := x[i] - want[i]; math.Hypot(real(d), imag(d)) > 1e-10 {
			t.Errorf("x[%d] = %v want %v", i, x[i], want[i])
		}
	}
}

func TestCSolveSingular(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := CSolve(a, []complex128{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

// Property: complex solve satisfies the residual equation.
func TestCSolveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(8)
		a := NewCMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = complex(rr.NormFloat64(), rr.NormFloat64())
		}
		for i := 0; i < n; i++ {
			a.Addto(i, i, complex(float64(n), 0)) // diagonal dominance
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rr.NormFloat64(), rr.NormFloat64())
		}
		x, err := CSolve(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			s := complex128(0)
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			d := s - b[i]
			if math.Hypot(real(d), imag(d)) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromRows([][]float64{{1, 4}, {2, 3}})
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Errorf("Symmetrize = %v", a)
	}
}

func TestMatrixMulVecShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 3).MulVec(Vector{1, 2})
}

func TestMaxAbs(t *testing.T) {
	a := FromRows([][]float64{{-7, 2}, {3, 5}})
	if got := a.MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %v", got)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := NewLU(NewMatrix(2, 3)); err == nil {
		t.Error("non-square LU accepted")
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("non-square Cholesky accepted")
	}
}

func TestQRUnderdetermined(t *testing.T) {
	if _, err := NewQR(NewMatrix(2, 3)); err == nil {
		t.Error("rows < cols QR accepted")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityAndString(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
	if s := id.String(); len(s) == 0 {
		t.Error("empty String()")
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(a); err == nil {
		t.Error("singular inverse accepted")
	}
}

func TestCSolveNonSquareAndMismatch(t *testing.T) {
	if _, err := CSolve(NewCMatrix(2, 3), make([]complex128, 2)); err == nil {
		t.Error("non-square CSolve accepted")
	}
	if _, err := CSolve(NewCMatrix(2, 2), make([]complex128, 3)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestVectorZeroAndScale(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Scale(2)
	if v[2] != 6 {
		t.Error("Scale failed")
	}
	v.Zero()
	if v[0] != 0 || v[1] != 0 || v[2] != 0 {
		t.Error("Zero failed")
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random matrices.
func TestTransposeProductProperty(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		m, k, n := 1+rr.Intn(5), 1+rr.Intn(5), 1+rr.Intn(5)
		a := NewMatrix(m, k)
		b := NewMatrix(k, n)
		for i := range a.Data {
			a.Data[i] = rr.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rr.NormFloat64()
		}
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		for i := range lhs.Data {
			if !almostEqual(lhs.Data[i], rhs.Data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: r}); err != nil {
		t.Error(err)
	}
}
