package linalg

import (
	"errors"
	"math"
)

// QR holds a Householder QR factorization of an m-by-n matrix with m >= n,
// used for least-squares fits of linearized performance models.
type QR struct {
	qr   *Matrix   // Householder vectors below the diagonal, R on/above it
	rdia []float64 // diagonal of R
}

// NewQR factors a copy of a (m >= n required).
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, errors.New("linalg: QR requires rows >= cols")
	}
	f := &QR{qr: a.Clone(), rdia: make([]float64, n)}
	qr := f.qr
	for k := 0; k < n; k++ {
		// Norm of the k-th column below the diagonal.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			return nil, ErrSingular
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Addto(k, k, 1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Addto(i, j, s*qr.At(i, k))
			}
		}
		f.rdia[k] = -nrm
	}
	return f, nil
}

// SolveLeastSquares returns the x minimizing ‖a x − b‖₂ using the stored
// factorization. b is not modified.
func (f *QR) SolveLeastSquares(b Vector) Vector {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		panic("linalg: QR.SolveLeastSquares dimension mismatch")
	}
	y := b.Clone()
	// Apply Householder reflectors: y = Qᵀ b.
	for k := 0; k < n; k++ {
		s := 0.0
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R x = y[:n].
	x := NewVector(n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdia[i]
	}
	return x
}

// LeastSquares is a convenience wrapper factoring a and solving one system.
func LeastSquares(a *Matrix, b Vector) (Vector, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return f.SolveLeastSquares(b), nil
}
