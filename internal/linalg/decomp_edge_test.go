package linalg

import (
	"errors"
	"math"
	"testing"
)

// Edge-case coverage for the QR and Cholesky decompositions: degenerate
// shapes, rank deficiency and non-SPD inputs.

func TestQRRankDeficient(t *testing.T) {
	// Column 1 lies in the span of column 0, with entries chosen so the
	// reflected column is exactly zero below the diagonal (no rounding
	// residue masking the rank deficiency).
	a := FromRows([][]float64{
		{1, 1},
		{0, 0},
		{0, 0},
	})
	if _, err := NewQR(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("rank-deficient QR: err = %v, want ErrSingular", err)
	}
	// A literal zero column fails on the very first reflector.
	z := FromRows([][]float64{
		{0, 1},
		{0, 2},
		{0, 3},
	})
	if _, err := NewQR(z); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero-column QR: err = %v, want ErrSingular", err)
	}
}

func TestQRWideRejected(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if _, err := NewQR(a); err == nil {
		t.Fatal("QR of a wide (m < n) matrix should error")
	}
}

func TestQRTinyShapes(t *testing.T) {
	// 1×1: exact solve.
	a := FromRows([][]float64{{3}})
	x, err := LeastSquares(a, Vector{6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-15 {
		t.Fatalf("1x1 least squares: x = %v, want [2]", x)
	}
	// 0-column: empty solution, no factorization failure.
	e := NewMatrix(2, 0)
	xe, err := LeastSquares(e, Vector{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(xe) != 0 {
		t.Fatalf("0-column least squares: x = %v, want empty", xe)
	}
	// Square full-rank: least squares must reproduce the exact solution.
	s := FromRows([][]float64{{2, 1}, {1, 3}})
	xs, err := LeastSquares(s, Vector{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(xs[0]-1) > 1e-12 || math.Abs(xs[1]-3) > 1e-12 {
		t.Fatalf("square least squares: x = %v, want [1 3]", xs)
	}
}

func TestQRNegativeLeadingDiagonal(t *testing.T) {
	// First pivot negative exercises the sign-flip branch of the
	// Householder norm.
	a := FromRows([][]float64{
		{-2, 1},
		{1, 1},
		{0, 1},
	})
	b := Vector{1, 2, 3}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the normal equations AᵀA x = Aᵀ b hold.
	at := a.T()
	lhs := at.Mul(a).MulVec(x)
	rhs := at.MulVec(b)
	for i := range lhs {
		if math.Abs(lhs[i]-rhs[i]) > 1e-12 {
			t.Fatalf("normal equations violated: %v vs %v", lhs, rhs)
		}
	}
}

func TestCholeskyEdgeCases(t *testing.T) {
	// 0×0 succeeds trivially.
	if _, err := Cholesky(NewMatrix(0, 0)); err != nil {
		t.Fatalf("0x0 Cholesky: %v", err)
	}
	// 1×1 positive.
	l, err := Cholesky(FromRows([][]float64{{9}}))
	if err != nil {
		t.Fatal(err)
	}
	if l.At(0, 0) != 3 {
		t.Fatalf("1x1 Cholesky: L = %v, want [[3]]", l)
	}
	// 1×1 zero and negative are not positive definite.
	if _, err := Cholesky(FromRows([][]float64{{0}})); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("zero 1x1: err = %v", err)
	}
	if _, err := Cholesky(FromRows([][]float64{{-1}})); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("negative 1x1: err = %v", err)
	}
	// Positive semi-definite (rank 1) fails on the second pivot.
	if _, err := Cholesky(FromRows([][]float64{{1, 1}, {1, 1}})); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("semi-definite: err = %v", err)
	}
	// Indefinite.
	if _, err := Cholesky(FromRows([][]float64{{1, 2}, {2, 1}})); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("indefinite: err = %v", err)
	}
	// NaN contamination must not silently produce a factor.
	if _, err := Cholesky(FromRows([][]float64{{math.NaN(), 0}, {0, 1}})); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("NaN diagonal: err = %v", err)
	}
	// Non-square is rejected.
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square Cholesky should error")
	}
}

func TestSolveSPDNotPositiveDefinite(t *testing.T) {
	a := FromRows([][]float64{{0, 0}, {0, 0}})
	if _, err := SolveSPD(a, Vector{1, 1}); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestTriangularSolves1x1(t *testing.T) {
	l := FromRows([][]float64{{2}})
	if x := SolveLowerTriangular(l, Vector{4}); x[0] != 2 {
		t.Fatalf("lower 1x1: %v", x)
	}
	if x := SolveUpperTriangular(l, Vector{4}); x[0] != 2 {
		t.Fatalf("upper 1x1: %v", x)
	}
}
