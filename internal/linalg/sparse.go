package linalg

import (
	"errors"
	"math"
	"math/bits"
	"sync"
)

// This file implements the sparse linear-solver backend: triplet (COO)
// assembly compiled once into compressed-sparse-column form, a
// fill-reducing minimum-degree ordering, and a left-looking
// Gilbert–Peierls LU with partial pivoting split into a symbolic
// factorization (pattern + pivot order, computed once per topology) and
// a numeric refactorization that replays the stored elimination on new
// values. MNA matrices are ~80% structural zeros and every Newton
// iteration, AC frequency point and transient step re-solves the same
// structure, so the amortized cost per solve is O(flops on nonzeros)
// instead of O(n³).
//
// The split is physical, not just conceptual: spSymbolic is immutable
// once built (pattern, orderings, recorded elimination and scatter map)
// and spNumeric holds everything a refactorization mutates (factor
// values, division constants, workspaces). Any number of spNumeric
// workspaces can replay the same spSymbolic concurrently, which is what
// SparseComplexWorkspace exposes for the parallel AC sweep.
//
// The real and complex backends share one generic core; complex pivot
// magnitudes use |·|² (monotone in |·|, no square root), matching the
// dense complex elimination.

// scalar is the element domain shared by the real and complex sparse
// backends.
type scalar interface {
	float64 | complex128
}

// absq returns |v|² for either element type.
func absq[T scalar](v T) float64 {
	switch x := any(v).(type) {
	case float64:
		return x * x
	case complex128:
		return real(x)*real(x) + imag(x)*imag(x)
	}
	return 0
}

// errRepivot is an internal signal from refactor: the stored pivot order
// has become numerically inadequate for the new values and the caller
// must redo the full (symbolic) factorization.
var errRepivot = errors.New("linalg: sparse refactorization needs new pivots")

// refactorGuard2 is the squared pivot-degeneracy threshold: a
// refactorization pivot whose squared magnitude falls below
// refactorGuard2 times the squared column maximum triggers errRepivot.
// (1e-6 == (1e-3)², i.e. the classic 0.001 threshold-pivoting bound.)
const refactorGuard2 = 1e-6

// spMatrix is the assembly buffer: triplets while the structure is being
// discovered, compressed sparse columns (rows sorted, duplicates merged)
// afterwards. Stamping an entry outside the compiled structure drops the
// matrix back to triplet form so the next Factor recompiles — analyses
// with different footprints (DC vs transient companion stamps) can share
// one buffer.
type spMatrix[T scalar] struct {
	n        int
	compiled bool
	ti, tj   []int32 // triplet rows/cols (assembly mode)
	tv       []T     // triplet values
	colp     []int32 // CSC column pointers, len n+1 (compiled)
	rowi     []int32 // CSC row indices, sorted within each column
	vals     []T     // CSC values
}

func newSPMatrix[T scalar](n int) *spMatrix[T] {
	return &spMatrix[T]{n: n}
}

// tripletCap is the initial capacity of the triplet assembly arrays:
// large enough that a typical MNA stamp stream (a few hundred entries)
// skips the append growth ladder, small enough to be irrelevant per
// solver instance.
const tripletCap = 256

// addto accumulates entry (i, j) += v in either mode.
func (m *spMatrix[T]) addto(i, j int, v T) {
	if !m.compiled {
		if m.ti == nil {
			m.ti = make([]int32, 0, tripletCap)
			m.tj = make([]int32, 0, tripletCap)
			m.tv = make([]T, 0, tripletCap)
		}
		m.ti = append(m.ti, int32(i))
		m.tj = append(m.tj, int32(j))
		m.tv = append(m.tv, v)
		return
	}
	// Columns are short (a handful of device terminals); a linear scan
	// beats binary search at these lengths.
	r := int32(i)
	for t := m.colp[j]; t < m.colp[j+1]; t++ {
		if m.rowi[t] == r {
			m.vals[t] += v
			return
		}
	}
	m.grow(i, j, v)
}

// zero clears the assembled values, keeping the compiled structure.
func (m *spMatrix[T]) zero() {
	if !m.compiled {
		m.ti, m.tj, m.tv = m.ti[:0], m.tj[:0], m.tv[:0]
		return
	}
	var z T
	for i := range m.vals {
		m.vals[i] = z
	}
}

// grow reopens the structure for an entry outside the compiled pattern:
// the current values decompile back to triplets (preserving the partial
// assembly in flight) and the new entry is appended.
func (m *spMatrix[T]) grow(i, j int, v T) {
	ti := make([]int32, 0, len(m.rowi)+8)
	tj := make([]int32, 0, len(m.rowi)+8)
	tv := make([]T, 0, len(m.rowi)+8)
	for col := 0; col < m.n; col++ {
		for t := m.colp[col]; t < m.colp[col+1]; t++ {
			ti = append(ti, m.rowi[t])
			tj = append(tj, int32(col))
			tv = append(tv, m.vals[t])
		}
	}
	m.ti = append(ti, int32(i))
	m.tj = append(tj, int32(j))
	m.tv = append(tv, v)
	m.colp, m.rowi, m.vals = nil, nil, nil
	m.compiled = false
}

// compile converts the triplets to CSC with sorted rows and merged
// duplicates, then drops the triplet storage.
func (m *spMatrix[T]) compile() {
	n := m.n
	colp := make([]int32, n+1)
	for _, j := range m.tj {
		colp[j+1]++
	}
	for j := 0; j < n; j++ {
		colp[j+1] += colp[j]
	}
	ri := make([]int32, len(m.ti))
	vv := make([]T, len(m.ti))
	next := append([]int32(nil), colp[:n]...)
	for t := range m.ti {
		j := m.tj[t]
		p := next[j]
		next[j]++
		ri[p] = m.ti[t]
		vv[p] = m.tv[t]
	}
	// Sort each column by row (insertion sort: columns are short), then
	// merge duplicates, compacting in place.
	out := int32(0)
	final := make([]int32, n+1)
	for j := 0; j < n; j++ {
		lo, hi := colp[j], colp[j+1]
		for a := lo + 1; a < hi; a++ {
			r, v := ri[a], vv[a]
			b := a
			for b > lo && ri[b-1] > r {
				ri[b], vv[b] = ri[b-1], vv[b-1]
				b--
			}
			ri[b], vv[b] = r, v
		}
		for a := lo; a < hi; {
			r := ri[a]
			var s T
			for a < hi && ri[a] == r {
				s += vv[a]
				a++
			}
			ri[out], vv[out] = r, s
			out++
		}
		final[j+1] = out
	}
	m.colp, m.rowi, m.vals = final, ri[:out], vv[:out]
	m.ti, m.tj, m.tv = nil, nil, nil
	m.compiled = true
}

// minDegreeOrder computes a fill-reducing elimination order for the
// pattern of A+Aᵀ with a plain minimum-degree heuristic over a bitset
// adjacency (no quotient graph — MNA systems here are tens of unknowns,
// so the simple O(n²·n/64) elimination is cheaper than bookkeeping).
// Ties break on the smallest index, keeping the order deterministic.
func minDegreeOrder(n int, colp, rowi []int32) []int32 {
	perm := make([]int32, 0, n)
	if n == 0 {
		return perm
	}
	words := (n + 63) / 64
	adj := make([]uint64, n*words)
	set := func(i, j int) {
		if i != j {
			adj[i*words+j/64] |= 1 << uint(j%64)
		}
	}
	for j := 0; j < n; j++ {
		for t := colp[j]; t < colp[j+1]; t++ {
			i := int(rowi[t])
			set(i, j)
			set(j, i)
		}
	}
	alive := make([]uint64, words)
	for i := 0; i < n; i++ {
		alive[i/64] |= 1 << uint(i%64)
	}
	isAlive := func(i int) bool { return alive[i/64]&(1<<uint(i%64)) != 0 }
	deg := make([]int, n)
	recompute := func(i int) {
		row := adj[i*words : (i+1)*words]
		d := 0
		for w := 0; w < words; w++ {
			d += bits.OnesCount64(row[w] & alive[w])
		}
		deg[i] = d
	}
	for i := 0; i < n; i++ {
		recompute(i)
	}
	for len(perm) < n {
		best, bestd := -1, n+1
		for i := 0; i < n; i++ {
			if isAlive(i) && deg[i] < bestd {
				best, bestd = i, deg[i]
			}
		}
		p := best
		perm = append(perm, int32(p))
		alive[p/64] &^= 1 << uint(p%64)
		// Eliminating p connects its remaining neighbors into a clique.
		prow := adj[p*words : (p+1)*words]
		for i := 0; i < n; i++ {
			if !isAlive(i) || prow[i/64]&(1<<uint(i%64)) == 0 {
				continue
			}
			irow := adj[i*words : (i+1)*words]
			for w := 0; w < words; w++ {
				irow[w] |= prow[w]
			}
			irow[i/64] &^= 1 << uint(i%64)
		}
		for i := 0; i < n; i++ {
			if isAlive(i) && prow[i/64]&(1<<uint(i%64)) != 0 {
				recompute(i)
			}
		}
	}
	return perm
}

// spSymbolic is the immutable product of a symbolic factorization: the
// column order q, the row permutation pinv, the L and U patterns (U's
// entries recorded in the topological order the elimination emitted
// them, diagonal last — exactly the replay order a numeric
// refactorization needs; L's diagonal is an implicit 1, its row indices
// remapped to pivotal positions), and scat, the precomputed scatter map
// from CSC value positions to pivotal rows (scat[t] = pinv[rowi[t]]).
// Nothing in here is written after factor returns, so any number of
// spNumeric workspaces may share one spSymbolic across goroutines.
type spSymbolic struct {
	n    int
	q    []int32 // column order: column q[k] is eliminated k-th
	pinv []int32 // pinv[origRow] = pivotal position

	lp, li []int32
	up, ui []int32

	scat []int32 // scat[t] = pinv[rowi[t]], aligned with the CSC values
}

// SymbolicCache shares immutable symbolic factorizations across solver
// instances. The optimization hot path builds a fresh circuit — and
// fresh sparse solvers — for every evaluation, yet every evaluation of a
// problem factors the same two matrix patterns (the DC Jacobian and the
// AC system); with a cache attached, each new solver adopts the stored
// pattern analysis, fill-reducing order and recorded elimination and
// goes straight to the numeric replay, skipping the ordering and
// DFS-driven full factorization entirely.
//
// A cache is seeded single-threaded (the harness factors one reference
// circuit at construction) and then Frozen; lookups after Freeze are
// lock-free in the sense of never blocking on writers, and store becomes
// a no-op, so the cache contents — and therefore every numeric result —
// are a pure function of the seeding circuit, independent of evaluation
// order or concurrency. Entries whose stored pivots degenerate for a
// particular value set fall back to a private full factorization in the
// adopting solver; the shared entry is never mutated.
//
// spSymbolic stores only index data (no scalar values), so one cache
// serves both the real and complex backends.
type SymbolicCache struct {
	mu      sync.RWMutex
	frozen  bool
	entries []symCacheEntry
}

// symCacheEntry keys a shared spSymbolic by the exact CSC pattern it was
// factored from (the pattern arrays are copied, so later structural
// growth in the seeding solver cannot corrupt the key) plus the scalar
// flavor of the seeding backend, which disambiguates the DC (real) and
// AC (complex) patterns of the same system order for pattern adoption.
type symCacheEntry struct {
	n          int
	flavor     uint8
	colp, rowi []int32
	sym        *spSymbolic
}

// flavorOf tags the scalar domain of a backend instantiation.
func flavorOf[T scalar]() uint8 {
	var z T
	if _, ok := any(z).(complex128); ok {
		return 1
	}
	return 0
}

// NewSymbolicCache returns an empty cache ready to be attached to
// solvers via SetSymbolicCache.
func NewSymbolicCache() *SymbolicCache {
	return &SymbolicCache{}
}

// Freeze stops further stores: the cache becomes an immutable lookup
// table. Call it after seeding and before sharing the cache with
// concurrent evaluations.
func (c *SymbolicCache) Freeze() {
	c.mu.Lock()
	c.frozen = true
	c.mu.Unlock()
}

// matches reports whether the entry's pattern equals (n, colp, rowi). A
// matrix that adopted the entry's pattern arrays matches by pointer
// identity without the element compare.
func (e *symCacheEntry) matches(n int, colp, rowi []int32) bool {
	if e.n != n || len(e.rowi) != len(rowi) {
		return false
	}
	if len(rowi) > 0 && &e.rowi[0] == &rowi[0] && &e.colp[0] == &colp[0] {
		return true
	}
	for i, v := range e.colp {
		if colp[i] != v {
			return false
		}
	}
	for i, v := range e.rowi {
		if rowi[i] != v {
			return false
		}
	}
	return true
}

// lookup returns the cached symbolic factorization for the exact pattern
// (n, colp, rowi), or nil on a miss.
func (c *SymbolicCache) lookup(n int, colp, rowi []int32) *spSymbolic {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i := range c.entries {
		if c.entries[i].matches(n, colp, rowi) {
			return c.entries[i].sym
		}
	}
	return nil
}

// store records a symbolic factorization for its pattern. A no-op once
// the cache is frozen or when the pattern is already present (first
// seeding wins, keeping results independent of store order).
func (c *SymbolicCache) store(n int, flavor uint8, colp, rowi []int32, sym *spSymbolic) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frozen {
		return
	}
	for i := range c.entries {
		if c.entries[i].matches(n, colp, rowi) {
			return
		}
	}
	c.entries = append(c.entries, symCacheEntry{
		n:      n,
		flavor: flavor,
		colp:   append([]int32(nil), colp...),
		rowi:   append([]int32(nil), rowi...),
		sym:    sym,
	})
}

// patternFor returns the compiled CSC pattern of the unique frozen entry
// with the given order and scalar flavor, for speculative pattern
// adoption by a not-yet-stamped matrix. It returns nil when the cache is
// still being seeded (speculation must not influence seeding) or when
// the choice is ambiguous. The returned arrays are cache-owned and must
// be treated as immutable.
func (c *SymbolicCache) patternFor(n int, flavor uint8) (colp, rowi []int32) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.frozen {
		return nil, nil
	}
	found := -1
	for i := range c.entries {
		e := &c.entries[i]
		if e.n != n || e.flavor != flavor {
			continue
		}
		if found >= 0 {
			return nil, nil
		}
		found = i
	}
	if found < 0 {
		return nil, nil
	}
	return c.entries[found].colp, c.entries[found].rowi
}

// spNumeric holds everything a numeric refactorization mutates: the L/U
// values, the per-pivot Smith division constants (complex only), and the
// scratch vectors. One spNumeric per goroutine; the shared spSymbolic is
// read-only.
type spNumeric[T scalar] struct {
	sym    *spSymbolic
	lx, ux []T
	pd     []pivotDiv // per-pivot division constants (complex backend)
	w, sx  []T        // accumulation / permuted-solution workspaces
}

// clearW zeroes the accumulation workspace after a failed refactorization
// left it in an unknown state.
func (nm *spNumeric[T]) clearW() {
	var z T
	for i := range nm.w {
		nm.w[i] = z
	}
}

// rebuildPD recomputes the per-pivot division constants from the stored
// U diagonal. A no-op for the real backend.
func (nm *spNumeric[T]) rebuildPD() {
	cn, ok := any(nm).(*spNumeric[complex128])
	if !ok {
		return
	}
	sym := cn.sym
	if cap(cn.pd) < sym.n {
		cn.pd = make([]pivotDiv, sym.n)
	}
	cn.pd = cn.pd[:sym.n]
	for k := 0; k < sym.n; k++ {
		cn.pd[k] = newPivotDiv(cn.ux[sym.up[k+1]-1])
	}
}

// refactor redoes the numeric factorization on new values using the
// stored pattern and pivot order: per column it replays the recorded
// updates in their original emission order, so the arithmetic — and the
// result — is bit-identical to the full factorization's numeric phase.
// A pivot that degenerates relative to its column returns errRepivot and
// the caller falls back to a fresh symbolic factorization.
func (nm *spNumeric[T]) refactor(a *spMatrix[T]) error {
	if cn, ok := any(nm).(*spNumeric[complex128]); ok {
		return crefactorC(cn, any(a).(*spMatrix[complex128]))
	}
	sym := nm.sym
	n := sym.n
	w := nm.w
	lp, li := sym.lp, sym.li
	up, ui := sym.up, sym.ui
	lx, ux := nm.lx, nm.ux
	scat, q := sym.scat, sym.q
	colp, vals := a.colp, a.vals
	var z T
	for k := 0; k < n; k++ {
		col := int(q[k])
		for t := colp[col]; t < colp[col+1]; t++ {
			w[scat[t]] = vals[t]
		}
		// Consume-and-clear: U's entries are recorded in topological
		// order, so by the time w[j] is read here every update into it
		// has already been applied and the slot can be zeroed for the
		// next column immediately, saving a second pass over the
		// pattern. (All updates from column j land on L(:,j) rows,
		// which are strictly later pivotal positions.)
		for t := up[k]; t < up[k+1]-1; t++ {
			j := int(ui[t])
			xj := w[j]
			ux[t] = xj
			w[j] = z
			for s := lp[j]; s < lp[j+1]; s++ {
				w[li[s]] -= lx[s] * xj
			}
		}
		piv := w[k]
		w[k] = z
		pm := absq(piv)
		if pm == 0 || math.IsNaN(pm) {
			nm.clearW()
			return &PivotError{Index: col, Err: ErrSingular}
		}
		colmax := pm
		for s := lp[k]; s < lp[k+1]; s++ {
			wv := w[li[s]]
			w[li[s]] = z
			if v := absq(wv); v > colmax {
				colmax = v
			}
			lx[s] = wv / piv
		}
		if pm < refactorGuard2*colmax {
			nm.clearW()
			return errRepivot
		}
		ux[up[k+1]-1] = piv
	}
	return nil
}

// solveInto solves A x = b with the stored factors: P A Q = L U, so
// L U (Qᵀx) = P b.
func (nm *spNumeric[T]) solveInto(x, b []T) {
	sym := nm.sym
	n := sym.n
	sx := nm.sx
	pinv, q := sym.pinv, sym.q
	lp, li := sym.lp, sym.li
	up, ui := sym.up, sym.ui
	lx, ux := nm.lx, nm.ux
	for i := 0; i < n; i++ {
		sx[pinv[i]] = b[i]
	}
	for j := 0; j < n; j++ {
		xj := sx[j]
		for t := lp[j]; t < lp[j+1]; t++ {
			sx[li[t]] -= lx[t] * xj
		}
	}
	for j := n - 1; j >= 0; j-- {
		xj := sx[j] / ux[up[j+1]-1]
		sx[j] = xj
		for t := up[j]; t < up[j+1]-1; t++ {
			sx[ui[t]] -= ux[t] * xj
		}
	}
	for j := 0; j < n; j++ {
		x[q[j]] = sx[j]
	}
}

// crefactorC is the complex numeric refactorization. It is the AC
// sweep's hottest loop, so beyond the generic replay it (a) scatters
// through the precomputed map, (b) fuses the column-max scan with the L
// division, and (c) hoists the per-pivot Smith division constants so the
// L column costs one newPivotDiv plus cheap divides instead of a runtime
// complex128div per entry. pivotDiv.div reproduces complex128div
// bit-for-bit on finite operands (see the dense CSolve pinning test), so
// the refactor-equals-factor determinism contract is preserved.
func crefactorC(nm *spNumeric[complex128], a *spMatrix[complex128]) error {
	sym := nm.sym
	n := sym.n
	w := nm.w
	lp, li := sym.lp, sym.li
	up, ui := sym.up, sym.ui
	lx, ux := nm.lx, nm.ux
	pd := nm.pd
	scat, q := sym.scat, sym.q
	colp, vals := a.colp, a.vals
	for k := 0; k < n; k++ {
		for t := colp[q[k]]; t < colp[q[k]+1]; t++ {
			w[scat[t]] = vals[t]
		}
		// Consume-and-clear, exactly as in the generic replay: the
		// topological emission order guarantees w[j] is fully updated
		// when read, so it is zeroed inline instead of in a trailing
		// pass over the pattern.
		for t := up[k]; t < up[k+1]-1; t++ {
			j := int(ui[t])
			xj := w[j]
			ux[t] = xj
			w[j] = 0
			for s := lp[j]; s < lp[j+1]; s++ {
				w[li[s]] -= lx[s] * xj
			}
		}
		piv := w[k]
		w[k] = 0
		pm := sqmag(piv)
		if pm == 0 || math.IsNaN(pm) {
			nm.clearW()
			return &PivotError{Index: int(q[k]), Err: ErrSingular}
		}
		d := newPivotDiv(piv)
		colmax := pm
		for s := lp[k]; s < lp[k+1]; s++ {
			wv := w[li[s]]
			w[li[s]] = 0
			if v := sqmag(wv); v > colmax {
				colmax = v
			}
			lx[s] = d.div(wv, piv)
		}
		if pm < refactorGuard2*colmax {
			nm.clearW()
			return errRepivot
		}
		ux[up[k+1]-1] = piv
		pd[k] = d
	}
	return nil
}

// crefactorAffineC is crefactorC with the affine value reload fused into
// the scatter: instead of first materializing vals[t] = base[t] + tt·slope[t]
// into the matrix and then scattering, each entry is computed as it
// scatters. The per-entry expression is identical to LoadValues', so the
// factors are bit-identical to a materialize-then-refactor sequence while
// the whole pass over the value array (and its memory traffic) is gone.
// This is the AC sweep's per-frequency-point path.
func crefactorAffineC(nm *spNumeric[complex128], a *spMatrix[complex128], base, slope []complex128, tt float64) error {
	sym := nm.sym
	n := sym.n
	w := nm.w
	lp, li := sym.lp, sym.li
	up, ui := sym.up, sym.ui
	lx, ux := nm.lx, nm.ux
	pd := nm.pd
	scat, q := sym.scat, sym.q
	colp := a.colp
	for k := 0; k < n; k++ {
		for t := colp[q[k]]; t < colp[q[k]+1]; t++ {
			sl := slope[t]
			w[scat[t]] = base[t] + complex(real(sl)*tt, imag(sl)*tt)
		}
		for t := up[k]; t < up[k+1]-1; t++ {
			j := int(ui[t])
			xj := w[j]
			ux[t] = xj
			w[j] = 0
			for s := lp[j]; s < lp[j+1]; s++ {
				w[li[s]] -= lx[s] * xj
			}
		}
		piv := w[k]
		w[k] = 0
		pm := sqmag(piv)
		if pm == 0 || math.IsNaN(pm) {
			nm.clearW()
			return &PivotError{Index: int(q[k]), Err: ErrSingular}
		}
		d := newPivotDiv(piv)
		colmax := pm
		for s := lp[k]; s < lp[k+1]; s++ {
			wv := w[li[s]]
			w[li[s]] = 0
			if v := sqmag(wv); v > colmax {
				colmax = v
			}
			lx[s] = d.div(wv, piv)
		}
		if pm < refactorGuard2*colmax {
			nm.clearW()
			return errRepivot
		}
		ux[up[k+1]-1] = piv
		pd[k] = d
	}
	return nil
}

// csolveIntoC is the complex triangular solve using the hoisted division
// constants; zero right-hand-side entries (most of an MNA AC source
// vector) skip their update loops.
func csolveIntoC(nm *spNumeric[complex128], x, b []complex128) {
	sym := nm.sym
	n := sym.n
	sx := nm.sx
	pinv, q := sym.pinv, sym.q
	lp, li := sym.lp, sym.li
	up, ui := sym.up, sym.ui
	lx, ux := nm.lx, nm.ux
	pd := nm.pd
	for i := 0; i < n; i++ {
		sx[pinv[i]] = b[i]
	}
	for j := 0; j < n; j++ {
		xj := sx[j]
		if xj == 0 {
			continue
		}
		for t := lp[j]; t < lp[j+1]; t++ {
			sx[li[t]] -= lx[t] * xj
		}
	}
	for j := n - 1; j >= 0; j-- {
		xj := pd[j].div(sx[j], ux[up[j+1]-1])
		sx[j] = xj
		if xj == 0 {
			continue
		}
		for t := up[j]; t < up[j+1]-1; t++ {
			sx[ui[t]] -= ux[t] * xj
		}
	}
	for j := 0; j < n; j++ {
		x[q[j]] = sx[j]
	}
}

// spLU is the sparse LU driver: it owns the DFS scratch for symbolic
// factorizations, the current (immutable) spSymbolic, and its private
// spNumeric. Each symbolic factorization builds a fresh spSymbolic so
// workspaces holding the previous one are never invalidated under them.
type spLU[T scalar] struct {
	n     int
	valid bool // true when the stored pattern/pivots match the matrix

	q   []int32 // column order for the next symbolic factorization
	sym *spSymbolic
	num *spNumeric[T]

	// symbolic-factorization scratch, allocated lazily on the first
	// full factorization — a solver that only ever adopts cached
	// symbolics never needs it.
	xi     []int32 // reach pattern, topological order
	rstack []int32 // DFS node stack
	pstack []int32 // DFS position stack
	flag   []int32 // DFS visited marks, keyed by column step
}

func newSPLU[T scalar](n int) *spLU[T] {
	buf := make([]T, 2*n)
	return &spLU[T]{
		n: n,
		num: &spNumeric[T]{
			w:  buf[:n:n],
			sx: buf[n:],
		},
	}
}

// ensureScratch allocates the DFS scratch for a full symbolic
// factorization (one backing array, sliced four ways).
func (f *spLU[T]) ensureScratch() {
	if f.xi != nil {
		return
	}
	n := f.n
	buf := make([]int32, 4*n)
	f.xi = buf[:n:n]
	f.rstack = buf[n : 2*n : 2*n]
	f.pstack = buf[2*n : 3*n : 3*n]
	f.flag = buf[3*n:]
}

// adopt installs a shared symbolic factorization produced elsewhere for
// the same CSC pattern and replays its elimination on the matrix's
// current values. The numeric result is bit-identical to a full
// factorization that would choose the same pivots; values for which the
// stored pivot order degenerates return errRepivot and the caller falls
// back to a full factorization (the shared symbolic is never mutated).
func (f *spLU[T]) adopt(sym *spSymbolic, a *spMatrix[T]) error {
	f.valid = false
	f.q = sym.q
	f.sym = sym
	nm := f.num
	nm.sym = sym
	nl, nu := len(sym.li), len(sym.ui)
	if cap(nm.lx) < nl || cap(nm.ux) < nu {
		buf := make([]T, nl+nu)
		nm.lx = buf[:nl:nl]
		nm.ux = buf[nl:]
	} else {
		nm.lx = nm.lx[:nl]
		nm.ux = nm.ux[:nu]
	}
	if cn, ok := any(nm).(*spNumeric[complex128]); ok {
		if cap(cn.pd) < sym.n {
			cn.pd = make([]pivotDiv, sym.n)
		}
		cn.pd = cn.pd[:sym.n]
	}
	if err := nm.refactor(a); err != nil {
		return err
	}
	f.valid = true
	return nil
}

// dfs pushes the reach of unvisited node i (an original row index) onto
// xi[...top] in topological order and returns the new top. Edges run
// from a pivotal row through its L column in the symbolic being built.
func (f *spLU[T]) dfs(ns *spSymbolic, i, k, top int) int {
	head := 0
	f.rstack[0] = int32(i)
	for head >= 0 {
		i := int(f.rstack[head])
		if f.flag[i] != int32(k) {
			f.flag[i] = int32(k)
			if jp := ns.pinv[i]; jp >= 0 {
				f.pstack[head] = ns.lp[jp]
			} else {
				f.pstack[head] = 0
			}
		}
		done := true
		if jp := ns.pinv[i]; jp >= 0 {
			for t := f.pstack[head]; t < ns.lp[jp+1]; t++ {
				j := int(ns.li[t])
				if f.flag[j] != int32(k) {
					f.pstack[head] = t + 1
					head++
					f.rstack[head] = int32(j)
					done = false
					break
				}
			}
		}
		if done {
			head--
			top--
			f.xi[top] = int32(i)
		}
	}
	return top
}

// factor runs the full symbolic+numeric Gilbert–Peierls factorization of
// the compiled matrix under the stored column order, producing a fresh
// immutable spSymbolic. Partial pivoting prefers the diagonal when it is
// within 10⁻¹ of the column maximum (threshold pivoting keeps the MNA
// structure and fill stable); ties break on the smallest row index for
// determinism.
func (f *spLU[T]) factor(a *spMatrix[T]) error {
	n := f.n
	f.valid = false
	f.ensureScratch()
	ns := &spSymbolic{
		n:    n,
		q:    f.q,
		pinv: make([]int32, n),
		lp:   make([]int32, 1, n+1),
		up:   make([]int32, 1, n+1),
	}
	if old := f.sym; old != nil {
		ns.li = make([]int32, 0, len(old.li))
		ns.ui = make([]int32, 0, len(old.ui))
	} else if nnz := len(a.rowi); nnz > 0 {
		// First factorization of this pattern: seed the factor arrays
		// with a fill-typical capacity so the append ladder is short.
		ns.li = make([]int32, 0, 2*nnz)
		ns.ui = make([]int32, 0, 2*nnz)
	}
	for i := range ns.pinv {
		ns.pinv[i] = -1
	}
	for i := range f.flag {
		f.flag[i] = -1
	}
	nm := f.num
	if cap(nm.lx) == 0 && len(a.rowi) > 0 {
		nm.lx = make([]T, 0, 2*len(a.rowi))
		nm.ux = make([]T, 0, 2*len(a.rowi))
	}
	nm.lx, nm.ux = nm.lx[:0], nm.ux[:0]
	x := nm.w

	const diagPref2 = 1e-2 // (0.1)²: diagonal preference threshold
	for k := 0; k < n; k++ {
		col := int(ns.q[k])
		// Symbolic: pattern of x = Reach_L(pattern of A(:,col)).
		top := n
		for t := a.colp[col]; t < a.colp[col+1]; t++ {
			if i := int(a.rowi[t]); f.flag[i] != int32(k) {
				top = f.dfs(ns, i, k, top)
			}
		}
		// Numeric: x = L \ A(:,col), in topological order.
		for t := a.colp[col]; t < a.colp[col+1]; t++ {
			x[a.rowi[t]] = a.vals[t]
		}
		for p := top; p < n; p++ {
			i := int(f.xi[p])
			jp := int(ns.pinv[i])
			if jp < 0 {
				continue
			}
			xj := x[i]
			for t := ns.lp[jp]; t < ns.lp[jp+1]; t++ {
				x[ns.li[t]] -= nm.lx[t] * xj
			}
		}
		// Pivot among the not-yet-pivotal rows.
		ipiv, maxv, diagv := -1, 0.0, -1.0
		for p := top; p < n; p++ {
			i := int(f.xi[p])
			if ns.pinv[i] >= 0 {
				continue
			}
			v := absq(x[i])
			if v > maxv || (v == maxv && ipiv >= 0 && i < ipiv) {
				ipiv, maxv = i, v
			}
			if i == col {
				diagv = v
			}
		}
		if ipiv < 0 || maxv == 0 || math.IsNaN(maxv) {
			for p := top; p < n; p++ {
				var z T
				x[f.xi[p]] = z
			}
			return &PivotError{Index: col, Err: ErrSingular}
		}
		if diagv >= diagPref2*maxv {
			ipiv = col
		}
		pivot := x[ipiv]
		ns.pinv[ipiv] = int32(k)
		// U column k: pivotal entries in topological (emission) order,
		// diagonal last. L column k: the rest, divided by the pivot;
		// row indices stay original until the final remap.
		for p := top; p < n; p++ {
			i := int(f.xi[p])
			if ip := ns.pinv[i]; ip >= 0 && int(ip) < k {
				ns.ui = append(ns.ui, ip)
				nm.ux = append(nm.ux, x[i])
			}
		}
		ns.ui = append(ns.ui, int32(k))
		nm.ux = append(nm.ux, pivot)
		ns.up = append(ns.up, int32(len(ns.ui)))
		for p := top; p < n; p++ {
			i := int(f.xi[p])
			if ns.pinv[i] < 0 {
				ns.li = append(ns.li, int32(i))
				nm.lx = append(nm.lx, x[i]/pivot)
			}
		}
		ns.lp = append(ns.lp, int32(len(ns.li)))
		var z T
		for p := top; p < n; p++ {
			x[f.xi[p]] = z
		}
	}
	// Remap L's row indices into pivotal positions so the numeric
	// refactorization and the solves work purely in permuted space, and
	// precompute the value-position → pivotal-row scatter map.
	for t := range ns.li {
		ns.li[t] = ns.pinv[ns.li[t]]
	}
	ns.scat = make([]int32, len(a.rowi))
	for t, r := range a.rowi {
		ns.scat[t] = ns.pinv[r]
	}
	f.sym = ns
	nm.sym = ns
	nm.rebuildPD()
	f.valid = true
	return nil
}

// refactor replays the stored elimination on new values; on failure the
// factorization is invalidated and the caller decides whether to retry
// with a fresh symbolic factorization (errRepivot) or give up.
func (f *spLU[T]) refactor(a *spMatrix[T]) error {
	err := f.num.refactor(a)
	if err != nil {
		f.valid = false
	}
	return err
}

// solveInto solves A x = b with the stored factors.
func (f *spLU[T]) solveInto(x, b []T) {
	f.num.solveInto(x, b)
}

// sparseCore bundles assembly and factorization state shared by the real
// and complex exported backends.
type sparseCore[T scalar] struct {
	a     *spMatrix[T]
	lu    *spLU[T]
	cache *SymbolicCache
	stats SolverStats
}

func newSparseCore[T scalar](n int) sparseCore[T] {
	return sparseCore[T]{
		a:     newSPMatrix[T](n),
		lu:    newSPLU[T](n),
		stats: SolverStats{Kind: "sparse", N: n},
	}
}

// SetSymbolicCache attaches a shared symbolic cache: subsequent
// factorizations of a new pattern first try to adopt a cached symbolic
// (skipping ordering and the full factorization) and, while the cache is
// unfrozen, store freshly computed symbolics for other solvers.
//
// When the cache is frozen and holds exactly one pattern for this order
// and scalar flavor, a not-yet-stamped matrix additionally adopts that
// compiled pattern up front, so assembly goes straight into CSC mode and
// the triplet compile is skipped. A stamp outside the adopted pattern
// drops back to triplet assembly (and the resulting pattern simply
// misses the cache), so speculation never changes results.
func (s *sparseCore[T]) SetSymbolicCache(c *SymbolicCache) {
	s.cache = c
	if c == nil || s.a.compiled || len(s.a.ti) > 0 {
		return
	}
	colp, rowi := c.patternFor(s.a.n, flavorOf[T]())
	if colp == nil {
		return
	}
	s.a.colp, s.a.rowi = colp, rowi
	s.a.vals = make([]T, len(rowi))
	s.a.compiled = true
	s.stats.NNZ = len(rowi)
}

// ensureCompiled freezes the assembled structure: triplets are merged
// into CSC form. The fill-reducing order is invalidated here but
// computed lazily in factor — a cache hit never needs it. A no-op when
// the structure is already compiled.
func (s *sparseCore[T]) ensureCompiled() {
	if s.a.compiled {
		return
	}
	s.a.compile()
	s.lu.valid = false
	s.lu.q = nil
	s.stats.NNZ = len(s.a.rowi)
}

func (s *sparseCore[T]) factor() error {
	s.stats.Factorizations++
	s.ensureCompiled()
	if !s.lu.valid && s.cache != nil {
		if sym := s.cache.lookup(s.a.n, s.a.colp, s.a.rowi); sym != nil {
			err := s.lu.adopt(sym, s.a)
			if err == nil {
				s.stats.FillNNZ = len(sym.li) + len(sym.ui)
				return nil
			}
			if !errors.Is(err, errRepivot) {
				return err
			}
			// Cached pivots degenerate for these values: fall through
			// to a full factorization (adopt already installed the
			// cached column order, so no fresh ordering is needed).
		}
	}
	var err error
	if !s.lu.valid {
		s.stats.Symbolic++
		if s.lu.q == nil {
			s.lu.q = minDegreeOrder(s.a.n, s.a.colp, s.a.rowi)
		}
		err = s.lu.factor(s.a)
	} else if err = s.lu.refactor(s.a); errors.Is(err, errRepivot) {
		s.stats.Symbolic++
		err = s.lu.factor(s.a)
	}
	if err == nil {
		s.stats.FillNNZ = len(s.lu.sym.li) + len(s.lu.sym.ui)
		if s.cache != nil {
			s.cache.store(s.a.n, flavorOf[T](), s.a.colp, s.a.rowi, s.lu.sym)
		}
	}
	return err
}

// SparseSolver is the sparse real backend implementing Solver. The first
// Factor after a structural change pays compilation, ordering and the
// symbolic factorization; subsequent Factors are numeric-only.
type SparseSolver struct {
	sparseCore[float64]
}

// NewSparseSolver returns a sparse backend for order-n real systems.
func NewSparseSolver(n int) *SparseSolver {
	return &SparseSolver{newSparseCore[float64](n)}
}

// Addto implements Stamper.
func (s *SparseSolver) Addto(i, j int, v float64) { s.a.addto(i, j, v) }

// Order implements Solver.
func (s *SparseSolver) Order() int { return s.a.n }

// Reset implements Solver.
func (s *SparseSolver) Reset() { s.a.zero() }

// Factor implements Solver.
func (s *SparseSolver) Factor() error { return s.factor() }

// SolveInto implements Solver.
func (s *SparseSolver) SolveInto(x, b Vector) error {
	if len(x) != s.a.n || len(b) != s.a.n {
		return errDimension
	}
	if !s.lu.valid {
		return errors.New("linalg: SparseSolver.SolveInto before successful Factor")
	}
	s.lu.solveInto(x, b)
	s.stats.Solves++
	return nil
}

// Stats implements Solver.
func (s *SparseSolver) Stats() SolverStats { return s.stats }

// SparseComplexSolver is the sparse complex backend implementing
// ComplexSolver, used by the AC sweep: the (G + jωC) pattern is fixed
// across frequency points, so every point after the first is a numeric
// refactorization plus one triangular solve.
type SparseComplexSolver struct {
	sparseCore[complex128]
}

// NewSparseComplexSolver returns a sparse backend for order-n complex
// systems.
func NewSparseComplexSolver(n int) *SparseComplexSolver {
	return &SparseComplexSolver{newSparseCore[complex128](n)}
}

// Addto implements CStamper.
func (s *SparseComplexSolver) Addto(i, j int, v complex128) { s.a.addto(i, j, v) }

// Order implements ComplexSolver.
func (s *SparseComplexSolver) Order() int { return s.a.n }

// Reset implements ComplexSolver.
func (s *SparseComplexSolver) Reset() { s.a.zero() }

// Factor implements ComplexSolver.
func (s *SparseComplexSolver) Factor() error { return s.factor() }

// SolveInto implements ComplexSolver.
func (s *SparseComplexSolver) SolveInto(x, b []complex128) error {
	if len(x) != s.a.n || len(b) != s.a.n {
		return errDimension
	}
	if !s.lu.valid {
		return errors.New("linalg: SparseComplexSolver.SolveInto before successful Factor")
	}
	csolveIntoC(s.lu.num, x, b)
	s.stats.Solves++
	return nil
}

// Stats implements ComplexSolver.
func (s *SparseComplexSolver) Stats() SolverStats { return s.stats }

// Absorb folds a workspace's counters into the parent solver's stats, so
// work done on NumericWorkspace clones still shows up in the instrumented
// totals. Gauges (NNZ, FillNNZ) keep the maximum seen.
func (s *SparseComplexSolver) Absorb(st SolverStats) {
	s.stats.Factorizations += st.Factorizations
	s.stats.Solves += st.Solves
	s.stats.Symbolic += st.Symbolic
	if st.FillNNZ > s.stats.FillNNZ {
		s.stats.FillNNZ = st.FillNNZ
	}
}

// CaptureValues compiles the assembled structure if necessary and copies
// the current matrix values, in the backend's stable storage order, into
// dst (reusing its capacity). Together with LoadValues it lets a caller
// snapshot two assemblies of a value-affine family A(t) = A0 + t·A1 —
// e.g. the AC system G + jωC over ω — and re-materialize any member
// with one linear pass instead of restamping every device.
func (s *SparseComplexSolver) CaptureValues(dst []complex128) []complex128 {
	s.ensureCompiled()
	return append(dst[:0], s.a.vals...)
}

// LoadValues overwrites the assembled values with base[k] + t·slope[k].
// It reports false — leaving the assembly untouched — when a captured
// length no longer matches the compiled structure (e.g. after growth).
func (s *SparseComplexSolver) LoadValues(base, slope []complex128, t float64) bool {
	if !s.a.compiled || len(base) != len(s.a.vals) || len(slope) != len(s.a.vals) {
		return false
	}
	for k, sl := range slope {
		s.a.vals[k] = base[k] + complex(real(sl)*t, imag(sl)*t)
	}
	return true
}

// SparseComplexWorkspace is a per-goroutine numeric companion to a
// SparseComplexSolver: it shares the parent's immutable CSC pattern and
// spSymbolic but owns its values, factors and scratch, so N workspaces
// can LoadValues/Factor/SolveInto the same structure concurrently. Every
// Factor replays the shared symbolic from scratch (no per-workspace
// pivot history), so results are independent of how points are
// distributed over workspaces; a point whose pivots degenerate falls
// back to a private full factorization without touching the shared
// state. Workspaces are invalidated by any structural change or symbolic
// refactorization in the parent — create them fresh after Factor.
type SparseComplexWorkspace struct {
	a   spMatrix[complex128] // shares colp/rowi with the parent; vals only materialized for the fallback
	num *spNumeric[complex128]
	// affBase/affSlope/affT record the last LoadValues call; Factor fuses
	// the affine reload into the refactorization's scatter instead of
	// materializing a value array per point.
	affBase, affSlope []complex128
	affT              float64
	affine            bool
	full              *spLU[complex128] // lazy private fallback when pivots degenerate
	fullActive        bool
	factored          bool
	stats             SolverStats
}

// newComplexWorkspace builds a workspace sharing the given pattern and
// symbolic factorization; the numeric arrays come out of one backing
// allocation and no value array is materialized until the fallback needs
// one (the sweep creates a workspace per worker per sweep, so the
// constructor is on a warm path).
func newComplexWorkspace(n int, colp, rowi []int32, sym *spSymbolic) *SparseComplexWorkspace {
	nl, nu := len(sym.li), len(sym.ui)
	buf := make([]complex128, nl+nu+2*n)
	return &SparseComplexWorkspace{
		a: spMatrix[complex128]{
			n:        n,
			compiled: true,
			colp:     colp,
			rowi:     rowi,
		},
		num: &spNumeric[complex128]{
			sym: sym,
			lx:  buf[:nl:nl],
			ux:  buf[nl : nl+nu : nl+nu],
			pd:  make([]pivotDiv, n),
			w:   buf[nl+nu : nl+nu+n : nl+nu+n],
			sx:  buf[nl+nu+n:],
		},
		stats: SolverStats{Kind: "sparse", N: n, NNZ: len(rowi)},
	}
}

// NumericWorkspace returns a workspace bound to the solver's current
// symbolic factorization. The solver must have been factored
// successfully first.
func (s *SparseComplexSolver) NumericWorkspace() (*SparseComplexWorkspace, error) {
	if !s.lu.valid {
		return nil, errors.New("linalg: NumericWorkspace before successful Factor")
	}
	return newComplexWorkspace(s.a.n, s.a.colp, s.a.rowi, s.lu.sym), nil
}

// Clone returns an independent workspace over the same shared symbolic
// factorization.
func (ws *SparseComplexWorkspace) Clone() *SparseComplexWorkspace {
	return newComplexWorkspace(ws.a.n, ws.a.colp, ws.a.rowi, ws.num.sym)
}

// LoadValues points the workspace at the affine snapshot member
// base[k] + t·slope[k]. The values are not materialized here: Factor
// fuses the reload into its scatter pass, producing factors bit-identical
// to materializing first. The snapshot arrays must stay unmodified (they
// are shared read-only across all workspaces of a sweep) until the next
// LoadValues.
func (ws *SparseComplexWorkspace) LoadValues(base, slope []complex128, t float64) bool {
	if len(base) != len(ws.a.rowi) || len(slope) != len(ws.a.rowi) {
		return false
	}
	ws.affBase, ws.affSlope, ws.affT = base, slope, t
	ws.affine = true
	return true
}

// materialize writes the affine member into the workspace's own value
// array, for the full-factorization fallback (which needs a plain
// assembled matrix).
func (ws *SparseComplexWorkspace) materialize() {
	nnz := len(ws.a.rowi)
	if cap(ws.a.vals) < nnz {
		ws.a.vals = make([]complex128, nnz)
	}
	ws.a.vals = ws.a.vals[:nnz]
	t := ws.affT
	for k, sl := range ws.affSlope {
		ws.a.vals[k] = ws.affBase[k] + complex(real(sl)*t, imag(sl)*t)
	}
}

// Factor refactors the workspace's values against the shared symbolic.
// When the stored pivot order degenerates for these values it falls back
// to a private full factorization (shared state untouched), so Factor
// only fails on genuinely singular systems.
func (ws *SparseComplexWorkspace) Factor() error {
	ws.stats.Factorizations++
	ws.fullActive = false
	ws.factored = false
	var err error
	if ws.affine {
		err = crefactorAffineC(ws.num, &ws.a, ws.affBase, ws.affSlope, ws.affT)
	} else if len(ws.a.vals) == len(ws.a.rowi) {
		err = crefactorC(ws.num, &ws.a)
	} else {
		return errors.New("linalg: SparseComplexWorkspace.Factor before LoadValues")
	}
	if err == nil {
		ws.factored = true
		if fill := len(ws.num.sym.li) + len(ws.num.sym.ui); fill > ws.stats.FillNNZ {
			ws.stats.FillNNZ = fill
		}
		return nil
	}
	if !errors.Is(err, errRepivot) {
		return err
	}
	ws.stats.Symbolic++
	if ws.affine {
		ws.materialize()
	}
	if ws.full == nil {
		ws.full = newSPLU[complex128](ws.a.n)
		ws.full.q = ws.num.sym.q
	}
	if err := ws.full.factor(&ws.a); err != nil {
		return err
	}
	ws.fullActive = true
	ws.factored = true
	if fill := len(ws.full.sym.li) + len(ws.full.sym.ui); fill > ws.stats.FillNNZ {
		ws.stats.FillNNZ = fill
	}
	return nil
}

// SolveInto solves with the workspace's current factors.
func (ws *SparseComplexWorkspace) SolveInto(x, b []complex128) error {
	if len(x) != ws.a.n || len(b) != ws.a.n {
		return errDimension
	}
	if !ws.factored {
		return errors.New("linalg: SparseComplexWorkspace.SolveInto before successful Factor")
	}
	if ws.fullActive {
		csolveIntoC(ws.full.num, x, b)
	} else {
		csolveIntoC(ws.num, x, b)
	}
	ws.stats.Solves++
	return nil
}

// Stats reports the work done through this workspace; fold it back into
// the parent with SparseComplexSolver.Absorb.
func (ws *SparseComplexWorkspace) Stats() SolverStats { return ws.stats }
