package linalg

import (
	"errors"
	"math"
	"math/bits"
)

// This file implements the sparse linear-solver backend: triplet (COO)
// assembly compiled once into compressed-sparse-column form, a
// fill-reducing minimum-degree ordering, and a left-looking
// Gilbert–Peierls LU with partial pivoting split into a symbolic
// factorization (pattern + pivot order, computed once per topology) and
// a numeric refactorization that replays the stored elimination on new
// values. MNA matrices are ~80% structural zeros and every Newton
// iteration, AC frequency point and transient step re-solves the same
// structure, so the amortized cost per solve is O(flops on nonzeros)
// instead of O(n³).
//
// The real and complex backends share one generic core; complex pivot
// magnitudes use |·|² (monotone in |·|, no square root), matching the
// dense complex elimination.

// scalar is the element domain shared by the real and complex sparse
// backends.
type scalar interface {
	float64 | complex128
}

// absq returns |v|² for either element type.
func absq[T scalar](v T) float64 {
	switch x := any(v).(type) {
	case float64:
		return x * x
	case complex128:
		return real(x)*real(x) + imag(x)*imag(x)
	}
	return 0
}

// errRepivot is an internal signal from refactor: the stored pivot order
// has become numerically inadequate for the new values and the caller
// must redo the full (symbolic) factorization.
var errRepivot = errors.New("linalg: sparse refactorization needs new pivots")

// refactorGuard2 is the squared pivot-degeneracy threshold: a
// refactorization pivot whose squared magnitude falls below
// refactorGuard2 times the squared column maximum triggers errRepivot.
// (1e-6 == (1e-3)², i.e. the classic 0.001 threshold-pivoting bound.)
const refactorGuard2 = 1e-6

// spMatrix is the assembly buffer: triplets while the structure is being
// discovered, compressed sparse columns (rows sorted, duplicates merged)
// afterwards. Stamping an entry outside the compiled structure drops the
// matrix back to triplet form so the next Factor recompiles — analyses
// with different footprints (DC vs transient companion stamps) can share
// one buffer.
type spMatrix[T scalar] struct {
	n        int
	compiled bool
	ti, tj   []int32 // triplet rows/cols (assembly mode)
	tv       []T     // triplet values
	colp     []int32 // CSC column pointers, len n+1 (compiled)
	rowi     []int32 // CSC row indices, sorted within each column
	vals     []T     // CSC values
}

func newSPMatrix[T scalar](n int) *spMatrix[T] {
	return &spMatrix[T]{n: n}
}

// addto accumulates entry (i, j) += v in either mode.
func (m *spMatrix[T]) addto(i, j int, v T) {
	if !m.compiled {
		m.ti = append(m.ti, int32(i))
		m.tj = append(m.tj, int32(j))
		m.tv = append(m.tv, v)
		return
	}
	// Columns are short (a handful of device terminals); a linear scan
	// beats binary search at these lengths.
	r := int32(i)
	for t := m.colp[j]; t < m.colp[j+1]; t++ {
		if m.rowi[t] == r {
			m.vals[t] += v
			return
		}
	}
	m.grow(i, j, v)
}

// zero clears the assembled values, keeping the compiled structure.
func (m *spMatrix[T]) zero() {
	if !m.compiled {
		m.ti, m.tj, m.tv = m.ti[:0], m.tj[:0], m.tv[:0]
		return
	}
	var z T
	for i := range m.vals {
		m.vals[i] = z
	}
}

// grow reopens the structure for an entry outside the compiled pattern:
// the current values decompile back to triplets (preserving the partial
// assembly in flight) and the new entry is appended.
func (m *spMatrix[T]) grow(i, j int, v T) {
	ti := make([]int32, 0, len(m.rowi)+8)
	tj := make([]int32, 0, len(m.rowi)+8)
	tv := make([]T, 0, len(m.rowi)+8)
	for col := 0; col < m.n; col++ {
		for t := m.colp[col]; t < m.colp[col+1]; t++ {
			ti = append(ti, m.rowi[t])
			tj = append(tj, int32(col))
			tv = append(tv, m.vals[t])
		}
	}
	m.ti = append(ti, int32(i))
	m.tj = append(tj, int32(j))
	m.tv = append(tv, v)
	m.colp, m.rowi, m.vals = nil, nil, nil
	m.compiled = false
}

// compile converts the triplets to CSC with sorted rows and merged
// duplicates, then drops the triplet storage.
func (m *spMatrix[T]) compile() {
	n := m.n
	colp := make([]int32, n+1)
	for _, j := range m.tj {
		colp[j+1]++
	}
	for j := 0; j < n; j++ {
		colp[j+1] += colp[j]
	}
	ri := make([]int32, len(m.ti))
	vv := make([]T, len(m.ti))
	next := append([]int32(nil), colp[:n]...)
	for t := range m.ti {
		j := m.tj[t]
		p := next[j]
		next[j]++
		ri[p] = m.ti[t]
		vv[p] = m.tv[t]
	}
	// Sort each column by row (insertion sort: columns are short), then
	// merge duplicates, compacting in place.
	out := int32(0)
	final := make([]int32, n+1)
	for j := 0; j < n; j++ {
		lo, hi := colp[j], colp[j+1]
		for a := lo + 1; a < hi; a++ {
			r, v := ri[a], vv[a]
			b := a
			for b > lo && ri[b-1] > r {
				ri[b], vv[b] = ri[b-1], vv[b-1]
				b--
			}
			ri[b], vv[b] = r, v
		}
		for a := lo; a < hi; {
			r := ri[a]
			var s T
			for a < hi && ri[a] == r {
				s += vv[a]
				a++
			}
			ri[out], vv[out] = r, s
			out++
		}
		final[j+1] = out
	}
	m.colp, m.rowi, m.vals = final, ri[:out], vv[:out]
	m.ti, m.tj, m.tv = nil, nil, nil
	m.compiled = true
}

// minDegreeOrder computes a fill-reducing elimination order for the
// pattern of A+Aᵀ with a plain minimum-degree heuristic over a bitset
// adjacency (no quotient graph — MNA systems here are tens of unknowns,
// so the simple O(n²·n/64) elimination is cheaper than bookkeeping).
// Ties break on the smallest index, keeping the order deterministic.
func minDegreeOrder(n int, colp, rowi []int32) []int32 {
	perm := make([]int32, 0, n)
	if n == 0 {
		return perm
	}
	words := (n + 63) / 64
	adj := make([]uint64, n*words)
	set := func(i, j int) {
		if i != j {
			adj[i*words+j/64] |= 1 << uint(j%64)
		}
	}
	for j := 0; j < n; j++ {
		for t := colp[j]; t < colp[j+1]; t++ {
			i := int(rowi[t])
			set(i, j)
			set(j, i)
		}
	}
	alive := make([]uint64, words)
	for i := 0; i < n; i++ {
		alive[i/64] |= 1 << uint(i%64)
	}
	isAlive := func(i int) bool { return alive[i/64]&(1<<uint(i%64)) != 0 }
	deg := make([]int, n)
	recompute := func(i int) {
		row := adj[i*words : (i+1)*words]
		d := 0
		for w := 0; w < words; w++ {
			d += bits.OnesCount64(row[w] & alive[w])
		}
		deg[i] = d
	}
	for i := 0; i < n; i++ {
		recompute(i)
	}
	for len(perm) < n {
		best, bestd := -1, n+1
		for i := 0; i < n; i++ {
			if isAlive(i) && deg[i] < bestd {
				best, bestd = i, deg[i]
			}
		}
		p := best
		perm = append(perm, int32(p))
		alive[p/64] &^= 1 << uint(p%64)
		// Eliminating p connects its remaining neighbors into a clique.
		prow := adj[p*words : (p+1)*words]
		for i := 0; i < n; i++ {
			if !isAlive(i) || prow[i/64]&(1<<uint(i%64)) == 0 {
				continue
			}
			irow := adj[i*words : (i+1)*words]
			for w := 0; w < words; w++ {
				irow[w] |= prow[w]
			}
			irow[i/64] &^= 1 << uint(i%64)
		}
		for i := 0; i < n; i++ {
			if isAlive(i) && prow[i/64]&(1<<uint(i%64)) != 0 {
				recompute(i)
			}
		}
	}
	return perm
}

// spLU is the sparse LU state: the column order q and row permutation
// pinv plus the L and U factors in compressed columns. U's entries are
// stored in the topological order the symbolic elimination emitted them
// (diagonal last), which is exactly the replay order the numeric
// refactorization needs; L's diagonal is an implicit 1. After the
// symbolic factorization both factors hold permuted row indices.
type spLU[T scalar] struct {
	n     int
	valid bool // true when the stored pattern/pivots match the matrix

	q    []int32 // column order: column q[k] is eliminated k-th
	pinv []int32 // pinv[origRow] = pivotal position

	lp, li []int32
	lx     []T
	up, ui []int32
	ux     []T

	// scratch
	w      []T     // accumulation workspace; zero outside factor calls
	sx     []T     // permuted solution workspace
	xi     []int32 // reach pattern, topological order
	rstack []int32 // DFS node stack
	pstack []int32 // DFS position stack
	flag   []int32 // DFS visited marks, keyed by column step
}

func newSPLU[T scalar](n int) *spLU[T] {
	f := &spLU[T]{
		n:      n,
		pinv:   make([]int32, n),
		w:      make([]T, n),
		sx:     make([]T, n),
		xi:     make([]int32, n),
		rstack: make([]int32, n),
		pstack: make([]int32, n),
		flag:   make([]int32, n),
	}
	return f
}

// clearW zeroes the accumulation workspace after a failed factorization
// left it in an unknown state.
func (f *spLU[T]) clearW() {
	var z T
	for i := range f.w {
		f.w[i] = z
	}
}

// dfs pushes the reach of unvisited node i (an original row index) onto
// xi[...top] in topological order and returns the new top. Edges run
// from a pivotal row through its L column.
func (f *spLU[T]) dfs(i, k, top int) int {
	head := 0
	f.rstack[0] = int32(i)
	for head >= 0 {
		i := int(f.rstack[head])
		if f.flag[i] != int32(k) {
			f.flag[i] = int32(k)
			if jp := f.pinv[i]; jp >= 0 {
				f.pstack[head] = f.lp[jp]
			} else {
				f.pstack[head] = 0
			}
		}
		done := true
		if jp := f.pinv[i]; jp >= 0 {
			for t := f.pstack[head]; t < f.lp[jp+1]; t++ {
				j := int(f.li[t])
				if f.flag[j] != int32(k) {
					f.pstack[head] = t + 1
					head++
					f.rstack[head] = int32(j)
					done = false
					break
				}
			}
		}
		if done {
			head--
			top--
			f.xi[top] = int32(i)
		}
	}
	return top
}

// factor runs the full symbolic+numeric Gilbert–Peierls factorization of
// the compiled matrix under the stored column order. Partial pivoting
// prefers the diagonal when it is within 10⁻¹ of the column maximum
// (threshold pivoting keeps the MNA structure and fill stable); ties
// break on the smallest row index for determinism.
func (f *spLU[T]) factor(a *spMatrix[T]) error {
	n := f.n
	f.valid = false
	for i := range f.pinv {
		f.pinv[i] = -1
	}
	for i := range f.flag {
		f.flag[i] = -1
	}
	f.lp = append(f.lp[:0], 0)
	f.li, f.lx = f.li[:0], f.lx[:0]
	f.up = append(f.up[:0], 0)
	f.ui, f.ux = f.ui[:0], f.ux[:0]
	x := f.w

	const diagPref2 = 1e-2 // (0.1)²: diagonal preference threshold
	for k := 0; k < n; k++ {
		col := int(f.q[k])
		// Symbolic: pattern of x = Reach_L(pattern of A(:,col)).
		top := n
		for t := a.colp[col]; t < a.colp[col+1]; t++ {
			if i := int(a.rowi[t]); f.flag[i] != int32(k) {
				top = f.dfs(i, k, top)
			}
		}
		// Numeric: x = L \ A(:,col), in topological order.
		for t := a.colp[col]; t < a.colp[col+1]; t++ {
			x[a.rowi[t]] = a.vals[t]
		}
		for p := top; p < n; p++ {
			i := int(f.xi[p])
			jp := int(f.pinv[i])
			if jp < 0 {
				continue
			}
			xj := x[i]
			for t := f.lp[jp]; t < f.lp[jp+1]; t++ {
				x[f.li[t]] -= f.lx[t] * xj
			}
		}
		// Pivot among the not-yet-pivotal rows.
		ipiv, maxv, diagv := -1, 0.0, -1.0
		for p := top; p < n; p++ {
			i := int(f.xi[p])
			if f.pinv[i] >= 0 {
				continue
			}
			v := absq(x[i])
			if v > maxv || (v == maxv && ipiv >= 0 && i < ipiv) {
				ipiv, maxv = i, v
			}
			if i == col {
				diagv = v
			}
		}
		if ipiv < 0 || maxv == 0 || math.IsNaN(maxv) {
			for p := top; p < n; p++ {
				var z T
				x[f.xi[p]] = z
			}
			return &PivotError{Index: col, Err: ErrSingular}
		}
		if diagv >= diagPref2*maxv {
			ipiv = col
		}
		pivot := x[ipiv]
		f.pinv[ipiv] = int32(k)
		// U column k: pivotal entries in topological (emission) order,
		// diagonal last. L column k: the rest, divided by the pivot;
		// row indices stay original until the final remap.
		for p := top; p < n; p++ {
			i := int(f.xi[p])
			if ip := f.pinv[i]; ip >= 0 && int(ip) < k {
				f.ui = append(f.ui, ip)
				f.ux = append(f.ux, x[i])
			}
		}
		f.ui = append(f.ui, int32(k))
		f.ux = append(f.ux, pivot)
		f.up = append(f.up, int32(len(f.ui)))
		for p := top; p < n; p++ {
			i := int(f.xi[p])
			if f.pinv[i] < 0 {
				f.li = append(f.li, int32(i))
				f.lx = append(f.lx, x[i]/pivot)
			}
		}
		f.lp = append(f.lp, int32(len(f.li)))
		var z T
		for p := top; p < n; p++ {
			x[f.xi[p]] = z
		}
	}
	// Remap L's row indices into pivotal positions so the numeric
	// refactorization and the solves work purely in permuted space.
	for t := range f.li {
		f.li[t] = f.pinv[f.li[t]]
	}
	f.valid = true
	return nil
}

// refactor redoes the numeric factorization on new values using the
// stored pattern and pivot order: per column it replays the recorded
// updates in their original emission order, so the arithmetic — and the
// result — is bit-identical to the full factorization's numeric phase.
// A pivot that degenerates relative to its column returns errRepivot and
// the caller falls back to a fresh symbolic factorization.
func (f *spLU[T]) refactor(a *spMatrix[T]) error {
	n := f.n
	w := f.w
	var z T
	for k := 0; k < n; k++ {
		col := int(f.q[k])
		for t := a.colp[col]; t < a.colp[col+1]; t++ {
			w[f.pinv[a.rowi[t]]] = a.vals[t]
		}
		for t := f.up[k]; t < f.up[k+1]-1; t++ {
			j := int(f.ui[t])
			xj := w[j]
			f.ux[t] = xj
			for s := f.lp[j]; s < f.lp[j+1]; s++ {
				w[f.li[s]] -= f.lx[s] * xj
			}
		}
		piv := w[k]
		pm := absq(piv)
		colmax := pm
		for s := f.lp[k]; s < f.lp[k+1]; s++ {
			if v := absq(w[f.li[s]]); v > colmax {
				colmax = v
			}
		}
		if pm == 0 || math.IsNaN(pm) {
			f.valid = false
			f.clearW()
			return &PivotError{Index: col, Err: ErrSingular}
		}
		if pm < refactorGuard2*colmax {
			f.valid = false
			f.clearW()
			return errRepivot
		}
		f.ux[f.up[k+1]-1] = piv
		for s := f.lp[k]; s < f.lp[k+1]; s++ {
			f.lx[s] = w[f.li[s]] / piv
		}
		for t := f.up[k]; t < f.up[k+1]; t++ {
			w[f.ui[t]] = z
		}
		for s := f.lp[k]; s < f.lp[k+1]; s++ {
			w[f.li[s]] = z
		}
	}
	return nil
}

// solveInto solves A x = b with the stored factors: P A Q = L U, so
// L U (Qᵀx) = P b.
func (f *spLU[T]) solveInto(x, b []T) {
	n := f.n
	sx := f.sx
	for i := 0; i < n; i++ {
		sx[f.pinv[i]] = b[i]
	}
	for j := 0; j < n; j++ {
		xj := sx[j]
		for t := f.lp[j]; t < f.lp[j+1]; t++ {
			sx[f.li[t]] -= f.lx[t] * xj
		}
	}
	for j := n - 1; j >= 0; j-- {
		xj := sx[j] / f.ux[f.up[j+1]-1]
		sx[j] = xj
		for t := f.up[j]; t < f.up[j+1]-1; t++ {
			sx[f.ui[t]] -= f.ux[t] * xj
		}
	}
	for j := 0; j < n; j++ {
		x[f.q[j]] = sx[j]
	}
}

// sparseCore bundles assembly and factorization state shared by the real
// and complex exported backends.
type sparseCore[T scalar] struct {
	a     *spMatrix[T]
	lu    *spLU[T]
	stats SolverStats
}

func newSparseCore[T scalar](n int) sparseCore[T] {
	return sparseCore[T]{
		a:     newSPMatrix[T](n),
		lu:    newSPLU[T](n),
		stats: SolverStats{Kind: "sparse", N: n},
	}
}

// ensureCompiled freezes the assembled structure: triplets are merged
// into CSC form and a fresh fill-reducing order is computed. A no-op
// when the structure is already compiled.
func (s *sparseCore[T]) ensureCompiled() {
	if s.a.compiled {
		return
	}
	s.a.compile()
	s.lu.valid = false
	s.lu.q = minDegreeOrder(s.a.n, s.a.colp, s.a.rowi)
	s.stats.NNZ = len(s.a.rowi)
}

func (s *sparseCore[T]) factor() error {
	s.stats.Factorizations++
	s.ensureCompiled()
	var err error
	if !s.lu.valid {
		s.stats.Symbolic++
		err = s.lu.factor(s.a)
	} else if err = s.lu.refactor(s.a); errors.Is(err, errRepivot) {
		s.stats.Symbolic++
		err = s.lu.factor(s.a)
	}
	if err == nil {
		s.stats.FillNNZ = len(s.lu.li) + len(s.lu.ui)
	}
	return err
}

// SparseSolver is the sparse real backend implementing Solver. The first
// Factor after a structural change pays compilation, ordering and the
// symbolic factorization; subsequent Factors are numeric-only.
type SparseSolver struct {
	sparseCore[float64]
}

// NewSparseSolver returns a sparse backend for order-n real systems.
func NewSparseSolver(n int) *SparseSolver {
	return &SparseSolver{newSparseCore[float64](n)}
}

// Addto implements Stamper.
func (s *SparseSolver) Addto(i, j int, v float64) { s.a.addto(i, j, v) }

// Order implements Solver.
func (s *SparseSolver) Order() int { return s.a.n }

// Reset implements Solver.
func (s *SparseSolver) Reset() { s.a.zero() }

// Factor implements Solver.
func (s *SparseSolver) Factor() error { return s.factor() }

// SolveInto implements Solver.
func (s *SparseSolver) SolveInto(x, b Vector) error {
	if len(x) != s.a.n || len(b) != s.a.n {
		return errDimension
	}
	if !s.lu.valid {
		return errors.New("linalg: SparseSolver.SolveInto before successful Factor")
	}
	s.lu.solveInto(x, b)
	s.stats.Solves++
	return nil
}

// Stats implements Solver.
func (s *SparseSolver) Stats() SolverStats { return s.stats }

// SparseComplexSolver is the sparse complex backend implementing
// ComplexSolver, used by the AC sweep: the (G + jωC) pattern is fixed
// across frequency points, so every point after the first is a numeric
// refactorization plus one triangular solve.
type SparseComplexSolver struct {
	sparseCore[complex128]
}

// NewSparseComplexSolver returns a sparse backend for order-n complex
// systems.
func NewSparseComplexSolver(n int) *SparseComplexSolver {
	return &SparseComplexSolver{newSparseCore[complex128](n)}
}

// Addto implements CStamper.
func (s *SparseComplexSolver) Addto(i, j int, v complex128) { s.a.addto(i, j, v) }

// Order implements ComplexSolver.
func (s *SparseComplexSolver) Order() int { return s.a.n }

// Reset implements ComplexSolver.
func (s *SparseComplexSolver) Reset() { s.a.zero() }

// Factor implements ComplexSolver.
func (s *SparseComplexSolver) Factor() error { return s.factor() }

// SolveInto implements ComplexSolver.
func (s *SparseComplexSolver) SolveInto(x, b []complex128) error {
	if len(x) != s.a.n || len(b) != s.a.n {
		return errDimension
	}
	if !s.lu.valid {
		return errors.New("linalg: SparseComplexSolver.SolveInto before successful Factor")
	}
	s.lu.solveInto(x, b)
	s.stats.Solves++
	return nil
}

// Stats implements ComplexSolver.
func (s *SparseComplexSolver) Stats() SolverStats { return s.stats }

// CaptureValues compiles the assembled structure if necessary and copies
// the current matrix values, in the backend's stable storage order, into
// dst (reusing its capacity). Together with LoadValues it lets a caller
// snapshot two assemblies of a value-affine family A(t) = A0 + t·A1 —
// e.g. the AC system G + jωC over ω — and re-materialize any member
// with one linear pass instead of restamping every device.
func (s *SparseComplexSolver) CaptureValues(dst []complex128) []complex128 {
	s.ensureCompiled()
	return append(dst[:0], s.a.vals...)
}

// LoadValues overwrites the assembled values with base[k] + t·slope[k].
// It reports false — leaving the assembly untouched — when a captured
// length no longer matches the compiled structure (e.g. after growth).
func (s *SparseComplexSolver) LoadValues(base, slope []complex128, t float64) bool {
	if !s.a.compiled || len(base) != len(s.a.vals) || len(slope) != len(s.a.vals) {
		return false
	}
	for k, sl := range slope {
		s.a.vals[k] = base[k] + complex(real(sl)*t, imag(sl)*t)
	}
	return true
}
