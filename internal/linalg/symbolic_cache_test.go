package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// TestSymbolicCacheAdoptBitIdentical checks the cache's core contract:
// a fresh solver adopting a cached symbolic factorization produces
// bit-identical solutions to an uncached solver doing its own symbolic
// analysis, while doing zero symbolic work itself.
func TestSymbolicCacheAdoptBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 12
	a, b := randSystem(rng, n, 0.3)

	// Reference: uncached full factorization.
	ref := NewSparseSolver(n)
	stampDense(ref, a)
	if err := ref.Factor(); err != nil {
		t.Fatal(err)
	}
	xRef := NewVector(n)
	if err := ref.SolveInto(xRef, b); err != nil {
		t.Fatal(err)
	}

	// Seed the cache with an identical system, then freeze.
	cache := NewSymbolicCache()
	seed := NewSparseSolver(n)
	seed.SetSymbolicCache(cache)
	stampDense(seed, a)
	if err := seed.Factor(); err != nil {
		t.Fatal(err)
	}
	cache.Freeze()

	// Adopting solver: same stamps, symbolic work skipped entirely.
	sp := NewSparseSolver(n)
	sp.SetSymbolicCache(cache)
	stampDense(sp, a)
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	x := NewVector(n)
	if err := sp.SolveInto(x, b); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Float64bits(x[i]) != math.Float64bits(xRef[i]) {
			t.Fatalf("adopted solve not bit-identical at %d: %x vs %x", i, x[i], xRef[i])
		}
	}
	st := sp.Stats()
	if st.Symbolic != 0 {
		t.Fatalf("adopting solver did symbolic work: %+v", st)
	}
	if st.Factorizations != 1 || st.FillNNZ == 0 || st.NNZ == 0 {
		t.Fatalf("adopting solver stats implausible: %+v", st)
	}
}

// TestSymbolicCachePatternMismatch checks that a solver whose assembled
// pattern differs from every cached entry falls back to its own symbolic
// factorization and still solves correctly — and that a frozen cache
// does not learn the new pattern.
func TestSymbolicCachePatternMismatch(t *testing.T) {
	n := 10
	// Deterministic tridiagonal pattern, so the corner entry (0, n-1)
	// is guaranteed to be outside it.
	tridiag := func(s Stamper) {
		for i := 0; i < n; i++ {
			s.Addto(i, i, 4)
			if i > 0 {
				s.Addto(i, i-1, -1)
				s.Addto(i-1, i, -1)
			}
		}
	}
	b := NewVector(n)
	for i := range b {
		b[i] = float64(i + 1)
	}

	cache := NewSymbolicCache()
	seed := NewSparseSolver(n)
	seed.SetSymbolicCache(cache)
	tridiag(seed)
	if err := seed.Factor(); err != nil {
		t.Fatal(err)
	}
	cache.Freeze()

	solveExtra := func() SolverStats {
		sp := NewSparseSolver(n)
		sp.SetSymbolicCache(cache)
		tridiag(sp)
		sp.Addto(0, n-1, 0.5) // outside the seeded pattern
		if err := sp.Factor(); err != nil {
			t.Fatal(err)
		}
		x := NewVector(n)
		if err := sp.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
		// Verify against a dense solve of the same modified system.
		d := NewDenseSolver(n)
		tridiag(d)
		d.Addto(0, n-1, 0.5)
		if err := d.Factor(); err != nil {
			t.Fatal(err)
		}
		xd := NewVector(n)
		if err := d.SolveInto(xd, b); err != nil {
			t.Fatal(err)
		}
		if diff := maxRelDiff(x, xd); diff > 1e-9 {
			t.Fatalf("mismatch-pattern solve off by %g", diff)
		}
		return sp.Stats()
	}
	if st := solveExtra(); st.Symbolic != 1 {
		t.Fatalf("expected 1 symbolic factorization on cache miss, got %+v", st)
	}
	// The frozen cache must not have stored the new pattern: a second
	// solver with the same extra entry still pays its own symbolic.
	if st := solveExtra(); st.Symbolic != 1 {
		t.Fatalf("frozen cache learned a new pattern: %+v", st)
	}
}

// TestSymbolicCacheRepivotFallback seeds the cache with a diagonally
// dominant system, then adopts it for values that degenerate the cached
// pivot order. The adopting solver must detect the degeneration and redo
// a full factorization privately instead of producing garbage.
func TestSymbolicCacheRepivotFallback(t *testing.T) {
	n := 2
	cache := NewSymbolicCache()
	seed := NewSparseSolver(n)
	seed.SetSymbolicCache(cache)
	seed.Addto(0, 0, 10)
	seed.Addto(0, 1, 1)
	seed.Addto(1, 0, 1)
	seed.Addto(1, 1, 10)
	if err := seed.Factor(); err != nil {
		t.Fatal(err)
	}
	cache.Freeze()

	sp := NewSparseSolver(n)
	sp.SetSymbolicCache(cache)
	sp.Addto(0, 0, 1e-12)
	sp.Addto(0, 1, 1)
	sp.Addto(1, 0, 1)
	sp.Addto(1, 1, 1e-12)
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	x := NewVector(n)
	if err := sp.SolveInto(x, Vector{1, 2}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Fatalf("x = %v, want ~[2 1]", x)
	}
	if st := sp.Stats(); st.Symbolic != 1 {
		t.Fatalf("expected the repivot fallback to do 1 symbolic factorization: %+v", st)
	}
}

// TestSymbolicCacheComplexFlavor checks that the real and complex
// backends keep separate entries (same order, different scalar flavor)
// and that complex adoption is bit-identical too.
func TestSymbolicCacheComplexFlavor(t *testing.T) {
	n := 6
	stamp := func(s CStamper) {
		for i := 0; i < n; i++ {
			s.Addto(i, i, complex(2+float64(i), 0.3))
			s.Addto(i, (i+1)%n, complex(-1, 0.1*float64(i)))
		}
	}
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(float64(i+1), -0.5)
	}

	ref := NewSparseComplexSolver(n)
	stamp(ref)
	if err := ref.Factor(); err != nil {
		t.Fatal(err)
	}
	xRef := make([]complex128, n)
	if err := ref.SolveInto(xRef, b); err != nil {
		t.Fatal(err)
	}

	cache := NewSymbolicCache()
	seed := NewSparseComplexSolver(n)
	seed.SetSymbolicCache(cache)
	stamp(seed)
	if err := seed.Factor(); err != nil {
		t.Fatal(err)
	}
	// A real seeding with the same order must not collide with the
	// complex entry during pattern adoption.
	seedR := NewSparseSolver(n)
	seedR.SetSymbolicCache(cache)
	for i := 0; i < n; i++ {
		seedR.Addto(i, i, 3)
	}
	if err := seedR.Factor(); err != nil {
		t.Fatal(err)
	}
	cache.Freeze()

	sp := NewSparseComplexSolver(n)
	sp.SetSymbolicCache(cache)
	stamp(sp)
	if err := sp.Factor(); err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n)
	if err := sp.SolveInto(x, b); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Float64bits(real(x[i])) != math.Float64bits(real(xRef[i])) ||
			math.Float64bits(imag(x[i])) != math.Float64bits(imag(xRef[i])) {
			t.Fatalf("complex adopted solve not bit-identical at %d: %v vs %v", i, x[i], xRef[i])
		}
	}
	if st := sp.Stats(); st.Symbolic != 0 {
		t.Fatalf("complex adopting solver did symbolic work: %+v", st)
	}
}
