// Package wcd implements worst-case analysis: the worst-case operating
// point θ_wc over the operating range Θ (paper Eq. 2) and the worst-case
// statistical point s_wc — the most probable parameter set on the
// specification boundary (paper Eq. 8) — via the iterative linearization
// scheme of the worst-case-distance literature (refs. [10], [12]).
package wcd

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"specwise/internal/linalg"
	"specwise/internal/problem"
	"specwise/internal/sched"
)

// MarginFunc evaluates one spec's normalized margin (>= 0 means pass) at a
// point in the normalized statistical space. When Options.GradWorkers
// enables parallel gradients, the function must be safe for concurrent
// calls (the circuit evaluation layer builds a fresh circuit per call, so
// its margins are).
type MarginFunc func(s []float64) (float64, error)

// Options tunes the worst-case distance search.
type Options struct {
	MaxIter   int     // SQP-style iterations (default 15)
	Tol       float64 // |margin| convergence tolerance (default 1e-4)
	FDStep    float64 // finite-difference step in sigma units (default 0.1)
	MaxRadius float64 // clamp on ‖s_wc‖ for insensitive specs (default 6)
	Damping   float64 // step damping factor in (0,1] (default 1.0)
	// Starts is the number of search starts (default 3): the nominal
	// point plus randomized restarts. Restarts are essential for
	// mismatch-quadratic performances, where the nominal point sits on a
	// ridge with a vanishing first-order gradient (the pathology the
	// paper's ref. [12] addresses); the minimum-norm boundary point over
	// all converged starts is returned.
	Starts int
	// Seed drives the deterministic restart perturbations.
	Seed uint64
	// GradWorkers bounds the worker pool for finite-difference gradient
	// probes: 0 picks min(dim, GOMAXPROCS), 1 forces serial probing, and
	// larger values cap the pool explicitly. The probes are independent
	// and assembled in index order, so the gradient — and every result
	// derived from it — is identical for any worker count.
	GradWorkers int
	// Speculative marks a search running under the speculative pipeline:
	// the gradient pool spawns its extra workers ungated instead of
	// taking foreground scheduler slots. The margin function of a
	// speculative search blocks on a speculation-class slot per simulator
	// call, and an extra worker that sat on a foreground slot across that
	// wait would pin foreground capacity in a blocked state (freezing
	// speculation and degrading the authoritative run to serial). The
	// ungated extras hold nothing — simulator concurrency stays bounded
	// by the speculation gate inside the margin function. Results are
	// identical either way; only scheduling changes.
	Speculative bool
}

func (o *Options) defaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 15
	}
	if o.Tol == 0 {
		o.Tol = 1e-4
	}
	if o.FDStep == 0 {
		o.FDStep = 0.1
	}
	if o.MaxRadius == 0 {
		o.MaxRadius = 6
	}
	if o.Damping == 0 {
		o.Damping = 1
	}
	if o.Starts == 0 {
		o.Starts = 3
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
}

// WorstCase is the result of one spec's worst-case distance search.
type WorstCase struct {
	S linalg.Vector // worst-case point s_wc (on the boundary, or clamped)
	// Beta is the signed worst-case distance ±‖s_wc‖: positive when the
	// nominal design satisfies the spec, negative when it violates it.
	Beta float64
	// GradS is the margin gradient ∇_s m at s_wc.
	GradS linalg.Vector
	// MarginNominal is the margin at s = 0.
	MarginNominal float64
	// MarginWc is the residual margin at s_wc (≈ 0 when converged).
	MarginWc float64
	// Converged reports boundary convergence; false for clamped or
	// insensitive searches.
	Converged bool
	// Evals counts margin-function calls spent in the search.
	Evals int
}

// gradient computes a forward-difference margin gradient; f0 is the margin
// at s, reused to save one evaluation per component (step opts.FDStep,
// pool size opts.GradWorkers). A NaN probe (broken circuit) is retried in
// the opposite direction; if both sides fail the component is treated as
// locally insensitive rather than poisoning the whole gradient. With more
// than one worker the independent probes fan out over a bounded pool;
// each component's value lands at its own index and errors are reported
// in index order, so the result is bit-identical to the serial path
// regardless of scheduling.
func gradient(m MarginFunc, s []float64, f0 float64, opts Options) (linalg.Vector, int, error) {
	dim := len(s)
	h := opts.FDStep
	workers := opts.GradWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > dim {
		workers = dim
	}
	if workers <= 1 {
		return gradientSerial(m, s, f0, h)
	}

	g := linalg.NewVector(dim)
	errs := make([]error, dim)
	var evals atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	workFn := func() {
		work := make([]float64, dim)
		copy(work, s)
		for {
			i := int(next.Add(1)) - 1
			if i >= dim {
				return
			}
			fi, n, err := probe(m, work, s, i, f0, h)
			evals.Add(int64(n))
			if err != nil {
				errs[i] = err
				continue
			}
			g[i] = fi
		}
	}
	// Caller-runs pool gated by the process-wide compute scheduler:
	// components are claimed off a shared index and written by index, so
	// the gradient is bit-identical however many extras actually join.
	// Speculative searches spawn their extras ungated instead (see
	// Options.Speculative): a foreground slot held across the margin
	// function's blocking speculation-gate wait would pin foreground
	// capacity.
	sch := sched.Default()
	for extra := 0; extra < workers-1; extra++ {
		if opts.Speculative {
			wg.Add(1)
			go func() {
				defer wg.Done()
				workFn()
			}()
			continue
		}
		if !sch.TryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sch.Release()
			workFn()
		}()
	}
	workFn()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, int(evals.Load()), err
		}
	}
	return g, int(evals.Load()), nil
}

// gradientSerial is the single-goroutine probe loop.
func gradientSerial(m MarginFunc, s []float64, f0, h float64) (linalg.Vector, int, error) {
	g := linalg.NewVector(len(s))
	work := make([]float64, len(s))
	copy(work, s)
	evals := 0
	for i := range s {
		gi, n, err := probe(m, work, s, i, f0, h)
		evals += n
		if err != nil {
			return nil, evals, err
		}
		g[i] = gi
	}
	return g, evals, nil
}

// probe computes one gradient component using work as scratch (restored
// to s[i] before returning). It returns the component value and the
// number of margin evaluations spent.
func probe(m MarginFunc, work, s []float64, i int, f0, h float64) (float64, int, error) {
	work[i] = s[i] + h
	fi, err := m(work)
	evals := 1
	if err != nil {
		work[i] = s[i]
		return 0, evals, err
	}
	if math.IsNaN(fi) {
		work[i] = s[i] - h
		fi, err = m(work)
		evals++
		if err != nil {
			work[i] = s[i]
			return 0, evals, err
		}
		fi = f0 - (fi - f0) // mirror the backward difference
	}
	work[i] = s[i]
	if math.IsNaN(fi) {
		return 0, evals, nil
	}
	return (fi - f0) / h, evals, nil
}

// FindWorstCase solves Eq. 8 for one spec by the iterative linearization
// scheme, run from several starting points; the minimum-norm boundary
// point over all converged runs wins. Each run repeatedly linearizes the
// margin and jumps to the minimum-norm point of the linearized boundary
// { s | m0 + g·(s−s0) = 0 }, whose closed form is s* = g·(g·s0 − m0)/(g·g).
func FindWorstCase(m MarginFunc, dim int, opts Options) (*WorstCase, error) {
	opts.defaults()

	m0, err := m(make([]float64, dim))
	if err != nil {
		return nil, err
	}
	evals := 1

	var best *WorstCase
	rng := newSplitMix(opts.Seed)
	for start := 0; start < opts.Starts; start++ {
		s0 := linalg.NewVector(dim)
		if start > 0 {
			for i := range s0 {
				s0[i] = rng.norm()
			}
		}
		wc, n, err := searchFrom(m, s0, m0, opts)
		evals += n
		if err != nil {
			return nil, err
		}
		if better(wc, best) {
			best = wc
		}
		// A converged nominal-start search on a well-behaved (one-sided)
		// spec is already optimal in practice; restarts pay off when the
		// first run stalls or lands far out.
		if start == 0 && wc.Converged && wc.S.Norm2() < 0.75*opts.MaxRadius {
			restart, n2, err := searchFrom(m, perturb(wc.S, rng), m0, opts)
			evals += n2
			if err != nil {
				return nil, err
			}
			if better(restart, best) {
				best = restart
			}
			break
		}
	}
	best.MarginNominal = m0
	best.Evals = evals
	return best, nil
}

// better prefers converged boundary points of smaller norm.
func better(a, b *WorstCase) bool {
	if b == nil {
		return true
	}
	if a.Converged != b.Converged {
		return a.Converged
	}
	return a.S.Norm2() < b.S.Norm2()
}

// perturb returns a slightly randomized copy of s used to verify that a
// converged boundary point is not an artifact of the start.
func perturb(s linalg.Vector, r *splitMix) linalg.Vector {
	out := s.Clone()
	for i := range out {
		out[i] += 0.3 * r.norm()
	}
	return out
}

// splitMix is a tiny local PRNG so the package stays dependency-free.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (r *splitMix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitMix) norm() float64 {
	// Sum of 4 uniforms, centered and scaled: a light-tailed bell curve
	// good enough for restart dispersion.
	s := 0.0
	for i := 0; i < 4; i++ {
		s += float64(r.next()>>11) / (1 << 53)
	}
	return (s - 2) * math.Sqrt(3)
}

// searchFrom runs one damped linearize-and-project search from s0.
func searchFrom(m MarginFunc, s0 linalg.Vector, m0 float64, opts Options) (*WorstCase, int, error) {
	s := s0.Clone()
	evals := 0
	wc := &WorstCase{}

	margin := m0
	if s.Norm2() > 0 {
		var err error
		margin, err = m(s)
		if err != nil {
			return nil, evals, err
		}
		evals++
		// A randomized start on a broken circuit shrinks toward the
		// evaluable nominal point.
		for i := 0; math.IsNaN(margin) && i < 4; i++ {
			s.Scale(0.5)
			margin, err = m(s)
			if err != nil {
				return nil, evals, err
			}
			evals++
		}
		if math.IsNaN(margin) {
			s.Zero()
			margin = m0
		}
	}
	var grad linalg.Vector
	for iter := 0; iter < opts.MaxIter; iter++ {
		g, n, err := gradient(m, s, margin, opts)
		evals += n
		if err != nil {
			return nil, evals, err
		}
		gg := g.Dot(g)
		if gg < 1e-18 {
			if margin*m0 < 0 {
				// A dead plateau on the failing side (the circuit
				// collapsed and the margin flatlined): the boundary lies
				// between here and the origin — recover it by bisection,
				// then let the loop refresh the gradient there.
				var n int
				var err error
				margin, n, err = bisectBoundary(m, s, m0, margin, opts.Tol)
				evals += n
				if err != nil {
					return nil, evals, err
				}
				if math.Abs(margin) <= 10*opts.Tol {
					wc.Converged = true
				}
				gBnd, n2, err := gradient(m, s, margin, opts)
				evals += n2
				if err != nil {
					return nil, evals, err
				}
				wc.S = s
				wc.GradS = gBnd
				wc.MarginWc = margin
				wc.Beta = signedBeta(s.Norm2(), m0)
				return wc, evals, nil
			}
			// Insensitive direction on the passing side: the boundary is
			// (numerically) infinitely far away; clamp at MaxRadius.
			wc.S = s
			wc.GradS = g
			wc.MarginWc = margin
			wc.Beta = signedBeta(opts.MaxRadius, m0)
			wc.Converged = false
			return wc, evals, nil
		}
		// Minimum-norm point on the linearized boundary.
		target := g.Dot(s) - margin
		next := g.Clone().Scale(target / gg)
		// Damped move, clamped to the search radius; a step landing on a
		// broken circuit (NaN margin) is repeatedly halved.
		step := next.Sub(s)
		prev := s.Clone()
		scale := opts.Damping
		for attempt := 0; ; attempt++ {
			copy(s, prev)
			s.AddScaled(scale, step)
			if r := s.Norm2(); r > opts.MaxRadius {
				s.Scale(opts.MaxRadius / r)
			}
			margin, err = m(s)
			if err != nil {
				return nil, evals, err
			}
			evals++
			if !math.IsNaN(margin) {
				break
			}
			if attempt >= 4 {
				// Unable to step anywhere evaluable: report the last good
				// point as a clamped (non-converged) result.
				copy(s, prev)
				wc.S = s
				wc.GradS = g
				wc.MarginWc = 0
				wc.Beta = signedBeta(opts.MaxRadius, m0)
				return wc, evals, nil
			}
			scale /= 2
		}
		grad = g
		if math.Abs(margin) < opts.Tol && step.Norm2()*opts.Damping < 0.05 {
			wc.Converged = true
			break
		}
	}
	if grad == nil {
		return nil, evals, errors.New("wcd: no iterations performed")
	}
	// A stalled search that ended on the failing side while the nominal
	// passes (or vice versa) brackets the boundary along the ray from the
	// origin: recover the crossing by bisection — no gradients needed, so
	// dead plateaus (regions where the circuit collapses and the margin
	// flatlines) cannot trap it.
	if !wc.Converged && margin*m0 < 0 {
		var n int
		var err error
		margin, n, err = bisectBoundary(m, s, m0, margin, opts.Tol)
		evals += n
		if err != nil {
			return nil, evals, err
		}
		if math.Abs(margin) <= 10*opts.Tol {
			wc.Converged = true
		}
	}
	// Refresh the gradient at the final point for the linear model.
	gFinal, n, err := gradient(m, s, margin, opts)
	evals += n
	if err != nil {
		return nil, evals, err
	}
	wc.S = s
	wc.GradS = gFinal
	wc.MarginWc = margin
	wc.Beta = signedBeta(s.Norm2(), m0)
	return wc, evals, nil
}

// bisectBoundary shrinks s along the ray toward the origin until the
// margin changes sign, then bisects to the boundary. s is updated in
// place; the final margin is returned.
func bisectBoundary(m MarginFunc, s linalg.Vector, m0, mEnd, tol float64) (float64, int, error) {
	loT, hiT := 0.0, 1.0 // margin(loT·s) has m0's sign, margin(hiT·s) opposite
	endpoint := s.Clone()
	margin := mEnd
	evals := 0
	for i := 0; i < 40 && math.Abs(margin) > tol; i++ {
		mid := (loT + hiT) / 2
		copy(s, endpoint)
		s.Scale(mid)
		v, err := m(s)
		evals++
		if err != nil {
			return 0, evals, err
		}
		switch {
		case math.IsNaN(v):
			// Broken region counts as the failing side.
			if m0 >= 0 {
				hiT = mid
			} else {
				loT = mid
			}
		case (v >= 0) == (m0 >= 0):
			loT = mid
		default:
			hiT = mid
		}
		if !math.IsNaN(v) {
			margin = v
		}
	}
	copy(s, endpoint)
	s.Scale((loT + hiT) / 2)
	v, err := m(s)
	evals++
	if err != nil {
		return 0, evals, err
	}
	if !math.IsNaN(v) {
		margin = v
	}
	return margin, evals, nil
}

// signedBeta applies the paper's sign convention: β > 0 when the nominal
// design satisfies the spec.
func signedBeta(norm, marginNominal float64) float64 {
	if marginNominal >= 0 {
		return norm
	}
	return -norm
}

// ThetaResult maps each spec to its worst-case operating point.
type ThetaResult struct {
	// PerSpec[i] is θ_wc^(i), the operating point minimizing spec i's
	// margin over the enumerated corners of Θ.
	PerSpec [][]float64
	// Margins[i] is spec i's margin at its worst-case operating point
	// (at the statistical point the search was run with).
	Margins []float64
	// Evals counts simulator calls used.
	Evals int
}

// WorstCaseTheta implements Eq. 2 by corner enumeration: every vertex of
// the operating box plus the nominal point is simulated once and each
// spec keeps its own minimizer. With dim(Θ) operating parameters this
// costs 2^dim + 1 evaluations for all specs together, matching the
// paper's effort bound N* ≤ N·2^dim(Θ).
func WorstCaseTheta(p *problem.Problem, d, s []float64) (*ThetaResult, error) {
	nTheta := len(p.Theta)
	corners := enumerateCorners(p.Theta)
	corners = append(corners, p.NominalTheta())

	res := &ThetaResult{
		PerSpec: make([][]float64, p.NumSpecs()),
		Margins: make([]float64, p.NumSpecs()),
	}
	for i := range res.Margins {
		res.Margins[i] = math.Inf(1)
	}
	for _, theta := range corners {
		vals, err := p.Eval(d, s, theta)
		if err != nil {
			return nil, err
		}
		res.Evals++
		for i, spec := range p.Specs {
			mg := spec.Margin(vals[i])
			if math.IsNaN(mg) {
				// A corner where the circuit breaks outright is the worst
				// corner by definition.
				mg = math.Inf(-1)
			}
			if mg < res.Margins[i] {
				res.Margins[i] = mg
				res.PerSpec[i] = theta
			}
		}
	}
	_ = nTheta
	return res, nil
}

// CornerThetas returns the exact evaluation points of WorstCaseTheta —
// every vertex of the operating box plus the nominal point, in
// enumeration order. The speculative pipeline uses it to pre-simulate
// the (serial) corner sweep in parallel; the points are mutually
// independent, so warming order cannot change any result.
func CornerThetas(p *problem.Problem) [][]float64 {
	return append(enumerateCorners(p.Theta), p.NominalTheta())
}

// enumerateCorners returns the 2^n vertices of the operating box.
func enumerateCorners(ranges []problem.OpRange) [][]float64 {
	n := len(ranges)
	if n == 0 {
		return [][]float64{{}}
	}
	out := make([][]float64, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		theta := make([]float64, n)
		for j, r := range ranges {
			if mask&(1<<j) != 0 {
				theta[j] = r.Hi
			} else {
				theta[j] = r.Lo
			}
		}
		out = append(out, theta)
	}
	return out
}

// DistinctThetas deduplicates the per-spec worst-case operating points,
// returning the unique set and the mapping spec → set index. The
// Monte-Carlo verifier uses it to share simulations between specs with a
// common worst-case corner.
func DistinctThetas(perSpec [][]float64) (unique [][]float64, specToUnique []int) {
	specToUnique = make([]int, len(perSpec))
	for i, th := range perSpec {
		found := -1
		for u, ut := range unique {
			if equalVec(ut, th) {
				found = u
				break
			}
		}
		if found < 0 {
			unique = append(unique, th)
			found = len(unique) - 1
		}
		specToUnique[i] = found
	}
	return unique, specToUnique
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RefineTheta improves each spec's worst-case operating point by cyclic
// golden-section minimization over the operating box, starting from the
// corner-enumeration result. Corner enumeration (Eq. 2's usual
// implementation) assumes the worst case sits on a vertex; performances
// like phase margin can dip *inside* the range, which this refinement
// catches at a cost of ~evalsPerAxis simulations per spec and axis.
func RefineTheta(p *problem.Problem, d, s []float64, res *ThetaResult, passes int) error {
	if passes <= 0 {
		return nil
	}
	const golden = 0.6180339887498949
	for i := range p.Specs {
		i := i
		theta := append([]float64(nil), res.PerSpec[i]...)
		margin := func(th []float64) (float64, error) {
			vals, err := p.Eval(d, s, th)
			if err != nil {
				return 0, err
			}
			res.Evals++
			m := p.Specs[i].Margin(vals[i])
			if math.IsNaN(m) {
				m = math.Inf(-1)
			}
			return m, nil
		}
		best := res.Margins[i]
		for pass := 0; pass < passes; pass++ {
			for j, rng := range p.Theta {
				a, b := rng.Lo, rng.Hi
				if a == b {
					continue
				}
				// Golden-section MINIMIZATION of the margin along axis j.
				x1 := b - golden*(b-a)
				x2 := a + golden*(b-a)
				work := append([]float64(nil), theta...)
				work[j] = x1
				f1, err := margin(work)
				if err != nil {
					return err
				}
				work[j] = x2
				f2, err := margin(work)
				if err != nil {
					return err
				}
				for it := 0; it < 8; it++ {
					if f1 < f2 {
						b, x2, f2 = x2, x1, f1
						x1 = b - golden*(b-a)
						work[j] = x1
						if f1, err = margin(work); err != nil {
							return err
						}
					} else {
						a, x1, f1 = x1, x2, f2
						x2 = a + golden*(b-a)
						work[j] = x2
						if f2, err = margin(work); err != nil {
							return err
						}
					}
				}
				cand := x1
				fc := f1
				if f2 < f1 {
					cand, fc = x2, f2
				}
				if fc < best {
					best = fc
					theta[j] = cand
				}
			}
		}
		if best < res.Margins[i] {
			res.Margins[i] = best
			res.PerSpec[i] = theta
		}
	}
	return nil
}
