package wcd

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"specwise/internal/problem"
	"specwise/internal/sched"
)

// linear margin m(s) = m0 + g·s has its worst-case point at
// s_wc = −m0·g/‖g‖² and β = |m0|/‖g‖ (signed by m0).
func TestFindWorstCaseLinear(t *testing.T) {
	g := []float64{3, 4} // ‖g‖ = 5
	m0 := 2.0
	m := func(s []float64) (float64, error) {
		v := m0
		for i := range s {
			v += g[i] * s[i]
		}
		return v, nil
	}
	wc, err := FindWorstCase(m, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !wc.Converged {
		t.Error("linear search must converge")
	}
	if math.Abs(wc.Beta-0.4) > 1e-3 {
		t.Errorf("beta = %v want 0.4", wc.Beta)
	}
	// s_wc = −0.4·(3/5, 4/5) = (−0.24, −0.32)
	if math.Abs(wc.S[0]+0.24) > 1e-3 || math.Abs(wc.S[1]+0.32) > 1e-3 {
		t.Errorf("s_wc = %v", wc.S)
	}
	if math.Abs(wc.MarginWc) > 1e-3 {
		t.Errorf("boundary margin = %v", wc.MarginWc)
	}
}

func TestFindWorstCaseViolatedNominal(t *testing.T) {
	// Failing nominal: m(0) = −1, gradient 2 → boundary at s = 0.5, β = −0.5.
	m := func(s []float64) (float64, error) { return -1 + 2*s[0], nil }
	wc, err := FindWorstCase(m, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wc.Beta >= 0 {
		t.Errorf("beta = %v must be negative for a failing nominal", wc.Beta)
	}
	if math.Abs(wc.Beta+0.5) > 1e-3 {
		t.Errorf("beta = %v want -0.5", wc.Beta)
	}
}

func TestFindWorstCaseNonlinear(t *testing.T) {
	// m(s) = 4 − s1² − (s2−1)²·0 … use a curved boundary:
	// m(s) = 2 − s1 − 0.2·s1² − 0.5·s2. Boundary nontrivial; check the
	// returned point actually lies on it and is locally norm-minimal
	// versus axis perturbations along the boundary.
	m := func(s []float64) (float64, error) {
		return 2 - s[0] - 0.2*s[0]*s[0] - 0.5*s[1], nil
	}
	wc, err := FindWorstCase(m, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !wc.Converged {
		t.Fatal("did not converge")
	}
	if v, _ := m(wc.S); math.Abs(v) > 1e-3 {
		t.Errorf("not on boundary: margin %v", v)
	}
	if wc.Beta <= 0 {
		t.Errorf("beta = %v must be positive", wc.Beta)
	}
	// The worst-case point must be no farther than a reference boundary
	// point found by a crude scan along the gradient direction.
	ref := []float64{1.2, 1.0}
	refNorm := math.Hypot(ref[0], ref[1])
	for v, _ := m(ref); v > 0; v, _ = m(ref) {
		ref[0] += 0.01
		ref[1] += 0.01
		refNorm = math.Hypot(ref[0], ref[1])
	}
	if wc.Beta > refNorm+1e-6 {
		t.Errorf("beta %v exceeds reference boundary distance %v", wc.Beta, refNorm)
	}
}

func TestFindWorstCaseInsensitive(t *testing.T) {
	m := func(s []float64) (float64, error) { return 5, nil } // constant
	wc, err := FindWorstCase(m, 3, Options{MaxRadius: 8})
	if err != nil {
		t.Fatal(err)
	}
	if wc.Converged {
		t.Error("constant margin cannot converge to a boundary")
	}
	if wc.Beta != 8 {
		t.Errorf("beta = %v want clamp 8", wc.Beta)
	}
}

func TestFindWorstCaseQuadraticBowl(t *testing.T) {
	// CMRR-like symmetric performance: m = 1 − (s1−s2)²/4. Boundary at
	// |s1−s2| = 2; nearest points are (1,−1) and (−1,1), both with β = √2.
	m := func(s []float64) (float64, error) {
		d := s[0] - s[1]
		return 1 - d*d/4, nil
	}
	wc, err := FindWorstCase(m, 2, Options{MaxIter: 60, Damping: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m(wc.S); math.Abs(v) > 5e-3 {
		t.Errorf("not on boundary: %v (s=%v)", v, wc.S)
	}
	if math.Abs(wc.Beta-math.Sqrt2) > 0.15 {
		t.Errorf("beta = %v want √2", wc.Beta)
	}
	// Mismatch signature: components equal magnitude, opposite sign.
	if math.Abs(wc.S[0]+wc.S[1]) > 0.1 {
		t.Errorf("worst-case point not on the mismatch line: %v", wc.S)
	}
}

// Property: for random linear margins, β = |m0|/‖g‖ exactly.
func TestWorstCaseLinearProperty(t *testing.T) {
	f := func(m0raw, g1raw, g2raw, g3raw float64) bool {
		m0 := math.Mod(m0raw, 5)
		g := []float64{math.Mod(g1raw, 3), math.Mod(g2raw, 3), math.Mod(g3raw, 3)}
		norm := math.Sqrt(g[0]*g[0] + g[1]*g[1] + g[2]*g[2])
		if norm < 0.1 || math.IsNaN(m0) || math.IsNaN(norm) {
			return true
		}
		m := func(s []float64) (float64, error) {
			v := m0
			for i := range s {
				v += g[i] * s[i]
			}
			return v, nil
		}
		wc, err := FindWorstCase(m, 3, Options{MaxRadius: 100})
		if err != nil {
			return false
		}
		want := m0 / norm
		if m0 < 0 {
			want = m0 / norm
		}
		return math.Abs(wc.Beta-want) < 1e-2*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWorstCaseTheta(t *testing.T) {
	// Performance f = θ1 − θ2 with spec f >= 0: worst corner is
	// (θ1 = Lo, θ2 = Hi).
	p := &problem.Problem{
		Name:  "analytic",
		Specs: []problem.Spec{{Name: "f", Kind: problem.GE, Bound: 0}},
		Theta: []problem.OpRange{
			{Name: "t1", Nominal: 0.5, Lo: 0, Hi: 1},
			{Name: "t2", Nominal: 0.5, Lo: 0, Hi: 1},
		},
		StatNames: []string{"s1"},
		Eval: func(d, s, th []float64) ([]float64, error) {
			return []float64{th[0] - th[1]}, nil
		},
	}
	res, err := WorstCaseTheta(p, nil, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	th := res.PerSpec[0]
	if th[0] != 0 || th[1] != 1 {
		t.Errorf("worst-case theta = %v want [0 1]", th)
	}
	if res.Margins[0] != -1 {
		t.Errorf("worst margin = %v want -1", res.Margins[0])
	}
	if res.Evals != 5 { // 4 corners + nominal
		t.Errorf("evals = %d want 5", res.Evals)
	}
}

func TestDistinctThetas(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{1, 3}
	unique, idx := DistinctThetas([][]float64{a, b, a, a})
	if len(unique) != 2 {
		t.Fatalf("unique = %d want 2", len(unique))
	}
	if idx[0] != idx[2] || idx[0] != idx[3] || idx[0] == idx[1] {
		t.Errorf("mapping = %v", idx)
	}
}

func TestEnumerateCornersEmpty(t *testing.T) {
	c := enumerateCorners(nil)
	if len(c) != 1 || len(c[0]) != 0 {
		t.Errorf("empty enumeration = %v", c)
	}
}

// A margin that collapses to a dead plateau beyond a cliff: the nominal
// passes, the plateau fails with zero gradient. The search must recover
// the true boundary by bisection along the ray.
func TestWorstCaseBisectionRecovery(t *testing.T) {
	m := func(s []float64) (float64, error) {
		r := math.Hypot(s[0], s[1])
		if r > 2 {
			return -50, nil // dead plateau: constant, failing
		}
		return 1 - 0.2*r, nil // gentle slope, boundary never reached before the cliff
	}
	wc, err := FindWorstCase(m, 2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The true failure boundary is the cliff at r = 2 (margin jumps from
	// +0.6 to −50); bisection must land close to it.
	if wc.Beta < 1.5 || wc.Beta > 2.6 {
		t.Errorf("beta = %v want ≈2 (the cliff)", wc.Beta)
	}
	if v, _ := m(wc.S); v < -1 && !wc.Converged {
		t.Errorf("landed deep in the dead plateau: margin %v", v)
	}
}

// NaN regions (broken circuits) must not poison the search: the margin is
// NaN beyond radius 3, with a genuine boundary at radius 2.
func TestWorstCaseNaNRegion(t *testing.T) {
	m := func(s []float64) (float64, error) {
		r := math.Hypot(s[0], s[1])
		if r > 3 {
			return math.NaN(), nil
		}
		return 2 - s[0], nil // boundary at s0 = 2
	}
	wc, err := FindWorstCase(m, 2, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wc.Beta-2) > 0.2 {
		t.Errorf("beta = %v want 2", wc.Beta)
	}
	if math.IsNaN(wc.MarginWc) || math.IsNaN(wc.GradS[0]) {
		t.Error("NaN leaked into the result")
	}
}

// A margin NaN everywhere except a small pocket around the origin: the
// search cannot cross the boundary and must return a clamped result
// rather than error or NaN.
func TestWorstCaseMostlyBrokenRegion(t *testing.T) {
	m := func(s []float64) (float64, error) {
		r := math.Hypot(s[0], s[1])
		if r > 0.5 {
			return math.NaN(), nil
		}
		return 5 + 0.01*s[0], nil
	}
	wc, err := FindWorstCase(m, 2, Options{Seed: 8, MaxIter: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(wc.Beta) {
		t.Error("beta is NaN")
	}
	if wc.Beta < 0 {
		t.Errorf("nominal passes; beta must be positive, got %v", wc.Beta)
	}
}

// A spec whose worst operating point is strictly inside the range: corner
// enumeration misses it, the golden-section refinement must find it.
func TestRefineThetaInteriorMinimum(t *testing.T) {
	p := &problem.Problem{
		Name:      "interior",
		Specs:     []problem.Spec{{Name: "pm", Kind: problem.GE, Bound: 0}},
		Theta:     []problem.OpRange{{Name: "t", Nominal: 0, Lo: -1, Hi: 1}},
		StatNames: []string{"s"},
		Eval: func(d, s, th []float64) ([]float64, error) {
			x := th[0] - 0.6
			return []float64{2*x*x - 0.5}, nil
		},
	}
	res, err := WorstCaseTheta(p, nil, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	// Corner +1 gives 2·0.16−0.5 = −0.18; nominal 0 gives +0.22; the true
	// interior minimum at θ = 0.6 is −0.5 and unseen by enumeration.
	if res.Margins[0] < -0.2 {
		t.Fatalf("corner enumeration found the interior minimum by accident: %v", res.Margins[0])
	}
	if err := RefineTheta(p, nil, []float64{0}, res, 2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PerSpec[0][0]-0.6) > 0.05 {
		t.Errorf("refined theta = %v want 0.6", res.PerSpec[0][0])
	}
	if math.Abs(res.Margins[0]+0.5) > 0.01 {
		t.Errorf("refined margin = %v want -0.5", res.Margins[0])
	}
}

// Refinement must never make the worst case better (less worst).
func TestRefineThetaMonotone(t *testing.T) {
	p := &problem.Problem{
		Name:      "mono",
		Specs:     []problem.Spec{{Name: "f", Kind: problem.GE, Bound: 0}},
		Theta:     []problem.OpRange{{Name: "t", Nominal: 0, Lo: -1, Hi: 1}},
		StatNames: []string{"s"},
		Eval: func(d, s, th []float64) ([]float64, error) {
			return []float64{1 + th[0]}, nil // worst at the corner already
		},
	}
	res, err := WorstCaseTheta(p, nil, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	before := res.Margins[0]
	if err := RefineTheta(p, nil, []float64{0}, res, 1); err != nil {
		t.Fatal(err)
	}
	if res.Margins[0] > before {
		t.Errorf("refinement worsened the worst case: %v -> %v", before, res.Margins[0])
	}
}

// TestSpeculativeGradientHoldsNoForegroundSlots: a search marked
// Options.Speculative must fan its gradient probes out without taking
// foreground scheduler slots — a speculative extra that held one while
// blocking on the speculation gate inside the margin function would pin
// foreground capacity (the review-case freeze). The ungated extras must
// still actually run in parallel.
func TestSpeculativeGradientHoldsNoForegroundSlots(t *testing.T) {
	g := []float64{1, 2, 3, 4, 5, 6}
	var inFlight, maxInFlight, sawForeground atomic.Int64
	m := func(s []float64) (float64, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := maxInFlight.Load()
			if n <= old || maxInFlight.CompareAndSwap(old, n) {
				break
			}
		}
		if fg := sched.Default().Stats().FgInUse; fg > 0 {
			sawForeground.Store(int64(fg))
		}
		time.Sleep(200 * time.Microsecond) // let the probes overlap
		v := 2.0
		for i := range s {
			v += g[i] * s[i]
		}
		return v, nil
	}
	if _, err := FindWorstCase(m, len(g), Options{GradWorkers: 4, Speculative: true}); err != nil {
		t.Fatal(err)
	}
	if fg := sawForeground.Load(); fg != 0 {
		t.Errorf("speculative gradient held %d foreground slots", fg)
	}
	if maxInFlight.Load() < 2 {
		t.Errorf("ungated extras never ran concurrently (max in flight %d)", maxInFlight.Load())
	}
}
