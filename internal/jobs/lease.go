package jobs

// The lease layer: remote pull-workers claim queued jobs over HTTP
// (internal/server's /v1/worker endpoints), keep them alive with
// heartbeats, and post back a result or failure. A lease that goes
// silent past its TTL is expired by the manager's sweeper: the job is
// requeued with a bounded retry count, so a killed worker costs one
// lease TTL, not the job. Stale claimants — a worker whose lease was
// expired, canceled or superseded — are refused with ErrLeaseLost on
// every operation, which is what makes completion exactly-once.

import (
	"fmt"
	"time"
)

// Lease is one granted claim: everything a remote worker needs to run
// the job (the original request; the worker resolves the problem with
// the same ResolveProblem the manager uses) and to stay its lease.
type Lease struct {
	JobID   string `json:"job"`
	LeaseID string `json:"lease"`
	Kind    string `json:"kind"`
	// Deadline is when the lease expires without a heartbeat, on the
	// manager's clock; TTLSeconds is the renewal budget, from which
	// workers derive their heartbeat cadence.
	Deadline   time.Time `json:"deadline"`
	TTLSeconds float64   `json:"ttlSeconds"`
	Request    Request   `json:"request"`
	// ProblemHash identifies the job's problem (circuit or spec, nothing
	// else): workers running a shared evaluation cache shard it by this
	// key, so sweep members claimed by the same worker reuse each
	// other's simulations. Older workers ignore the field.
	ProblemHash string `json:"problemHash,omitempty"`
	// Lane is the priority lane the job was queued in. Older workers
	// ignore the field.
	Lane string `json:"lane,omitempty"`
}

// Claim hands the next queued job (weighted round-robin across the
// priority lanes) to a remote worker under a fresh lease. It returns
// (nil, nil) when no job is queued — the worker polls again later.
func (m *Manager) Claim(worker string) (*Lease, error) {
	return m.ClaimLane(worker, "")
}

// ClaimLane is Claim with a lane filter: a non-empty lane restricts the
// pick to that lane's queue, so a fleet can dedicate workers to keeping
// verify traffic flowing under heavy optimize load. The claimed job
// transitions to StateRunning exactly as a locally picked job would.
func (m *Manager) ClaimLane(worker, lane string) (*Lease, error) {
	if err := m.ctx.Err(); err != nil {
		return nil, ErrClosed
	}
	if worker == "" {
		return nil, fmt.Errorf("jobs: worker name required")
	}
	if lane != "" && !ValidLane(lane) {
		return nil, fmt.Errorf("jobs: unknown lane %q (want %q or %q)", lane, LaneVerify, LaneOptimize)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		job := m.takeLocked(lane)
		if job == nil {
			return nil, nil
		}
		job.mu.Lock()
		if job.state != StateQueued { // raced a cancellation
			job.mu.Unlock()
			continue
		}
		m.leaseSeq++
		now := m.now()
		job.state = StateRunning
		job.worker = worker
		job.leaseID = fmt.Sprintf("lease-%06d", m.leaseSeq)
		job.leaseSeq = m.leaseSeq
		job.leaseDeadline = now.Add(m.cfg.LeaseTTL)
		job.attempts++
		job.started = now
		// Journal the grant so a daemon restart within the TTL leaves the
		// lease reattachable: the recovered job keeps this leaseID and
		// deadline, and the worker's heartbeats and result post are honored
		// instead of 404ing.
		m.journal(&Record{Kind: RecLease, Job: job.id, Worker: worker, Lease: job.leaseID, //nolint:errcheck // degraded store: logged once
			LeaseSeq: job.leaseSeq, Deadline: job.leaseDeadline, Attempts: job.attempts, Time: now})
		lease := &Lease{
			JobID:       job.id,
			LeaseID:     job.leaseID,
			Kind:        job.req.Kind,
			Deadline:    job.leaseDeadline,
			TTLSeconds:  m.cfg.LeaseTTL.Seconds(),
			Request:     job.req,
			ProblemHash: job.problemHash,
			Lane:        job.lane,
		}
		job.notifyLocked()
		job.mu.Unlock()
		m.metrics.queued.Add(-1)
		m.metrics.running.Add(1)
		m.metrics.claims.Add(1)
		m.metrics.leasesActive.Add(1)
		m.metrics.workerStat(worker).Claims.Add(1)
		return lease, nil
	}
}

// Heartbeat extends a lease by one TTL and returns the new deadline.
// ErrLeaseLost tells the worker its lease is gone (expired, canceled or
// requeued) and it should abandon the job.
func (m *Manager) Heartbeat(jobID, leaseID string) (time.Time, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[jobID]
	if !ok {
		return time.Time{}, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.leaseID != leaseID {
		return time.Time{}, ErrLeaseLost
	}
	j.leaseDeadline = m.now().Add(m.cfg.LeaseTTL)
	m.journal(&Record{Kind: RecHeartbeat, Job: jobID, Lease: leaseID, Deadline: j.leaseDeadline}) //nolint:errcheck // degraded store: logged once
	return j.leaseDeadline, nil
}

// Complete finishes a leased job with its result. The lease must still
// be current: a worker whose lease expired (and whose job may already
// have been re-run elsewhere) is refused, so every job completes
// exactly once.
func (m *Manager) Complete(jobID, leaseID string, res *Result) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[jobID]
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.leaseID != leaseID {
		return ErrLeaseLost
	}
	busy := m.now().Sub(j.started)
	j.result = res
	m.finishLocked(j, StateDone, "")
	m.metrics.leasesActive.Add(-1)
	m.metrics.wallNanos.Add(int64(busy))
	ws := m.metrics.workerStat(j.worker)
	ws.Done.Add(1)
	ws.BusyNanos.Add(int64(busy))
	return nil
}

// Fail records a worker-reported execution failure. Failures are
// deterministic (the worker retries transient transport errors itself),
// so the job is not requeued.
func (m *Manager) Fail(jobID, leaseID, msg string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[jobID]
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.leaseID != leaseID {
		return ErrLeaseLost
	}
	busy := m.now().Sub(j.started)
	m.finishLocked(j, StateFailed, fmt.Sprintf("worker %q: %s", j.worker, msg))
	m.metrics.leasesActive.Add(-1)
	m.metrics.wallNanos.Add(int64(busy))
	ws := m.metrics.workerStat(j.worker)
	ws.Failed.Add(1)
	ws.BusyNanos.Add(int64(busy))
	return nil
}
