package jobs

import (
	"context"

	"specwise/internal/core"
	"specwise/internal/evalcache"
	"specwise/internal/report"
	"specwise/internal/wcd"

	// Register the built-in search backends: any process that executes
	// jobs — the daemon's local pool and the remote pull-workers alike —
	// must resolve every algorithm a request may name.
	_ "specwise/internal/search"
)

// ExecEnv carries pool-level execution defaults. Every knob here is
// behaviour-preserving: a request produces a bit-identical result
// envelope whichever pool — the in-process goroutines or a remote
// pull-worker with entirely different settings — executes it (the
// wall-clock solver timings in the perf block aside).
type ExecEnv struct {
	// VerifyWorkers is the Monte-Carlo verification pool default for
	// requests that do not set options.verifyWorkers (0 = GOMAXPROCS).
	VerifyWorkers int
	// SweepWorkers is the per-frequency AC-sweep fan-out default for
	// requests that do not set options.sweepWorkers (0 = GOMAXPROCS).
	SweepWorkers int
	// Speculate turns on the predict-ahead evaluation pipeline for
	// optimize requests that leave options.speculate unset — an explicit
	// options.speculate (true or false) always wins, so a request can opt
	// out of a speculating fleet. SpecWorkers is the speculation-pool
	// default for requests that do not set options.specWorkers
	// (0 = GOMAXPROCS). Behaviour-preserving like the other knobs:
	// results and simulation counts are bit-identical.
	Speculate   bool
	SpecWorkers int
	// Progress, when non-nil, receives optimizer milestones. Remote
	// workers leave it nil — progress is not streamed back over the
	// pull protocol.
	Progress func(core.ProgressEvent)
	// EvalCache, when non-nil, is the shared evaluation cache view this
	// execution memoizes through — a problem-scoped handle on the
	// manager's (or remote worker's) process-wide shard, so sweep
	// members reuse each other's simulations. nil keeps the default
	// per-run cache. Behaviour-preserving like every other ExecEnv knob:
	// the cache keys on exact (d, s, θ) bit patterns, so results are
	// bit-identical with or without sharing.
	EvalCache evalcache.Wrapper
}

// Execute runs one resolved request end to end. It is the single
// execution path shared by the manager's local pool and the remote
// pull-workers, which is what makes the two interchangeable. The
// returned core.Result is non-nil only for optimize-kind requests (the
// manager folds its reuse counters into the service metrics; remote
// workers ignore it).
func Execute(ctx context.Context, p *core.Problem, req *Request, env ExecEnv) (*Result, *core.Result, error) {
	switch req.Kind {
	case KindVerify:
		n := req.Options.VerifySamples
		if n == 0 {
			n = 300
		}
		if env.EvalCache != nil {
			// Memoize the verification through the shared cache: the
			// worst-case analysis and the Monte-Carlo samples are keyed the
			// same way the optimizer's are, so verify jobs both profit from
			// and feed the sweep's working set.
			p = env.EvalCache.Wrap(p)
		}
		d := p.InitialDesign()
		zeroS := make([]float64, p.NumStat())
		thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
		if err != nil {
			return nil, nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		workers := req.Options.VerifyWorkers
		if workers <= 0 {
			workers = env.VerifyWorkers
		}
		mc, err := core.VerifyMCContext(ctx, p, d, thetaRes.PerSpec, n, req.Options.seed(), workers)
		if err != nil {
			return nil, nil, err
		}
		return &Result{Kind: KindVerify, Verification: report.JSONVerification(p, mc)}, nil, nil

	default: // KindOptimize
		opts := req.Options.Core()
		if opts.VerifyWorkers <= 0 {
			opts.VerifyWorkers = env.VerifyWorkers
		}
		if opts.SweepWorkers <= 0 {
			opts.SweepWorkers = env.SweepWorkers
		}
		// Tri-state merge: an explicit request value (true or false) wins;
		// only an absent options.speculate follows the pool default, so a
		// client can opt one request out of a -speculate fleet.
		opts.Speculate = req.Options.speculateOr(env.Speculate)
		if opts.SpecWorkers <= 0 {
			opts.SpecWorkers = env.SpecWorkers
		}
		opts.EvalCache = env.EvalCache
		opts.Progress = env.Progress
		opt, err := core.NewOptimizer(p, opts)
		if err != nil {
			return nil, nil, err
		}
		res, err := opt.RunContext(ctx)
		if err != nil {
			return nil, nil, err
		}
		return &Result{Kind: KindOptimize, Optimization: report.JSONResult(res)}, res, nil
	}
}
