package jobs

// The crash-recovery suite. memStore is a JSON-round-tripping in-memory
// Store: every record crosses the same encoding boundary as the real
// single-file WAL (internal/store, which has its own suite), and
// crashCopy models a SIGKILL — a second store holding exactly the
// records that were acknowledged before the crash, nothing else.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"specwise/internal/core"
)

type memStore struct {
	mu        sync.Mutex
	frames    []json.RawMessage
	snapshots int64
	bytes     int64
	appendErr error // injected Append failure
}

func (s *memStore) Append(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.appendErr != nil {
		return s.appendErr
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	s.frames = append(s.frames, b)
	s.bytes += int64(len(b))
	return nil
}

func (s *memStore) Replay(fn func(*Record) error) error {
	s.mu.Lock()
	frames := append([]json.RawMessage(nil), s.frames...)
	s.mu.Unlock()
	for _, b := range frames {
		rec := new(Record)
		if err := json.Unmarshal(b, rec); err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

func (s *memStore) Compact(recs []*Record) error {
	frames := make([]json.RawMessage, 0, len(recs))
	var bytes int64
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		frames = append(frames, b)
		bytes += int64(len(b))
	}
	s.mu.Lock()
	s.frames = frames
	s.bytes = bytes
	s.snapshots++
	s.mu.Unlock()
	return nil
}

func (s *memStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Records: int64(len(s.frames)), Bytes: s.bytes, Snapshots: s.snapshots}
}

func (s *memStore) Close() error { return nil }

// crashCopy snapshots the acknowledged records, as a SIGKILL would
// leave them on disk.
func (s *memStore) crashCopy() *memStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &memStore{
		frames:    append([]json.RawMessage(nil), s.frames...),
		bytes:     s.bytes,
		snapshots: s.snapshots,
	}
}

// persistManager opens a manager journaling into st.
func persistManager(t *testing.T, cfg Config, st Store, delay time.Duration) *Manager {
	t.Helper()
	cfg.Store = st
	if cfg.Resolve == nil {
		cfg.Resolve = func(req *Request) (*core.Problem, error) {
			return testProblem(delay), nil
		}
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// resultJSON canonicalizes a result for bit-identity comparison.
func resultJSON(t *testing.T, res *Result) string {
	t.Helper()
	cp := *res
	if cp.Optimization != nil {
		o := *cp.Optimization
		o.StripVolatile()
		cp.Optimization = &o
	}
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRecoveryRestoresTerminalJobsAndWarmsCache(t *testing.T) {
	st := &memStore{}
	m1 := persistManager(t, Config{Workers: 1}, st, 0)
	job, err := m1.Submit(Request{Circuit: "analytic", Options: quickOpts})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitState(t, job, 10*time.Second); got != StateDone {
		t.Fatalf("job state = %v, want done", got)
	}
	res1, _ := job.Result()
	want := resultJSON(t, res1)
	// A second, identical submission settles from the cache pre-crash.
	hit, err := m1.Submit(Request{Circuit: "analytic", Options: quickOpts})
	if err != nil {
		t.Fatal(err)
	}
	if hit.State() != StateDone || !hit.Status().Cached {
		t.Fatalf("resubmission not served from cache: %+v", hit.Status())
	}

	m2 := persistManager(t, Config{Workers: 1}, st.crashCopy(), 0)
	if got := m2.Metrics().RecoveredJobs(); got != 2 {
		t.Fatalf("recovered jobs = %d, want 2", got)
	}
	for _, id := range []string{job.ID(), hit.ID()} {
		rj, ok := m2.Get(id)
		if !ok {
			t.Fatalf("job %s lost in recovery", id)
		}
		if rj.State() != StateDone {
			t.Fatalf("job %s state = %v after recovery, want done", id, rj.State())
		}
		rres, ok := rj.Result()
		if !ok || rres == nil {
			t.Fatalf("job %s lost its result in recovery", id)
		}
		if got := resultJSON(t, rres); got != want {
			t.Errorf("job %s result changed across recovery:\n got %s\nwant %s", id, got, want)
		}
	}
	if st2, _ := m2.Get(hit.ID()); !st2.Status().Cached {
		t.Error("cached flag lost in recovery")
	}

	// A post-recovery identical submission must hit the re-warmed cache.
	warm, err := m2.Submit(Request{Circuit: "analytic", Options: quickOpts})
	if err != nil {
		t.Fatal(err)
	}
	if warm.State() != StateDone || !warm.Status().Cached {
		t.Fatalf("post-recovery resubmission missed the warmed cache: %+v", warm.Status())
	}
	if got := resultJSON(t, mustResult(t, warm)); got != want {
		t.Errorf("warm-cache result differs:\n got %s\nwant %s", got, want)
	}
	if got := m2.Metrics().CacheWarmHits(); got != 1 {
		t.Errorf("warm hits = %d, want 1", got)
	}
	// The ID sequence resumes past the recovered jobs: no reuse.
	if warm.ID() != "job-000003" {
		t.Errorf("post-recovery job ID = %s, want job-000003", warm.ID())
	}
}

func mustResult(t *testing.T, j *Job) *Result {
	t.Helper()
	res, ok := j.Result()
	if !ok || res == nil {
		t.Fatalf("job %s has no result (state %v)", j.ID(), j.State())
	}
	return res
}

func TestRecoveryRestoresQueueInSubmitOrder(t *testing.T) {
	clk := newFakeClock()
	st := &memStore{}
	m1 := persistManager(t, Config{RemoteOnly: true, clock: clk.Now}, st, 0)
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		opts := quickOpts
		opts.Seed = Seed(seed)
		j, err := m1.Submit(Request{Circuit: "analytic", Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}

	m2 := persistManager(t, Config{RemoteOnly: true, clock: clk.Now}, st.crashCopy(), 0)
	for i, id := range ids {
		lease, err := m2.Claim("w1")
		if err != nil || lease == nil {
			t.Fatalf("claim %d after recovery: lease=%v err=%v", i, lease, err)
		}
		if lease.JobID != id {
			t.Fatalf("claim %d = %s, want %s (submit order)", i, lease.JobID, id)
		}
	}
	if lease, _ := m2.Claim("w1"); lease != nil {
		t.Fatalf("queue should be empty, claimed %s", lease.JobID)
	}
}

func TestRecoveryRequeuesInterruptedLocalRun(t *testing.T) {
	// Fabricate the journal a SIGKILL mid-local-run leaves behind: a
	// submission and a start, no settlement.
	st := &memStore{}
	req := Request{Kind: KindOptimize, Circuit: "analytic", Options: quickOpts}
	mustAppend(t, st, &Record{Kind: RecSubmit, Job: "job-000001", Seq: 1, Hash: "h1", Req: &req})
	mustAppend(t, st, &Record{Kind: RecStart, Job: "job-000001", Attempts: 1})

	m := persistManager(t, Config{RemoteOnly: true}, st, 0)
	j, ok := m.Get("job-000001")
	if !ok {
		t.Fatal("interrupted job lost in recovery")
	}
	if got := j.State(); got != StateQueued {
		t.Fatalf("interrupted local run recovered as %v, want queued", got)
	}
	lease, err := m.Claim("w1")
	if err != nil || lease == nil || lease.JobID != "job-000001" {
		t.Fatalf("claim after recovery: lease=%v err=%v", lease, err)
	}
	// The retry budget was not charged for the daemon's own crash; the
	// reclaim is attempt two.
	if got := j.Status().Attempts; got != 2 {
		t.Errorf("attempts = %d, want 2 (1 interrupted + 1 reclaim)", got)
	}
	if got := m.Metrics().Requeued(); got != 1 {
		t.Errorf("requeued = %d, want 1", got)
	}
}

func mustAppend(t *testing.T, st Store, rec *Record) {
	t.Helper()
	if err := st.Append(rec); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryReattachesLiveLease(t *testing.T) {
	clk := newFakeClock()
	st := &memStore{}
	m1 := persistManager(t, Config{RemoteOnly: true, clock: clk.Now, LeaseTTL: 30 * time.Second}, st, 0)
	job := submitQuick(t, m1, 1)
	lease, err := m1.Claim("w1")
	if err != nil || lease == nil {
		t.Fatalf("claim: %v %v", lease, err)
	}

	// Daemon dies and restarts 10s later; the worker outlived it.
	clk.Advance(10 * time.Second)
	m2 := persistManager(t, Config{RemoteOnly: true, clock: clk.Now, LeaseTTL: 30 * time.Second}, st.crashCopy(), 0)
	rj, ok := m2.Get(job.ID())
	if !ok {
		t.Fatal("leased job lost in recovery")
	}
	if got := rj.State(); got != StateRunning {
		t.Fatalf("leased job recovered as %v, want running (lease within TTL)", got)
	}
	// The old lease ID is honored: heartbeat extends, result settles.
	if _, err := m2.Heartbeat(lease.JobID, lease.LeaseID); err != nil {
		t.Fatalf("heartbeat on recovered lease: %v", err)
	}
	res := &Result{Kind: KindOptimize}
	if err := m2.Complete(lease.JobID, lease.LeaseID, res); err != nil {
		t.Fatalf("complete on recovered lease: %v", err)
	}
	if got := rj.State(); got != StateDone {
		t.Fatalf("state after reattached completion = %v, want done", got)
	}
	// Reattachment, not re-execution: the restarted daemon granted no
	// new lease and the job still counts one attempt.
	if got := m2.Metrics().Claims(); got != 0 {
		t.Errorf("claims after recovery = %d, want 0", got)
	}
	if got := rj.Status().Attempts; got != 1 {
		t.Errorf("attempts = %d, want 1 (no re-execution)", got)
	}
}

func TestRecoveryExpiresDeadLease(t *testing.T) {
	clk := newFakeClock()
	st := &memStore{}
	m1 := persistManager(t, Config{RemoteOnly: true, clock: clk.Now, LeaseTTL: 30 * time.Second, MaxRetries: 1}, st, 0)
	job := submitQuick(t, m1, 1)
	lease, err := m1.Claim("w1")
	if err != nil || lease == nil {
		t.Fatalf("claim: %v %v", lease, err)
	}

	// The daemon comes back after the lease TTL: the worker is presumed
	// dead and the job requeues, exactly as the sweeper would have done.
	clk.Advance(31 * time.Second)
	m2 := persistManager(t, Config{RemoteOnly: true, clock: clk.Now, LeaseTTL: 30 * time.Second, MaxRetries: 1}, st.crashCopy(), 0)
	rj, ok := m2.Get(job.ID())
	if !ok {
		t.Fatal("job lost in recovery")
	}
	if got := rj.State(); got != StateQueued {
		t.Fatalf("expired-lease job recovered as %v, want queued", got)
	}
	if got := m2.Metrics().LeaseExpiries(); got != 1 {
		t.Errorf("lease expiries = %d, want 1", got)
	}
	// The stale worker's posts are refused.
	if err := m2.Complete(lease.JobID, lease.LeaseID, &Result{Kind: KindOptimize}); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("stale complete err = %v, want ErrLeaseLost", err)
	}
	// The retry budget carried over: one more expiry fails the job.
	l2, err := m2.Claim("w2")
	if err != nil || l2 == nil {
		t.Fatalf("reclaim: %v %v", l2, err)
	}
	clk.Advance(31 * time.Second)
	m2.sweep(clk.Now())
	if got := rj.State(); got != StateFailed {
		t.Errorf("state after second expiry = %v, want failed (budget exhausted)", got)
	}
}

func TestRecoveryDoesNotResurrectEvictedCacheEntries(t *testing.T) {
	st := &memStore{}
	m1 := persistManager(t, Config{Workers: 1, CacheSize: 1}, st, 0)
	reqA := Request{Circuit: "analytic", Options: quickOpts}
	a, err := m1.Submit(reqA)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, 10*time.Second)
	optsB := quickOpts
	optsB.Seed = Seed(99)
	b, err := m1.Submit(Request{Circuit: "analytic", Options: optsB})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, b, 10*time.Second)
	if got := m1.Metrics().CacheEvictions(); got != 1 {
		t.Fatalf("evictions pre-crash = %d, want 1 (cap 1)", got)
	}

	// Cap 2 on the restarted manager so re-running A below does not
	// evict B's surviving entry before the warm-hit assertion.
	m2 := persistManager(t, Config{Workers: 1, CacheSize: 2}, st.crashCopy(), 0)
	// A's entry was evicted pre-crash; the journal must not bring it
	// back even though A's terminal job (and result) were recovered.
	ra, err := m2.Submit(reqA)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Status().Cached {
		t.Fatal("evicted cache entry resurrected by recovery")
	}
	waitState(t, ra, 10*time.Second)
	// B's entry survived and serves warm hits.
	rb, err := m2.Submit(Request{Circuit: "analytic", Options: optsB})
	if err != nil {
		t.Fatal(err)
	}
	if !rb.Status().Cached {
		t.Error("surviving cache entry not warmed by recovery")
	}
}

func TestShutdownDrainRequeuesRunningJob(t *testing.T) {
	st := &memStore{}
	m1 := persistManager(t, Config{Workers: 1}, st, 2*time.Millisecond)
	job, err := m1.Submit(Request{Circuit: "analytic", Options: quickOpts})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for job.State() != StateRunning && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if job.State() != StateRunning {
		t.Fatalf("job never started: %v", job.State())
	}
	m1.Shutdown()
	if got := job.State(); got != StateQueued {
		t.Fatalf("state after graceful drain = %v, want queued (not canceled)", got)
	}

	// The next boot resumes the drained job and runs it to completion.
	m2 := persistManager(t, Config{Workers: 1}, st, 0)
	rj, ok := m2.Get(job.ID())
	if !ok {
		t.Fatal("drained job lost across restart")
	}
	if got := waitState(t, rj, 10*time.Second); got != StateDone {
		t.Fatalf("resumed job state = %v, want done", got)
	}
}

func TestSnapshotCompactionPreservesState(t *testing.T) {
	st := &memStore{}
	m1 := persistManager(t, Config{Workers: 1, RetainJobs: 4}, st, 0)
	var wantJSON []string
	for seed := uint64(1); seed <= 3; seed++ {
		opts := quickOpts
		opts.Seed = Seed(seed)
		j, err := m1.Submit(Request{Circuit: "analytic", Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		if got := waitState(t, j, 10*time.Second); got != StateDone {
			t.Fatalf("seed %d: state %v", seed, got)
		}
		wantJSON = append(wantJSON, resultJSON(t, mustResult(t, j)))
	}
	recordsBefore := st.Stats().Records
	m1.snapshot()
	stats := st.Stats()
	if stats.Snapshots == 0 {
		t.Fatal("snapshot did not compact")
	}
	if stats.Records >= recordsBefore {
		t.Errorf("snapshot did not shrink the journal: %d -> %d records", recordsBefore, stats.Records)
	}

	m2 := persistManager(t, Config{Workers: 1, RetainJobs: 4}, st.crashCopy(), 0)
	for i := 0; i < 3; i++ {
		id := jobID(i + 1)
		j, ok := m2.Get(id)
		if !ok {
			t.Fatalf("job %s lost across snapshot", id)
		}
		if got := resultJSON(t, mustResult(t, j)); got != wantJSON[i] {
			t.Errorf("job %s result changed across snapshot replay", id)
		}
	}
}

func jobID(seq int) string { return fmt.Sprintf("job-%06d", seq) }

func TestSubmitRefusedWhenJournalFails(t *testing.T) {
	st := &memStore{}
	m := persistManager(t, Config{RemoteOnly: true}, st, 0)
	st.mu.Lock()
	st.appendErr = errors.New("disk full")
	st.mu.Unlock()
	if _, err := m.Submit(Request{Circuit: "analytic", Options: quickOpts}); err == nil {
		t.Fatal("submission acknowledged without durability")
	}
	if got := len(m.Jobs()); got != 0 {
		t.Fatalf("refused submission left %d tracked jobs", got)
	}
	// The store recovers; the next submission gets the unused ID.
	st.mu.Lock()
	st.appendErr = nil
	st.mu.Unlock()
	j, err := m.Submit(Request{Circuit: "analytic", Options: quickOpts})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() != "job-000001" {
		t.Errorf("ID after rollback = %s, want job-000001", j.ID())
	}
}

func TestJobEvictionJournaled(t *testing.T) {
	st := &memStore{}
	m1 := persistManager(t, Config{Workers: 1, RetainJobs: 1, CacheSize: -1}, st, 0)
	for seed := uint64(1); seed <= 2; seed++ {
		opts := quickOpts
		opts.Seed = Seed(seed)
		j, err := m1.Submit(Request{Circuit: "analytic", Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, 10*time.Second)
	}
	m2 := persistManager(t, Config{Workers: 1, RetainJobs: 1, CacheSize: -1}, st.crashCopy(), 0)
	if _, ok := m2.Get("job-000001"); ok {
		t.Error("retention-evicted job resurrected by recovery")
	}
	if _, ok := m2.Get("job-000002"); !ok {
		t.Error("retained job lost in recovery")
	}
}
