package jobs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"specwise/internal/core"
	"specwise/internal/evalcache"
	"specwise/internal/report"
	"specwise/internal/sched"
)

// Metrics holds the service counters exported on GET /metrics. All
// fields are safe for concurrent use; the text rendering follows the
// Prometheus exposition format (plain counters and gauges, no labels)
// so any scraper — or a human with curl — can read it.
type Metrics struct {
	start   time.Time
	workers int

	submitted      atomic.Int64 // every accepted Submit, cache hits included
	queued         atomic.Int64 // gauge: waiting in the queue
	running        atomic.Int64 // gauge: executing on a worker
	done           atomic.Int64
	failed         atomic.Int64
	canceled       atomic.Int64
	cacheHits      atomic.Int64
	cacheWarmHits  atomic.Int64 // cache hits on entries restored by recovery
	cacheEvictions atomic.Int64 // result-cache LRU evictions
	cacheEntries   atomic.Int64 // gauge: results currently cached
	busyNanos      atomic.Int64 // total local-pool worker-occupied time
	wallNanos      atomic.Int64 // total per-job wall time, local and remote

	// Job-store retention (terminal jobs kept for status queries).
	jobsTracked atomic.Int64 // gauge: jobs currently in the store
	jobsEvicted atomic.Int64 // terminal jobs dropped by the retention policy

	// Batch submissions (POST /v1/batches).
	batches        atomic.Int64 // batches accepted
	batchMembers   atomic.Int64 // member requests across all batches
	batchDeduped   atomic.Int64 // members folded into an in-batch sibling
	batchesEvicted atomic.Int64 // terminal batches dropped by retention

	// Remote worker-pull protocol: claims granted, leases currently
	// outstanding, silent-lease expiries and the requeues they caused.
	claims        atomic.Int64
	leasesActive  atomic.Int64 // gauge
	leaseExpiries atomic.Int64
	requeued      atomic.Int64

	// Persistence: live store counters come from the store itself via
	// storeStats (set once before any concurrency); the recovery figures
	// are recorded by the boot-time replay.
	storeStats         func() StoreStats
	storeRecovered     atomic.Int64 // jobs restored by the last recovery
	storeRecoveryNanos atomic.Int64 // wall time of the last recovery

	// Per-shard (per remote worker) counters, keyed by worker name.
	wmu         sync.Mutex
	workerStats map[string]*WorkerStat

	// Per-lane (priority queue) counters, keyed by lane name.
	lnmu      sync.Mutex
	laneStats map[string]*LaneStat

	// Per-algorithm (search backend) counters over done optimize jobs,
	// keyed by backend name; wherever a job ran — local pool, remote
	// worker or the result cache — its settlement is attributed to the
	// backend stamped on the result.
	amu       sync.Mutex
	algoStats map[string]*AlgoStat

	// Per-evaluation reuse counters aggregated over completed
	// optimization runs: the in-run memoization cache and the DC
	// warm-start machinery (see internal/evalcache, internal/spice).
	evalCacheHits     atomic.Int64
	evalCacheMisses   atomic.Int64
	evalCacheDeduped  atomic.Int64
	evalCacheOverflow atomic.Int64
	warmStarts        atomic.Int64
	warmConverged     atomic.Int64
	dcFallbacks       atomic.Int64

	// Predict-ahead speculation counters aggregated over completed
	// optimization runs (core.Options.Speculate): evaluations issued by
	// the speculation pool, issued evaluations later claimed by the
	// authoritative trajectory (hits), issued but never claimed (wasted),
	// and candidates cancelled before completing.
	specIssued    atomic.Int64
	specHits      atomic.Int64
	specWasted    atomic.Int64
	specCancelled atomic.Int64

	// Manager-scoped shared evaluation cache, when configured: live
	// snapshot hooks installed once before any concurrency. The shared
	// counters supersede the per-run aggregates above in the exposition —
	// with sharing on, every job's lookups flow through the shared cache,
	// and these hooks see them live instead of only at job completion.
	sharedEval           func() evalcache.SharedStats
	sharedEvalPerProblem func() map[string]int

	// Linear-solver effort underneath the Newton iterations, aggregated
	// over completed runs; the NNZ gauges describe the last observed MNA
	// system and its factors.
	solverFactorizations atomic.Int64
	solverSolves         atomic.Int64
	solverSymbolic       atomic.Int64
	solverMatrixNNZ      atomic.Int64
	solverFactorNNZ      atomic.Int64
	solverDCNanos        atomic.Int64 // solver wall time by analysis type
	solverACNanos        atomic.Int64
	solverTranNanos      atomic.Int64
}

// noteRun folds one finished optimization's evaluation-reuse counters
// into the service totals.
func (m *Metrics) noteRun(res *core.Result) {
	m.evalCacheHits.Add(res.EvalCache.Hits + res.EvalCache.ConstraintHits)
	m.evalCacheMisses.Add(res.EvalCache.Misses + res.EvalCache.ConstraintMisses)
	m.evalCacheDeduped.Add(res.EvalCache.Deduped)
	m.evalCacheOverflow.Add(res.EvalCache.Overflow)
	m.specIssued.Add(res.Speculation.Computes)
	m.specHits.Add(res.Speculation.Claims)
	if wasted := res.Speculation.Computes - res.Speculation.Claims; wasted > 0 {
		m.specWasted.Add(wasted)
	}
	m.specCancelled.Add(res.Speculation.Cancelled)
	m.warmStarts.Add(res.Sim.WarmStarts)
	m.warmConverged.Add(res.Sim.WarmConverged)
	m.dcFallbacks.Add(res.Sim.Fallbacks)
	m.solverFactorizations.Add(res.Sim.Factorizations)
	m.solverSolves.Add(res.Sim.Solves)
	m.solverSymbolic.Add(res.Sim.SymbolicFacts)
	m.solverDCNanos.Add(res.Sim.DCSolveNanos)
	m.solverACNanos.Add(res.Sim.ACSolveNanos)
	m.solverTranNanos.Add(res.Sim.TranSolveNanos)
	if res.Sim.MatrixNNZ != 0 {
		m.solverMatrixNNZ.Store(res.Sim.MatrixNNZ)
	}
	if res.Sim.FactorNNZ != 0 {
		m.solverFactorNNZ.Store(res.Sim.FactorNNZ)
	}
}

// AlgoStat aggregates one search backend's shard of the optimize
// traffic: jobs settled done, accepted iterations and circuit
// simulations across their results.
type AlgoStat struct {
	Done        atomic.Int64
	Iterations  atomic.Int64
	Simulations atomic.Int64
}

// algoStat returns (creating on first use) the named backend's shard.
func (m *Metrics) algoStat(name string) *AlgoStat {
	m.amu.Lock()
	defer m.amu.Unlock()
	if m.algoStats == nil {
		m.algoStats = make(map[string]*AlgoStat)
	}
	as := m.algoStats[name]
	if as == nil {
		as = &AlgoStat{}
		m.algoStats[name] = as
	}
	return as
}

// AlgoStats snapshots the per-backend shards, keyed by algorithm name.
func (m *Metrics) AlgoStats() map[string]*AlgoStat {
	m.amu.Lock()
	defer m.amu.Unlock()
	out := make(map[string]*AlgoStat, len(m.algoStats))
	for name, as := range m.algoStats {
		out[name] = as
	}
	return out
}

// noteAlgoDone attributes one done optimize job to its search backend.
// Results written before the algorithm field existed count under the
// default backend, which is what produced them.
func (m *Metrics) noteAlgoDone(opt *report.Result) {
	name := opt.Algorithm
	if name == "" {
		name = core.DefaultAlgorithm
	}
	as := m.algoStat(name)
	as.Done.Add(1)
	as.Iterations.Add(int64(len(opt.Iterations)))
	as.Simulations.Add(opt.Simulations)
}

// LaneStat aggregates one priority lane's traffic: current queue depth,
// jobs settled done, and the cumulative time jobs spent waiting in the
// lane (total nanoseconds from enqueue to dequeue — divided by done
// counts it yields the mean lane latency, the number the weighted
// round-robin exists to keep low for the verify lane).
type LaneStat struct {
	Queued    atomic.Int64 // gauge
	Done      atomic.Int64
	WaitNanos atomic.Int64
}

// laneStat returns (creating on first use) the named lane's shard.
func (m *Metrics) laneStat(name string) *LaneStat {
	m.lnmu.Lock()
	defer m.lnmu.Unlock()
	if m.laneStats == nil {
		m.laneStats = make(map[string]*LaneStat)
	}
	ls := m.laneStats[name]
	if ls == nil {
		ls = &LaneStat{}
		m.laneStats[name] = ls
	}
	return ls
}

// LaneStats snapshots the per-lane shards, keyed by lane name.
func (m *Metrics) LaneStats() map[string]*LaneStat {
	m.lnmu.Lock()
	defer m.lnmu.Unlock()
	out := make(map[string]*LaneStat, len(m.laneStats))
	for name, ls := range m.laneStats {
		out[name] = ls
	}
	return out
}

// WorkerStat aggregates one remote worker's shard of the pull protocol.
type WorkerStat struct {
	Claims    atomic.Int64
	Done      atomic.Int64
	Failed    atomic.Int64
	Expiries  atomic.Int64
	BusyNanos atomic.Int64
}

// workerStat returns (creating on first use) the named worker's shard.
func (m *Metrics) workerStat(name string) *WorkerStat {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	if m.workerStats == nil {
		m.workerStats = make(map[string]*WorkerStat)
	}
	ws := m.workerStats[name]
	if ws == nil {
		ws = &WorkerStat{}
		m.workerStats[name] = ws
	}
	return ws
}

// WorkerStats snapshots the per-worker shards, keyed by worker name.
func (m *Metrics) WorkerStats() map[string]*WorkerStat {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	out := make(map[string]*WorkerStat, len(m.workerStats))
	for name, ws := range m.workerStats {
		out[name] = ws
	}
	return out
}

// Claims returns the number of leases granted to remote workers.
func (m *Metrics) Claims() int64 { return m.claims.Load() }

// LeaseExpiries returns the number of silent leases expired.
func (m *Metrics) LeaseExpiries() int64 { return m.leaseExpiries.Load() }

// Requeued returns the number of jobs sent back to the queue by lease
// expiry.
func (m *Metrics) Requeued() int64 { return m.requeued.Load() }

// JobsTracked returns the number of jobs currently in the store.
func (m *Metrics) JobsTracked() int64 { return m.jobsTracked.Load() }

// JobsEvicted returns the number of terminal jobs dropped by retention.
func (m *Metrics) JobsEvicted() int64 { return m.jobsEvicted.Load() }

// CacheEvictions returns the number of results dropped by the LRU cap.
func (m *Metrics) CacheEvictions() int64 { return m.cacheEvictions.Load() }

// CacheHits returns the number of submissions answered from the cache.
func (m *Metrics) CacheHits() int64 { return m.cacheHits.Load() }

// CacheWarmHits returns the number of cache hits served by entries the
// boot-time recovery restored from the journal.
func (m *Metrics) CacheWarmHits() int64 { return m.cacheWarmHits.Load() }

// RecoveredJobs returns the number of jobs the last boot restored from
// the persistent store.
func (m *Metrics) RecoveredJobs() int64 { return m.storeRecovered.Load() }

// Done returns the number of jobs finished successfully.
func (m *Metrics) Done() int64 { return m.done.Load() }

// Failed returns the number of jobs that ended in error.
func (m *Metrics) Failed() int64 { return m.failed.Load() }

// Canceled returns the number of jobs canceled before completion.
func (m *Metrics) Canceled() int64 { return m.canceled.Load() }

// Utilization returns the busy fraction of the worker pool since start.
func (m *Metrics) Utilization() float64 {
	up := time.Since(m.start)
	if up <= 0 || m.workers == 0 {
		return 0
	}
	return float64(m.busyNanos.Load()) / (float64(up) * float64(m.workers))
}

// WriteText renders the counters in Prometheus exposition format.
func (m *Metrics) WriteText(w io.Writer) {
	finished := m.done.Load() + m.failed.Load() + m.canceled.Load()
	wall := time.Duration(m.wallNanos.Load()).Seconds()
	avg := 0.0
	if finished > 0 {
		avg = wall / float64(finished)
	}
	fmt.Fprintf(w, "specwised_jobs_submitted_total %d\n", m.submitted.Load())
	fmt.Fprintf(w, "specwised_jobs_queued %d\n", m.queued.Load())
	fmt.Fprintf(w, "specwised_jobs_running %d\n", m.running.Load())
	fmt.Fprintf(w, "specwised_jobs_done_total %d\n", m.done.Load())
	m.amu.Lock()
	algos := make([]string, 0, len(m.algoStats))
	for name := range m.algoStats {
		algos = append(algos, name)
	}
	sort.Strings(algos)
	for _, name := range algos {
		fmt.Fprintf(w, "specwised_jobs_done_total{algorithm=%q} %d\n", name, m.algoStats[name].Done.Load())
	}
	fmt.Fprintf(w, "specwised_jobs_failed_total %d\n", m.failed.Load())
	fmt.Fprintf(w, "specwised_jobs_canceled_total %d\n", m.canceled.Load())
	fmt.Fprintf(w, "specwised_jobs_tracked %d\n", m.jobsTracked.Load())
	fmt.Fprintf(w, "specwised_jobs_evicted_total %d\n", m.jobsEvicted.Load())
	fmt.Fprintf(w, "specwised_jobs_requeued_total %d\n", m.requeued.Load())
	m.lnmu.Lock()
	laneNames := make([]string, 0, len(m.laneStats))
	for name := range m.laneStats {
		laneNames = append(laneNames, name)
	}
	sort.Strings(laneNames)
	for _, name := range laneNames {
		ls := m.laneStats[name]
		fmt.Fprintf(w, "specwised_lane_queued{lane=%q} %d\n", name, ls.Queued.Load())
		fmt.Fprintf(w, "specwised_lane_done{lane=%q} %d\n", name, ls.Done.Load())
		fmt.Fprintf(w, "specwised_lane_wait_seconds_total{lane=%q} %.6f\n", name,
			time.Duration(ls.WaitNanos.Load()).Seconds())
	}
	m.lnmu.Unlock()
	fmt.Fprintf(w, "specwised_batches_total %d\n", m.batches.Load())
	fmt.Fprintf(w, "specwised_batch_members_total %d\n", m.batchMembers.Load())
	fmt.Fprintf(w, "specwised_batch_members_deduped_total %d\n", m.batchDeduped.Load())
	fmt.Fprintf(w, "specwised_batches_evicted_total %d\n", m.batchesEvicted.Load())
	fmt.Fprintf(w, "specwised_claims_total %d\n", m.claims.Load())
	fmt.Fprintf(w, "specwised_leases_active %d\n", m.leasesActive.Load())
	fmt.Fprintf(w, "specwised_lease_expiries_total %d\n", m.leaseExpiries.Load())
	for _, name := range algos {
		as := m.algoStats[name]
		fmt.Fprintf(w, "specwised_algorithm_iterations_total{algorithm=%q} %d\n", name, as.Iterations.Load())
		fmt.Fprintf(w, "specwised_algorithm_simulations_total{algorithm=%q} %d\n", name, as.Simulations.Load())
	}
	m.amu.Unlock()
	fmt.Fprintf(w, "specwised_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(w, "specwised_cache_warm_hits_total %d\n", m.cacheWarmHits.Load())
	fmt.Fprintf(w, "specwised_cache_evictions_total %d\n", m.cacheEvictions.Load())
	fmt.Fprintf(w, "specwised_cache_entries %d\n", m.cacheEntries.Load())
	var st StoreStats
	if m.storeStats != nil {
		st = m.storeStats()
	}
	fmt.Fprintf(w, "specwised_store_records_appended %d\n", st.Records)
	fmt.Fprintf(w, "specwised_store_bytes %d\n", st.Bytes)
	fmt.Fprintf(w, "specwised_store_snapshots %d\n", st.Snapshots)
	fmt.Fprintf(w, "specwised_store_recovered_jobs %d\n", m.storeRecovered.Load())
	fmt.Fprintf(w, "specwised_store_recovery_seconds %.6f\n",
		time.Duration(m.storeRecoveryNanos.Load()).Seconds())
	if m.sharedEval != nil {
		// Shared cache on: every job's lookups flow through the shared
		// shard, so its live counters are the authoritative evalcache
		// series (the per-run aggregates would lag until job completion).
		es := m.sharedEval()
		fmt.Fprintf(w, "specwised_evalcache_hits_total %d\n", es.Hits)
		fmt.Fprintf(w, "specwised_evalcache_cross_hits_total %d\n", es.CrossHits)
		fmt.Fprintf(w, "specwised_evalcache_misses_total %d\n", es.Misses)
		fmt.Fprintf(w, "specwised_evalcache_deduped_total %d\n", es.Deduped)
		fmt.Fprintf(w, "specwised_evalcache_overflow_total %d\n", es.Overflow)
		fmt.Fprintf(w, "specwised_evalcache_evictions_total %d\n", es.Evictions)
		fmt.Fprintf(w, "specwised_evalcache_entries %d\n", es.Entries)
		fmt.Fprintf(w, "specwised_evalcache_problems %d\n", es.Problems)
		if m.sharedEvalPerProblem != nil {
			per := m.sharedEvalPerProblem()
			probs := make([]string, 0, len(per))
			for p := range per {
				probs = append(probs, p)
			}
			sort.Strings(probs)
			for _, p := range probs {
				label := p
				if len(label) > 12 {
					label = label[:12]
				}
				fmt.Fprintf(w, "specwised_evalcache_problem_entries{problem=%q} %d\n", label, per[p])
			}
		}
	} else {
		fmt.Fprintf(w, "specwised_evalcache_hits_total %d\n", m.evalCacheHits.Load())
		fmt.Fprintf(w, "specwised_evalcache_cross_hits_total 0\n")
		fmt.Fprintf(w, "specwised_evalcache_misses_total %d\n", m.evalCacheMisses.Load())
		fmt.Fprintf(w, "specwised_evalcache_deduped_total %d\n", m.evalCacheDeduped.Load())
		fmt.Fprintf(w, "specwised_evalcache_overflow_total %d\n", m.evalCacheOverflow.Load())
		fmt.Fprintf(w, "specwised_evalcache_evictions_total 0\n")
	}
	fmt.Fprintf(w, "specwised_speculation_issued_total %d\n", m.specIssued.Load())
	fmt.Fprintf(w, "specwised_speculation_hits_total %d\n", m.specHits.Load())
	fmt.Fprintf(w, "specwised_speculation_wasted_total %d\n", m.specWasted.Load())
	fmt.Fprintf(w, "specwised_speculation_cancelled_total %d\n", m.specCancelled.Load())
	ss := sched.Default().Stats()
	fmt.Fprintf(w, "specwised_sched_capacity %d\n", ss.Capacity)
	fmt.Fprintf(w, "specwised_sched_spec_capacity %d\n", ss.SpecCapacity)
	fmt.Fprintf(w, "specwised_sched_fg_in_use %d\n", ss.FgInUse)
	fmt.Fprintf(w, "specwised_sched_spec_in_use %d\n", ss.SpecInUse)
	fmt.Fprintf(w, "specwised_sched_spec_waiting %d\n", ss.SpecWaiting)
	fmt.Fprintf(w, "specwised_sched_fg_granted_total %d\n", ss.FgGranted)
	fmt.Fprintf(w, "specwised_sched_fg_denied_total %d\n", ss.FgDenied)
	fmt.Fprintf(w, "specwised_sched_spec_granted_total %d\n", ss.SpecGranted)
	fmt.Fprintf(w, "specwised_dc_warm_starts_total %d\n", m.warmStarts.Load())
	fmt.Fprintf(w, "specwised_dc_warm_converged_total %d\n", m.warmConverged.Load())
	fmt.Fprintf(w, "specwised_dc_fallbacks_total %d\n", m.dcFallbacks.Load())
	fmt.Fprintf(w, "specwised_solver_factorizations_total %d\n", m.solverFactorizations.Load())
	fmt.Fprintf(w, "specwised_solver_solves_total %d\n", m.solverSolves.Load())
	fmt.Fprintf(w, "specwised_solver_symbolic_factorizations_total %d\n", m.solverSymbolic.Load())
	fmt.Fprintf(w, "specwised_solver_matrix_nnz %d\n", m.solverMatrixNNZ.Load())
	fmt.Fprintf(w, "specwised_solver_factor_nnz %d\n", m.solverFactorNNZ.Load())
	fmt.Fprintf(w, "specwised_solver_dc_seconds_total %.6f\n",
		time.Duration(m.solverDCNanos.Load()).Seconds())
	fmt.Fprintf(w, "specwised_solver_ac_seconds_total %.6f\n",
		time.Duration(m.solverACNanos.Load()).Seconds())
	fmt.Fprintf(w, "specwised_solver_tran_seconds_total %.6f\n",
		time.Duration(m.solverTranNanos.Load()).Seconds())
	fmt.Fprintf(w, "specwised_workers %d\n", m.workers)
	fmt.Fprintf(w, "specwised_worker_busy_seconds_total %.6f\n",
		time.Duration(m.busyNanos.Load()).Seconds())
	fmt.Fprintf(w, "specwised_worker_utilization %.6f\n", m.Utilization())
	fmt.Fprintf(w, "specwised_job_wall_seconds_total %.6f\n", wall)
	fmt.Fprintf(w, "specwised_job_wall_seconds_avg %.6f\n", avg)
	m.wmu.Lock()
	names := make([]string, 0, len(m.workerStats))
	for name := range m.workerStats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws := m.workerStats[name]
		fmt.Fprintf(w, "specwised_remote_worker_claims_total{worker=%q} %d\n", name, ws.Claims.Load())
		fmt.Fprintf(w, "specwised_remote_worker_jobs_done_total{worker=%q} %d\n", name, ws.Done.Load())
		fmt.Fprintf(w, "specwised_remote_worker_jobs_failed_total{worker=%q} %d\n", name, ws.Failed.Load())
		fmt.Fprintf(w, "specwised_remote_worker_lease_expiries_total{worker=%q} %d\n", name, ws.Expiries.Load())
		fmt.Fprintf(w, "specwised_remote_worker_busy_seconds_total{worker=%q} %.6f\n", name,
			time.Duration(ws.BusyNanos.Load()).Seconds())
	}
	m.wmu.Unlock()
	fmt.Fprintf(w, "specwised_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
}
