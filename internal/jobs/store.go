package jobs

// The persistence contract of the control plane. Every state mutation
// the manager performs — submissions, local starts, lease grants,
// heartbeats, requeues, settlements, retention and cache evictions — is
// journaled as one typed Record through a Store before the mutation is
// acknowledged to the caller. On boot the manager replays the journal
// to rebuild the exact pre-crash control plane: terminal jobs and their
// results (which re-warm the content-hash result cache), the pending
// queue in original submit order, and the remote-lease table, so a
// worker that outlived the daemon can reattach to its lease instead of
// being 404ed. internal/store provides the durable single-file
// WAL+snapshot implementation; NullStore is the in-memory default.

import "time"

// RecordKind types a journaled control-plane mutation. The numeric
// values are part of the on-disk format (they become the frame kind
// byte) and must never be reused or renumbered.
type RecordKind uint8

// Journal record kinds.
const (
	// RecSubmit enrolls a job: ID, sequence number, content hash and the
	// full request. The job starts in StateQueued.
	RecSubmit RecordKind = 1
	// RecStart marks a local-pool execution start.
	RecStart RecordKind = 2
	// RecLease grants a remote worker a lease on the job.
	RecLease RecordKind = 3
	// RecHeartbeat extends a lease's deadline.
	RecHeartbeat RecordKind = 4
	// RecRequeue returns a running job to the queue (lease expiry with
	// retry budget left, or a graceful drain). Requeues and Attempts are
	// absolute values, not increments.
	RecRequeue RecordKind = 5
	// RecDone settles a job successfully. Result is inline unless Cached
	// is set, in which case the result is the cache entry under Hash at
	// this point of the log.
	RecDone RecordKind = 6
	// RecFail settles a job with an error.
	RecFail RecordKind = 7
	// RecCancel settles a job as canceled.
	RecCancel RecordKind = 8
	// RecJobEvict drops a terminal job from the store (retention policy).
	RecJobEvict RecordKind = 9
	// RecCacheEvict drops one result-cache entry (LRU cap). Without this
	// record a restart would resurrect evicted results and silently
	// inflate the cache past its cap.
	RecCacheEvict RecordKind = 10
	// RecCacheEntry inserts or refreshes one result-cache entry. In the
	// live journal it references the finished job whose result was just
	// cached; in snapshots it may carry the result inline for entries
	// that outlived their job's retention.
	RecCacheEntry RecordKind = 11
	// RecBatch commits a batch submission. Member jobs are journaled
	// first as RecSubmit records tagged with the batch ID; this record —
	// carrying the member list in submit order — is the commit point.
	// The store has no transactions, so recovery treats batch-tagged
	// jobs with no committing RecBatch as orphans of an interrupted
	// submission and cancels them.
	RecBatch RecordKind = 12
	// RecBatchEvict drops a terminal batch (retention policy); its
	// member jobs are evicted alongside with their own RecJobEvict
	// records.
	RecBatchEvict RecordKind = 13
)

// Record is one journaled control-plane mutation. Which fields are
// meaningful depends on Kind; unused fields stay zero. Records are
// encoded as JSON payloads inside the store's CRC-checked frames, so
// the format is append-only extensible: new optional fields decode as
// zero from old journals.
type Record struct {
	Kind RecordKind `json:"k"`
	// Job is the subject job ID (all kinds except RecCacheEvict and
	// snapshot RecCacheEntry records with inline results).
	Job string `json:"job,omitempty"`
	// Seq is the manager's job sequence number (RecSubmit).
	Seq int `json:"seq,omitempty"`
	// Hash is the request content hash (RecSubmit, cache records).
	Hash string `json:"hash,omitempty"`
	// Req is the full submission (RecSubmit).
	Req *Request `json:"req,omitempty"`
	// Lane is the priority lane the job was classified into at submit
	// (RecSubmit). Absent on pre-lane journals; replay re-derives it
	// from the request.
	Lane string `json:"lane,omitempty"`
	// Worker names the executing remote worker (RecLease, settlements).
	Worker string `json:"worker,omitempty"`
	// Lease is the granted lease ID (RecLease, RecHeartbeat).
	Lease string `json:"lease,omitempty"`
	// LeaseSeq is the manager's lease counter at grant time (RecLease);
	// recovery resumes the counter past the maximum seen.
	LeaseSeq int `json:"leaseSeq,omitempty"`
	// Attempts and Requeues are absolute counters (RecStart, RecLease,
	// RecRequeue, settlements).
	Attempts int `json:"attempts,omitempty"`
	Requeues int `json:"requeues,omitempty"`
	// Cached marks a submission settled from the result cache (RecDone).
	Cached bool `json:"cached,omitempty"`
	// Err is the failure or cancellation message (RecFail, RecCancel).
	Err string `json:"err,omitempty"`
	// Time is the event time: enqueue (RecSubmit), run start (RecStart,
	// RecLease), requeue (RecRequeue) or settlement (terminal kinds).
	Time time.Time `json:"t,omitempty"`
	// Started preserves the run start on terminal records so restored
	// statuses keep their wall-clock accounting.
	Started time.Time `json:"started,omitempty"`
	// Deadline is the lease expiry (RecLease, RecHeartbeat).
	Deadline time.Time `json:"deadline,omitempty"`
	// Result is the settlement payload (RecDone) or an inline cache
	// entry in snapshots (RecCacheEntry).
	Result *Result `json:"result,omitempty"`
	// Batch is the subject batch ID (RecBatch, RecBatchEvict) or, on a
	// RecSubmit, the batch the job was submitted under (see RecBatch for
	// the commit protocol).
	Batch string `json:"batch,omitempty"`
	// Members lists a batch's member job IDs in submit order, duplicate
	// requests repeating the deduplicated job's ID (RecBatch).
	Members []string `json:"members,omitempty"`
}

// Store persists the control plane. Append must be durable when it
// returns (implementations may offer a relaxed mode for tests); Replay
// streams every surviving record in append order; Compact atomically
// replaces the journal with the given snapshot records — the minimal
// sequence that rebuilds the current state — so the file stays bounded.
// All methods must be safe for concurrent use, though the manager
// serializes Append and Compact under its own lock.
type Store interface {
	Append(rec *Record) error
	Replay(fn func(*Record) error) error
	Compact(recs []*Record) error
	Stats() StoreStats
	Close() error
}

// StoreStats are the cumulative persistence counters surfaced on
// /metrics as specwised_store_*.
type StoreStats struct {
	// Records is the total number of records written (appends plus
	// snapshot rewrites).
	Records int64
	// Bytes is the total number of bytes written.
	Bytes int64
	// Snapshots counts compactions.
	Snapshots int64
}

// NullStore is the default in-memory mode: every record is discarded
// and nothing survives a restart. It lets the manager journal
// unconditionally without branching on persistence being enabled.
type NullStore struct{}

// Append discards the record.
func (NullStore) Append(*Record) error { return nil }

// Replay replays nothing.
func (NullStore) Replay(func(*Record) error) error { return nil }

// Compact discards the snapshot.
func (NullStore) Compact([]*Record) error { return nil }

// Stats reports zeros.
func (NullStore) Stats() StoreStats { return StoreStats{} }

// Close is a no-op.
func (NullStore) Close() error { return nil }
