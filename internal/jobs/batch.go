package jobs

// Batch submissions: a list of job requests accepted atomically, hash-
// deduplicated against each other and against the result cache before
// any of them reaches the queue, tracked as one unit with a combined
// status (per-member states plus an aggregate Table-7 effort rollup).
// This is the shape real usage takes — seed sweeps for yield
// confidence, spec-bound sweeps, corner sweeps — and the unit the
// shared evaluation cache (internal/evalcache.Shared) is designed
// around: members of one batch run over the same problem, so most of
// their simulator calls are answered by a sibling's earlier work.
//
// Durability follows the journal-before-acknowledge discipline of
// Submit, with one extra step because the store has no transactions:
// member RecSubmit records (tagged with the batch ID) are appended
// first, then one RecBatch record carrying the member list — the
// commit point. Recovery cancels batch-tagged jobs with no committing
// RecBatch (the crash interrupted the submission before it was
// acknowledged, so the caller never saw it succeed).
//
// Member jobs are ordinary jobs in every other respect: they requeue
// on lease expiry and daemon restart like any job, are addressable
// under /v1/jobs/{id}, and feed the result cache. Retention is the one
// difference — a batch's members are pinned while the batch is
// tracked, and evicted with it, so a batch status never names a job
// the store has forgotten.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"specwise/internal/core"
)

// ErrEmptyBatch rejects batch submissions with no requests.
var ErrEmptyBatch = errors.New("jobs: batch has no requests")

// Batch is one tracked batch submission. Immutable fields are set at
// submit (or recovery); the terminal counter and finish time are
// guarded by Manager.mu.
type Batch struct {
	id      string
	seq     int
	created time.Time

	// memberIDs is the per-member job ID in submit order; duplicate
	// requests repeat the deduplicated job's ID.
	memberIDs []string
	// unique is the distinct jobs backing the members, in first-
	// appearance order.
	unique []*Job

	// terminal counts unique members in a terminal state; the batch is
	// terminal when terminal == len(unique). Guarded by Manager.mu (all
	// settlements happen under it).
	terminal int
	finished time.Time
}

// ID returns the batch identifier.
func (b *Batch) ID() string { return b.id }

// BatchEffort is the aggregate Table-7 effort rollup over a batch's
// unique, successfully completed members: how many evaluations reached
// a simulator and how many the memoization layers absorbed. CrossHits
// is the headline number for a sweep — simulations a member skipped
// because a sibling had already run them.
type BatchEffort struct {
	Simulations    int64 `json:"simulations"`
	ConstraintSims int64 `json:"constraintSims"`
	EvalCacheHits  int64 `json:"evalCacheHits"`
	// EvalCacheCrossHits is the subset of hits answered from an entry
	// another job stored in the shared cache (zero without
	// -shared-eval-cache).
	EvalCacheCrossHits int64 `json:"evalCacheCrossHits"`
	EvalCacheMisses    int64 `json:"evalCacheMisses"`
	EvalCacheDeduped   int64 `json:"evalCacheDeduped"`
	VerifyEvals        int64 `json:"verifyEvals,omitempty"`
}

// BatchStatus is the JSON-friendly snapshot served by
// GET /v1/batches/{id}.
type BatchStatus struct {
	ID string `json:"id"`
	// State summarizes the members: "done" when every member succeeded,
	// "failed"/"canceled" when terminal with failures or cancellations
	// (failure dominating), "running" while any member executes, else
	// "queued".
	State     State     `json:"state"`
	CreatedAt time.Time `json:"createdAt"`
	// Members holds one status per submitted request, in submit order.
	// Deduplicated members repeat the backing job's status, so
	// byte-identical requests share an ID and a result envelope.
	Members []Status `json:"members"`
	// Unique counts the distinct jobs after in-batch deduplication;
	// Deduped counts the members folded into an earlier sibling; Cached
	// counts unique jobs answered from the result cache without running.
	Unique  int `json:"unique"`
	Deduped int `json:"deduped,omitempty"`
	Cached  int `json:"cached,omitempty"`
	// Done/Failed/Canceled/Running/Queued count unique jobs by state.
	Done     int `json:"done"`
	Failed   int `json:"failed,omitempty"`
	Canceled int `json:"canceled,omitempty"`
	Running  int `json:"running,omitempty"`
	Queued   int `json:"queued,omitempty"`
	// Effort aggregates the completed members' effort counters.
	Effort BatchEffort `json:"effort"`
}

// SubmitBatch validates, resolves, deduplicates and enqueues a list of
// requests as one atomic batch: either every member is accepted and
// durable, or none is. Requests hash-identical to an earlier member
// share that member's job; unique requests hash-identical to a cached
// result settle immediately from the cache, exactly like Submit. The
// queue-capacity check covers the whole batch, so a batch is never
// half-enqueued.
func (m *Manager) SubmitBatch(reqs []Request) (*Batch, error) {
	if err := m.ctx.Err(); err != nil {
		return nil, ErrClosed
	}
	if len(reqs) == 0 {
		return nil, ErrEmptyBatch
	}
	// Validate and resolve every member eagerly: one malformed request
	// rejects the whole batch before anything is journaled.
	type memberReq struct {
		req      Request
		hash     string
		probHash string
	}
	members := make([]memberReq, len(reqs))
	problems := make(map[string]*core.Problem) // problemHash → resolved, once
	for i := range reqs {
		mr := memberReq{req: reqs[i]}
		m.stampDefaults(&mr.req)
		if err := mr.req.Normalize(); err != nil {
			return nil, fmt.Errorf("jobs: batch member %d: %w", i, err)
		}
		var err error
		if mr.hash, err = mr.req.Hash(); err != nil {
			return nil, fmt.Errorf("jobs: batch member %d: %w", i, err)
		}
		if mr.probHash, err = mr.req.ProblemHash(); err != nil {
			return nil, fmt.Errorf("jobs: batch member %d: %w", i, err)
		}
		if _, ok := problems[mr.probHash]; !ok {
			p, err := m.cfg.Resolve(&mr.req)
			if err != nil {
				return nil, fmt.Errorf("jobs: batch member %d: %w", i, err)
			}
			problems[mr.probHash] = p
		}
		members[i] = mr
	}

	m.mu.Lock()
	// Dedupe members against each other and split the unique ones into
	// cached (settle from the result cache) and fresh (need a queue slot).
	byHash := make(map[string]*Job, len(members))
	var uniq []*Job
	var fresh []*Job
	memberIDs := make([]string, len(members))
	now := m.now()
	seq0, batchSeq0 := m.seq, m.batchSeq
	m.batchSeq++
	batch := &Batch{id: fmt.Sprintf("batch-%06d", m.batchSeq), seq: m.batchSeq, created: now}
	dedup := 0
	for i, mr := range members {
		if j, ok := byHash[mr.hash]; ok {
			memberIDs[i] = j.id
			dedup++
			continue
		}
		m.seq++
		job := &Job{
			id:          fmt.Sprintf("job-%06d", m.seq),
			seq:         m.seq,
			hash:        mr.hash,
			problemHash: mr.probHash,
			batch:       batch.id,
			lane:        mr.req.lane(),
			req:         mr.req,
			problem:     problems[mr.probHash],
			enqueued:    now,
		}
		byHash[mr.hash] = job
		memberIDs[i] = job.id
		uniq = append(uniq, job)
		if _, cached := m.cache[mr.hash]; !cached {
			fresh = append(fresh, job)
		}
	}
	// Admission is per lane, over the whole batch, so a batch is never
	// half-enqueued: every lane a fresh member lands in must have room
	// for all of that lane's members at once.
	freshPerLane := make(map[string]int)
	for _, job := range fresh {
		freshPerLane[job.lane]++
	}
	for lane, n := range freshPerLane {
		lq := m.lanes[lane]
		if lq.pending.Len()+n > lq.limit {
			// Atomic rejection: nothing was journaled or tracked yet, so
			// the rollback is just the counters.
			qerr := &QueueFullError{Lane: lane, Depth: lq.pending.Len(), RetryAfter: lq.retryAfter(now)}
			m.seq, m.batchSeq = seq0, batchSeq0
			m.mu.Unlock()
			return nil, qerr
		}
	}
	// Journal every member, then the committing RecBatch. A member
	// append failing mid-way leaves already-journaled members without a
	// commit record: settle them canceled (replay reaches the same state
	// through the orphan rule) and refuse the batch.
	journaled := uniq[:0:0]
	var journalErr error
	for _, job := range uniq {
		if err := m.journal(&Record{Kind: RecSubmit, Job: job.id, Seq: job.seq, Hash: job.hash,
			Req: &job.req, Batch: batch.id, Lane: job.lane, Time: now}); err != nil {
			journalErr = err
			break
		}
		journaled = append(journaled, job)
	}
	if journalErr == nil {
		journalErr = m.journal(&Record{Kind: RecBatch, Batch: batch.id, Seq: batch.seq, Members: memberIDs, Time: now})
	}
	if journalErr != nil {
		for _, job := range journaled {
			job.batch = "" // not a member of any committed batch
			m.jobs[job.id] = job
			job.mu.Lock()
			m.finishLocked(job, StateCanceled, "canceled: batch submission failed")
			job.mu.Unlock()
		}
		m.metrics.jobsTracked.Store(int64(len(m.jobs)))
		m.mu.Unlock()
		return nil, fmt.Errorf("jobs: journaling batch: %w", journalErr)
	}

	// Committed: track the batch, settle cached members, enqueue the rest.
	batch.memberIDs = memberIDs
	batch.unique = uniq
	m.batches[batch.id] = batch
	cachedHits := 0
	warmHits := 0
	for _, job := range uniq {
		m.jobs[job.id] = job
		if el, ok := m.cache[job.hash]; ok {
			ent := el.Value.(*cacheEntry)
			if ent.warm {
				warmHits++
			}
			m.lru.MoveToFront(el)
			job.cached = true
			job.result = ent.res
			job.mu.Lock()
			m.finishLocked(job, StateDone, "")
			job.mu.Unlock()
			cachedHits++
		} else {
			job.state = StateQueued
			m.enqueueLocked(job, false)
		}
	}
	m.metrics.jobsTracked.Store(int64(len(m.jobs)))
	m.mu.Unlock()

	m.metrics.submitted.Add(int64(len(uniq)))
	m.metrics.batches.Add(1)
	m.metrics.batchMembers.Add(int64(len(members)))
	m.metrics.batchDeduped.Add(int64(dedup))
	m.metrics.cacheHits.Add(int64(cachedHits))
	m.metrics.cacheWarmHits.Add(int64(warmHits))
	m.metrics.queued.Add(int64(len(fresh)))
	if len(fresh) > 0 {
		m.wakeOne()
	}
	return batch, nil
}

// GetBatch returns a batch by ID. Batches evicted by the retention
// policy are no longer found.
func (m *Manager) GetBatch(id string) (*Batch, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.batches[id]
	return b, ok
}

// BatchStatus snapshots one batch: per-member states in submit order
// plus the aggregate effort rollup over completed members.
func (m *Manager) BatchStatus(id string) (BatchStatus, error) {
	m.mu.Lock()
	b, ok := m.batches[id]
	if !ok {
		m.mu.Unlock()
		return BatchStatus{}, ErrNotFound
	}
	memberIDs := b.memberIDs
	uniq := append([]*Job(nil), b.unique...)
	m.mu.Unlock()

	st := BatchStatus{
		ID:        b.id,
		CreatedAt: b.created,
		Unique:    len(uniq),
		Deduped:   len(memberIDs) - len(uniq),
	}
	statuses := make(map[string]Status, len(uniq))
	for _, j := range uniq {
		js := j.Status()
		statuses[j.id] = js
		switch js.State {
		case StateDone:
			st.Done++
			if js.Cached {
				st.Cached++
			}
		case StateFailed:
			st.Failed++
		case StateCanceled:
			st.Canceled++
		case StateRunning:
			st.Running++
		default:
			st.Queued++
		}
		if res, done := j.Result(); done && res != nil {
			switch {
			case res.Optimization != nil:
				o := res.Optimization
				st.Effort.Simulations += o.Simulations
				st.Effort.ConstraintSims += o.ConstraintSims
				st.Effort.EvalCacheHits += o.Perf.EvalCacheHits
				st.Effort.EvalCacheCrossHits += o.Perf.EvalCacheCrossHits
				st.Effort.EvalCacheMisses += o.Perf.EvalCacheMisses
				st.Effort.EvalCacheDeduped += o.Perf.EvalCacheDeduped
			case res.Verification != nil:
				st.Effort.VerifyEvals += int64(res.Verification.Evals)
			}
		}
	}
	st.Members = make([]Status, len(memberIDs))
	for i, jid := range memberIDs {
		st.Members[i] = statuses[jid]
	}
	switch {
	case st.Running > 0:
		st.State = StateRunning
	case st.Queued > 0:
		st.State = StateQueued
	case st.Failed > 0:
		st.State = StateFailed
	case st.Canceled > 0:
		st.State = StateCanceled
	default:
		st.State = StateDone
	}
	return st, nil
}

// Batches snapshots every tracked batch, newest first.
func (m *Manager) Batches() []BatchStatus {
	m.mu.Lock()
	ids := make([]string, 0, len(m.batches))
	for id := range m.batches {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	// Batch IDs are zero-padded sequence numbers: lexical sort is
	// chronological.
	sort.Sort(sort.Reverse(sort.StringSlice(ids)))
	out := make([]BatchStatus, 0, len(ids))
	for _, id := range ids {
		if st, err := m.BatchStatus(id); err == nil {
			out = append(out, st)
		}
	}
	return out
}

// CancelBatch cancels every non-terminal member of a batch. Members
// already done keep their results; the batch settles once the running
// members wind down.
func (m *Manager) CancelBatch(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.batches[id]
	if !ok {
		return ErrNotFound
	}
	for _, j := range b.unique {
		j.mu.Lock()
		m.cancelLocked(j)
		j.mu.Unlock()
	}
	return nil
}

// noteBatchSettleLocked records one member's terminal transition and
// enrolls the batch in batch retention once all members settled. Both
// m.mu and the member's j.mu are held (called from finishLocked).
func (m *Manager) noteBatchSettleLocked(j *Job) {
	b := m.batches[j.batch]
	if b == nil {
		return
	}
	b.terminal++
	if b.terminal == len(b.unique) {
		b.finished = m.now()
		m.batchOrder.PushBack(retainedBatch{batch: b, finished: b.finished})
	}
}

// retainedBatch is one terminal batch in the batch retention queue.
type retainedBatch struct {
	batch    *Batch
	finished time.Time
}

// evictBatchesLocked drops the oldest terminal batches — and their
// member jobs — past the retention cap and TTL, mirroring evictLocked
// for standalone jobs. Caller holds m.mu.
func (m *Manager) evictBatchesLocked(now time.Time) {
	for m.batchOrder.Len() > 0 {
		front := m.batchOrder.Front()
		r := front.Value.(retainedBatch)
		overCap := m.cfg.RetainJobs >= 0 && m.batchOrder.Len() > m.cfg.RetainJobs
		tooOld := m.cfg.RetainFor > 0 && now.Sub(r.finished) > m.cfg.RetainFor
		if !overCap && !tooOld {
			break
		}
		m.batchOrder.Remove(front)
		delete(m.batches, r.batch.id)
		for _, j := range r.batch.unique {
			delete(m.jobs, j.id)
			m.journal(&Record{Kind: RecJobEvict, Job: j.id}) //nolint:errcheck // degraded store: logged once
			m.metrics.jobsEvicted.Add(1)
		}
		m.journal(&Record{Kind: RecBatchEvict, Batch: r.batch.id}) //nolint:errcheck // degraded store: logged once
		m.metrics.batchesEvicted.Add(1)
	}
	m.metrics.jobsTracked.Store(int64(len(m.jobs)))
}
