package jobs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// submitVerify enqueues a cheap verify-kind job with a distinct seed.
func submitVerify(t *testing.T, m *Manager, seed uint64) *Job {
	t.Helper()
	j, err := m.Submit(Request{
		Kind:    KindVerify,
		Circuit: "analytic",
		Options: RunOptions{VerifySamples: 50, Seed: Seed(seed)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestLaneClassification(t *testing.T) {
	m := testManager(t, Config{RemoteOnly: true}, 0)

	optimize := submitQuick(t, m, 1)
	if got := optimize.Status().Lane; got != LaneOptimize {
		t.Errorf("optimize job lane = %q, want %q", got, LaneOptimize)
	}
	verify := submitVerify(t, m, 2)
	if got := verify.Status().Lane; got != LaneVerify {
		t.Errorf("verify job lane = %q, want %q", got, LaneVerify)
	}

	// options.lane overrides the kind-based default, case-insensitively.
	opts := quickOpts
	opts.Seed = Seed(3)
	opts.Lane = " VERIFY "
	cheap, err := m.Submit(Request{Circuit: "analytic", Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if got := cheap.Status().Lane; got != LaneVerify {
		t.Errorf("optimize job with options.lane=verify: lane = %q, want %q", got, LaneVerify)
	}

	opts.Lane = "bulk"
	if _, err := m.Submit(Request{Circuit: "analytic", Options: opts}); err == nil ||
		!strings.Contains(err.Error(), "unknown lane") {
		t.Errorf("bogus lane: err = %v, want unknown-lane rejection", err)
	}
}

// The lane knob must not perturb the content hash of lane-less requests:
// RunOptions without a lane marshals without the field, so every
// pre-lane cache entry and journaled request stays reachable.
func TestLaneOmittedFromWireEncoding(t *testing.T) {
	blob, err := json.Marshal(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "lane") {
		t.Fatalf("lane-less options marshal mentions lane: %s", blob)
	}

	with := Request{Circuit: "analytic", Options: quickOpts}
	with.Options.Lane = LaneOptimize
	without := Request{Circuit: "analytic", Options: quickOpts}
	h1, err := with.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := without.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// An explicit lane IS part of the hash (it is part of the request);
	// only the unset lane must be encoding-invisible.
	if h1 == h2 {
		t.Error("explicit lane does not contribute to the request hash")
	}
}

// The default 3:1 weighting drains three verifies per optimize but
// never starves the heavy lane.
func TestLaneWeightedRoundRobin(t *testing.T) {
	clk := newFakeClock()
	m := leaseManager(t, clk, Config{LeaseTTL: 30 * time.Second})

	o1 := submitQuick(t, m, 1)
	o2 := submitQuick(t, m, 2)
	v1 := submitVerify(t, m, 3)
	v2 := submitVerify(t, m, 4)
	v3 := submitVerify(t, m, 5)
	v4 := submitVerify(t, m, 6)

	// Cycle [verify optimize verify verify]: the verify backlog drains
	// 3x faster, yet an optimize claim lands every fourth slot.
	want := []*Job{v1, o1, v2, v3, v4, o2}
	for i, wj := range want {
		lease, err := m.Claim("w1")
		if err != nil {
			t.Fatal(err)
		}
		if lease == nil || lease.JobID != wj.ID() {
			t.Fatalf("claim %d = %+v, want job %s", i, lease, wj.ID())
		}
		if lease.Lane != wj.Status().Lane {
			t.Errorf("claim %d lease lane = %q, want %q", i, lease.Lane, wj.Status().Lane)
		}
	}
	if extra, err := m.Claim("w1"); err != nil || extra != nil {
		t.Fatalf("claim on drained queues = %+v, %v", extra, err)
	}
}

func TestClaimLaneFilter(t *testing.T) {
	clk := newFakeClock()
	m := leaseManager(t, clk, Config{LeaseTTL: 30 * time.Second})

	submitQuick(t, m, 1)
	verify := submitVerify(t, m, 2)

	// A lane-filtered claim skips the other lane even when the
	// round-robin would prefer it.
	lease, err := m.ClaimLane("w1", LaneVerify)
	if err != nil {
		t.Fatal(err)
	}
	if lease == nil || lease.JobID != verify.ID() || lease.Lane != LaneVerify {
		t.Fatalf("verify-filtered claim = %+v, want job %s", lease, verify.ID())
	}
	// The verify lane is now empty: a verify-only worker gets "nothing
	// to do", not the queued optimize job.
	if extra, err := m.ClaimLane("w1", LaneVerify); err != nil || extra != nil {
		t.Fatalf("verify-filtered claim on empty lane = %+v, %v", extra, err)
	}
	if _, err := m.ClaimLane("w1", "bulk"); err == nil ||
		!strings.Contains(err.Error(), "unknown lane") {
		t.Errorf("bogus lane filter: err = %v, want unknown-lane rejection", err)
	}
	lease, err = m.ClaimLane("w1", LaneOptimize)
	if err != nil {
		t.Fatal(err)
	}
	if lease == nil || lease.Lane != LaneOptimize {
		t.Fatalf("optimize-filtered claim = %+v", lease)
	}
}

// A refused submission must not consume a job ID: the next accepted
// job's sequence number is contiguous with the last accepted one.
func TestQueueFullDoesNotBurnSeq(t *testing.T) {
	m := testManager(t, Config{RemoteOnly: true, QueueSize: 1}, 0)

	first := submitQuick(t, m, 1)
	if first.ID() != "job-000001" {
		t.Fatalf("first job ID = %s", first.ID())
	}

	_, err := m.Submit(Request{Circuit: "analytic", Options: func() RunOptions {
		o := quickOpts
		o.Seed = Seed(2)
		return o
	}()})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: err = %v, want ErrQueueFull", err)
	}
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("err %T does not unwrap to *QueueFullError", err)
	}
	if qf.Lane != LaneOptimize || qf.Depth != 1 || qf.RetryAfter <= 0 {
		t.Errorf("QueueFullError = %+v", qf)
	}

	// The full optimize lane does not block the verify lane, and the
	// refused submission did not burn a sequence number.
	verify := submitVerify(t, m, 3)
	if verify.ID() != "job-000002" {
		t.Errorf("post-rejection job ID = %s, want job-000002 (seq burned by refused submit?)",
			verify.ID())
	}
	if got := verify.Status().Lane; got != LaneVerify {
		t.Errorf("lane = %q, want %q", got, LaneVerify)
	}
}

// When many leases expire in one sweep pass, the jobs requeue in submit
// order — not in the map's random iteration order.
func TestMassExpiryRequeuesInSubmitOrder(t *testing.T) {
	clk := newFakeClock()
	m := leaseManager(t, clk, Config{LeaseTTL: 30 * time.Second})

	var ids []string
	for seed := uint64(1); seed <= 5; seed++ {
		ids = append(ids, submitQuick(t, m, seed).ID())
	}
	for i := 0; i < 5; i++ {
		lease, err := m.Claim("w" + string(rune('0'+i)))
		if err != nil || lease == nil {
			t.Fatalf("claim %d = %+v, %v", i, lease, err)
		}
	}

	clk.Advance(31 * time.Second)
	m.sweep(clk.Now())

	for i, want := range ids {
		lease, err := m.Claim("w9")
		if err != nil || lease == nil {
			t.Fatalf("re-claim %d = %+v, %v", i, lease, err)
		}
		if lease.JobID != want {
			t.Fatalf("re-claim %d = %s, want %s (mass expiry scrambled the queue)",
				i, lease.JobID, want)
		}
	}
}

// Cancel returns the settled status itself: reading it back via Get
// would race the retention sweep, which may evict the now-terminal job
// between the two calls.
func TestCancelReturnsSettledStatus(t *testing.T) {
	clk := newFakeClock()
	m := leaseManager(t, clk, Config{LeaseTTL: 30 * time.Second, RetainFor: time.Hour})

	job := submitQuick(t, m, 1)
	st, err := m.Cancel(job.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled || st.ID != job.ID() || st.FinishedAt == nil {
		t.Fatalf("Cancel status = %+v, want settled canceled snapshot", st)
	}

	// Push the terminal job past the retention TTL: it is evicted, and a
	// second Cancel reports not-found instead of dereferencing nil.
	clk.Advance(2 * time.Hour)
	m.sweep(clk.Now())
	if _, ok := m.Get(job.ID()); ok {
		t.Fatal("evicted job still resolvable")
	}
	if _, err := m.Cancel(job.ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel after eviction: err = %v, want ErrNotFound", err)
	}
}

// Per-lane counters show up on the metrics page with the lane label.
func TestLaneMetrics(t *testing.T) {
	clk := newFakeClock()
	m := leaseManager(t, clk, Config{LeaseTTL: 30 * time.Second})

	submitVerify(t, m, 1)
	submitQuick(t, m, 2)

	var buf strings.Builder
	m.Metrics().WriteText(&buf)
	for _, want := range []string{
		`specwised_lane_queued{lane="verify"} 1`,
		`specwised_lane_queued{lane="optimize"} 1`,
		`specwised_lane_done{lane="verify"} 0`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics page missing %q", want)
		}
	}

	lease, err := m.ClaimLane("w1", LaneVerify)
	if err != nil || lease == nil {
		t.Fatalf("claim = %+v, %v", lease, err)
	}
	if err := m.Complete(lease.JobID, lease.LeaseID, &Result{Kind: KindVerify}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	m.Metrics().WriteText(&buf)
	for _, want := range []string{
		`specwised_lane_queued{lane="verify"} 0`,
		`specwised_lane_done{lane="verify"} 1`,
		`specwised_lane_wait_seconds_total{lane="verify"}`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}

// The journal carries the lane and recovery restores it; pre-lane
// journals (no lane field) re-derive the lane from the request.
func TestLaneSurvivesRecordRoundTrip(t *testing.T) {
	rec := Record{Kind: RecSubmit, Job: "job-000001", Lane: LaneVerify}
	blob, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"lane":"verify"`) {
		t.Errorf("submit record does not journal the lane: %s", blob)
	}
	// Pre-lane journal: the field is absent and decodes to "".
	var old Record
	if err := json.Unmarshal([]byte(`{"k":1,"job":"job-000001"}`), &old); err != nil {
		t.Fatal(err)
	}
	if old.Lane != "" {
		t.Errorf("pre-lane record decoded lane %q", old.Lane)
	}
	req := Request{Kind: KindVerify, Circuit: "analytic"}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	if got := req.lane(); got != LaneVerify {
		t.Errorf("re-derived lane = %q, want %q", got, LaneVerify)
	}
}
