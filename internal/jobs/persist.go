package jobs

// Journal-and-recover: the manager half of the persistence design in
// store.go. Every control-plane mutation is journaled through
// Manager.journal before it is acknowledged; recover replays the
// journal on boot into an exact copy of the pre-crash control plane;
// snapshotRecordsLocked encodes the live state as the minimal record
// sequence for compaction.
//
// Replay invariants the journal sites below maintain:
//
//   - All appends happen under Manager.mu, so the journal is a serial
//     history and a snapshot taken under the same lock never races a
//     concurrent append.
//   - The result cache is driven only by RecCacheEntry/RecCacheEvict
//     records. Replaying a RecDone never warms the cache — otherwise a
//     snapshot replay would resurrect entries the LRU cap had evicted.
//   - Counters journaled on requeue records are absolute values, so
//     replay assigns rather than increments and a snapshot's records
//     are idempotent.

import (
	"fmt"
	"log"
	"sort"
	"time"
)

// journal appends one record to the store. Callers on the submission
// path propagate the error (the mutation is refused if it cannot be
// made durable); interior transitions treat a failed append as a
// degraded-but-running store and log once. Caller holds m.mu.
func (m *Manager) journal(rec *Record) error {
	if !m.persistent {
		return nil
	}
	if err := m.store.Append(rec); err != nil {
		m.storeErrOnce.Do(func() {
			log.Printf("jobs: persistent store degraded (journaling continues best-effort): %v", err)
		})
		return err
	}
	m.appendsSince.Add(1)
	return nil
}

// settleRecord builds the terminal record for finishLocked. Both m.mu
// and j.mu are held; j's terminal fields are already set.
func settleRecord(j *Job, state State, worker, errMsg string) *Record {
	rec := &Record{
		Job:      j.id,
		Worker:   worker,
		Attempts: j.attempts,
		Started:  j.started,
		Time:     j.finished,
	}
	switch state {
	case StateDone:
		rec.Kind = RecDone
		rec.Cached = j.cached
		if !j.cached {
			// Cached settlements reference the cache entry under the job's
			// hash instead of duplicating the result in the journal.
			rec.Result = j.result
		}
	case StateFailed:
		rec.Kind = RecFail
		rec.Err = errMsg
	case StateCanceled:
		rec.Kind = RecCancel
		rec.Err = errMsg
	}
	return rec
}

// applyRecord folds one journal record into the manager during
// recovery. It runs strictly before the worker pool and the sweeper
// start, single-threaded, so no locks are taken. It rebuilds only the
// job map, the cache and the sequence counters; queue membership,
// retention order and gauges are derived afterwards by recover.
// Records referencing unknown jobs (evicted before the record was
// written against a pre-eviction snapshot — impossible in a healthy
// journal, but cheap to tolerate) are skipped.
func (m *Manager) applyRecord(rec *Record) error {
	j := m.jobs[rec.Job]
	switch rec.Kind {
	case RecSubmit:
		if rec.Job == "" || rec.Req == nil {
			return fmt.Errorf("jobs: malformed submit record (job %q)", rec.Job)
		}
		j := &Job{
			id:       rec.Job,
			seq:      rec.Seq,
			hash:     rec.Hash,
			req:      *rec.Req,
			batch:    rec.Batch,
			lane:     rec.Lane,
			state:    StateQueued,
			enqueued: rec.Time,
		}
		if j.lane == "" {
			// Pre-lane journal: classify exactly as submit would have.
			j.lane = j.req.lane()
		}
		// The problem hash is derived, never journaled; recompute it so
		// recovered jobs keep sharing the evaluation cache. A request that
		// survived submission always hashes, so the error path is dead in
		// a healthy journal.
		j.problemHash, _ = j.req.ProblemHash() //nolint:errcheck // empty hash only disables sharing
		m.jobs[rec.Job] = j
		if rec.Seq > m.seq {
			m.seq = rec.Seq
		}
	case RecStart:
		if j == nil {
			return nil
		}
		j.state = StateRunning
		j.worker = ""
		j.leaseID = ""
		j.attempts = rec.Attempts
		j.started = rec.Time
	case RecLease:
		if rec.LeaseSeq > m.leaseSeq {
			m.leaseSeq = rec.LeaseSeq
		}
		if j == nil {
			return nil
		}
		j.state = StateRunning
		j.worker = rec.Worker
		j.leaseID = rec.Lease
		j.leaseSeq = rec.LeaseSeq
		j.leaseDeadline = rec.Deadline
		j.attempts = rec.Attempts
		j.started = rec.Time
	case RecHeartbeat:
		if j != nil && j.leaseID == rec.Lease {
			j.leaseDeadline = rec.Deadline
		}
	case RecRequeue:
		if j == nil {
			return nil
		}
		j.state = StateQueued
		j.worker = ""
		j.leaseID = ""
		j.started = time.Time{}
		j.requeues = rec.Requeues
		if rec.Attempts > 0 {
			j.attempts = rec.Attempts
		}
	case RecDone, RecFail, RecCancel:
		if j == nil {
			return nil
		}
		switch rec.Kind {
		case RecDone:
			j.state = StateDone
			j.cached = rec.Cached
			switch {
			case rec.Result != nil:
				j.result = rec.Result
			case rec.Cached:
				// Cached settlement: the result is whatever the cache holds
				// under the job's hash at this point of the log.
				if el, ok := m.cache[j.hash]; ok {
					j.result = el.Value.(*cacheEntry).res
				}
			}
		case RecFail:
			j.state = StateFailed
		case RecCancel:
			j.state = StateCanceled
		}
		j.err = rec.Err
		j.finished = rec.Time
		j.leaseID = ""
		if rec.Worker != "" {
			j.worker = rec.Worker
		}
		if rec.Attempts > 0 {
			j.attempts = rec.Attempts
		}
		if !rec.Started.IsZero() {
			j.started = rec.Started
		}
		if j.started.IsZero() {
			j.started = j.finished
		}
	case RecJobEvict:
		delete(m.jobs, rec.Job)
	case RecBatch:
		if rec.Batch == "" {
			return fmt.Errorf("jobs: malformed batch record")
		}
		m.batches[rec.Batch] = &Batch{
			id:        rec.Batch,
			seq:       rec.Seq,
			created:   rec.Time,
			memberIDs: rec.Members,
		}
		if rec.Seq > m.batchSeq {
			m.batchSeq = rec.Seq
		}
	case RecBatchEvict:
		delete(m.batches, rec.Batch)
	case RecCacheEvict:
		if el, ok := m.cache[rec.Hash]; ok {
			m.lru.Remove(el)
			delete(m.cache, rec.Hash)
		}
	case RecCacheEntry:
		res := rec.Result
		if res == nil && j != nil {
			res = j.result
		}
		if el, ok := m.cache[rec.Hash]; ok {
			ent := el.Value.(*cacheEntry)
			if res != nil {
				ent.res = res
				ent.jobID = rec.Job
			}
			m.lru.MoveToFront(el)
		} else if res != nil {
			m.cache[rec.Hash] = m.lru.PushFront(&cacheEntry{hash: rec.Hash, res: res, jobID: rec.Job})
		}
	default:
		// Unknown kinds from a newer version: skip, do not fail the boot.
	}
	return nil
}

// recover replays the store into the manager and repairs what the
// crash interrupted: queued jobs re-enter the pending queue in original
// submit order; interrupted local runs are requeued with their retry
// budget intact; remote leases still within their TTL stay attached so
// the worker's next heartbeat or result post is honored; expired leases
// go through the same requeue-or-fail path the sweeper would have
// applied. Runs before the worker pool starts.
func (m *Manager) recover() error {
	begin := time.Now()
	if err := m.store.Replay(m.applyRecord); err != nil {
		return fmt.Errorf("jobs: replaying store: %w", err)
	}
	now := m.now()

	m.mu.Lock()

	// Gauges first, from the replayed states, so the fixups below adjust
	// them exactly as the live transitions would have.
	var queued, running, leased int64
	for _, j := range m.jobs {
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
			if j.leaseID != "" {
				leased++
			}
		}
	}
	m.metrics.queued.Store(queued)
	m.metrics.running.Store(running)
	m.metrics.leasesActive.Store(leased)

	// Re-link batches to their member jobs (the journal stores member
	// IDs; a batch evicted with RecBatchEvict is already gone). Jobs
	// carrying a batch tag whose RecBatch never made the journal are
	// orphans of a submission the crash interrupted before it was
	// acknowledged: cancel them, exactly as an unacknowledged Submit
	// whose RecSubmit never landed would simply not exist.
	for _, b := range m.batches {
		seen := make(map[string]bool, len(b.memberIDs))
		b.unique = b.unique[:0]
		b.terminal = 0
		for _, id := range b.memberIDs {
			if seen[id] {
				continue
			}
			seen[id] = true
			j, ok := m.jobs[id]
			if !ok {
				continue // evicted from a stale journal; tolerate
			}
			b.unique = append(b.unique, j)
			if j.state.Terminal() {
				b.terminal++
				if j.finished.After(b.finished) {
					b.finished = j.finished
				}
			}
		}
	}
	// Jobs carrying a batch tag whose committing RecBatch never made the
	// journal are orphans of a submission the crash interrupted before
	// it was acknowledged. Clear their tag (they re-enter ordinary job
	// retention) now; the non-terminal ones are canceled after the
	// retention rebuild below, so they enroll exactly once.
	var orphans []*Job
	for _, j := range m.jobs {
		if j.batch == "" {
			continue
		}
		if _, ok := m.batches[j.batch]; ok {
			continue
		}
		j.batch = ""
		orphans = append(orphans, j)
	}

	// Retention order: terminal jobs, oldest finish first (ties by
	// submit order). The journal interleaves settlements with everything
	// else and snapshots are submit-ordered, so this must be rebuilt.
	// Batch members are excluded — they are retained through their batch.
	var term []*Job
	for _, j := range m.jobs {
		if j.state.Terminal() && j.batch == "" {
			term = append(term, j)
		}
	}
	sort.Slice(term, func(i, k int) bool {
		if !term[i].finished.Equal(term[k].finished) {
			return term[i].finished.Before(term[k].finished)
		}
		return term[i].seq < term[k].seq
	})
	for _, j := range term {
		m.order.PushBack(retained{job: j, finished: j.finished})
	}

	// Cancel the non-terminal orphans: the caller never saw the batch
	// acknowledged, so its members must not silently run.
	for _, j := range orphans {
		if j.state.Terminal() {
			continue // already enrolled by the rebuild above
		}
		j.mu.Lock()
		m.finishLocked(j, StateCanceled, "canceled: batch submission interrupted")
		j.mu.Unlock()
	}

	// Batch retention order: terminal batches, oldest settle first.
	var termBatches []*Batch
	for _, b := range m.batches {
		if len(b.unique) > 0 && b.terminal == len(b.unique) {
			termBatches = append(termBatches, b)
		}
	}
	sort.Slice(termBatches, func(i, k int) bool {
		if !termBatches[i].finished.Equal(termBatches[k].finished) {
			return termBatches[i].finished.Before(termBatches[k].finished)
		}
		return termBatches[i].seq < termBatches[k].seq
	})
	for _, b := range termBatches {
		m.batchOrder.PushBack(retainedBatch{batch: b, finished: b.finished})
	}

	// Re-resolve problems for every job that may still run locally. A
	// job whose problem no longer resolves (a circuit dropped between
	// versions) fails now rather than crashing a worker later.
	for _, j := range m.jobs {
		if j.state.Terminal() {
			continue
		}
		p, err := m.cfg.Resolve(&j.req)
		if err != nil {
			j.mu.Lock()
			if j.state == StateRunning {
				if j.leaseID != "" {
					m.metrics.leasesActive.Add(-1)
				}
			}
			m.finishLocked(j, StateFailed, fmt.Sprintf("recovery: %v", err))
			j.mu.Unlock()
			continue
		}
		j.problem = p
	}

	// Crash fixups, in submit order so requeue-vs-fail outcomes are
	// deterministic.
	var live []*Job
	for _, j := range m.jobs {
		if !j.state.Terminal() {
			live = append(live, j)
		}
	}
	sort.Slice(live, func(i, k int) bool { return live[i].seq < live[k].seq })
	var pend []*Job
	for _, j := range live {
		j.mu.Lock()
		switch {
		case j.state == StateQueued:
			pend = append(pend, j)
		case j.state == StateRunning && j.leaseID == "":
			// A local run the crash interrupted: back to the queue, retry
			// budget untouched (the daemon died, not the job).
			j.state = StateQueued
			j.started = time.Time{}
			m.metrics.running.Add(-1)
			m.metrics.queued.Add(1)
			m.metrics.requeued.Add(1)
			m.journal(&Record{Kind: RecRequeue, Job: j.id, Requeues: j.requeues, Attempts: j.attempts, Time: now})
			pend = append(pend, j)
		case j.state == StateRunning && now.After(j.leaseDeadline):
			// The lease died while we were down: same requeue-or-fail the
			// sweeper would have applied.
			worker := j.worker
			m.metrics.leaseExpiries.Add(1)
			m.metrics.leasesActive.Add(-1)
			m.metrics.workerStat(worker).Expiries.Add(1)
			if j.requeues < m.cfg.MaxRetries {
				j.requeues++
				j.leaseID = ""
				j.worker = ""
				j.state = StateQueued
				j.started = time.Time{}
				m.metrics.running.Add(-1)
				m.metrics.queued.Add(1)
				m.metrics.requeued.Add(1)
				m.journal(&Record{Kind: RecRequeue, Job: j.id, Requeues: j.requeues, Attempts: j.attempts, Time: now})
				pend = append(pend, j)
			} else {
				msg := fmt.Sprintf("lease expired (worker %q unresponsive) after %d attempts", worker, j.attempts)
				m.finishLocked(j, StateFailed, msg)
			}
			// A lease still within its TTL stays attached: the job keeps its
			// leaseID and deadline, so Heartbeat and Complete recognize the
			// surviving worker and the sweeper expires it if it never calls.
		}
		j.mu.Unlock()
	}
	sort.Slice(pend, func(i, k int) bool { return pend[i].seq < pend[k].seq })
	for _, j := range pend {
		// Sequence-ordered PushBack per lane reproduces each lane's
		// original submit order.
		m.enqueueLocked(j, false)
	}

	// The cache replay honored every eviction record; a shrunk CacheSize
	// still needs a trim. Surviving entries are marked warm so hits on
	// them are attributable to recovery.
	if m.cfg.CacheSize >= 0 {
		for m.lru.Len() > m.cfg.CacheSize {
			back := m.lru.Back()
			ent := back.Value.(*cacheEntry)
			m.lru.Remove(back)
			delete(m.cache, ent.hash)
			m.journal(&Record{Kind: RecCacheEvict, Hash: ent.hash})
			m.metrics.cacheEvictions.Add(1)
		}
	} else {
		for m.lru.Len() > 0 {
			back := m.lru.Back()
			delete(m.cache, back.Value.(*cacheEntry).hash)
			m.lru.Remove(back)
		}
	}
	for el := m.lru.Front(); el != nil; el = el.Next() {
		el.Value.(*cacheEntry).warm = true
	}
	m.metrics.cacheEntries.Store(int64(m.lru.Len()))
	m.metrics.jobsTracked.Store(int64(len(m.jobs)))
	m.metrics.storeRecovered.Store(int64(len(m.jobs)))

	// Compact immediately: boot-time is the cheapest moment (no traffic)
	// and it bounds the next recovery's replay to the snapshot plus one
	// snapshot interval of records.
	recs := m.snapshotRecordsLocked()
	err := m.store.Compact(recs)
	if err == nil {
		m.appendsSince.Store(0)
	}
	m.mu.Unlock()
	if err != nil {
		return fmt.Errorf("jobs: compacting after recovery: %w", err)
	}
	m.metrics.storeRecoveryNanos.Store(int64(time.Since(begin)))
	return nil
}

// snapshotRecordsLocked encodes the current control plane as the
// minimal record sequence that rebuilds it: one RecSubmit per tracked
// job (submit order) followed by its current-state record, then the
// cache entries oldest-first so replay reproduces the LRU order. Cache
// entries whose job is still tracked reference it; entries that
// outlived their job's retention carry the result inline. Caller holds
// m.mu.
func (m *Manager) snapshotRecordsLocked() []*Record {
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })

	recs := make([]*Record, 0, 2*len(jobs)+m.lru.Len())
	for _, j := range jobs {
		j.mu.Lock()
		req := j.req
		recs = append(recs, &Record{Kind: RecSubmit, Job: j.id, Seq: j.seq, Hash: j.hash, Req: &req, Batch: j.batch, Lane: j.lane, Time: j.enqueued})
		switch j.state {
		case StateQueued:
			if j.requeues > 0 || j.attempts > 0 {
				recs = append(recs, &Record{Kind: RecRequeue, Job: j.id, Requeues: j.requeues, Attempts: j.attempts, Time: j.enqueued})
			}
		case StateRunning:
			if j.leaseID != "" {
				recs = append(recs, &Record{Kind: RecLease, Job: j.id, Worker: j.worker, Lease: j.leaseID,
					LeaseSeq: j.leaseSeq, Deadline: j.leaseDeadline, Attempts: j.attempts, Time: j.started})
			} else {
				recs = append(recs, &Record{Kind: RecStart, Job: j.id, Attempts: j.attempts, Time: j.started})
			}
		case StateDone:
			rec := settleRecord(j, StateDone, j.worker, "")
			// In a snapshot the settlement must stand alone: cached jobs
			// inline their result rather than referencing cache log order.
			rec.Result = j.result
			recs = append(recs, rec)
		case StateFailed:
			recs = append(recs, settleRecord(j, StateFailed, j.worker, j.err))
		case StateCanceled:
			recs = append(recs, settleRecord(j, StateCanceled, j.worker, j.err))
		}
		j.mu.Unlock()
	}
	for el := m.lru.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*cacheEntry)
		rec := &Record{Kind: RecCacheEntry, Hash: ent.hash}
		if j, ok := m.jobs[ent.jobID]; ok && j.result == ent.res {
			rec.Job = ent.jobID
		} else {
			rec.Result = ent.res
		}
		recs = append(recs, rec)
	}
	// Batches last: their member jobs were just encoded above, so replay
	// re-links every commit record to live jobs.
	batches := make([]*Batch, 0, len(m.batches))
	for _, b := range m.batches {
		batches = append(batches, b)
	}
	sort.Slice(batches, func(i, k int) bool { return batches[i].seq < batches[k].seq })
	for _, b := range batches {
		recs = append(recs, &Record{Kind: RecBatch, Batch: b.id, Seq: b.seq, Members: b.memberIDs, Time: b.created})
	}
	return recs
}

// maybeSnapshot compacts the store once enough records accumulated
// since the last snapshot; called from the sweeper.
func (m *Manager) maybeSnapshot() {
	if !m.persistent || m.cfg.SnapshotEvery <= 0 {
		return
	}
	if m.appendsSince.Load() < int64(m.cfg.SnapshotEvery) {
		return
	}
	m.snapshot()
}

// snapshot compacts the store to the current control plane.
func (m *Manager) snapshot() {
	if !m.persistent {
		return
	}
	m.mu.Lock()
	recs := m.snapshotRecordsLocked()
	err := m.store.Compact(recs)
	if err == nil {
		m.appendsSince.Store(0)
	}
	m.mu.Unlock()
	if err != nil {
		m.storeErrOnce.Do(func() {
			log.Printf("jobs: persistent store degraded (compaction failed): %v", err)
		})
	}
}

// Shutdown stops the manager for a graceful restart. With a persistent
// store it refuses new submissions, drains the local pool — each
// interrupted local run is journaled back into the queue with its retry
// budget intact — leaves queued jobs and live remote leases journaled
// so the next boot resumes them and surviving workers reattach, then
// writes a final snapshot and closes the store. Without a persistent
// store nothing would survive the process, so Shutdown is Close.
func (m *Manager) Shutdown() {
	if !m.persistent {
		m.Close()
		return
	}
	if m.down.Swap(true) {
		return
	}
	m.draining.Store(true)
	m.stop()
	m.wg.Wait()
	m.snapshot()
	if err := m.store.Close(); err != nil {
		log.Printf("jobs: closing store: %v", err)
	}
}
