package jobs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual time source; the manager's
// background sweeper may read it concurrently with the test advancing
// it.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// leaseManager builds a remote-only manager on a fake clock.
func leaseManager(t *testing.T, clk *fakeClock, cfg Config) *Manager {
	t.Helper()
	cfg.RemoteOnly = true
	cfg.clock = clk.Now
	return testManager(t, cfg, 0)
}

func submitQuick(t *testing.T, m *Manager, seed uint64) *Job {
	t.Helper()
	opts := quickOpts
	opts.Seed = Seed(seed)
	j, err := m.Submit(Request{Circuit: "analytic", Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestClaimHeartbeatComplete(t *testing.T) {
	clk := newFakeClock()
	m := leaseManager(t, clk, Config{LeaseTTL: 30 * time.Second})
	job := submitQuick(t, m, 1)

	lease, err := m.Claim("w1")
	if err != nil {
		t.Fatal(err)
	}
	if lease == nil || lease.JobID != job.ID() {
		t.Fatalf("lease = %+v, want job %s", lease, job.ID())
	}
	if lease.Request.Circuit != "analytic" || lease.TTLSeconds != 30 {
		t.Errorf("lease carries request %q ttl %v", lease.Request.Circuit, lease.TTLSeconds)
	}
	if st := job.Status(); st.State != StateRunning || st.Worker != "w1" || st.Attempts != 1 {
		t.Errorf("claimed job status = %+v", st)
	}
	// An empty queue answers (nil, nil), not an error.
	if extra, err := m.Claim("w2"); err != nil || extra != nil {
		t.Fatalf("claim on empty queue = %+v, %v", extra, err)
	}

	clk.Advance(20 * time.Second)
	deadline, err := m.Heartbeat(job.ID(), lease.LeaseID)
	if err != nil {
		t.Fatal(err)
	}
	if want := clk.Now().Add(30 * time.Second); !deadline.Equal(want) {
		t.Errorf("heartbeat deadline = %v, want %v", deadline, want)
	}
	// The heartbeat pushed the deadline past the original TTL.
	clk.Advance(20 * time.Second)
	m.sweep(clk.Now())
	if st := job.State(); st != StateRunning {
		t.Fatalf("heartbeated lease expired anyway (state %v)", st)
	}

	res := &Result{Kind: KindVerify}
	if err := m.Complete(job.ID(), lease.LeaseID, res); err != nil {
		t.Fatal(err)
	}
	if st := job.State(); st != StateDone {
		t.Fatalf("state after Complete = %v", st)
	}
	// Wrong or stale lease IDs are refused on every operation.
	if err := m.Complete(job.ID(), lease.LeaseID, res); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("double Complete: err = %v, want ErrLeaseLost", err)
	}
	if _, err := m.Heartbeat(job.ID(), lease.LeaseID); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("heartbeat after Complete: err = %v, want ErrLeaseLost", err)
	}
	if _, err := m.Heartbeat("job-999999", "lease-000001"); !errors.Is(err, ErrNotFound) {
		t.Errorf("heartbeat on unknown job: err = %v, want ErrNotFound", err)
	}
	if got := m.Metrics().Claims(); got != 1 {
		t.Errorf("claims = %d, want 1", got)
	}
	ws := m.Metrics().WorkerStats()["w1"]
	if ws == nil || ws.Claims.Load() != 1 || ws.Done.Load() != 1 {
		t.Errorf("per-worker shard = %+v", ws)
	}
}

// A silent lease expires on the TTL: the job goes back to the queue,
// a second worker completes it exactly once, and the dead worker's
// late post is refused.
func TestLeaseExpiryRequeuesWithFakeClock(t *testing.T) {
	clk := newFakeClock()
	m := leaseManager(t, clk, Config{LeaseTTL: 30 * time.Second, MaxRetries: 2})
	job := submitQuick(t, m, 1)

	dead, err := m.Claim("dead")
	if err != nil {
		t.Fatal(err)
	}
	// Just before the deadline nothing happens.
	clk.Advance(29 * time.Second)
	m.sweep(clk.Now())
	if st := job.State(); st != StateRunning {
		t.Fatalf("lease expired early (state %v)", st)
	}
	// Past the deadline the job is requeued.
	clk.Advance(2 * time.Second)
	m.sweep(clk.Now())
	if st := job.State(); st != StateQueued {
		t.Fatalf("state after expiry = %v, want queued", st)
	}
	if got := m.Metrics().LeaseExpiries(); got != 1 {
		t.Errorf("lease expiries = %d, want 1", got)
	}
	if got := m.Metrics().Requeued(); got != 1 {
		t.Errorf("requeued = %d, want 1", got)
	}

	// A live worker picks it up and completes it.
	live, err := m.Claim("live")
	if err != nil {
		t.Fatal(err)
	}
	if live == nil || live.JobID != job.ID() {
		t.Fatalf("requeued job not claimable: %+v", live)
	}
	if st := job.Status(); st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", st.Attempts)
	}
	if err := m.Complete(job.ID(), live.LeaseID, &Result{Kind: KindVerify}); err != nil {
		t.Fatal(err)
	}
	// The dead worker wakes up and tries to report: refused, the job
	// completed exactly once.
	if err := m.Complete(job.ID(), dead.LeaseID, &Result{Kind: KindVerify}); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("stale Complete: err = %v, want ErrLeaseLost", err)
	}
	if _, err := m.Heartbeat(job.ID(), dead.LeaseID); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("stale heartbeat: err = %v, want ErrLeaseLost", err)
	}
	if got := m.Metrics().Done(); got != 1 {
		t.Errorf("done = %d, want exactly 1", got)
	}
}

// After MaxRetries requeues the next expiry fails the job instead of
// cycling it forever.
func TestLeaseExpiryExhaustsRetries(t *testing.T) {
	clk := newFakeClock()
	m := leaseManager(t, clk, Config{LeaseTTL: 10 * time.Second, MaxRetries: 1})
	job := submitQuick(t, m, 1)

	for round := 0; round < 2; round++ {
		if lease, err := m.Claim("flaky"); err != nil || lease == nil {
			t.Fatalf("round %d: claim = %+v, %v", round, lease, err)
		}
		clk.Advance(11 * time.Second)
		m.sweep(clk.Now())
	}
	if st := job.State(); st != StateFailed {
		t.Fatalf("state after exhausting retries = %v, want failed", st)
	}
	if msg := job.Err(); !strings.Contains(msg, "lease expired") {
		t.Errorf("failure message = %q", msg)
	}
	if got := m.Metrics().Requeued(); got != 1 {
		t.Errorf("requeued = %d, want 1", got)
	}
	if got := m.Metrics().LeaseExpiries(); got != 2 {
		t.Errorf("lease expiries = %d, want 2", got)
	}
}

// Cancelling a leased job revokes the lease: the worker's next
// heartbeat or post is refused.
func TestCancelLeasedJob(t *testing.T) {
	clk := newFakeClock()
	m := leaseManager(t, clk, Config{LeaseTTL: 30 * time.Second})
	job := submitQuick(t, m, 1)
	lease, err := m.Claim("w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(job.ID()); err != nil {
		t.Fatal(err)
	}
	if st := job.State(); st != StateCanceled {
		t.Fatalf("state after cancel = %v", st)
	}
	if _, err := m.Heartbeat(job.ID(), lease.LeaseID); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("heartbeat after cancel: err = %v, want ErrLeaseLost", err)
	}
	if err := m.Complete(job.ID(), lease.LeaseID, &Result{Kind: KindVerify}); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("complete after cancel: err = %v, want ErrLeaseLost", err)
	}
}

// Close revokes outstanding leases and cancels their jobs.
func TestCloseCancelsLeasedJobs(t *testing.T) {
	clk := newFakeClock()
	m := leaseManager(t, clk, Config{LeaseTTL: 30 * time.Second})
	job := submitQuick(t, m, 1)
	lease, err := m.Claim("w1")
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if st := job.State(); st != StateCanceled {
		t.Fatalf("leased job after Close: state %v, want canceled", st)
	}
	if _, err := m.Claim("w1"); !errors.Is(err, ErrClosed) {
		t.Errorf("claim after Close: err = %v, want ErrClosed", err)
	}
	if err := m.Complete(job.ID(), lease.LeaseID, &Result{Kind: KindVerify}); !errors.Is(err, ErrLeaseLost) {
		t.Errorf("complete after Close: err = %v, want ErrLeaseLost", err)
	}
}
