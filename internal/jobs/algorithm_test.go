package jobs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestNormalizeRejectsUnhonoredOptions pins satellite behaviour: a
// request naming options its kind cannot honor is rejected at submit
// time instead of silently ignored.
func TestNormalizeRejectsUnhonoredOptions(t *testing.T) {
	cases := []struct {
		name    string
		req     Request
		wantErr string // empty means the request must normalize cleanly
	}{
		{"optimize default algorithm", Request{Circuit: "ota"}, ""},
		{"optimize feasguided", Request{Circuit: "ota", Options: RunOptions{Algorithm: "feasguided"}}, ""},
		{"optimize cem", Request{Circuit: "ota", Options: RunOptions{Algorithm: "cem"}}, ""},
		{"optimize algorithm case-folded", Request{Circuit: "ota", Options: RunOptions{Algorithm: " CEM "}}, ""},
		{"optimize unknown algorithm", Request{Circuit: "ota", Options: RunOptions{Algorithm: "gradient-descent"}},
			"unknown search algorithm"},
		{"verify plain", Request{Kind: KindVerify, Circuit: "ota",
			Options: RunOptions{VerifySamples: 30, Seed: Seed(1), VerifyWorkers: 2}}, ""},
		{"verify with algorithm", Request{Kind: KindVerify, Circuit: "ota",
			Options: RunOptions{Algorithm: "cem"}}, "cannot honor option(s) algorithm"},
		{"verify with optimizer knobs", Request{Kind: KindVerify, Circuit: "ota",
			Options: RunOptions{MaxIterations: 3, ModelSamples: 500}},
			"cannot honor option(s) modelSamples, maxIterations"},
		{"verify with ablations", Request{Kind: KindVerify, Circuit: "ota",
			Options: RunOptions{NoConstraints: true, LHS: true, SkipVerify: true}},
			"cannot honor"},
		{"verify with wcSeed", Request{Kind: KindVerify, Circuit: "ota",
			Options: RunOptions{WCSeed: Seed(7)}}, "wcSeed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Normalize()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Normalize: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Normalize accepted a request that should fail with %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Normalize error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestRequestHashAlgorithmCompat pins the wire compatibility contract:
// requests that omit the algorithm field hash byte-identically to the
// encoding before the field existed, so journaled jobs and cached
// results from earlier releases stay reachable. The constants were
// captured from the pre-backend-split tree.
func TestRequestHashAlgorithmCompat(t *testing.T) {
	cases := []struct {
		req  Request
		want string
	}{
		{Request{Circuit: "ota", Options: RunOptions{ModelSamples: 1500, VerifySamples: 80, MaxIterations: 2, Seed: Seed(7)}},
			"405bca8b31a80b437a096e93308a77232357384afd9c120e028e910ee71c5f8c"},
		{Request{Kind: KindVerify, Circuit: "ota", Options: RunOptions{VerifySamples: 30, Seed: Seed(1)}},
			"0899a44435537add14b0bbc553418badff1e4632fe17b6fbdda6c95fcb38320e"},
		{Request{Circuit: "miller", Options: RunOptions{}},
			"0ecdfa4bbbe7b58576aa85e96004b351b01a0a9c38f054d22e1ea0be654aac50"},
	}
	for i, tc := range cases {
		if err := tc.req.Normalize(); err != nil {
			t.Fatalf("case %d: Normalize: %v", i, err)
		}
		got, err := tc.req.Hash()
		if err != nil {
			t.Fatalf("case %d: Hash: %v", i, err)
		}
		if got != tc.want {
			t.Errorf("case %d: hash drifted from the pre-algorithm encoding:\n got %s\nwant %s", i, got, tc.want)
		}
	}
	// An explicitly-named default algorithm is a different request on the
	// wire (it no longer omits the field), so it must hash differently —
	// the cache treats it as a distinct submission by design.
	named := Request{Circuit: "ota", Options: RunOptions{Algorithm: "feasguided",
		ModelSamples: 1500, VerifySamples: 80, MaxIterations: 2, Seed: Seed(7)}}
	if err := named.Normalize(); err != nil {
		t.Fatal(err)
	}
	h, err := named.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h == cases[0].want {
		t.Error("explicit algorithm name did not change the request hash")
	}
}

// goldenPath is the pre-refactor feasguided OTA result, captured through
// the job API before the optimizer was split into engine + backends.
// Regenerate (only if the trajectory contract intentionally changes) with
//
//	SPECWISE_UPDATE_GOLDEN=1 go test ./internal/jobs/ -run TestBackendEquivalenceOTA
const goldenPath = "testdata/golden_ota_feasguided.json"

// TestBackendEquivalenceOTA runs the OTA through the full job API under
// every registered backend. The feasguided run must reproduce the
// pre-refactor golden byte for byte — the engine/backend split is a pure
// refactor of the default algorithm — while the cem run only has to
// complete end to end with its own algorithm stamp.
func TestBackendEquivalenceOTA(t *testing.T) {
	if testing.Short() {
		t.Skip("full OTA optimizations in -short mode")
	}
	opts := RunOptions{ModelSamples: 1500, VerifySamples: 80, MaxIterations: 2, Seed: Seed(7)}

	run := func(t *testing.T, algorithm string) *Result {
		t.Helper()
		m := New(Config{Workers: 1}) // default resolver: the circuits registry
		defer m.Close()
		o := opts
		o.Algorithm = algorithm
		job, err := m.Submit(Request{Circuit: "ota", Options: o})
		if err != nil {
			t.Fatal(err)
		}
		if st := waitState(t, job, 5*time.Minute); st != StateDone {
			t.Fatalf("job state %s, err %q", st, job.Err())
		}
		res, _ := job.Result()
		if res == nil || res.Optimization == nil {
			t.Fatal("done job has no optimization result")
		}
		return res
	}

	t.Run("feasguided", func(t *testing.T) {
		res := run(t, "feasguided")
		opt := res.Optimization
		if opt.Algorithm != "feasguided" {
			t.Fatalf("result algorithm = %q, want feasguided", opt.Algorithm)
		}
		opt.StripVolatile()
		// The golden predates the algorithm field; clear it so the rest of
		// the result compares byte-for-byte.
		opt.Algorithm = ""
		got, err := json.MarshalIndent(opt, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, '\n')
		if os.Getenv("SPECWISE_UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(filepath.FromSlash(goldenPath), got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s", goldenPath)
			return
		}
		want, err := os.ReadFile(filepath.FromSlash(goldenPath))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("feasguided OTA result drifted from the pre-refactor golden %s\n got %d bytes\nwant %d bytes",
				goldenPath, len(got), len(want))
		}
	})

	t.Run("cem", func(t *testing.T) {
		res := run(t, "cem")
		opt := res.Optimization
		if opt.Algorithm != "cem" {
			t.Fatalf("result algorithm = %q, want cem", opt.Algorithm)
		}
		if len(opt.Iterations) == 0 || len(opt.FinalDesign) == 0 {
			t.Fatalf("cem result incomplete: %d iterations, %d design values",
				len(opt.Iterations), len(opt.FinalDesign))
		}
		if opt.Simulations == 0 {
			t.Error("cem result reports zero simulations")
		}
	})
}

// TestDefaultAlgorithmStamping: a manager configured with a default
// backend stamps it onto optimize requests that omit one (changing
// their hash namespace), while explicit choices and verify requests
// pass through untouched.
func TestDefaultAlgorithmStamping(t *testing.T) {
	m := testManager(t, Config{Workers: 1, DefaultAlgorithm: "cem"}, 0)

	job, err := m.Submit(Request{Circuit: "analytic", Options: quickOpts})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, job, time.Minute); st != StateDone {
		t.Fatalf("job state %s, err %q", st, job.Err())
	}
	res, _ := job.Result()
	if res.Optimization.Algorithm != "cem" {
		t.Errorf("stamped job algorithm = %q, want cem", res.Optimization.Algorithm)
	}

	explicit := quickOpts
	explicit.Algorithm = "feasguided"
	job2, err := m.Submit(Request{Circuit: "analytic", Options: explicit})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, job2, time.Minute); st != StateDone {
		t.Fatalf("explicit job state %s, err %q", st, job2.Err())
	}
	res2, _ := job2.Result()
	if res2.Optimization.Algorithm != "feasguided" {
		t.Errorf("explicit job algorithm = %q, want feasguided", res2.Optimization.Algorithm)
	}

	// Verify-kind requests have no algorithm; stamping must not make
	// them fail option validation.
	vjob, err := m.Submit(Request{Kind: KindVerify, Circuit: "analytic",
		Options: RunOptions{VerifySamples: 20, Seed: Seed(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, vjob, time.Minute); st != StateDone {
		t.Fatalf("verify job state %s, err %q", st, vjob.Err())
	}
}
