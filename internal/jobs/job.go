// Package jobs turns the specwise optimizer into an asynchronous job
// service: submitted yield-analysis and yield-optimization requests are
// enqueued into a bounded queue, executed by a worker pool (each worker
// running the core optimizer with context cancellation and live progress
// reporting), and kept in an in-memory store with a deterministic
// content-hash result cache — identical (problem, seed, options)
// submissions are answered instantly. The paper farmed its verification
// Monte-Carlo out to a cluster of five machines; this package gives
// that shape two interchangeable worker pools: in-process goroutines,
// and remote pull-workers that claim jobs under expiring leases over
// the HTTP layer on top (internal/server, cmd/specwise-worker). The
// store applies a retention policy (cap + TTL) to terminal jobs so the
// job map stays bounded under sustained traffic.
package jobs

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"specwise/internal/core"
	"specwise/internal/report"
	"specwise/internal/wcd"
)

// Job kinds.
const (
	// KindOptimize runs the full Fig.-6 yield optimization.
	KindOptimize = "optimize"
	// KindVerify runs the Sec.-2 Monte-Carlo yield verification at the
	// problem's initial design.
	KindVerify = "verify"
)

// Priority lanes. The queue is split so cheap Monte-Carlo verifies keep
// flowing underneath long optimize runs; the weighted round-robin drain
// (see Manager.takeLocked) guarantees neither lane starves.
const (
	// LaneVerify is the cheap lane: quick Monte-Carlo yield checks.
	LaneVerify = "verify"
	// LaneOptimize is the heavy lane: full yield-optimization runs.
	LaneOptimize = "optimize"
)

// Lanes lists the known lanes in drain-priority order (the weighted
// round-robin cycle starts with the cheap lane).
func Lanes() []string { return []string{LaneVerify, LaneOptimize} }

// ValidLane reports whether name names a known priority lane.
func ValidLane(name string) bool { return name == LaneVerify || name == LaneOptimize }

// RunOptions is the JSON-facing subset of core.Options a request may set.
// Zero values fall back to the optimizer's paper defaults.
type RunOptions struct {
	// Algorithm selects the search backend for optimize jobs; empty means
	// the default (feasguided). The omitempty marshalling keeps the
	// content hash of algorithm-less requests byte-identical to the
	// pre-field encoding, so existing cache entries and journaled
	// requests stay reachable.
	Algorithm     string `json:"algorithm,omitempty"`
	ModelSamples  int    `json:"modelSamples,omitempty"`
	VerifySamples int    `json:"verifySamples,omitempty"`
	MaxIterations int    `json:"maxIterations,omitempty"`
	// Seed is a pointer so "unset" (nil, the paper's default stream) is
	// distinguishable from an explicit seed 0. The omitempty marshalling
	// keeps the content hash of seedless and nonzero-seed requests
	// byte-identical to the pre-pointer encoding, so existing cache
	// entries stay reachable.
	Seed *uint64 `json:"seed,omitempty"`
	// WCSeed pins the worst-case search's restart stream independently
	// of the run seed, making the WC analysis a pure function of
	// (design, spec). Seed sweeps set it so members differ only in their
	// sampling streams — and, under the shared evaluation cache, reuse
	// each other's worst-case simulations. nil keeps the historical
	// derivation from the run seed (and the historical content hash).
	WCSeed             *uint64 `json:"wcSeed,omitempty"`
	NoConstraints      bool    `json:"noConstraints,omitempty"`
	LinearizeAtNominal bool    `json:"linearizeAtNominal,omitempty"`
	NoMirrorSpecs      bool    `json:"noMirrorSpecs,omitempty"`
	SkipVerify         bool    `json:"skipVerify,omitempty"`
	LHS                bool    `json:"lhs,omitempty"`
	QuadraticSpecs     bool    `json:"quadraticSpecs,omitempty"`
	RefineThetaPasses  int     `json:"refineThetaPasses,omitempty"`
	// VerifyWorkers and SweepWorkers bound the Monte-Carlo verification
	// pool and the per-frequency AC-sweep fan-out. Both are
	// behaviour-preserving (results are bit-identical for any setting),
	// so requests that omit them hash identically to pre-knob requests
	// and keep hitting the result cache.
	VerifyWorkers int `json:"verifyWorkers,omitempty"`
	SweepWorkers  int `json:"sweepWorkers,omitempty"`
	// Speculate turns on the predict-ahead evaluation pipeline: while the
	// optimizer executes the authoritative step, idle cores pre-run the
	// simulations the predicted next step will need. Behaviour-preserving
	// like the worker knobs (results and simulation counts are
	// bit-identical with speculation on or off). The pointer makes the
	// option tri-state: nil follows the executing pool's default (the
	// daemon/worker -speculate flag), while an explicit false opts a
	// request out of a speculating fleet — distinguishable from "unset",
	// which a plain bool with omitempty cannot express on the wire.
	// Requests that leave it nil marshal without the field and hash
	// identically to pre-knob requests, keeping the result cache warm.
	// SpecWorkers bounds the speculation pool (0 = GOMAXPROCS).
	Speculate   *bool `json:"speculate,omitempty"`
	SpecWorkers int   `json:"specWorkers,omitempty"`
	// Lane overrides the priority-lane classification that normally
	// follows the request kind (verify jobs ride the cheap lane, optimize
	// jobs the heavy one) — e.g. a known-cheap single-iteration optimize
	// may ask for the verify lane. Lanes are pure scheduling: results are
	// bit-identical whichever lane runs a job, and the omitempty
	// marshalling keeps lane-less request hashes byte-identical to the
	// pre-field encoding so existing cache entries stay reachable.
	Lane string `json:"lane,omitempty"`
}

// Seed returns a pointer to v, for building RunOptions literals.
func Seed(v uint64) *uint64 { return &v }

// Bool returns a pointer to v, for building RunOptions literals
// (options.speculate is tri-state: nil, explicit true, explicit false).
func Bool(v bool) *bool { return &v }

// defaultSeed is the optimizer's default random stream (DAC 2001
// opening day), used when a request leaves the seed unset.
const defaultSeed = 20010618

// seed resolves the request seed: nil means the default stream, any
// explicit value — including zero — is honored as-is.
func (o RunOptions) seed() uint64 {
	if o.Seed != nil {
		return *o.Seed
	}
	return defaultSeed
}

// speculateOr resolves the tri-state speculate option against the
// executing pool's default: an explicit request value — true or false —
// always wins, nil follows the pool.
func (o RunOptions) speculateOr(def bool) bool {
	if o.Speculate != nil {
		return *o.Speculate
	}
	return def
}

// Core converts the wire options into optimizer options.
func (o RunOptions) Core() core.Options {
	var wc wcd.Options
	if o.WCSeed != nil {
		wc.Seed = *o.WCSeed
		if wc.Seed == 0 {
			wc.Seed = 0x5eed // explicit 0 pins the WC module's default stream
		}
	}
	return core.Options{
		Algorithm:          o.Algorithm,
		WC:                 wc,
		ModelSamples:       o.ModelSamples,
		VerifySamples:      o.VerifySamples,
		MaxIterations:      o.MaxIterations,
		Seed:               o.seed(),
		HasSeed:            true,
		NoConstraints:      o.NoConstraints,
		LinearizeAtNominal: o.LinearizeAtNominal,
		NoMirrorSpecs:      o.NoMirrorSpecs,
		SkipVerify:         o.SkipVerify,
		LHS:                o.LHS,
		QuadraticSpecs:     o.QuadraticSpecs,
		RefineThetaPasses:  o.RefineThetaPasses,
		VerifyWorkers:      o.VerifyWorkers,
		SweepWorkers:       o.SweepWorkers,
		Speculate:          o.Speculate != nil && *o.Speculate,
		SpecWorkers:        o.SpecWorkers,
	}
}

// Request is one job submission: a kind, a problem (a built-in circuit
// name or an inline yieldspec JSON document), and run options.
type Request struct {
	Kind    string          `json:"kind,omitempty"`
	Circuit string          `json:"circuit,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	Options RunOptions      `json:"options"`
}

// Normalize fills defaults and checks structural validity, including
// that every set option is one the requested kind (and algorithm) can
// honor — a verify job that names an optimizer knob is rejected up
// front rather than silently ignoring it.
func (r *Request) Normalize() error {
	switch r.Kind {
	case "":
		r.Kind = KindOptimize
	case KindOptimize, KindVerify:
	default:
		return fmt.Errorf("jobs: unknown kind %q (want %q or %q)", r.Kind, KindOptimize, KindVerify)
	}
	r.Circuit = strings.ToLower(strings.TrimSpace(r.Circuit))
	hasCircuit := r.Circuit != ""
	hasSpec := len(r.Spec) > 0 && string(r.Spec) != "null"
	if hasCircuit == hasSpec {
		return fmt.Errorf("jobs: exactly one of circuit or spec is required")
	}
	r.Options.Algorithm = strings.ToLower(strings.TrimSpace(r.Options.Algorithm))
	r.Options.Lane = strings.ToLower(strings.TrimSpace(r.Options.Lane))
	if r.Options.Lane != "" && !ValidLane(r.Options.Lane) {
		return fmt.Errorf("jobs: unknown lane %q (want %q or %q)", r.Options.Lane, LaneVerify, LaneOptimize)
	}
	switch r.Kind {
	case KindOptimize:
		if !core.KnownBackend(r.Options.Algorithm) {
			return fmt.Errorf("jobs: unknown search algorithm %q (registered: %s)",
				r.Options.Algorithm, strings.Join(core.Backends(), ", "))
		}
	case KindVerify:
		// A verify job runs the Monte-Carlo yield check at the initial
		// design: only verifySamples, seed and verifyWorkers take effect.
		// Every optimizer-only option is a request-level contradiction.
		if ignored := r.Options.verifyIgnored(); len(ignored) > 0 {
			return fmt.Errorf("jobs: kind %q cannot honor option(s) %s (verify runs only the Monte-Carlo check; use kind %q)",
				KindVerify, strings.Join(ignored, ", "), KindOptimize)
		}
	}
	return nil
}

// lane classifies a normalized request into its priority lane: an
// explicit options.lane wins, otherwise the kind decides — verify jobs
// ride the cheap lane, optimize jobs the heavy one.
func (r *Request) lane() string {
	if r.Options.Lane != "" {
		return r.Options.Lane
	}
	if r.Kind == KindVerify {
		return LaneVerify
	}
	return LaneOptimize
}

// verifyIgnored lists the set options a verify-kind job would silently
// ignore, by their wire names. options.lane is absent on purpose: the
// lane is honored by every kind.
func (o RunOptions) verifyIgnored() []string {
	var bad []string
	add := func(set bool, name string) {
		if set {
			bad = append(bad, name)
		}
	}
	add(o.Algorithm != "", "algorithm")
	add(o.ModelSamples != 0, "modelSamples")
	add(o.MaxIterations != 0, "maxIterations")
	add(o.WCSeed != nil, "wcSeed")
	add(o.NoConstraints, "noConstraints")
	add(o.LinearizeAtNominal, "linearizeAtNominal")
	add(o.NoMirrorSpecs, "noMirrorSpecs")
	add(o.SkipVerify, "skipVerify")
	add(o.LHS, "lhs")
	add(o.QuadraticSpecs, "quadraticSpecs")
	add(o.RefineThetaPasses != 0, "refineThetaPasses")
	add(o.SweepWorkers != 0, "sweepWorkers")
	add(o.Speculate != nil, "speculate")
	add(o.SpecWorkers != 0, "specWorkers")
	return bad
}

// Hash returns the deterministic content hash that keys the result
// cache: two requests hash equally iff they describe the same problem,
// kind, seed and options. The inline spec is compacted first so
// whitespace-only differences do not defeat the cache.
func (r *Request) Hash() (string, error) {
	norm := *r
	if len(norm.Spec) > 0 {
		var buf bytes.Buffer
		if err := json.Compact(&buf, norm.Spec); err != nil {
			return "", fmt.Errorf("jobs: spec is not valid JSON: %w", err)
		}
		norm.Spec = json.RawMessage(buf.Bytes())
	}
	blob, err := json.Marshal(&norm)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// ProblemHash returns the deterministic hash of the *problem alone* —
// circuit name or compacted inline spec, nothing else. It is coarser
// than Hash(): sweep members that differ only in kind, seed or options
// share a problem hash, which is exactly the granularity the shared
// evaluation cache keys on (the evaluation is a pure function of
// (problem, d, s, θ), independent of how the optimizer is driven).
func (r *Request) ProblemHash() (string, error) {
	var blob []byte
	if r.Circuit != "" {
		blob = []byte("circuit:" + r.Circuit)
	} else {
		var buf bytes.Buffer
		if err := json.Compact(&buf, r.Spec); err != nil {
			return "", fmt.Errorf("jobs: spec is not valid JSON: %w", err)
		}
		blob = append([]byte("spec:"), buf.Bytes()...)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// State is a job's lifecycle position.
type State string

// Job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state can no longer change.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ProgressEntry is one recorded optimizer milestone.
type ProgressEntry struct {
	Time       time.Time `json:"time"`
	Stage      string    `json:"stage"`
	Iteration  int       `json:"iteration"`
	Attempt    int       `json:"attempt"`
	ModelYield float64   `json:"modelYield"`
	MCYield    *float64  `json:"mcYield,omitempty"`
}

// Result is a finished job's payload; exactly one branch is set,
// matching the request kind.
type Result struct {
	Kind         string               `json:"kind"`
	Optimization *report.Result       `json:"optimization,omitempty"`
	Verification *report.Verification `json:"verification,omitempty"`
}

// Status is the JSON-friendly snapshot served by GET /v1/jobs/{id}.
type Status struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`
	// Lane is the priority lane the job queues in (see LaneVerify,
	// LaneOptimize).
	Lane   string `json:"lane,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Batch names the owning batch submission, if any.
	Batch string `json:"batch,omitempty"`
	// Worker names the remote pull-worker holding (or last holding) the
	// job's lease; empty for jobs run by the in-process pool.
	Worker string `json:"worker,omitempty"`
	// Attempts counts execution starts: 1 for a job that ran once, more
	// when expired leases requeued it.
	Attempts    int             `json:"attempts,omitempty"`
	EnqueuedAt  time.Time       `json:"enqueuedAt"`
	StartedAt   *time.Time      `json:"startedAt,omitempty"`
	FinishedAt  *time.Time      `json:"finishedAt,omitempty"`
	WallSeconds float64         `json:"wallSeconds,omitempty"`
	Progress    []ProgressEntry `json:"progress,omitempty"`
}

// Job is one tracked submission. All mutable fields are guarded by mu;
// accessors take snapshots so HTTP handlers never race the worker.
type Job struct {
	id   string
	seq  int // manager sequence number; journaled, restored on recovery
	hash string
	// problemHash keys the shared evaluation cache; derived from the
	// request (never journaled — recovery recomputes it).
	problemHash string
	// batch is the owning batch ID, empty for standalone submissions.
	// Batch members are retained through their batch, not the per-job
	// retention queue. Immutable after submit (cleared only for orphans
	// of an uncommitted batch during recovery, before concurrency).
	batch string
	// lane names the priority lane the job queues in; classified at
	// submit (journaled, restored on recovery), immutable after.
	lane string
	req  Request

	problem *core.Problem // resolved at submit time (or on recovery)

	mu     sync.Mutex
	state  State
	err    string
	cached bool
	cancel func() // non-nil while running on the local pool
	// userCanceled marks a Cancel-initiated context cancellation, as
	// opposed to a Shutdown drain (which requeues instead of settling).
	userCanceled bool
	progress     []ProgressEntry
	result       *Result
	// watch is closed (and replaced lazily) whenever the job's observable
	// state changes — progress, lifecycle transitions, lease grants. SSE
	// streams park on it instead of polling. nil until someone watches.
	watch chan struct{}

	// Queue membership: non-nil while the job waits in its lane queue,
	// removed eagerly on cancellation so the slot frees immediately.
	// Guarded by Manager.mu (all queue surgery holds it), like queuedAt,
	// the enqueue time the lane wait metric measures from.
	queueEl  *list.Element
	queuedAt time.Time

	// Lease bookkeeping for remote pull-workers (empty for local runs).
	worker        string
	leaseID       string
	leaseSeq      int // manager lease counter at grant time (journaled)
	leaseDeadline time.Time
	attempts      int // execution starts (local runs + remote claims)
	requeues      int // lease expiries that sent the job back to the queue

	enqueued time.Time
	started  time.Time
	finished time.Time
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Hash returns the request's content hash (the cache key).
func (j *Job) Hash() string { return j.hash }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the payload and whether the job is done.
func (j *Job) Result() (*Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

// Err returns the failure message, if any.
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Status snapshots the job for serialization.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// statusLocked builds the snapshot; j.mu is held. Cancel returns it
// from inside the locked region so the HTTP layer never needs a second
// Get that could race the retention sweep.
func (j *Job) statusLocked() Status {
	st := Status{
		ID:         j.id,
		Kind:       j.req.Kind,
		State:      j.state,
		Lane:       j.lane,
		Cached:     j.cached,
		Error:      j.err,
		Batch:      j.batch,
		Worker:     j.worker,
		Attempts:   j.attempts,
		EnqueuedAt: j.enqueued,
		Progress:   append([]ProgressEntry(nil), j.progress...),
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
		st.WallSeconds = j.finished.Sub(j.started).Seconds()
	} else if !j.started.IsZero() {
		st.WallSeconds = time.Since(j.started).Seconds()
	}
	return st
}

// addProgress appends one milestone; called from the optimizer goroutine.
func (j *Job) addProgress(e core.ProgressEvent) {
	entry := ProgressEntry{
		Time:       time.Now(),
		Stage:      e.Stage,
		Iteration:  e.Iteration,
		Attempt:    e.Attempt,
		ModelYield: e.ModelYield,
	}
	if e.MCYield >= 0 {
		v := e.MCYield
		entry.MCYield = &v
	}
	j.mu.Lock()
	j.progress = append(j.progress, entry)
	j.notifyLocked()
	j.mu.Unlock()
}

// Changed returns a channel that closes on the job's next observable
// change (progress entry, state transition, lease grant). Watchers must
// obtain the channel BEFORE snapshotting Status: any change after the
// snapshot closes the returned channel, so no update can fall between
// look and sleep.
func (j *Job) Changed() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.watch == nil {
		j.watch = make(chan struct{})
	}
	return j.watch
}

// notifyLocked wakes every watcher; j.mu is held.
func (j *Job) notifyLocked() {
	if j.watch != nil {
		close(j.watch)
		j.watch = nil
	}
}
