package jobs

// Batch-submission suite: atomicity, in-batch and result-cache
// deduplication, the combined status/effort rollup, retention pinning,
// crash recovery of committed and uncommitted batches, and the
// bit-identity of results with the shared evaluation cache on and off.

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"specwise/internal/core"
)

// batchReqs builds n analytic requests with seeds 1..n.
func batchReqs(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		opts := quickOpts
		opts.Seed = Seed(uint64(i + 1))
		reqs[i] = Request{Circuit: "analytic", Options: opts}
	}
	return reqs
}

// waitBatch polls until the batch is terminal, returning the final status.
func waitBatch(t *testing.T, m *Manager, id string, timeout time.Duration) BatchStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := m.BatchStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch %s not terminal after %v: %+v", id, timeout, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Byte-identical requests in one batch must fold into a single job: one
// simulation run, one result cache entry, and the same result envelope
// served to every folded member.
func TestBatchMemberDedupe(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, 0)

	reqs := batchReqs(2)
	reqs = append(reqs, reqs[0], reqs[1], reqs[0]) // 5 members, 2 distinct
	b, err := m.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	st := waitBatch(t, m, b.ID(), 10*time.Second)
	if st.State != StateDone {
		t.Fatalf("batch state = %v: %+v", st.State, st)
	}
	if st.Unique != 2 || st.Deduped != 3 || st.Done != 2 {
		t.Fatalf("unique/deduped/done = %d/%d/%d, want 2/3/2", st.Unique, st.Deduped, st.Done)
	}
	if len(st.Members) != 5 {
		t.Fatalf("members = %d, want 5", len(st.Members))
	}
	// Folded members share the backing job's ID and status.
	if st.Members[0].ID != st.Members[2].ID || st.Members[2].ID != st.Members[4].ID {
		t.Errorf("duplicate requests did not share a job: %s %s %s",
			st.Members[0].ID, st.Members[2].ID, st.Members[4].ID)
	}
	if st.Members[1].ID != st.Members[3].ID {
		t.Errorf("duplicate requests did not share a job: %s %s", st.Members[1].ID, st.Members[3].ID)
	}
	if st.Members[0].ID == st.Members[1].ID {
		t.Error("distinct requests folded together")
	}
	// One execution per distinct request: the folded members never
	// reached a worker (and stored no extra cache entries).
	if got := m.Metrics().Done(); got != 2 {
		t.Errorf("done counter = %d, want 2 (one execution per distinct request)", got)
	}
	j0, _ := m.Get(st.Members[0].ID)
	j1, _ := m.Get(st.Members[2].ID)
	r0, _ := j0.Result()
	r1, _ := j1.Result()
	if r0 != r1 {
		t.Error("folded members hold different result envelopes")
	}
	// A resubmission of a member request hits the result cache.
	hit, err := m.Submit(reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Status().Cached {
		t.Error("post-batch resubmission missed the result cache")
	}
}

// Batch members hash-identical to an already-cached result settle
// immediately, without a queue slot or an execution.
func TestBatchDedupesAgainstResultCache(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, 0)
	pre := submitQuick(t, m, 1)
	if got := waitState(t, pre, 10*time.Second); got != StateDone {
		t.Fatalf("priming job state = %v", got)
	}
	b, err := m.SubmitBatch(batchReqs(2)) // seed 1 cached, seed 2 fresh
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.BatchStatus(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached != 1 || !st.Members[0].Cached {
		t.Errorf("cached member not settled from the result cache: %+v", st)
	}
	if st.Members[0].State != StateDone {
		t.Errorf("cached member state = %v, want done at submit time", st.Members[0].State)
	}
	final := waitBatch(t, m, b.ID(), 10*time.Second)
	if final.State != StateDone || final.Done != 2 {
		t.Fatalf("final batch status: %+v", final)
	}
	if final.Effort.Simulations <= 0 {
		t.Error("effort rollup lost the fresh member's simulations")
	}
}

// A batch that does not fit in the queue is rejected whole: no member
// is enqueued, tracked, or journaled, and the ID sequences roll back.
func TestBatchQueueFullAtomic(t *testing.T) {
	st := &memStore{}
	m := persistManager(t, Config{RemoteOnly: true, QueueSize: 2}, st, 0)
	records := st.Stats().Records
	if _, err := m.SubmitBatch(batchReqs(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := len(m.Jobs()); got != 0 {
		t.Fatalf("rejected batch left %d tracked jobs", got)
	}
	if got := st.Stats().Records; got != records {
		t.Fatalf("rejected batch journaled %d records", got-records)
	}
	// The rollback returned the sequence numbers: the next submissions
	// reuse them.
	j, err := m.Submit(Request{Circuit: "analytic", Options: quickOpts})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() != "job-000001" {
		t.Errorf("job ID after rollback = %s, want job-000001", j.ID())
	}
	b, err := m.SubmitBatch(batchReqs(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.ID() != "batch-000001" {
		t.Errorf("batch ID after rollback = %s, want batch-000001", b.ID())
	}
	// Capacity counts only fresh jobs: members answered by the result
	// cache need no queue slot.
}

// One malformed member rejects the whole batch before anything runs.
func TestBatchValidation(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, 0)
	if _, err := m.SubmitBatch(nil); !errors.Is(err, ErrEmptyBatch) {
		t.Errorf("empty batch err = %v, want ErrEmptyBatch", err)
	}
	reqs := batchReqs(2)
	reqs = append(reqs, Request{Kind: "frobnicate", Circuit: "analytic"})
	if _, err := m.SubmitBatch(reqs); err == nil {
		t.Error("batch with a malformed member accepted")
	}
	if got := len(m.Jobs()); got != 0 {
		t.Errorf("rejected batch left %d tracked jobs", got)
	}
	if _, err := m.BatchStatus("batch-000042"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown batch err = %v, want ErrNotFound", err)
	}
}

// CancelBatch cancels every queued member; the batch settles canceled.
func TestBatchCancel(t *testing.T) {
	m := testManager(t, Config{RemoteOnly: true}, 0)
	b, err := m.SubmitBatch(batchReqs(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CancelBatch(b.ID()); err != nil {
		t.Fatal(err)
	}
	st := waitBatch(t, m, b.ID(), 5*time.Second)
	if st.State != StateCanceled || st.Canceled != 3 {
		t.Fatalf("batch after cancel: %+v", st)
	}
	// The queue slots are free again.
	if lease, _ := m.Claim("w1"); lease != nil {
		t.Errorf("canceled member still claimable: %s", lease.JobID)
	}
}

// Batch members are pinned while the batch is tracked: the per-job
// retention cap must not evict them out from under the batch status,
// and batch eviction drops the batch and its members together.
func TestBatchRetentionPinsMembers(t *testing.T) {
	m := testManager(t, Config{Workers: 1, RetainJobs: 1}, 0)
	b, err := m.SubmitBatch(batchReqs(3))
	if err != nil {
		t.Fatal(err)
	}
	st := waitBatch(t, m, b.ID(), 10*time.Second)
	if st.State != StateDone {
		t.Fatalf("batch state = %v", st.State)
	}
	// Standalone churn past the cap must not touch the batch members.
	for seed := uint64(100); seed < 103; seed++ {
		waitState(t, submitQuick(t, m, seed), 10*time.Second)
	}
	for _, id := range st.Members {
		if _, ok := m.Get(id.ID); !ok {
			t.Fatalf("batch member %s evicted while its batch is tracked", id.ID)
		}
	}
	// A second terminal batch pushes the first past the cap (RetainJobs
	// 1): batch and members disappear together.
	b2, err := m.SubmitBatch(batchReqs(4)[3:])
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, m, b2.ID(), 10*time.Second)
	if _, ok := m.GetBatch(b.ID()); ok {
		t.Error("oldest batch still tracked past the retention cap")
	}
	for _, id := range st.Members {
		if _, ok := m.Get(id.ID); ok {
			t.Errorf("member %s of the evicted batch still tracked", id.ID)
		}
	}
	if _, err := m.BatchStatus(b.ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("evicted batch status err = %v, want ErrNotFound", err)
	}
}

// A committed batch survives a crash: completed members recover their
// results bit-identically, queued members re-enter the queue in submit
// order, and the batch status reconstitutes around both.
func TestBatchRecovery(t *testing.T) {
	st := &memStore{}
	m1 := persistManager(t, Config{RemoteOnly: true, QueueSize: 16}, st, 0)
	b, err := m1.SubmitBatch(batchReqs(3))
	if err != nil {
		t.Fatal(err)
	}
	st1, err := m1.BatchStatus(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	// Complete the first member through the lease protocol; leave the
	// other two queued at crash time.
	lease, err := m1.Claim("w1")
	if err != nil || lease == nil {
		t.Fatalf("claim: %v %v", lease, err)
	}
	if err := m1.Complete(lease.JobID, lease.LeaseID, &Result{Kind: KindOptimize}); err != nil {
		t.Fatal(err)
	}

	m2 := persistManager(t, Config{RemoteOnly: true, QueueSize: 16}, st.crashCopy(), 0)
	rb, ok := m2.GetBatch(b.ID())
	if !ok {
		t.Fatal("batch lost in recovery")
	}
	rst, err := m2.BatchStatus(rb.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rst.Unique != 3 || rst.Done != 1 || rst.Queued != 2 {
		t.Fatalf("recovered batch: %+v", rst)
	}
	for i := range rst.Members {
		if rst.Members[i].ID != st1.Members[i].ID {
			t.Errorf("member %d ID changed across recovery: %s -> %s",
				i, st1.Members[i].ID, rst.Members[i].ID)
		}
	}
	// Queued members re-enter in submit order.
	for _, want := range []string{st1.Members[1].ID, st1.Members[2].ID} {
		lease, err := m2.Claim("w1")
		if err != nil || lease == nil {
			t.Fatalf("claim after recovery: %v %v", lease, err)
		}
		if lease.JobID != want {
			t.Fatalf("recovered claim = %s, want %s (submit order)", lease.JobID, want)
		}
		if err := m2.Complete(lease.JobID, lease.LeaseID, &Result{Kind: KindOptimize}); err != nil {
			t.Fatal(err)
		}
	}
	final, err := m2.BatchStatus(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Done != 3 {
		t.Fatalf("batch after recovered members completed: %+v", final)
	}
}

// Members journaled without their committing RecBatch record — the
// crash interrupted SubmitBatch — are canceled on recovery: the caller
// never saw the batch acknowledged, so nothing of it may run.
func TestBatchOrphansCanceledOnRecovery(t *testing.T) {
	st := &memStore{}
	reqs := batchReqs(2)
	for i, req := range reqs {
		r := req
		mustAppend(t, st, &Record{Kind: RecSubmit, Job: jobID(i + 1), Seq: i + 1,
			Hash: fmt.Sprintf("h%d", i+1), Req: &r, Batch: "batch-000001"})
	}
	// No RecBatch: the batch never committed.
	m := persistManager(t, Config{RemoteOnly: true}, st, 0)
	if _, ok := m.GetBatch("batch-000001"); ok {
		t.Fatal("uncommitted batch resurrected")
	}
	for i := 1; i <= 2; i++ {
		j, ok := m.Get(jobID(i))
		if !ok {
			t.Fatalf("orphan member %s lost (it must settle, not vanish)", jobID(i))
		}
		if got := j.State(); got != StateCanceled {
			t.Errorf("orphan member %s state = %v, want canceled", jobID(i), got)
		}
	}
	if lease, _ := m.Claim("w1"); lease != nil {
		t.Errorf("orphan member claimable after recovery: %s", lease.JobID)
	}
}

// A batch canceled mid-journal (member appends succeeded, the commit
// record failed) must refuse the submission and settle the journaled
// members canceled — replay reaches the same state via the orphan rule.
func TestBatchJournalFailureMidway(t *testing.T) {
	st := &memStore{}
	m := persistManager(t, Config{RemoteOnly: true}, st, 0)
	st.mu.Lock()
	st.appendErr = errors.New("disk full")
	st.mu.Unlock()
	if _, err := m.SubmitBatch(batchReqs(2)); err == nil {
		t.Fatal("batch acknowledged without durability")
	}
	if lease, _ := m.Claim("w1"); lease != nil {
		t.Errorf("member of refused batch claimable: %s", lease.JobID)
	}
	if got := len(m.Batches()); got != 0 {
		t.Errorf("refused batch tracked: %d batches", got)
	}
}

// stripEffort canonicalizes a result for shared-vs-isolated comparison:
// everything except the memoization-dependent effort counters must be
// bit-identical.
func stripEffort(t *testing.T, res *Result) string {
	t.Helper()
	cp := *res
	if cp.Optimization != nil {
		o := *cp.Optimization
		o.StripEffortVolatile()
		cp.Optimization = &o
	}
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// The shared evaluation cache must be invisible in the results: every
// member of a sweep returns bit-identical payloads with sharing on and
// off (only the effort counters — hits vs misses — may differ).
func TestSharedEvalCacheBitIdentity(t *testing.T) {
	run := func(shared bool) map[string]string {
		cfg := Config{Workers: 2, SharedEvalCache: shared}
		cfg.Resolve = func(req *Request) (*core.Problem, error) { return testProblem(0), nil }
		m := New(cfg)
		defer m.Close()
		b, err := m.SubmitBatch(batchReqs(4))
		if err != nil {
			t.Fatal(err)
		}
		st := waitBatch(t, m, b.ID(), 20*time.Second)
		if st.State != StateDone {
			t.Fatalf("batch (shared=%v) state = %v", shared, st.State)
		}
		out := make(map[string]string)
		for _, ms := range st.Members {
			j, ok := m.Get(ms.ID)
			if !ok {
				t.Fatalf("member %s missing", ms.ID)
			}
			out[ms.ID] = stripEffort(t, mustResult(t, j))
		}
		return out
	}
	isolated := run(false)
	withShared := run(true)
	if len(isolated) != len(withShared) {
		t.Fatalf("member sets differ: %d vs %d", len(isolated), len(withShared))
	}
	for id, want := range isolated {
		if got := withShared[id]; got != want {
			t.Errorf("member %s result differs with the shared cache on:\n got %s\nwant %s", id, got, want)
		}
	}
}

// The per-job effort counters must classify cross-job reuse: a member
// re-running a sibling's points reports them as cross hits, and the
// rollup surfaces them.
func TestBatchCrossHitAccounting(t *testing.T) {
	// Identical (d, s, θ) trajectories across members need identical
	// optimizer inputs; the analytic problem with one seed per member
	// diverges, so run the same seed twice with distinct verify sample
	// counts — prefix reuse is not guaranteed, so instead use two
	// verify jobs, which evaluate the same worst-case grid.
	cfg := Config{Workers: 1, SharedEvalCache: true}
	cfg.Resolve = func(req *Request) (*core.Problem, error) { return testProblem(0), nil }
	m := New(cfg)
	defer m.Close()
	mk := func(samples int) Request {
		return Request{Kind: KindVerify, Circuit: "analytic",
			Options: RunOptions{VerifySamples: samples, Seed: Seed(5)}}
	}
	b, err := m.SubmitBatch([]Request{mk(50), mk(80)})
	if err != nil {
		t.Fatal(err)
	}
	st := waitBatch(t, m, b.ID(), 10*time.Second)
	if st.State != StateDone {
		t.Fatalf("batch state = %v", st.State)
	}
	shared := m.SharedEvalCache().Stats()
	if shared.CrossHits == 0 {
		t.Errorf("no cross-job hits between same-seed verify members: %+v", shared)
	}
	if shared.Problems != 1 {
		t.Errorf("problems = %d, want 1 (same circuit)", shared.Problems)
	}
}
