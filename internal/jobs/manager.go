package jobs

import (
	"bytes"
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"specwise/internal/circuits"
	"specwise/internal/core"
	"specwise/internal/evalcache"
	"specwise/internal/yieldspec"
)

// Submission errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is returned when the bounded job queue is at capacity.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed is returned for submissions after Close.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotFound is returned for operations on unknown job IDs.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrLeaseLost is returned when a worker operates on a lease that has
	// expired, was requeued, or was superseded by another claimant.
	ErrLeaseLost = errors.New("jobs: lease expired or superseded")
)

// QueueFullError is the admission-control rejection: the request's lane
// is at its bounded depth. It carries what the HTTP layer needs to
// answer 429 honestly — which lane, how deep, and a Retry-After
// computed from the lane's recent drain rate instead of a hardcoded
// guess. errors.Is(err, ErrQueueFull) keeps matching it.
type QueueFullError struct {
	Lane       string
	Depth      int
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("jobs: %s lane queue full (%d queued; retry in %s)", e.Lane, e.Depth, e.RetryAfter)
}

// Is keeps the sentinel contract: callers match the lane-aware
// rejection with errors.Is(err, ErrQueueFull).
func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// Config sizes the manager.
type Config struct {
	// Workers is the number of concurrent in-process optimizer workers
	// (default: half the CPUs, at least 1; see RemoteOnly).
	Workers int
	// RemoteOnly disables the in-process worker pool entirely: every job
	// must be claimed by a remote pull-worker over the lease protocol.
	RemoteOnly bool
	// QueueSize bounds the number of jobs waiting to run in each lane
	// (default 64). LaneQueueSize overrides it per lane.
	QueueSize int
	// LaneWeights sets each lane's share of the weighted-round-robin
	// drain order (default verify:3, optimize:1 — three quick verifies
	// for every heavy optimize when both lanes hold work). Weights below
	// 1 are lifted to 1, so no lane can be configured into starvation.
	LaneWeights map[string]int
	// LaneQueueSize overrides QueueSize for individual lanes; zero or
	// missing entries fall back to QueueSize.
	LaneQueueSize map[string]int
	// CacheSize caps the number of completed results kept for
	// hash-identical resubmissions; the least recently used entry is
	// evicted past the cap (default 128, negative disables caching).
	CacheSize int
	// RetainJobs caps the number of terminal (done/failed/canceled) jobs
	// kept in the store for status queries; the oldest-finished is
	// evicted past the cap (default 512, negative keeps every job).
	// Active jobs are never evicted; the result cache is independent of
	// job retention.
	RetainJobs int
	// RetainFor evicts terminal jobs older than this on the background
	// sweep, regardless of the cap (0 disables the TTL sweep).
	RetainFor time.Duration
	// LeaseTTL is how long a remote claim stays valid without a
	// heartbeat before the job is requeued (default 30s).
	LeaseTTL time.Duration
	// MaxRetries bounds how many times an expired lease may requeue a
	// job before it is marked failed (default 2, negative disables
	// requeueing — the first expiry fails the job).
	MaxRetries int
	// VerifyWorkers is the default Monte-Carlo verification pool size for
	// jobs that do not set options.verifyWorkers (0 means GOMAXPROCS).
	// Results are bit-identical for every setting.
	VerifyWorkers int
	// SweepWorkers is the default per-frequency AC-sweep fan-out for jobs
	// that do not set options.sweepWorkers (0 means GOMAXPROCS). Results
	// are bit-identical for every setting.
	SweepWorkers int
	// Speculate turns on the predict-ahead evaluation pipeline for
	// optimize jobs that leave options.speculate unset (an explicit
	// options.speculate — true or false — always wins); SpecWorkers
	// bounds the per-job speculation pool (0 means GOMAXPROCS). Results
	// and simulation counts are bit-identical for every setting.
	Speculate   bool
	SpecWorkers int
	// SharedEvalCache turns on the manager-scoped shared evaluation
	// cache: jobs on the same problem (same circuit or byte-identical
	// spec) reuse each other's simulations, which is where a sweep's
	// wall-clock win comes from. Results stay bit-identical with sharing
	// on or off — the cache keys on exact (d, s, θ) bit patterns. The
	// manager-side shard serves the in-process pool; remote pull-workers
	// keep their own per-process shard (see internal/worker).
	SharedEvalCache bool
	// EvalCacheSize caps the shared cache's entry count; the least
	// recently used completed entry is evicted past the cap
	// (0 selects evalcache.DefaultMaxEntries).
	EvalCacheSize int
	// DefaultAlgorithm, when non-empty, is stamped onto optimize-kind
	// requests that omit options.algorithm before they are normalized
	// and hashed. Stamping changes the request hash — a daemon
	// configured with a non-default backend serves a distinct cache
	// namespace by design. Empty (the default) leaves requests
	// untouched, keeping hashes byte-compatible with earlier releases.
	DefaultAlgorithm string
	// Resolve overrides problem resolution; tests inject cheap synthetic
	// problems here. nil uses the built-in circuits and yieldspec.
	Resolve func(req *Request) (*core.Problem, error)
	// Store persists every control-plane mutation and enables crash
	// recovery on boot (use Open, not New, to surface recovery errors).
	// nil or NullStore keeps the in-memory-only behavior. internal/store
	// provides the durable single-file WAL+snapshot implementation.
	Store Store
	// SnapshotEvery compacts the store into a snapshot after this many
	// journaled records (default 1024; negative disables compaction).
	SnapshotEvery int

	// clock overrides the time source for lease deadlines and retention
	// sweeps (tests drive expiry with a fake clock). nil means time.Now.
	clock func() time.Time
}

func (c *Config) defaults() {
	if c.RemoteOnly {
		c.Workers = 0
	} else if c.Workers <= 0 {
		c.Workers = runtime.NumCPU() / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.LaneWeights == nil {
		c.LaneWeights = map[string]int{LaneVerify: 3, LaneOptimize: 1}
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.RetainJobs == 0 {
		c.RetainJobs = 512
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Resolve == nil {
		c.Resolve = ResolveProblem
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 1024
	} else if c.SnapshotEvery < 0 {
		c.SnapshotEvery = 0
	}
	if c.clock == nil {
		c.clock = time.Now
	}
}

// ResolveProblem is the default problem resolver: a registered circuit
// name (see circuits.Register) or an inline yieldspec document. Inline
// specs must carry their netlist inline too — a service request has no
// base directory to resolve file references against.
func ResolveProblem(req *Request) (*core.Problem, error) {
	if req.Circuit != "" {
		return circuits.Build(req.Circuit)
	}
	return yieldspec.Parse(bytes.NewReader(req.Spec), ".")
}

// Manager owns the job store, the bounded queue, the worker pools (the
// in-process goroutines and the remote lease table) and the result
// cache.
//
// Lock ordering: Manager.mu before Job.mu, never the reverse.
type Manager struct {
	cfg     Config
	ctx     context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	wake    chan struct{} // cap 1: pending work for the local pool
	metrics Metrics

	// Persistence (see store.go and persist.go). persistent is false for
	// the NullStore so hot paths skip record construction entirely.
	store        Store
	persistent   bool
	evalShared   *evalcache.Shared // non-nil iff cfg.SharedEvalCache
	appendsSince atomic.Int64      // records since the last snapshot
	draining     atomic.Bool       // Shutdown in progress: requeue, don't cancel
	down         atomic.Bool       // Close/Shutdown already ran
	storeErrOnce sync.Once         // log store degradation once, not per record

	mu   sync.Mutex
	jobs map[string]*Job
	// lanes holds the per-priority pending queues (FIFO of *Job, only
	// StateQueued jobs); cycle is the weight-expanded lane pick order and
	// rrPos the rotating cursor into it (see takeLocked).
	lanes   map[string]*laneQueue
	cycle   []string
	rrPos   int
	order   *list.List               // of retained: terminal jobs in finish order
	cache   map[string]*list.Element // hash → element in lru
	lru     *list.List               // of *cacheEntry, most recent first
	batches map[string]*Batch
	// batchOrder retains terminal batches in settle order; member jobs
	// are pinned in m.jobs while their batch is tracked and evicted with
	// it (see batch.go).
	batchOrder *list.List // of retainedBatch
	seq        int
	batchSeq   int
	leaseSeq   int
}

// cacheEntry is one completed result in the LRU result cache. jobID
// names the job whose completion stored the entry (snapshots reference
// it instead of duplicating the result); warm marks entries restored by
// recovery, so hits on them are attributable to the journal.
type cacheEntry struct {
	hash  string
	res   *Result
	jobID string
	warm  bool
}

// retained is one terminal job in the retention queue; the finish time
// is copied so eviction never needs the job's own lock.
type retained struct {
	job      *Job
	finished time.Time
}

// drainWindow sizes the per-lane ring of recent drain timestamps the
// Retry-After estimate is derived from.
const drainWindow = 16

// laneQueue is one priority lane: a bounded FIFO of queued jobs plus
// the drain history that prices admission rejections. All fields are
// guarded by Manager.mu.
type laneQueue struct {
	name    string
	pending *list.List // of *Job
	limit   int        // admission bound (QueueSize / LaneQueueSize)
	weight  int        // share of the round-robin cycle

	// drains is a ring of the most recent dequeue times; drainN counts
	// total drains ever, so drains[drainN%drainWindow] is the slot the
	// next drain overwrites (i.e. the oldest sample once the ring is
	// full).
	drains [drainWindow]time.Time
	drainN int
}

// noteDrain records a dequeue for the Retry-After estimate.
func (lq *laneQueue) noteDrain(now time.Time) {
	lq.drains[lq.drainN%drainWindow] = now
	lq.drainN++
}

// retryAfter estimates how long a rejected client should back off: the
// lane's mean inter-drain interval over the recorded window (the
// expected time until the full queue frees one slot), clamped to
// [1s, 5m]. With fewer than two samples there is no rate to speak of,
// so a flat 2s stands in.
func (lq *laneQueue) retryAfter(now time.Time) time.Duration {
	n := lq.drainN
	if n > drainWindow {
		n = drainWindow
	}
	if n < 2 {
		return 2 * time.Second
	}
	newest := lq.drains[(lq.drainN-1)%drainWindow]
	oldest := lq.drains[lq.drainN%drainWindow]
	if lq.drainN <= drainWindow {
		oldest = lq.drains[0]
	}
	d := newest.Sub(oldest) / time.Duration(n-1)
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

// New starts a manager with cfg.Workers workers. Call Close to stop.
// It panics if recovery from cfg.Store fails; configurations with a
// persistent store should prefer Open and handle the error.
func New(cfg Config) *Manager {
	m, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Open starts a manager, first recovering the control plane from
// cfg.Store when one is configured: terminal jobs and their results are
// restored (re-warming the result cache), queued jobs re-enter the
// pending queue in submit order, and remote leases still within their
// TTL stay reattachable. Call Close (or Shutdown, for a graceful
// restart that preserves the queue) to stop.
func Open(cfg Config) (*Manager, error) {
	cfg.defaults()
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		ctx:        ctx,
		stop:       stop,
		wake:       make(chan struct{}, 1),
		jobs:       make(map[string]*Job),
		lanes:      make(map[string]*laneQueue),
		order:      list.New(),
		cache:      make(map[string]*list.Element),
		lru:        list.New(),
		batches:    make(map[string]*Batch),
		batchOrder: list.New(),
	}
	// Build the lane queues and the weight-expanded pick cycle. The cycle
	// interleaves lanes round by round (verify:3 optimize:1 expands to
	// [verify optimize verify verify]) so the heavy lane's turns spread
	// out instead of bunching at the cycle edge.
	weights := make(map[string]int, len(Lanes()))
	for _, name := range Lanes() {
		w := cfg.LaneWeights[name]
		if w < 1 {
			w = 1
		}
		weights[name] = w
		limit := cfg.QueueSize
		if v := cfg.LaneQueueSize[name]; v > 0 {
			limit = v
		}
		m.lanes[name] = &laneQueue{name: name, pending: list.New(), limit: limit, weight: w}
		m.metrics.laneStat(name) // pre-create so /metrics always shows every lane
	}
	for remaining := true; remaining; {
		remaining = false
		for _, name := range Lanes() {
			if weights[name] > 0 {
				weights[name]--
				m.cycle = append(m.cycle, name)
				remaining = remaining || weights[name] > 0
			}
		}
	}
	m.store = cfg.Store
	if m.store == nil {
		m.store = NullStore{}
	}
	switch m.store.(type) {
	case NullStore, *NullStore:
	default:
		m.persistent = true
	}
	if cfg.SharedEvalCache {
		m.evalShared = evalcache.NewShared(cfg.EvalCacheSize)
	}
	m.metrics.start = time.Now()
	m.metrics.workers = cfg.Workers
	m.metrics.storeStats = m.store.Stats
	if m.evalShared != nil {
		m.metrics.sharedEval = m.evalShared.Stats
		m.metrics.sharedEvalPerProblem = m.evalShared.PerProblem
	}
	if m.persistent {
		if err := m.recover(); err != nil {
			stop()
			return nil, err
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.sweeper()
	m.mu.Lock()
	backlog := m.pendingLenLocked() > 0
	m.mu.Unlock()
	if backlog {
		m.wakeOne()
	}
	return m, nil
}

// now reads the manager clock (time.Now unless a test injected a fake).
func (m *Manager) now() time.Time { return m.cfg.clock() }

// SharedEvalCache returns the manager-scoped shared evaluation cache,
// or nil when Config.SharedEvalCache is off.
func (m *Manager) SharedEvalCache() *evalcache.Shared { return m.evalShared }

// Metrics exposes the service counters.
func (m *Manager) Metrics() *Metrics { return &m.metrics }

// Submit validates, resolves and enqueues a request. A request whose
// content hash matches an already-completed job is answered from the
// result cache: the returned job is immediately done and never occupies
// a worker. ErrQueueFull is returned when the queue is at capacity;
// nothing of the rejected submission is retained.
func (m *Manager) Submit(req Request) (*Job, error) {
	if err := m.ctx.Err(); err != nil {
		return nil, ErrClosed
	}
	m.stampDefaults(&req)
	if err := req.Normalize(); err != nil {
		return nil, err
	}
	hash, err := req.Hash()
	if err != nil {
		return nil, err
	}
	// The problem hash keys the shared evaluation cache. It is computed
	// even when the manager-side shard is off: remote pull-workers carry
	// it in their leases and maintain their own shard.
	probHash, err := req.ProblemHash()
	if err != nil {
		return nil, err
	}
	// Resolve eagerly so a bad circuit name or malformed spec fails the
	// submission itself, not the job later.
	p, err := m.cfg.Resolve(&req)
	if err != nil {
		return nil, err
	}

	lane := req.lane()

	m.mu.Lock()
	cacheEl, cacheHit := m.cache[hash]
	if !cacheHit {
		// Admission control, per lane, BEFORE the sequence number is
		// allocated: a rejected submission must leave no trace — not even
		// a burned job ID (the "nothing of the rejected submission is
		// retained" contract). Cache hits bypass admission entirely; they
		// never occupy a queue slot.
		lq := m.lanes[lane]
		if lq.pending.Len() >= lq.limit {
			qerr := &QueueFullError{Lane: lane, Depth: lq.pending.Len(), RetryAfter: lq.retryAfter(m.now())}
			m.mu.Unlock()
			return nil, qerr
		}
	}
	m.seq++
	job := &Job{
		id:          fmt.Sprintf("job-%06d", m.seq),
		seq:         m.seq,
		hash:        hash,
		problemHash: probHash,
		lane:        lane,
		req:         req,
		problem:     p,
		enqueued:    m.now(),
	}
	// Journal before acknowledging: a submission that cannot be made
	// durable is refused, never silently volatile. For cache hits this
	// lands ahead of the settlement, so replay sees the same submit→done
	// sequence the caller was told.
	if err := m.journal(&Record{Kind: RecSubmit, Job: job.id, Seq: job.seq, Hash: hash, Lane: lane, Req: &job.req, Time: job.enqueued}); err != nil {
		m.seq--
		m.mu.Unlock()
		return nil, fmt.Errorf("jobs: journaling submission: %w", err)
	}
	if cacheHit {
		ent := cacheEl.Value.(*cacheEntry)
		warm := ent.warm
		m.lru.MoveToFront(cacheEl)
		job.cached = true
		job.result = ent.res
		m.jobs[job.id] = job
		job.mu.Lock()
		m.finishLocked(job, StateDone, "")
		job.mu.Unlock()
		m.metrics.jobsTracked.Store(int64(len(m.jobs)))
		m.mu.Unlock()
		m.metrics.submitted.Add(1)
		m.metrics.cacheHits.Add(1)
		if warm {
			m.metrics.cacheWarmHits.Add(1)
		}
		return job, nil
	}
	job.state = StateQueued
	m.enqueueLocked(job, false)
	m.jobs[job.id] = job
	m.metrics.jobsTracked.Store(int64(len(m.jobs)))
	m.mu.Unlock()

	m.metrics.submitted.Add(1)
	m.metrics.queued.Add(1)
	m.wakeOne()
	return job, nil
}

// stampDefaults applies manager-level request defaults ahead of
// normalization: an optimize-kind request that omits the algorithm
// picks up the configured default backend. Requests that name an
// algorithm — and verify-kind requests, which have none — pass through
// untouched.
func (m *Manager) stampDefaults(req *Request) {
	if m.cfg.DefaultAlgorithm == "" || req.Options.Algorithm != "" {
		return
	}
	if req.Kind == "" || req.Kind == KindOptimize {
		req.Options.Algorithm = m.cfg.DefaultAlgorithm
	}
}

// wakeOne nudges one sleeping local worker; a dropped signal is fine
// because workers re-check the queue before sleeping.
func (m *Manager) wakeOne() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// takeLocked pops the next queued job, or nil. Caller holds m.mu.
//
// With lane == "" the pick walks the weight-expanded cycle from the
// rotating cursor and is work-conserving: every lane appears in the
// cycle (weights are lifted to at least 1), so whenever any lane holds
// work a full scan finds it — no lane starves, and an idle lane's turns
// are skipped rather than wasted. A named lane restricts the pop to
// that queue (remote workers may claim lane-filtered).
func (m *Manager) takeLocked(lane string) *Job {
	if lane != "" {
		return m.popLocked(m.lanes[lane])
	}
	for i := 0; i < len(m.cycle); i++ {
		pos := (m.rrPos + i) % len(m.cycle)
		if job := m.popLocked(m.lanes[m.cycle[pos]]); job != nil {
			m.rrPos = (pos + 1) % len(m.cycle)
			return job
		}
	}
	return nil
}

// popLocked removes a lane's oldest queued job, settling the lane
// gauges and the drain history. Caller holds m.mu.
func (m *Manager) popLocked(lq *laneQueue) *Job {
	if lq == nil {
		return nil
	}
	front := lq.pending.Front()
	if front == nil {
		return nil
	}
	job := front.Value.(*Job)
	lq.pending.Remove(front)
	job.queueEl = nil
	now := m.now()
	lq.noteDrain(now)
	ls := m.metrics.laneStat(lq.name)
	ls.Queued.Store(int64(lq.pending.Len()))
	if !job.queuedAt.IsZero() {
		ls.WaitNanos.Add(int64(now.Sub(job.queuedAt)))
		job.queuedAt = time.Time{}
	}
	return job
}

// enqueueLocked puts a queued job into its lane (front for requeues —
// the job has waited longest — back for fresh submissions). Caller
// holds m.mu.
func (m *Manager) enqueueLocked(j *Job, front bool) {
	lq := m.lanes[j.lane]
	if front {
		j.queueEl = lq.pending.PushFront(j)
	} else {
		j.queueEl = lq.pending.PushBack(j)
	}
	j.queuedAt = m.now()
	m.metrics.laneStat(j.lane).Queued.Store(int64(lq.pending.Len()))
}

// pendingLenLocked sums the lane queue depths. Caller holds m.mu.
func (m *Manager) pendingLenLocked() int {
	n := 0
	for _, lq := range m.lanes {
		n += lq.pending.Len()
	}
	return n
}

// Get returns a job by ID. Terminal jobs evicted by the retention
// policy are no longer found.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs snapshots the status of every tracked job, newest first.
func (m *Manager) Jobs() []Status {
	m.mu.Lock()
	list := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		list = append(list, j)
	}
	m.mu.Unlock()
	out := make([]Status, len(list))
	for i, j := range list {
		out[i] = j.Status()
	}
	// Job IDs are zero-padded sequence numbers, so a lexical sort is a
	// chronological sort.
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

// Cancel stops a job: a queued job is marked canceled and its queue
// slot freed immediately; a locally running job has its context
// cancelled and winds down within one optimizer stage (between
// Monte-Carlo samples at the finest); a remotely leased job has its
// lease revoked, so the worker's next heartbeat or result post is
// refused. Cancelling a terminal job is a no-op.
//
// The returned Status is the job's state as settled by this call,
// snapshotted while the locks are still held: callers must use it
// instead of a follow-up Get, which can miss — the retention sweep may
// evict a just-cancelled terminal job at any moment.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	m.cancelLocked(j)
	return j.statusLocked(), nil
}

// cancelLocked applies the cancellation state machine to one job. Both
// m.mu and j.mu are held; CancelBatch shares it with Cancel.
func (m *Manager) cancelLocked(j *Job) {
	switch j.state {
	case StateQueued:
		m.finishLocked(j, StateCanceled, "canceled")
	case StateRunning:
		if j.cancel != nil {
			// The local worker records the terminal state. userCanceled
			// distinguishes this from a Shutdown drain, which also cancels
			// the run context but must requeue instead of settling.
			j.userCanceled = true
			j.cancel()
		} else if j.leaseID != "" {
			m.metrics.leasesActive.Add(-1)
			m.finishLocked(j, StateCanceled, "canceled")
		}
	}
}

// Close cancels every queued, running and leased job and waits for the
// workers and the sweeper to exit. Queued jobs are marked canceled so
// no submission is ever stranded in StateQueued. Further submissions
// return ErrClosed. For a graceful restart that keeps the queue and the
// leases journaled for recovery instead, use Shutdown.
func (m *Manager) Close() {
	if m.down.Swap(true) {
		return
	}
	m.stop()
	m.wg.Wait()
	// The local pool has drained (running jobs recorded their canceled
	// state before the workers exited); everything still non-terminal is
	// a queued job nobody will run or a remote lease nobody may extend.
	m.mu.Lock()
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			m.finishLocked(j, StateCanceled, "canceled: manager closed")
		case StateRunning:
			if j.leaseID != "" {
				m.metrics.leasesActive.Add(-1)
			}
			m.finishLocked(j, StateCanceled, "canceled: manager closed")
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	m.store.Close() //nolint:errcheck // nothing actionable at teardown
}

// worker pulls jobs off the queue until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		job := m.dequeue()
		if job == nil {
			return
		}
		m.run(job)
	}
}

// dequeue blocks until a job is available for the local pool or the
// manager closes (nil). When it takes a job and more remain, it chains
// a wake so sibling workers drain the backlog too.
func (m *Manager) dequeue() *Job {
	for {
		// Stop taking work once the manager is stopping: a graceful drain
		// requeues the interrupted job, and picking it straight back up
		// would requeue it again forever.
		select {
		case <-m.ctx.Done():
			return nil
		default:
		}
		m.mu.Lock()
		job := m.takeLocked("")
		more := m.pendingLenLocked() > 0
		m.mu.Unlock()
		if job != nil {
			if more {
				m.wakeOne()
			}
			return job
		}
		select {
		case <-m.ctx.Done():
			return nil
		case <-m.wake:
		}
	}
}

// sweeper periodically expires silent leases and applies the retention
// TTL. Tests drive the same logic synchronously through sweep().
func (m *Manager) sweeper() {
	defer m.wg.Done()
	interval := m.cfg.LeaseTTL / 4
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	if interval > 5*time.Second {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-t.C:
			m.sweep(m.now())
			m.maybeSnapshot()
		}
	}
}

// sweep expires leases whose deadline passed (requeueing the job while
// retries remain, failing it after) and evicts terminal jobs past the
// retention TTL.
func (m *Manager) sweep(now time.Time) {
	requeued := false
	m.mu.Lock()
	// Collect first, then settle in sequence order: m.jobs is a map, and
	// requeueing in its random iteration order would scramble the
	// submit-order guarantee the recovery path documents whenever two
	// leases expire in one pass. m.mu is held across both passes, so no
	// job's state can move in between.
	var expired []*Job
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == StateRunning && j.leaseID != "" && now.After(j.leaseDeadline) {
			expired = append(expired, j)
		}
		j.mu.Unlock()
	}
	sort.Slice(expired, func(i, k int) bool { return expired[i].seq < expired[k].seq })
	// Walk descending so the PushFront requeues leave the lowest
	// sequence number at the head of its lane — oldest job runs first.
	for i := len(expired) - 1; i >= 0; i-- {
		j := expired[i]
		j.mu.Lock()
		worker := j.worker
		m.metrics.leaseExpiries.Add(1)
		m.metrics.leasesActive.Add(-1)
		m.metrics.workerStat(worker).Expiries.Add(1)
		if j.requeues < m.cfg.MaxRetries {
			j.requeues++
			j.leaseID = ""
			j.worker = ""
			j.state = StateQueued
			// Requeue at the front: the job has waited longest.
			m.enqueueLocked(j, true)
			m.metrics.running.Add(-1)
			m.metrics.queued.Add(1)
			m.metrics.requeued.Add(1)
			m.journal(&Record{Kind: RecRequeue, Job: j.id, Requeues: j.requeues, Attempts: j.attempts, Time: now}) //nolint:errcheck // degraded store: logged once
			j.notifyLocked()
			requeued = true
		} else {
			msg := fmt.Sprintf("lease expired (worker %q unresponsive) after %d attempts", worker, j.attempts)
			m.finishLocked(j, StateFailed, msg)
		}
		j.mu.Unlock()
	}
	m.evictLocked(now)
	m.mu.Unlock()
	if requeued {
		m.wakeOne()
	}
}

// finishLocked moves a job to a terminal state: it frees the queue
// slot, settles the gauges and counters, stores a done result in the
// cache, and enrolls the job in the retention queue. Both m.mu and
// j.mu must be held.
func (m *Manager) finishLocked(j *Job, state State, errMsg string) {
	prev := j.state
	j.state = state
	j.err = errMsg
	j.cancel = nil
	j.leaseID = ""
	j.finished = m.now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	if j.queueEl != nil {
		if lq := m.lanes[j.lane]; lq != nil {
			lq.pending.Remove(j.queueEl)
			m.metrics.laneStat(j.lane).Queued.Store(int64(lq.pending.Len()))
		}
		j.queueEl = nil
		j.queuedAt = time.Time{}
	}
	// Journal the settlement before the cache record it may cause, so
	// replay settles the job first and the cache entry can reference it.
	m.journal(settleRecord(j, state, j.worker, errMsg)) //nolint:errcheck // degraded store: logged once
	switch prev {
	case StateQueued:
		m.metrics.queued.Add(-1)
	case StateRunning:
		m.metrics.running.Add(-1)
	}
	switch state {
	case StateDone:
		m.metrics.done.Add(1)
		m.metrics.laneStat(j.lane).Done.Add(1)
		if j.result != nil {
			if j.result.Optimization != nil {
				m.metrics.noteAlgoDone(j.result.Optimization)
			}
			m.cacheStoreLocked(j.hash, j.result, j.id)
		}
	case StateCanceled:
		m.metrics.canceled.Add(1)
	case StateFailed:
		m.metrics.failed.Add(1)
	}
	if j.batch != "" {
		// Batch members are retained (and evicted) through their batch,
		// which settles once its last member does.
		m.noteBatchSettleLocked(j)
	} else {
		m.order.PushBack(retained{job: j, finished: j.finished})
	}
	j.notifyLocked()
	m.evictLocked(j.finished)
}

// evictLocked drops the oldest terminal jobs past the retention cap and
// (when configured) past the retention TTL. Caller holds m.mu.
func (m *Manager) evictLocked(now time.Time) {
	for m.order.Len() > 0 {
		front := m.order.Front()
		r := front.Value.(retained)
		overCap := m.cfg.RetainJobs >= 0 && m.order.Len() > m.cfg.RetainJobs
		tooOld := m.cfg.RetainFor > 0 && now.Sub(r.finished) > m.cfg.RetainFor
		if !overCap && !tooOld {
			break
		}
		m.order.Remove(front)
		delete(m.jobs, r.job.id)
		m.journal(&Record{Kind: RecJobEvict, Job: r.job.id}) //nolint:errcheck // degraded store: logged once
		m.metrics.jobsEvicted.Add(1)
	}
	m.evictBatchesLocked(now)
	m.metrics.jobsTracked.Store(int64(len(m.jobs)))
}

// run executes one job end to end on the local pool.
func (m *Manager) run(job *Job) {
	ctx, cancel := context.WithCancel(m.ctx)
	defer cancel()

	// The start transition takes m.mu (not just job.mu) so the journal
	// append cannot race a concurrent snapshot of the control plane.
	m.mu.Lock()
	job.mu.Lock()
	if job.state != StateQueued { // canceled between dequeue and here
		job.mu.Unlock()
		m.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.cancel = cancel
	job.attempts++
	job.started = m.now()
	m.journal(&Record{Kind: RecStart, Job: job.id, Attempts: job.attempts, Time: job.started}) //nolint:errcheck // degraded store: logged once
	job.notifyLocked()
	job.mu.Unlock()
	m.mu.Unlock()
	m.metrics.queued.Add(-1)
	m.metrics.running.Add(1)

	result, err := m.execute(ctx, job)

	m.mu.Lock()
	job.mu.Lock()
	wall := m.now().Sub(job.started)
	switch {
	case err == nil:
		job.result = result
		m.finishLocked(job, StateDone, "")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if m.draining.Load() && !job.userCanceled {
			// Graceful drain: the daemon is restarting, not the user
			// cancelling. Put the interrupted job back at the head of the
			// queue, retry budget untouched, so recovery resumes it.
			job.state = StateQueued
			job.cancel = nil
			job.started = time.Time{}
			m.enqueueLocked(job, true)
			m.metrics.running.Add(-1)
			m.metrics.queued.Add(1)
			m.journal(&Record{Kind: RecRequeue, Job: job.id, Requeues: job.requeues, Attempts: job.attempts, Time: m.now()}) //nolint:errcheck // degraded store: logged once
			job.notifyLocked()
		} else {
			m.finishLocked(job, StateCanceled, "canceled")
		}
	default:
		m.finishLocked(job, StateFailed, err.Error())
	}
	job.mu.Unlock()
	m.mu.Unlock()

	m.metrics.busyNanos.Add(int64(wall))
	m.metrics.wallNanos.Add(int64(wall))
}

// cacheStoreLocked inserts a completed result into the LRU result
// cache, evicting the least recently used entry past the configured
// cap. Insertions and evictions are journaled — the journal, not the
// settlement records, is what drives the cache on replay, so a restart
// never resurrects an evicted result. Caller holds m.mu.
func (m *Manager) cacheStoreLocked(hash string, result *Result, jobID string) {
	if m.cfg.CacheSize < 0 {
		return
	}
	if el, ok := m.cache[hash]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.res != result {
			ent.warm = false // freshly recomputed, no longer a recovered entry
		}
		ent.res = result
		ent.jobID = jobID
		m.lru.MoveToFront(el)
		m.journal(&Record{Kind: RecCacheEntry, Hash: hash, Job: jobID}) //nolint:errcheck // degraded store: logged once
	} else {
		m.cache[hash] = m.lru.PushFront(&cacheEntry{hash: hash, res: result, jobID: jobID})
		m.journal(&Record{Kind: RecCacheEntry, Hash: hash, Job: jobID}) //nolint:errcheck // degraded store: logged once
		for m.lru.Len() > m.cfg.CacheSize {
			back := m.lru.Back()
			ent := back.Value.(*cacheEntry)
			m.lru.Remove(back)
			delete(m.cache, ent.hash)
			m.journal(&Record{Kind: RecCacheEvict, Hash: ent.hash}) //nolint:errcheck // degraded store: logged once
			m.metrics.cacheEvictions.Add(1)
		}
	}
	m.metrics.cacheEntries.Store(int64(m.lru.Len()))
}

// execute runs the job through the shared execution path and folds the
// run's reuse counters into the service metrics.
func (m *Manager) execute(ctx context.Context, job *Job) (*Result, error) {
	env := ExecEnv{
		VerifyWorkers: m.cfg.VerifyWorkers,
		SweepWorkers:  m.cfg.SweepWorkers,
		Speculate:     m.cfg.Speculate,
		SpecWorkers:   m.cfg.SpecWorkers,
		Progress:      job.addProgress,
	}
	if m.evalShared != nil {
		env.EvalCache = m.evalShared.View(job.problemHash)
	}
	res, coreRes, err := Execute(ctx, job.problem, &job.req, env)
	if err != nil {
		return nil, err
	}
	if coreRes != nil {
		m.metrics.noteRun(coreRes)
	}
	return res, nil
}
