package jobs

import (
	"bytes"
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"specwise/internal/circuits"
	"specwise/internal/core"
	"specwise/internal/report"
	"specwise/internal/wcd"
	"specwise/internal/yieldspec"
)

// Submission errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is returned when the bounded job queue is at capacity.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed is returned for submissions after Close.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotFound is returned for operations on unknown job IDs.
	ErrNotFound = errors.New("jobs: no such job")
)

// Config sizes the manager.
type Config struct {
	// Workers is the number of concurrent optimizer workers
	// (default: half the CPUs, at least 1).
	Workers int
	// QueueSize bounds the number of jobs waiting to run (default 64).
	QueueSize int
	// CacheSize caps the number of completed results kept for
	// hash-identical resubmissions; the least recently used entry is
	// evicted past the cap (default 128, negative disables caching).
	CacheSize int
	// VerifyWorkers is the default Monte-Carlo verification pool size for
	// jobs that do not set options.verifyWorkers (0 means GOMAXPROCS).
	// Results are bit-identical for every setting.
	VerifyWorkers int
	// SweepWorkers is the default per-frequency AC-sweep fan-out for jobs
	// that do not set options.sweepWorkers (0 means GOMAXPROCS). Results
	// are bit-identical for every setting.
	SweepWorkers int
	// Resolve overrides problem resolution; tests inject cheap synthetic
	// problems here. nil uses the built-in circuits and yieldspec.
	Resolve func(req *Request) (*core.Problem, error)
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU() / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.Resolve == nil {
		c.Resolve = ResolveProblem
	}
}

// ResolveProblem is the default problem resolver: a built-in circuit
// name or an inline yieldspec document. Inline specs must carry their
// netlist inline too — a service request has no base directory to
// resolve file references against.
func ResolveProblem(req *Request) (*core.Problem, error) {
	if req.Circuit != "" {
		switch req.Circuit {
		case "foldedcascode", "fc":
			return circuits.FoldedCascodeProblem(), nil
		case "miller":
			return circuits.MillerProblem(), nil
		case "ota":
			return circuits.OTAProblem(), nil
		default:
			return nil, fmt.Errorf("jobs: unknown circuit %q (want foldedcascode, miller or ota)", req.Circuit)
		}
	}
	return yieldspec.Parse(bytes.NewReader(req.Spec), ".")
}

// Manager owns the job store, the bounded queue, the worker pool and
// the result cache.
type Manager struct {
	cfg     Config
	ctx     context.Context
	stop    context.CancelFunc
	queue   chan *Job
	wg      sync.WaitGroup
	metrics Metrics

	mu    sync.Mutex
	jobs  map[string]*Job
	cache map[string]*list.Element // hash → element in lru
	lru   *list.List               // of *cacheEntry, most recent first
	seq   int
}

// cacheEntry is one completed result in the LRU result cache.
type cacheEntry struct {
	hash string
	res  *Result
}

// New starts a manager with cfg.Workers workers. Call Close to stop.
func New(cfg Config) *Manager {
	cfg.defaults()
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:   cfg,
		ctx:   ctx,
		stop:  stop,
		queue: make(chan *Job, cfg.QueueSize),
		jobs:  make(map[string]*Job),
		cache: make(map[string]*list.Element),
		lru:   list.New(),
	}
	m.metrics.start = time.Now()
	m.metrics.workers = cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Metrics exposes the service counters.
func (m *Manager) Metrics() *Metrics { return &m.metrics }

// Submit validates, resolves and enqueues a request. A request whose
// content hash matches an already-completed job is answered from the
// result cache: the returned job is immediately done and never occupies
// a worker. ErrQueueFull is returned when the queue is at capacity.
func (m *Manager) Submit(req Request) (*Job, error) {
	if err := m.ctx.Err(); err != nil {
		return nil, ErrClosed
	}
	if err := req.Normalize(); err != nil {
		return nil, err
	}
	hash, err := req.Hash()
	if err != nil {
		return nil, err
	}
	// Resolve eagerly so a bad circuit name or malformed spec fails the
	// submission itself, not the job later.
	p, err := m.cfg.Resolve(&req)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	m.seq++
	job := &Job{
		id:       fmt.Sprintf("job-%06d", m.seq),
		hash:     hash,
		req:      req,
		problem:  p,
		enqueued: time.Now(),
	}
	if el, ok := m.cache[hash]; ok {
		m.lru.MoveToFront(el)
		job.state = StateDone
		job.cached = true
		job.result = el.Value.(*cacheEntry).res
		job.started = job.enqueued
		job.finished = job.enqueued
		m.jobs[job.id] = job
		m.mu.Unlock()
		m.metrics.submitted.Add(1)
		m.metrics.cacheHits.Add(1)
		m.metrics.done.Add(1)
		return job, nil
	}
	job.state = StateQueued
	m.jobs[job.id] = job
	m.mu.Unlock()

	select {
	case m.queue <- job:
		m.metrics.submitted.Add(1)
		m.metrics.queued.Add(1)
		return job, nil
	default:
		m.mu.Lock()
		delete(m.jobs, job.id)
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs snapshots the status of every tracked job, newest first.
func (m *Manager) Jobs() []Status {
	m.mu.Lock()
	list := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		list = append(list, j)
	}
	m.mu.Unlock()
	out := make([]Status, len(list))
	for i, j := range list {
		out[i] = j.Status()
	}
	// Job IDs are zero-padded sequence numbers, so a lexical sort is a
	// chronological sort.
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

// Cancel stops a job: a queued job is marked canceled and skipped by
// the workers; a running job has its context cancelled and winds down
// within one optimizer stage (between Monte-Carlo samples at the
// finest). Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.finished = time.Now()
		j.started = j.finished
		m.metrics.queued.Add(-1)
		m.metrics.canceled.Add(1)
	case StateRunning:
		if j.cancel != nil {
			j.cancel() // the worker records the terminal state
		}
	}
	return nil
}

// Close cancels every queued and running job and waits for the workers
// to exit. Further submissions return ErrClosed.
func (m *Manager) Close() {
	m.stop()
	m.wg.Wait()
}

// worker pulls jobs off the queue until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case job := <-m.queue:
			m.run(job)
		}
	}
}

// run executes one job end to end.
func (m *Manager) run(job *Job) {
	ctx, cancel := context.WithCancel(m.ctx)
	defer cancel()

	job.mu.Lock()
	if job.state != StateQueued { // canceled while waiting
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.cancel = cancel
	job.started = time.Now()
	job.mu.Unlock()
	m.metrics.queued.Add(-1)
	m.metrics.running.Add(1)

	result, err := m.execute(ctx, job)

	finished := time.Now()
	job.mu.Lock()
	job.cancel = nil
	job.finished = finished
	wall := finished.Sub(job.started)
	switch {
	case err == nil:
		job.state = StateDone
		job.result = result
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		job.state = StateCanceled
		job.err = "canceled"
	default:
		job.state = StateFailed
		job.err = err.Error()
	}
	state := job.state
	hash := job.hash
	job.mu.Unlock()

	m.metrics.running.Add(-1)
	m.metrics.busyNanos.Add(int64(wall))
	m.metrics.wallNanos.Add(int64(wall))
	switch state {
	case StateDone:
		m.metrics.done.Add(1)
		m.cacheStore(hash, result)
	case StateCanceled:
		m.metrics.canceled.Add(1)
	default:
		m.metrics.failed.Add(1)
	}
}

// cacheStore inserts a completed result into the LRU result cache,
// evicting the least recently used entry past the configured cap.
func (m *Manager) cacheStore(hash string, result *Result) {
	if m.cfg.CacheSize < 0 {
		return
	}
	m.mu.Lock()
	if el, ok := m.cache[hash]; ok {
		el.Value.(*cacheEntry).res = result
		m.lru.MoveToFront(el)
	} else {
		m.cache[hash] = m.lru.PushFront(&cacheEntry{hash: hash, res: result})
		for m.lru.Len() > m.cfg.CacheSize {
			back := m.lru.Back()
			m.lru.Remove(back)
			delete(m.cache, back.Value.(*cacheEntry).hash)
			m.metrics.cacheEvictions.Add(1)
		}
	}
	m.metrics.cacheEntries.Store(int64(m.lru.Len()))
	m.mu.Unlock()
}

// execute dispatches on the job kind.
func (m *Manager) execute(ctx context.Context, job *Job) (*Result, error) {
	switch job.req.Kind {
	case KindVerify:
		n := job.req.Options.VerifySamples
		if n == 0 {
			n = 300
		}
		seed := job.req.Options.Seed
		if seed == 0 {
			seed = 20010618 // the optimizer's default stream
		}
		p := job.problem
		d := p.InitialDesign()
		zeroS := make([]float64, p.NumStat())
		thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		workers := job.req.Options.VerifyWorkers
		if workers <= 0 {
			workers = m.cfg.VerifyWorkers
		}
		mc, err := core.VerifyMCContext(ctx, p, d, thetaRes.PerSpec, n, seed, workers)
		if err != nil {
			return nil, err
		}
		return &Result{Kind: KindVerify, Verification: report.JSONVerification(p, mc)}, nil

	default: // KindOptimize
		opts := job.req.Options.Core()
		if opts.VerifyWorkers <= 0 {
			opts.VerifyWorkers = m.cfg.VerifyWorkers
		}
		if opts.SweepWorkers <= 0 {
			opts.SweepWorkers = m.cfg.SweepWorkers
		}
		opts.Progress = job.addProgress
		opt, err := core.NewOptimizer(job.problem, opts)
		if err != nil {
			return nil, err
		}
		res, err := opt.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		m.metrics.noteRun(res)
		return &Result{Kind: KindOptimize, Optimization: report.JSONResult(res)}, nil
	}
}
