package jobs

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"specwise/internal/core"
)

// testProblem is a cheap two-spec analytic problem (the optimizer-test
// fixture) with an optional per-evaluation delay so cancellation tests
// have something to interrupt.
func testProblem(evalDelay time.Duration) *core.Problem {
	return &core.Problem{
		Name: "analytic",
		Specs: []core.Spec{
			{Name: "f", Kind: core.GE, Bound: 0},
			{Name: "g", Kind: core.GE, Bound: 0},
		},
		Design: []core.Param{
			{Name: "d0", Init: 0, Lo: -1, Hi: 10},
			{Name: "d1", Init: 0, Lo: -1, Hi: 10},
		},
		StatNames: []string{"s0", "s1"},
		Theta:     []core.OpRange{{Name: "t", Nominal: 0, Lo: -1, Hi: 1}},
		Eval: func(d, s, th []float64) ([]float64, error) {
			if evalDelay > 0 {
				time.Sleep(evalDelay)
			}
			f := d[0] - 2 + 0.5*s[0] - 0.1*th[0]
			g := 6 - d[0] - d[1] + 0.5*s[1] - 0.1*th[0]
			return []float64{f, g}, nil
		},
	}
}

func testManager(t *testing.T, cfg Config, delay time.Duration) *Manager {
	t.Helper()
	if cfg.Resolve == nil {
		cfg.Resolve = func(req *Request) (*core.Problem, error) {
			return testProblem(delay), nil
		}
	}
	m := New(cfg)
	t.Cleanup(m.Close)
	return m
}

// waitState polls until the job reaches a terminal state or the deadline
// passes, returning the final state.
func waitState(t *testing.T, j *Job, timeout time.Duration) State {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st := j.State(); st.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	return j.State()
}

var quickOpts = RunOptions{ModelSamples: 500, VerifySamples: 50, MaxIterations: 1, Seed: 7}

func TestJobRunsToCompletion(t *testing.T) {
	m := testManager(t, Config{Workers: 2}, 0)
	job, err := m.Submit(Request{Circuit: "analytic", Options: quickOpts})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, job, 10*time.Second); st != StateDone {
		t.Fatalf("state = %v (err %q), want done", st, job.Err())
	}
	res, ok := job.Result()
	if !ok || res == nil || res.Optimization == nil {
		t.Fatal("done job has no optimization result")
	}
	if res.Optimization.Problem != "analytic" {
		t.Errorf("result problem = %q", res.Optimization.Problem)
	}
	if len(res.Optimization.Iterations) < 1 {
		t.Error("result has no iterations")
	}
	st := job.Status()
	if len(st.Progress) == 0 {
		t.Error("no progress entries recorded")
	}
	if st.Progress[0].Stage != "initial" {
		t.Errorf("first progress stage = %q, want initial", st.Progress[0].Stage)
	}
	if st.WallSeconds <= 0 {
		t.Error("wall time not recorded")
	}
	if got := m.Metrics().Done(); got != 1 {
		t.Errorf("done counter = %d, want 1", got)
	}
}

func TestIdenticalResubmissionHitsCache(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, 0)
	req := Request{Circuit: "analytic", Options: quickOpts}
	first, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, first, 10*time.Second); st != StateDone {
		t.Fatalf("first job: state %v, err %q", st, first.Err())
	}
	if m.Metrics().CacheHits() != 0 {
		t.Fatal("cache hit before any resubmission")
	}

	second, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// A cache hit is answered synchronously: no queue, no worker.
	if st := second.State(); st != StateDone {
		t.Fatalf("resubmission state = %v, want done immediately", st)
	}
	if !second.Status().Cached {
		t.Error("resubmission not flagged as cached")
	}
	if got := m.Metrics().CacheHits(); got != 1 {
		t.Errorf("cache-hit counter = %d, want 1", got)
	}
	r1, _ := first.Result()
	r2, _ := second.Result()
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Error("cached result differs from the original")
	}

	// A different seed is a different problem: it must miss.
	miss := req
	miss.Options.Seed = 8
	third, err := m.Submit(miss)
	if err != nil {
		t.Fatal(err)
	}
	if third.Status().Cached {
		t.Error("different options reported a cache hit")
	}
	waitState(t, third, 10*time.Second)
}

func TestResultCacheLRUEviction(t *testing.T) {
	m := testManager(t, Config{Workers: 1, CacheSize: 2}, 0)
	submit := func(seed uint64) *Job {
		t.Helper()
		opts := quickOpts
		opts.Seed = seed
		job, err := m.Submit(Request{Circuit: "analytic", Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		if st := waitState(t, job, 10*time.Second); st != StateDone {
			t.Fatalf("seed %d: state %v, err %q", seed, st, job.Err())
		}
		return job
	}

	submit(1)
	submit(2)
	if got := m.Metrics().CacheEvictions(); got != 0 {
		t.Fatalf("evictions = %d before the cap was reached", got)
	}
	// Touch seed 1 so it is the most recently used, then overflow: the
	// third distinct result must push out seed 2, not seed 1.
	if j := submit(1); !j.Status().Cached {
		t.Fatal("resubmission of seed 1 missed the cache")
	}
	submit(3)
	if got := m.Metrics().CacheEvictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if j := submit(1); !j.Status().Cached {
		t.Error("seed 1 was evicted despite being recently used")
	}
	if j := submit(2); j.Status().Cached {
		t.Error("seed 2 survived past the cache cap")
	}
}

func TestCancelRunningJob(t *testing.T) {
	// Slow evaluations and a long verification give the cancel a wide
	// in-flight window; the job must still wind down promptly.
	m := testManager(t, Config{Workers: 1}, 200*time.Microsecond)
	job, err := m.Submit(Request{Circuit: "analytic", Options: RunOptions{
		ModelSamples: 500, VerifySamples: 5000, MaxIterations: 8, Seed: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for job.State() != StateRunning && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if job.State() != StateRunning {
		t.Fatalf("job never started (state %v)", job.State())
	}
	start := time.Now()
	if err := m.Cancel(job.ID()); err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, job, 5*time.Second); st != StateCanceled {
		t.Fatalf("state after cancel = %v, want canceled", st)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Errorf("cancellation took %v", took)
	}
	if got := m.Metrics().Canceled(); got != 1 {
		t.Errorf("canceled counter = %d, want 1", got)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, 500*time.Microsecond)
	// Occupy the single worker.
	blocker, err := m.Submit(Request{Circuit: "analytic", Options: RunOptions{
		ModelSamples: 500, VerifySamples: 5000, MaxIterations: 8, Seed: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(Request{Circuit: "analytic", Options: quickOpts})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != StateCanceled {
		t.Fatalf("queued job state after cancel = %v", st)
	}
	if err := m.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, 5*time.Second)
}

func TestQueueFull(t *testing.T) {
	m := testManager(t, Config{Workers: 1, QueueSize: 1}, 500*time.Microsecond)
	slow := RunOptions{ModelSamples: 500, VerifySamples: 5000, MaxIterations: 8, Seed: 1}
	// Occupy the worker, then fill the single queue slot; the next
	// submission must bounce with ErrQueueFull.
	blocker, err := m.Submit(Request{Circuit: "analytic", Options: slow})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for blocker.State() != StateRunning && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if blocker.State() != StateRunning {
		t.Fatalf("blocker never started (state %v)", blocker.State())
	}
	filler := slow
	filler.Seed = 2
	queued, err := m.Submit(Request{Circuit: "analytic", Options: filler})
	if err != nil {
		t.Fatal(err)
	}
	rejected := slow
	rejected.Seed = 3
	if _, err := m.Submit(Request{Circuit: "analytic", Options: rejected}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: err = %v, want ErrQueueFull", err)
	}
	for _, id := range []string{queued.ID(), blocker.ID()} {
		if err := m.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
	waitState(t, blocker, 5*time.Second)
}

func TestSubmitValidation(t *testing.T) {
	m := New(Config{Workers: 1}) // default resolver
	defer m.Close()
	cases := []Request{
		{}, // neither circuit nor spec
		{Circuit: "ota", Spec: json.RawMessage(`{}`)}, // both
		{Circuit: "nonexistent"},                      // unknown circuit
		{Kind: "frobnicate", Circuit: "ota"},
		{Spec: json.RawMessage(`{"name": }`)}, // broken JSON spec
	}
	for i, req := range cases {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
}

func TestRequestHashNormalization(t *testing.T) {
	a := Request{Kind: KindOptimize, Spec: json.RawMessage(`{"name":"x","netlist":"n"}`)}
	b := Request{Kind: KindOptimize, Spec: json.RawMessage("{ \"name\": \"x\",\n  \"netlist\": \"n\" }")}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Error("whitespace-only spec difference changed the hash")
	}
	c := a
	c.Options.Seed = 99
	hc, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Error("different options hash equally")
	}
}

func TestVerifyKind(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, 0)
	job, err := m.Submit(Request{Kind: KindVerify, Circuit: "analytic",
		Options: RunOptions{VerifySamples: 200, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, job, 10*time.Second); st != StateDone {
		t.Fatalf("verify job state = %v, err %q", st, job.Err())
	}
	res, _ := job.Result()
	if res == nil || res.Verification == nil {
		t.Fatal("verify job has no verification result")
	}
	if res.Verification.Samples != 200 {
		t.Errorf("samples = %d, want 200", res.Verification.Samples)
	}
	if res.Verification.Yield < 0 || res.Verification.Yield > 1 {
		t.Errorf("yield = %v", res.Verification.Yield)
	}
}
