package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"specwise/internal/core"
	"specwise/internal/report"
	"specwise/internal/wcd"
)

// testProblem is a cheap two-spec analytic problem (the optimizer-test
// fixture) with an optional per-evaluation delay so cancellation tests
// have something to interrupt.
func testProblem(evalDelay time.Duration) *core.Problem {
	return &core.Problem{
		Name: "analytic",
		Specs: []core.Spec{
			{Name: "f", Kind: core.GE, Bound: 0},
			{Name: "g", Kind: core.GE, Bound: 0},
		},
		Design: []core.Param{
			{Name: "d0", Init: 0, Lo: -1, Hi: 10},
			{Name: "d1", Init: 0, Lo: -1, Hi: 10},
		},
		StatNames: []string{"s0", "s1"},
		Theta:     []core.OpRange{{Name: "t", Nominal: 0, Lo: -1, Hi: 1}},
		Eval: func(d, s, th []float64) ([]float64, error) {
			if evalDelay > 0 {
				time.Sleep(evalDelay)
			}
			f := d[0] - 2 + 0.5*s[0] - 0.1*th[0]
			g := 6 - d[0] - d[1] + 0.5*s[1] - 0.1*th[0]
			return []float64{f, g}, nil
		},
	}
}

func testManager(t *testing.T, cfg Config, delay time.Duration) *Manager {
	t.Helper()
	if cfg.Resolve == nil {
		cfg.Resolve = func(req *Request) (*core.Problem, error) {
			return testProblem(delay), nil
		}
	}
	m := New(cfg)
	t.Cleanup(m.Close)
	return m
}

// waitState polls until the job reaches a terminal state or the deadline
// passes, returning the final state.
func waitState(t *testing.T, j *Job, timeout time.Duration) State {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st := j.State(); st.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	return j.State()
}

var quickOpts = RunOptions{ModelSamples: 500, VerifySamples: 50, MaxIterations: 1, Seed: Seed(7)}

func TestJobRunsToCompletion(t *testing.T) {
	m := testManager(t, Config{Workers: 2}, 0)
	job, err := m.Submit(Request{Circuit: "analytic", Options: quickOpts})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, job, 10*time.Second); st != StateDone {
		t.Fatalf("state = %v (err %q), want done", st, job.Err())
	}
	res, ok := job.Result()
	if !ok || res == nil || res.Optimization == nil {
		t.Fatal("done job has no optimization result")
	}
	if res.Optimization.Problem != "analytic" {
		t.Errorf("result problem = %q", res.Optimization.Problem)
	}
	if len(res.Optimization.Iterations) < 1 {
		t.Error("result has no iterations")
	}
	st := job.Status()
	if len(st.Progress) == 0 {
		t.Error("no progress entries recorded")
	}
	if st.Progress[0].Stage != "initial" {
		t.Errorf("first progress stage = %q, want initial", st.Progress[0].Stage)
	}
	if st.WallSeconds <= 0 {
		t.Error("wall time not recorded")
	}
	if got := m.Metrics().Done(); got != 1 {
		t.Errorf("done counter = %d, want 1", got)
	}
}

func TestIdenticalResubmissionHitsCache(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, 0)
	req := Request{Circuit: "analytic", Options: quickOpts}
	first, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, first, 10*time.Second); st != StateDone {
		t.Fatalf("first job: state %v, err %q", st, first.Err())
	}
	if m.Metrics().CacheHits() != 0 {
		t.Fatal("cache hit before any resubmission")
	}

	second, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// A cache hit is answered synchronously: no queue, no worker.
	if st := second.State(); st != StateDone {
		t.Fatalf("resubmission state = %v, want done immediately", st)
	}
	if !second.Status().Cached {
		t.Error("resubmission not flagged as cached")
	}
	if got := m.Metrics().CacheHits(); got != 1 {
		t.Errorf("cache-hit counter = %d, want 1", got)
	}
	r1, _ := first.Result()
	r2, _ := second.Result()
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Error("cached result differs from the original")
	}

	// A different seed is a different problem: it must miss.
	miss := req
	miss.Options.Seed = Seed(8)
	third, err := m.Submit(miss)
	if err != nil {
		t.Fatal(err)
	}
	if third.Status().Cached {
		t.Error("different options reported a cache hit")
	}
	waitState(t, third, 10*time.Second)
}

func TestResultCacheLRUEviction(t *testing.T) {
	m := testManager(t, Config{Workers: 1, CacheSize: 2}, 0)
	submit := func(seed uint64) *Job {
		t.Helper()
		opts := quickOpts
		opts.Seed = Seed(seed)
		job, err := m.Submit(Request{Circuit: "analytic", Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		if st := waitState(t, job, 10*time.Second); st != StateDone {
			t.Fatalf("seed %d: state %v, err %q", seed, st, job.Err())
		}
		return job
	}

	submit(1)
	submit(2)
	if got := m.Metrics().CacheEvictions(); got != 0 {
		t.Fatalf("evictions = %d before the cap was reached", got)
	}
	// Touch seed 1 so it is the most recently used, then overflow: the
	// third distinct result must push out seed 2, not seed 1.
	if j := submit(1); !j.Status().Cached {
		t.Fatal("resubmission of seed 1 missed the cache")
	}
	submit(3)
	if got := m.Metrics().CacheEvictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if j := submit(1); !j.Status().Cached {
		t.Error("seed 1 was evicted despite being recently used")
	}
	if j := submit(2); j.Status().Cached {
		t.Error("seed 2 survived past the cache cap")
	}
}

func TestCancelRunningJob(t *testing.T) {
	// Slow evaluations and a long verification give the cancel a wide
	// in-flight window; the job must still wind down promptly.
	m := testManager(t, Config{Workers: 1}, 200*time.Microsecond)
	job, err := m.Submit(Request{Circuit: "analytic", Options: RunOptions{
		ModelSamples: 500, VerifySamples: 5000, MaxIterations: 8, Seed: Seed(3),
	}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for job.State() != StateRunning && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if job.State() != StateRunning {
		t.Fatalf("job never started (state %v)", job.State())
	}
	start := time.Now()
	if _, err := m.Cancel(job.ID()); err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, job, 5*time.Second); st != StateCanceled {
		t.Fatalf("state after cancel = %v, want canceled", st)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Errorf("cancellation took %v", took)
	}
	if got := m.Metrics().Canceled(); got != 1 {
		t.Errorf("canceled counter = %d, want 1", got)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, 500*time.Microsecond)
	// Occupy the single worker.
	blocker, err := m.Submit(Request{Circuit: "analytic", Options: RunOptions{
		ModelSamples: 500, VerifySamples: 5000, MaxIterations: 8, Seed: Seed(1),
	}})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(Request{Circuit: "analytic", Options: quickOpts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != StateCanceled {
		t.Fatalf("queued job state after cancel = %v", st)
	}
	if _, err := m.Cancel(blocker.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, 5*time.Second)
}

func TestQueueFull(t *testing.T) {
	m := testManager(t, Config{Workers: 1, QueueSize: 1}, 500*time.Microsecond)
	slow := RunOptions{ModelSamples: 500, VerifySamples: 5000, MaxIterations: 8, Seed: Seed(1)}
	// Occupy the worker, then fill the single queue slot; the next
	// submission must bounce with ErrQueueFull.
	blocker, err := m.Submit(Request{Circuit: "analytic", Options: slow})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for blocker.State() != StateRunning && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if blocker.State() != StateRunning {
		t.Fatalf("blocker never started (state %v)", blocker.State())
	}
	filler := slow
	filler.Seed = Seed(2)
	queued, err := m.Submit(Request{Circuit: "analytic", Options: filler})
	if err != nil {
		t.Fatal(err)
	}
	rejected := slow
	rejected.Seed = Seed(3)
	if _, err := m.Submit(Request{Circuit: "analytic", Options: rejected}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: err = %v, want ErrQueueFull", err)
	}
	for _, id := range []string{queued.ID(), blocker.ID()} {
		if _, err := m.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
	waitState(t, blocker, 5*time.Second)
}

func TestSubmitValidation(t *testing.T) {
	m := New(Config{Workers: 1}) // default resolver
	defer m.Close()
	cases := []Request{
		{}, // neither circuit nor spec
		{Circuit: "ota", Spec: json.RawMessage(`{}`)}, // both
		{Circuit: "nonexistent"},                      // unknown circuit
		{Kind: "frobnicate", Circuit: "ota"},
		{Spec: json.RawMessage(`{"name": }`)}, // broken JSON spec
	}
	for i, req := range cases {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
}

func TestRequestHashNormalization(t *testing.T) {
	a := Request{Kind: KindOptimize, Spec: json.RawMessage(`{"name":"x","netlist":"n"}`)}
	b := Request{Kind: KindOptimize, Spec: json.RawMessage("{ \"name\": \"x\",\n  \"netlist\": \"n\" }")}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Error("whitespace-only spec difference changed the hash")
	}
	c := a
	c.Options.Seed = Seed(99)
	hc, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Error("different options hash equally")
	}
}

func TestVerifyKind(t *testing.T) {
	m := testManager(t, Config{Workers: 1}, 0)
	job, err := m.Submit(Request{Kind: KindVerify, Circuit: "analytic",
		Options: RunOptions{VerifySamples: 200, Seed: Seed(5)}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, job, 10*time.Second); st != StateDone {
		t.Fatalf("verify job state = %v, err %q", st, job.Err())
	}
	res, _ := job.Result()
	if res == nil || res.Verification == nil {
		t.Fatal("verify job has no verification result")
	}
	if res.Verification.Samples != 200 {
		t.Errorf("samples = %d, want 200", res.Verification.Samples)
	}
	if res.Verification.Yield < 0 || res.Verification.Yield > 1 {
		t.Errorf("yield = %v", res.Verification.Yield)
	}
}

// --- lifecycle regression tests (PR 5) ---

// A canceled queued job must free its queue slot immediately: before
// the list-based queue, the canceled entry sat in the channel until a
// worker drained it, so ErrQueueFull fired while capacity was
// logically free.
func TestCancelQueuedJobFreesSlot(t *testing.T) {
	m := testManager(t, Config{RemoteOnly: true, QueueSize: 1}, 0)
	a, err := m.Submit(Request{Circuit: "analytic", Options: quickOpts})
	if err != nil {
		t.Fatal(err)
	}
	full := quickOpts
	full.Seed = Seed(2)
	if _, err := m.Submit(Request{Circuit: "analytic", Options: full}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submit: err = %v, want ErrQueueFull", err)
	}
	if _, err := m.Cancel(a.ID()); err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(Request{Circuit: "analytic", Options: full})
	if err != nil {
		t.Fatalf("submit after cancel: %v (the canceled job still pins the slot)", err)
	}
	// The queue must hand out the live job, not the canceled one.
	lease, err := m.Claim("w1")
	if err != nil {
		t.Fatal(err)
	}
	if lease == nil || lease.JobID != b.ID() {
		t.Fatalf("claim = %+v, want job %s", lease, b.ID())
	}
}

// A full-queue rejection must leave no trace: the job is not tracked
// and the store gauge is unchanged.
func TestQueueFullRollback(t *testing.T) {
	m := testManager(t, Config{RemoteOnly: true, QueueSize: 1}, 0)
	if _, err := m.Submit(Request{Circuit: "analytic", Options: quickOpts}); err != nil {
		t.Fatal(err)
	}
	before := m.Metrics().JobsTracked()
	over := quickOpts
	over.Seed = Seed(2)
	if _, err := m.Submit(Request{Circuit: "analytic", Options: over}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := m.Metrics().JobsTracked(); got != before {
		t.Errorf("jobs tracked after rejection = %d, want %d", got, before)
	}
	if got := len(m.Jobs()); got != 1 {
		t.Errorf("job list has %d entries after rejection, want 1", got)
	}
}

// Close must not strand queued jobs in StateQueued: workers may exit
// via ctx.Done without draining the queue.
func TestCloseCancelsQueuedJobs(t *testing.T) {
	m := testManager(t, Config{RemoteOnly: true}, 0)
	var js []*Job
	for seed := uint64(1); seed <= 3; seed++ {
		opts := quickOpts
		opts.Seed = Seed(seed)
		j, err := m.Submit(Request{Circuit: "analytic", Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		js = append(js, j)
	}
	m.Close()
	for _, j := range js {
		if st := j.State(); st != StateCanceled {
			t.Errorf("job %s after Close: state %v, want canceled", j.ID(), st)
		}
	}
	if got := m.Metrics().Canceled(); got != 3 {
		t.Errorf("canceled counter = %d, want 3", got)
	}
	if _, err := m.Submit(Request{Circuit: "analytic", Options: quickOpts}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after Close: err = %v, want ErrClosed", err)
	}
}

// Terminal jobs must not accumulate without bound: the retention cap
// evicts the oldest-finished first.
func TestRetentionCapEvictsTerminalJobs(t *testing.T) {
	m := testManager(t, Config{RemoteOnly: true, RetainJobs: 2}, 0)
	var ids []string
	for seed := uint64(1); seed <= 4; seed++ {
		opts := quickOpts
		opts.Seed = Seed(seed)
		j, err := m.Submit(Request{Circuit: "analytic", Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Cancel(j.ID()); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}
	if got := m.Metrics().JobsTracked(); got != 2 {
		t.Errorf("jobs tracked = %d, want 2", got)
	}
	if got := m.Metrics().JobsEvicted(); got != 2 {
		t.Errorf("jobs evicted = %d, want 2", got)
	}
	for _, id := range ids[:2] {
		if _, ok := m.Get(id); ok {
			t.Errorf("oldest job %s still tracked past the cap", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := m.Get(id); !ok {
			t.Errorf("recent job %s was evicted", id)
		}
	}
}

// The retention TTL sweep evicts terminal jobs by age, driven here by
// a fake clock.
func TestRetentionTTLSweep(t *testing.T) {
	clk := newFakeClock()
	cfg := Config{RemoteOnly: true, RetainFor: time.Hour, clock: clk.Now}
	m := testManager(t, cfg, 0)
	for seed := uint64(1); seed <= 2; seed++ {
		opts := quickOpts
		opts.Seed = Seed(seed)
		j, err := m.Submit(Request{Circuit: "analytic", Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Cancel(j.ID()); err != nil {
			t.Fatal(err)
		}
	}
	m.sweep(clk.Now())
	if got := m.Metrics().JobsTracked(); got != 2 {
		t.Fatalf("fresh terminal jobs evicted early (tracked = %d)", got)
	}
	clk.Advance(2 * time.Hour)
	m.sweep(clk.Now())
	if got := m.Metrics().JobsTracked(); got != 0 {
		t.Errorf("jobs tracked after TTL sweep = %d, want 0", got)
	}
	if got := m.Metrics().JobsEvicted(); got != 2 {
		t.Errorf("jobs evicted = %d, want 2", got)
	}
}

// Seed 0 must be a real, requestable stream: distinct from an unset
// seed in the content hash, and honored (not silently replaced with
// the default stream) by execution.
func TestSeedZeroIsRequestable(t *testing.T) {
	unset := Request{Kind: KindVerify, Circuit: "analytic", Options: RunOptions{VerifySamples: 300}}
	zero := unset
	zero.Options.Seed = Seed(0)
	hu, err := unset.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hz, err := zero.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hu == hz {
		t.Fatal("seed 0 hashes like an unset seed: the cache would conflate them")
	}
	// The wire encoding of unset and nonzero seeds is unchanged, so
	// pre-pointer cache keys stay reachable.
	if blob, _ := json.Marshal(RunOptions{}); strings.Contains(string(blob), "seed") {
		t.Errorf("unset seed leaks into the encoding: %s", blob)
	}
	if blob, _ := json.Marshal(RunOptions{Seed: Seed(7)}); !strings.Contains(string(blob), `"seed":7`) {
		t.Errorf("explicit seed encoded unexpectedly: %s", blob)
	}

	m := testManager(t, Config{Workers: 1}, 0)
	jz, err := m.Submit(zero)
	if err != nil {
		t.Fatal(err)
	}
	ju, err := m.Submit(unset)
	if err != nil {
		t.Fatal(err)
	}
	if waitState(t, jz, 10*time.Second) != StateDone || waitState(t, ju, 10*time.Second) != StateDone {
		t.Fatalf("verify jobs did not finish (%v / %v)", jz.Err(), ju.Err())
	}
	rz, _ := jz.Result()
	ru, _ := ju.Result()
	bz, _ := json.Marshal(rz.Verification)
	bu, _ := json.Marshal(ru.Verification)
	if string(bz) == string(bu) {
		t.Error("seed 0 produced the default-stream result: the zero seed was swallowed")
	}
	// And seed 0 means literally seed 0: the job must match a direct
	// library-level verification with that seed.
	p := testProblem(0)
	d := p.InitialDesign()
	thetaRes, err := wcd.WorstCaseTheta(p, d, make([]float64, p.NumStat()))
	if err != nil {
		t.Fatal(err)
	}
	mc, err := core.VerifyMCContext(context.Background(), p, d, thetaRes.PerSpec, 300, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(report.JSONVerification(p, mc))
	if string(bz) != string(want) {
		t.Errorf("seed-0 job result differs from direct seed-0 run:\n got %s\nwant %s", bz, want)
	}
}

// TestSpeculateTriState: options.speculate must distinguish "unset"
// (follow the pool default) from an explicit false (opt out of a
// -speculate fleet) — with a plain bool the two were indistinguishable
// on the wire and the daemon default silently overrode a client's off.
func TestSpeculateTriState(t *testing.T) {
	// Wire form: unset stays off the wire (pre-knob hashes intact),
	// explicit values — both of them — are encoded.
	if blob, _ := json.Marshal(RunOptions{}); strings.Contains(string(blob), "speculate") {
		t.Errorf("unset speculate leaks into the encoding: %s", blob)
	}
	if blob, _ := json.Marshal(RunOptions{Speculate: Bool(true)}); !strings.Contains(string(blob), `"speculate":true`) {
		t.Errorf("explicit opt-in encoded unexpectedly: %s", blob)
	}
	if blob, _ := json.Marshal(RunOptions{Speculate: Bool(false)}); !strings.Contains(string(blob), `"speculate":false`) {
		t.Errorf("explicit opt-out must be wire-visible: %s", blob)
	}

	// Pool-default merge: an explicit request value always wins.
	cases := []struct {
		opt       *bool
		def, want bool
	}{
		{nil, false, false},
		{nil, true, true},
		{Bool(true), false, true},
		{Bool(false), true, false},
	}
	for _, c := range cases {
		if got := (RunOptions{Speculate: c.opt}).speculateOr(c.def); got != c.want {
			t.Errorf("speculateOr(opt=%v, def=%v) = %v, want %v", c.opt, c.def, got, c.want)
		}
	}

	// Core() honors only an explicit opt-in; the pool default is merged
	// later by Execute.
	if (RunOptions{Speculate: Bool(false)}).Core().Speculate {
		t.Error("explicit opt-out reached core options as on")
	}
	if !(RunOptions{Speculate: Bool(true)}).Core().Speculate {
		t.Error("explicit opt-in lost on the way to core options")
	}
}
