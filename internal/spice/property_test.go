package spice

import (
	"fmt"
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

// randomLadder builds a random resistive ladder with optional shunt
// capacitors: in — R — n1 — R — n2 … — out, each node also shunted to
// ground. Passive and connected, so DC must always solve.
func randomLadder(seed uint64, withCaps bool) (*Circuit, int, int) {
	s := seed
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / (1 << 53)
	}
	c := New()
	in := c.Node("in")
	c.Add(NewVSource("V", in, groundIndex, 1, 1))
	prev := in
	stages := 2 + int(next()*4)
	var node int
	for k := 0; k < stages; k++ {
		node = c.Node(fmt.Sprintf("n%d", k))
		c.Add(NewResistor(fmt.Sprintf("Rs%d", k), prev, node, 100+1e4*next()))
		c.Add(NewResistor(fmt.Sprintf("Rp%d", k), node, groundIndex, 1e3+1e5*next()))
		if withCaps {
			c.Add(NewCapacitor(fmt.Sprintf("Cp%d", k), node, groundIndex, 1e-12+1e-9*next()))
		}
		prev = node
	}
	return c, in, node
}

// Property: every random passive ladder solves, and the solution
// satisfies KCL — re-stamping the residual at the solution gives ~0.
func TestDCSolvesRandomLaddersProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c, _, _ := randomLadder(seed, false)
		dc, err := c.DC(DCOptions{})
		if err != nil {
			return false
		}
		// All node voltages of a 1 V-driven resistive divider network lie
		// in [0, 1].
		for i := 0; i < c.NumNodes(); i++ {
			v := dc.Voltage(i)
			if v < -1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a passive RC ladder never amplifies: |H(jω)| <= 1 at every
// node and frequency, and |H| decreases with frequency at the far end.
func TestACPassivityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c, _, out := randomLadder(seed, true)
		dc, err := c.DC(DCOptions{})
		if err != nil {
			return false
		}
		prev := math.Inf(1)
		for _, freq := range []float64{1, 1e3, 1e6, 1e9} {
			ac, err := c.AC(dc, 2*math.Pi*freq)
			if err != nil {
				return false
			}
			mag := cmplx.Abs(ac.Voltage(out))
			if mag > 1+1e-6 {
				return false
			}
			if mag > prev+1e-9 {
				return false // low-pass ladder: monotone roll-off
			}
			prev = mag
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: DC and transient agree at t→∞ for driven RC ladders (the
// transient settles onto the operating point of the final source value).
func TestTranSettlesToDCProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c, _, out := randomLadder(seed%1000, true)
		dc, err := c.DC(DCOptions{})
		if err != nil {
			return false
		}
		// Start the transient from zero state: it must converge to the DC
		// solution (time constants are at most ~1e5·1e-9 = 100 µs).
		res, err := c.Tran(TranOptions{
			Stop: 2e-3, Step: 2e-6,
			Initial: make([]float64, c.NumVars()),
		})
		if err != nil {
			return false
		}
		return math.Abs(res.At(out, 2e-3)-dc.Voltage(out)) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: MOSFET drain current is monotone in Vgs at fixed Vds, and in
// Vds at fixed Vgs (level-1 with CLM has no negative-resistance region).
func TestMosfetMonotonicityProperty(t *testing.T) {
	m := NewMosfet("M", 0, 1, 2, 2, +1, 10e-6, 1e-6, DefaultNMOS())
	f := func(a, b, v float64) bool {
		vgs1 := math.Abs(math.Mod(a, 3))
		vgs2 := math.Abs(math.Mod(b, 3))
		vds := math.Abs(math.Mod(v, 3))
		if vgs1 > vgs2 {
			vgs1, vgs2 = vgs2, vgs1
		}
		id1, _, _, _ := m.eval(vgs1, vds)
		id2, _, _, _ := m.eval(vgs2, vds)
		if id1 > id2+1e-15 {
			return false
		}
		// And in Vds at fixed Vgs.
		id3, _, _, _ := m.eval(vgs2, vds/2)
		return id3 <= id2+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: gm and gds reported by eval match finite differences of id.
func TestMosfetDerivativeConsistencyProperty(t *testing.T) {
	m := NewMosfet("M", 0, 1, 2, 2, +1, 10e-6, 1e-6, DefaultNMOS())
	f := func(a, v float64) bool {
		vgs := 0.8 + math.Abs(math.Mod(a, 1.5))
		vds := 0.05 + math.Abs(math.Mod(v, 2.5))
		// Keep a safe distance from the region boundary where the second
		// derivative jumps (the model is C1 but not C2 there).
		vov := vgs - m.P.VT0
		if math.Abs(vds-vov) < 1e-3 {
			return true
		}
		const h = 1e-7
		id0, gm, gds, _ := m.eval(vgs, vds)
		idG, _, _, _ := m.eval(vgs+h, vds)
		idD, _, _, _ := m.eval(vgs, vds+h)
		fdGm := (idG - id0) / h
		fdGds := (idD - id0) / h
		okGm := math.Abs(fdGm-gm) < 1e-5*(1+math.Abs(gm))
		okGds := math.Abs(fdGds-gds) < 1e-5*(1+math.Abs(gds))
		return okGm && okGds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
