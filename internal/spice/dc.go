package spice

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"specwise/internal/linalg"
)

// DCStats accumulates solver-effort counters across DC solves. One
// instance may be shared by many circuits; it is safe for concurrent use.
type DCStats struct {
	// WarmStarts counts solves given an InitialX guess.
	WarmStarts atomic.Int64
	// WarmConverged counts warm-started solves whose plain Newton attempt
	// converged directly, skipping the homotopy ladder.
	WarmConverged atomic.Int64
	// Fallbacks counts solves that entered gmin/source stepping after the
	// plain Newton attempt failed.
	Fallbacks atomic.Int64
	// NewtonIters counts Newton iterations summed over all attempts.
	NewtonIters atomic.Int64
}

// DCOptions tunes the Newton–Raphson operating-point solver.
type DCOptions struct {
	MaxIter  int           // Newton iterations per attempt (default 150)
	VTol     float64       // voltage update tolerance [V] (default 1e-9)
	ResTol   float64       // KCL residual tolerance [A] (default 1e-9)
	Gmin     float64       // baseline node-to-ground leak [S] (default 1e-12)
	MaxStep  float64       // per-iteration voltage damping limit [V] (default 0.5)
	InitialX linalg.Vector // optional warm start (length NumVars)
	Stats    *DCStats      // optional effort counters, shared across solves
}

func (o *DCOptions) defaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 150
	}
	if o.VTol == 0 {
		o.VTol = 1e-9
	}
	if o.ResTol == 0 {
		o.ResTol = 1e-9
	}
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
	if o.MaxStep == 0 {
		o.MaxStep = 0.5
	}
}

// ErrNoConvergence reports that all DC homotopies failed.
var ErrNoConvergence = errors.New("spice: DC analysis failed to converge")

// DCResult holds a converged operating point.
type DCResult struct {
	// X is the full MNA solution: node voltages then branch currents.
	X linalg.Vector
	// Iterations counts Newton steps summed over homotopy stages.
	Iterations int
	circuit    *Circuit
}

// Voltage returns the DC voltage of a node index (0 for ground).
func (r *DCResult) Voltage(node int) float64 { return volt(r.X, node) }

// BranchCurrent returns the current of an MNA branch variable.
func (r *DCResult) BranchCurrent(branch int) float64 { return r.X[branch] }

// DC computes the operating point. When DCOptions.InitialX supplies a
// previous operating point, plain Newton starts there; otherwise it starts
// from zero. On non-convergence the solve falls back to a gmin-stepping
// homotopy and then source stepping (both restarting from zero, so the
// fallback is independent of the guess), mirroring the fallback ladder of
// production simulators.
func (c *Circuit) DC(opts DCOptions) (*DCResult, error) {
	opts.defaults()
	c.finalize()
	n := c.NumVars()
	w := c.dcScratch(n)
	w.lastFactorErr = nil
	if st := c.SolverStats; st != nil {
		start := time.Now()
		defer func() { st.DCNanos.Add(time.Since(start).Nanoseconds()) }()
	}
	defer func() { c.flushSolverStats(w.solver.Stats(), &w.prev) }()
	x := linalg.NewVector(n)
	warm := opts.InitialX != nil
	if warm {
		if len(opts.InitialX) != n {
			return nil, fmt.Errorf("spice: warm start length %d, want %d", len(opts.InitialX), n)
		}
		copy(x, opts.InitialX)
		if opts.Stats != nil {
			opts.Stats.WarmStarts.Add(1)
		}
	}

	total := 0
	defer func() {
		if opts.Stats != nil {
			opts.Stats.NewtonIters.Add(int64(total))
		}
	}()
	// Attempt 1: plain Newton at the target gmin.
	if it, ok := c.newton(x, opts, opts.Gmin, 1); ok {
		total += it
		if warm && opts.Stats != nil {
			opts.Stats.WarmConverged.Add(1)
		}
		return &DCResult{X: x, Iterations: it, circuit: c}, nil
	} else {
		total += it
	}
	if opts.Stats != nil {
		opts.Stats.Fallbacks.Add(1)
	}

	// Attempt 2: gmin stepping from a strongly damped system.
	x.Zero()
	gmin := 1e-2
	ok := true
	for gmin >= opts.Gmin {
		it, conv := c.newton(x, opts, gmin, 1)
		total += it
		if !conv {
			ok = false
			break
		}
		gmin /= 10
	}
	if ok {
		it, conv := c.newton(x, opts, opts.Gmin, 1)
		total += it
		if conv {
			return &DCResult{X: x, Iterations: total, circuit: c}, nil
		}
	}

	// Attempt 3: source stepping with a mild gmin floor.
	x.Zero()
	scale := 0.0
	step := 0.1
	for scale < 1 {
		next := math.Min(1, scale+step)
		saved := x.Clone()
		it, conv := c.newton(x, opts, opts.Gmin*100, next)
		total += it
		if conv {
			scale = next
			if step < 0.25 {
				step *= 2
			}
			continue
		}
		copy(x, saved)
		step /= 2
		if step < 1e-4 {
			return nil, c.dcFailure(fmt.Errorf("%w (source stepping stalled at scale %.4f)", ErrNoConvergence, scale))
		}
	}
	it, conv := c.newton(x, opts, opts.Gmin, 1)
	total += it
	if conv {
		return &DCResult{X: x, Iterations: total, circuit: c}, nil
	}
	return nil, c.dcFailure(ErrNoConvergence)
}

// dcFailure attaches the last factorization failure (if any) to a DC
// non-convergence error, naming the MNA variable whose pivot vanished.
func (c *Circuit) dcFailure(err error) error {
	if fe := c.scratch.lastFactorErr; fe != nil {
		return fmt.Errorf("%w: %v", err, c.describeSolverErr(fe))
	}
	return err
}

// newton runs damped Newton iterations in place on x. It reports the
// number of iterations used and whether the run converged. The solver
// backend, residual and update vector live in the circuit's scratch
// space and are reused across iterations and attempts — the sparse
// backend additionally reuses its symbolic factorization, so every
// iteration after the first is a numeric-only refactorization.
func (c *Circuit) newton(x linalg.Vector, opts DCOptions, gmin, srcScale float64) (int, bool) {
	n := c.NumVars()
	nodes := c.NumNodes()
	w := c.dcScratch(n)
	sol, res, dx := w.solver, w.res, w.dx
	ctx := &stampCtx{srcScale: srcScale, gmin: gmin}

	for iter := 1; iter <= opts.MaxIter; iter++ {
		sol.Reset()
		res.Zero()
		for _, d := range c.devices {
			d.StampDC(sol, res, x, ctx)
		}
		// Node leak conductances stabilize floating or cut-off nodes.
		for i := 0; i < nodes; i++ {
			sol.Addto(i, i, gmin)
			res[i] += gmin * x[i]
		}

		if err := sol.Factor(); err != nil {
			w.lastFactorErr = err
			return iter, false
		}
		if err := sol.SolveInto(dx, res); err != nil {
			w.lastFactorErr = err
			return iter, false
		}

		// Damped update with per-variable step limiting on voltages.
		maxdv := 0.0
		for i := 0; i < nodes; i++ {
			if a := math.Abs(dx[i]); a > maxdv {
				maxdv = a
			}
		}
		alpha := 1.0
		if maxdv > opts.MaxStep {
			alpha = opts.MaxStep / maxdv
		}
		for i := 0; i < n; i++ {
			x[i] -= alpha * dx[i]
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
				return iter, false
			}
		}

		resNorm := res[:nodes].NormInf()
		if alpha == 1 && maxdv < opts.VTol && resNorm < opts.ResTol {
			return iter, true
		}
	}
	return opts.MaxIter, false
}

// DCSweepResult holds a swept operating-point analysis.
type DCSweepResult struct {
	Values []float64       // swept source values
	X      []linalg.Vector // full MNA solution per point
}

// Voltage returns one node's transfer curve over the sweep.
func (r *DCSweepResult) Voltage(node int) []float64 {
	out := make([]float64, len(r.X))
	for k, x := range r.X {
		out[k] = volt(x, node)
	}
	return out
}

// DCSweep steps the DC value of a voltage source from start to stop in n
// points, warm-starting each solve from the previous solution — the
// natural continuation for transfer-curve extraction. The source's DC
// value is restored afterwards.
func (c *Circuit) DCSweep(src *VSource, start, stop float64, n int, opts DCOptions) (*DCSweepResult, error) {
	if n < 2 {
		return nil, fmt.Errorf("spice: DC sweep needs at least 2 points")
	}
	saved := src.DC
	defer func() { src.DC = saved }()

	res := &DCSweepResult{
		Values: make([]float64, 0, n),
		X:      make([]linalg.Vector, 0, n),
	}
	var warm linalg.Vector
	for k := 0; k < n; k++ {
		v := start + (stop-start)*float64(k)/float64(n-1)
		src.DC = v
		o := opts
		o.InitialX = warm
		dc, err := c.DC(o)
		if err != nil {
			return nil, fmt.Errorf("spice: DC sweep failed at %s=%g: %w", src.Name(), v, err)
		}
		warm = dc.X
		res.Values = append(res.Values, v)
		res.X = append(res.X, dc.X.Clone())
	}
	return res, nil
}
