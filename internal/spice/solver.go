package spice

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"specwise/internal/linalg"
)

// SolverKind selects the linear-solver backend for a circuit's analyses.
type SolverKind int

const (
	// SolverAuto defers to the package-level DefaultSolver.
	SolverAuto SolverKind = iota
	// SolverSparse uses the compressed-column LU with a symbolic/numeric
	// factorization split — the production default: MNA systems here are
	// ~80% structural zeros and every Newton iteration re-solves the same
	// pattern.
	SolverSparse
	// SolverDense uses the dense LU reference backend, bit-identical to
	// the pre-interface dense path.
	SolverDense
)

// String returns the backend name used in reports and metrics.
func (k SolverKind) String() string {
	switch k {
	case SolverSparse:
		return "sparse"
	case SolverDense:
		return "dense"
	default:
		return "auto"
	}
}

// DefaultSolver is the backend used by circuits whose Options leave the
// solver on SolverAuto.
var DefaultSolver = SolverSparse

// Options carries per-circuit analysis configuration.
type Options struct {
	// Solver selects the linear-solver backend; SolverAuto (the zero
	// value) follows DefaultSolver.
	Solver SolverKind
	// SweepWorkers bounds the goroutines ACSweep fans frequency points
	// over when the backend supports shared-structure numeric
	// workspaces. 0 follows DefaultSweepWorkers; the effective count is
	// clamped to the number of sweep points. Sweep results are
	// bit-identical for every setting.
	SweepWorkers int
	// SymCache, when non-nil, shares symbolic LU factorizations across
	// circuits with identical matrix structure (sparse backend only).
	// The evaluation harness seeds one per problem from a reference
	// circuit and freezes it, so the thousands of per-evaluation
	// circuits skip pattern analysis and fill-reducing ordering. Set it
	// before the first analysis.
	SymCache *linalg.SymbolicCache
}

// DefaultSweepWorkers is the AC-sweep worker count for circuits whose
// Options leave SweepWorkers at 0; 0 or negative means GOMAXPROCS.
var DefaultSweepWorkers = 0

// sweepWorkers resolves the effective AC-sweep worker count for a sweep
// of npts frequency points.
func (c *Circuit) sweepWorkers(npts int) int {
	w := c.Opts.SweepWorkers
	if w <= 0 {
		w = DefaultSweepWorkers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > npts {
		w = npts
	}
	if w < 1 {
		w = 1
	}
	return w
}

// solverKind resolves the effective backend for this circuit.
func (c *Circuit) solverKind() SolverKind {
	k := c.Opts.Solver
	if k == SolverAuto {
		k = DefaultSolver
	}
	if k == SolverAuto {
		k = SolverSparse
	}
	return k
}

// SolverStats accumulates linear-solver effort across analyses. One
// instance may be shared by many circuits (the evaluation harness shares
// one per problem); it is safe for concurrent use. Factorization and
// solve counts are cumulative; the NNZ fields are last-observed gauges
// describing the most recent system.
type SolverStats struct {
	// Factorizations counts numeric factorizations.
	Factorizations atomic.Int64
	// Solves counts triangular solves.
	Solves atomic.Int64
	// Symbolic counts symbolic factorizations (pattern analysis plus
	// fill-reducing ordering); the sparse backend pays one per topology.
	Symbolic atomic.Int64
	// MatrixNNZ is the stored-entry count of the last assembled system.
	MatrixNNZ atomic.Int64
	// FactorNNZ is the stored-entry count of its L+U factors; the excess
	// over MatrixNNZ is the fill-in.
	FactorNNZ atomic.Int64
	// DCNanos, ACNanos and TranNanos split analysis wall time
	// (assembly + factorization + solves) by analysis type, so the
	// solver cost structure is visible without a profiler.
	DCNanos   atomic.Int64
	ACNanos   atomic.Int64
	TranNanos atomic.Int64
	// kind records the backend of the last flushing circuit.
	kind atomic.Int64
}

// Kind returns the backend name of the most recent analysis ("sparse",
// "dense", or "" before any analysis ran).
func (s *SolverStats) Kind() string {
	switch SolverKind(s.kind.Load()) {
	case SolverSparse:
		return "sparse"
	case SolverDense:
		return "dense"
	default:
		return ""
	}
}

// flushSolverStats folds the delta between a backend's cumulative
// counters and the previously flushed snapshot into the circuit's shared
// SolverStats. Analyses call it once per run (DC, transient) or per
// point (AC), so shared counters stay current without atomics on the
// per-iteration hot path.
func (c *Circuit) flushSolverStats(cur linalg.SolverStats, prev *linalg.SolverStats) {
	st := c.SolverStats
	if st == nil {
		*prev = cur
		return
	}
	st.Factorizations.Add(cur.Factorizations - prev.Factorizations)
	st.Solves.Add(cur.Solves - prev.Solves)
	st.Symbolic.Add(cur.Symbolic - prev.Symbolic)
	st.MatrixNNZ.Store(int64(cur.NNZ))
	st.FactorNNZ.Store(int64(cur.FillNNZ))
	st.kind.Store(int64(c.solverKind()))
	*prev = cur
}

// VarName names MNA variable i for diagnostics: the node name for node
// variables, "I(device)" for branch currents.
func (c *Circuit) VarName(i int) string {
	if i == groundIndex {
		return Ground
	}
	if i < len(c.nodeNames) {
		return c.nodeNames[i]
	}
	b := i - len(c.nodeNames)
	if b < len(c.branchDevs) {
		if d, ok := c.branchDevs[b].(Device); ok {
			return "I(" + d.Name() + ")"
		}
	}
	return fmt.Sprintf("var%d", i)
}

// describeSolverErr augments a linear-solver error with circuit-level
// context: a PivotError's matrix index becomes the MNA variable (node or
// branch) whose pivot vanished.
func (c *Circuit) describeSolverErr(err error) error {
	var pe *linalg.PivotError
	if errors.As(err, &pe) {
		return fmt.Errorf("%w; MNA variable %q", err, c.VarName(pe.Index))
	}
	return err
}
