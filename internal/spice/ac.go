package spice

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
	"sync/atomic"
	"time"

	"specwise/internal/linalg"
	"specwise/internal/sched"
)

// ACResult is the small-signal solution at one angular frequency.
type ACResult struct {
	Omega float64
	X     []complex128
}

// Voltage returns the complex node voltage (0 for ground).
func (r *ACResult) Voltage(node int) complex128 { return cvolt(r.X, node) }

// AC solves the small-signal system (G + jωC)·x = b linearized at the
// given DC operating point. The assembly structure and factorization
// workspace live in the circuit's scratch space and are reused across
// frequency points — with the sparse backend, every point after the
// first is a numeric refactorization over the fixed (G + jωC) pattern.
// The returned solution is freshly allocated and stays valid across
// calls.
func (c *Circuit) AC(dc *DCResult, omega float64) (*ACResult, error) {
	c.finalize()
	n := c.NumVars()
	w := c.acScratch(n)
	if st := c.SolverStats; st != nil {
		start := time.Now()
		defer func() { st.ACNanos.Add(time.Since(start).Nanoseconds()) }()
	}
	defer func() { c.flushSolverStats(w.acSolver.Stats(), &w.acPrev) }()
	c.acAssemble(w, dc, omega)
	sol := w.acSolver
	if err := sol.Factor(); err != nil {
		return nil, fmt.Errorf("spice: AC solve at ω=%g: %w", omega, c.describeSolverErr(err))
	}
	x := make([]complex128, n)
	if err := sol.SolveInto(x, w.acB); err != nil {
		return nil, fmt.Errorf("spice: AC solve at ω=%g: %w", omega, err)
	}
	return &ACResult{Omega: omega, X: x}, nil
}

// acAssemble stamps the full small-signal system at omega into the AC
// scratch: matrix into w.acSolver, right-hand side into w.acB.
func (c *Circuit) acAssemble(w *solverScratch, dc *DCResult, omega float64) {
	sol, b := w.acSolver, w.acB
	sol.Reset()
	for i := range b {
		b[i] = 0
	}
	for _, d := range c.devices {
		d.StampAC(sol, b, omega, dc.X)
	}
	// The same gmin leak as DC keeps the AC matrix nonsingular when
	// devices are cut off.
	for i := 0; i < c.NumNodes(); i++ {
		sol.Addto(i, i, complex(1e-12, 0))
	}
}

// affineCSolver is the optional backend capability ACSweep exploits:
// every AC stamp has the form g + jω·c and the right-hand side is
// frequency-independent, so the assembled system is affine in ω. A
// backend exposing value capture/reload lets the sweep assemble twice
// (at ω=0 and ω=1) and re-materialize the matrix at every further
// frequency with one linear pass over the stored values.
type affineCSolver interface {
	CaptureValues(dst []complex128) []complex128
	LoadValues(base, slope []complex128, t float64) bool
}

// workspaceCSolver is the further capability the fanned-out sweep
// needs: per-goroutine numeric workspaces sharing the solver's symbolic
// factorization, plus a way to fold their effort counters back.
type workspaceCSolver interface {
	affineCSolver
	Factor() error
	NumericWorkspace() (*linalg.SparseComplexWorkspace, error)
	Absorb(linalg.SolverStats)
}

// Bode is a sampled frequency response H(f) of one observed node.
type Bode struct {
	Freq []float64    // Hz, ascending
	H    []complex128 // response samples

	magDB    []float64 // lazy MagDB cache
	phaseDeg []float64 // lazy unwrapped-phase cache
}

// ACSweep runs AC analyses over logarithmically spaced frequencies from
// fStart to fStop (Hz) with pointsPerDecade samples per decade, observing
// the voltage of the given node.
func (c *Circuit) ACSweep(dc *DCResult, node int, fStart, fStop float64, pointsPerDecade int) (*Bode, error) {
	if fStart <= 0 || fStop <= fStart || pointsPerDecade < 1 {
		return nil, fmt.Errorf("spice: invalid sweep [%g, %g] @ %d/dec", fStart, fStop, pointsPerDecade)
	}
	decades := math.Log10(fStop / fStart)
	npts := int(math.Ceil(decades*float64(pointsPerDecade))) + 1
	b := &Bode{Freq: make([]float64, npts), H: make([]complex128, npts)}

	c.finalize()
	n := c.NumVars()
	w := c.acScratch(n)
	if st := c.SolverStats; st != nil {
		start := time.Now()
		defer func() { st.ACNanos.Add(time.Since(start).Nanoseconds()) }()
	}
	defer func() { c.flushSolverStats(w.acSolver.Stats(), &w.acPrev) }()
	sol := w.acSolver

	// The small-signal system is affine in ω (every stamp is g + jω·c,
	// the RHS is frequency-independent), so when the backend supports
	// value capture we stamp only twice — at ω=0 and ω=1 — and rebuild
	// the values at each sweep point with one pass over the snapshot.
	aff, affOK := sol.(affineCSolver)
	if affOK {
		c.acAssemble(w, dc, 0)
		w.affBase = aff.CaptureValues(w.affBase)
		c.acAssemble(w, dc, 1)
		w.affSlope = aff.CaptureValues(w.affSlope)
		if len(w.affSlope) == len(w.affBase) {
			for k := range w.affSlope {
				w.affSlope[k] -= w.affBase[k]
			}
		} else {
			affOK = false // structure changed between probes; restamp per point
		}
	}
	if len(w.acX) != n {
		w.acX = make([]complex128, n)
	}
	if affOK {
		// Fast path: every point is LoadValues → refactor → solve over
		// one shared symbolic factorization, fanned over numeric
		// workspaces. Falls through to the serial loop when the backend
		// lacks workspace support (dense).
		if wsol, ok := sol.(workspaceCSolver); ok {
			done, err := c.acSweepShared(w, wsol, b, node, fStart, decades, npts)
			if done {
				return b, err
			}
		}
	}
	for i := 0; i < npts; i++ {
		f := fStart * math.Pow(10, decades*float64(i)/float64(npts-1))
		omega := 2 * math.Pi * f
		if !affOK || !aff.LoadValues(w.affBase, w.affSlope, omega) {
			c.acAssemble(w, dc, omega)
		}
		if err := sol.Factor(); err != nil {
			return nil, fmt.Errorf("spice: AC solve at ω=%g: %w", omega, c.describeSolverErr(err))
		}
		if err := sol.SolveInto(w.acX, w.acB); err != nil {
			return nil, fmt.Errorf("spice: AC solve at ω=%g: %w", omega, err)
		}
		b.Freq[i] = f
		b.H[i] = cvolt(w.acX, node)
	}
	return b, nil
}

// acSweepShared runs the sweep's frequency points through per-goroutine
// numeric workspaces over one shared symbolic factorization. Every point
// executes the identical LoadValues → refactor → solve sequence in its
// own workspace and writes its result by index, so the Bode response is
// bit-identical for any worker count (including the inline 1-worker
// path). done reports whether the sweep was handled here; when false the
// caller's serial loop takes over from scratch.
func (c *Circuit) acSweepShared(w *solverScratch, sol workspaceCSolver, b *Bode, node int, fStart, decades float64, npts int) (done bool, err error) {
	// Factor at the first point to establish current factors for the
	// workspaces to share.
	omega0 := 2 * math.Pi * fStart
	if !sol.LoadValues(w.affBase, w.affSlope, omega0) {
		return false, nil
	}
	if err := sol.Factor(); err != nil {
		return true, fmt.Errorf("spice: AC solve at ω=%g: %w", omega0, c.describeSolverErr(err))
	}
	ws, err := sol.NumericWorkspace()
	if err != nil {
		return false, nil
	}
	sweepPoint := func(ws *linalg.SparseComplexWorkspace, x []complex128, i int) error {
		f := fStart * math.Pow(10, decades*float64(i)/float64(npts-1))
		omega := 2 * math.Pi * f
		if !ws.LoadValues(w.affBase, w.affSlope, omega) {
			return fmt.Errorf("spice: AC sweep workspace rejected values at ω=%g", omega)
		}
		if err := ws.Factor(); err != nil {
			return fmt.Errorf("spice: AC solve at ω=%g: %w", omega, c.describeSolverErr(err))
		}
		if err := ws.SolveInto(x, w.acB); err != nil {
			return fmt.Errorf("spice: AC solve at ω=%g: %w", omega, err)
		}
		b.Freq[i] = f
		b.H[i] = cvolt(x, node)
		return nil
	}
	workers := c.sweepWorkers(npts)
	if workers == 1 {
		for i := 0; i < npts; i++ {
			if err := sweepPoint(ws, w.acX, i); err != nil {
				sol.Absorb(ws.Stats())
				return true, err
			}
		}
		sol.Absorb(ws.Stats())
		return true, nil
	}
	// Caller-runs pool gated by the process-wide compute scheduler: the
	// calling goroutine always sweeps, and up to workers-1 extras (each
	// with a cloned numeric workspace) join only while foreground slots
	// are free. Points are claimed off a shared index in ascending order
	// and written by index, so the response is bit-identical however many
	// extras actually join.
	var next atomic.Int64
	var errMu sync.Mutex
	firstErr, firstAt := error(nil), npts
	run := func(wsk *linalg.SparseComplexWorkspace, x []complex128) {
		for {
			i := int(next.Add(1)) - 1
			if i >= npts {
				return
			}
			if err := sweepPoint(wsk, x, i); err != nil {
				// Keep the failure at the lowest point index, matching
				// what the serial sweep would have surfaced first. Claims
				// ascend, so the lowest failing point is always claimed
				// before any worker could have stopped because of it.
				errMu.Lock()
				if i < firstAt {
					firstErr, firstAt = err, i
				}
				errMu.Unlock()
				return
			}
		}
	}
	sch := sched.Default()
	var wg sync.WaitGroup
	var clones []*linalg.SparseComplexWorkspace
	for extra := 0; extra < workers-1 && sch.TryAcquire(); extra++ {
		wsk := ws.Clone()
		clones = append(clones, wsk)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sch.Release()
			run(wsk, make([]complex128, c.NumVars()))
		}()
	}
	run(ws, w.acX)
	wg.Wait()
	sol.Absorb(ws.Stats())
	for _, wsk := range clones {
		sol.Absorb(wsk.Stats())
	}
	return true, firstErr
}

// mags returns the lazily built magnitude cache.
func (b *Bode) mags() []float64 {
	if b.magDB == nil {
		b.magDB = make([]float64, len(b.H))
		for i, h := range b.H {
			b.magDB[i] = 20 * math.Log10(cmplx.Abs(h))
		}
	}
	return b.magDB
}

// MagDB returns the magnitude in dB at sample i.
func (b *Bode) MagDB(i int) float64 { return b.mags()[i] }

// phases returns the lazily built unwrapped-phase cache: one pass
// unwraps the whole response, so callers like UnityCrossing that probe
// many samples stay O(n) instead of re-unwrapping from sample 0 per
// probe.
func (b *Bode) phases() []float64 {
	if b.phaseDeg == nil && len(b.H) > 0 {
		ph := make([]float64, len(b.H))
		phase := cmplx.Phase(b.H[0])
		ph[0] = phase * 180 / math.Pi
		for k := 1; k < len(b.H); k++ {
			p := cmplx.Phase(b.H[k])
			for p-phase > math.Pi {
				p -= 2 * math.Pi
			}
			for p-phase < -math.Pi {
				p += 2 * math.Pi
			}
			phase = p
			ph[k] = phase * 180 / math.Pi
		}
		b.phaseDeg = ph
	}
	return b.phaseDeg
}

// PhaseDeg returns the unwrapped phase in degrees at sample i, unwrapping
// from sample 0 so a multi-pole roll-off stays monotone.
func (b *Bode) PhaseDeg(i int) float64 { return b.phases()[i] }

// DCGainDB returns the magnitude of the first (lowest-frequency) sample.
func (b *Bode) DCGainDB() float64 { return b.MagDB(0) }

// UnityCrossing returns the frequency where |H| falls through 1 and the
// interpolated phase (degrees) at that frequency. ok is false when the
// response never crosses unity within the sweep.
func (b *Bode) UnityCrossing() (freq, phaseDeg float64, ok bool) {
	if len(b.Freq) == 0 || cmplx.Abs(b.H[0]) <= 1 {
		return 0, 0, false
	}
	for i := 1; i < len(b.Freq); i++ {
		m0 := b.MagDB(i - 1)
		m1 := b.MagDB(i)
		if m1 > 0 {
			continue
		}
		// Interpolate in log-frequency where magnitude crosses 0 dB.
		t := 0.0
		if m0 != m1 {
			t = m0 / (m0 - m1)
		}
		lf := math.Log10(b.Freq[i-1]) + t*(math.Log10(b.Freq[i])-math.Log10(b.Freq[i-1]))
		p0 := b.PhaseDeg(i - 1)
		p1 := b.PhaseDeg(i)
		return math.Pow(10, lf), p0 + t*(p1-p0), true
	}
	return 0, 0, false
}

// PhaseMarginDeg returns the phase margin 180° + ∠H(f_unity) of an
// inverting-or-not open-loop response, normalizing the DC phase so both
// polarities report the conventional margin. ok is false without a
// unity crossing.
func (b *Bode) PhaseMarginDeg() (pm float64, ok bool) {
	_, phase, ok := b.UnityCrossing()
	if !ok {
		return 0, false
	}
	// Reference the phase to the low-frequency phase so that an
	// inverting path (DC phase ±180°) and a non-inverting path (0°)
	// produce the same margin convention.
	dcPhase := b.PhaseDeg(0)
	return 180 + (phase - dcPhase), true
}
