package spice

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ACResult is the small-signal solution at one angular frequency.
type ACResult struct {
	Omega float64
	X     []complex128
}

// Voltage returns the complex node voltage (0 for ground).
func (r *ACResult) Voltage(node int) complex128 { return cvolt(r.X, node) }

// AC solves the small-signal system (G + jωC)·x = b linearized at the
// given DC operating point. The stamp matrix and elimination workspace
// live in the circuit's scratch space and are reused across frequency
// points; only the solution vector is freshly allocated, so returned
// results stay valid across calls.
func (c *Circuit) AC(dc *DCResult, omega float64) (*ACResult, error) {
	c.finalize()
	n := c.NumVars()
	w := c.acScratch(n)
	a, b := w.acA, w.acB
	a.Zero()
	for i := range b {
		b[i] = 0
	}
	for _, d := range c.devices {
		d.StampAC(a, b, omega, dc.X)
	}
	// The same gmin leak as DC keeps the AC matrix nonsingular when
	// devices are cut off.
	for i := 0; i < c.NumNodes(); i++ {
		a.Addto(i, i, complex(1e-12, 0))
	}
	x, err := w.acLU.SolveInto(a, b)
	if err != nil {
		return nil, fmt.Errorf("spice: AC solve at ω=%g: %w", omega, err)
	}
	return &ACResult{Omega: omega, X: append([]complex128(nil), x...)}, nil
}

// Bode is a sampled frequency response H(f) of one observed node.
type Bode struct {
	Freq []float64    // Hz, ascending
	H    []complex128 // response samples
}

// ACSweep runs AC analyses over logarithmically spaced frequencies from
// fStart to fStop (Hz) with pointsPerDecade samples per decade, observing
// the voltage of the given node.
func (c *Circuit) ACSweep(dc *DCResult, node int, fStart, fStop float64, pointsPerDecade int) (*Bode, error) {
	if fStart <= 0 || fStop <= fStart || pointsPerDecade < 1 {
		return nil, fmt.Errorf("spice: invalid sweep [%g, %g] @ %d/dec", fStart, fStop, pointsPerDecade)
	}
	decades := math.Log10(fStop / fStart)
	n := int(math.Ceil(decades*float64(pointsPerDecade))) + 1
	b := &Bode{Freq: make([]float64, n), H: make([]complex128, n)}
	for i := 0; i < n; i++ {
		f := fStart * math.Pow(10, decades*float64(i)/float64(n-1))
		r, err := c.AC(dc, 2*math.Pi*f)
		if err != nil {
			return nil, err
		}
		b.Freq[i] = f
		b.H[i] = r.Voltage(node)
	}
	return b, nil
}

// MagDB returns the magnitude in dB at sample i.
func (b *Bode) MagDB(i int) float64 { return 20 * math.Log10(cmplx.Abs(b.H[i])) }

// PhaseDeg returns the unwrapped phase in degrees at sample i, unwrapping
// from sample 0 so a multi-pole roll-off stays monotone.
func (b *Bode) PhaseDeg(i int) float64 {
	phase := cmplx.Phase(b.H[0])
	for k := 1; k <= i; k++ {
		p := cmplx.Phase(b.H[k])
		for p-phase > math.Pi {
			p -= 2 * math.Pi
		}
		for p-phase < -math.Pi {
			p += 2 * math.Pi
		}
		phase = p
	}
	return phase * 180 / math.Pi
}

// DCGainDB returns the magnitude of the first (lowest-frequency) sample.
func (b *Bode) DCGainDB() float64 { return b.MagDB(0) }

// UnityCrossing returns the frequency where |H| falls through 1 and the
// interpolated phase (degrees) at that frequency. ok is false when the
// response never crosses unity within the sweep.
func (b *Bode) UnityCrossing() (freq, phaseDeg float64, ok bool) {
	if len(b.Freq) == 0 || cmplx.Abs(b.H[0]) <= 1 {
		return 0, 0, false
	}
	for i := 1; i < len(b.Freq); i++ {
		m0 := b.MagDB(i - 1)
		m1 := b.MagDB(i)
		if m1 > 0 {
			continue
		}
		// Interpolate in log-frequency where magnitude crosses 0 dB.
		t := 0.0
		if m0 != m1 {
			t = m0 / (m0 - m1)
		}
		lf := math.Log10(b.Freq[i-1]) + t*(math.Log10(b.Freq[i])-math.Log10(b.Freq[i-1]))
		p0 := b.PhaseDeg(i - 1)
		p1 := b.PhaseDeg(i)
		return math.Pow(10, lf), p0 + t*(p1-p0), true
	}
	return 0, 0, false
}

// PhaseMarginDeg returns the phase margin 180° + ∠H(f_unity) of an
// inverting-or-not open-loop response, normalizing the DC phase so both
// polarities report the conventional margin. ok is false without a
// unity crossing.
func (b *Bode) PhaseMarginDeg() (pm float64, ok bool) {
	_, phase, ok := b.UnityCrossing()
	if !ok {
		return 0, false
	}
	// Reference the phase to the low-frequency phase so that an
	// inverting path (DC phase ±180°) and a non-inverting path (0°)
	// produce the same margin convention.
	dcPhase := b.PhaseDeg(0)
	return 180 + (phase - dcPhase), true
}
