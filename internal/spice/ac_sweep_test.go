package spice

import (
	"math"
	"math/cmplx"
	"testing"

	"specwise/internal/linalg"
)

// TestACSweepWorkerDeterminism pins the parallel sweep's contract: the
// Bode response is bit-identical for every worker count, because each
// point runs the identical LoadValues → refactor → solve sequence in a
// workspace sharing one symbolic factorization.
func TestACSweepWorkerDeterminism(t *testing.T) {
	sweep := func(workers int) *Bode {
		c := buildTestAmp(SolverSparse)
		c.Opts.SweepWorkers = workers
		dc, err := c.DC(DCOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.ACSweep(dc, c.Node("out"), 10, 1e9, 4)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ref := sweep(1)
	for _, workers := range []int{2, 3, 8, 64} {
		got := sweep(workers)
		if len(got.H) != len(ref.H) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got.H), len(ref.H))
		}
		for i := range ref.H {
			if math.Float64bits(got.Freq[i]) != math.Float64bits(ref.Freq[i]) {
				t.Fatalf("workers=%d: Freq[%d] = %x, want %x", workers, i, got.Freq[i], ref.Freq[i])
			}
			if math.Float64bits(real(got.H[i])) != math.Float64bits(real(ref.H[i])) ||
				math.Float64bits(imag(got.H[i])) != math.Float64bits(imag(ref.H[i])) {
				t.Fatalf("workers=%d: H[%d] = %v, want bit-identical %v", workers, i, got.H[i], ref.H[i])
			}
		}
	}
}

// fickleCap is a capacitor whose AC stamp appears only above a cutover
// frequency. Its matrix structure differs between the sweep's ω=0 and
// ω=1 affine probes, so ACSweep must detect the mismatch and fall back
// to per-point assembly.
type fickleCap struct {
	p, n int
	c    float64
}

func (d *fickleCap) Name() string { return "CFICKLE" }

func (d *fickleCap) StampDC(linalg.Stamper, linalg.Vector, linalg.Vector, *stampCtx) {}

func (d *fickleCap) StampAC(a linalg.CStamper, _ []complex128, omega float64, _ linalg.Vector) {
	if omega <= 0.5 {
		return
	}
	y := complex(0, omega*d.c)
	addAC(a, d.p, d.p, y)
	addAC(a, d.n, d.n, y)
	addAC(a, d.p, d.n, -y)
	addAC(a, d.n, d.p, -y)
}

// TestACSweepAffineFallback drives the sweep's snapshot-mismatch path: a
// device stamping extra structure only at the ω=1 probe invalidates the
// affine capture, and the sweep must still agree with per-point AC.
func TestACSweepAffineFallback(t *testing.T) {
	for _, kind := range []SolverKind{SolverDense, SolverSparse} {
		c := buildTestAmp(kind)
		c.Add(&fickleCap{p: c.Node("out"), n: c.Node(Ground), c: 2e-12})
		dc, err := c.DC(DCOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out := c.Node("out")
		bode, err := c.ACSweep(dc, out, 10, 1e9, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range bode.Freq {
			r, err := c.AC(dc, 2*math.Pi*f)
			if err != nil {
				t.Fatal(err)
			}
			want := r.Voltage(out)
			d := bode.H[i] - want
			mag := math.Hypot(real(d), imag(d))
			scale := math.Max(math.Hypot(real(want), imag(want)), 1e-12)
			if mag/scale > 1e-9 {
				t.Errorf("%v: fallback sweep H(%g Hz) = %v, direct %v", kind, f, bode.H[i], want)
			}
		}
	}
}

// TestBodePhaseCache checks the one-pass unwrapped-phase cache against a
// from-scratch per-index unwrap (the previous O(n²) implementation), in
// every query order. The synthetic response rotates 1.9 rad per sample,
// so the principal phase wraps many times across the sweep and the
// unwrap has real work to do.
func TestBodePhaseCache(t *testing.T) {
	const npts = 40
	bode := &Bode{Freq: make([]float64, npts), H: make([]complex128, npts)}
	for k := range bode.H {
		bode.Freq[k] = math.Pow(10, 1+float64(k)/8)
		bode.H[k] = cmplx.Rect(1+0.03*float64(k), -1.9*float64(k))
	}
	// Reference: unwrap from sample 0 up to i, independently per query.
	ref := func(i int) float64 {
		phase := cmplx.Phase(bode.H[0])
		for k := 1; k <= i; k++ {
			p := cmplx.Phase(bode.H[k])
			for p-phase > math.Pi {
				p -= 2 * math.Pi
			}
			for p-phase < -math.Pi {
				p += 2 * math.Pi
			}
			phase = p
		}
		return phase * 180 / math.Pi
	}
	// Query back to front first, so a cache built lazily in query order
	// (rather than in one forward pass) would be caught.
	for i := len(bode.H) - 1; i >= 0; i-- {
		if got, want := bode.PhaseDeg(i), ref(i); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("PhaseDeg(%d) = %v, want %v", i, got, want)
		}
	}
	for i := range bode.H {
		if got, want := bode.MagDB(i), 20*math.Log10(cmplx.Abs(bode.H[i])); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("MagDB(%d) = %v, want %v", i, got, want)
		}
	}
	// The rotation accumulates far past ±180°; a cache that returned the
	// principal value instead of the unwrapped phase would stay inside it.
	if last := bode.PhaseDeg(npts - 1); last > -360 {
		t.Fatalf("fixture too tame: final unwrapped phase %.1f°", last)
	}
}
