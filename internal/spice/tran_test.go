package spice

import (
	"math"
	"testing"
)

// RC charging: v(t) = V·(1 − e^{−t/RC}) after a step at t=0.
func TestTranRCStepResponse(t *testing.T) {
	c := New()
	in := c.Node("in")
	out := c.Node("out")
	gnd := c.Node(Ground)
	c.Add(NewPulseSource("VP", in, gnd, 0, 1, 0, 1e-9))
	c.Add(NewResistor("R1", in, out, 1e3))
	c.Add(NewCapacitor("C1", out, gnd, 1e-6)) // τ = 1 ms

	res, err := c.Tran(TranOptions{Stop: 5e-3, Step: 10e-6})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ t, want float64 }{
		{1e-3, 1 - math.Exp(-1)},
		{2e-3, 1 - math.Exp(-2)},
		{5e-3, 1 - math.Exp(-5)},
	} {
		if got := res.At(out, tc.t); math.Abs(got-tc.want) > 5e-3 {
			t.Errorf("v(%g) = %v want %v", tc.t, got, tc.want)
		}
	}
	if v0 := res.At(out, 0); math.Abs(v0) > 1e-6 {
		t.Errorf("v(0) = %v want 0", v0)
	}
}

// Trapezoidal integration must be second-order: quartering the step cuts
// the error by ~16x (allow 8x for safety). The stimulus uses a ramp that
// both step sizes resolve — an unresolved hard discontinuity costs any
// one-step method an O(dt) startup error — and the reference is a much
// finer run of the same method.
func TestTranTrapezoidalOrder(t *testing.T) {
	runAt := func(step float64) float64 {
		c := New()
		in := c.Node("in")
		out := c.Node("out")
		gnd := c.Node(Ground)
		c.Add(NewPulseSource("VP", in, gnd, 0, 1, 0, 200e-6))
		c.Add(NewResistor("R1", in, out, 1e3))
		c.Add(NewCapacitor("C1", out, gnd, 1e-6))
		res, err := c.Tran(TranOptions{Stop: 1e-3, Step: step})
		if err != nil {
			t.Fatal(err)
		}
		return res.At(out, 1e-3)
	}
	ref := runAt(2e-6)
	coarse := math.Abs(runAt(100e-6) - ref)
	fine := math.Abs(runAt(25e-6) - ref)
	if coarse/fine < 8 {
		t.Errorf("error ratio %v; trapezoidal rule should be ~16x", coarse/fine)
	}
}

// Backward Euler (theta=1) must also converge, just less accurately.
func TestTranBackwardEuler(t *testing.T) {
	c := New()
	in := c.Node("in")
	out := c.Node("out")
	gnd := c.Node(Ground)
	c.Add(NewPulseSource("VP", in, gnd, 0, 1, 0, 0))
	c.Add(NewResistor("R1", in, out, 1e3))
	c.Add(NewCapacitor("C1", out, gnd, 1e-6))
	res, err := c.Tran(TranOptions{Stop: 3e-3, Step: 20e-6, Theta: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-3)
	if got := res.At(out, 3e-3); math.Abs(got-want) > 0.02 {
		t.Errorf("BE v(3ms) = %v want %v", got, want)
	}
}

func TestTranOptionValidation(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.Add(NewResistor("R", n, c.Node(Ground), 1))
	if _, err := c.Tran(TranOptions{Stop: 0, Step: 1e-6}); err == nil {
		t.Error("Stop=0 accepted")
	}
	if _, err := c.Tran(TranOptions{Stop: 1e-3, Step: 1e-6, Theta: 0.2}); err == nil {
		t.Error("theta<0.5 accepted")
	}
	if _, err := c.Tran(TranOptions{Stop: 1e-3, Step: 1e-6, Initial: make([]float64, 99)}); err == nil {
		t.Error("bad initial length accepted")
	}
}

func TestPulseSourceValueAt(t *testing.T) {
	s := NewPulseSource("P", 0, 1, 0.5, 2.5, 1e-6, 2e-6)
	cases := []struct{ t, want float64 }{
		{0, 0.5}, {1e-6, 0.5}, {2e-6, 1.5}, {3e-6, 2.5}, {10e-6, 2.5},
	}
	for _, tc := range cases {
		if got := s.ValueAt(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ValueAt(%g) = %v want %v", tc.t, got, tc.want)
		}
	}
	// Zero rise time: hard step.
	h := NewPulseSource("H", 0, 1, 0, 1, 1e-6, 0)
	if h.ValueAt(1e-6) != 0 || h.ValueAt(1.0000001e-6) != 1 {
		t.Error("hard step wrong")
	}
}

// Slew-rate extraction on a known ramp-limited exponential.
func TestSlewRateExtraction(t *testing.T) {
	c := New()
	in := c.Node("in")
	out := c.Node("out")
	gnd := c.Node(Ground)
	c.Add(NewPulseSource("VP", in, gnd, 0, 1, 0, 0))
	c.Add(NewResistor("R1", in, out, 1e3))
	c.Add(NewCapacitor("C1", out, gnd, 1e-6))
	res, err := c.Tran(TranOptions{Stop: 5e-3, Step: 10e-6})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := res.SlewRate(out, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// The waveform ends at v(5τ) = 1−e⁻⁵, so the 10/90% thresholds are
	// referred to that swing: lo = 0.0993, hi = 0.894, giving
	// slope = (hi−lo)/(τ·(ln(1−lo)−ln(1−hi))⁻¹…) ≈ 371.6 V/s.
	vEnd := 1 - math.Exp(-5)
	lo, hi := 0.1*vEnd, 0.9*vEnd
	tLo := -1e-3 * math.Log(1-lo)
	tHi := -1e-3 * math.Log(1-hi)
	want := (hi - lo) / (tHi - tLo)
	if math.Abs(sr-want)/want > 0.02 {
		t.Errorf("slew = %v want %v", sr, want)
	}
}

// Large-signal MOS switching: an NMOS inverter driving a capacitive load
// discharges it at roughly Idsat/C.
func TestTranMosInverterFall(t *testing.T) {
	c := New()
	vdd := c.Node("vdd")
	g := c.Node("g")
	out := c.Node("out")
	gnd := c.Node(Ground)
	c.Add(NewVSource("VDD", vdd, gnd, 3.3, 0))
	c.Add(NewPulseSource("VG", g, gnd, 0, 3.3, 1e-9, 1e-10))
	c.Add(NewResistor("RP", vdd, out, 100e3)) // weak pull-up
	m := NewMosfet("MN", out, g, gnd, gnd, +1, 20e-6, 1e-6, DefaultNMOS())
	c.Add(m)
	c.Add(NewCapacitor("CL", out, gnd, 1e-12))

	res, err := c.Tran(TranOptions{Stop: 4e-9, Step: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Voltage(out)
	if v[0] < 3.2 {
		t.Fatalf("initial output %v want ≈3.3 (device off)", v[0])
	}
	final := v[len(v)-1]
	if final > 0.3 {
		t.Errorf("final output %v want near 0 (device on)", final)
	}
	// Fall slew on the order of Idsat/C: Idsat ≈ 0.5·120µ·20·(3.3−0.71)²
	// ≈ 8 mA → 8 V/ns; the RC start and triode tail reduce the 10–90%
	// average. Just require the right order of magnitude.
	sr, err := res.SlewRate(out, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	srVns := math.Abs(sr) / 1e9
	if srVns < 1 || srVns > 20 {
		t.Errorf("fall slew %v V/ns; expected a few V/ns", srVns)
	}
}
