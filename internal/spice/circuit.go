// Package spice implements the circuit-simulation substrate used in place
// of the paper's industrial TITAN simulator: modified nodal analysis (MNA)
// with a damped Newton–Raphson DC solver (plus gmin and source stepping
// homotopies) and a complex-valued small-signal AC analysis. Devices cover
// what the two benchmark opamps need: resistors, capacitors, independent
// sources, voltage-controlled voltage sources, and a C1-continuous level-1
// MOSFET model with channel-length modulation and mismatch hooks.
package spice

import (
	"fmt"

	"specwise/internal/linalg"
)

// Ground is the reserved node name for the reference node.
const Ground = "0"

// groundIndex marks the ground node in device terminal lists.
const groundIndex = -1

// Circuit is a flat netlist plus the MNA variable layout. Circuits are
// cheap to construct; the evaluation layer builds a fresh circuit for every
// (design, statistical, operating) parameter set. A circuit carries solver
// scratch buffers reused across Newton iterations and AC sweep points, so
// a single Circuit must not run analyses from multiple goroutines
// concurrently (constructing one circuit per goroutine, as the evaluation
// layer does, is the supported pattern).
type Circuit struct {
	nodeIndex  map[string]int
	nodeNames  []string
	devices    []Device
	branchDevs []branchDevice

	// Opts selects per-circuit analysis configuration, notably the
	// linear-solver backend. Set it before the first analysis; changing
	// the backend afterwards takes effect when the system order changes.
	Opts Options

	// SolverStats, when non-nil, receives linear-solver effort counters
	// flushed after every analysis. It may be shared across circuits.
	SolverStats *SolverStats

	scratch solverScratch
}

// solverScratch holds reusable per-circuit solver storage. Lazily sized
// to the MNA system order; re-allocated if devices are added between
// analyses. The prev fields snapshot the backend's cumulative counters
// at the last stats flush.
type solverScratch struct {
	n      int
	solver linalg.Solver
	res    linalg.Vector
	dx     linalg.Vector
	prev   linalg.SolverStats
	// lastFactorErr records the most recent factorization failure inside
	// a Newton attempt, for diagnostics when the whole solve fails.
	lastFactorErr error

	acN      int
	acSolver linalg.ComplexSolver
	acB      []complex128
	acPrev   linalg.SolverStats
	// acX is the reusable sweep solution buffer; affBase/affSlope hold
	// the affine value snapshots ACSweep captures at ω=0 and ω=1.
	acX      []complex128
	affBase  []complex128
	affSlope []complex128
}

// dcScratch returns the DC Newton workspace for an order-n system.
func (c *Circuit) dcScratch(n int) *solverScratch {
	s := &c.scratch
	if s.n != n || s.solver == nil {
		s.n = n
		if c.solverKind() == SolverDense {
			s.solver = linalg.NewDenseSolver(n)
		} else {
			sp := linalg.NewSparseSolver(n)
			if c.Opts.SymCache != nil {
				sp.SetSymbolicCache(c.Opts.SymCache)
			}
			s.solver = sp
		}
		s.res = linalg.NewVector(n)
		s.dx = linalg.NewVector(n)
		s.prev = linalg.SolverStats{}
	}
	return s
}

// acScratch returns the AC workspace for an order-n system.
func (c *Circuit) acScratch(n int) *solverScratch {
	s := &c.scratch
	if s.acN != n || s.acSolver == nil {
		s.acN = n
		if c.solverKind() == SolverDense {
			s.acSolver = linalg.NewDenseComplexSolver(n)
		} else {
			sp := linalg.NewSparseComplexSolver(n)
			if c.Opts.SymCache != nil {
				sp.SetSymbolicCache(c.Opts.SymCache)
			}
			s.acSolver = sp
		}
		s.acB = make([]complex128, n)
		s.acPrev = linalg.SolverStats{}
	}
	return s
}

// New returns an empty circuit containing only the ground node.
func New() *Circuit {
	return &Circuit{nodeIndex: map[string]int{Ground: groundIndex, "gnd": groundIndex, "GND": groundIndex}}
}

// Node interns a node name and returns its MNA index (ground is -1).
func (c *Circuit) Node(name string) int {
	if idx, ok := c.nodeIndex[name]; ok {
		return idx
	}
	idx := len(c.nodeNames)
	c.nodeIndex[name] = idx
	c.nodeNames = append(c.nodeNames, name)
	return idx
}

// NodeName returns the name of node index i ("0" for ground).
func (c *Circuit) NodeName(i int) string {
	if i == groundIndex {
		return Ground
	}
	return c.nodeNames[i]
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// NumVars returns the total MNA system size (nodes plus branch currents).
func (c *Circuit) NumVars() int { return len(c.nodeNames) + len(c.branchDevs) }

// Add registers a device. Devices requiring branch currents (voltage
// sources, controlled sources) receive their branch index lazily at
// analysis time — nodes may still be interned after the device is added.
func (c *Circuit) Add(d Device) {
	if b, ok := d.(branchDevice); ok {
		c.branchDevs = append(c.branchDevs, b)
	}
	c.devices = append(c.devices, d)
}

// finalize assigns branch-current indices after all nodes are known.
// Analyses call it before assembling their first system; it is idempotent
// as long as no nodes are interned mid-analysis.
func (c *Circuit) finalize() {
	for i, b := range c.branchDevs {
		b.setBranch(len(c.nodeNames) + i)
	}
}

// Devices returns the registered devices in insertion order.
func (c *Circuit) Devices() []Device { return c.devices }

// FindDevice returns the first device with the given name, or nil.
func (c *Circuit) FindDevice(name string) Device {
	for _, d := range c.devices {
		if d.Name() == name {
			return d
		}
	}
	return nil
}

// stampCtx carries Newton-iteration context into device stamps.
type stampCtx struct {
	// srcScale scales all independent sources; the source-stepping
	// homotopy ramps it from 0 to 1.
	srcScale float64
	// gmin is a leak conductance from every node to ground added by the
	// solver (not the devices); kept here for reporting.
	gmin float64
}

// Device is a circuit element that can stamp itself into the DC Jacobian /
// residual and into the complex AC system. Stamps target the
// solver-agnostic Stamper interfaces, so the same device code assembles
// dense and compressed-column systems.
type Device interface {
	// Name returns the instance name (unique by convention, not enforced).
	Name() string
	// StampDC adds the device's Jacobian entries to jac and its branch
	// current/voltage residuals to res, both evaluated at iterate x.
	StampDC(jac linalg.Stamper, res linalg.Vector, x linalg.Vector, ctx *stampCtx)
	// StampAC adds the small-signal contribution at angular frequency
	// omega, linearized around the DC solution xdc, into the complex
	// system (a, b).
	StampAC(a linalg.CStamper, b []complex128, omega float64, xdc linalg.Vector)
}

// branchDevice is implemented by devices that own an MNA branch variable.
type branchDevice interface {
	setBranch(idx int)
}

// addJac accumulates jac[i][j] += v, skipping ground rows/columns.
func addJac(jac linalg.Stamper, i, j int, v float64) {
	if i == groundIndex || j == groundIndex {
		return
	}
	jac.Addto(i, j, v)
}

// addRes accumulates res[i] += v, skipping the ground row.
func addRes(res linalg.Vector, i int, v float64) {
	if i == groundIndex {
		return
	}
	res[i] += v
}

// addAC accumulates a[i][j] += v, skipping ground rows/columns.
func addAC(a linalg.CStamper, i, j int, v complex128) {
	if i == groundIndex || j == groundIndex {
		return
	}
	a.Addto(i, j, v)
}

// volt reads the voltage of node i from iterate x (0 for ground).
func volt(x linalg.Vector, i int) float64 {
	if i == groundIndex {
		return 0
	}
	return x[i]
}

// cvolt reads the complex voltage of node i (0 for ground).
func cvolt(x []complex128, i int) complex128 {
	if i == groundIndex {
		return 0
	}
	return x[i]
}

// String renders a short netlist summary for debugging.
func (c *Circuit) String() string {
	return fmt.Sprintf("spice.Circuit{%d nodes, %d branches, %d devices}",
		len(c.nodeNames), len(c.branchDevs), len(c.devices))
}
