package spice

import (
	"math"

	"specwise/internal/linalg"
)

// MosParams is a level-1 (square-law) MOSFET model card. Threshold and
// transconductance are given for the device's own polarity, i.e. VT0 is
// positive for both NMOS and PMOS.
type MosParams struct {
	VT0 float64 // zero-bias threshold magnitude [V]
	KP  float64 // process transconductance µ·Cox [A/V²]
	// LambdaC is the channel-length-modulation coefficient normalized to
	// a 1 µm channel: λ = LambdaC · 1µm / L [1/V].
	LambdaC float64
	CoxA    float64 // gate oxide capacitance per area [F/m²]
	CGSO    float64 // gate-source overlap capacitance per width [F/m]
	CGDO    float64 // gate-drain overlap capacitance per width [F/m]
	CJ      float64 // junction capacitance per area [F/m²]
	LDiff   float64 // source/drain diffusion length [m]
	TCV     float64 // threshold temperature coefficient [V/K], applied as VT0 − TCV·(T−T0)
	BEX     float64 // mobility temperature exponent, KP·(T/T0)^BEX (typ. −1.5)
}

// DefaultNMOS returns parameters representative of a 0.6 µm CMOS process.
func DefaultNMOS() MosParams {
	return MosParams{
		VT0: 0.71, KP: 120e-6, LambdaC: 0.06,
		CoxA: 2.5e-3, CGSO: 0.3e-9, CGDO: 0.3e-9,
		CJ: 0.6e-3, LDiff: 0.8e-6,
		TCV: 1.5e-3, BEX: -1.5,
	}
}

// DefaultPMOS returns parameters representative of a 0.6 µm CMOS process.
func DefaultPMOS() MosParams {
	return MosParams{
		VT0: 0.78, KP: 40e-6, LambdaC: 0.08,
		CoxA: 2.5e-3, CGSO: 0.3e-9, CGDO: 0.3e-9,
		CJ: 0.9e-3, LDiff: 0.8e-6,
		TCV: 1.7e-3, BEX: -1.5,
	}
}

// AtTemp returns the model card adjusted to the given temperature [°C]:
// the threshold magnitude drops linearly with TCV and the mobility follows
// the (T/T0)^BEX power law, referenced to 27 °C.
func (p MosParams) AtTemp(tempC float64) MosParams {
	const refK = 300.15
	tK := tempC + 273.15
	q := p
	q.KP *= math.Pow(tK/refK, p.BEX)
	q.VT0 -= p.TCV * (tK - refK)
	return q
}

// MOS region labels reported in MosOp.
const (
	RegionCutoff = iota
	RegionTriode
	RegionSaturation
)

// Mosfet is a level-1 MOSFET instance. DVth and BetaScale are the local
// and global variation hooks: DVth shifts the threshold magnitude and
// BetaScale multiplies the transconductance factor, which is exactly where
// the Pelgrom mismatch model injects per-device deltas.
type Mosfet struct {
	name       string
	D, G, S, B int
	// Polarity is +1 for NMOS, −1 for PMOS.
	Polarity  int
	W, L      float64 // channel width and length [m]
	P         MosParams
	DVth      float64 // threshold shift [V], positive increases |Vth|
	BetaScale float64 // multiplicative KP variation, nominally 1

	// gleak keeps the Jacobian nonsingular when the device is cut off.
	gleak float64
}

// NewMosfet returns a MOSFET instance; polarity is +1 (NMOS) or −1 (PMOS).
func NewMosfet(name string, d, g, s, b, polarity int, w, l float64, p MosParams) *Mosfet {
	return &Mosfet{
		name: name, D: d, G: g, S: s, B: b,
		Polarity: polarity, W: w, L: l, P: p,
		BetaScale: 1, gleak: 1e-12,
	}
}

// Name implements Device.
func (m *Mosfet) Name() string { return m.name }

// vth returns the effective threshold magnitude including variation.
func (m *Mosfet) vth() float64 { return m.P.VT0 + m.DVth }

// beta returns the effective transconductance factor KP·W/L·BetaScale.
func (m *Mosfet) beta() float64 { return m.P.KP * m.BetaScale * m.W / m.L }

// lambda returns the channel-length modulation parameter at this length.
func (m *Mosfet) lambda() float64 { return m.P.LambdaC * 1e-6 / m.L }

// eval computes drain current and small-signal conductances in the
// polarity-normalized, source/drain-ordered frame. vgs and vds are the
// normalized gate-source and (non-negative) drain-source voltages.
// The triode current carries the same (1+λ·vds) factor as saturation,
// which makes the model C1-continuous across the region boundary — a
// requirement for the finite-difference gradients of the optimizer.
func (m *Mosfet) eval(vgs, vds float64) (id, gm, gds float64, region int) {
	vov := vgs - m.vth()
	if vov <= 0 {
		return 0, 0, 0, RegionCutoff
	}
	b := m.beta()
	lam := m.lambda()
	clm := 1 + lam*vds
	if vds >= vov { // saturation
		idsat := 0.5 * b * vov * vov
		id = idsat * clm
		gm = b * vov * clm
		gds = idsat * lam
		return id, gm, gds, RegionSaturation
	}
	// triode
	core := b * (vov*vds - 0.5*vds*vds)
	id = core * clm
	gm = b * vds * clm
	gds = b*(vov-vds)*clm + core*lam
	return id, gm, gds, RegionTriode
}

// terminals resolves the effective drain/source ordering so that the
// normalized vds is non-negative, mirroring SPICE's symmetric treatment.
func (m *Mosfet) terminals(x linalg.Vector) (dEff, sEff int, vgs, vds float64, swapped bool) {
	p := float64(m.Polarity)
	vd := p * volt(x, m.D)
	vg := p * volt(x, m.G)
	vs := p * volt(x, m.S)
	if vd >= vs {
		return m.D, m.S, vg - vs, vd - vs, false
	}
	return m.S, m.D, vg - vd, vs - vd, true
}

// StampDC implements Device.
func (m *Mosfet) StampDC(jac linalg.Stamper, res linalg.Vector, x linalg.Vector, _ *stampCtx) {
	dEff, sEff, vgs, vds, _ := m.terminals(x)
	id, gm, gds, _ := m.eval(vgs, vds)
	p := float64(m.Polarity)

	// Polarity factors cancel in the Jacobian: d(p·id)/dV = p·g·p = g.
	addJac(jac, dEff, m.G, gm)
	addJac(jac, dEff, dEff, gds)
	addJac(jac, dEff, sEff, -(gm + gds))
	addJac(jac, sEff, m.G, -gm)
	addJac(jac, sEff, dEff, -gds)
	addJac(jac, sEff, sEff, gm+gds)
	addRes(res, dEff, p*id)
	addRes(res, sEff, -p*id)

	// Weak drain-source leak keeps cut-off stacks non-singular.
	g := m.gleak
	addJac(jac, m.D, m.D, g)
	addJac(jac, m.S, m.S, g)
	addJac(jac, m.D, m.S, -g)
	addJac(jac, m.S, m.D, -g)
	il := g * (volt(x, m.D) - volt(x, m.S))
	addRes(res, m.D, il)
	addRes(res, m.S, -il)
}

// StampAC implements Device: transconductance/output conductance from the
// DC operating point plus the gate and junction capacitances.
func (m *Mosfet) StampAC(a linalg.CStamper, _ []complex128, omega float64, xdc linalg.Vector) {
	dEff, sEff, vgs, vds, _ := m.terminals(xdc)
	_, gm, gds, _ := m.eval(vgs, vds)

	cgm, cgds := complex(gm, 0), complex(gds+m.gleak, 0)
	addAC(a, dEff, m.G, cgm)
	addAC(a, dEff, dEff, cgds)
	addAC(a, dEff, sEff, -(cgm + cgds))
	addAC(a, sEff, m.G, -cgm)
	addAC(a, sEff, dEff, -cgds)
	addAC(a, sEff, sEff, cgm+cgds)

	// Capacitances (kept region-independent for smoothness).
	cgs := (2.0/3.0)*m.W*m.L*m.P.CoxA + m.P.CGSO*m.W
	cgd := m.P.CGDO * m.W
	cj := m.P.CJ * m.W * m.P.LDiff
	stampCap := func(p, n int, c float64) {
		y := complex(0, omega*c)
		addAC(a, p, p, y)
		addAC(a, n, n, y)
		addAC(a, p, n, -y)
		addAC(a, n, p, -y)
	}
	stampCap(m.G, m.S, cgs)
	stampCap(m.G, m.D, cgd)
	stampCap(m.D, m.B, cj)
	stampCap(m.S, m.B, cj)
}

// MosOp is the DC operating-point summary of one MOSFET, in the
// polarity-normalized frame (currents and voltages are positive for a
// conducting device of either polarity).
type MosOp struct {
	ID        float64 // drain current [A]
	VGS, VDS  float64 // terminal voltages [V]
	Vth       float64 // effective threshold [V]
	Vov       float64 // gate overdrive VGS − Vth [V]
	Gm, Gds   float64 // small-signal parameters [S]
	Region    int     // RegionCutoff, RegionTriode or RegionSaturation
	SatMargin float64 // VDS − Vov: positive means saturated [V]
	Swapped   bool    // true when source/drain were exchanged
}

// Op extracts the operating point from a converged DC solution.
func (m *Mosfet) Op(xdc linalg.Vector) MosOp {
	_, _, vgs, vds, swapped := m.terminals(xdc)
	id, gm, gds, region := m.eval(vgs, vds)
	vov := vgs - m.vth()
	return MosOp{
		ID: id, VGS: vgs, VDS: vds,
		Vth: m.vth(), Vov: vov,
		Gm: gm, Gds: gds, Region: region,
		SatMargin: vds - vov,
		Swapped:   swapped,
	}
}
