package spice

import (
	"errors"
	"fmt"
	"math"
	"time"

	"specwise/internal/linalg"
)

// TranOptions configures a transient analysis.
type TranOptions struct {
	Stop    float64       // simulation end time [s]
	Step    float64       // fixed time step [s]
	Initial linalg.Vector // starting state; nil = compute the DC point
	// MaxNewton bounds the Newton iterations per time point (default 60).
	MaxNewton int
	// Theta selects the integration method: 1 = backward Euler,
	// 0.5 = trapezoidal (default).
	Theta float64
}

func (o *TranOptions) defaults() error {
	if o.Stop <= 0 || o.Step <= 0 {
		return errors.New("spice: transient Stop and Step must be positive")
	}
	if o.MaxNewton == 0 {
		o.MaxNewton = 60
	}
	if o.Theta == 0 {
		o.Theta = 0.5
	}
	if o.Theta < 0.5 || o.Theta > 1 {
		return errors.New("spice: integration theta must be in [0.5, 1]")
	}
	return nil
}

// TranResult is a sampled transient waveform set.
type TranResult struct {
	Time []float64
	// X[k] is the full MNA solution at Time[k].
	X []linalg.Vector
}

// Voltage returns the waveform of one node.
func (r *TranResult) Voltage(node int) []float64 {
	out := make([]float64, len(r.X))
	for k, x := range r.X {
		out[k] = volt(x, node)
	}
	return out
}

// At returns the node voltage at the sample nearest to time t.
func (r *TranResult) At(node int, t float64) float64 {
	if len(r.Time) == 0 {
		return 0
	}
	best, bd := 0, math.Inf(1)
	for k, tt := range r.Time {
		if d := math.Abs(tt - t); d < bd {
			best, bd = k, d
		}
	}
	return volt(r.X[best], node)
}

// tranDevice is implemented by devices with time-dependent behaviour
// (capacitor companion models, time-varying sources).
type tranDevice interface {
	// StampTran adds the device's contribution at the new time point.
	// dt is the step, xPrev the converged previous-state solution, and
	// tNow the new absolute time.
	StampTran(jac linalg.Stamper, res linalg.Vector, x, xPrev linalg.Vector, dt, tNow, theta float64)
}

// StampTran implements tranDevice for capacitors using a theta-method
// companion model: i = C/(θ·dt)·(v − v_prev) − (1−θ)/θ·i_prev.
func (c *Capacitor) StampTran(jac linalg.Stamper, res linalg.Vector, x, xPrev linalg.Vector, dt, _ float64, theta float64) {
	geq := c.C / (theta * dt)
	vNow := volt(x, c.P) - volt(x, c.N)
	vPrev := volt(xPrev, c.P) - volt(xPrev, c.N)
	iPrev := c.iPrev
	i := geq*(vNow-vPrev) - (1-theta)/theta*iPrev

	addJac(jac, c.P, c.P, geq)
	addJac(jac, c.N, c.N, geq)
	addJac(jac, c.P, c.N, -geq)
	addJac(jac, c.N, c.P, -geq)
	addRes(res, c.P, i)
	addRes(res, c.N, -i)
}

// commitTran lets stateful devices record their converged branch state.
func (c *Capacitor) commitTran(x, xPrev linalg.Vector, dt, theta float64) {
	geq := c.C / (theta * dt)
	vNow := volt(x, c.P) - volt(x, c.N)
	vPrev := volt(xPrev, c.P) - volt(xPrev, c.N)
	c.iPrev = geq*(vNow-vPrev) - (1-theta)/theta*c.iPrev
}

// PulseSource is a time-dependent voltage source for transient stimuli:
// V(t) steps from V1 to V2 at Delay with linear Rise time, staying at V2
// afterwards. In DC and AC it behaves as a V1 source.
type PulseSource struct {
	name   string
	P, N   int
	V1, V2 float64
	Delay  float64
	Rise   float64
	branch int
}

// NewPulseSource returns a step/pulse stimulus source.
func NewPulseSource(name string, p, n int, v1, v2, delay, rise float64) *PulseSource {
	return &PulseSource{name: name, P: p, N: n, V1: v1, V2: v2, Delay: delay, Rise: rise}
}

// Name implements Device.
func (s *PulseSource) Name() string { return s.name }

func (s *PulseSource) setBranch(idx int) { s.branch = idx }

// Branch returns the MNA branch index.
func (s *PulseSource) Branch() int { return s.branch }

// ValueAt returns the source voltage at time t.
func (s *PulseSource) ValueAt(t float64) float64 {
	switch {
	case t <= s.Delay:
		return s.V1
	case s.Rise <= 0 || t >= s.Delay+s.Rise:
		return s.V2
	default:
		return s.V1 + (s.V2-s.V1)*(t-s.Delay)/s.Rise
	}
}

// StampDC implements Device (the t=0 value).
func (s *PulseSource) StampDC(jac linalg.Stamper, res linalg.Vector, x linalg.Vector, ctx *stampCtx) {
	stampVoltageBranch(jac, res, x, s.P, s.N, s.branch, ctx.srcScale*s.V1)
}

// StampAC implements Device: pulse sources are AC-quiet.
func (s *PulseSource) StampAC(a linalg.CStamper, b []complex128, _ float64, _ linalg.Vector) {
	addAC(a, s.P, s.branch, 1)
	addAC(a, s.N, s.branch, -1)
	addAC(a, s.branch, s.P, 1)
	addAC(a, s.branch, s.N, -1)
}

// StampTran implements tranDevice.
func (s *PulseSource) StampTran(jac linalg.Stamper, res linalg.Vector, x, _ linalg.Vector, _, tNow, _ float64) {
	stampVoltageBranch(jac, res, x, s.P, s.N, s.branch, s.ValueAt(tNow))
}

// stampVoltageBranch stamps a fixed-voltage branch equation.
func stampVoltageBranch(jac linalg.Stamper, res linalg.Vector, x linalg.Vector, p, n, branch int, v float64) {
	ib := x[branch]
	addJac(jac, p, branch, 1)
	addJac(jac, n, branch, -1)
	addRes(res, p, ib)
	addRes(res, n, -ib)
	addJac(jac, branch, p, 1)
	addJac(jac, branch, n, -1)
	res[branch] += volt(x, p) - volt(x, n) - v
}

// Tran runs a fixed-step transient analysis with the theta integration
// method (trapezoidal by default). Devices without transient behaviour
// contribute their DC stamps at every time point.
func (c *Circuit) Tran(opts TranOptions) (*TranResult, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	c.finalize()
	n := c.NumVars()
	x := linalg.NewVector(n)
	if opts.Initial != nil {
		if len(opts.Initial) != n {
			return nil, fmt.Errorf("spice: transient initial state length %d, want %d", len(opts.Initial), n)
		}
		copy(x, opts.Initial)
	} else {
		dc, err := c.DC(DCOptions{})
		if err != nil {
			return nil, fmt.Errorf("spice: transient initial DC failed: %w", err)
		}
		copy(x, dc.X)
	}

	// Timing starts after the initial operating point so that work is
	// accounted under DCNanos, not double-counted here.
	if st := c.SolverStats; st != nil {
		start := time.Now()
		defer func() { st.TranNanos.Add(time.Since(start).Nanoseconds()) }()
	}

	// Reset capacitor branch states against the initial solution.
	for _, d := range c.devices {
		if cap, ok := d.(*Capacitor); ok {
			cap.iPrev = 0
		}
	}

	steps := int(math.Ceil(opts.Stop / opts.Step))
	res := &TranResult{
		Time: make([]float64, 0, steps+1),
		X:    make([]linalg.Vector, 0, steps+1),
	}
	res.Time = append(res.Time, 0)
	res.X = append(res.X, x.Clone())

	// The transient Newton loop shares the DC scratch solver: capacitor
	// companion stamps may add matrix positions the DC assembly never
	// touched, which the sparse backend absorbs by recompiling its
	// structure once, then reuses across all remaining time points.
	w := c.dcScratch(n)
	defer func() { c.flushSolverStats(w.solver.Stats(), &w.prev) }()
	sol, rhs, dx := w.solver, w.res, w.dx
	ctx := &stampCtx{srcScale: 1, gmin: 1e-12}
	nodes := c.NumNodes()

	xPrev := x.Clone()
	for k := 1; k <= steps; k++ {
		tNow := float64(k) * opts.Step
		copy(x, xPrev) // predictor: previous solution

		converged := false
		for iter := 0; iter < opts.MaxNewton; iter++ {
			sol.Reset()
			rhs.Zero()
			for _, d := range c.devices {
				if td, ok := d.(tranDevice); ok {
					td.StampTran(sol, rhs, x, xPrev, opts.Step, tNow, opts.Theta)
				} else {
					d.StampDC(sol, rhs, x, ctx)
				}
			}
			for i := 0; i < nodes; i++ {
				sol.Addto(i, i, ctx.gmin)
				rhs[i] += ctx.gmin * x[i]
			}
			if err := sol.Factor(); err != nil {
				return nil, fmt.Errorf("spice: transient Jacobian singular at t=%g: %w", tNow, c.describeSolverErr(err))
			}
			if err := sol.SolveInto(dx, rhs); err != nil {
				return nil, fmt.Errorf("spice: transient solve at t=%g: %w", tNow, err)
			}
			maxdv := 0.0
			for i := 0; i < nodes; i++ {
				if a := math.Abs(dx[i]); a > maxdv {
					maxdv = a
				}
			}
			alpha := 1.0
			if maxdv > 0.5 {
				alpha = 0.5 / maxdv
			}
			for i := 0; i < n; i++ {
				x[i] -= alpha * dx[i]
			}
			if alpha == 1 && maxdv < 1e-9 {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("spice: transient Newton failed at t=%g", tNow)
		}
		// Commit stateful devices and advance.
		for _, d := range c.devices {
			if cap, ok := d.(*Capacitor); ok {
				cap.commitTran(x, xPrev, opts.Step, opts.Theta)
			}
		}
		copy(xPrev, x)
		res.Time = append(res.Time, tNow)
		res.X = append(res.X, x.Clone())
	}
	return res, nil
}

// SlewRate extracts the maximum dV/dt of a node waveform between the
// given fractions of its total swing (e.g. 0.1 and 0.9), in V/s.
func (r *TranResult) SlewRate(node int, fracLo, fracHi float64) (float64, error) {
	v := r.Voltage(node)
	if len(v) < 3 {
		return 0, errors.New("spice: waveform too short for slew extraction")
	}
	v0, v1 := v[0], v[len(v)-1]
	swing := v1 - v0
	if math.Abs(swing) < 1e-9 {
		return 0, errors.New("spice: no swing to measure")
	}
	lo := v0 + fracLo*swing
	hi := v0 + fracHi*swing
	crossT := func(level float64) float64 {
		for k := 1; k < len(v); k++ {
			a, b := v[k-1], v[k]
			if (a-level)*(b-level) <= 0 && a != b {
				t := (level - a) / (b - a)
				return r.Time[k-1] + t*(r.Time[k]-r.Time[k-1])
			}
		}
		return math.NaN()
	}
	tLo, tHi := crossT(lo), crossT(hi)
	if math.IsNaN(tLo) || math.IsNaN(tHi) || tHi == tLo {
		return 0, errors.New("spice: waveform does not cross slew thresholds")
	}
	return (hi - lo) / (tHi - tLo), nil
}
