package spice

import (
	"errors"
	"math"
	"strings"
	"testing"

	"specwise/internal/linalg"
)

// buildTestAmp builds a small MOSFET amplifier stage with a supply,
// bias divider, load and coupling capacitor — enough device variety to
// exercise every stamp path including the MOSFET source/drain swap.
func buildTestAmp(kind SolverKind) *Circuit {
	c := New()
	c.Opts.Solver = kind
	vdd := c.Node("vdd")
	in := c.Node("in")
	g := c.Node("g")
	out := c.Node("out")
	gnd := c.Node(Ground)
	c.Add(NewVSource("VDD", vdd, gnd, 3.3, 0))
	c.Add(NewVSource("VIN", in, gnd, 1.2, 1))
	c.Add(NewResistor("RB", in, g, 10e3))
	c.Add(NewResistor("RB2", g, gnd, 500e3))
	c.Add(NewResistor("RL", vdd, out, 20e3))
	c.Add(NewMosfet("M1", out, g, gnd, gnd, +1, 20e-6, 1e-6, DefaultNMOS()))
	c.Add(NewCapacitor("CL", out, gnd, 1e-12))
	return c
}

func TestDCAgreementDenseSparse(t *testing.T) {
	cd := buildTestAmp(SolverDense)
	cs := buildTestAmp(SolverSparse)
	dcD, err := cd.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dcS, err := cs.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dcD.X {
		scale := math.Max(math.Abs(dcD.X[i]), 1)
		if math.Abs(dcD.X[i]-dcS.X[i])/scale > 1e-9 {
			t.Errorf("DC %s: dense %.15g sparse %.15g", cd.VarName(i), dcD.X[i], dcS.X[i])
		}
	}
}

func TestACAgreementDenseSparse(t *testing.T) {
	cd := buildTestAmp(SolverDense)
	cs := buildTestAmp(SolverSparse)
	dcD, _ := cd.DC(DCOptions{})
	dcS, _ := cs.DC(DCOptions{})
	for _, f := range []float64{1, 1e4, 1e8} {
		omega := 2 * math.Pi * f
		acD, err := cd.AC(dcD, omega)
		if err != nil {
			t.Fatal(err)
		}
		acS, err := cs.AC(dcS, omega)
		if err != nil {
			t.Fatal(err)
		}
		for i := range acD.X {
			d := acD.X[i] - acS.X[i]
			mag := math.Hypot(real(d), imag(d))
			scale := math.Max(math.Hypot(real(acD.X[i]), imag(acD.X[i])), 1)
			if mag/scale > 1e-9 {
				t.Errorf("AC %s at %g Hz: dense %v sparse %v", cd.VarName(i), f, acD.X[i], acS.X[i])
			}
		}
	}
}

// TestTranAgreementDenseSparse runs a step-response transient under both
// backends. The capacitor companion stamps add matrix positions the DC
// assembly never produced, so this also exercises the sparse backend's
// structure-growth path.
func TestTranAgreementDenseSparse(t *testing.T) {
	build := func(kind SolverKind) (*Circuit, int) {
		c := New()
		c.Opts.Solver = kind
		in := c.Node("in")
		out := c.Node("out")
		gnd := c.Node(Ground)
		c.Add(NewPulseSource("VP", in, gnd, 0, 1, 1e-9, 1e-9))
		c.Add(NewResistor("R1", in, out, 1e3))
		c.Add(NewCapacitor("C1", out, gnd, 1e-12))
		return c, out
	}
	cd, outD := build(SolverDense)
	cs, outS := build(SolverSparse)
	opts := TranOptions{Stop: 10e-9, Step: 0.1e-9}
	trD, err := cd.Tran(opts)
	if err != nil {
		t.Fatal(err)
	}
	trS, err := cs.Tran(opts)
	if err != nil {
		t.Fatal(err)
	}
	vD, vS := trD.Voltage(outD), trS.Voltage(outS)
	for k := range vD {
		if math.Abs(vD[k]-vS[k]) > 1e-9 {
			t.Errorf("tran sample %d: dense %.12g sparse %.12g", k, vD[k], vS[k])
		}
	}
	// The RC charge must actually have happened.
	if vS[len(vS)-1] < 0.9 {
		t.Fatalf("output never charged: %v", vS[len(vS)-1])
	}
}

// TestSparseDeterminism runs the same DC solve twice on fresh circuits
// and once warm on a reused circuit; all must produce bit-identical
// solutions (refactorization replays the identical arithmetic).
func TestSparseDeterminism(t *testing.T) {
	solve := func() linalg.Vector {
		c := buildTestAmp(SolverSparse)
		dc, err := c.DC(DCOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return dc.X
	}
	x1, x2 := solve(), solve()
	for i := range x1 {
		if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
			t.Fatalf("fresh-circuit solves differ at %d: %x vs %x", i, x1[i], x2[i])
		}
	}
	c := buildTestAmp(SolverSparse)
	d1, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.DC(DCOptions{InitialX: d1.X})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.X {
		if math.Abs(d1.X[i]-d2.X[i]) > 1e-9 {
			t.Fatalf("warm resolve drifted at %s: %g vs %g", c.VarName(i), d1.X[i], d2.X[i])
		}
	}
}

// TestACSweepMatchesDirect pins the affine fast path in ACSweep (stamp
// at ω=0 and ω=1, interpolate values per point) against the reference
// per-point assembly through Circuit.AC, for both backends. A device
// whose AC stamp were not affine in ω would break this agreement.
func TestACSweepMatchesDirect(t *testing.T) {
	for _, kind := range []SolverKind{SolverDense, SolverSparse} {
		c := buildTestAmp(kind)
		dc, err := c.DC(DCOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out := c.Node("out")
		bode, err := c.ACSweep(dc, out, 10, 1e9, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range bode.Freq {
			r, err := c.AC(dc, 2*math.Pi*f)
			if err != nil {
				t.Fatal(err)
			}
			want := r.Voltage(out)
			d := bode.H[i] - want
			mag := math.Hypot(real(d), imag(d))
			scale := math.Max(math.Hypot(real(want), imag(want)), 1e-12)
			if mag/scale > 1e-9 {
				t.Errorf("%v: sweep H(%g Hz) = %v, direct %v", kind, f, bode.H[i], want)
			}
		}
	}
}

// TestSingularDiagnosticsNameVariable forces a singular MNA system (two
// ideal voltage sources in parallel) and checks the failure names the
// offending variable.
func TestSingularDiagnosticsNameVariable(t *testing.T) {
	for _, kind := range []SolverKind{SolverDense, SolverSparse} {
		c := New()
		c.Opts.Solver = kind
		a := c.Node("a")
		gnd := c.Node(Ground)
		c.Add(NewVSource("V1", a, gnd, 1, 0))
		c.Add(NewVSource("V2", a, gnd, 2, 0))
		c.Add(NewResistor("R1", a, gnd, 1e3))
		_, err := c.DC(DCOptions{})
		if err == nil {
			t.Fatalf("%v: parallel voltage sources should not converge", kind)
		}
		if !errors.Is(err, ErrNoConvergence) {
			t.Fatalf("%v: err = %v, want ErrNoConvergence", kind, err)
		}
		if !strings.Contains(err.Error(), "MNA variable") || !strings.Contains(err.Error(), "I(V") {
			t.Fatalf("%v: error does not name the singular branch: %v", kind, err)
		}
	}
}

// TestSolverKindSelection checks backend resolution: per-circuit Options
// beat the package default.
func TestSolverKindSelection(t *testing.T) {
	stats := &SolverStats{}
	c := buildTestAmp(SolverDense)
	c.SolverStats = stats
	if _, err := c.DC(DCOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := stats.Kind(); got != "dense" {
		t.Fatalf("explicit dense circuit reported kind %q", got)
	}
	stats2 := &SolverStats{}
	c2 := buildTestAmp(SolverAuto)
	c2.SolverStats = stats2
	if _, err := c2.DC(DCOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := stats2.Kind(); got != DefaultSolver.String() {
		t.Fatalf("auto circuit reported kind %q, want %q", got, DefaultSolver)
	}
	if stats2.Factorizations.Load() == 0 || stats2.Solves.Load() == 0 {
		t.Fatalf("solver stats did not flush: %d/%d",
			stats2.Factorizations.Load(), stats2.Solves.Load())
	}
	if nnz, fill := stats2.MatrixNNZ.Load(), stats2.FactorNNZ.Load(); nnz == 0 || fill < nnz {
		t.Fatalf("NNZ gauges implausible: nnz=%d fill=%d", nnz, fill)
	}
}
