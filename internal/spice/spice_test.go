package spice

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestResistorDivider(t *testing.T) {
	c := New()
	in := c.Node("in")
	mid := c.Node("mid")
	c.Add(NewVSource("V1", in, groundIndex, 10, 0))
	c.Add(NewResistor("R1", in, mid, 1e3))
	c.Add(NewResistor("R2", mid, groundIndex, 3e3))
	dc, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dc.Voltage(mid); math.Abs(got-7.5) > 1e-6 {
		t.Errorf("divider voltage = %v want 7.5", got)
	}
	if got := dc.Voltage(in); math.Abs(got-10) > 1e-9 {
		t.Errorf("source node = %v want 10", got)
	}
}

func TestVSourceBranchCurrent(t *testing.T) {
	c := New()
	in := c.Node("in")
	v := NewVSource("V1", in, groundIndex, 5, 0)
	c.Add(v)
	c.Add(NewResistor("R1", in, groundIndex, 1e3))
	dc, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 5 mA flows out of the source's positive terminal into R1, which in
	// MNA convention makes the branch current −5 mA.
	if got := dc.BranchCurrent(v.Branch()); math.Abs(got+5e-3) > 1e-8 {
		t.Errorf("branch current = %v want -5e-3", got)
	}
}

func TestCurrentSourceIntoResistor(t *testing.T) {
	c := New()
	n := c.Node("n")
	// 1 mA extracted from ground, injected into n.
	c.Add(NewISource("I1", groundIndex, n, 1e-3))
	c.Add(NewResistor("R1", n, groundIndex, 2e3))
	dc, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dc.Voltage(n); math.Abs(got-2.0) > 1e-6 {
		t.Errorf("node voltage = %v want 2", got)
	}
}

func TestVCVSAmplifier(t *testing.T) {
	c := New()
	in := c.Node("in")
	out := c.Node("out")
	c.Add(NewVSource("V1", in, groundIndex, 0.5, 0))
	c.Add(NewVCVS("E1", out, groundIndex, in, groundIndex, 10))
	c.Add(NewResistor("RL", out, groundIndex, 1e3))
	dc, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dc.Voltage(out); math.Abs(got-5) > 1e-6 {
		t.Errorf("VCVS out = %v want 5", got)
	}
}

func TestRCLowPassAC(t *testing.T) {
	// R = 1k, C = 1µF: pole at 1/(2πRC) ≈ 159.15 Hz.
	c := New()
	in := c.Node("in")
	out := c.Node("out")
	c.Add(NewVSource("V1", in, groundIndex, 0, 1))
	c.Add(NewResistor("R1", in, out, 1e3))
	c.Add(NewCapacitor("C1", out, groundIndex, 1e-6))
	dc, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fp := 1 / (2 * math.Pi * 1e3 * 1e-6)
	r, err := c.AC(dc, 2*math.Pi*fp)
	if err != nil {
		t.Fatal(err)
	}
	mag := cmplx.Abs(r.Voltage(out))
	if math.Abs(mag-1/math.Sqrt2) > 1e-6 {
		t.Errorf("|H(fp)| = %v want %v", mag, 1/math.Sqrt2)
	}
	phase := cmplx.Phase(r.Voltage(out)) * 180 / math.Pi
	if math.Abs(phase+45) > 1e-3 {
		t.Errorf("∠H(fp) = %v want -45°", phase)
	}
}

func TestBodeSweepPole(t *testing.T) {
	c := New()
	in := c.Node("in")
	out := c.Node("out")
	c.Add(NewVSource("V1", in, groundIndex, 0, 10)) // gain 10 at DC via source
	c.Add(NewResistor("R1", in, out, 1e3))
	c.Add(NewCapacitor("C1", out, groundIndex, 1e-6))
	dc, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.ACSweep(dc, out, 1, 1e6, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.DCGainDB(); math.Abs(got-20) > 0.01 {
		t.Errorf("DC gain = %v dB want 20", got)
	}
	// Unity crossing of a one-pole response with DC gain A and pole fp is
	// at fp·sqrt(A²−1) ≈ 1583 Hz.
	fu, _, ok := b.UnityCrossing()
	if !ok {
		t.Fatal("no unity crossing found")
	}
	want := 159.15 * math.Sqrt(100-1)
	if math.Abs(fu-want)/want > 0.02 {
		t.Errorf("unity crossing = %v want ≈%v", fu, want)
	}
	pm, ok := b.PhaseMarginDeg()
	if !ok {
		t.Fatal("no phase margin")
	}
	// One-pole system with DC gain 10: phase at unity is −atan(√99) ≈
	// −84.3°, so the margin is ≈ 95.7°.
	if pm < 93 || pm > 99 {
		t.Errorf("phase margin = %v want ≈95.7°", pm)
	}
}

func TestBodeNoUnityCrossing(t *testing.T) {
	b := &Bode{Freq: []float64{1, 10}, H: []complex128{0.5, 0.4}}
	if _, _, ok := b.UnityCrossing(); ok {
		t.Error("sub-unity response must not report a crossing")
	}
	if _, ok := b.PhaseMarginDeg(); ok {
		t.Error("sub-unity response must not report a margin")
	}
}

func mosTestCircuit(vgs, vds float64, pol int) (*Circuit, *Mosfet) {
	c := New()
	d := c.Node("d")
	g := c.Node("g")
	sign := float64(pol)
	c.Add(NewVSource("VG", g, groundIndex, sign*vgs, 0))
	c.Add(NewVSource("VD", d, groundIndex, sign*vds, 0))
	var p MosParams
	if pol > 0 {
		p = DefaultNMOS()
	} else {
		p = DefaultPMOS()
	}
	m := NewMosfet("M1", d, g, groundIndex, groundIndex, pol, 10e-6, 1e-6, p)
	c.Add(m)
	return c, m
}

func TestMosfetSaturationCurrent(t *testing.T) {
	// NMOS, Vgs = 1.5, Vds = 2 (saturation since Vov ≈ 0.79).
	c, m := mosTestCircuit(1.5, 2.0, +1)
	dc, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	op := m.Op(dc.X)
	vov := 1.5 - m.P.VT0
	lam := m.P.LambdaC * 1e-6 / m.L
	want := 0.5 * m.P.KP * (m.W / m.L) * vov * vov * (1 + lam*2.0)
	if math.Abs(op.ID-want)/want > 1e-6 {
		t.Errorf("Id = %v want %v", op.ID, want)
	}
	if op.Region != RegionSaturation {
		t.Errorf("region = %d want saturation", op.Region)
	}
	if op.SatMargin <= 0 {
		t.Errorf("SatMargin = %v want > 0", op.SatMargin)
	}
}

func TestMosfetTriodeAndCutoff(t *testing.T) {
	c, m := mosTestCircuit(2.0, 0.1, +1)
	dc, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if op := m.Op(dc.X); op.Region != RegionTriode {
		t.Errorf("region = %d want triode", op.Region)
	}

	c2, m2 := mosTestCircuit(0.3, 1.0, +1)
	dc2, err := c2.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	op2 := m2.Op(dc2.X)
	if op2.Region != RegionCutoff || op2.ID != 0 {
		t.Errorf("cutoff op = %+v", op2)
	}
}

func TestMosfetPMOSSymmetry(t *testing.T) {
	// A PMOS with the same |Vgs|, |Vds| and mirrored params must carry a
	// current computed by the same square law.
	cN, mN := mosTestCircuit(1.5, 2.0, +1)
	cP, mP := mosTestCircuit(1.5, 2.0, -1)
	mP.P = mN.P // identical model cards for the symmetry check
	dcN, err := cN.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dcP, err := cP.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opN, opP := mN.Op(dcN.X), mP.Op(dcP.X)
	if math.Abs(opN.ID-opP.ID) > 1e-12 {
		t.Errorf("NMOS Id %v != PMOS Id %v", opN.ID, opP.ID)
	}
}

func TestMosfetModelContinuity(t *testing.T) {
	// Id and gds must be continuous across the triode/saturation boundary.
	m := NewMosfet("M", 0, 1, 2, 2, +1, 10e-6, 1e-6, DefaultNMOS())
	vgs := 1.6
	vov := vgs - m.P.VT0
	eps := 1e-9
	idLo, _, gdsLo, _ := m.eval(vgs, vov-eps)
	idHi, _, gdsHi, _ := m.eval(vgs, vov+eps)
	if math.Abs(idLo-idHi) > 1e-12 {
		t.Errorf("Id jump at boundary: %v vs %v", idLo, idHi)
	}
	if math.Abs(gdsLo-gdsHi) > 1e-9 {
		t.Errorf("gds jump at boundary: %v vs %v", gdsLo, gdsHi)
	}
	// Cutoff boundary: Id and gm go to zero continuously.
	idC, gmC, _, _ := m.eval(m.P.VT0+1e-9, 1)
	if idC > 1e-12 || gmC > 1e-3*m.beta() {
		t.Errorf("cutoff boundary: id=%v gm=%v", idC, gmC)
	}
}

func TestMosfetDVthShiftsCurrent(t *testing.T) {
	c, m := mosTestCircuit(1.5, 2.0, +1)
	dc, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idNom := m.Op(dc.X).ID

	c2, m2 := mosTestCircuit(1.5, 2.0, +1)
	m2.DVth = 0.05 // higher threshold → less current
	dc2, err := c2.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if id := m2.Op(dc2.X).ID; id >= idNom {
		t.Errorf("DVth>0 must reduce Id: %v vs %v", id, idNom)
	}

	c3, m3 := mosTestCircuit(1.5, 2.0, +1)
	m3.BetaScale = 1.1
	dc3, err := c3.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if id := m3.Op(dc3.X).ID; math.Abs(id-1.1*idNom)/idNom > 1e-6 {
		t.Errorf("BetaScale must scale Id: %v vs %v", id, 1.1*idNom)
	}
}

func TestNmosCommonSourceGain(t *testing.T) {
	// Common-source stage with ideal current-source load: small-signal
	// gain ≈ −gm/gds (the load is a large resistor to fix the op point).
	c := New()
	vdd := c.Node("vdd")
	g := c.Node("g")
	d := c.Node("d")
	c.Add(NewVSource("VDD", vdd, groundIndex, 3.3, 0))
	c.Add(NewVSource("VG", g, groundIndex, 1.0, 1))
	m := NewMosfet("M1", d, g, groundIndex, groundIndex, +1, 20e-6, 2e-6, DefaultNMOS())
	c.Add(m)
	c.Add(NewResistor("RL", vdd, d, 47e3))
	dc, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	op := m.Op(dc.X)
	if op.Region != RegionSaturation {
		t.Fatalf("test stage not in saturation: %+v", op)
	}
	r, err := c.AC(dc, 2*math.Pi*10) // low frequency
	if err != nil {
		t.Fatal(err)
	}
	gainWant := -op.Gm / (op.Gds + 1/47e3)
	gain := real(r.Voltage(d))
	if math.Abs(gain-gainWant)/math.Abs(gainWant) > 0.01 {
		t.Errorf("CS gain = %v want %v", gain, gainWant)
	}
}

func TestDiodeConnectedMirror(t *testing.T) {
	// 2:1 current mirror: output current twice the reference.
	c := New()
	vdd := c.Node("vdd")
	ref := c.Node("ref")
	out := c.Node("out")
	c.Add(NewVSource("VDD", vdd, groundIndex, 3.3, 0))
	c.Add(NewISource("IREF", vdd, ref, 20e-6)) // inject 20 µA into ref
	m1 := NewMosfet("M1", ref, ref, groundIndex, groundIndex, +1, 10e-6, 2e-6, DefaultNMOS())
	m2 := NewMosfet("M2", out, ref, groundIndex, groundIndex, +1, 20e-6, 2e-6, DefaultNMOS())
	c.Add(m1)
	c.Add(m2)
	c.Add(NewResistor("RL", vdd, out, 20e3))
	dc, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	i1 := m1.Op(dc.X).ID
	i2 := m2.Op(dc.X).ID
	if math.Abs(i1-20e-6)/20e-6 > 0.01 {
		t.Errorf("reference current = %v", i1)
	}
	// Allow a few percent for channel-length modulation.
	if math.Abs(i2-2*i1)/(2*i1) > 0.1 {
		t.Errorf("mirror ratio: i2 = %v, want ≈ %v", i2, 2*i1)
	}
}

func TestVSourceSweepWarmStart(t *testing.T) {
	c := New()
	in := c.Node("in")
	c.Add(NewVSource("V1", in, groundIndex, 2, 0))
	c.Add(NewResistor("R1", in, groundIndex, 1e3))
	dc1, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dc2, err := c.DC(DCOptions{InitialX: dc1.X})
	if err != nil {
		t.Fatal(err)
	}
	if dc2.Iterations > dc1.Iterations {
		t.Errorf("warm start took %d iterations vs %d cold", dc2.Iterations, dc1.Iterations)
	}
}

func TestNodeInterning(t *testing.T) {
	c := New()
	a := c.Node("a")
	if c.Node("a") != a {
		t.Error("re-interning changed index")
	}
	if c.Node("0") != groundIndex || c.Node("gnd") != groundIndex {
		t.Error("ground aliases broken")
	}
	if c.NodeName(a) != "a" || c.NodeName(groundIndex) != "0" {
		t.Error("NodeName mismatch")
	}
}

func TestFindDevice(t *testing.T) {
	c := New()
	n := c.Node("n")
	r := NewResistor("R1", n, groundIndex, 1)
	c.Add(r)
	if c.FindDevice("R1") != Device(r) {
		t.Error("FindDevice failed")
	}
	if c.FindDevice("nope") != nil {
		t.Error("FindDevice ghost hit")
	}
}

func TestDCRejectsBadWarmStart(t *testing.T) {
	c := New()
	n := c.Node("n")
	c.Add(NewResistor("R1", n, groundIndex, 1))
	if _, err := c.DC(DCOptions{InitialX: make([]float64, 99)}); err == nil {
		t.Error("expected error for wrong warm-start length")
	}
}

func TestVCCSTransconductor(t *testing.T) {
	// gm = 2 mS driving 1 kΩ from a 0.5 V control: the cell sinks
	// 1 mA out of the load node, so v(out) = −gm·R·v(in) = −1 V.
	c := New()
	in := c.Node("in")
	out := c.Node("out")
	c.Add(NewVSource("V1", in, groundIndex, 0.5, 1))
	c.Add(NewVCCS("G1", out, groundIndex, in, groundIndex, 2e-3))
	c.Add(NewResistor("RL", out, groundIndex, 1e3))
	dc, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dc.Voltage(out); math.Abs(got+1) > 1e-6 {
		t.Errorf("VCCS out = %v want -1", got)
	}
	// Small-signal gain is −gm·R = −2.
	ac, err := c.AC(dc, 2*math.Pi*100)
	if err != nil {
		t.Fatal(err)
	}
	if gain := real(ac.Voltage(out)); math.Abs(gain+2) > 1e-6 {
		t.Errorf("VCCS AC gain = %v want -2", gain)
	}
}

func TestVCVSClosedLoopFollower(t *testing.T) {
	// A VCVS in normal AC mode closing a unity-feedback loop around a
	// ×1000 gain block: the closed-loop AC gain approaches 1.
	c := New()
	in := c.Node("in")
	fbn := c.Node("fb")
	out := c.Node("out")
	c.Add(NewVSource("VIN", in, groundIndex, 0, 1))
	// Error amp: out = 1000·(in − fb).
	amp := NewVCVS("EAMP", out, groundIndex, in, fbn, 1000)
	c.Add(amp)
	// Feedback: fb = out.
	c.Add(NewVCVS("EFB", fbn, groundIndex, out, groundIndex, 1))
	c.Add(NewResistor("RL", out, groundIndex, 1e4))
	dc, err := c.DC(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ac, err := c.AC(dc, 2*math.Pi*1e3)
	if err != nil {
		t.Fatal(err)
	}
	if gain := real(ac.Voltage(out)); math.Abs(gain-1) > 2e-3 {
		t.Errorf("follower gain = %v want ≈1", gain)
	}
}

func TestDCSweepInverterTransfer(t *testing.T) {
	// NMOS inverter transfer curve: output falls monotonically as the
	// gate sweeps through threshold.
	c := New()
	vdd := c.Node("vdd")
	g := c.Node("g")
	d := c.Node("d")
	c.Add(NewVSource("VDD", vdd, groundIndex, 3.3, 0))
	vg := NewVSource("VG", g, groundIndex, 0, 0)
	c.Add(vg)
	c.Add(NewResistor("RL", vdd, d, 47e3))
	c.Add(NewMosfet("M1", d, g, groundIndex, groundIndex, +1, 20e-6, 2e-6, DefaultNMOS()))

	res, err := c.DCSweep(vg, 0, 3.3, 34, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Voltage(d)
	if out[0] < 3.2 {
		t.Errorf("off-state output %v want ≈3.3", out[0])
	}
	if out[len(out)-1] > 0.5 {
		t.Errorf("on-state output %v want low", out[len(out)-1])
	}
	for k := 1; k < len(out); k++ {
		if out[k] > out[k-1]+1e-9 {
			t.Fatalf("transfer curve not monotone at point %d", k)
		}
	}
	// The source value must be restored.
	if vg.DC != 0 {
		t.Errorf("sweep did not restore the source DC value: %v", vg.DC)
	}
}

func TestDCSweepValidation(t *testing.T) {
	c := New()
	n := c.Node("n")
	v := NewVSource("V", n, groundIndex, 1, 0)
	c.Add(v)
	c.Add(NewResistor("R", n, groundIndex, 1e3))
	if _, err := c.DCSweep(v, 0, 1, 1, DCOptions{}); err == nil {
		t.Error("n=1 sweep accepted")
	}
}
