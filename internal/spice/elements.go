package spice

import "specwise/internal/linalg"

// Resistor is a linear two-terminal resistance between nodes P and N.
type Resistor struct {
	name string
	P, N int
	R    float64 // ohms, must be > 0
}

// NewResistor returns a resistor device. Node arguments are MNA indices
// obtained from Circuit.Node.
func NewResistor(name string, p, n int, ohms float64) *Resistor {
	return &Resistor{name: name, P: p, N: n, R: ohms}
}

// Name implements Device.
func (r *Resistor) Name() string { return r.name }

// StampDC implements Device.
func (r *Resistor) StampDC(jac linalg.Stamper, res linalg.Vector, x linalg.Vector, _ *stampCtx) {
	g := 1 / r.R
	addJac(jac, r.P, r.P, g)
	addJac(jac, r.N, r.N, g)
	addJac(jac, r.P, r.N, -g)
	addJac(jac, r.N, r.P, -g)
	i := g * (volt(x, r.P) - volt(x, r.N))
	addRes(res, r.P, i)
	addRes(res, r.N, -i)
}

// StampAC implements Device.
func (r *Resistor) StampAC(a linalg.CStamper, _ []complex128, _ float64, _ linalg.Vector) {
	g := complex(1/r.R, 0)
	addAC(a, r.P, r.P, g)
	addAC(a, r.N, r.N, g)
	addAC(a, r.P, r.N, -g)
	addAC(a, r.N, r.P, -g)
}

// Capacitor is a linear capacitance: open in DC, admittance jωC in AC,
// and a theta-method companion model in transient analysis.
type Capacitor struct {
	name string
	P, N int
	C    float64 // farads

	// iPrev is the branch current at the previous transient time point
	// (trapezoidal companion state); reset at the start of each Tran run.
	iPrev float64
}

// NewCapacitor returns a capacitor device.
func NewCapacitor(name string, p, n int, farads float64) *Capacitor {
	return &Capacitor{name: name, P: p, N: n, C: farads}
}

// Name implements Device.
func (c *Capacitor) Name() string { return c.name }

// StampDC implements Device. A capacitor is an open circuit at DC.
func (c *Capacitor) StampDC(_ linalg.Stamper, _ linalg.Vector, _ linalg.Vector, _ *stampCtx) {}

// StampAC implements Device.
func (c *Capacitor) StampAC(a linalg.CStamper, _ []complex128, omega float64, _ linalg.Vector) {
	y := complex(0, omega*c.C)
	addAC(a, c.P, c.P, y)
	addAC(a, c.N, c.N, y)
	addAC(a, c.P, c.N, -y)
	addAC(a, c.N, c.P, -y)
}

// VSource is an independent voltage source with a DC value and an AC
// magnitude for small-signal analysis. It owns one MNA branch current.
type VSource struct {
	name   string
	P, N   int
	DC     float64
	AC     complex128
	branch int
}

// NewVSource returns a voltage source device; acMag is the complex AC
// excitation used in small-signal runs (often 0 or 1).
func NewVSource(name string, p, n int, dc float64, acMag complex128) *VSource {
	return &VSource{name: name, P: p, N: n, DC: dc, AC: acMag}
}

// Name implements Device.
func (v *VSource) Name() string { return v.name }

func (v *VSource) setBranch(idx int) { v.branch = idx }

// Branch returns the MNA index of the source's branch current.
func (v *VSource) Branch() int { return v.branch }

// StampDC implements Device.
func (v *VSource) StampDC(jac linalg.Stamper, res linalg.Vector, x linalg.Vector, ctx *stampCtx) {
	ib := x[v.branch]
	// KCL: branch current leaves P, enters N.
	addJac(jac, v.P, v.branch, 1)
	addJac(jac, v.N, v.branch, -1)
	addRes(res, v.P, ib)
	addRes(res, v.N, -ib)
	// Branch equation: v(P) - v(N) - V = 0.
	addJac(jac, v.branch, v.P, 1)
	addJac(jac, v.branch, v.N, -1)
	res[v.branch] += volt(x, v.P) - volt(x, v.N) - ctx.srcScale*v.DC
}

// StampAC implements Device.
func (v *VSource) StampAC(a linalg.CStamper, b []complex128, _ float64, _ linalg.Vector) {
	addAC(a, v.P, v.branch, 1)
	addAC(a, v.N, v.branch, -1)
	addAC(a, v.branch, v.P, 1)
	addAC(a, v.branch, v.N, -1)
	b[v.branch] += v.AC
}

// ISource is an independent current source; current I flows from node P
// through the source to node N (it extracts I from P and injects I into N).
type ISource struct {
	name string
	P, N int
	I    float64
}

// NewISource returns a current source device.
func NewISource(name string, p, n int, amps float64) *ISource {
	return &ISource{name: name, P: p, N: n, I: amps}
}

// Name implements Device.
func (s *ISource) Name() string { return s.name }

// StampDC implements Device.
func (s *ISource) StampDC(_ linalg.Stamper, res linalg.Vector, _ linalg.Vector, ctx *stampCtx) {
	i := ctx.srcScale * s.I
	addRes(res, s.P, i)
	addRes(res, s.N, -i)
}

// StampAC implements Device. Independent current sources are AC-quiet here.
func (s *ISource) StampAC(_ linalg.CStamper, _ []complex128, _ float64, _ linalg.Vector) {}

// VCVSACMode selects the AC behaviour of a VCVS; the feedback element of
// the opamp testbench uses it to close the loop at DC while breaking it
// (or re-driving the node) for the small-signal runs.
type VCVSACMode int

const (
	// VCVSACNormal keeps the controlled-source equation in AC.
	VCVSACNormal VCVSACMode = iota
	// VCVSACFixed replaces the AC branch equation with
	// v(P) − v(N) = ACValue, turning the source into an independent AC
	// source: this is the loop-break used to take open-loop responses
	// from a DC-closed feedback testbench.
	VCVSACFixed
)

// VCVS is a voltage-controlled voltage source:
// v(P) − v(N) = Gain · (v(CP) − v(CN)).
type VCVS struct {
	name         string
	P, N, CP, CN int
	Gain         float64
	ACMode       VCVSACMode
	ACValue      complex128
	branch       int
}

// NewVCVS returns a controlled source with the given control terminals.
func NewVCVS(name string, p, n, cp, cn int, gain float64) *VCVS {
	return &VCVS{name: name, P: p, N: n, CP: cp, CN: cn, Gain: gain}
}

// Name implements Device.
func (e *VCVS) Name() string { return e.name }

func (e *VCVS) setBranch(idx int) { e.branch = idx }

// Branch returns the MNA index of the source's branch current.
func (e *VCVS) Branch() int { return e.branch }

// StampDC implements Device.
func (e *VCVS) StampDC(jac linalg.Stamper, res linalg.Vector, x linalg.Vector, _ *stampCtx) {
	ib := x[e.branch]
	addJac(jac, e.P, e.branch, 1)
	addJac(jac, e.N, e.branch, -1)
	addRes(res, e.P, ib)
	addRes(res, e.N, -ib)
	// Branch equation: v(P) − v(N) − Gain·(v(CP) − v(CN)) = 0.
	addJac(jac, e.branch, e.P, 1)
	addJac(jac, e.branch, e.N, -1)
	addJac(jac, e.branch, e.CP, -e.Gain)
	addJac(jac, e.branch, e.CN, e.Gain)
	res[e.branch] += volt(x, e.P) - volt(x, e.N) - e.Gain*(volt(x, e.CP)-volt(x, e.CN))
}

// StampAC implements Device.
func (e *VCVS) StampAC(a linalg.CStamper, b []complex128, _ float64, _ linalg.Vector) {
	addAC(a, e.P, e.branch, 1)
	addAC(a, e.N, e.branch, -1)
	addAC(a, e.branch, e.P, 1)
	addAC(a, e.branch, e.N, -1)
	switch e.ACMode {
	case VCVSACNormal:
		addAC(a, e.branch, e.CP, complex(-e.Gain, 0))
		addAC(a, e.branch, e.CN, complex(e.Gain, 0))
	case VCVSACFixed:
		b[e.branch] += e.ACValue
	}
}

// VCCS is a voltage-controlled current source (transconductor):
// a current Gm·(v(CP) − v(CN)) flows from node P through the source to
// node N.
type VCCS struct {
	name         string
	P, N, CP, CN int
	Gm           float64
}

// NewVCCS returns a transconductor device.
func NewVCCS(name string, p, n, cp, cn int, gm float64) *VCCS {
	return &VCCS{name: name, P: p, N: n, CP: cp, CN: cn, Gm: gm}
}

// Name implements Device.
func (g *VCCS) Name() string { return g.name }

// StampDC implements Device.
func (g *VCCS) StampDC(jac linalg.Stamper, res linalg.Vector, x linalg.Vector, _ *stampCtx) {
	addJac(jac, g.P, g.CP, g.Gm)
	addJac(jac, g.P, g.CN, -g.Gm)
	addJac(jac, g.N, g.CP, -g.Gm)
	addJac(jac, g.N, g.CN, g.Gm)
	i := g.Gm * (volt(x, g.CP) - volt(x, g.CN))
	addRes(res, g.P, i)
	addRes(res, g.N, -i)
}

// StampAC implements Device.
func (g *VCCS) StampAC(a linalg.CStamper, _ []complex128, _ float64, _ linalg.Vector) {
	gm := complex(g.Gm, 0)
	addAC(a, g.P, g.CP, gm)
	addAC(a, g.P, g.CN, -gm)
	addAC(a, g.N, g.CP, -gm)
	addAC(a, g.N, g.CN, gm)
}
