package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specwise/internal/jobs"
)

func openTemp(t *testing.T) (*File, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "jobs.wal")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func rec(kind jobs.RecordKind, job string) *jobs.Record {
	return &jobs.Record{Kind: kind, Job: job}
}

// replayAll collects every surviving record.
func replayAll(t *testing.T, s *File) []*jobs.Record {
	t.Helper()
	var out []*jobs.Record
	if err := s.Replay(func(r *jobs.Record) error {
		cp := *r
		out = append(out, &cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	s, path := openTemp(t)
	want := []*jobs.Record{
		{Kind: jobs.RecSubmit, Job: "job-000001", Seq: 1, Hash: "h1",
			Req: &jobs.Request{Kind: jobs.KindOptimize, Circuit: "ota"}},
		{Kind: jobs.RecStart, Job: "job-000001", Attempts: 1},
		{Kind: jobs.RecDone, Job: "job-000001",
			Result: &jobs.Result{Kind: jobs.KindOptimize}},
	}
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got := replayAll(t, s)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Job != want[i].Job {
			t.Errorf("record %d = %+v, want kind %d job %q", i, got[i], want[i].Kind, want[i].Job)
		}
	}
	if got[0].Req == nil || got[0].Req.Circuit != "ota" {
		t.Errorf("submit record lost its request: %+v", got[0].Req)
	}

	// Reopen: the same records must survive.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := replayAll(t, s2); len(got) != len(want) {
		t.Fatalf("after reopen: %d records, want %d", len(got), len(want))
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 3; i++ {
		if err := s.Append(rec(jobs.RecStart, "job-000001")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate a crash mid-append: half a frame of garbage at the end.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0x02, 'p', 'a', 'r'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	if got := replayAll(t, s2); len(got) != 3 {
		t.Fatalf("records after torn-tail open = %d, want 3", len(got))
	}
	// The tail is gone from disk too, and appends continue cleanly.
	if err := s2.Append(rec(jobs.RecCancel, "job-000001")); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, s2); len(got) != 4 {
		t.Fatalf("records after post-truncate append = %d, want 4", len(got))
	}
}

func TestCorruptMiddleDropsTail(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 4; i++ {
		if err := s.Append(rec(jobs.RecStart, "job-000001")); err != nil {
			t.Fatal(err)
		}
	}
	size := s.Size()
	s.Close()

	// Flip one payload byte of the third record: it and everything after
	// must be discarded (the WAL contract: the valid prefix survives).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := (int(size) - len(fileMagic)) / 4
	data[len(fileMagic)+2*frame+6] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := replayAll(t, s2); len(got) != 2 {
		t.Fatalf("records after mid-file corruption = %d, want 2", len(got))
	}
}

func TestBadMagicRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store")
	if err := os.WriteFile(path, []byte("definitely not a WAL file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("open of non-store file: err = %v, want bad-magic error", err)
	}
}

func TestCompactReplacesJournal(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 10; i++ {
		if err := s.Append(rec(jobs.RecHeartbeat, "job-000001")); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Size()
	snap := []*jobs.Record{
		rec(jobs.RecSubmit, "job-000001"),
		rec(jobs.RecDone, "job-000001"),
	}
	if err := s.Compact(snap); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, s); len(got) != 2 || got[0].Kind != jobs.RecSubmit {
		t.Fatalf("post-compact replay = %d records (first kind %d), want the 2 snapshot records",
			len(got), got[0].Kind)
	}
	if s.Size() >= before {
		t.Errorf("compaction did not shrink the file: %d -> %d bytes", before, s.Size())
	}
	if st := s.Stats(); st.Snapshots != 1 {
		t.Errorf("snapshots counter = %d, want 1", st.Snapshots)
	}
	// Appends continue against the new file, and both survive a reopen.
	if err := s.Append(rec(jobs.RecCacheEvict, "")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := replayAll(t, s2); len(got) != 3 {
		t.Fatalf("records after compact+append+reopen = %d, want 3", len(got))
	}
	// No stray temp file left behind.
	if _, err := os.Stat(path + ".compact"); !os.IsNotExist(err) {
		t.Errorf("compaction temp file left behind (stat err %v)", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.Append(rec(jobs.RecStart, "j")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec(jobs.RecStart, "j")); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Records != 2 {
		t.Errorf("records = %d, want 2", st.Records)
	}
	if st.Bytes <= int64(len(fileMagic)) {
		t.Errorf("bytes = %d, want > header", st.Bytes)
	}
}

func TestKindMismatchIsAnError(t *testing.T) {
	s, _ := openTemp(t)
	// Hand-craft a frame whose frame kind disagrees with the JSON kind.
	payload := []byte(`{"k":6,"job":"job-000001"}`)
	frame := appendFrame(nil, byte(jobs.RecSubmit), payload)
	s.mu.Lock()
	if _, err := s.f.WriteAt(frame, s.size); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	s.size += int64(len(frame))
	s.mu.Unlock()
	if err := s.Replay(func(*jobs.Record) error { return nil }); err == nil {
		t.Fatal("kind mismatch replayed without error")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s, _ := openTemp(t)
	s.Close()
	if err := s.Append(rec(jobs.RecStart, "j")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
