package store

// The on-disk record codec: length-prefixed, CRC-checked frames in a
// single append-only file.
//
// File layout:
//
//	offset 0: 8-byte magic "SPWSLOG1"
//	then:     frames, back to back
//
// Frame layout (all integers little-endian):
//
//	u32  payload length n
//	u8   kind (jobs.RecordKind)
//	n×u8 payload (JSON-encoded jobs.Record)
//	u32  CRC-32C over kind ‖ payload
//
// A frame is valid iff it is complete and its checksum matches. The
// scanner stops at the first invalid frame: on open, everything from
// that offset on is a torn tail (a crash mid-append) and is truncated.
// Scanning never panics on arbitrary input — the fuzz targets in
// fuzz_test.go hold it to that.

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

const (
	// frameOverhead is the fixed per-frame cost: length, kind, CRC.
	frameOverhead = 4 + 1 + 4
	// maxPayload rejects absurd lengths so a corrupt length prefix reads
	// as a torn tail instead of a multi-gigabyte allocation.
	maxPayload = 1 << 28
)

// fileMagic identifies (and versions) a specwise store file.
var fileMagic = []byte("SPWSLOG1")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks an incomplete or checksum-damaged frame — the scan
// boundary, not a reportable error.
var errTorn = errors.New("store: torn or corrupt frame")

// frameCRC digests kind ‖ payload.
func frameCRC(kind byte, payload []byte) uint32 {
	crc := crc32.Update(0, castagnoli, []byte{kind})
	return crc32.Update(crc, castagnoli, payload)
}

// appendFrame appends one encoded frame to dst and returns the
// extended slice.
func appendFrame(dst []byte, kind byte, payload []byte) []byte {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = kind
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], frameCRC(kind, payload))
	return append(dst, sum[:]...)
}

// nextFrame decodes the frame at the start of b, returning the kind,
// the payload (aliasing b) and the total encoded size. errTorn means b
// does not start with a complete, checksum-valid frame.
func nextFrame(b []byte) (kind byte, payload []byte, size int, err error) {
	if len(b) < frameOverhead {
		return 0, nil, 0, errTorn
	}
	n := binary.LittleEndian.Uint32(b[:4])
	if n > maxPayload || uint64(n) > uint64(len(b)-frameOverhead) {
		return 0, nil, 0, errTorn
	}
	kind = b[4]
	payload = b[5 : 5+n]
	want := binary.LittleEndian.Uint32(b[5+n : 5+n+4])
	if frameCRC(kind, payload) != want {
		return 0, nil, 0, errTorn
	}
	return kind, payload, int(frameOverhead + n), nil
}

// scanFrames walks b frame by frame, invoking fn (when non-nil) per
// valid frame, and returns the length of the valid prefix — the torn-
// tail truncation point. A nil fn just measures. Errors returned by fn
// abort the scan and are propagated; frame corruption is not an error,
// it simply ends the valid prefix.
func scanFrames(b []byte, fn func(kind byte, payload []byte) error) (int, error) {
	valid := 0
	for valid < len(b) {
		kind, payload, size, err := nextFrame(b[valid:])
		if err != nil {
			break
		}
		if fn != nil {
			if err := fn(kind, payload); err != nil {
				return valid, err
			}
		}
		valid += size
	}
	return valid, nil
}
