// Package store is the durable control-plane store behind the
// jobs.Store interface: a single-file append-only WAL of CRC-checked,
// length-prefixed records with periodic compacting snapshots.
//
// Durability model: Append fsyncs before returning (unless Options.
// NoSync relaxes it for tests), so every acknowledged control-plane
// mutation is on disk when the caller proceeds — a SIGKILL loses at
// most the frame being written, which the next Open detects by CRC and
// truncates as a torn tail. Compact rewrites the file as a snapshot
// (the minimal record sequence that rebuilds the current state) via
// write-temp → fsync → rename → fsync-dir, so a crash mid-compaction
// leaves either the old journal or the new snapshot, never a mix.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"specwise/internal/jobs"
)

// Options tunes a store file.
type Options struct {
	// NoSync skips the per-append fsync. Appends then survive a process
	// crash (the OS still has the pages) but not a machine crash; tests
	// use it to keep fast suites fast.
	NoSync bool
}

// File is the single-file WAL+snapshot store. It implements jobs.Store.
type File struct {
	mu   sync.Mutex
	path string
	opts Options
	f    *os.File
	size int64 // validated file length: header + intact frames

	// Cumulative counters for Stats.
	records   int64
	bytes     int64
	snapshots int64
}

var _ jobs.Store = (*File)(nil)

var errClosed = errors.New("store: closed")

// Open opens (creating if absent) the store file at path, validates the
// header, and truncates any torn tail left by a crash mid-append. The
// surviving records are then available through Replay.
func Open(path string, opts Options) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	s := &File{path: path, opts: opts, f: f}
	if err := s.init(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// init writes the header into an empty file, or validates an existing
// one and finds the torn-tail truncation point.
func (s *File) init() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat %s: %w", s.path, err)
	}
	if info.Size() == 0 {
		if _, err := s.f.Write(fileMagic); err != nil {
			return fmt.Errorf("store: writing header: %w", err)
		}
		if err := s.sync(); err != nil {
			return err
		}
		s.size = int64(len(fileMagic))
		s.bytes = int64(len(fileMagic))
		return nil
	}
	data, err := os.ReadFile(s.path)
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", s.path, err)
	}
	if len(data) < len(fileMagic) || !bytes.Equal(data[:len(fileMagic)], fileMagic) {
		return fmt.Errorf("store: %s is not a specwise store (bad magic)", s.path)
	}
	valid, _ := scanFrames(data[len(fileMagic):], nil)
	end := int64(len(fileMagic) + valid)
	if end < info.Size() {
		// Torn tail: a crash interrupted the last append (or the file was
		// damaged from that point on). Everything before it is intact.
		if err := s.f.Truncate(end); err != nil {
			return fmt.Errorf("store: truncating torn tail of %s: %w", s.path, err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: sync after truncate: %w", err)
		}
	}
	s.size = end
	return nil
}

// sync flushes the file unless the store runs relaxed.
func (s *File) sync() error {
	if s.opts.NoSync {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", s.path, err)
	}
	return nil
}

// Append journals one record: encode, frame, write, fsync. The record
// is durable when Append returns nil.
func (s *File) Append(rec *jobs.Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	frame := appendFrame(make([]byte, 0, len(payload)+frameOverhead), byte(rec.Kind), payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	if _, err := s.f.WriteAt(frame, s.size); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	if err := s.sync(); err != nil {
		return err
	}
	s.size += int64(len(frame))
	s.records++
	s.bytes += int64(len(frame))
	return nil
}

// Replay streams every intact record to fn in append order. Frames that
// passed the CRC but fail to decode abort the replay with an error —
// checksummed bytes that do not parse mean a format bug or version
// mismatch, which must fail loudly rather than silently drop state.
func (s *File) Replay(fn func(*jobs.Record) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	data := make([]byte, s.size-int64(len(fileMagic)))
	if _, err := s.f.ReadAt(data, int64(len(fileMagic))); err != nil {
		return fmt.Errorf("store: reading %s for replay: %w", s.path, err)
	}
	_, err := scanFrames(data, func(kind byte, payload []byte) error {
		var rec jobs.Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("store: undecodable record (kind %d): %w", kind, err)
		}
		if rec.Kind != jobs.RecordKind(kind) {
			return fmt.Errorf("store: frame kind %d disagrees with record kind %d", kind, rec.Kind)
		}
		return fn(&rec)
	})
	return err
}

// Compact atomically replaces the journal with the given snapshot
// records. The new file is fully written and fsynced under a temporary
// name before the rename, so a crash at any point leaves a valid store.
func (s *File) Compact(recs []*jobs.Record) error {
	buf := append([]byte(nil), fileMagic...)
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("store: encoding snapshot record: %w", err)
		}
		buf = appendFrame(buf, byte(rec.Kind), payload)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", tmpPath, err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if !s.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: fsync snapshot: %w", err)
		}
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if !s.opts.NoSync {
		syncDir(filepath.Dir(s.path))
	}
	// The old handle points at the unlinked inode; switch to the new one.
	s.f.Close()
	s.f = tmp
	s.size = int64(len(buf))
	s.records += int64(len(recs))
	s.bytes += int64(len(buf))
	s.snapshots++
	return nil
}

// syncDir makes a rename durable on filesystems that require a
// directory fsync; failure is non-fatal (the rename itself succeeded).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // best effort; some filesystems refuse dir fsync
	d.Close()
}

// Stats returns the cumulative persistence counters.
func (s *File) Stats() jobs.StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return jobs.StoreStats{Records: s.records, Bytes: s.bytes, Snapshots: s.snapshots}
}

// Size returns the current validated file size in bytes.
func (s *File) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Close fsyncs and closes the file. Further operations return an error.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
