package store

// Fuzz targets for the WAL record codec. The contract under fuzzing:
// scanning arbitrary bytes never panics, never over-reads, and the
// valid prefix it accepts re-encodes byte-identically (no misparse);
// appending a fresh frame after any torn tail always yields exactly
// one more record. Run with:
//
//	go test -fuzz FuzzScanFrames ./internal/store
//	go test -fuzz FuzzFrameRoundTrip ./internal/store
//
// The seed corpus is checked in under testdata/fuzz/.

import (
	"bytes"
	"testing"
)

// FuzzScanFrames throws arbitrary byte streams at the frame scanner.
func FuzzScanFrames(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, 1, []byte(`{"k":1,"job":"job-000001"}`)))
	two := appendFrame(nil, 6, []byte(`{"k":6}`))
	two = appendFrame(two, 10, []byte(`{"k":10,"hash":"abc"}`))
	f.Add(two)
	f.Add(two[:len(two)-3])                     // torn tail
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0}) // absurd length prefix
	f.Add(append([]byte(nil), fileMagic...))    // header bytes as frames
	f.Fuzz(func(t *testing.T, data []byte) {
		type frame struct {
			kind    byte
			payload []byte
		}
		var frames []frame
		valid, err := scanFrames(data, func(kind byte, payload []byte) error {
			frames = append(frames, frame{kind, append([]byte(nil), payload...)})
			return nil
		})
		if err != nil {
			t.Fatalf("scan callback never errors here, got %v", err)
		}
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		// Round-trip: re-encoding the accepted frames must reproduce the
		// accepted prefix exactly — anything else is a misparse.
		var re []byte
		for _, fr := range frames {
			re = appendFrame(re, fr.kind, fr.payload)
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("re-encoded frames differ from accepted prefix:\n got %x\nwant %x", re, data[:valid])
		}
		// A fresh append after truncation must scan as one more frame.
		ext := appendFrame(append([]byte(nil), data[:valid]...), 2, []byte(`{"k":2}`))
		n := 0
		extValid, _ := scanFrames(ext, func(byte, []byte) error { n++; return nil })
		if extValid != len(ext) || n != len(frames)+1 {
			t.Fatalf("append after truncation: %d/%d bytes valid, %d frames (want %d)",
				extValid, len(ext), n, len(frames)+1)
		}
	})
}

// FuzzFrameRoundTrip fuzzes the encoder/decoder pair directly.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(1), []byte(`{"k":1}`))
	f.Add(byte(11), []byte{})
	f.Add(byte(0), []byte{0x00, 0xFF, 0x10})
	f.Fuzz(func(t *testing.T, kind byte, payload []byte) {
		frame := appendFrame(nil, kind, payload)
		gotKind, gotPayload, size, err := nextFrame(frame)
		if err != nil {
			t.Fatalf("decoding a freshly encoded frame: %v", err)
		}
		if size != len(frame) {
			t.Fatalf("size = %d, want %d", size, len(frame))
		}
		if gotKind != kind || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip changed the frame: kind %d→%d payload %x→%x",
				kind, gotKind, payload, gotPayload)
		}
		// Any single-byte flip must be rejected (CRC) or shorten the
		// accepted region (length prefix) — it must never misparse into
		// a different valid frame of the same length.
		if len(frame) > 0 {
			mut := append([]byte(nil), frame...)
			mut[len(mut)/2] ^= 0x01
			if k2, p2, s2, err := nextFrame(mut); err == nil && s2 == len(frame) {
				if k2 == kind && bytes.Equal(p2, payload) {
					t.Fatal("bit flip produced an identical parse")
				}
				// A flip inside the length prefix that still checksums is
				// impossible; a flip in kind/payload breaks the CRC.
				t.Fatalf("corrupted frame parsed as valid: kind %d payload %x", k2, p2)
			}
		}
	})
}
