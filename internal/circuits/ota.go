package circuits

import (
	"specwise/internal/core"
	"specwise/internal/spice"
	"specwise/internal/variation"
)

// Five-transistor OTA fixed constants (SI units). This small circuit is
// the quickstart example and the fast integration-test vehicle: the same
// evaluation flow as the paper circuits at a fraction of the cost.
const (
	otaL1 = 1e-6
	otaL3 = 1e-6
	otaL5 = 2e-6
	otaCL = 1e-12
)

type otaDesign struct {
	w1, w3, wt float64 // SI
}

func otaDecode(d []float64) otaDesign {
	return otaDesign{w1: d[0] * um, w3: d[1] * um, wt: d[2] * um}
}

func (g otaDesign) geometry(device string) (w, l float64) {
	switch device {
	case "M1", "M2":
		return g.w1, otaL1
	case "M3", "M4":
		return g.w3, otaL3
	case "M5":
		return g.wt, otaL5
	}
	panic("circuits: unknown OTA device " + device)
}

// OTAVariations returns the statistical model for the five-transistor OTA:
// two global threshold shifts plus local mismatch on both pairs.
func OTAVariations() *variation.Model {
	m := &variation.Model{
		Globals: []variation.Global{
			{Name: "g.dVthN", Kind: variation.VthShift, Polarity: +1, Sigma: 0.015},
			{Name: "g.dVthP", Kind: variation.VthShift, Polarity: -1, Sigma: 0.015},
		},
	}
	for _, name := range []string{"M1", "M2", "M3", "M4", "M5"} {
		m.Locals = append(m.Locals,
			variation.Local{Name: name + ".dVth", Device: name, Kind: variation.VthShift, A: 10e-3},
			variation.Local{Name: name + ".dBeta", Device: name, Kind: variation.BetaRel, A: 0.012},
		)
	}
	return m
}

// buildOTA constructs the five-transistor OTA testbench with an ideal tail
// current source. theta = [temperature °C, VDD V].
func buildOTA(g otaDesign, deltas []variation.Delta, theta []float64) *testbench {
	tempC, vdd := theta[0], theta[1]
	nmos := adjustTemp(spice.DefaultNMOS(), tempC)
	pmos := adjustTemp(spice.DefaultPMOS(), tempC)

	c := spice.New()
	nVdd := c.Node("vdd")
	nInp := c.Node("inp") // non-inverting input (AC drive, M1 gate)
	nInn := c.Node("inn") // inverting input (feedback target, M2 gate)
	nTail := c.Node("tail")
	nN1 := c.Node("n1")
	nOut := c.Node("out")
	nVbn := c.Node("vbn")
	gnd := c.Node(spice.Ground)
	vcm := vdd / 2

	vddSrc := spice.NewVSource("VDD", nVdd, gnd, vdd, 0)
	drive := spice.NewVSource("VINP", nInp, gnd, vcm, 0)
	// The output is M2's drain, so M2's gate is the inverting input: the
	// unity feedback must land there for the DC loop to be stable.
	fb := spice.NewVCVS("EFB", nInn, gnd, nOut, gnd, 1)
	c.Add(vddSrc)
	c.Add(drive)
	c.Add(fb)
	c.Add(spice.NewVSource("VBN", nVbn, gnd, 1.0, 0))

	m1 := spice.NewMosfet("M1", nN1, nInp, nTail, gnd, +1, g.w1, otaL1, nmos)
	m2 := spice.NewMosfet("M2", nOut, nInn, nTail, gnd, +1, g.w1, otaL1, nmos)
	m3 := spice.NewMosfet("M3", nN1, nN1, nVdd, nVdd, -1, g.w3, otaL3, pmos)
	m4 := spice.NewMosfet("M4", nOut, nN1, nVdd, nVdd, -1, g.w3, otaL3, pmos)
	m5 := spice.NewMosfet("M5", nTail, nVbn, gnd, gnd, +1, g.wt, otaL5, nmos)
	c.Add(m1)
	c.Add(m2)
	c.Add(m3)
	c.Add(m4)
	c.Add(m5)
	c.Add(spice.NewCapacitor("CL", nOut, gnd, otaCL))

	tb := &testbench{
		ckt: c, out: nOut, drive: drive, fb: fb,
		vddSrc: vddSrc, vdd: vdd,
		tail: m5, slewCap: otaCL,
		mosfets: []*spice.Mosfet{m1, m2, m3, m4, m5},
	}
	applyDeltas(tb.mosfets, deltas)
	return tb
}

// OTAProblem builds the core.Problem for the five-transistor OTA: a
// three-parameter design space that exercises every part of the optimizer
// quickly.
func OTAProblem() *core.Problem {
	model := OTAVariations()
	specs := []core.Spec{
		{Name: "A0", Unit: "dB", Kind: core.GE, Bound: 38},
		{Name: "ft", Unit: "MHz", Kind: core.GE, Bound: 30},
		{Name: "CMRR", Unit: "dB", Kind: core.GE, Bound: 60},
		{Name: "Power", Unit: "mW", Kind: core.LE, Bound: 0.4},
	}
	design := []core.Param{
		{Name: "W1", Unit: "µm", Init: 20, Lo: 2, Hi: 200, LogScale: true},
		{Name: "W3", Unit: "µm", Init: 30, Lo: 2, Hi: 200, LogScale: true},
		{Name: "WT", Unit: "µm", Init: 8, Lo: 2, Hi: 100, LogScale: true},
	}
	theta := []core.OpRange{
		{Name: "T", Unit: "°C", Nominal: 27, Lo: -40, Hi: 125},
		{Name: "VDD", Unit: "V", Nominal: 3.3, Lo: 3.0, Hi: 3.6},
	}

	// The reference bench provides the constraint names and the fixed
	// warm-start operating point every later solve starts from.
	tb0 := buildOTA(otaDecode([]float64{20, 30, 8}), nil, []float64{27, 3.3})
	h := newSimHarness(tb0)

	eval := func(d, s, th []float64) ([]float64, error) {
		g := otaDecode(d)
		deltas := model.Physical(s, g.geometry)
		tb := h.arm(buildOTA(g, deltas, th))
		p, _ := tb.evaluate(100, 1e10)
		return []float64{p.A0dB, p.FtMHz, p.CMRRdB, p.PowerMW}, nil
	}

	zeroS := make([]float64, model.Dim())
	constraints := func(d []float64) ([]float64, error) {
		g := otaDecode(d)
		tb := h.arm(buildOTA(g, model.Physical(zeroS, g.geometry), []float64{27, 3.3}))
		dc, err := tb.ckt.DC(tb.dcOpts)
		if err != nil {
			return failedConstraints(2 * len(tb.mosfets)), nil
		}
		return mosConstraints(tb.mosfets, dc.X), nil
	}

	return &core.Problem{
		Name:            "ota5",
		Specs:           specs,
		Design:          design,
		StatNames:       model.Names(),
		Theta:           theta,
		ConstraintNames: mosConstraintNames(tb0.mosfets),
		Eval:            eval,
		Constraints:     constraints,
		SimStats:        h.counters,
		SimConfigure:    h.configure,
	}
}
