package circuits

import (
	"math"
	"testing"

	"specwise/internal/spice"
)

// TestSlewRateTransientCrossCheck validates the evaluator's analytic slew
// rate (tail current / load capacitance) against a genuine large-signal
// transient of the same amplifier in unity-gain configuration. The paper's
// SRp spec rests on this identity.
func TestSlewRateTransientCrossCheck(t *testing.T) {
	const (
		vdd = 3.3
		w1  = 20e-6
		w3  = 30e-6
		wt  = 8e-6
		cl  = 1e-12
	)
	nmos := spice.DefaultNMOS()
	pmos := spice.DefaultPMOS()

	c := spice.New()
	nVdd := c.Node("vdd")
	nInp := c.Node("inp")
	nTail := c.Node("tail")
	nN1 := c.Node("n1")
	nOut := c.Node("out")
	nVbn := c.Node("vbn")
	gnd := c.Node(spice.Ground)

	c.Add(spice.NewVSource("VDD", nVdd, gnd, vdd, 0))
	// Large positive input step: the pair fully steers and the output
	// ramps at Itail/CL.
	c.Add(spice.NewPulseSource("VIN", nInp, gnd, 1.2, 2.2, 20e-9, 1e-10))
	m1 := spice.NewMosfet("M1", nN1, nInp, nTail, gnd, +1, w1, otaL1, nmos)
	// Unity feedback: M2 gate tied directly to the output.
	m2 := spice.NewMosfet("M2", nOut, nOut, nTail, gnd, +1, w1, otaL1, nmos)
	m3 := spice.NewMosfet("M3", nN1, nN1, nVdd, nVdd, -1, w3, otaL3, pmos)
	m4 := spice.NewMosfet("M4", nOut, nN1, nVdd, nVdd, -1, w3, otaL3, pmos)
	m5 := spice.NewMosfet("M5", nTail, nVbn, gnd, gnd, +1, wt, otaL5, nmos)
	for _, m := range []*spice.Mosfet{m1, m2, m3, m4, m5} {
		c.Add(m)
	}
	c.Add(spice.NewVSource("VBN", nVbn, gnd, 1.0, 0))
	c.Add(spice.NewCapacitor("CL", nOut, gnd, cl))

	// The output node drives the M2 gate directly — the inverting input
	// (see buildOTA), making this the classic 5T unity-gain buffer.
	dc, err := c.DC(spice.DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	itail := m5.Op(dc.X).ID
	analytic := itail / cl // V/s

	res, err := c.Tran(spice.TranOptions{Stop: 250e-9, Step: 0.1e-9, Initial: dc.X})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := res.SlewRate(nOut, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := sr / analytic
	t.Logf("analytic SR = %.2f V/µs, transient SR = %.2f V/µs (ratio %.2f)",
		analytic/1e6, sr/1e6, ratio)
	// The positive slew of a 5T OTA is set by the tail current into CL;
	// expect agreement within a factor band (settling shape, channel
	// modulation).
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("transient/analytic SR ratio = %.2f; analytic model invalid", ratio)
	}
	// The output must actually settle near the new input level.
	if final := res.At(nOut, 250e-9); math.Abs(final-2.2) > 0.25 {
		t.Errorf("output settled at %.3f V want ≈2.2 V", final)
	}
}
