package circuits

import (
	"testing"
)

// TestProbeFoldedCascodeSensitivity examines CMRR/ft sensitivity to input
// pair mismatch and to the operating corners, which calibrates the
// Table-1 reproduction.
func TestProbeFoldedCascodeSensitivity(t *testing.T) {
	p := FoldedCascodeProblem()
	model := FoldedCascodeVariations()
	d := p.InitialDesign()
	th := p.NominalTheta()

	idx1 := model.LocalIndex("M1.dVth")
	idx2 := model.LocalIndex("M2.dVth")
	idx3 := model.LocalIndex("M1.dBeta")
	idx4 := model.LocalIndex("M2.dBeta")
	idx5 := model.LocalIndex("M3.dVth")
	idx6 := model.LocalIndex("M4.dVth")
	if idx1 < 0 || idx2 < 0 {
		t.Fatal("missing local params")
	}

	run := func(label string, s []float64, theta []float64) {
		vals, err := p.Eval(d, s, theta)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-28s A0=%7.2f ft=%7.2f CMRR=%8.2f SR=%7.2f P=%6.3f",
			label, vals[0], vals[1], vals[2], vals[3], vals[4])
	}

	zero := make([]float64, p.NumStat())
	run("nominal", zero, th)

	for _, k := range []float64{0.5, 1, 2, 3} {
		s := make([]float64, p.NumStat())
		s[idx1], s[idx2] = k, -k
		run("inpair dVth mismatch ±"+fmtF(k), s, th)
	}
	s := make([]float64, p.NumStat())
	s[idx1], s[idx2] = 2, 2
	run("inpair dVth common +2", s, th)

	s = make([]float64, p.NumStat())
	s[idx3], s[idx4] = 2, -2
	run("inpair dBeta mismatch ±2", s, th)

	s = make([]float64, p.NumStat())
	s[idx5], s[idx6] = 2, -2
	run("M3/M4 dVth mismatch ±2", s, th)

	// Global shifts.
	s = make([]float64, p.NumStat())
	s[0], s[1] = 2, 2
	run("global dVth +2", s, th)
	s = make([]float64, p.NumStat())
	s[2], s[3] = -2, -2
	run("global dBeta -2", s, th)

	// Operating corners.
	for _, corner := range [][]float64{{-40, 3.0}, {-40, 3.6}, {125, 3.0}, {125, 3.6}, {27, 3.0}, {125, 3.3}} {
		run("corner T/VDD", zero, corner)
	}
}

func fmtF(f float64) string {
	if f == 0.5 {
		return "0.5"
	}
	return string(rune('0' + int(f)))
}
