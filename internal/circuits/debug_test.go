package circuits

import (
	"math"
	"testing"

	"specwise/internal/linmodel"
	"specwise/internal/rng"
	"specwise/internal/wcd"
)

// TestDebugIter1Models inspects the spec models at the design reached
// after the first optimizer iteration of the Table-1 run; it exists to
// diagnose model poisoning and stays cheap enough to keep.
func TestDebugIter1Models(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	p := FoldedCascodeProblem()
	d := []float64{97.1, 1.73, 38.3, 2, 50, 57.1, 57.1, 148}

	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		t.Fatal(err)
	}
	wcs := make([]*wcd.WorstCase, p.NumSpecs())
	for i := range p.Specs {
		i := i
		theta := thetaRes.PerSpec[i]
		fn := func(s []float64) (float64, error) {
			vals, err := p.Eval(d, s, theta)
			if err != nil {
				return 0, err
			}
			return p.Specs[i].Margin(vals[i]), nil
		}
		wc, err := wcd.FindWorstCase(fn, p.NumStat(), wcd.Options{Seed: 43})
		if err != nil {
			t.Fatal(err)
		}
		wcs[i] = wc
		t.Logf("%-6s theta=%v marginNom=%+8.3f beta=%+7.3f conv=%v |swc|=%.3f marginWc=%+.4f evals=%d",
			p.Specs[i].Name, theta, wc.MarginNominal, wc.Beta, wc.Converged, wc.S.Norm2(), wc.MarginWc, wc.Evals)
	}

	models, err := linmodel.Build(p, d, wcs, thetaRes.PerSpec, linmodel.BuildOptions{MirrorSpecs: true})
	if err != nil {
		t.Fatal(err)
	}
	est := linmodel.NewEstimator(models, p.NumStat(), 2000, rng.New(9))
	_, bad := est.Count(d)
	for _, m := range models {
		gnorm := 0.0
		for _, g := range m.GradS {
			gnorm += g * g
		}
		t.Logf("model spec=%-6s mirror=%-5v Margin0=%+9.3f |GradS|=%8.3f badForSpec=%d",
			p.Specs[m.Spec].Name, m.Mirror, m.Margin0, math.Sqrt(gnorm), bad[m.Spec])
	}
}
