package circuits

import (
	"specwise/internal/core"
	"specwise/internal/spice"
	"specwise/internal/variation"
)

// Miller opamp fixed sizing constants (SI units).
const (
	mlL1 = 2e-6 // input pair
	mlL3 = 2e-6 // PMOS mirror
	mlL5 = 2e-6 // tail
	mlL6 = 2e-6 // output PMOS
	mlL7 = 2e-6 // output sink
	mlCL = 10e-12
	mlRz = 1.5e3
)

// mlDesign is the decoded design vector of the Miller opamp.
type mlDesign struct {
	w1, w3, w6, w7, wt, cc float64 // SI (cc in farads)
}

func mlDecode(d []float64) mlDesign {
	return mlDesign{
		w1: d[0] * um, w3: d[1] * um, w6: d[2] * um,
		w7: d[3] * um, wt: d[4] * um, cc: d[5] * 1e-12,
	}
}

// MillerVariations returns the statistical model for the Miller opamp
// runs: global process variations only, as in the paper's second example.
func MillerVariations() *variation.Model {
	return &variation.Model{
		Globals: []variation.Global{
			{Name: "g.dVthN", Kind: variation.VthShift, Polarity: +1, Sigma: 0.015},
			{Name: "g.dVthP", Kind: variation.VthShift, Polarity: -1, Sigma: 0.015},
			{Name: "g.dBetaN", Kind: variation.BetaRel, Polarity: +1, Sigma: 0.025},
			{Name: "g.dBetaP", Kind: variation.BetaRel, Polarity: -1, Sigma: 0.025},
		},
	}
}

// buildMiller constructs the two-stage (Miller-compensated) opamp
// testbench. The non-inverting input is the M2 gate; the feedback element
// closes the loop into the M1 gate at DC. theta = [temperature °C, VDD V].
func buildMiller(g mlDesign, deltas []variation.Delta, theta []float64) *testbench {
	tempC, vdd := theta[0], theta[1]
	nmos := adjustTemp(spice.DefaultNMOS(), tempC)
	pmos := adjustTemp(spice.DefaultPMOS(), tempC)

	c := spice.New()
	nVdd := c.Node("vdd")
	nInp := c.Node("inp") // inverting input (feedback target)
	nInn := c.Node("inn") // non-inverting input (AC drive)
	nTail := c.Node("tail")
	nN1 := c.Node("n1")
	nO1 := c.Node("o1")
	nOut := c.Node("out")
	nX := c.Node("x") // compensation network midpoint
	nVbn := c.Node("vbn")
	gnd := c.Node(spice.Ground)
	vcm := vdd / 2

	vddSrc := spice.NewVSource("VDD", nVdd, gnd, vdd, 0)
	drive := spice.NewVSource("VINN", nInn, gnd, vcm, 0)
	fb := spice.NewVCVS("EFB", nInp, gnd, nOut, gnd, 1)
	c.Add(vddSrc)
	c.Add(drive)
	c.Add(fb)
	c.Add(spice.NewVSource("VBN", nVbn, gnd, 1.15, 0))

	mk := func(name string, d, gt, s, b, pol int, w, l float64, p spice.MosParams) *spice.Mosfet {
		m := spice.NewMosfet(name, d, gt, s, b, pol, w, l, p)
		c.Add(m)
		return m
	}

	m1 := mk("M1", nN1, nInp, nTail, gnd, +1, g.w1, mlL1, nmos)
	m2 := mk("M2", nO1, nInn, nTail, gnd, +1, g.w1, mlL1, nmos)
	m3 := mk("M3", nN1, nN1, nVdd, nVdd, -1, g.w3, mlL3, pmos)
	m4 := mk("M4", nO1, nN1, nVdd, nVdd, -1, g.w3, mlL3, pmos)
	m5 := mk("M5", nTail, nVbn, gnd, gnd, +1, g.wt, mlL5, nmos)
	m6 := mk("M6", nOut, nO1, nVdd, nVdd, -1, g.w6, mlL6, pmos)
	m7 := mk("M7", nOut, nVbn, gnd, gnd, +1, g.w7, mlL7, nmos)

	c.Add(spice.NewCapacitor("CC", nO1, nX, g.cc))
	c.Add(spice.NewResistor("RZ", nX, nOut, mlRz))
	c.Add(spice.NewCapacitor("CL", nOut, gnd, mlCL))

	tb := &testbench{
		ckt: c, out: nOut, drive: drive, fb: fb,
		vddSrc: vddSrc, vdd: vdd,
		tail: m5, slewCap: g.cc,
		mosfets: []*spice.Mosfet{m1, m2, m3, m4, m5, m6, m7},
	}
	applyDeltas(tb.mosfets, deltas)
	return tb
}

// MillerProblem builds the core.Problem for the Miller opamp with global
// process variations only — the circuit of the paper's Table 6.
func MillerProblem() *core.Problem {
	model := MillerVariations()
	specs := []core.Spec{
		{Name: "A0", Unit: "dB", Kind: core.GE, Bound: 80},
		{Name: "ft", Unit: "MHz", Kind: core.GE, Bound: 1.3},
		{Name: "PM", Unit: "°", Kind: core.GE, Bound: 60},
		{Name: "SRp", Unit: "V/µs", Kind: core.GE, Bound: 3},
		{Name: "Power", Unit: "mW", Kind: core.LE, Bound: 1.3},
	}
	design := []core.Param{
		{Name: "W1", Unit: "µm", Init: 20, Lo: 5, Hi: 200, LogScale: true},
		{Name: "W3", Unit: "µm", Init: 20, Lo: 5, Hi: 200, LogScale: true},
		{Name: "W6", Unit: "µm", Init: 115, Lo: 10, Hi: 600, LogScale: true},
		{Name: "W7", Unit: "µm", Init: 12, Lo: 2, Hi: 300, LogScale: true},
		{Name: "WT", Unit: "µm", Init: 4, Lo: 2, Hi: 100, LogScale: true},
		{Name: "CC", Unit: "pF", Init: 6, Lo: 1, Hi: 20, LogScale: true},
	}
	theta := []core.OpRange{
		{Name: "T", Unit: "°C", Nominal: 27, Lo: -40, Hi: 125},
		{Name: "VDD", Unit: "V", Nominal: 3.3, Lo: 3.0, Hi: 3.6},
	}

	// The reference bench provides the constraint names and the fixed
	// warm-start operating point every later solve starts from.
	tb0 := buildMiller(mlDecode([]float64{20, 20, 115, 12, 4, 6}), nil, []float64{27, 3.3})
	h := newSimHarness(tb0)

	eval := func(d, s, th []float64) ([]float64, error) {
		g := mlDecode(d)
		deltas := model.Physical(s, func(string) (float64, float64) { return 0, 0 })
		tb := h.arm(buildMiller(g, deltas, th))
		p, _ := tb.evaluate(1, 1e9)
		return []float64{p.A0dB, p.FtMHz, p.PMdeg, p.SRVus, p.PowerMW}, nil
	}

	zeroS := make([]float64, model.Dim())
	constraints := func(d []float64) ([]float64, error) {
		g := mlDecode(d)
		tb := h.arm(buildMiller(g, model.Physical(zeroS, func(string) (float64, float64) { return 0, 0 }), []float64{27, 3.3}))
		dc, err := tb.ckt.DC(tb.dcOpts)
		if err != nil {
			return failedConstraints(2 * len(tb.mosfets)), nil
		}
		return mosConstraints(tb.mosfets, dc.X), nil
	}

	return &core.Problem{
		Name:            "miller",
		Specs:           specs,
		Design:          design,
		StatNames:       model.Names(),
		Theta:           theta,
		ConstraintNames: mosConstraintNames(tb0.mosfets),
		Eval:            eval,
		Constraints:     constraints,
		SimStats:        h.counters,
		SimConfigure:    h.configure,
	}
}
