package circuits

import (
	"os"
	"testing"

	"specwise/internal/core"
	"specwise/internal/report"
)

// TestEndToEndFoldedCascodeQuadratic runs the Table-1 experiment with the
// radial-quadratic extension: tighter CMRR models should match or beat
// the paper-faithful run's endpoint.
func TestEndToEndFoldedCascodeQuadratic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end run")
	}
	p := FoldedCascodeProblem()
	opt, err := core.NewOptimizer(p, core.Options{
		ModelSamples:   10000,
		VerifySamples:  300,
		MaxIterations:  4,
		Seed:           20010618,
		QuadraticSpecs: true,
		Log:            os.Stderr,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	report.OptimizationTrace(os.Stderr, res)
	final := res.Iterations[len(res.Iterations)-1].MCYield
	t.Logf("quadratic-spec run: %.3f final yield", final)
	if final < 0.9 {
		t.Errorf("final yield = %v", final)
	}
}
