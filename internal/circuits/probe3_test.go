package circuits

import "testing"

// TestProbeMillerNominal guards the Miller opamp bias point and prints
// performances at nominal and at the operating corners.
func TestProbeMillerNominal(t *testing.T) {
	p := MillerProblem()
	d := p.InitialDesign()
	s := make([]float64, p.NumStat())

	for _, th := range [][]float64{{27, 3.3}, {-40, 3.0}, {-40, 3.6}, {125, 3.0}, {125, 3.6}} {
		vals, err := p.Eval(d, s, th)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("T=%4.0f VDD=%.1f: A0=%7.2f ft=%6.2f PM=%6.2f SR=%6.2f P=%6.3f",
			th[0], th[1], vals[0], vals[1], vals[2], vals[3], vals[4])
	}

	// Global variation excursions at nominal theta.
	for _, sv := range [][]float64{{2, 0, 0, 0}, {-2, 0, 0, 0}, {0, 2, 0, 0}, {0, 0, -2, 0}, {0, 0, 0, -2}} {
		vals, err := p.Eval(d, sv, p.NominalTheta())
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("s=%v: A0=%7.2f ft=%6.2f PM=%6.2f SR=%6.2f P=%6.3f",
			sv, vals[0], vals[1], vals[2], vals[3], vals[4])
	}

	cons, err := p.Constraints(d)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range p.ConstraintNames {
		if cons[i] < 0 {
			t.Errorf("constraint %s violated: %v", name, cons[i])
		}
	}
}

// TestProbeOTANominal guards the OTA bias point.
func TestProbeOTANominal(t *testing.T) {
	p := OTAProblem()
	d := p.InitialDesign()
	s := make([]float64, p.NumStat())
	vals, err := p.Eval(d, s, p.NominalTheta())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("OTA nominal: A0=%7.2f ft=%6.2f CMRR=%7.2f P=%6.3f", vals[0], vals[1], vals[2], vals[3])
	cons, err := p.Constraints(d)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range p.ConstraintNames {
		if cons[i] < 0 {
			t.Errorf("constraint %s violated: %v", name, cons[i])
		}
	}
	if vals[0] < 0 {
		t.Fatal("OTA DC failed at nominal design")
	}
}
