package circuits

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"specwise/internal/core"
)

// The circuit registry maps request-level circuit names to problem
// constructors, so the job service treats problems as data the same way
// the core registry treats search backends. The built-ins register
// below; embedders can add their own before serving requests.

var (
	registryMu sync.RWMutex
	registry   = map[string]func() *core.Problem{}
)

// Register adds a named circuit constructor. Names are matched
// case-insensitively at Build (request normalization lower-cases them);
// registering a duplicate name panics, since a silent overwrite would
// change what submitted requests mean.
func Register(name string, build func() *core.Problem) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || build == nil {
		panic("circuits: Register with empty name or nil constructor")
	}
	name = strings.ToLower(name)
	if _, dup := registry[name]; dup {
		panic("circuits: Register called twice for " + name)
	}
	registry[name] = build
}

// Names returns the registered circuit names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Build constructs the named circuit's problem, or an error listing the
// registered names.
func Build(name string) (*core.Problem, error) {
	registryMu.RLock()
	build, ok := registry[strings.ToLower(name)]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("circuits: unknown circuit %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return build(), nil
}

func init() {
	Register("foldedcascode", FoldedCascodeProblem)
	Register("fc", FoldedCascodeProblem) // historical short name
	Register("miller", MillerProblem)
	Register("ota", OTAProblem)
}
