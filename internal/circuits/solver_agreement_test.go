package circuits

import (
	"math"
	"math/cmplx"
	"testing"

	"specwise/internal/spice"
)

// Dense-vs-sparse backend agreement on the real testbenches: the DC
// operating point and the AC response of every benchmark circuit must
// match component-wise to tight relative tolerance regardless of the
// selected linear-solver backend.

const solverAgreeTol = 1e-9

func relDiff(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1e-12 {
		scale = 1
	}
	return math.Abs(a-b) / scale
}

func crelDiff(a, b complex128) float64 {
	scale := math.Max(cmplx.Abs(a), cmplx.Abs(b))
	if scale < 1e-12 {
		scale = 1
	}
	return cmplx.Abs(a-b) / scale
}

// checkSolverAgreement builds the same testbench twice — once per
// backend — and compares the full DC solution and the AC output response
// at several frequencies.
func checkSolverAgreement(t *testing.T, name string, build func() *testbench) {
	t.Helper()
	mk := func(kind spice.SolverKind) (*testbench, *spice.DCResult) {
		tb := build()
		tb.ckt.Opts.Solver = kind
		dc, err := tb.ckt.DC(spice.DCOptions{})
		if err != nil {
			t.Fatalf("%s/%v: DC failed: %v", name, kind, err)
		}
		return tb, dc
	}
	tbD, dcD := mk(spice.SolverDense)
	tbS, dcS := mk(spice.SolverSparse)

	if len(dcD.X) != len(dcS.X) {
		t.Fatalf("%s: MNA order mismatch %d vs %d", name, len(dcD.X), len(dcS.X))
	}
	for i := range dcD.X {
		if d := relDiff(dcD.X[i], dcS.X[i]); d > solverAgreeTol {
			t.Errorf("%s: DC %s differs: dense %.15g sparse %.15g (rel %.3g)",
				name, tbD.ckt.VarName(i), dcD.X[i], dcS.X[i], d)
		}
	}

	// Open-loop AC response at a few spot frequencies.
	for _, tb := range []*testbench{tbD, tbS} {
		tb.drive.AC = 1
		tb.fb.ACMode = spice.VCVSACFixed
		tb.fb.ACValue = 0
	}
	for _, f := range []float64{1e3, 1e5, 1e7, 1e9} {
		omega := 2 * math.Pi * f
		acD, err := tbD.ckt.AC(dcD, omega)
		if err != nil {
			t.Fatalf("%s dense AC at %g Hz: %v", name, f, err)
		}
		acS, err := tbS.ckt.AC(dcS, omega)
		if err != nil {
			t.Fatalf("%s sparse AC at %g Hz: %v", name, f, err)
		}
		for i := range acD.X {
			if d := crelDiff(acD.X[i], acS.X[i]); d > solverAgreeTol {
				t.Errorf("%s: AC %s at %g Hz differs: dense %v sparse %v (rel %.3g)",
					name, tbD.ckt.VarName(i), f, acD.X[i], acS.X[i], d)
			}
		}
	}

	// The derived performances must agree too (coarser: they stack
	// interpolations on top of the raw solves).
	pD, okD := tbD.evaluate(100, 1e9)
	pS, okS := tbS.evaluate(100, 1e9)
	if okD != okS {
		t.Fatalf("%s: evaluate ok mismatch: dense %v sparse %v", name, okD, okS)
	}
	pairs := [][2]float64{
		{pD.A0dB, pS.A0dB}, {pD.FtMHz, pS.FtMHz}, {pD.PMdeg, pS.PMdeg},
		{pD.CMRRdB, pS.CMRRdB}, {pD.SRVus, pS.SRVus}, {pD.PowerMW, pS.PowerMW},
	}
	for k, pr := range pairs {
		if d := relDiff(pr[0], pr[1]); d > 1e-6 {
			t.Errorf("%s: performance %d differs: dense %g sparse %g", name, k, pr[0], pr[1])
		}
	}
}

func TestSolverAgreementOTA(t *testing.T) {
	checkSolverAgreement(t, "ota5", func() *testbench {
		return buildOTA(otaDecode([]float64{20, 30, 8}), nil, []float64{27, 3.3})
	})
}

func TestSolverAgreementMiller(t *testing.T) {
	checkSolverAgreement(t, "miller", func() *testbench {
		return buildMiller(mlDecode([]float64{20, 20, 115, 12, 4, 6}), nil, []float64{27, 3.3})
	})
}

func TestSolverAgreementFoldedCascode(t *testing.T) {
	checkSolverAgreement(t, "folded-cascode", func() *testbench {
		return buildFoldedCascode(fcDecode([]float64{30, 1, 60, 2, 50, 100, 100, 100}), nil, []float64{27, 3.3})
	})
}

// TestSolverStatsFlow checks that solver effort counters reach the
// problem layer with the sparse backend selected.
func TestSolverStatsFlow(t *testing.T) {
	p := OTAProblem()
	if _, err := p.Eval(p.InitialDesign(), make([]float64, p.NumStat()), p.NominalTheta()); err != nil {
		t.Fatalf("eval: %v", err)
	}
	c := p.SimStats()
	if c.Solver != "sparse" {
		t.Fatalf("SimCounters.Solver = %q, want sparse", c.Solver)
	}
	if c.Factorizations == 0 || c.Solves == 0 || c.SymbolicFacts == 0 {
		t.Fatalf("solver counters did not accumulate: %+v", c)
	}
	if c.MatrixNNZ == 0 || c.FactorNNZ < c.MatrixNNZ {
		t.Fatalf("NNZ gauges implausible: %+v", c)
	}
	// The whole point of the symbolic/numeric split: symbolic analyses
	// must be rare next to numeric factorizations.
	if c.SymbolicFacts*10 > c.Factorizations {
		t.Fatalf("symbolic factorizations not amortized: %d symbolic vs %d numeric",
			c.SymbolicFacts, c.Factorizations)
	}
}
