// Package circuits provides the benchmark circuits of the paper's Sec. 6 —
// the folded-cascode and the Miller (two-stage) operational amplifiers —
// plus a small five-transistor OTA used by the quickstart example. Each
// circuit is exposed as a core.Problem: a black-box performance evaluator
// f(d, ŝ, θ) over design parameters, normalized statistical parameters
// (global and Pelgrom local variations, Sec. 4) and operating parameters
// (temperature and supply), together with the functional sizing
// constraints c(d) ≥ 0 of Sec. 5.1.
//
// # Folded-cascode opamp (paper Fig. 7 counterpart)
//
// PMOS input pair folded into an NMOS cascode with a high-swing PMOS
// cascode mirror load; single-ended output, ideal-bias rails referenced
// to the supplies:
//
//	      vdd ──┬──────────┬─────────────┬─────
//	            │          │             │
//	         MT │       M7 ├─┐        M8 │  (PMOS mirror, gates at o1)
//	      tail ─┤        m1│ │         m2│
//	            │       M9 ├─┘ vbp    M10│  (PMOS cascodes)
//	   ┌────────┴───┐    o1│          out│──── CL
//	M1 ┤inp      inn├ M2   │             │
//	   │f1        f2│   M5 ├── vbn2   M6 │  (NMOS cascodes)
//	   │            │      │f1           │f2
//	M3 ├── vbn1 ────┤ M4   │             │  (NMOS sinks)
//	    gnd ────────┴──────┴─────────────┴─────
//
// Signal path: the input pair splits the tail current into the fold
// nodes f1/f2; the NMOS cascodes M5/M6 route the difference current to
// the mirror (M7/M9 diode side at o1) and the output. The testbench
// closes unity feedback from out into inn for biasing and breaks the
// loop in AC (spice.VCVSACFixed).
//
// Mismatch structure: CMRR is limited by the ΔVth matching of the
// current-sink pair M3/M4 and the Δβ matching of the input pair — the
// pairs the Table-5 analysis ranks first. (Input-pair ΔVth is absorbed
// as offset by the feedback testbench, mirroring how an offset-nulled
// measurement desensitizes CMRR to it.)
//
// # Miller (two-stage) opamp (paper Fig. 8 counterpart)
//
// NMOS input pair with PMOS mirror load, PMOS common-source second
// stage, RC-compensated:
//
//	vdd ──┬────────────┬──────────────┬─────
//	   M3 ├─┐ n1    M4 │           M6 │   (gate at o1)
//	      │ └──────────┤              │
//	      │          o1 ├── Cc ─ Rz ──┤ out ── CL
//	   M1 ┤inp       inn├ M2          │
//	      │    tail     │          M7 │   (sink, vbn)
//	      └──── M5 ─────┘              │
//	gnd ───────────────────────────────┴─────
//
// ft ≈ gm1/(2π·Cc), SR ≈ I(M5)/Cc, and the phase margin is set by the
// ratio of the output pole gm6/CL to ft — the trade the Table-6 run
// navigates under global process variations.
//
// # Five-transistor OTA
//
// The quickstart vehicle: NMOS pair M1/M2, PMOS mirror M3/M4, NMOS tail
// M5, single-ended output at the M2/M4 drain. Same testbench pattern at
// a fraction of the node count.
package circuits
