package circuits

import (
	"testing"
)

// TestProbeFoldedCascodeNominal prints the nominal performances; it guards
// the bias point (all transistors saturated) that the whole evaluation
// flow depends on.
func TestProbeFoldedCascodeNominal(t *testing.T) {
	p := FoldedCascodeProblem()
	d := p.InitialDesign()
	s := make([]float64, p.NumStat())
	th := p.NominalTheta()

	vals, err := p.Eval(d, s, th)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range p.Specs {
		t.Logf("%-6s = %10.4f %-5s (bound %v, margin %+.4f)",
			spec.Name, vals[i], spec.Unit, spec.Bound, spec.Margin(vals[i]))
	}

	cons, err := p.Constraints(d)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range p.ConstraintNames {
		status := "ok"
		if cons[i] < 0 {
			status = "VIOLATED"
		}
		t.Logf("constraint %-10s = %+8.4f  %s", name, cons[i], status)
	}
	if vals[0] < 0 {
		t.Fatal("folded-cascode DC failed at nominal design")
	}
}
