package circuits

import (
	"testing"

	"specwise/internal/core"
	"specwise/internal/wcd"
)

func TestProbeMCFinalDesign(t *testing.T) {
	p := FoldedCascodeProblem()
	d := []float64{233, 1.24, 79.7, 2, 16, 67.4, 23.3, 292}
	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := core.VerifyMC(p, d, thetaRes.PerSpec, 500, 77)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("yield %.3f [%.3f, %.3f]", mc.Estimate.Yield(), mc.Estimate.Lo, mc.Estimate.Hi)
	for i, s := range p.Specs {
		t.Logf("%-6s bad=%3d mean=%9.3f sigma=%8.3f margin(mean)=%+.3f",
			s.Name, mc.BadPerSpec[i], mc.Moments[i].Mean(), mc.Moments[i].Sigma(), s.Margin(mc.Moments[i].Mean()))
	}
}
