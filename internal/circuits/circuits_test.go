package circuits

import (
	"math"
	"testing"

	"specwise/internal/spice"
	"specwise/internal/variation"
)

func TestApplyDeltasTargeted(t *testing.T) {
	m1 := spice.NewMosfet("M1", 0, 1, 2, 2, +1, 1e-6, 1e-6, spice.DefaultNMOS())
	m2 := spice.NewMosfet("M2", 0, 1, 2, 2, -1, 1e-6, 1e-6, spice.DefaultPMOS())
	applyDeltas([]*spice.Mosfet{m1, m2}, []variation.Delta{
		{Device: "M1", Kind: variation.VthShift, Value: 0.01},
		{Device: "M2", Kind: variation.BetaRel, Value: 0.05},
	})
	if m1.DVth != 0.01 || m2.DVth != 0 {
		t.Errorf("DVth: m1=%v m2=%v", m1.DVth, m2.DVth)
	}
	if m1.BetaScale != 1 || math.Abs(m2.BetaScale-1.05) > 1e-12 {
		t.Errorf("BetaScale: m1=%v m2=%v", m1.BetaScale, m2.BetaScale)
	}
}

func TestApplyDeltasGlobalByPolarity(t *testing.T) {
	m1 := spice.NewMosfet("M1", 0, 1, 2, 2, +1, 1e-6, 1e-6, spice.DefaultNMOS())
	m2 := spice.NewMosfet("M2", 0, 1, 2, 2, -1, 1e-6, 1e-6, spice.DefaultPMOS())
	m3 := spice.NewMosfet("M3", 0, 1, 2, 2, +1, 1e-6, 1e-6, spice.DefaultNMOS())
	applyDeltas([]*spice.Mosfet{m1, m2, m3}, []variation.Delta{
		{Polarity: +1, Kind: variation.VthShift, Value: 0.02},
	})
	if m1.DVth != 0.02 || m3.DVth != 0.02 {
		t.Error("global NMOS delta not applied to all NMOS")
	}
	if m2.DVth != 0 {
		t.Error("global NMOS delta leaked to PMOS")
	}
}

func TestEvalDeterminism(t *testing.T) {
	p := FoldedCascodeProblem()
	d := p.InitialDesign()
	s := make([]float64, p.NumStat())
	s[3], s[7] = 0.5, -1.2
	th := p.NominalTheta()
	a, err := p.Eval(d, s, th)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Eval(d, s, th)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("eval not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestProblemShapes(t *testing.T) {
	for _, p := range []struct {
		name string
		pb   interface {
			NumSpecs() int
			NumDesign() int
			NumStat() int
		}
		specs, design, stat int
	}{
		{"fc", FoldedCascodeProblem(), 5, 8, 26},
		{"miller", MillerProblem(), 5, 6, 4},
		{"ota", OTAProblem(), 4, 3, 12},
	} {
		if p.pb.NumSpecs() != p.specs || p.pb.NumDesign() != p.design || p.pb.NumStat() != p.stat {
			t.Errorf("%s: shapes %d/%d/%d want %d/%d/%d", p.name,
				p.pb.NumSpecs(), p.pb.NumDesign(), p.pb.NumStat(),
				p.specs, p.design, p.stat)
		}
	}
}

func TestConstraintVectorMatchesNames(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    interface {
			InitialDesign() []float64
		}
	}{} {
		_ = tc
	}
	p := FoldedCascodeProblem()
	c, err := p.Constraints(p.InitialDesign())
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != len(p.ConstraintNames) {
		t.Errorf("constraints %d names %d", len(c), len(p.ConstraintNames))
	}
	m := MillerProblem()
	cm, err := m.Constraints(m.InitialDesign())
	if err != nil {
		t.Fatal(err)
	}
	if len(cm) != len(m.ConstraintNames) {
		t.Errorf("miller constraints %d names %d", len(cm), len(m.ConstraintNames))
	}
}

// Pelgrom coupling: growing the input pair must reduce the CMRR response
// to a fixed normalized mismatch sample — the C(d) design dependence the
// paper's Sec. 4 is about.
func TestDesignDependentVariance(t *testing.T) {
	p := FoldedCascodeProblem()
	model := FoldedCascodeVariations()
	i3 := model.LocalIndex("M3.dVth")
	i4 := model.LocalIndex("M4.dVth")
	s := make([]float64, p.NumStat())
	s[i3], s[i4] = 2, -2
	th := p.NominalTheta()

	small := p.InitialDesign()
	vsmall, err := p.Eval(small, s, th)
	if err != nil {
		t.Fatal(err)
	}
	big := p.InitialDesign()
	big[2] *= 4 // W3 ×4 → σ(ΔVth) halves at the same ŝ
	big[4] *= 2 // keep the mirror able to carry the larger sink current
	vbig, err := p.Eval(big, s, th)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, p.NumStat())
	v0small, _ := p.Eval(small, zero, th)
	v0big, _ := p.Eval(big, zero, th)

	dropSmall := v0small[2] - vsmall[2]
	dropBig := v0big[2] - vbig[2]
	if dropBig >= dropSmall {
		t.Errorf("CMRR drop small-area %.2f dB vs big-area %.2f dB; upsizing must help", dropSmall, dropBig)
	}
}

func TestFailedPerfIsNaN(t *testing.T) {
	fp := failedPerf()
	for _, v := range []float64{fp.A0dB, fp.FtMHz, fp.PMdeg, fp.CMRRdB, fp.SRVus, fp.PowerMW} {
		if !math.IsNaN(v) {
			t.Error("failure performances must be NaN")
		}
	}
	fc := failedConstraints(4)
	if len(fc) != 4 || fc[0] >= 0 {
		t.Error("failed constraints must be strongly violated")
	}
}

func TestAdjustTemp(t *testing.T) {
	base := spice.DefaultNMOS()
	hot := adjustTemp(base, 125)
	cold := adjustTemp(base, -40)
	if hot.VT0 >= base.VT0 || cold.VT0 <= base.VT0 {
		t.Error("threshold temperature slope wrong")
	}
	if hot.KP >= base.KP || cold.KP <= base.KP {
		t.Error("mobility temperature slope wrong")
	}
	nominal := adjustTemp(base, 27)
	if math.Abs(nominal.VT0-base.VT0) > 1e-9 || math.Abs(nominal.KP-base.KP)/base.KP > 1e-9 {
		t.Error("27°C must be the reference point")
	}
}

// Operating-range behaviour: the folded-cascode slew rate must be worst
// at the cold corner (threshold rise starves the tail current).
func TestSlewRateWorstAtColdCorner(t *testing.T) {
	p := FoldedCascodeProblem()
	d := p.InitialDesign()
	s := make([]float64, p.NumStat())
	cold, err := p.Eval(d, s, []float64{-40, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := p.Eval(d, s, []float64{125, 3.6})
	if err != nil {
		t.Fatal(err)
	}
	if cold[3] >= hot[3] {
		t.Errorf("SR cold %.1f >= hot %.1f; temperature dependence inverted", cold[3], hot[3])
	}
}
