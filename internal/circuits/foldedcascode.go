package circuits

import (
	"specwise/internal/core"
	"specwise/internal/spice"
	"specwise/internal/variation"
)

// Folded-cascode fixed sizing constants (SI units). The optimizer moves
// widths (and the input-pair length); the remaining lengths are fixed,
// which matches the paper's practice of optimizing a subset of the sizing.
const (
	fcL5 = 1e-6 // NMOS cascodes
	fcL7 = 2e-6 // PMOS mirror
	fcL9 = 1e-6 // PMOS cascodes
	fcLt = 2e-6 // tail current source
	fcCL = 2e-12

	um = 1e-6
)

// fcDesign is the decoded design vector of the folded-cascode opamp.
type fcDesign struct {
	w1, l1, w3, l3, w5, w7, w9, wt float64 // SI
}

func fcDecode(d []float64) fcDesign {
	return fcDesign{
		w1: d[0] * um, l1: d[1] * um,
		w3: d[2] * um, l3: d[3] * um,
		w5: d[4] * um, w7: d[5] * um,
		w9: d[6] * um, wt: d[7] * um,
	}
}

// geometry implements variation.Geometry for this design point.
func (g fcDesign) geometry(device string) (w, l float64) {
	switch device {
	case "M1", "M2":
		return g.w1, g.l1
	case "M3", "M4":
		return g.w3, g.l3
	case "M5", "M6":
		return g.w5, fcL5
	case "M7", "M8":
		return g.w7, fcL7
	case "M9", "M10":
		return g.w9, fcL9
	case "MT":
		return g.wt, fcLt
	}
	panic("circuits: unknown folded-cascode device " + device)
}

// fcNames lists the transistor instances in netlist order.
var fcNames = []string{"M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9", "M10", "MT"}

// FoldedCascodeVariations returns the statistical model used for the
// folded-cascode experiments: four global parameters plus Pelgrom local
// threshold and beta mismatch for every transistor (paper Secs. 3–4).
func FoldedCascodeVariations() *variation.Model {
	m := &variation.Model{
		Globals: []variation.Global{
			{Name: "g.dVthN", Kind: variation.VthShift, Polarity: +1, Sigma: 0.015},
			{Name: "g.dVthP", Kind: variation.VthShift, Polarity: -1, Sigma: 0.015},
			{Name: "g.dBetaN", Kind: variation.BetaRel, Polarity: +1, Sigma: 0.025},
			{Name: "g.dBetaP", Kind: variation.BetaRel, Polarity: -1, Sigma: 0.025},
		},
	}
	for _, name := range fcNames {
		m.Locals = append(m.Locals,
			variation.Local{Name: name + ".dVth", Device: name, Kind: variation.VthShift, A: 10e-3},
			variation.Local{Name: name + ".dBeta", Device: name, Kind: variation.BetaRel, A: 0.012},
		)
	}
	return m
}

// buildFoldedCascode constructs the DC-closed-loop testbench at one
// (design, statistical, operating) point. theta = [temperature °C, VDD V].
func buildFoldedCascode(g fcDesign, deltas []variation.Delta, theta []float64) *testbench {
	tempC, vdd := theta[0], theta[1]
	nmos := adjustTemp(spice.DefaultNMOS(), tempC)
	pmos := adjustTemp(spice.DefaultPMOS(), tempC)

	c := spice.New()
	nVdd := c.Node("vdd")
	nInp := c.Node("inp")
	nInn := c.Node("inn")
	nTail := c.Node("tail")
	nF1 := c.Node("f1")
	nF2 := c.Node("f2")
	nO1 := c.Node("o1") // left cascode output = mirror gate
	nOut := c.Node("out")
	nM1 := c.Node("m1")
	nM2 := c.Node("m2")
	nVbt := c.Node("vbt")
	nVbn1 := c.Node("vbn1")
	nVbn2 := c.Node("vbn2")
	nVbp := c.Node("vbp")

	gnd := c.Node(spice.Ground)
	vcm := vdd / 2

	vddSrc := spice.NewVSource("VDD", nVdd, gnd, vdd, 0)
	drive := spice.NewVSource("VINP", nInp, gnd, vcm, 0)
	fb := spice.NewVCVS("EFB", nInn, gnd, nOut, gnd, 1)
	c.Add(vddSrc)
	c.Add(drive)
	c.Add(fb)

	// Bias rails referenced to the supplies (real bias generators track
	// their rail, so the offsets stay fixed as VDD varies).
	c.Add(spice.NewVSource("VBT", nVbt, gnd, vdd-1.1, 0))
	c.Add(spice.NewVSource("VBN1", nVbn1, gnd, 1.0, 0))
	c.Add(spice.NewVSource("VBN2", nVbn2, gnd, 1.6, 0))
	c.Add(spice.NewVSource("VBP", nVbp, gnd, vdd-1.7, 0))

	mk := func(name string, d, gt, s, b, pol int, w, l float64, p spice.MosParams) *spice.Mosfet {
		m := spice.NewMosfet(name, d, gt, s, b, pol, w, l, p)
		c.Add(m)
		return m
	}

	mt := mk("MT", nTail, nVbt, nVdd, nVdd, -1, g.wt, fcLt, pmos)
	m1 := mk("M1", nF1, nInp, nTail, nVdd, -1, g.w1, g.l1, pmos)
	m2 := mk("M2", nF2, nInn, nTail, nVdd, -1, g.w1, g.l1, pmos)
	m3 := mk("M3", nF1, nVbn1, gnd, gnd, +1, g.w3, g.l3, nmos)
	m4 := mk("M4", nF2, nVbn1, gnd, gnd, +1, g.w3, g.l3, nmos)
	m5 := mk("M5", nO1, nVbn2, nF1, gnd, +1, g.w5, fcL5, nmos)
	m6 := mk("M6", nOut, nVbn2, nF2, gnd, +1, g.w5, fcL5, nmos)
	m7 := mk("M7", nM1, nO1, nVdd, nVdd, -1, g.w7, fcL7, pmos)
	m8 := mk("M8", nM2, nO1, nVdd, nVdd, -1, g.w7, fcL7, pmos)
	m9 := mk("M9", nO1, nVbp, nM1, nVdd, -1, g.w9, fcL9, pmos)
	m10 := mk("M10", nOut, nVbp, nM2, nVdd, -1, g.w9, fcL9, pmos)

	c.Add(spice.NewCapacitor("CL", nOut, gnd, fcCL))

	tb := &testbench{
		ckt: c, out: nOut, drive: drive, fb: fb,
		vddSrc: vddSrc, vdd: vdd,
		tail: mt, slewCap: fcCL,
		mosfets: []*spice.Mosfet{m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, mt},
	}
	applyDeltas(tb.mosfets, deltas)
	return tb
}

// FoldedCascodeProblem builds the core.Problem for the folded-cascode
// opamp with both global and local (mismatch) variations — the circuit of
// the paper's Tables 1–5.
func FoldedCascodeProblem() *core.Problem {
	model := FoldedCascodeVariations()
	specs := []core.Spec{
		{Name: "A0", Unit: "dB", Kind: core.GE, Bound: 40},
		{Name: "ft", Unit: "MHz", Kind: core.GE, Bound: 40},
		{Name: "CMRR", Unit: "dB", Kind: core.GE, Bound: 80},
		{Name: "SRp", Unit: "V/µs", Kind: core.GE, Bound: 35},
		{Name: "Power", Unit: "mW", Kind: core.LE, Bound: 3.5},
	}
	design := []core.Param{
		{Name: "W1", Unit: "µm", Init: 30, Lo: 5, Hi: 400, LogScale: true},
		{Name: "L1", Unit: "µm", Init: 1.0, Lo: 0.6, Hi: 5},
		{Name: "W3", Unit: "µm", Init: 60, Lo: 5, Hi: 400, LogScale: true},
		{Name: "L3", Unit: "µm", Init: 2.0, Lo: 1.0, Hi: 8, LogScale: true},
		{Name: "W5", Unit: "µm", Init: 50, Lo: 5, Hi: 400, LogScale: true},
		{Name: "W7", Unit: "µm", Init: 100, Lo: 10, Hi: 600, LogScale: true},
		{Name: "W9", Unit: "µm", Init: 100, Lo: 10, Hi: 600, LogScale: true},
		{Name: "WT", Unit: "µm", Init: 100, Lo: 10, Hi: 800, LogScale: true},
	}
	theta := []core.OpRange{
		{Name: "T", Unit: "°C", Nominal: 27, Lo: -40, Hi: 125},
		{Name: "VDD", Unit: "V", Nominal: 3.3, Lo: 3.0, Hi: 3.6},
	}

	// The reference bench provides the constraint names and the fixed
	// warm-start operating point every later solve starts from.
	tb0 := buildFoldedCascode(fcDecode([]float64{30, 1, 60, 2, 50, 100, 100, 100}), nil, []float64{27, 3.3})
	h := newSimHarness(tb0)

	eval := func(d, s, th []float64) ([]float64, error) {
		g := fcDecode(d)
		deltas := model.Physical(s, g.geometry)
		tb := h.arm(buildFoldedCascode(g, deltas, th))
		p, _ := tb.evaluate(100, 1e9)
		return []float64{p.A0dB, p.FtMHz, p.CMRRdB, p.SRVus, p.PowerMW}, nil
	}

	zeroS := make([]float64, model.Dim())
	constraints := func(d []float64) ([]float64, error) {
		g := fcDecode(d)
		tb := h.arm(buildFoldedCascode(g, model.Physical(zeroS, g.geometry), []float64{27, 3.3}))
		dc, err := tb.ckt.DC(tb.dcOpts)
		if err != nil {
			return failedConstraints(2 * len(tb.mosfets)), nil
		}
		return mosConstraints(tb.mosfets, dc.X), nil
	}

	return &core.Problem{
		Name:            "folded-cascode",
		Specs:           specs,
		Design:          design,
		StatNames:       model.Names(),
		Theta:           theta,
		ConstraintNames: mosConstraintNames(tb0.mosfets),
		Eval:            eval,
		Constraints:     constraints,
		SimStats:        h.counters,
		SimConfigure:    h.configure,
	}
}
