package circuits

import (
	"math"

	"specwise/internal/linalg"
	"specwise/internal/problem"
	"specwise/internal/spice"
	"specwise/internal/variation"
)

// Performances bundles the extracted opamp metrics in reporting units.
type Performances struct {
	A0dB    float64 // low-frequency open-loop gain
	FtMHz   float64 // unity-gain frequency
	PMdeg   float64 // phase margin
	CMRRdB  float64 // common-mode rejection ratio at DC
	SRVus   float64 // positive slew rate [V/µs]
	PowerMW float64 // static supply power [mW]
}

// testbench is a built opamp circuit with the handles the evaluator needs.
type testbench struct {
	ckt     *spice.Circuit
	out     int            // observed output node
	drive   *spice.VSource // AC drive at the non-inverting input
	fb      *spice.VCVS    // DC-closing feedback element at the inverting input
	vddSrc  *spice.VSource
	vdd     float64
	tail    *spice.Mosfet // nil when the tail is an ideal source
	tailI   float64       // ideal tail current when tail == nil
	slewCap float64       // capacitance limiting the slew rate (CL or Cc)
	mosfets []*spice.Mosfet
	// dcOpts configures every DC solve of this bench (warm-start guess,
	// shared effort counters). The zero value is a plain cold solve.
	dcOpts spice.DCOptions
}

// simHarness carries the per-problem warm-start state shared by all
// evaluation closures: one reference operating point, solved once at the
// initial design, and the cumulative DC effort counters. Warm-starting
// every solve from the same fixed reference (rather than from the
// previous solve) keeps evaluations independent of call order, so
// results stay deterministic under the optimizer's concurrency and the
// evaluation cache.
type simHarness struct {
	stats  spice.DCStats
	solver spice.SolverStats
	refOP  linalg.Vector // nil when the reference solve failed
	// symCache shares the reference circuit's symbolic LU factorizations
	// (DC Jacobian and AC system patterns) with every evaluation
	// circuit. It is seeded single-threaded here and frozen before any
	// evaluation runs, so its contents — and the adopted pivot orders —
	// are a fixed function of the problem, independent of evaluation
	// order and concurrency.
	symCache *linalg.SymbolicCache
	// sim holds behaviour-preserving simulator tuning (worker fan-out),
	// set once through configure before evaluations start.
	sim problem.SimOptions
}

// newSimHarness solves tb0 cold and records its operating point as the
// warm-start reference. tb0 must share the MNA layout of every bench the
// problem will build (same topology, any parameter values). The solve
// doubles as the symbolic-cache seeding pass: tb0's DC factorization
// stores the Jacobian pattern, and one AC solve in the evaluation flow's
// stamp configuration stores the (G + jωC) pattern.
func newSimHarness(tb0 *testbench) *simHarness {
	h := &simHarness{symCache: linalg.NewSymbolicCache()}
	tb0.ckt.Opts.SymCache = h.symCache
	// Count the seeding solves in the shared counters: they carry the
	// problem's only symbolic factorizations once the cache is frozen.
	tb0.ckt.SolverStats = &h.solver
	if dc, err := tb0.ckt.DC(spice.DCOptions{}); err == nil {
		h.refOP = dc.X
		// Mirror evaluate's AC drive configuration so the seeded pattern
		// matches the one every evaluation assembles, then restore.
		driveAC, fbMode, fbVal := tb0.drive.AC, tb0.fb.ACMode, tb0.fb.ACValue
		tb0.drive.AC = 1
		tb0.fb.ACMode = spice.VCVSACFixed
		tb0.fb.ACValue = 0
		_, _ = tb0.ckt.AC(dc, 2*math.Pi)
		tb0.drive.AC, tb0.fb.ACMode, tb0.fb.ACValue = driveAC, fbMode, fbVal
	}
	h.symCache.Freeze()
	return h
}

// arm points tb's DC solves at the harness reference and counters, and
// its circuit's linear-solver effort at the shared solver counters.
func (h *simHarness) arm(tb *testbench) *testbench {
	tb.dcOpts = spice.DCOptions{InitialX: h.refOP, Stats: &h.stats}
	tb.ckt.SolverStats = &h.solver
	tb.ckt.Opts.SweepWorkers = h.sim.SweepWorkers
	tb.ckt.Opts.SymCache = h.symCache
	return tb
}

// configure implements problem.Problem.SimConfigure. It must be called
// before evaluations start (the optimizer calls it at construction).
func (h *simHarness) configure(opts problem.SimOptions) { h.sim = opts }

// counters snapshots the harness effort counters in problem-layer terms,
// implementing problem.Problem.SimStats.
func (h *simHarness) counters() problem.SimCounters {
	return problem.SimCounters{
		WarmStarts:     h.stats.WarmStarts.Load(),
		WarmConverged:  h.stats.WarmConverged.Load(),
		Fallbacks:      h.stats.Fallbacks.Load(),
		NewtonIters:    h.stats.NewtonIters.Load(),
		Solver:         h.solver.Kind(),
		Factorizations: h.solver.Factorizations.Load(),
		Solves:         h.solver.Solves.Load(),
		SymbolicFacts:  h.solver.Symbolic.Load(),
		MatrixNNZ:      h.solver.MatrixNNZ.Load(),
		FactorNNZ:      h.solver.FactorNNZ.Load(),
		DCSolveNanos:   h.solver.DCNanos.Load(),
		ACSolveNanos:   h.solver.ACNanos.Load(),
		TranSolveNanos: h.solver.TranNanos.Load(),
	}
}

// adjustTemp applies first-order temperature dependence to a model card.
func adjustTemp(p spice.MosParams, tempC float64) spice.MosParams {
	return p.AtTemp(tempC)
}

// applyDeltas folds the physical statistical perturbations into the
// matching MOSFET instances of the testbench.
func applyDeltas(mosfets []*spice.Mosfet, deltas []variation.Delta) {
	for _, d := range deltas {
		for _, m := range mosfets {
			if d.Device != "" {
				if m.Name() != d.Device {
					continue
				}
			} else if d.Polarity != 0 && m.Polarity != d.Polarity {
				continue
			}
			switch d.Kind {
			case variation.VthShift:
				m.DVth += d.Value
			case variation.BetaRel:
				m.BetaScale *= 1 + d.Value
			}
			if d.Device != "" {
				break
			}
		}
	}
}

// failedPerf is the performance vector reported when the operating point
// cannot be found: NaN everywhere. NaN fails every spec comparison, and
// the analysis layers (worst-case search, model building, Monte Carlo)
// treat it as "broken circuit" rather than as a differentiable value —
// a finite penalty would poison finite-difference gradients instead.
func failedPerf() Performances {
	nan := math.NaN()
	return Performances{
		A0dB: nan, FtMHz: nan, PMdeg: nan, CMRRdB: nan,
		SRVus: nan, PowerMW: nan,
	}
}

// evaluate runs the shared opamp measurement flow: DC bias with the
// feedback loop closed, an open-loop differential AC sweep (gain, unity
// frequency, phase margin), a single common-mode AC point (CMRR), and
// operating-point bookkeeping (slew rate, power).
func (tb *testbench) evaluate(fStart, fStop float64) (Performances, bool) {
	dc, err := tb.ckt.DC(tb.dcOpts)
	if err != nil {
		return failedPerf(), false
	}

	// Open-loop differential response: drive the non-inverting input,
	// hold the inverting input at AC ground through the loop-break.
	tb.drive.AC = 1
	tb.fb.ACMode = spice.VCVSACFixed
	tb.fb.ACValue = 0
	bode, err := tb.ckt.ACSweep(dc, tb.out, fStart, fStop, 8)
	if err != nil {
		return failedPerf(), false
	}
	a0 := bode.DCGainDB()
	ftHz, _, okFt := bode.UnityCrossing()
	pm, okPM := bode.PhaseMarginDeg()
	if !okFt || !okPM {
		// No unity crossing: the gain is below 0 dB from the start. Keep
		// the reported ft graded (→ 0 as the gain collapses, continuous
		// at the 0 dB boundary) so optimizer gradients stay informative
		// instead of hitting a hard cliff.
		ftHz = fStart * math.Pow(10, math.Min(a0, 0)/20)
		pm = 0
	}

	// Common-mode response at the lowest frequency: both inputs driven.
	tb.fb.ACValue = 1
	acCM, err := tb.ckt.AC(dc, 2*math.Pi*fStart)
	if err != nil {
		return failedPerf(), false
	}
	acmMag := cmplxAbs(acCM.Voltage(tb.out))
	cmrr := a0 - 20*math.Log10(math.Max(acmMag, 1e-12))

	// Slew rate: tail current into the slew-limiting capacitance.
	itail := tb.tailI
	if tb.tail != nil {
		itail = tb.tail.Op(dc.X).ID
	}
	sr := itail / tb.slewCap // V/s

	power := math.Abs(dc.BranchCurrent(tb.vddSrc.Branch())) * tb.vdd

	return Performances{
		A0dB:    a0,
		FtMHz:   ftHz / 1e6,
		PMdeg:   pm,
		CMRRdB:  cmrr,
		SRVus:   sr / 1e6,
		PowerMW: power * 1e3,
	}, true
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// mosConstraints emits the functional sizing constraints for a converged
// DC point: every transistor saturated with margin and conducting with a
// minimum gate overdrive. These are the technology-dependent "sizing
// rules" of the paper's Sec. 5.1 (ref. [13]).
func mosConstraints(mosfets []*spice.Mosfet, x []float64) []float64 {
	const (
		satMargin = 0.05 // required VDS − Vov headroom [V]
		vonMargin = 0.03 // required gate overdrive [V]
	)
	out := make([]float64, 0, 2*len(mosfets))
	for _, m := range mosfets {
		op := m.Op(x)
		out = append(out, op.SatMargin-satMargin, op.Vov-vonMargin)
	}
	return out
}

// mosConstraintNames matches mosConstraints ordering.
func mosConstraintNames(mosfets []*spice.Mosfet) []string {
	names := make([]string, 0, 2*len(mosfets))
	for _, m := range mosfets {
		names = append(names, m.Name()+".sat", m.Name()+".von")
	}
	return names
}

// failedConstraints is the penalty constraint vector for designs whose
// operating point cannot be computed at all.
func failedConstraints(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = -1e3
	}
	return out
}
