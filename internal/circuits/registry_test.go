package circuits

import (
	"strings"
	"testing"
)

func TestRegistryBuildsBuiltins(t *testing.T) {
	for _, name := range []string{"foldedcascode", "fc", "miller", "ota", "OTA"} {
		p, err := Build(name)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("Build(%q) problem invalid: %v", name, err)
		}
	}
}

func TestRegistryUnknownNameListsRegistered(t *testing.T) {
	_, err := Build("nonexistent")
	if err == nil {
		t.Fatal("expected an unknown-circuit error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"nonexistent"`) {
		t.Errorf("error %q does not quote the unknown name", msg)
	}
	for _, name := range []string{"foldedcascode", "miller", "ota"} {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list registered circuit %q", msg, name)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	Register("ota", OTAProblem)
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("Names() = %v, want at least the 4 built-ins", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}
