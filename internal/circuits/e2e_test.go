package circuits

import (
	"os"
	"testing"

	"specwise/internal/core"
	"specwise/internal/report"

	_ "specwise/internal/search" // register the search backends
)

// TestEndToEndOTA runs the full Fig.-6 flow on the small OTA; it must lift
// the Monte-Carlo yield substantially. This is the fast integration test
// of the whole stack (simulator → worst case → models → search).
func TestEndToEndOTA(t *testing.T) {
	p := OTAProblem()
	opt, err := core.NewOptimizer(p, core.Options{
		ModelSamples:  3000,
		VerifySamples: 120,
		MaxIterations: 2,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	initial := res.Iterations[0].MCYield
	final := res.Iterations[len(res.Iterations)-1].MCYield
	t.Logf("OTA yield: %.3f -> %.3f (%d sims, %d constraint sims)",
		initial, final, res.Simulations, res.ConstraintSims)
	if final < initial {
		t.Errorf("optimization degraded yield: %v -> %v", initial, final)
	}
	if final < 0.9 {
		t.Errorf("final OTA yield = %v want >= 0.9", final)
	}
	report.OptimizationTrace(os.Stderr, res)
}

// TestEndToEndFoldedCascode is the Table-1 shaped run; it is slow, so it
// hides behind -short.
func TestEndToEndFoldedCascode(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end run")
	}
	p := FoldedCascodeProblem()
	opt, err := core.NewOptimizer(p, core.Options{
		ModelSamples:  4000,
		VerifySamples: 200,
		MaxIterations: 4,
		Seed:          42,
		Log:           os.Stderr,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	report.OptimizationTrace(os.Stderr, res)
	initial := res.Iterations[0].MCYield
	final := res.Iterations[len(res.Iterations)-1].MCYield
	t.Logf("folded-cascode yield: %.3f -> %.3f", initial, final)
	if initial > 0.05 {
		t.Errorf("initial yield = %v want ≈ 0 (the paper's Table-1 setup)", initial)
	}
	if final < 0.9 {
		t.Errorf("final yield = %v want >= 0.9", final)
	}
}

// TestEndToEndMiller is the Table-6 shaped run: global variations only,
// starting from partial yield.
func TestEndToEndMiller(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end run")
	}
	p := MillerProblem()
	opt, err := core.NewOptimizer(p, core.Options{
		ModelSamples:  4000,
		VerifySamples: 200,
		MaxIterations: 3,
		Seed:          42,
		Log:           os.Stderr,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	report.OptimizationTrace(os.Stderr, res)
	initial := res.Iterations[0].MCYield
	final := res.Iterations[len(res.Iterations)-1].MCYield
	t.Logf("miller yield: %.3f -> %.3f", initial, final)
	if initial < 0.05 || initial > 0.7 {
		t.Errorf("initial yield = %v want partial (Table-6 shape)", initial)
	}
	if final < 0.9 {
		t.Errorf("final yield = %v want >= 0.9", final)
	}
}

// TestEndToEndAblations reproduces the Table-3/4 story on the
// folded-cascode: without functional constraints, and with nominal-point
// linearization, the true yield stays (near) zero even though the model's
// bad-sample counts fall.
func TestEndToEndAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end run")
	}
	for _, tc := range []struct {
		name    string
		opts    core.Options
		iters   int
		ceiling float64
	}{
		// Without functional constraints the first step breaks the
		// circuit outright: yield stays at zero (Table 3).
		{"no-constraints", core.Options{NoConstraints: true}, 1, 0.05},
		// With nominal-point linearization the models are blind to the
		// quadratic mismatch behaviour of CMRR, so the run saturates well
		// below the full method's ≈97% (Table 4).
		{"nominal-linearization", core.Options{LinearizeAtNominal: true}, 4, 0.9},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := FoldedCascodeProblem()
			o := tc.opts
			o.ModelSamples = 3000
			o.VerifySamples = 150
			o.MaxIterations = tc.iters
			o.Seed = 42
			opt, err := core.NewOptimizer(p, o)
			if err != nil {
				t.Fatal(err)
			}
			res, err := opt.Run()
			if err != nil {
				t.Fatal(err)
			}
			report.OptimizationTrace(os.Stderr, res)
			final := res.Iterations[len(res.Iterations)-1].MCYield
			t.Logf("%s: final yield after %d iterations = %.3f", tc.name, tc.iters, final)
			if final > tc.ceiling {
				t.Errorf("%s ablation reached %.3f yield (ceiling %.2f); the paper's point is that it underperforms",
					tc.name, final, tc.ceiling)
			}
		})
	}
}
