package cem_test

import (
	"testing"

	"specwise/internal/core"
	"specwise/internal/testprob"
)

func run(t *testing.T, opts core.Options) *core.Result {
	t.Helper()
	opts.Algorithm = "cem"
	res, err := core.NewAndRun(testprob.Analytic(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The analytic problem starts at yield ~0 (spec f violated at the
// nominal); the sampler must find its way to a high-yield region and
// respect the true constraint.
func TestCEMAnalyticImprovesYield(t *testing.T) {
	res := run(t, core.Options{
		ModelSamples:  2000,
		VerifySamples: 300,
		MaxIterations: 3,
		Seed:          7,
	})
	if res.Algorithm != "cem" {
		t.Errorf("result algorithm = %q, want cem", res.Algorithm)
	}
	if len(res.Iterations) < 2 {
		t.Fatalf("expected initial + final iteration records, got %d", len(res.Iterations))
	}
	initial := res.Iterations[0]
	final := res.Iterations[len(res.Iterations)-1]
	if initial.MCYield > 0.05 {
		t.Errorf("initial MC yield = %v want ~0", initial.MCYield)
	}
	if final.MCYield < 0.9 {
		t.Errorf("final MC yield = %v want ~1", final.MCYield)
	}
	d := res.FinalDesign
	if d[0]+d[1] > 8+1e-6 {
		t.Errorf("final design %v violates constraint", d)
	}
	if res.Simulations == 0 || res.ConstraintSims == 0 {
		t.Error("simulation counters not incremented")
	}
}

// Fixed seed ⇒ bit-identical runs, like every backend.
func TestCEMDeterminism(t *testing.T) {
	opts := core.Options{
		ModelSamples: 1000, VerifySamples: 100, MaxIterations: 2, Seed: 42,
	}
	a, b := run(t, opts), run(t, opts)
	if len(a.Iterations) != len(b.Iterations) {
		t.Fatalf("iteration counts differ: %d vs %d", len(a.Iterations), len(b.Iterations))
	}
	for i := range a.Iterations {
		if a.Iterations[i].MCYield != b.Iterations[i].MCYield {
			t.Errorf("iteration %d MC yield differs: %v vs %v",
				i, a.Iterations[i].MCYield, b.Iterations[i].MCYield)
		}
	}
	for k := range a.FinalDesign {
		if a.FinalDesign[k] != b.FinalDesign[k] {
			t.Errorf("final design differs at %d: %v vs %v", k, a.FinalDesign[k], b.FinalDesign[k])
		}
	}
	if a.Simulations != b.Simulations {
		t.Errorf("simulation counts differ: %d vs %d", a.Simulations, b.Simulations)
	}
}

// Different seeds must drive different sampling trajectories (the
// backend actually uses its stream, rather than collapsing to a fixed
// path).
func TestCEMSeedVariesTrajectory(t *testing.T) {
	a := run(t, core.Options{ModelSamples: 1000, MaxIterations: 2, SkipVerify: true, Seed: 1})
	b := run(t, core.Options{ModelSamples: 1000, MaxIterations: 2, SkipVerify: true, Seed: 2})
	same := true
	for k := range a.FinalDesign {
		if a.FinalDesign[k] != b.FinalDesign[k] {
			same = false
		}
	}
	if same {
		t.Error("two seeds produced identical final designs; sampler looks seed-blind")
	}
}

// SkipVerify must hold for the backend's recorded states too.
func TestCEMSkipVerify(t *testing.T) {
	res := run(t, core.Options{ModelSamples: 1000, MaxIterations: 1, SkipVerify: true, Seed: 5})
	for i, it := range res.Iterations {
		if it.MCYield != -1 {
			t.Errorf("iteration %d MCYield = %v, want -1 under SkipVerify", i, it.MCYield)
		}
	}
}
