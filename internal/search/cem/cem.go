// Package cem is an alternative search backend: a risk-sensitive
// cross-entropy sampler in the spirit of GLOVA's yield optimization.
// Instead of linearizing specs and walking the model's yield surface,
// it maintains a Gaussian sampling distribution over the (normalized)
// design box and iteratively narrows it around elite candidates. Each
// candidate is scored by a risk-sensitive soft-min of its spec margins
// over a fixed set of statistical samples (common random numbers, so
// generations are comparable), evaluated at the worst-case operating
// points found at the starting design; infeasible candidates are ranked
// by constraint violation without spending performance simulations.
// When progress stalls the distribution re-widens — the random-restart
// element. Every draw comes from one sequential stream derived from
// Options.Seed, so runs are bit-deterministic like the default backend.
//
// The engine's shared analysis (worst-case distances, spec-wise models,
// MC verification) still brackets the run: the initial and final
// designs get full Analyze records, so results carry the same table
// blocks as feasguided runs and verify the same way.
package cem

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"specwise/internal/core"
	"specwise/internal/feasopt"
	"specwise/internal/rng"
)

// Name is the backend's registry and wire identifier.
const Name = "cem"

func init() {
	core.RegisterBackend(Name, func() core.SearchBackend { return &Backend{} })
}

// Backend holds one run's sampler state.
type Backend struct {
	// Sampling distribution over normalized [0,1] design coordinates.
	mean, sigma []float64

	// Fixed scoring machinery, set up at Init.
	samples  [][]float64 // common statistical samples, one stream for the run
	thetas   [][]float64 // distinct worst-case operating points
	thetaIdx []int       // spec index -> index into thetas
	scale    []float64   // per-spec margin normalizer (sample σ at the start)
	cscale   []float64   // per-constraint violation normalizer
	r        *rng.Rand

	best      []float64
	bestScore float64
	stall     int // generations without a new best (drives re-widening)

	gen, generations int
	pop, elites      int
	kappa            float64

	// specFinal tells pool-side SpeculateWarm calls whether the current
	// prediction round targets the final full analysis (atomic: stale
	// pool workers may read it while a new round is being predicted; a
	// stale read only wastes idle cycles).
	specFinal atomic.Bool
}

// Name implements core.SearchBackend.
func (b *Backend) Name() string { return Name }

// Tuning constants. Population and sample counts scale with the problem
// (design dimension, Options.ModelSamples) inside Init.
const (
	sigmaInit  = 0.25 // initial spread, as a fraction of the normalized box
	sigmaFloor = 0.01
	sigmaDone  = 0.02 // converged when every coordinate narrows below this
	smooth     = 0.7  // elite-update smoothing
	riskKappa  = 2.0  // risk aversion of the soft-min objective
)

// Init analyzes the starting design (recording the initial iteration
// state like every backend) and freezes the scoring machinery: the
// worst-case operating points, the common statistical samples and the
// per-spec margin scales.
func (b *Backend) Init(ctx context.Context, e *core.Engine) error {
	p := e.Problem()
	opts := e.Options()

	d := p.InitialDesign()
	if p.Constraints != nil {
		df, err := feasopt.FeasibleStart(p, d, 0)
		if err != nil {
			e.Logf("feasible start: %v (continuing from best effort)", err)
		}
		if df != nil {
			d = df
		}
	}

	cur, _, _, err := e.Analyze(ctx, d, opts.Seed)
	if err != nil {
		return err
	}
	e.Logf("initial: model yield %.4f, MC yield %.4f", cur.ModelYield, cur.MCYield)
	e.Record(cur)
	e.Emit("initial", 0, 0, cur)

	// Distinct worst-case operating points from the initial analysis;
	// candidates are judged at these θ for the rest of the run.
	b.thetaIdx = make([]int, p.NumSpecs())
	for i, st := range cur.Specs {
		u := -1
		for j, th := range b.thetas {
			if equalPoint(th, st.ThetaWc) {
				u = j
				break
			}
		}
		if u < 0 {
			u = len(b.thetas)
			b.thetas = append(b.thetas, append([]float64(nil), st.ThetaWc...))
		}
		b.thetaIdx[i] = u
	}

	// Budgets: MaxIterations meters generations, ModelSamples meters the
	// per-candidate sample count — so the existing effort knobs scale
	// this backend the way they scale the default one.
	b.pop = 8 + 4*p.NumDesign()
	if b.pop > 32 {
		b.pop = 32
	}
	b.elites = b.pop / 4
	if b.elites < 2 {
		b.elites = 2
	}
	b.generations = 4 * opts.MaxIterations
	b.kappa = riskKappa

	k := opts.ModelSamples / 50
	if k < 12 {
		k = 12
	}
	if k > 48 {
		k = 48
	}
	b.r = rng.New(opts.Seed ^ 0x9e3779b97f4a7c15)
	b.samples = make([][]float64, k)
	for j := range b.samples {
		b.samples[j] = b.r.NormVector(make([]float64, p.NumStat()))
	}

	// Per-spec margin scales from the sample spread at the start, so the
	// soft-min compares specs in "sigmas" rather than raw (mixed) units.
	margins, err := b.marginsAt(ctx, e, d)
	if err != nil {
		return err
	}
	b.scale = make([]float64, p.NumSpecs())
	for i := range b.scale {
		var sum, sum2 float64
		for j := 0; j < k; j++ {
			m := margins[j][i]
			sum += m
			sum2 += m * m
		}
		mean := sum / float64(k)
		v := sum2/float64(k) - mean*mean
		if v < 0 {
			v = 0
		}
		b.scale[i] = math.Sqrt(v)
		if b.scale[i] < 1e-12 {
			b.scale[i] = math.Max(math.Abs(mean), 1)
		}
	}
	if p.Constraints != nil {
		c0, err := p.Constraints(d)
		if err != nil {
			return fmt.Errorf("cem: constraints at start: %w", err)
		}
		b.cscale = make([]float64, len(c0))
		for j, c := range c0 {
			b.cscale[j] = math.Max(math.Abs(c), 1e-9)
		}
	}

	b.mean = b.encode(e, d)
	b.sigma = make([]float64, p.NumDesign())
	for i := range b.sigma {
		b.sigma[i] = sigmaInit
	}
	b.best = append([]float64(nil), d...)
	b.bestScore = b.riskScore(margins)
	return nil
}

// Step runs one generation: sample a population, score it, narrow the
// distribution around the elites. When the budget is spent or the
// distribution has collapsed, the best candidate gets a full engine
// analysis as the final recorded state.
func (b *Backend) Step(ctx context.Context, e *core.Engine) (bool, error) {
	opts := e.Options()
	if b.gen >= b.generations || b.converged() {
		// Final full analysis at the best design found.
		it, _, _, err := e.Analyze(ctx, b.best, opts.Seed+uint64(b.gen)+1)
		if err != nil {
			return false, err
		}
		e.Logf("final: model yield %.4f, MC yield %.4f after %d generations",
			it.ModelYield, it.MCYield, b.gen)
		e.Record(it)
		e.Emit("accepted", 1, b.gen, it)
		return true, nil
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	gen := b.gen
	b.gen++

	n := len(b.mean)
	type cand struct {
		x     []float64
		d     []float64
		score float64
	}
	cands := make([]cand, b.pop)
	for c := range cands {
		x := make([]float64, n)
		for k := range x {
			x[k] = clamp01(b.mean[k] + b.sigma[k]*b.r.NormFloat64())
		}
		d := b.decode(e, x)
		s, err := b.scoreAt(ctx, e, d)
		if err != nil {
			return false, err
		}
		cands[c] = cand{x: x, d: d, score: s}
	}
	// Stable sort: ties resolve by draw order, keeping runs deterministic.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })

	for k := 0; k < n; k++ {
		var sum, sum2 float64
		for _, c := range cands[:b.elites] {
			sum += c.x[k]
			sum2 += c.x[k] * c.x[k]
		}
		em := sum / float64(b.elites)
		v := sum2/float64(b.elites) - em*em
		if v < 0 {
			v = 0
		}
		esd := math.Sqrt(v)
		b.mean[k] = (1-smooth)*b.mean[k] + smooth*em
		b.sigma[k] = (1-smooth)*b.sigma[k] + smooth*esd
		if b.sigma[k] < sigmaFloor {
			b.sigma[k] = sigmaFloor
		}
	}

	if top := cands[0]; top.score > b.bestScore {
		b.bestScore = top.score
		b.best = append([]float64(nil), top.d...)
		b.stall = 0
	} else {
		b.stall++
		if b.stall >= 2 {
			// Restart element: re-widen the distribution around the best
			// point instead of letting the sampler collapse onto a stall.
			copy(b.mean, b.encode(e, b.best))
			for k := range b.sigma {
				if b.sigma[k] < sigmaInit {
					b.sigma[k] = sigmaInit
				}
			}
			b.stall = 0
			e.Logf("generation %d: stalled; re-widening around best (score %.4f)", gen, b.bestScore)
		}
	}
	e.Logf("generation %d: best score %.4f (run best %.4f)", gen, cands[0].score, b.bestScore)
	return false, nil
}

// Final returns the best design found.
func (b *Backend) Final() []float64 { return b.best }

// Compile-time check: the backend participates in the predict-ahead
// pipeline (core.Options.Speculate).
var _ core.Speculator = (*Backend)(nil)
var _ core.SpecWarmer = (*Backend)(nil)

// Predict implements core.Speculator. A generation's population is a
// pure function of the sampler state and the rng stream, so forking the
// stream (never advancing it — the authoritative draws stay untouched)
// reproduces the next population exactly. When the next Step is the
// final full analysis instead, the single prediction is the best design,
// and SpeculateWarm replays the whole Analyze for it.
func (b *Backend) Predict(e *core.Engine) [][]float64 {
	if b.mean == nil {
		return nil
	}
	if b.gen >= b.generations || b.converged() {
		b.specFinal.Store(true)
		return [][]float64{append([]float64(nil), b.best...)}
	}
	b.specFinal.Store(false)
	rf := b.r.Fork()
	n := len(b.mean)
	preds := make([][]float64, b.pop)
	for c := range preds {
		x := make([]float64, n)
		for k := range x {
			x[k] = clamp01(b.mean[k] + b.sigma[k]*rf.NormFloat64())
		}
		preds[c] = b.decode(e, x)
	}
	return preds
}

// SpeculateWarm implements core.SpecWarmer: pre-simulate what scoreAt
// will need for one predicted candidate — the constraint shortcut first
// (an infeasible candidate costs nothing more), then the frozen
// sample × θ margin grid. The final-generation prediction instead warms
// the full Analyze schedule. All evaluation goes through the gated
// handle p; every error aborts silently.
func (b *Backend) SpeculateWarm(ctx context.Context, p *core.Problem, e *core.Engine, d []float64, seed uint64) {
	if b.specFinal.Load() {
		e.SpeculateAnalyze(ctx, p, d, seed)
		return
	}
	if p.Constraints != nil {
		cv, err := p.Constraints(d)
		if err != nil {
			return
		}
		for j, c := range cv {
			if c < 0 && -c/b.cscale[j] > 0 {
				return // scoreAt ranks by violation alone, no margin sims
			}
		}
	}
	for _, s := range b.samples {
		for _, th := range b.thetas {
			if ctx.Err() != nil {
				return
			}
			if _, err := p.Eval(d, s, th); err != nil {
				return
			}
		}
	}
}

func (b *Backend) converged() bool {
	for _, s := range b.sigma {
		if s >= sigmaDone {
			return false
		}
	}
	return true
}

// marginsAt evaluates the common sample set at d and returns, per
// sample, the per-spec margins (each spec judged at its worst-case θ).
func (b *Backend) marginsAt(ctx context.Context, e *core.Engine, d []float64) ([][]float64, error) {
	p := e.Problem()
	out := make([][]float64, len(b.samples))
	for j, s := range b.samples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := make([]float64, p.NumSpecs())
		for u, th := range b.thetas {
			vals, err := p.Eval(d, s, th)
			if err != nil {
				return nil, err
			}
			for i := range p.Specs {
				if b.thetaIdx[i] == u {
					row[i] = p.Specs[i].Margin(vals[i])
				}
			}
		}
		out[j] = row
	}
	return out, nil
}

// riskScore is the risk-sensitive soft-min objective
// −(1/κ)·log E[exp(−κ·min_i margin_i/scale_i)]: it rewards raising the
// worst normalized margin, with κ weighting bad samples more than a
// plain mean would (the GLOVA-style risk sensitivity).
func (b *Backend) riskScore(margins [][]float64) float64 {
	args := make([]float64, len(margins))
	maxArg := math.Inf(-1)
	for j, row := range margins {
		minM := math.Inf(1)
		for i, m := range row {
			if v := m / b.scale[i]; v < minM {
				minM = v
			}
		}
		args[j] = -b.kappa * minM
		if args[j] > maxArg {
			maxArg = args[j]
		}
	}
	var sum float64
	for _, a := range args {
		sum += math.Exp(a - maxArg)
	}
	return -(maxArg + math.Log(sum/float64(len(args)))) / b.kappa
}

// scoreAt scores one candidate. Infeasible candidates rank strictly
// below every feasible one, ordered by normalized violation, and cost
// only a constraint evaluation — the feasibility-guided shortcut.
func (b *Backend) scoreAt(ctx context.Context, e *core.Engine, d []float64) (float64, error) {
	p := e.Problem()
	if p.Constraints != nil {
		cv, err := p.Constraints(d)
		if err != nil {
			return 0, err
		}
		var viol float64
		for j, c := range cv {
			if c < 0 {
				viol += -c / b.cscale[j]
			}
		}
		if viol > 0 {
			return -100 - 50*viol, nil
		}
	}
	margins, err := b.marginsAt(ctx, e, d)
	if err != nil {
		return 0, err
	}
	return b.riskScore(margins), nil
}

// encode maps a design point into normalized [0,1] coordinates
// (logarithmic for log-scaled parameters).
func (b *Backend) encode(e *core.Engine, d []float64) []float64 {
	p := e.Problem()
	x := make([]float64, p.NumDesign())
	for k, prm := range p.Design {
		lo, hi := prm.Lo, prm.Hi
		if prm.LogScale && lo > 0 {
			x[k] = (math.Log(d[k]) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
		} else {
			x[k] = (d[k] - lo) / (hi - lo)
		}
		x[k] = clamp01(x[k])
	}
	return x
}

// decode maps normalized coordinates back into the design box.
func (b *Backend) decode(e *core.Engine, x []float64) []float64 {
	p := e.Problem()
	d := make([]float64, p.NumDesign())
	for k, prm := range p.Design {
		lo, hi := prm.Lo, prm.Hi
		if prm.LogScale && lo > 0 {
			d[k] = math.Exp(math.Log(lo) + x[k]*(math.Log(hi)-math.Log(lo)))
		} else {
			d[k] = lo + x[k]*(hi-lo)
		}
	}
	return p.ClampDesign(d)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func equalPoint(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
