package feasguided_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"specwise/internal/core"
	"specwise/internal/testprob"
)

func TestOptimizerAnalyticImprovesYield(t *testing.T) {
	p := testprob.Analytic()
	opt, err := core.NewOptimizer(p, core.Options{
		ModelSamples:  4000,
		VerifySamples: 400,
		MaxIterations: 2,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "feasguided" {
		t.Errorf("result algorithm = %q, want feasguided", res.Algorithm)
	}
	if len(res.Iterations) < 2 {
		t.Fatalf("expected at least 2 iteration records, got %d", len(res.Iterations))
	}
	initial := res.Iterations[0]
	final := res.Iterations[len(res.Iterations)-1]
	// Initial design d0=0 violates spec f at the nominal: yield ~0.
	if initial.MCYield > 0.05 {
		t.Errorf("initial MC yield = %v want ~0", initial.MCYield)
	}
	if final.MCYield < 0.95 {
		t.Errorf("final MC yield = %v want ~1", final.MCYield)
	}
	// The final design must respect the true constraint.
	d := res.FinalDesign
	if d[0]+d[1] > 8+1e-6 {
		t.Errorf("final design %v violates constraint", d)
	}
	if res.Simulations == 0 || res.ConstraintSims == 0 {
		t.Error("simulation counters not incremented")
	}
}

func TestOptimizerInfeasibleStartRecovers(t *testing.T) {
	p := testprob.Analytic()
	p.Design[0].Init = 9
	p.Design[1].Init = 9 // violates 8 − d0 − d1 >= 0 badly
	opt, err := core.NewOptimizer(p, core.Options{
		ModelSamples:  2000,
		VerifySamples: 200,
		MaxIterations: 1,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	d := res.Iterations[0].Design
	if d[0]+d[1] > 8+0.05 {
		t.Errorf("feasible start failed: d=%v", d)
	}
}

func TestOptimizerNoConstraintsAblation(t *testing.T) {
	p := testprob.Analytic()
	opt, err := core.NewOptimizer(p, core.Options{
		ModelSamples:  2000,
		VerifySamples: 100,
		MaxIterations: 1,
		NoConstraints: true,
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Without constraints the run must not spend constraint simulations.
	if res.ConstraintSims != 0 {
		t.Errorf("constraint sims = %d want 0", res.ConstraintSims)
	}
}

func TestOptimizerNominalLinearizationAblation(t *testing.T) {
	// A quadratic spec whose nominal gradient vanishes: the nominal-point
	// model must be blind (zero statistical gradient), while the
	// worst-case model sees the danger.
	optNom, err := core.NewOptimizer(testprob.Quad(), core.Options{
		ModelSamples: 3000, MaxIterations: 0, SkipVerify: true,
		LinearizeAtNominal: true, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	resNom, err := optNom.Run()
	if err != nil {
		t.Fatal(err)
	}
	optWC, err := core.NewOptimizer(testprob.Quad(), core.Options{
		ModelSamples: 3000, MaxIterations: 0, SkipVerify: true, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	resWC, err := optWC.Run()
	if err != nil {
		t.Fatal(err)
	}
	// True yield: P(d0 >= 0.25 (s0-s1)²) with s0−s1 ~ N(0,2):
	// P((s0−s1)² <= 4·d0) = P(|z| <= sqrt(2·d0)) ≈ 0.843 at d0=1.
	nomBad := resNom.Iterations[0].Specs[0].BadPerMille
	wcBad := resWC.Iterations[0].Specs[0].BadPerMille
	if nomBad > 10 {
		t.Errorf("nominal-point model sees %v‰ bad samples; it should be nearly blind", nomBad)
	}
	if wcBad < 100 || wcBad > 250 {
		t.Errorf("worst-case model bad samples = %v‰ want ≈157‰", wcBad)
	}
	// The worst-case run must have added a mirror model for the
	// symmetric quadratic.
	foundMirror := false
	for _, m := range resWC.Iterations[0].Models {
		if m.Mirror {
			foundMirror = true
		}
	}
	if !foundMirror {
		t.Error("no mirror model added for the symmetric quadratic spec")
	}
}

func TestOptimizerRecordsBeta(t *testing.T) {
	p := testprob.Analytic()
	opt, err := core.NewOptimizer(p, core.Options{
		ModelSamples: 1000, MaxIterations: 0, SkipVerify: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := res.Iterations[0].Specs
	// Spec f at d0=0 and θ_wc=+1: margin −2.1, sensitivity 0.5 ⇒ β = −4.2.
	if math.Abs(st[0].Beta+4.2) > 0.05 {
		t.Errorf("spec f beta = %v want −4.2", st[0].Beta)
	}
	// Spec g at d=0: margin ≈ 5.9, sensitivity 0.5 ⇒ β ≈ +11.8,
	// clamped at the default search radius (6).
	if st[1].Beta < 5.5 {
		t.Errorf("spec g beta = %v want large positive", st[1].Beta)
	}
}

// The whole optimizer must be bit-deterministic for a fixed seed,
// including the parallel Monte-Carlo verification.
func TestOptimizerDeterminism(t *testing.T) {
	run := func() *core.Result {
		p := testprob.Analytic()
		opt, err := core.NewOptimizer(p, core.Options{
			ModelSamples: 2000, VerifySamples: 300, MaxIterations: 2, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Iterations) != len(b.Iterations) {
		t.Fatalf("iteration counts differ: %d vs %d", len(a.Iterations), len(b.Iterations))
	}
	for i := range a.Iterations {
		if a.Iterations[i].MCYield != b.Iterations[i].MCYield {
			t.Errorf("iteration %d MC yield differs: %v vs %v",
				i, a.Iterations[i].MCYield, b.Iterations[i].MCYield)
		}
	}
	for k := range a.FinalDesign {
		if a.FinalDesign[k] != b.FinalDesign[k] {
			t.Errorf("final design differs at %d: %v vs %v", k, a.FinalDesign[k], b.FinalDesign[k])
		}
	}
	if a.Simulations != b.Simulations {
		t.Errorf("simulation counts differ: %d vs %d", a.Simulations, b.Simulations)
	}
}

// A deceptive concave problem: the linear model predicts unbounded gains
// from d0, the truth peaks at d0 = 2.5 and collapses beyond. The trust
// region must shrink after the first rejected step and the run must still
// end near the optimum.
func TestOptimizerTrustShrinkOnDeceptiveProblem(t *testing.T) {
	p := &core.Problem{
		Name:  "deceptive",
		Specs: []core.Spec{{Name: "m", Kind: core.GE, Bound: 0}},
		Design: []core.Param{
			{Name: "d0", Init: 0, Lo: -1, Hi: 10},
		},
		StatNames: []string{"s0"},
		Eval: func(d, s, th []float64) ([]float64, error) {
			x := d[0]
			return []float64{-1 + x - 0.2*x*x + 0.5*s[0]}, nil
		},
	}
	var log bytes.Buffer
	opt, err := core.NewOptimizer(p, core.Options{
		ModelSamples:  3000,
		VerifySamples: 400,
		MaxIterations: 4,
		Seed:          21,
		Log:           &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	final := res.Iterations[len(res.Iterations)-1].MCYield
	// True optimum: margin peaks at x = 2.5 with value 0.25 → β = 0.5 →
	// yield ≈ 69%. The run must get reasonably close despite the
	// deceptive model.
	if final < 0.5 {
		t.Errorf("final yield = %v want >= 0.5", final)
	}
	if d0 := res.FinalDesign[0]; d0 < 1 || d0 > 4.5 {
		t.Errorf("final d0 = %v want near the true optimum 2.5", d0)
	}
}

func TestOptimizerNoMirrorOption(t *testing.T) {
	opt, err := core.NewOptimizer(testprob.Quad(), core.Options{
		ModelSamples: 2000, MaxIterations: 0, SkipVerify: true,
		NoMirrorSpecs: true, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Iterations[0].Models {
		if m.Mirror {
			t.Error("mirror model built despite NoMirrorSpecs")
		}
	}
	if res.Iterations[0].MCYield != -1 {
		t.Error("SkipVerify must leave MCYield at -1")
	}
}

func TestOptimizerLHSOption(t *testing.T) {
	p := testprob.Analytic()
	opt, err := core.NewOptimizer(p, core.Options{
		ModelSamples: 2000, MaxIterations: 1, SkipVerify: true,
		LHS: true, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	last := res.Iterations[len(res.Iterations)-1]
	if last.ModelYield < 0.9 {
		t.Errorf("LHS run model yield = %v", last.ModelYield)
	}
}

// With RefineThetaPasses on, a spec whose worst operating point sits
// inside the range is judged at the refined point (a corner-only run
// would overestimate the margin).
func TestOptimizerRefineTheta(t *testing.T) {
	p := &core.Problem{
		Name:  "interior-theta",
		Specs: []core.Spec{{Name: "pm", Kind: core.GE, Bound: 0}},
		Design: []core.Param{
			{Name: "d0", Init: 0, Lo: -1, Hi: 1},
		},
		StatNames: []string{"s0"},
		Theta:     []core.OpRange{{Name: "t", Nominal: 0, Lo: -1, Hi: 1}},
		Eval: func(d, s, th []float64) ([]float64, error) {
			x := th[0] - 0.6
			return []float64{2*x*x - 0.5 + d[0] + 0.1*s[0]}, nil
		},
	}
	run := func(passes int) float64 {
		opt, err := core.NewOptimizer(p, core.Options{
			ModelSamples: 500, MaxIterations: 0, SkipVerify: true,
			Seed: 9, RefineThetaPasses: passes,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Iterations[0].Specs[0].NominalMargin
	}
	corners := run(0)
	refined := run(2)
	if refined >= corners {
		t.Errorf("refined margin %v must be below corner margin %v", refined, corners)
	}
	if math.Abs(refined+0.5) > 0.02 {
		t.Errorf("refined margin = %v want -0.5", refined)
	}
}

func TestRunContextCancelStopsRun(t *testing.T) {
	p := testprob.Analytic()
	slow := *p
	slow.Eval = func(d, s, th []float64) ([]float64, error) {
		time.Sleep(100 * time.Microsecond)
		return p.Eval(d, s, th)
	}
	opt, err := core.NewOptimizer(&slow, core.Options{
		ModelSamples: 500, VerifySamples: 20000, MaxIterations: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := opt.RunContext(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the run get in flight
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if took := time.Since(start); took > 5*time.Second {
			t.Errorf("cancellation latency %v", took)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext did not return after cancellation")
	}
}

func TestProgressHookReportsIterations(t *testing.T) {
	p := testprob.Analytic()
	var events []core.ProgressEvent
	res, err := core.NewAndRun(p, core.Options{
		ModelSamples: 1000, VerifySamples: 100, MaxIterations: 2, Seed: 7,
		Progress: func(e core.ProgressEvent) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	if events[0].Stage != "initial" || events[0].Iteration != 0 {
		t.Errorf("first event = %+v, want initial/0", events[0])
	}
	accepted := 0
	for _, e := range events {
		switch e.Stage {
		case "initial", "accepted", "rejected":
		default:
			t.Errorf("unknown stage %q", e.Stage)
		}
		if e.Stage == "accepted" {
			accepted++
		}
		if len(e.Design) != p.NumDesign() {
			t.Errorf("event design has %d entries, want %d", len(e.Design), p.NumDesign())
		}
	}
	// Every accepted event corresponds to one recorded iteration beyond
	// the initial state.
	if accepted != len(res.Iterations)-1 {
		t.Errorf("%d accepted events, %d recorded iterations", accepted, len(res.Iterations))
	}
	last := events[len(events)-1]
	if last.MCYield < 0 {
		t.Error("verification was on; last event must carry an MC yield")
	}
}
