// Package feasguided is the default search backend: the paper's
// feasibility-guided coordinate search (Fig. 6). Each step linearizes
// the feasibility region at the current point (Eq. 15), maximizes the
// sampled model-yield estimate by coordinate search inside the
// linearized region (Eqs. 17–20), pulls the optimum back into the true
// region with a simulation-based line search (Eq. 23), re-analyzes, and
// accepts or rejects on verified yield — shrinking the trust region on
// rejection. The trajectory is bit-identical to the pre-split
// core.Optimizer: same seed derivations, same stopping rules, enforced
// by the determinism suite and the jobs-layer golden-result test.
package feasguided

import (
	"context"
	"sync"
	"sync/atomic"

	"specwise/internal/coord"
	"specwise/internal/core"
	"specwise/internal/feasopt"
	"specwise/internal/linmodel"
	"specwise/internal/sched"
)

// Name is the backend's registry and wire identifier.
const Name = "feasguided"

func init() {
	core.RegisterBackend(Name, func() core.SearchBackend { return &Backend{} })
}

// Backend holds one run's search state: the current design, its
// analysis, and the trust-region/rejection bookkeeping of the
// accept/reject loop.
type Backend struct {
	d          []float64
	cur        *core.Iteration
	est        *linmodel.Estimator
	coordOpts  coord.Options
	accepted   int
	attempt    int
	rejections int
}

// Name implements core.SearchBackend.
func (b *Backend) Name() string { return Name }

// score ranks iteration states: verified yield when available,
// model-estimated yield otherwise.
func score(skipVerify bool, it *core.Iteration) float64 {
	if skipVerify {
		return it.ModelYield
	}
	return it.MCYield
}

// trustOf reads the effective trust factor from coordinate options.
func trustOf(o coord.Options) float64 {
	if o.TrustFactor <= 0 {
		return 2.5
	}
	return o.TrustFactor
}

// Init finds a feasible starting point (Sec. 5.5), analyzes it and
// records the initial iteration state.
func (b *Backend) Init(ctx context.Context, e *core.Engine) error {
	p := e.Problem()
	opts := e.Options()

	d := p.InitialDesign()
	if p.Constraints != nil {
		df, err := feasopt.FeasibleStart(p, d, 0)
		if err != nil {
			e.Logf("feasible start: %v (continuing from best effort)", err)
		}
		if df != nil {
			d = df
		}
	}
	b.coordOpts = opts.Coord

	cur, _, est, err := e.Analyze(ctx, d, opts.Seed)
	if err != nil {
		return err
	}
	e.Logf("initial: model yield %.4f, MC yield %.4f", cur.ModelYield, cur.MCYield)
	e.Record(cur)
	e.Emit("initial", 0, 0, cur)
	b.d, b.cur, b.est = d, cur, est
	return nil
}

// Step runs one linearize → coordinate-search → line-search → analyze
// cycle. The loop runs "until no further improvement of the yield": a
// step that loses yield is rejected; the design stays put, the trust
// region shrinks (the models were over-trusted) and the search reuses
// the current models.
func (b *Backend) Step(ctx context.Context, e *core.Engine) (bool, error) {
	opts := e.Options()
	if b.accepted >= opts.MaxIterations || b.attempt >= opts.MaxIterations+4 {
		return true, nil
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	attempt := b.attempt
	b.attempt++

	p := e.Problem()
	// Linearize the feasibility region at the current point (Eq. 15).
	var lc *coord.LinearConstraints
	if p.Constraints != nil {
		var err error
		lc, err = feasopt.Linearize(p, b.d, 0)
		if err != nil {
			return false, err
		}
	}

	// Maximize the sampled yield estimate by coordinate search.
	sr := coord.Search(e.DesignBox(), b.est, lc, b.d, b.coordOpts)
	e.Logf("attempt %d: coordinate search yield %.4f after %d passes", attempt, sr.Yield, sr.Passes)
	if !sr.Moved {
		e.Logf("attempt %d: no improving move found; stopping", attempt)
		return true, nil
	}

	// Pull the optimum back into the true feasibility region (Eq. 23).
	var dNew []float64
	if p.Constraints != nil {
		gamma, dn, err := feasopt.LineSearch(p, b.d, sr.D, 0)
		if err != nil {
			return false, err
		}
		e.Logf("attempt %d: line search gamma %.3f", attempt, gamma)
		dNew = dn
	} else {
		dNew = p.ClampDesign(sr.D)
	}

	next, _, estNew, err := e.Analyze(ctx, dNew, opts.Seed+uint64(attempt)+1)
	if err != nil {
		return false, err
	}
	e.Logf("attempt %d: model yield %.4f, MC yield %.4f", attempt, next.ModelYield, next.MCYield)

	if score(opts.SkipVerify, next) < score(opts.SkipVerify, b.cur)-0.02 {
		newTrust := trustOf(b.coordOpts) / 2
		b.rejections++
		e.Logf("attempt %d: yield regressed (%.4f < %.4f); trust -> %.2f",
			attempt, score(opts.SkipVerify, next), score(opts.SkipVerify, b.cur), newTrust)
		e.Emit("rejected", b.accepted, attempt+1, next)
		if newTrust < 1.2 || b.rejections > 3 {
			return true, nil
		}
		b.coordOpts.TrustFactor = newTrust
		if b.coordOpts.TrustFrac <= 0 {
			b.coordOpts.TrustFrac = 0.35
		}
		b.coordOpts.TrustFrac /= 2
		return false, nil
	}
	b.d = dNew
	b.cur, b.est = next, estNew
	e.Record(b.cur)
	b.accepted++
	e.Emit("accepted", b.accepted, attempt+1, b.cur)
	return false, nil
}

// Final returns the last accepted design.
func (b *Backend) Final() []float64 { return b.d }

// Compile-time check: the backend participates in the predict-ahead
// pipeline (core.Options.Speculate).
var _ core.Speculator = (*Backend)(nil)

// Predict implements core.Speculator: it derives the design point(s) the
// next Step will analyze, issuing the simulations it needs through the
// engine's prediction handle so they populate the cache for the upcoming
// authoritative replay. Predict runs synchronously on the authoritative
// goroutine, so the handle is ungated (foreground priority — the
// authoritative loop must never wait on the scheduler) and the warm
// fan-out below bounds itself with foreground caller-runs slots. The
// accept branch is an exact prediction — the step's linearize →
// coordinate-search → line-search pipeline is a pure function of the
// backend's (quiescent) state, so its simulations are all claimed by the
// next Step — and the serial finite-difference and bisection sections
// are pre-warmed in parallel, which is where the multi-core win comes
// from. The reject branch (shrunken trust region from the same point) is
// a lookahead for the step after next; its extra cost over the accept
// branch is a handful of line-search points (the linearization probes
// are shared), wasted only when the step is accepted.
func (b *Backend) Predict(e *core.Engine) [][]float64 {
	opts := e.Options()
	if b.accepted >= opts.MaxIterations || b.attempt >= opts.MaxIterations+4 {
		return nil // next Step exits on budget before analyzing anything
	}
	sp := e.SpecProblem()
	if sp == nil || b.est == nil {
		return nil
	}
	var preds [][]float64
	if d := b.predictStep(e, sp, b.coordOpts); d != nil {
		preds = append(preds, d)
	}
	// Reject-branch lookahead, mirroring Step's shrink rule: only worth
	// speculating when a rejection would actually continue the search.
	if newTrust := trustOf(b.coordOpts) / 2; newTrust >= 1.2 && b.rejections+1 <= 3 {
		co := b.coordOpts
		co.TrustFactor = newTrust
		if co.TrustFrac <= 0 {
			co.TrustFrac = 0.35
		}
		co.TrustFrac /= 2
		if d := b.predictStep(e, sp, co); d != nil && (len(preds) == 0 || !equalVec(d, preds[0])) {
			preds = append(preds, d)
		}
	}
	return preds
}

// predictStep replays one Step's candidate derivation through the
// prediction handle sp: linearize (probes pre-warmed in parallel),
// coordinate search (pure computation on the frozen estimator), line
// search (dyadic γ grid pre-warmed, then exact bisection replay).
// Returns nil when the step would stop or the replay fails.
func (b *Backend) predictStep(e *core.Engine, sp *core.Problem, co coord.Options) []float64 {
	var lc *coord.LinearConstraints
	if sp.Constraints != nil {
		warmConstraintProbes(sp, b.d)
		var err error
		lc, err = feasopt.Linearize(sp, b.d, 0)
		if err != nil {
			return nil
		}
	}
	sr := coord.Search(e.DesignBox(), b.est, lc, b.d, co)
	if !sr.Moved {
		return nil
	}
	if sp.Constraints == nil {
		return sp.ClampDesign(append([]float64(nil), sr.D...))
	}
	warmGammaGrid(sp, b.d, sr.D)
	_, dNew, err := feasopt.LineSearch(sp, b.d, sr.D, 0)
	if err != nil {
		return nil
	}
	return dNew
}

// warmConstraintProbes pre-simulates feasopt.Linearize's schedule at df —
// the point itself plus one forward-difference probe per design
// parameter (step 0.02 of the range, flipped at the upper bound) — in
// parallel; the serial Linearize that follows then hits the cache.
func warmConstraintProbes(sp *core.Problem, df []float64) {
	points := [][]float64{df}
	for k, prm := range sp.Design {
		h := 0.02 * (prm.Hi - prm.Lo)
		if h == 0 {
			continue
		}
		if df[k]+h > prm.Hi {
			h = -h
		}
		dd := append([]float64(nil), df...)
		dd[k] = df[k] + h
		points = append(points, dd)
	}
	warmPoints(sp, points)
}

// warmGammaGrid pre-simulates the first levels of the line search's
// bisection lattice — γ ∈ {1, 1/2, 1/4, 3/4, ...} along df → dstar — in
// parallel. The bisection visits one point per level, so most of the
// grid is claimed whichever way the search branches; deeper levels are
// left to the (cached, serial) replay.
func warmGammaGrid(sp *core.Problem, df, dstar []float64) {
	gammas := []float64{1, 0.5, 0.25, 0.75, 0.125, 0.375, 0.625, 0.875}
	points := make([][]float64, 0, len(gammas))
	for _, g := range gammas {
		d := make([]float64, len(df))
		for k := range d {
			d[k] = df[k] + g*(dstar[k]-df[k])
		}
		points = append(points, sp.ClampDesign(d))
	}
	warmPoints(sp, points)
}

// warmPoints evaluates the constraint function at every point, ignoring
// errors. The handle is ungated (Predict runs at foreground priority),
// so the fan-out bounds itself like every other foreground pool: the
// calling goroutine always works, and extras join only while the
// process-wide compute scheduler has free foreground slots — the
// authoritative goroutine never blocks on the scheduler.
func warmPoints(sp *core.Problem, points [][]float64) {
	if len(points) == 0 {
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(points) {
				return
			}
			_, _ = sp.Constraints(points[i])
		}
	}
	sch := sched.Default()
	var wg sync.WaitGroup
	for extra := 0; extra < len(points)-1 && sch.TryAcquire(); extra++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sch.Release()
			work()
		}()
	}
	work()
	wg.Wait()
}

// equalVec reports exact (bitwise) design-vector equality.
func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
