// Package feasguided is the default search backend: the paper's
// feasibility-guided coordinate search (Fig. 6). Each step linearizes
// the feasibility region at the current point (Eq. 15), maximizes the
// sampled model-yield estimate by coordinate search inside the
// linearized region (Eqs. 17–20), pulls the optimum back into the true
// region with a simulation-based line search (Eq. 23), re-analyzes, and
// accepts or rejects on verified yield — shrinking the trust region on
// rejection. The trajectory is bit-identical to the pre-split
// core.Optimizer: same seed derivations, same stopping rules, enforced
// by the determinism suite and the jobs-layer golden-result test.
package feasguided

import (
	"context"

	"specwise/internal/coord"
	"specwise/internal/core"
	"specwise/internal/feasopt"
	"specwise/internal/linmodel"
)

// Name is the backend's registry and wire identifier.
const Name = "feasguided"

func init() {
	core.RegisterBackend(Name, func() core.SearchBackend { return &Backend{} })
}

// Backend holds one run's search state: the current design, its
// analysis, and the trust-region/rejection bookkeeping of the
// accept/reject loop.
type Backend struct {
	d          []float64
	cur        *core.Iteration
	est        *linmodel.Estimator
	coordOpts  coord.Options
	accepted   int
	attempt    int
	rejections int
}

// Name implements core.SearchBackend.
func (b *Backend) Name() string { return Name }

// score ranks iteration states: verified yield when available,
// model-estimated yield otherwise.
func score(skipVerify bool, it *core.Iteration) float64 {
	if skipVerify {
		return it.ModelYield
	}
	return it.MCYield
}

// trustOf reads the effective trust factor from coordinate options.
func trustOf(o coord.Options) float64 {
	if o.TrustFactor <= 0 {
		return 2.5
	}
	return o.TrustFactor
}

// Init finds a feasible starting point (Sec. 5.5), analyzes it and
// records the initial iteration state.
func (b *Backend) Init(ctx context.Context, e *core.Engine) error {
	p := e.Problem()
	opts := e.Options()

	d := p.InitialDesign()
	if p.Constraints != nil {
		df, err := feasopt.FeasibleStart(p, d, 0)
		if err != nil {
			e.Logf("feasible start: %v (continuing from best effort)", err)
		}
		if df != nil {
			d = df
		}
	}
	b.coordOpts = opts.Coord

	cur, _, est, err := e.Analyze(ctx, d, opts.Seed)
	if err != nil {
		return err
	}
	e.Logf("initial: model yield %.4f, MC yield %.4f", cur.ModelYield, cur.MCYield)
	e.Record(cur)
	e.Emit("initial", 0, 0, cur)
	b.d, b.cur, b.est = d, cur, est
	return nil
}

// Step runs one linearize → coordinate-search → line-search → analyze
// cycle. The loop runs "until no further improvement of the yield": a
// step that loses yield is rejected; the design stays put, the trust
// region shrinks (the models were over-trusted) and the search reuses
// the current models.
func (b *Backend) Step(ctx context.Context, e *core.Engine) (bool, error) {
	opts := e.Options()
	if b.accepted >= opts.MaxIterations || b.attempt >= opts.MaxIterations+4 {
		return true, nil
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	attempt := b.attempt
	b.attempt++

	p := e.Problem()
	// Linearize the feasibility region at the current point (Eq. 15).
	var lc *coord.LinearConstraints
	if p.Constraints != nil {
		var err error
		lc, err = feasopt.Linearize(p, b.d, 0)
		if err != nil {
			return false, err
		}
	}

	// Maximize the sampled yield estimate by coordinate search.
	sr := coord.Search(e.DesignBox(), b.est, lc, b.d, b.coordOpts)
	e.Logf("attempt %d: coordinate search yield %.4f after %d passes", attempt, sr.Yield, sr.Passes)
	if !sr.Moved {
		e.Logf("attempt %d: no improving move found; stopping", attempt)
		return true, nil
	}

	// Pull the optimum back into the true feasibility region (Eq. 23).
	var dNew []float64
	if p.Constraints != nil {
		gamma, dn, err := feasopt.LineSearch(p, b.d, sr.D, 0)
		if err != nil {
			return false, err
		}
		e.Logf("attempt %d: line search gamma %.3f", attempt, gamma)
		dNew = dn
	} else {
		dNew = p.ClampDesign(sr.D)
	}

	next, _, estNew, err := e.Analyze(ctx, dNew, opts.Seed+uint64(attempt)+1)
	if err != nil {
		return false, err
	}
	e.Logf("attempt %d: model yield %.4f, MC yield %.4f", attempt, next.ModelYield, next.MCYield)

	if score(opts.SkipVerify, next) < score(opts.SkipVerify, b.cur)-0.02 {
		newTrust := trustOf(b.coordOpts) / 2
		b.rejections++
		e.Logf("attempt %d: yield regressed (%.4f < %.4f); trust -> %.2f",
			attempt, score(opts.SkipVerify, next), score(opts.SkipVerify, b.cur), newTrust)
		e.Emit("rejected", b.accepted, attempt+1, next)
		if newTrust < 1.2 || b.rejections > 3 {
			return true, nil
		}
		b.coordOpts.TrustFactor = newTrust
		if b.coordOpts.TrustFrac <= 0 {
			b.coordOpts.TrustFrac = 0.35
		}
		b.coordOpts.TrustFrac /= 2
		return false, nil
	}
	b.d = dNew
	b.cur, b.est = next, estNew
	e.Record(b.cur)
	b.accepted++
	e.Emit("accepted", b.accepted, attempt+1, b.cur)
	return false, nil
}

// Final returns the last accepted design.
func (b *Backend) Final() []float64 { return b.d }
