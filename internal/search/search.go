// Package search ties the pluggable search backends together: importing
// it (even blank) registers every built-in backend with the core
// registry. The engine half of the optimizer lives in internal/core;
// each strategy lives in its own subpackage and self-registers via
// core.RegisterBackend, so adding a backend means adding a subpackage
// and listing it here — no engine changes.
package search

import (
	"specwise/internal/core"

	// Built-in backends; each init registers itself.
	_ "specwise/internal/search/cem"
	_ "specwise/internal/search/feasguided"
)

// Names returns the registered backend names, sorted.
func Names() []string { return core.Backends() }
