// Package server exposes the jobs subsystem over an HTTP JSON API — the
// service face of the yield optimizer. Endpoints:
//
//	POST   /v1/jobs             submit a job (202; body echoes id + state)
//	GET    /v1/jobs             list job statuses, newest first
//	GET    /v1/jobs/{id}        status + live progress trace
//	GET    /v1/jobs/{id}/result final report (409 until the job is done)
//	DELETE /v1/jobs/{id}        cancel (queued: immediate; running: via context)
//	GET    /healthz             liveness probe
//	GET    /metrics             plain-text counters (Prometheus exposition format)
//
// Request body for POST /v1/jobs (see internal/jobs for the full schema):
//
//	{"kind": "optimize", "circuit": "ota",
//	 "options": {"modelSamples": 2000, "verifySamples": 200,
//	             "maxIterations": 2, "seed": 7}}
//
// or, with an inline problem definition instead of a built-in circuit:
//
//	{"kind": "verify", "spec": { ...yieldspec JSON with inline netlist... }}
package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"specwise/internal/jobs"
)

// Server is the HTTP face of a jobs.Manager.
type Server struct {
	manager *jobs.Manager
	mux     *http.ServeMux
}

// New builds the handler tree over a running manager.
func New(m *jobs.Manager) *Server {
	s := &Server{manager: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON sends v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone if this fails
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// submitResponse acknowledges a submission.
type submitResponse struct {
	ID     string     `json:"id"`
	State  jobs.State `json:"state"`
	Cached bool       `json:"cached"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req jobs.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	job, err := s.manager.Submit(req)
	switch {
	case err == nil:
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	code := http.StatusAccepted
	if st := job.State(); st.Terminal() {
		code = http.StatusOK // cache hit: the result is ready right now
	}
	writeJSON(w, code, submitResponse{ID: job.ID(), State: job.State(), Cached: job.Status().Cached})
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.Jobs())
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	res, done := job.Result()
	if done {
		writeJSON(w, http.StatusOK, res)
		return
	}
	switch st := job.State(); st {
	case jobs.StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: "+job.Err())
	case jobs.StateCanceled:
		writeError(w, http.StatusConflict, "job was canceled")
	default:
		writeError(w, http.StatusConflict, "job not finished (state "+string(st)+")")
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := s.manager.Cancel(id)
	if errors.Is(err, jobs.ErrNotFound) {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	job, _ := s.manager.Get(id)
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n")) //nolint:errcheck
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.manager.Metrics().WriteText(w)
}
