// Package server exposes the jobs subsystem over an HTTP JSON API — the
// service face of the yield optimizer. Client endpoints:
//
//	POST   /v1/jobs             submit a job (202; body echoes id + state;
//	                            429 + Retry-After when the lane is full)
//	GET    /v1/jobs             list job statuses, newest first
//	GET    /v1/jobs/{id}        status + live progress trace
//	GET    /v1/jobs/{id}/events server-sent-events stream: recorded progress
//	                            replays, live updates tail until terminal
//	GET    /v1/jobs/{id}/result final report (409 until the job is done)
//	DELETE /v1/jobs/{id}        cancel (queued: immediate; running: via context/lease)
//	POST   /v1/batches          submit a batch of jobs atomically (202; 200 when all cached)
//	GET    /v1/batches          list batch statuses, newest first
//	GET    /v1/batches/{id}     per-member states + aggregate effort rollup
//	DELETE /v1/batches/{id}     cancel every non-terminal member
//	GET    /healthz             liveness probe
//	GET    /metrics             plain-text counters (Prometheus exposition format)
//
// Worker-pull endpoints (the remote lease protocol of internal/jobs;
// guarded by a bearer token when the server is built with
// WithWorkerToken):
//
//	POST /v1/worker/claim               {"worker": "name", "lane": "verify"?} → 200 lease | 204 no work
//	POST /v1/worker/jobs/{id}/heartbeat {"lease": "..."} → 200 {"deadline": ...}
//	POST /v1/worker/jobs/{id}/result    {"lease": "...", "result": {...}}
//	POST /v1/worker/jobs/{id}/fail      {"lease": "...", "error": "..."}
//
// A lost lease (expired, canceled or superseded) answers 409 so the
// worker abandons the job; an unknown job answers 404.
//
// Request body for POST /v1/jobs (see internal/jobs for the full schema):
//
//	{"kind": "optimize", "circuit": "ota",
//	 "options": {"modelSamples": 2000, "verifySamples": 200,
//	             "maxIterations": 2, "seed": 7}}
//
// or, with an inline problem definition instead of a built-in circuit:
//
//	{"kind": "verify", "spec": { ...yieldspec JSON with inline netlist... }}
package server

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"specwise/internal/jobs"
)

// Request-body caps (see decodeBody): submissions may carry inline
// netlists, so their cap is generous; lease-protocol bodies are tiny
// except for result posts, which carry a full report.
const (
	maxJobBody    = 32 << 20 // one submission, possibly with an inline spec
	maxBatchBody  = 64 << 20 // a whole batch of submissions
	maxResultBody = 16 << 20 // a worker's result report
	maxLeaseBody  = 1 << 20  // claim, heartbeat and fail posts
)

// Server is the HTTP face of a jobs.Manager.
type Server struct {
	manager      *jobs.Manager
	mux          *http.ServeMux
	workerToken  string
	sseHeartbeat time.Duration
}

// Option customizes a Server.
type Option func(*Server)

// WithWorkerToken requires `Authorization: Bearer <token>` on every
// /v1/worker endpoint. An empty token leaves the worker API open (local
// development and tests).
func WithWorkerToken(token string) Option {
	return func(s *Server) { s.workerToken = token }
}

// WithSSEHeartbeat sets the idle-comment cadence on the
// /v1/jobs/{id}/events stream (default 15s; tests shorten it).
func WithSSEHeartbeat(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.sseHeartbeat = d
		}
	}
}

// New builds the handler tree over a running manager.
func New(m *jobs.Manager, opts ...Option) *Server {
	s := &Server{manager: m, mux: http.NewServeMux(), sseHeartbeat: 15 * time.Second}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("POST /v1/batches", s.submitBatch)
	s.mux.HandleFunc("GET /v1/batches", s.listBatches)
	s.mux.HandleFunc("GET /v1/batches/{id}", s.batchStatus)
	s.mux.HandleFunc("DELETE /v1/batches/{id}", s.cancelBatch)
	s.mux.HandleFunc("POST /v1/worker/claim", s.workerAuth(s.workerClaim))
	s.mux.HandleFunc("POST /v1/worker/jobs/{id}/heartbeat", s.workerAuth(s.workerHeartbeat))
	s.mux.HandleFunc("POST /v1/worker/jobs/{id}/result", s.workerAuth(s.workerResult))
	s.mux.HandleFunc("POST /v1/worker/jobs/{id}/fail", s.workerAuth(s.workerFail))
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON sends v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone if this fails
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// decodeBody parses a JSON request body under a size cap, answering 413
// for bodies past the cap (a multi-GB inline spec must not OOM the
// daemon) and 400 for malformed JSON. strict rejects unknown fields —
// on for client submissions, off for the worker protocol so newer
// workers can extend their posts. Returns false once the response is
// written.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, strict bool, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	if strict {
		dec.DisallowUnknownFields()
	}
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return false
	}
	return true
}

// writeQueueFull answers an admission-control rejection: 429 with a
// Retry-After computed from the lane's recent drain rate. A plain
// ErrQueueFull without lane context (not produced today) falls back to
// one second.
func writeQueueFull(w http.ResponseWriter, err error) {
	secs := 1
	var qf *jobs.QueueFullError
	if errors.As(err, &qf) {
		if s := int(math.Ceil(qf.RetryAfter.Seconds())); s > secs {
			secs = s
		}
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, err.Error())
}

// submitResponse acknowledges a submission.
type submitResponse struct {
	ID     string     `json:"id"`
	State  jobs.State `json:"state"`
	Cached bool       `json:"cached"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req jobs.Request
	if !decodeBody(w, r, maxJobBody, true, &req) {
		return
	}
	job, err := s.manager.Submit(req)
	switch {
	case err == nil:
	case errors.Is(err, jobs.ErrQueueFull):
		writeQueueFull(w, err)
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	code := http.StatusAccepted
	if st := job.State(); st.Terminal() {
		code = http.StatusOK // cache hit: the result is ready right now
	}
	writeJSON(w, code, submitResponse{ID: job.ID(), State: job.State(), Cached: job.Status().Cached})
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.Jobs())
}

// batchRequest is the POST /v1/batches body: the member submissions in
// order. Duplicated requests are deduplicated server-side and share one
// job (and one result).
type batchRequest struct {
	Jobs []jobs.Request `json:"jobs"`
}

func (s *Server) submitBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeBody(w, r, maxBatchBody, true, &req) {
		return
	}
	batch, err := s.manager.SubmitBatch(req.Jobs)
	switch {
	case err == nil:
	case errors.Is(err, jobs.ErrQueueFull):
		writeQueueFull(w, err)
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, err := s.manager.BatchStatus(batch.ID())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK // every member answered from the result cache
	}
	writeJSON(w, code, st)
}

func (s *Server) listBatches(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.Batches())
}

func (s *Server) batchStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.manager.BatchStatus(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "no such batch")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) cancelBatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.manager.CancelBatch(id); err != nil {
		writeError(w, http.StatusNotFound, "no such batch")
		return
	}
	st, err := s.manager.BatchStatus(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "no such batch")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// writeSSE emits one server-sent event frame. The id field is the
// replay cursor (the progress index) and is omitted on state frames,
// which are snapshots rather than log entries.
func writeSSE(w io.Writer, id, event string, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		return
	}
	if id != "" {
		fmt.Fprintf(w, "id: %s\n", id) //nolint:errcheck
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, blob) //nolint:errcheck
}

// events streams a job's progress trace as server-sent events: every
// recorded progress entry is replayed as a "progress" event (id = its
// index in the trace, so Last-Event-ID resumes without duplicates),
// state transitions are emitted as "state" events with the progress
// trace stripped, and the stream ends after the terminal state event.
// Idle streams carry ": heartbeat" comments so intermediaries do not
// reap the connection.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	next := 0
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if n, err := strconv.Atoi(last); err == nil && n >= 0 {
			next = n + 1
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	hb := time.NewTicker(s.sseHeartbeat)
	defer hb.Stop()
	lastState := jobs.State("")
	for {
		// Arm the change channel before snapshotting: a change that lands
		// between Status and the select closes the already-held channel,
		// so no wakeup is lost.
		ch := job.Changed()
		st := job.Status()
		for ; next < len(st.Progress); next++ {
			writeSSE(w, strconv.Itoa(next), "progress", st.Progress[next])
		}
		if st.State != lastState {
			lastState = st.State
			slim := st
			slim.Progress = nil
			writeSSE(w, "", "state", slim)
		}
		fl.Flush()
		if st.State.Terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		case <-hb.C:
			io.WriteString(w, ": heartbeat\n\n") //nolint:errcheck
			fl.Flush()
		}
	}
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	res, done := job.Result()
	if done {
		writeJSON(w, http.StatusOK, res)
		return
	}
	switch st := job.State(); st {
	case jobs.StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: "+job.Err())
	case jobs.StateCanceled:
		writeError(w, http.StatusConflict, "job was canceled")
	default:
		writeError(w, http.StatusConflict, "job not finished (state "+string(st)+")")
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	// The status comes from Cancel itself: a follow-up Get would race the
	// retention sweep, which may evict the now-terminal job between the
	// two calls and leave a nil job to dereference.
	st, err := s.manager.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n")) //nolint:errcheck
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.manager.Metrics().WriteText(w)
}

// workerAuth gates the worker-pull endpoints behind the bearer token,
// when one is configured.
func (s *Server) workerAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.workerToken != "" {
			got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(s.workerToken)) != 1 {
				writeError(w, http.StatusUnauthorized, "invalid or missing worker token")
				return
			}
		}
		h(w, r)
	}
}

// claimRequest identifies the polling worker. Lane optionally restricts
// the claim to one priority lane ("verify" or "optimize"); empty claims
// from any lane under the weighted round-robin.
type claimRequest struct {
	Worker string `json:"worker"`
	Lane   string `json:"lane,omitempty"`
}

func (s *Server) workerClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if !decodeBody(w, r, maxLeaseBody, false, &req) {
		return
	}
	if strings.TrimSpace(req.Worker) == "" {
		writeError(w, http.StatusBadRequest, "worker name required")
		return
	}
	lease, err := s.manager.ClaimLane(req.Worker, req.Lane)
	switch {
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
	case lease == nil:
		w.WriteHeader(http.StatusNoContent) // nothing queued; poll again
	default:
		writeJSON(w, http.StatusOK, lease)
	}
}

// leaseBody carries the lease proof on heartbeat/result/fail posts.
type leaseBody struct {
	Lease  string       `json:"lease"`
	Result *jobs.Result `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// heartbeatResponse returns the extended lease deadline.
type heartbeatResponse struct {
	Deadline time.Time `json:"deadline"`
}

// decodeLease parses the common worker POST body under the given cap.
func decodeLease(w http.ResponseWriter, r *http.Request, limit int64) (leaseBody, bool) {
	var body leaseBody
	if !decodeBody(w, r, limit, false, &body) {
		return body, false
	}
	if body.Lease == "" {
		writeError(w, http.StatusBadRequest, "lease id required")
		return body, false
	}
	return body, true
}

// writeLeaseErr maps lease-layer errors onto status codes.
func writeLeaseErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, "no such job")
	case errors.Is(err, jobs.ErrLeaseLost):
		writeError(w, http.StatusConflict, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) workerHeartbeat(w http.ResponseWriter, r *http.Request) {
	body, ok := decodeLease(w, r, maxLeaseBody)
	if !ok {
		return
	}
	deadline, err := s.manager.Heartbeat(r.PathValue("id"), body.Lease)
	if err != nil {
		writeLeaseErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, heartbeatResponse{Deadline: deadline})
}

func (s *Server) workerResult(w http.ResponseWriter, r *http.Request) {
	body, ok := decodeLease(w, r, maxResultBody)
	if !ok {
		return
	}
	if body.Result == nil {
		writeError(w, http.StatusBadRequest, "result payload required")
		return
	}
	if err := s.manager.Complete(r.PathValue("id"), body.Lease, body.Result); err != nil {
		writeLeaseErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": string(jobs.StateDone)})
}

func (s *Server) workerFail(w http.ResponseWriter, r *http.Request) {
	body, ok := decodeLease(w, r, maxLeaseBody)
	if !ok {
		return
	}
	if body.Error == "" {
		body.Error = "unspecified worker failure"
	}
	if err := s.manager.Fail(r.PathValue("id"), body.Lease, body.Error); err != nil {
		writeLeaseErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": string(jobs.StateFailed)})
}
