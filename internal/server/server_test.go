package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"specwise"
	"specwise/internal/jobs"
	"specwise/internal/server"
)

func newTestServer(t *testing.T, cfg jobs.Config) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	m := jobs.New(cfg)
	ts := httptest.NewServer(server.New(m))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
	})
	return ts, m
}

func postJob(t *testing.T, ts *httptest.Server, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

// pollDone polls the status endpoint until the job is terminal.
func pollDone(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var st jobs.Status
	for time.Now().Before(deadline) {
		code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
		if code != http.StatusOK {
			t.Fatalf("status code %d for job %s", code, id)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal after %v (state %s)", id, timeout, st.State)
	return st
}

const otaBody = `{"circuit": "ota",
  "options": {"modelSamples": 500, "verifySamples": 60, "maxIterations": 1, "seed": 7}}`

// The flagship end-to-end test: submit the OTA circuit, poll to
// completion, and check the served yield against a direct library call
// with the same seed — the service must be a transparent wrapper.
func TestEndToEndOTAMatchesDirectRun(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 2})

	code, ack := postJob(t, ts, otaBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %v", code, ack)
	}
	id, _ := ack["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", ack)
	}

	st := pollDone(t, ts, id, 60*time.Second)
	if st.State != jobs.StateDone {
		t.Fatalf("job ended %s (error %q)", st.State, st.Error)
	}
	if len(st.Progress) == 0 {
		t.Error("status carries no progress trace")
	}

	var res jobs.Result
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: code %d", code)
	}
	if res.Optimization == nil {
		t.Fatal("no optimization payload")
	}
	iters := res.Optimization.Iterations
	if len(iters) == 0 {
		t.Fatal("no iterations in result")
	}
	last := iters[len(iters)-1]
	if last.MCYield == nil {
		t.Fatal("no verified yield in final iteration")
	}

	direct, err := specwise.Optimize(specwise.OTA(), specwise.Options{
		ModelSamples: 500, VerifySamples: 60, MaxIterations: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Iterations[len(direct.Iterations)-1].MCYield
	if len(iters) != len(direct.Iterations) {
		t.Errorf("served %d iterations, direct run has %d", len(iters), len(direct.Iterations))
	}
	if *last.MCYield != want {
		t.Errorf("served yield %v != direct-run yield %v (same seed)", *last.MCYield, want)
	}
	for k, dv := range res.Optimization.FinalDesign {
		if dv.Value != direct.FinalDesign[k] {
			t.Errorf("final design %s: served %v, direct %v", dv.Name, dv.Value, direct.FinalDesign[k])
		}
	}
}

func TestResubmissionServedFromCache(t *testing.T) {
	ts, m := newTestServer(t, jobs.Config{Workers: 2})

	code, ack := postJob(t, ts, otaBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	pollDone(t, ts, ack["id"].(string), 60*time.Second)

	code, ack2 := postJob(t, ts, otaBody)
	if code != http.StatusOK {
		t.Errorf("cache hit: code %d, want 200", code)
	}
	if cached, _ := ack2["cached"].(bool); !cached {
		t.Error("resubmission not flagged cached")
	}
	if got := m.Metrics().CacheHits(); got != 1 {
		t.Errorf("cache-hit counter = %d, want 1", got)
	}

	// The result is available immediately, no polling needed.
	var res jobs.Result
	if code := getJSON(t, ts.URL+"/v1/jobs/"+ack2["id"].(string)+"/result", &res); code != http.StatusOK {
		t.Errorf("cached result: code %d", code)
	}

	// And the metrics endpoint reports the hit.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "specwised_cache_hits_total 1") {
		t.Errorf("metrics missing cache-hit line:\n%s", body)
	}
}

func TestCancelRunningJobOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 1})

	// A deliberately long job: many verification samples and iterations.
	code, ack := postJob(t, ts, `{"circuit": "ota",
	  "options": {"modelSamples": 2000, "verifySamples": 50000, "maxIterations": 6, "seed": 9}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	id := ack["id"].(string)

	deadline := time.Now().Add(10 * time.Second)
	var st jobs.Status
	for time.Now().Before(deadline) {
		getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
		if st.State == jobs.StateRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != jobs.StateRunning {
		t.Fatalf("job never started (state %s)", st.State)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: code %d", resp.StatusCode)
	}

	st = pollDone(t, ts, id, 30*time.Second)
	if st.State != jobs.StateCanceled {
		t.Fatalf("state after cancel = %s", st.State)
	}

	// The result endpoint must refuse.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result of canceled job: code %d, want 409", resp.StatusCode)
	}
}

func TestInlineSpecVerifyJob(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 1})
	spec := `{
	  "name": "cs-amp",
	  "netlist": "common source amplifier\n.model nch NMOS VT0=0.71 KP=120u LAMBDA=0.06\nVDD vdd 0 3.3\nVIN g 0 1.0 AC 1\nM1 d g 0 0 nch W=20u L=2u\nRL vdd d 47k\nCL d 0 1p\n",
	  "testbench": {"out": "d", "drive": "VIN", "supply": "VDD", "acStart": 1000, "acStop": 1e9},
	  "design": [{"name": "W1", "unit": "um", "init": 20, "lo": 2, "hi": 200, "log": true,
	              "targets": [{"device": "M1", "param": "W", "scale": 1e-6}]}],
	  "statistical": {"globals": [{"name": "g.dVthN", "kind": "vth", "polarity": 1, "sigma": 0.015}]},
	  "specs": [{"name": "A0", "measure": "a0_db", "kind": "ge", "bound": 17, "unit": "dB"}],
	  "theta": [{"name": "VDD", "nominal": 3.3, "lo": 3.0, "hi": 3.6, "apply": "source:VDD"}]
	}`
	body := fmt.Sprintf(`{"kind": "verify", "spec": %s, "options": {"verifySamples": 100, "seed": 5}}`, spec)
	code, ack := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %v", code, ack)
	}
	st := pollDone(t, ts, ack["id"].(string), 60*time.Second)
	if st.State != jobs.StateDone {
		t.Fatalf("verify job ended %s (error %q)", st.State, st.Error)
	}
	var res jobs.Result
	getJSON(t, ts.URL+"/v1/jobs/"+ack["id"].(string)+"/result", &res)
	if res.Verification == nil || res.Verification.Samples != 100 {
		t.Fatalf("bad verification payload: %+v", res.Verification)
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 1})

	// Unknown job.
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: code %d, want 404", resp.StatusCode)
	}

	// Malformed and invalid submissions.
	for _, body := range []string{
		`{not json`,
		`{}`,
		`{"circuit": "nonexistent"}`,
		`{"circuit": "ota", "unknownField": 1}`,
	} {
		code, _ := postJob(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("body %q: code %d, want 400", body, code)
		}
	}

	// Health check.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(b, []byte("ok\n")) {
		t.Errorf("healthz: code %d body %q", resp.StatusCode, b)
	}
}
