package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"specwise/internal/jobs"
	"specwise/internal/server"
	"specwise/internal/worker"
)

const testToken = "hunter2"

// newRemoteServer builds a remote-only manager (zero local workers)
// behind a token-gated httptest server.
func newRemoteServer(t *testing.T, cfg jobs.Config) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	cfg.RemoteOnly = true
	m := jobs.New(cfg)
	ts := httptest.NewServer(server.New(m, server.WithWorkerToken(testToken)))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
	})
	return ts, m
}

// startWorkers launches n in-process "remote" pull-workers against the
// server and returns a stop function that waits them out.
func startWorkers(t *testing.T, ts *httptest.Server, n int) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		name := "w" + string(rune('1'+i))
		go func() {
			defer wg.Done()
			err := worker.Run(ctx, worker.Config{
				Server:  ts.URL,
				Token:   testToken,
				Name:    name,
				Poll:    10 * time.Millisecond,
				Backoff: 10 * time.Millisecond,
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("worker %s exited: %v", name, err)
			}
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// workerPost sends one authenticated worker-protocol POST and returns
// the status code plus decoded body (when 200 with out != nil).
func workerPost(t *testing.T, ts *httptest.Server, path, token, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return resp.StatusCode
}

// The acceptance test for the pull protocol: a manager with ZERO local
// workers completes an OTA optimize job through two remote pull-workers
// over httptest, and the result envelope is bit-identical to the same
// request run on the in-process pool — remote and local pools are
// interchangeable.
func TestRemotePoolMatchesLocalPool(t *testing.T) {
	ts, _ := newRemoteServer(t, jobs.Config{LeaseTTL: 2 * time.Second})
	stop := startWorkers(t, ts, 2)
	defer stop()

	code, ack := postJob(t, ts, otaBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %v", code, ack)
	}
	id := ack["id"].(string)
	st := pollDone(t, ts, id, 120*time.Second)
	if st.State != jobs.StateDone {
		t.Fatalf("remote job ended %s (error %q)", st.State, st.Error)
	}
	if st.Worker != "w1" && st.Worker != "w2" {
		t.Errorf("job not attributed to a remote worker: %+v", st)
	}
	var remote jobs.Result
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &remote); code != http.StatusOK {
		t.Fatalf("result: code %d", code)
	}

	// The same request on a plain in-process pool.
	local := jobs.New(jobs.Config{Workers: 2})
	defer local.Close()
	var req jobs.Request
	if err := json.Unmarshal([]byte(otaBody), &req); err != nil {
		t.Fatal(err)
	}
	job, err := local.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for job.State() != jobs.StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("local job stuck in %s", job.State())
		}
		time.Sleep(10 * time.Millisecond)
	}
	localRes, _ := job.Result()

	// Byte-equal after zeroing the wall-clock-dependent perf fields.
	remote.Optimization.StripVolatile()
	localRes.Optimization.StripVolatile()
	a, _ := json.Marshal(remote)
	b, _ := json.Marshal(localRes)
	if string(a) != string(b) {
		t.Errorf("remote and local results differ:\nremote: %s\nlocal:  %s", a, b)
	}

	// The per-worker metric shards surfaced in /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "specwised_remote_worker_claims_total") {
		t.Errorf("metrics missing per-worker claim shard:\n%s", body)
	}
	if !strings.Contains(string(body), "specwised_jobs_tracked") {
		t.Errorf("metrics missing jobs_tracked gauge:\n%s", body)
	}
}

// A worker that claims a job and dies: the lease expires on the TTL,
// the job is requeued, a live worker completes it exactly once, and the
// dead worker's late post is refused with 409.
func TestKilledWorkerLeaseExpiresAndRequeues(t *testing.T) {
	ts, m := newRemoteServer(t, jobs.Config{LeaseTTL: 200 * time.Millisecond, MaxRetries: 3})

	code, ack := postJob(t, ts, `{"kind": "verify", "circuit": "ota",
	  "options": {"verifySamples": 40, "seed": 3}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	id := ack["id"].(string)

	// The doomed worker claims the job over raw HTTP and never returns.
	var dead jobs.Lease
	if code := workerPost(t, ts, "/v1/worker/claim", testToken, `{"worker":"doomed"}`, &dead); code != http.StatusOK {
		t.Fatalf("claim: code %d", code)
	}
	if dead.JobID != id {
		t.Fatalf("claimed %s, want %s", dead.JobID, id)
	}

	// A live worker shows up; it cannot get the job until the lease
	// expires, then completes it.
	stop := startWorkers(t, ts, 1)
	defer stop()

	st := pollDone(t, ts, id, 60*time.Second)
	if st.State != jobs.StateDone {
		t.Fatalf("job ended %s (error %q)", st.State, st.Error)
	}
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (doomed claim + live run)", st.Attempts)
	}
	if st.Worker != "w1" {
		t.Errorf("completing worker = %q, want w1", st.Worker)
	}

	// The doomed worker comes back from the dead: its post must be
	// refused — the job completed exactly once.
	code = workerPost(t, ts, "/v1/worker/jobs/"+id+"/result", testToken,
		`{"lease":"`+dead.LeaseID+`","result":{"kind":"verify"}}`, nil)
	if code != http.StatusConflict {
		t.Errorf("stale result post: code %d, want 409", code)
	}
	if got := m.Metrics().Done(); got != 1 {
		t.Errorf("done counter = %d, want exactly 1", got)
	}
	if got := m.Metrics().LeaseExpiries(); got < 1 {
		t.Errorf("lease expiries = %d, want >= 1", got)
	}
	if got := m.Metrics().Requeued(); got < 1 {
		t.Errorf("requeued = %d, want >= 1", got)
	}
}

// The /v1/worker endpoints are gated by the bearer token; the client
// API stays open.
func TestWorkerEndpointsRequireToken(t *testing.T) {
	ts, _ := newRemoteServer(t, jobs.Config{})

	for _, token := range []string{"", "wrong-token"} {
		if code := workerPost(t, ts, "/v1/worker/claim", token, `{"worker":"w"}`, nil); code != http.StatusUnauthorized {
			t.Errorf("claim with token %q: code %d, want 401", token, code)
		}
		if code := workerPost(t, ts, "/v1/worker/jobs/job-000001/heartbeat", token, `{"lease":"x"}`, nil); code != http.StatusUnauthorized {
			t.Errorf("heartbeat with token %q: code %d, want 401", token, code)
		}
	}
	// The right token passes auth (and finds an empty queue).
	if code := workerPost(t, ts, "/v1/worker/claim", testToken, `{"worker":"w"}`, nil); code != http.StatusNoContent {
		t.Errorf("authorized claim on empty queue: code %d, want 204", code)
	}
	// A claim without a worker name is a 400, not a silent lease.
	if code := workerPost(t, ts, "/v1/worker/claim", testToken, `{}`, nil); code != http.StatusBadRequest {
		t.Errorf("claim without name: code %d, want 400", code)
	}
	// The client API needs no token.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz with worker auth on: code %d", resp.StatusCode)
	}
}
