package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"specwise/internal/jobs"
)

// cemBody requests the cross-entropy backend by name; everything else
// mirrors the quick OTA request the other e2e tests use.
const cemBody = `{"circuit": "ota",
  "options": {"algorithm": "cem", "modelSamples": 400, "verifySamples": 40, "maxIterations": 1, "seed": 9}}`

// runJob posts body, polls to done and returns the result envelope.
func runJob(t *testing.T, ts *httptest.Server, body string) *jobs.Result {
	t.Helper()
	code, ack := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %v", code, ack)
	}
	id := ack["id"].(string)
	st := pollDone(t, ts, id, 120*time.Second)
	if st.State != jobs.StateDone {
		t.Fatalf("job ended %s (error %q)", st.State, st.Error)
	}
	var res jobs.Result
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: code %d", code)
	}
	return &res
}

// TestCEMJobEndToEnd drives an "algorithm": "cem" job through the full
// HTTP API on both worker pools — the in-process pool and a remote
// pull-worker — and checks the two produce the same algorithm-stamped
// result: the backend abstraction holds wherever a job runs.
func TestCEMJobEndToEnd(t *testing.T) {
	local, _ := newTestServer(t, jobs.Config{Workers: 2})
	localRes := runJob(t, local, cemBody)
	if localRes.Optimization == nil || localRes.Optimization.Algorithm != "cem" {
		t.Fatalf("local result not stamped with cem: %+v", localRes.Optimization)
	}

	remote, _ := newRemoteServer(t, jobs.Config{LeaseTTL: 2 * time.Second})
	stop := startWorkers(t, remote, 1)
	defer stop()
	remoteRes := runJob(t, remote, cemBody)
	if remoteRes.Optimization == nil || remoteRes.Optimization.Algorithm != "cem" {
		t.Fatalf("remote result not stamped with cem: %+v", remoteRes.Optimization)
	}

	// CEM obeys the same determinism contract as the default backend, so
	// the pools must agree byte for byte once the wall-clock perf fields
	// are zeroed.
	localRes.Optimization.StripVolatile()
	remoteRes.Optimization.StripVolatile()
	a, _ := json.Marshal(localRes)
	b, _ := json.Marshal(remoteRes)
	if string(a) != string(b) {
		t.Errorf("cem results differ between pools:\nlocal:  %s\nremote: %s", a, b)
	}
	if !strings.Contains(string(a), `"algorithm":"cem"`) {
		t.Errorf("serialized result missing the algorithm field: %s", a)
	}
}

// TestMetricsPerAlgorithmSeries checks the /metrics exposition carries
// the per-backend job, iteration and simulation series after jobs run
// under different algorithms.
func TestMetricsPerAlgorithmSeries(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 2})

	if res := runJob(t, ts, otaBody); res.Optimization.Algorithm != "feasguided" {
		t.Fatalf("default job algorithm = %q, want feasguided", res.Optimization.Algorithm)
	}
	runJob(t, ts, cemBody)

	// An unregistered algorithm is refused at submit, not at run time.
	code, body := postJob(t, ts, `{"circuit": "ota", "options": {"algorithm": "annealing"}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: code %d body %v", code, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`specwised_jobs_done_total{algorithm="cem"} 1`,
		`specwised_jobs_done_total{algorithm="feasguided"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	for _, re := range []string{
		`specwised_algorithm_iterations_total\{algorithm="cem"\} [1-9]`,
		`specwised_algorithm_iterations_total\{algorithm="feasguided"\} [1-9]`,
		`specwised_algorithm_simulations_total\{algorithm="cem"\} [1-9]`,
		`specwised_algorithm_simulations_total\{algorithm="feasguided"\} [1-9]`,
	} {
		if !regexp.MustCompile(re).Match(text) {
			t.Errorf("metrics missing series %s:\n%s", re, text)
		}
	}
}
