package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"specwise/internal/jobs"
)

func postBatch(t *testing.T, ts *httptest.Server, body string) (int, jobs.BatchStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobs.BatchStatus
	if resp.StatusCode < 400 {
		decodeJSON(t, resp, &st)
	}
	return resp.StatusCode, st
}

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

// pollBatch polls GET /v1/batches/{id} until the batch is terminal.
func pollBatch(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) jobs.BatchStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var st jobs.BatchStatus
	for time.Now().Before(deadline) {
		if code := getJSON(t, ts.URL+"/v1/batches/"+id, &st); code != http.StatusOK {
			t.Fatalf("status code %d for batch %s", code, id)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("batch %s not terminal after %v (state %s)", id, timeout, st.State)
	return st
}

const sweepBody = `{"jobs": [
  {"kind": "verify", "circuit": "ota", "options": {"verifySamples": 30, "seed": 1}},
  {"kind": "verify", "circuit": "ota", "options": {"verifySamples": 30, "seed": 2}},
  {"kind": "verify", "circuit": "ota", "options": {"verifySamples": 30, "seed": 1}}
]}`

// The batch happy path over HTTP: submit a small sweep with one
// duplicated member, poll the combined status to completion, read a
// member back through the per-job API, and see the batch in the list.
func TestBatchOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 2, SharedEvalCache: true})

	code, st := postBatch(t, ts, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/batches = %d, want 202", code)
	}
	if st.ID == "" || st.Unique != 2 || st.Deduped != 1 || len(st.Members) != 3 {
		t.Fatalf("submit response: %+v", st)
	}
	if st.Members[0].ID != st.Members[2].ID {
		t.Errorf("duplicated member got its own job: %s vs %s", st.Members[0].ID, st.Members[2].ID)
	}

	final := pollBatch(t, ts, st.ID, 60*time.Second)
	if final.State != jobs.StateDone || final.Done != 2 {
		t.Fatalf("final batch: %+v", final)
	}
	if final.Effort.VerifyEvals <= 0 {
		t.Errorf("effort rollup empty: %+v", final.Effort)
	}

	// Members are ordinary jobs under /v1/jobs/{id}.
	var js jobs.Status
	if code := getJSON(t, ts.URL+"/v1/jobs/"+final.Members[0].ID, &js); code != http.StatusOK {
		t.Fatalf("member status code %d", code)
	}
	if js.Batch != st.ID {
		t.Errorf("member status batch = %q, want %q", js.Batch, st.ID)
	}

	var list []jobs.BatchStatus
	if code := getJSON(t, ts.URL+"/v1/batches", &list); code != http.StatusOK {
		t.Fatalf("list code %d", code)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("batch list: %+v", list)
	}

	// Resubmitting the same sweep is answered wholly from the result
	// cache: 200, terminal at submit time.
	code, again := postBatch(t, ts, sweepBody)
	if code != http.StatusOK {
		t.Errorf("all-cached resubmission = %d, want 200", code)
	}
	if again.State != jobs.StateDone || again.Cached != 2 {
		t.Errorf("all-cached resubmission status: %+v", again)
	}
}

// DELETE /v1/batches/{id} cancels the queued members.
func TestBatchCancelOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{RemoteOnly: true})
	code, st := postBatch(t, ts, sweepBody)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/batches/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d, want 200", resp.StatusCode)
	}
	final := pollBatch(t, ts, st.ID, 5*time.Second)
	if final.State != jobs.StateCanceled || final.Canceled != 2 {
		t.Fatalf("batch after cancel: %+v", final)
	}
}

func TestBatchErrorPathsOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{RemoteOnly: true, QueueSize: 1})

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"empty member list", `{"jobs": []}`, http.StatusBadRequest},
		{"malformed member", `{"jobs": [{"kind": "frobnicate", "circuit": "ota"}]}`, http.StatusBadRequest},
		{"unknown field", `{"batch": []}`, http.StatusBadRequest},
		{"over capacity", `{"jobs": [
			{"circuit": "ota", "options": {"seed": 1}},
			{"circuit": "ota", "options": {"seed": 2}}
		]}`, http.StatusTooManyRequests},
	} {
		if code, _ := postBatch(t, ts, tc.body); code != tc.want {
			t.Errorf("%s: code = %d, want %d", tc.name, code, tc.want)
		}
	}

	var st jobs.BatchStatus
	if code := getJSON(t, ts.URL+"/v1/batches/batch-000099", &st); code != http.StatusNotFound {
		t.Errorf("unknown batch GET = %d, want 404", code)
	}
}
