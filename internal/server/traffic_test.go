package server_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"specwise/internal/jobs"
	"specwise/internal/server"
)

// A full lane answers 429 with a computed Retry-After, and the other
// lane keeps accepting: admission control is per lane, not global.
func TestSubmitQueueFullRetryAfter(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{RemoteOnly: true, QueueSize: 1})

	if code, _ := postJob(t, ts, otaBody); code != http.StatusAccepted {
		t.Fatalf("first submit: code %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(
		`{"circuit": "ota", "options": {"modelSamples": 500, "verifySamples": 60, "maxIterations": 1, "seed": 8}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: code %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}

	// The verify lane has its own queue: still open for business.
	if code, _ := postJob(t, ts, `{"kind": "verify", "circuit": "ota",
	  "options": {"verifySamples": 60, "seed": 7}}`); code != http.StatusAccepted {
		t.Errorf("verify submit while optimize lane full: code %d, want 202", code)
	}
}

// sseEvent is one parsed server-sent event frame.
type sseEvent struct {
	id, event, data string
}

// readSSE parses frames (and counts heartbeat comments) off the wire
// until the stream closes or maxEvents frames arrived.
func readSSE(t *testing.T, r *bufio.Reader, maxEvents int, onFrame func(sseEvent) bool) (frames []sseEvent, heartbeats int) {
	t.Helper()
	var cur sseEvent
	for len(frames) < maxEvents {
		line, err := r.ReadString('\n')
		if err != nil {
			return frames, heartbeats
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.event != "" {
				frames = append(frames, cur)
				if onFrame != nil && !onFrame(cur) {
					return frames, heartbeats
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, ": heartbeat"):
			heartbeats++
		case strings.HasPrefix(line, "id: "):
			cur.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		}
	}
	return frames, heartbeats
}

// The SSE stream replays the progress trace, tails live updates, and
// ends with the terminal state event.
func TestEventsStreamToTerminal(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{Workers: 1})

	code, ack := postJob(t, ts, otaBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	id := ack["id"].(string)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}

	frames, _ := readSSE(t, bufio.NewReader(resp.Body), 10000, nil)
	var progress int
	var lastState string
	var lastProgressID int
	for _, f := range frames {
		switch f.event {
		case "progress":
			// IDs are the replay cursor: strictly sequential from 0.
			n, err := strconv.Atoi(f.id)
			if err != nil || (progress > 0 && n != lastProgressID+1) || (progress == 0 && n != 0) {
				t.Fatalf("progress id %q after %d (last %d)", f.id, progress, lastProgressID)
			}
			lastProgressID = n
			progress++
		case "state":
			var st jobs.Status
			if err := json.Unmarshal([]byte(f.data), &st); err != nil {
				t.Fatalf("state frame %q: %v", f.data, err)
			}
			if len(st.Progress) != 0 {
				t.Error("state frame carries the progress trace (should be stripped)")
			}
			lastState = string(st.State)
		}
	}
	if progress == 0 {
		t.Error("stream carried no progress events")
	}
	if lastState != string(jobs.StateDone) {
		t.Errorf("final state event = %q, want done (frames: %d)", lastState, len(frames))
	}

	// Resuming with Last-Event-ID replays only the tail.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	req.Header.Set("Last-Event-ID", strconv.Itoa(lastProgressID-1))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	tail, _ := readSSE(t, bufio.NewReader(resp2.Body), 10000, nil)
	var tailProgress []string
	for _, f := range tail {
		if f.event == "progress" {
			tailProgress = append(tailProgress, f.id)
		}
	}
	if len(tailProgress) != 1 || tailProgress[0] != strconv.Itoa(lastProgressID) {
		t.Errorf("resumed stream replayed ids %v, want just [%d]", tailProgress, lastProgressID)
	}
}

// Idle streams carry heartbeat comments so proxies keep the connection,
// and a cancellation terminates the stream with a canceled state event.
func TestEventsHeartbeatAndCancel(t *testing.T) {
	m := jobs.New(jobs.Config{RemoteOnly: true})
	ts := httptest.NewServer(server.New(m, server.WithSSEHeartbeat(20*time.Millisecond)))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
	})

	code, ack := postJob(t, ts, otaBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	id := ack["id"].(string)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)

	// The job is queued forever (no workers): after the initial state
	// frame the stream idles on heartbeats.
	deadline := time.Now().Add(5 * time.Second)
	heartbeats := 0
	sawQueued := false
	for heartbeats == 0 || !sawQueued {
		if time.Now().After(deadline) {
			t.Fatalf("no heartbeat on idle stream (queued=%v, hb=%d)", sawQueued, heartbeats)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream closed early: %v", err)
		}
		if strings.HasPrefix(line, ": heartbeat") {
			heartbeats++
		}
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"state":"queued"`) {
			sawQueued = true
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	// The watcher wakes on the cancel, emits the terminal state and ends
	// the stream.
	sawCanceled := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"state":"canceled"`) {
			sawCanceled = true
		}
	}
	if !sawCanceled {
		t.Error("stream ended without a canceled state event")
	}
}

func TestEventsUnknownJob(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Config{RemoteOnly: true})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("events for unknown job: code %d, want 404", resp.StatusCode)
	}
}

// Oversized request bodies bounce with 413 instead of being buffered.
func TestOversizedBodyRejected(t *testing.T) {
	ts, _ := newRemoteServer(t, jobs.Config{})
	body := `{"worker":"` + strings.Repeat("a", 1<<20) + `"}`
	code := workerPost(t, ts, "/v1/worker/claim", testToken, body, nil)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized claim body: code %d, want 413", code)
	}
	// A sane claim still works.
	if code := workerPost(t, ts, "/v1/worker/claim", testToken, `{"worker":"w1"}`, nil); code != http.StatusNoContent {
		t.Errorf("claim on empty queue: code %d, want 204", code)
	}
}

// Workers can restrict claims to one lane over the wire; the lease
// echoes the lane.
func TestClaimLaneOverHTTP(t *testing.T) {
	ts, _ := newRemoteServer(t, jobs.Config{})

	if code, _ := postJob(t, ts, otaBody); code != http.StatusAccepted {
		t.Fatal("optimize submit failed")
	}
	code, ack := postJob(t, ts, `{"kind": "verify", "circuit": "ota",
	  "options": {"verifySamples": 60, "seed": 7}}`)
	if code != http.StatusAccepted {
		t.Fatal("verify submit failed")
	}
	verifyID := ack["id"].(string)

	var lease jobs.Lease
	if code := workerPost(t, ts, "/v1/worker/claim", testToken,
		`{"worker":"w1","lane":"verify"}`, &lease); code != http.StatusOK {
		t.Fatalf("lane claim: code %d", code)
	}
	if lease.JobID != verifyID || lease.Lane != jobs.LaneVerify {
		t.Fatalf("lane-filtered lease = %+v, want verify job %s", lease, verifyID)
	}
	// Lane drained: 204 even though the optimize lane has work.
	if code := workerPost(t, ts, "/v1/worker/claim", testToken,
		`{"worker":"w1","lane":"verify"}`, nil); code != http.StatusNoContent {
		t.Errorf("claim on drained lane: code %d, want 204", code)
	}
	if code := workerPost(t, ts, "/v1/worker/claim", testToken,
		`{"worker":"w1","lane":"bulk"}`, nil); code != http.StatusBadRequest {
		t.Errorf("bogus lane claim: code %d, want 400", code)
	}
}
