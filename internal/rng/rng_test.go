package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	v := r.Uint64()
	if v == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of range: %v", u)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		if r.Float64Open() == 0 {
			t.Fatal("Float64Open returned 0")
		}
	}
}

func TestUniformMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		u := r.Float64()
		sum += u
		sq += u * u
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v", mean)
	}
	if math.Abs(variance-1.0/12.0) > 0.01 {
		t.Errorf("uniform variance = %v", variance)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sq, cube, quart := 0.0, 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sq += x * x
		cube += x * x * x
		quart += x * x * x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
	if skew := cube / n; math.Abs(skew) > 0.05 {
		t.Errorf("normal skewness = %v", skew)
	}
	if kurt := quart / n; math.Abs(kurt-3) > 0.15 {
		t.Errorf("normal kurtosis = %v", kurt)
	}
}

func TestNormVector(t *testing.T) {
	r := New(17)
	v := r.NormVector(make([]float64, 64))
	if len(v) != 64 {
		t.Fatalf("len = %d", len(v))
	}
	allZero := true
	for _, x := range v {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("NormVector returned all zeros")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(19)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) only hit %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

// Property: Perm always returns a permutation of [0, n).
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Chi-squared goodness of fit on the standard normal in 8 bins.
func TestNormalChiSquared(t *testing.T) {
	r := New(23)
	edges := []float64{-1.5, -1, -0.5, 0, 0.5, 1, 1.5}
	// Bin probabilities from the normal CDF.
	cdf := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	probs := make([]float64, len(edges)+1)
	prev := 0.0
	for i, e := range edges {
		c := cdf(e)
		probs[i] = c - prev
		prev = c
	}
	probs[len(edges)] = 1 - prev

	const n = 100000
	counts := make([]float64, len(probs))
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		b := len(edges)
		for j, e := range edges {
			if x < e {
				b = j
				break
			}
		}
		counts[b]++
	}
	chi2 := 0.0
	for i, p := range probs {
		exp := p * n
		d := counts[i] - exp
		chi2 += d * d / exp
	}
	// 7 degrees of freedom; 99.9th percentile is ~24.3.
	if chi2 > 24.3 {
		t.Errorf("chi-squared = %v, normal variates look non-normal", chi2)
	}
}
