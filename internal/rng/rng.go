// Package rng provides a small, deterministic pseudo-random number
// generator for the Monte-Carlo machinery. Every experiment in this
// repository is seeded explicitly so that all paper tables regenerate
// bit-for-bit; the generator is xoshiro256++, which is fast, has a 256-bit
// state, and passes BigCrush.
package rng

import "math"

// Rand is a xoshiro256++ generator with Gaussian output via the polar
// Box–Muller method. The zero value is not usable; construct with New.
type Rand struct {
	s     [4]uint64
	gauss float64 // cached second Box–Muller variate
	has   bool
}

// New returns a generator seeded from the given value via SplitMix64, which
// guarantees a well-mixed nonzero state for any seed, including 0.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Fork returns an independent value copy of the generator, including the
// cached Box–Muller variate, so the fork produces exactly the stream the
// original will. Speculative prediction uses forks to pre-compute future
// draws without advancing — or racing on — the authoritative state.
func (r *Rand) Fork() *Rand {
	c := *r
	return &c
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform variate in (0, 1), never exactly 0, which
// keeps it safe as input to inverse-CDF transforms.
func (r *Rand) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// NormFloat64 returns a standard normal variate (mean 0, variance 1) using
// the polar Box–Muller method.
func (r *Rand) NormFloat64() float64 {
	if r.has {
		r.has = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.has = true
		return u * f
	}
}

// NormVector fills dst with independent standard normal variates and
// returns it; this is one sample of the paper's normalized ŝ ~ N(0, I).
func (r *Rand) NormVector(dst []float64) []float64 {
	for i := range dst {
		dst[i] = r.NormFloat64()
	}
	return dst
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
