// Package sched is the process-wide compute scheduler: one weighted
// semaphore shared by every parallel evaluation pool — AC-sweep workers,
// finite-difference gradient workers, Monte-Carlo verification workers —
// and the speculative evaluation pipeline. It exists so those pools,
// which nest freely (an AC sweep fans out inside a gradient probe that
// fans out inside a worst-case search), can together size themselves to
// the machine instead of multiplying worker counts, and so speculative
// work can soak up idle capacity without ever degrading the
// authoritative run.
//
// Two priority classes share the capacity:
//
//   - Foreground (the authoritative trajectory) acquires extra-worker
//     slots with the non-blocking TryAcquire. A denied TryAcquire is
//     never an error — every pool follows the caller-runs pattern, where
//     the requesting goroutine processes work itself and extra workers
//     are pure bonus — so the foreground never waits on the scheduler
//     and nested pools cannot deadlock.
//
//   - Speculation acquires with the blocking AcquireSpec, one slot per
//     simulator call, and is admitted only while total occupancy leaves
//     the reserve free. Slots are held for a single evaluation, so
//     speculative work drains out of the foreground's way within one
//     simulator call of the foreground ramping up; foreground admission
//     deliberately ignores speculative holds (transient oversubscription
//     bounded by the speculative capacity beats priority inversion).
//
// The classes must never mix on one goroutine: a goroutine that blocks
// in AcquireSpec while holding a foreground slot pins capacity that
// AcquireSpec itself is waiting on, and enough such goroutines freeze
// speculation entirely while starving authoritative TryAcquire. Pools
// that can run on both sides of the divide therefore check IsSpec on
// their context: under a speculative context they spawn their extras
// ungated (the extras hold no slots — actual simulator concurrency is
// already bounded by the speculation gate inside the evaluation handle),
// and only foreground work takes TryAcquire slots.
//
// Determinism is untouched by construction: the scheduler only decides
// how many goroutines run concurrently, and every pool it gates writes
// results by index (or through the bit-exact evaluation cache), so
// results are identical for any capacity, including zero.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sched is one weighted compute semaphore. The zero value is not usable;
// construct with New or use the process-wide Default.
type Sched struct {
	mu   sync.Mutex
	cond *sync.Cond

	capacity int // total slots (foreground extras + speculation)
	specCap  int // ceiling on concurrently held speculative slots

	fg          int // foreground extra-worker slots held
	spec        int // speculative slots held
	specWaiting int // goroutines blocked in AcquireSpec

	fgGranted   atomic.Int64
	fgDenied    atomic.Int64
	specGranted atomic.Int64
}

// Stats is a snapshot of the scheduler gauges and counters, feeding the
// daemon's /metrics series.
type Stats struct {
	// Capacity and SpecCapacity are the configured slot ceilings.
	Capacity     int
	SpecCapacity int
	// FgInUse / SpecInUse are the currently held slots per class.
	FgInUse   int
	SpecInUse int
	// SpecWaiting is the speculation queue depth: goroutines blocked in
	// AcquireSpec right now.
	SpecWaiting int
	// FgGranted / FgDenied count TryAcquire outcomes; SpecGranted counts
	// speculative slot grants.
	FgGranted   int64
	FgDenied    int64
	SpecGranted int64
}

// New returns a scheduler with the given total capacity (values < 1 are
// raised to 1). The speculative ceiling is capacity-1 — one slot is
// reserved for the (ungated, caller-runs) authoritative goroutine — but
// never below 1, so speculation stays functional on single-core boxes
// where it is pure opt-in overhead.
func New(capacity int) *Sched {
	if capacity < 1 {
		capacity = 1
	}
	specCap := capacity - 1
	if specCap < 1 {
		specCap = 1
	}
	s := &Sched{capacity: capacity, specCap: specCap}
	s.cond = sync.NewCond(&s.mu)
	return s
}

var (
	defaultOnce sync.Once
	defaultSch  *Sched
)

// Default returns the process-wide scheduler, sized to GOMAXPROCS at
// first use. Every built-in pool gates its extra workers through it.
func Default() *Sched {
	defaultOnce.Do(func() {
		defaultSch = New(runtime.GOMAXPROCS(0))
	})
	return defaultSch
}

// specCtxKey marks contexts that belong to the speculative pipeline.
type specCtxKey struct{}

// WithSpec marks ctx (and everything derived from it) as speculative:
// work under it runs at speculation priority, and pools that spawn
// extra workers must consult IsSpec and spawn them ungated instead of
// taking foreground TryAcquire slots. This is what keeps the class
// divide intact across nested pools — a speculative goroutine that held
// a foreground slot while blocking in AcquireSpec would pin the very
// capacity AcquireSpec waits on.
func WithSpec(ctx context.Context) context.Context {
	return context.WithValue(ctx, specCtxKey{}, true)
}

// IsSpec reports whether ctx was marked speculative by WithSpec.
func IsSpec(ctx context.Context) bool {
	v, _ := ctx.Value(specCtxKey{}).(bool)
	return v
}

// TryAcquire requests one foreground extra-worker slot without blocking.
// Callers must follow the caller-runs pattern: the requesting goroutine
// does work itself regardless, extra workers only join while slots are
// free. Speculative holds are deliberately not counted against
// foreground admission — the foreground must never lose parallelism to
// speculation — so occupancy can transiently exceed capacity by at most
// the speculative ceiling for the tail of one simulator call.
func (s *Sched) TryAcquire() bool {
	s.mu.Lock()
	if s.fg >= s.capacity {
		s.mu.Unlock()
		s.fgDenied.Add(1)
		return false
	}
	s.fg++
	s.mu.Unlock()
	s.fgGranted.Add(1)
	return true
}

// Release returns a TryAcquire slot.
func (s *Sched) Release() {
	s.mu.Lock()
	s.fg--
	s.mu.Unlock()
	s.cond.Broadcast()
}

// AcquireSpec blocks until a speculative slot is available — total
// occupancy below capacity and speculative holds below the speculative
// ceiling — or ctx is cancelled. A cancelled ctx is refused even when a
// slot is immediately free, so a dead speculation round can never launch
// one more simulator call. Hold the slot for one simulator call, then
// ReleaseSpec: per-evaluation holds are what lets the foreground reclaim
// the machine within one call.
func (s *Sched) AcquireSpec(ctx context.Context) error {
	s.mu.Lock()
	for {
		if err := ctx.Err(); err != nil {
			s.mu.Unlock()
			return err
		}
		if s.spec < s.specCap && s.fg+s.spec < s.capacity {
			break
		}
		s.specWaiting++
		// Wake the cond wait when ctx dies so cancellation cannot strand
		// a waiter; Release/ReleaseSpec broadcast on every slot return.
		stop := context.AfterFunc(ctx, func() { s.cond.Broadcast() })
		s.cond.Wait()
		stop()
		s.specWaiting--
	}
	s.spec++
	s.mu.Unlock()
	s.specGranted.Add(1)
	return nil
}

// ReleaseSpec returns a speculative slot.
func (s *Sched) ReleaseSpec() {
	s.mu.Lock()
	s.spec--
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Stats snapshots the gauges and counters.
func (s *Sched) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Capacity:     s.capacity,
		SpecCapacity: s.specCap,
		FgInUse:      s.fg,
		SpecInUse:    s.spec,
		SpecWaiting:  s.specWaiting,
	}
	s.mu.Unlock()
	st.FgGranted = s.fgGranted.Load()
	st.FgDenied = s.fgDenied.Load()
	st.SpecGranted = s.specGranted.Load()
	return st
}
