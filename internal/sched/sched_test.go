package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTryAcquireCapacity(t *testing.T) {
	s := New(2)
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("expected two foreground slots")
	}
	if s.TryAcquire() {
		t.Fatal("expected denial past capacity")
	}
	st := s.Stats()
	if st.FgInUse != 2 || st.FgDenied != 1 || st.FgGranted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("expected slot after release")
	}
	s.Release()
	s.Release()
	if st := s.Stats(); st.FgInUse != 0 {
		t.Fatalf("FgInUse = %d after releases", st.FgInUse)
	}
}

func TestSpecCeilingAndReserve(t *testing.T) {
	s := New(4) // specCap = 3
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := s.AcquireSpec(ctx); err != nil {
			t.Fatalf("spec slot %d: %v", i, err)
		}
	}
	// The 4th speculative slot must block (ceiling), even though total
	// occupancy is below capacity.
	blocked := make(chan error, 1)
	go func() {
		cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		defer cancel()
		blocked <- s.AcquireSpec(cctx)
	}()
	if err := <-blocked; err == nil {
		t.Fatal("expected 4th speculative acquire to block until timeout")
	}
	s.ReleaseSpec()
	s.ReleaseSpec()
	s.ReleaseSpec()
}

func TestSpecYieldsToForeground(t *testing.T) {
	s := New(2) // specCap = 1
	// Foreground saturates capacity: speculation must wait.
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("foreground slots")
	}
	got := make(chan error, 1)
	go func() { got <- s.AcquireSpec(context.Background()) }()
	// Give the waiter time to park, then check the queue-depth gauge.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().SpecWaiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("speculative waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-got:
		t.Fatalf("speculation admitted under full foreground load: %v", err)
	default:
	}
	s.Release()
	s.Release()
	if err := <-got; err != nil {
		t.Fatalf("speculation after foreground drained: %v", err)
	}
	s.ReleaseSpec()
}

func TestAcquireSpecCancellation(t *testing.T) {
	s := New(1)
	if err := s.AcquireSpec(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- s.AcquireSpec(ctx) }()
	for s.Stats().SpecWaiting == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	s.ReleaseSpec()
}

// TestAcquireSpecCancelledAtEntry: a dead context is refused even when a
// slot is immediately free — a cancelled speculation round must not get
// to launch one more simulator call.
func TestAcquireSpecCancelledAtEntry(t *testing.T) {
	s := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.AcquireSpec(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := s.Stats(); st.SpecInUse != 0 || st.SpecGranted != 0 {
		t.Fatalf("cancelled acquire touched slots: %+v", st)
	}
}

func TestSpecContextMark(t *testing.T) {
	ctx := context.Background()
	if IsSpec(ctx) {
		t.Fatal("plain context reported speculative")
	}
	marked := WithSpec(ctx)
	if !IsSpec(marked) {
		t.Fatal("WithSpec context not reported speculative")
	}
	// The mark survives derivation — nested pools see it through the
	// cancellation contexts layered on top.
	derived, cancel := context.WithCancel(marked)
	defer cancel()
	if !IsSpec(derived) {
		t.Fatal("derived context lost the speculative mark")
	}
}

func TestConcurrentStress(t *testing.T) {
	s := New(3)
	var fgHeld, specHeld, maxSpec atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if s.TryAcquire() {
					fgHeld.Add(1)
					fgHeld.Add(-1)
					s.Release()
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := s.AcquireSpec(ctx); err != nil {
					t.Error(err)
					return
				}
				n := specHeld.Add(1)
				for {
					old := maxSpec.Load()
					if n <= old || maxSpec.CompareAndSwap(old, n) {
						break
					}
				}
				specHeld.Add(-1)
				s.ReleaseSpec()
			}
		}()
	}
	wg.Wait()
	if got := maxSpec.Load(); got > 2 {
		t.Fatalf("speculative holds exceeded ceiling: %d > 2", got)
	}
	st := s.Stats()
	if st.FgInUse != 0 || st.SpecInUse != 0 || st.SpecWaiting != 0 {
		t.Fatalf("slots leaked: %+v", st)
	}
}
