package variation

import (
	"math"
	"testing"
	"testing/quick"
)

func testModel() *Model {
	return &Model{
		Globals: []Global{
			{Name: "g.dVthN", Kind: VthShift, Polarity: +1, Sigma: 0.02},
			{Name: "g.dBetaP", Kind: BetaRel, Polarity: -1, Sigma: 0.03},
		},
		Locals: []Local{
			{Name: "M1.dVth", Device: "M1", Kind: VthShift, A: 10e-3},
			{Name: "M1.dBeta", Device: "M1", Kind: BetaRel, A: 0.012},
			{Name: "M2.dVth", Device: "M2", Kind: VthShift, A: 10e-3},
		},
	}
}

func geom(device string) (float64, float64) {
	switch device {
	case "M1":
		return 10e-6, 1e-6 // 10 µm²
	case "M2":
		return 40e-6, 2.5e-6 // 100 µm²
	}
	panic("unknown device")
}

func TestDimAndNames(t *testing.T) {
	m := testModel()
	if m.Dim() != 5 {
		t.Fatalf("dim = %d", m.Dim())
	}
	names := m.Names()
	if names[0] != "g.dVthN" || names[4] != "M2.dVth" {
		t.Errorf("names = %v", names)
	}
	if m.LocalIndex("M2.dVth") != 4 {
		t.Errorf("LocalIndex = %d", m.LocalIndex("M2.dVth"))
	}
	if m.LocalIndex("nope") != -1 {
		t.Error("missing local should be -1")
	}
}

func TestPelgromSigmas(t *testing.T) {
	// A_VT = 10 mV·µm over 100 µm² → σ = 1 mV.
	if got := SigmaVth(10e-3, 40e-6, 2.5e-6); math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("SigmaVth = %v want 1e-3", got)
	}
	// A_β = 1.2 %·µm over 10 µm² → σ ≈ 0.3795 %.
	want := 0.012 / math.Sqrt(10)
	if got := SigmaBeta(0.012, 10e-6, 1e-6); math.Abs(got-want) > 1e-12 {
		t.Errorf("SigmaBeta = %v want %v", got, want)
	}
}

// Property: Pelgrom sigma scales as 1/√area — quadrupling the area halves
// the sigma.
func TestPelgromAreaLawProperty(t *testing.T) {
	f := func(wRaw, lRaw float64) bool {
		w := 1e-6 * (1 + math.Abs(math.Mod(wRaw, 100)))
		l := 1e-6 * (1 + math.Abs(math.Mod(lRaw, 10)))
		s1 := SigmaVth(10e-3, w, l)
		s2 := SigmaVth(10e-3, 2*w, 2*l)
		return math.Abs(s1/s2-2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPhysicalMapping(t *testing.T) {
	m := testModel()
	shat := []float64{1, -2, 3, 0.5, -1}
	deltas := m.Physical(shat, geom)
	if len(deltas) != 5 {
		t.Fatalf("deltas = %d", len(deltas))
	}
	// Global 0: σ=0.02, ŝ=1.
	if deltas[0].Value != 0.02 || deltas[0].Polarity != 1 || deltas[0].Device != "" {
		t.Errorf("delta[0] = %+v", deltas[0])
	}
	// Local M1.dVth: σ = 10mV/√10, ŝ=3.
	want := 3 * 10e-3 / math.Sqrt(10)
	if math.Abs(deltas[2].Value-want) > 1e-12 || deltas[2].Device != "M1" {
		t.Errorf("delta[2] = %+v want value %v", deltas[2], want)
	}
	// Local M2.dVth: σ = 1mV (bigger area), ŝ=-1.
	if math.Abs(deltas[4].Value+1e-3) > 1e-12 {
		t.Errorf("delta[4] = %+v", deltas[4])
	}
}

func TestPhysicalPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testModel().Physical([]float64{1, 2}, geom)
}

func TestCovarianceDesignDependence(t *testing.T) {
	m := testModel()
	c := m.Covariance(geom)
	if c.Rows != 5 || c.Cols != 5 {
		t.Fatalf("shape %dx%d", c.Rows, c.Cols)
	}
	// Diagonal: globals then Pelgrom variances.
	if math.Abs(c.At(0, 0)-0.0004) > 1e-12 {
		t.Errorf("global variance = %v", c.At(0, 0))
	}
	sigmaM1 := 10e-3 / math.Sqrt(10)
	if math.Abs(c.At(2, 2)-sigmaM1*sigmaM1) > 1e-15 {
		t.Errorf("M1 variance = %v", c.At(2, 2))
	}
	// Off-diagonals vanish (spatially uncorrelated locals).
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j && c.At(i, j) != 0 {
				t.Errorf("C[%d][%d] = %v", i, j, c.At(i, j))
			}
		}
	}

	// Growing M1 shrinks its variance but not M2's: C depends on d.
	bigger := func(device string) (float64, float64) {
		if device == "M1" {
			return 40e-6, 1e-6
		}
		return geom(device)
	}
	c2 := m.Covariance(bigger)
	if c2.At(2, 2) >= c.At(2, 2) {
		t.Error("upsizing M1 must shrink its mismatch variance")
	}
	if c2.At(4, 4) != c.At(4, 4) {
		t.Error("M2 variance must be unchanged")
	}
}

func TestKindString(t *testing.T) {
	if VthShift.String() != "dVth" || BetaRel.String() != "dBeta" {
		t.Error("Kind labels wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}
