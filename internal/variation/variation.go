// Package variation models the process statistics of the paper's Sec. 4:
// global (inter-die) parameter shifts shared by all devices of one polarity
// and local (intra-die, mismatch) variations whose standard deviation
// follows the Pelgrom area law σ ∝ 1/√(WL). Because the local sigmas
// depend on transistor geometry, the covariance matrix C(d) depends on the
// design vector; the package provides the normalization map s = G(d)·ŝ
// (Eq. 11) that the evaluation layer applies so the optimizer always works
// in the constant N(0, I) space.
package variation

import (
	"fmt"
	"math"

	"specwise/internal/linalg"
)

// Kind distinguishes what a statistical parameter perturbs.
type Kind int

const (
	// VthShift adds to the threshold magnitude [V].
	VthShift Kind = iota
	// BetaRel scales the transconductance factor multiplicatively:
	// effective KP factor = 1 + value.
	BetaRel
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case VthShift:
		return "dVth"
	case BetaRel:
		return "dBeta"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Global is a die-level parameter applied to every device of one polarity.
type Global struct {
	Name     string
	Kind     Kind
	Polarity int     // +1 NMOS, -1 PMOS, 0 both
	Sigma    float64 // physical standard deviation
}

// Local is a per-device mismatch parameter with a Pelgrom area coefficient.
type Local struct {
	Name   string
	Device string // instance name in the netlist
	Kind   Kind
	// A is the Pelgrom coefficient: σ = A / √(W·L) with W, L in µm, so
	// A carries units of V·µm (VthShift) or µm (BetaRel, relative).
	A float64
}

// Model is the full statistical description: globals first, then locals.
// The normalized vector ŝ indexes them in that order.
type Model struct {
	Globals []Global
	Locals  []Local
}

// Dim returns the statistical-space dimension.
func (m *Model) Dim() int { return len(m.Globals) + len(m.Locals) }

// Names returns the parameter names in ŝ order.
func (m *Model) Names() []string {
	names := make([]string, 0, m.Dim())
	for _, g := range m.Globals {
		names = append(names, g.Name)
	}
	for _, l := range m.Locals {
		names = append(names, l.Name)
	}
	return names
}

// SigmaVth returns the Pelgrom threshold-mismatch sigma for a device with
// the given geometry in meters: σ = A_VT / √(W·L in µm²).
func SigmaVth(avtVum float64, wMeters, lMeters float64) float64 {
	areaUm2 := wMeters * lMeters * 1e12
	return avtVum / math.Sqrt(areaUm2)
}

// SigmaBeta returns the Pelgrom relative-beta sigma (dimensionless):
// σ = A_β / √(W·L in µm²).
func SigmaBeta(abUm float64, wMeters, lMeters float64) float64 {
	areaUm2 := wMeters * lMeters * 1e12
	return abUm / math.Sqrt(areaUm2)
}

// Geometry reports a device's channel geometry in meters for a given
// design vector; the circuit layer provides it.
type Geometry func(device string) (w, l float64)

// Delta is one physical perturbation to apply to a device (or to all
// devices of a polarity when Device is empty).
type Delta struct {
	Device   string
	Polarity int
	Kind     Kind
	Value    float64
}

// Physical maps a normalized sample ŝ to the list of physical deltas for
// the current design geometry; this is s = G(d)·ŝ with diagonal G (local
// variations are spatially uncorrelated per Pelgrom, and globals are
// modeled as independent normalized components).
func (m *Model) Physical(shat []float64, geom Geometry) []Delta {
	if len(shat) != m.Dim() {
		panic(fmt.Sprintf("variation: sample dim %d, model dim %d", len(shat), m.Dim()))
	}
	out := make([]Delta, 0, m.Dim())
	idx := 0
	for _, g := range m.Globals {
		out = append(out, Delta{
			Polarity: g.Polarity,
			Kind:     g.Kind,
			Value:    g.Sigma * shat[idx],
		})
		idx++
	}
	for _, l := range m.Locals {
		w, lch := geom(l.Device)
		var sigma float64
		switch l.Kind {
		case VthShift:
			sigma = SigmaVth(l.A, w, lch)
		case BetaRel:
			sigma = SigmaBeta(l.A, w, lch)
		}
		out = append(out, Delta{
			Device: l.Device,
			Kind:   l.Kind,
			Value:  sigma * shat[idx],
		})
		idx++
	}
	return out
}

// Covariance assembles the (diagonal) physical covariance matrix C(d) for
// the given geometry, exposing the design dependence the paper's Sec. 4
// transforms away. It is used by analyses and tests, not the optimizer.
func (m *Model) Covariance(geom Geometry) *linalg.Matrix {
	n := m.Dim()
	c := linalg.NewMatrix(n, n)
	idx := 0
	for _, g := range m.Globals {
		c.Set(idx, idx, g.Sigma*g.Sigma)
		idx++
	}
	for _, l := range m.Locals {
		w, lch := geom(l.Device)
		var sigma float64
		switch l.Kind {
		case VthShift:
			sigma = SigmaVth(l.A, w, lch)
		case BetaRel:
			sigma = SigmaBeta(l.A, w, lch)
		}
		c.Set(idx, idx, sigma*sigma)
		idx++
	}
	return c
}

// LocalIndex returns the ŝ index of the named local parameter, or -1.
func (m *Model) LocalIndex(name string) int {
	for i, l := range m.Locals {
		if l.Name == name {
			return len(m.Globals) + i
		}
	}
	return -1
}
