package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestVerifyMCContextCancel(t *testing.T) {
	p := analyticProblem()
	thetas := [][]float64{{0}, {0}}

	// Pre-cancelled context: the pool must not run a single sample.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := VerifyMCContext(ctx, p, p.InitialDesign(), thetas, 100, 1, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Mid-run cancellation: slow evaluations, cancel after the first few.
	started := make(chan struct{})
	var once sync.Once
	slow := *p
	slow.Eval = func(d, s, th []float64) ([]float64, error) {
		once.Do(func() { close(started) })
		time.Sleep(200 * time.Microsecond)
		return p.Eval(d, s, th)
	}
	before := runtime.NumGoroutine()
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := VerifyMCContext(ctx2, &slow, p.InitialDesign(), thetas, 100000, 1, 0)
		done <- err
	}()
	<-started
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("VerifyMCContext did not return after cancellation")
	}
	// Workers and feeder must all have exited; allow the scheduler a
	// moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestRunContextCancelStopsRun(t *testing.T) {
	p := analyticProblem()
	slow := *p
	slow.Eval = func(d, s, th []float64) ([]float64, error) {
		time.Sleep(100 * time.Microsecond)
		return p.Eval(d, s, th)
	}
	opt, err := NewOptimizer(&slow, Options{
		ModelSamples: 500, VerifySamples: 20000, MaxIterations: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := opt.RunContext(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the run get in flight
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if took := time.Since(start); took > 5*time.Second {
			t.Errorf("cancellation latency %v", took)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext did not return after cancellation")
	}
}

func TestProgressHookReportsIterations(t *testing.T) {
	p := analyticProblem()
	var events []ProgressEvent
	res, err := NewAndRun(p, Options{
		ModelSamples: 1000, VerifySamples: 100, MaxIterations: 2, Seed: 7,
		Progress: func(e ProgressEvent) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	if events[0].Stage != "initial" || events[0].Iteration != 0 {
		t.Errorf("first event = %+v, want initial/0", events[0])
	}
	accepted := 0
	for _, e := range events {
		switch e.Stage {
		case "initial", "accepted", "rejected":
		default:
			t.Errorf("unknown stage %q", e.Stage)
		}
		if e.Stage == "accepted" {
			accepted++
		}
		if len(e.Design) != p.NumDesign() {
			t.Errorf("event design has %d entries, want %d", len(e.Design), p.NumDesign())
		}
	}
	// Every accepted event corresponds to one recorded iteration beyond
	// the initial state.
	if accepted != len(res.Iterations)-1 {
		t.Errorf("%d accepted events, %d recorded iterations", accepted, len(res.Iterations))
	}
	last := events[len(events)-1]
	if last.MCYield < 0 {
		t.Error("verification was on; last event must carry an MC yield")
	}
}
