package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestVerifyMCContextCancel(t *testing.T) {
	p := analyticProblem()
	thetas := [][]float64{{0}, {0}}

	// Pre-cancelled context: the pool must not run a single sample.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := VerifyMCContext(ctx, p, p.InitialDesign(), thetas, 100, 1, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Mid-run cancellation: slow evaluations, cancel after the first few.
	started := make(chan struct{})
	var once sync.Once
	slow := *p
	slow.Eval = func(d, s, th []float64) ([]float64, error) {
		once.Do(func() { close(started) })
		time.Sleep(200 * time.Microsecond)
		return p.Eval(d, s, th)
	}
	before := runtime.NumGoroutine()
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := VerifyMCContext(ctx2, &slow, p.InitialDesign(), thetas, 100000, 1, 0)
		done <- err
	}()
	<-started
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("VerifyMCContext did not return after cancellation")
	}
	// Workers and feeder must all have exited; allow the scheduler a
	// moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// The RunContext cancellation and Progress-hook tests moved to
// internal/search/feasguided, which owns the loop they exercise.
