package core

// Deterministic speculative evaluation (the predict-ahead pipeline).
//
// The optimizer's outer loop is serial by construction: one authoritative
// Analyze at a time, with idle cores between its parallel bursts. The
// paper's own answer to evaluation latency was to farm work out
// speculatively (its MC verification ran on five machines); here the same
// idea is applied inside one process without giving up bit-identical
// results. A SearchBackend that can name the design points its next Step
// will analyze implements Speculator; before each authoritative Step the
// engine asks it to Predict, then a bounded background pool pre-runs the
// predicted evaluations into the evaluation cache while the Step runs.
//
// The determinism argument has three legs:
//
//  1. Speculation only ever populates the cache, and the cache keys on
//     exact (d, s, θ) bit patterns, so an authoritative lookup that hits
//     a speculative entry returns the same float64 values the simulator
//     would have produced.
//  2. The authoritative trajectory never branches on speculation state:
//     Predict runs synchronously between Steps (the backend is
//     quiescent, so it may read backend state freely and fork — never
//     advance — rng streams), and the pool communicates with the run
//     only through the cache.
//  3. Effort accounting is claim-based: speculative simulator calls are
//     not counted when they run but when the authoritative run first
//     touches the entry (evalcache.SpecWrapper fires a claim hook that
//     credits the run's Counter), so Result.Simulations is identical
//     with speculation on or off. Unclaimed entries are wasted idle
//     cycles, reported in Result.Speculation.
//
// Scheduling: every speculative simulator call on the pool passes a
// sched.AcquireSpec gate, so speculation runs strictly below the
// foreground's extra-worker pools and drains out of the machine within
// one simulator call of the foreground ramping up. The pool's context is
// marked with sched.WithSpec so nested pools (the MC verification, the
// worst-case gradient) spawn their extras ungated rather than holding
// foreground slots across the gate wait — a blocked goroutine sitting on
// a foreground slot would pin the very capacity the gate admits against,
// freezing speculation and starving the authoritative pools. Predict is
// the one exception: it runs synchronously on the authoritative
// goroutine between Steps, so its evaluations (claimed by the next Step)
// run at foreground priority through an ungated handle — the foreground
// never waits on the scheduler. Stale predictions are cancelled by round
// rotation — each new Predict cancels the previous round's context —
// and engine shutdown waits for in-flight speculative work, so nothing
// writes after Optimize returns.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"specwise/internal/evalcache"
	"specwise/internal/sched"
	"specwise/internal/wcd"
)

// Speculator is the optional backend capability behind Options.Speculate:
// Predict names the design points the backend's next Step is likely to
// analyze. It is called synchronously between Steps, so the backend is
// quiescent and may read its own state; it must not advance any
// authoritative rng stream (fork with rng.Fork instead) and must issue
// any simulations it needs through Engine.SpecProblem, never through
// Engine.Problem. Mispredictions are harmless — they waste idle cycles,
// nothing else.
type Speculator interface {
	Predict(e *Engine) [][]float64
}

// SpecWarmer lets a Speculator replace the engine's default per-candidate
// action (a full speculative Analyze replay) with its own cache warm —
// cem, whose Step scores candidates over a fixed sample/θ grid rather
// than analyzing them, implements it. SpeculateWarm runs on pool
// goroutines; it must evaluate only through the provided problem handle
// (already speculation-gated) and return promptly once ctx dies. seed is
// the engine's analyze seed for the predicted step, for warms that
// replay a full Analyze (see Engine.SpeculateAnalyze).
type SpecWarmer interface {
	SpeculateWarm(ctx context.Context, p *Problem, e *Engine, d []float64, seed uint64)
}

// SpecStats reports the speculative pipeline's effort for one run.
type SpecStats struct {
	// Predicted counts design points named by the backend's Predict;
	// Launched counts those handed to the pool (the rest were dropped on
	// a full queue and are included in Cancelled).
	Predicted int64
	Launched  int64
	// Cancelled counts speculative tasks aborted before completion —
	// stale rounds, queue overflow, shutdown.
	Cancelled int64
	// Computes counts simulator calls actually issued speculatively;
	// Claims counts those later consumed by the authoritative run.
	// Computes − Claims is pure waste (idle cycles, by construction).
	Computes int64
	Claims   int64
}

// specTask is one predicted design point queued for the pool.
type specTask struct {
	ctx  context.Context
	d    []float64
	seed uint64
}

// specExec owns the speculation pool for one run.
type specExec struct {
	e       *Engine
	sp      Speculator
	warmer  SpecWarmer // non-nil when the backend implements SpecWarmer
	workers int

	baseCtx  context.Context
	baseStop context.CancelFunc
	tasks    chan specTask
	wg       sync.WaitGroup
	stopOnce sync.Once

	// roundCtx/roundCancel rotate on every Predict; only the engine
	// goroutine touches them (Predict is synchronous).
	roundCtx    context.Context
	roundCancel context.CancelFunc
	roundSeed   uint64

	predicted, launched, cancelled atomic.Int64
}

// newSpecExec wires the pool for a backend that implements Speculator.
func newSpecExec(e *Engine, sp Speculator) *specExec {
	s := &specExec{e: e, sp: sp, workers: e.opts.SpecWorkers}
	if w, ok := sp.(SpecWarmer); ok {
		s.warmer = w
	}
	if s.workers <= 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	return s
}

// start launches the pool under the run's context. The pool context is
// marked speculative (sched.WithSpec) so every nested pool reached from
// a speculative replay spawns ungated extras instead of holding
// foreground scheduler slots across the speculation gate.
func (s *specExec) start(ctx context.Context) {
	s.baseCtx, s.baseStop = context.WithCancel(sched.WithSpec(ctx))
	s.tasks = make(chan specTask, 4*s.workers+16)
	for w := 0; w < s.workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.baseCtx.Done():
					return
				case t := <-s.tasks:
					if t.ctx.Err() != nil {
						s.cancelled.Add(1)
						continue
					}
					s.run(t)
				}
			}
		}()
	}
}

// run executes one speculative task, swallowing every error: a failed or
// cancelled speculation must be invisible to the authoritative run.
func (s *specExec) run(t specTask) {
	p := s.e.specWrap(t.ctx)
	if s.warmer != nil {
		s.warmer.SpeculateWarm(t.ctx, p, s.e, t.d, t.seed)
		return
	}
	s.e.speculativeAnalyze(t.ctx, p, t.d, t.seed)
}

// round rotates speculation for the upcoming Step: cancel whatever the
// previous round still has queued (its predictions are stale — the
// authoritative trajectory has moved), ask the backend for fresh
// predictions and enqueue them. Runs synchronously on the engine
// goroutine between Steps.
func (s *specExec) round() {
	if s.roundCancel != nil {
		s.roundCancel()
	}
	s.roundCtx, s.roundCancel = context.WithCancel(s.baseCtx)
	// The engine's step counter mirrors the backends' attempt counters:
	// feasguided analyzes attempt n+1 with seed Seed+n+1, cem's final
	// analyze of generation g uses Seed+g+1.
	s.roundSeed = s.e.opts.Seed + uint64(s.e.steps) + 1
	for _, d := range s.sp.Predict(s.e) {
		s.predicted.Add(1)
		t := specTask{ctx: s.roundCtx, d: append([]float64(nil), d...), seed: s.roundSeed}
		select {
		case s.tasks <- t:
			s.launched.Add(1)
		default:
			s.cancelled.Add(1)
		}
	}
}

// shutdown cancels all speculation and waits for in-flight work, so no
// speculative write can happen after the run returns. Idempotent.
func (s *specExec) shutdown() {
	s.stopOnce.Do(func() {
		s.baseStop()
		s.wg.Wait()
		for {
			select {
			case <-s.tasks:
				s.cancelled.Add(1)
			default:
				return
			}
		}
	})
}

// stats assembles the run's SpecStats from the pool counters and the
// cache's compute/claim tallies.
func (s *specExec) stats(cs evalcache.Stats) SpecStats {
	return SpecStats{
		Predicted: s.predicted.Load(),
		Launched:  s.launched.Load(),
		Cancelled: s.cancelled.Load(),
		Computes:  cs.SpecComputes,
		Claims:    cs.SpecClaims,
	}
}

// specGate adapts the compute scheduler to the cache's gate contract:
// one low-priority slot per speculative simulator call.
func specGate(ctx context.Context) evalcache.SpecGate {
	return func() (func(), error) {
		sch := sched.Default()
		if err := sch.AcquireSpec(ctx); err != nil {
			return nil, err
		}
		return sch.ReleaseSpec, nil
	}
}

// specWrap builds a speculative problem handle over the run's cache: same
// entries as the authoritative handle (bit-exact keys), no effort
// accounting, every simulator call gated at speculation priority under
// ctx.
func (e *Engine) specWrap(ctx context.Context) *Problem {
	q := e.specCache.WrapSpec(e.problem, specGate(ctx))
	if e.opts.NoConstraints {
		q.Constraints = nil
	}
	return q
}

// predictGate admits Predict-time simulator calls without touching the
// scheduler: Predict runs synchronously on the authoritative goroutine
// between Steps, so its evaluations are foreground critical-path work —
// blocking them on a speculation-class slot would let other traffic
// (other jobs' foreground pools, this run's own pool) stall the
// authoritative loop inside its own Predict, at the scheduler's lowest
// priority. Only the context check remains, so a dead round still
// aborts the warm.
func predictGate(ctx context.Context) evalcache.SpecGate {
	return func() (func(), error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return func() {}, nil
	}
}

// SpecProblem returns the prediction handle for the current round, for
// use inside Speculator.Predict only: evaluations populate the run's
// cache as speculative entries (claim-based accounting — the effort is
// counted when the authoritative run touches them, keeping
// Result.Simulations identical with speculation on or off), and the
// handle dies with the round (the next Predict cancels it). Because
// Predict runs on the authoritative goroutine, the handle is ungated —
// it never waits for a scheduler slot; callers that fan warms out should
// bound them with the foreground caller-runs TryAcquire pattern. Returns
// nil when speculation is off.
func (e *Engine) SpecProblem() *Problem {
	if e.specExec == nil || e.specExec.roundCtx == nil {
		return nil
	}
	q := e.specCache.WrapSpec(e.problem, predictGate(e.specExec.roundCtx))
	if e.opts.NoConstraints {
		q.Constraints = nil
	}
	return q
}

// SpeculateAnalyze exposes the engine's speculative Analyze replay to
// SpecWarmer implementations whose predicted step performs a full
// analysis (e.g. cem's final-generation analyze): p must be the gated
// handle SpeculateWarm received, and seed the step seed it was given.
func (e *Engine) SpeculateAnalyze(ctx context.Context, p *Problem, d []float64, seed uint64) {
	e.speculativeAnalyze(ctx, p, d, seed)
}

// speculativeAnalyze replays Analyze's evaluation schedule at d through
// the speculative handle, parallelizing the serial sections Analyze
// cannot parallelize itself — the corner sweep and the model-build
// finite-difference probes — so the authoritative Analyze that follows
// finds its serial path pre-simulated. Every error (including
// cancellation) aborts silently.
func (e *Engine) speculativeAnalyze(ctx context.Context, p *Problem, d []float64, seed uint64) {
	opts := e.opts
	zeroS := make([]float64, p.NumStat())

	// Corner sweep (Eq. 2): the points are independent, so warm them in
	// parallel, then let the (serial) enumeration hit the cache.
	corners := wcd.CornerThetas(e.problem)
	warmAll(ctx, len(corners), func(i int) error {
		_, err := p.Eval(d, zeroS, corners[i])
		return err
	})
	if ctx.Err() != nil {
		return
	}
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		return
	}
	// Golden-section refinement is inherently sequential; replay it so
	// its points are cached for the authoritative pass.
	if err := wcd.RefineTheta(p, d, zeroS, thetaRes, opts.RefineThetaPasses); err != nil {
		return
	}

	// Per-spec worst-case searches, concurrent exactly like Analyze.
	wcs := make([]*wcd.WorstCase, p.NumSpecs())
	wcErrs := make([]error, p.NumSpecs())
	var wg sync.WaitGroup
	for i := range p.Specs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			theta := thetaRes.PerSpec[i]
			marginFn := func(s []float64) (float64, error) {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
				vals, err := p.Eval(d, s, theta)
				if err != nil {
					return 0, err
				}
				return p.Specs[i].Margin(vals[i]), nil
			}
			wcOpts := opts.WC
			// The margin function blocks on the speculation gate per call;
			// the gradient pool must not hold foreground slots across that
			// wait (see wcd.Options.Speculative).
			wcOpts.Speculative = true
			if wcOpts.Seed == 0 {
				wcOpts.Seed = seed + uint64(i)*1000003
			} else {
				wcOpts.Seed = opts.WC.Seed + uint64(i)*1000003
			}
			wcs[i], wcErrs[i] = wcd.FindWorstCase(marginFn, p.NumStat(), wcOpts)
		}()
	}
	wg.Wait()
	for _, err := range wcErrs {
		if err != nil {
			return
		}
	}

	// Model-build probes (Eq. 16): linmodel.Build runs them serially, so
	// pre-simulate the exact probe geometry in parallel. The build itself
	// needs no replay — the authoritative Build consumes the warmed
	// points directly.
	e.warmBuildProbes(ctx, p, d, zeroS, wcs, thetaRes)

	// Monte-Carlo verification: already worker-parallel internally, and
	// a pure function of (d, thetas, samples, seed), so the replay is an
	// exact prediction.
	if !opts.SkipVerify && ctx.Err() == nil {
		_, _ = VerifyMCContext(ctx, p, d, thetaRes.PerSpec, opts.VerifySamples, seed^0xabcdef, opts.VerifyWorkers)
	}
}

// warmBuildProbes pre-simulates linmodel.Build's finite-difference
// schedule at d: per spec, the design-gradient probes (step 0.02 of each
// parameter's range, flipped at the upper bound — Build's defaults) and,
// when the worst case sits on the spec boundary, the single mirrored
// point of Sec. 5.3. The geometry mirrors linmodel exactly so every warm
// is a future hit; rare paths (NaN re-probes, the consistency-guard
// nominal rebuild) are left to the authoritative pass.
func (e *Engine) warmBuildProbes(ctx context.Context, p *Problem, d, zeroS []float64, wcs []*wcd.WorstCase, thetaRes *wcd.ThetaResult) {
	type probe struct{ d, s, theta []float64 }
	var probes []probe
	const fdD = 0.02  // linmodel.BuildOptions.FDStepD default
	const fdS = 0.1   // nominal-linearization stat-gradient step
	const bFrac = 0.2 // linmodel's on-boundary margin fraction
	for i := range p.Specs {
		theta := thetaRes.PerSpec[i]
		s := []float64(wcs[i].S)
		if e.opts.LinearizeAtNominal {
			s = zeroS
			probes = append(probes, probe{d, zeroS, theta})
			for j := 0; j < p.NumStat(); j++ {
				sj := make([]float64, p.NumStat())
				sj[j] = fdS
				probes = append(probes, probe{d, sj, theta})
			}
		}
		for k, prm := range p.Design {
			h := fdD * (prm.Hi - prm.Lo)
			if h == 0 {
				continue
			}
			if d[k]+h > prm.Hi {
				h = -h
			}
			dd := append([]float64(nil), d...)
			dd[k] = d[k] + h
			probes = append(probes, probe{dd, s, theta})
		}
		if !e.opts.LinearizeAtNominal && !e.opts.NoMirrorSpecs {
			sNorm := wcs[i].S.Norm2()
			onBoundary := wcs[i].Converged || abs(wcs[i].MarginWc) < bFrac*wcs[i].GradS.Norm2()
			if sNorm >= 1e-9 && onBoundary {
				ms := make([]float64, len(wcs[i].S))
				for j, v := range wcs[i].S {
					ms[j] = -v
				}
				probes = append(probes, probe{d, ms, theta})
			}
		}
	}
	warmAll(ctx, len(probes), func(i int) error {
		_, err := p.Eval(probes[i].d, probes[i].s, probes[i].theta)
		return err
	})
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// warmAll evaluates n independent warm thunks concurrently. Concurrency
// of actual simulator calls is bounded by the speculation gate inside
// the handle, so the goroutine fan-out here only decides how many calls
// can be in flight at the gate; errors stop nothing but the failing
// thunk (warms are independent).
func warmAll(ctx context.Context, n int, f func(int) error) {
	if n == 0 {
		return
	}
	k := runtime.GOMAXPROCS(0)
	if k > n {
		k = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				_ = f(i)
			}
		}()
	}
	wg.Wait()
}
