package core

import (
	"context"
	"strings"
	"testing"

	"specwise/internal/testprob"
)

// analyticProblem is the shared closed-form fixture; see testprob.
func analyticProblem() *Problem { return testprob.Analytic() }

func TestValidateRejectsBadProblems(t *testing.T) {
	p := analyticProblem()
	p.Design[0].Init = 99 // outside box
	if _, err := NewOptimizer(p, Options{}); err == nil {
		t.Error("expected validation error for out-of-box init")
	}
	q := analyticProblem()
	q.Eval = nil
	if _, err := NewOptimizer(q, Options{}); err == nil {
		t.Error("expected validation error for nil Eval")
	}
}

// stubBackend is a minimal SearchBackend driving the engine through one
// analyze-and-record cycle, exercising the engine/backend contract
// without any real search strategy.
type stubBackend struct {
	name  string
	steps int
	d     []float64
}

func (s *stubBackend) Name() string { return s.name }

func (s *stubBackend) Init(ctx context.Context, e *Engine) error {
	s.d = e.Problem().InitialDesign()
	it, _, _, err := e.Analyze(ctx, s.d, e.Options().Seed)
	if err != nil {
		return err
	}
	e.Record(it)
	e.Emit("initial", 0, 0, it)
	return nil
}

func (s *stubBackend) Step(ctx context.Context, e *Engine) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	s.steps++
	return s.steps >= 1, nil
}

func (s *stubBackend) Final() []float64 { return s.d }

func TestEngineRunsRegisteredBackend(t *testing.T) {
	RegisterBackend("stub-engine-test", func() SearchBackend {
		return &stubBackend{name: "stub-engine-test"}
	})
	p := analyticProblem()
	res, err := NewAndRun(p, Options{
		Algorithm:    "stub-engine-test",
		ModelSamples: 500, SkipVerify: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "stub-engine-test" {
		t.Errorf("result algorithm = %q, want stub-engine-test", res.Algorithm)
	}
	if len(res.Iterations) != 1 {
		t.Fatalf("iterations = %d, want 1 (initial only)", len(res.Iterations))
	}
	if res.Simulations == 0 {
		t.Error("engine did not count simulations")
	}
	if len(res.FinalDesign) != p.NumDesign() {
		t.Errorf("final design has %d entries, want %d", len(res.FinalDesign), p.NumDesign())
	}
	if !KnownBackend("stub-engine-test") {
		t.Error("KnownBackend must see the registered stub")
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	_, err := NewOptimizer(analyticProblem(), Options{Algorithm: "no-such-search"})
	if err == nil {
		t.Fatal("expected an unknown-algorithm error")
	}
	if !strings.Contains(err.Error(), "no-such-search") {
		t.Errorf("error %q does not name the unknown algorithm", err)
	}
}

func TestRegisterBackendRejectsDuplicates(t *testing.T) {
	RegisterBackend("stub-dup-test", func() SearchBackend { return &stubBackend{name: "stub-dup-test"} })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	RegisterBackend("stub-dup-test", func() SearchBackend { return &stubBackend{name: "stub-dup-test"} })
}
