package core

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"specwise/internal/rng"
	"specwise/internal/sched"
	"specwise/internal/stat"
	"specwise/internal/wcd"
)

// MCResult is a simulation-based Monte-Carlo yield verification (the Ỹ of
// Eqs. 6–7): every sample is evaluated at each spec's worst-case operating
// point, and a sample passes only if every spec holds at its own corner.
type MCResult struct {
	Estimate stat.YieldEstimate
	// BadPerSpec[i] counts samples violating spec i (a sample may violate
	// several specs).
	BadPerSpec []int
	// Moments[i] tracks spec i's performance distribution at its
	// worst-case operating point (feeding the Table-2 μ/σ report).
	Moments []stat.Moments
	// Evals is the number of simulator calls spent.
	Evals int
}

// VerifyMC runs the Monte-Carlo verification without external
// cancellation and with the default worker count; see VerifyMCContext.
func VerifyMC(p *Problem, d []float64, thetas [][]float64, n int, seed uint64) (*MCResult, error) {
	return VerifyMCContext(context.Background(), p, d, thetas, n, seed, 0)
}

// VerifyMCContext runs the simulation-based Monte-Carlo analysis of
// Sec. 2 at design d with n samples. thetas[i] is spec i's worst-case
// operating point; specs sharing a corner share simulations, matching the
// paper's observation that N* stays well below N·n_spec.
//
// Samples are evaluated on a caller-runs worker pool (the paper ran its
// verification on a cluster of five machines; here the workers are
// goroutines gated by the process-wide compute scheduler). The sample
// stream is drawn up front and results are written by index, so the
// result is bit-identical for any worker count. workers bounds the pool
// including the calling goroutine; 0 or negative means GOMAXPROCS
// (plumbed from Options.VerifyWorkers / the service config).
//
// Cancelling ctx stops the pool between samples: every worker exits at
// its next sample claim and the call returns ctx.Err() — no goroutine
// outlives the call, even on early cancellation.
func VerifyMCContext(ctx context.Context, p *Problem, d []float64, thetas [][]float64, n int, seed uint64, workers int) (*MCResult, error) {
	unique, specToUnique := wcd.DistinctThetas(thetas)
	r := rng.New(seed)
	res := &MCResult{
		BadPerSpec: make([]int, p.NumSpecs()),
		Moments:    make([]stat.Moments, p.NumSpecs()),
	}

	// Deterministic sample block, independent of scheduling.
	samples := make([][]float64, n)
	for j := range samples {
		samples[j] = r.NormVector(make([]float64, p.NumStat()))
	}

	// vals[j][u][i]: sample j, corner u, spec i. Samples are claimed off a
	// shared atomic index and written back by index, so the result is
	// independent of how many workers actually ran.
	vals := make([][][]float64, n)
	errs := make([]error, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	work := func() {
		for {
			j := int(next.Add(1)) - 1
			if j >= n || ctx.Err() != nil {
				return
			}
			out := make([][]float64, len(unique))
			for u, theta := range unique {
				v, err := p.Eval(d, samples[j], theta)
				if err != nil {
					errs[j] = err
					break
				}
				out[u] = v
			}
			vals[j] = out
		}
	}
	// Caller-runs pool: the calling goroutine always works; up to
	// workers-1 extra goroutines join only while the process-wide compute
	// scheduler has free foreground slots, so nested pools (an AC sweep
	// inside a verification sample) size themselves to the machine
	// together instead of multiplying. Under a speculative context the
	// extras spawn ungated instead: each Eval already waits for a
	// speculation-class slot inside the handle, and an extra that held a
	// foreground slot across that wait would pin foreground capacity in a
	// blocked state — freezing speculation and starving the authoritative
	// pools of the very slots it sat on.
	sch := sched.Default()
	speculative := sched.IsSpec(ctx)
	var wg sync.WaitGroup
	for extra := 0; extra < workers-1; extra++ {
		if speculative {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
			continue
		}
		if !sch.TryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sch.Release()
			work()
		}()
	}
	work()
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	pass := 0
	for j := 0; j < n; j++ {
		if errs[j] != nil {
			return nil, errs[j]
		}
		res.Evals += len(unique)
		ok := true
		for i, spec := range p.Specs {
			v := vals[j][specToUnique[i]][i]
			if math.IsNaN(v) {
				// Broken circuit: the sample fails this spec; keep the
				// moment accumulators clean.
				ok = false
				res.BadPerSpec[i]++
				continue
			}
			res.Moments[i].Add(v)
			if !spec.Satisfied(v) {
				ok = false
				res.BadPerSpec[i]++
			}
		}
		if ok {
			pass++
		}
	}
	res.Estimate = stat.NewYieldEstimate(pass, n)
	return res, nil
}
