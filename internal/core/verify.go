package core

import (
	"context"
	"math"
	"runtime"
	"sync"

	"specwise/internal/rng"
	"specwise/internal/stat"
	"specwise/internal/wcd"
)

// MCResult is a simulation-based Monte-Carlo yield verification (the Ỹ of
// Eqs. 6–7): every sample is evaluated at each spec's worst-case operating
// point, and a sample passes only if every spec holds at its own corner.
type MCResult struct {
	Estimate stat.YieldEstimate
	// BadPerSpec[i] counts samples violating spec i (a sample may violate
	// several specs).
	BadPerSpec []int
	// Moments[i] tracks spec i's performance distribution at its
	// worst-case operating point (feeding the Table-2 μ/σ report).
	Moments []stat.Moments
	// Evals is the number of simulator calls spent.
	Evals int
}

// VerifyMC runs the Monte-Carlo verification without external
// cancellation and with the default worker count; see VerifyMCContext.
func VerifyMC(p *Problem, d []float64, thetas [][]float64, n int, seed uint64) (*MCResult, error) {
	return VerifyMCContext(context.Background(), p, d, thetas, n, seed, 0)
}

// VerifyMCContext runs the simulation-based Monte-Carlo analysis of
// Sec. 2 at design d with n samples. thetas[i] is spec i's worst-case
// operating point; specs sharing a corner share simulations, matching the
// paper's observation that N* stays well below N·n_spec.
//
// Samples are evaluated on a worker pool (the paper ran its verification
// on a cluster of five machines; here the workers are goroutines). The
// sample stream is drawn up front, so the result is bit-identical for any
// worker count. workers bounds the pool; 0 or negative means GOMAXPROCS
// (plumbed from Options.VerifyWorkers / the service config).
//
// Cancelling ctx stops the pool between samples: the feeder quits, every
// worker drains and exits, and the call returns ctx.Err() — no goroutine
// outlives the call, even on early cancellation.
func VerifyMCContext(ctx context.Context, p *Problem, d []float64, thetas [][]float64, n int, seed uint64, workers int) (*MCResult, error) {
	unique, specToUnique := wcd.DistinctThetas(thetas)
	r := rng.New(seed)
	res := &MCResult{
		BadPerSpec: make([]int, p.NumSpecs()),
		Moments:    make([]stat.Moments, p.NumSpecs()),
	}

	// Deterministic sample block, independent of scheduling.
	samples := make([][]float64, n)
	for j := range samples {
		samples[j] = r.NormVector(make([]float64, p.NumStat()))
	}

	// vals[j][u][i]: sample j, corner u, spec i.
	vals := make([][][]float64, n)
	errs := make([]error, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // drain; the feeder is already stopping
				}
				out := make([][]float64, len(unique))
				for u, theta := range unique {
					v, err := p.Eval(d, samples[j], theta)
					if err != nil {
						errs[j] = err
						break
					}
					out[u] = v
				}
				vals[j] = out
			}
		}()
	}
	// The feeder runs in its own goroutine guarded by ctx so that an early
	// return below can never strand workers on a send.
	go func() {
		defer close(jobs)
		for j := 0; j < n; j++ {
			select {
			case jobs <- j:
			case <-ctx.Done():
				return
			}
		}
	}()
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	pass := 0
	for j := 0; j < n; j++ {
		if errs[j] != nil {
			return nil, errs[j]
		}
		res.Evals += len(unique)
		ok := true
		for i, spec := range p.Specs {
			v := vals[j][specToUnique[i]][i]
			if math.IsNaN(v) {
				// Broken circuit: the sample fails this spec; keep the
				// moment accumulators clean.
				ok = false
				res.BadPerSpec[i]++
				continue
			}
			res.Moments[i].Add(v)
			if !spec.Satisfied(v) {
				ok = false
				res.BadPerSpec[i]++
			}
		}
		if ok {
			pass++
		}
	}
	res.Estimate = stat.NewYieldEstimate(pass, n)
	return res, nil
}
