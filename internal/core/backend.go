package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultAlgorithm is the backend an empty Options.Algorithm selects:
// the paper's feasibility-guided coordinate search.
const DefaultAlgorithm = "feasguided"

// SearchBackend is the strategy half of the optimizer. The engine owns
// everything a search has in common — problem instrumentation, the
// evaluation cache, worst-case analysis, model building, Monte-Carlo
// verification, progress plumbing and result assembly — while a backend
// owns the search loop itself: where to move the design next and when
// to stop. Backends are stateful per run; register a factory, not an
// instance.
//
// The engine drives Init once, then Step until it reports done. A
// backend records iteration states through Engine.Record as it goes
// (Init records the initial state) and must check ctx inside Step at
// whatever granularity it can cancel at. The determinism contract:
// given a fixed seed every random draw must come from an rng stream
// derived from Options.Seed, so a run is a pure function of
// (problem, options) — bit-identical across machines and worker pools.
type SearchBackend interface {
	// Name identifies the backend in the registry and on results.
	Name() string
	// Init prepares the run: pick the starting design, analyze it and
	// record the initial iteration state.
	Init(ctx context.Context, e *Engine) error
	// Step runs one search cycle. done reports that the search has
	// converged (or exhausted its budget); the engine stops stepping.
	Step(ctx context.Context, e *Engine) (done bool, err error)
	// Final returns the design the run settled on, valid once Step
	// reported done (or after the last successful Step when the run is
	// cancelled).
	Final() []float64
}

var (
	backendMu sync.RWMutex
	backends  = map[string]func() SearchBackend{}
)

// RegisterBackend adds a search backend to the registry, typically from
// a backend package's init. Registering a duplicate name panics: the
// name is the wire-level algorithm identifier, so a silent overwrite
// would change what submitted requests mean.
func RegisterBackend(name string, factory func() SearchBackend) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if name == "" || factory == nil {
		panic("core: RegisterBackend with empty name or nil factory")
	}
	if _, dup := backends[name]; dup {
		panic("core: RegisterBackend called twice for " + name)
	}
	backends[name] = factory
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// KnownBackend reports whether name resolves to a registered backend
// (the empty name selects the default).
func KnownBackend(name string) bool {
	if name == "" {
		name = DefaultAlgorithm
	}
	backendMu.RLock()
	defer backendMu.RUnlock()
	_, ok := backends[name]
	return ok
}

// backendFor instantiates the backend for an algorithm name; "" selects
// DefaultAlgorithm.
func backendFor(name string) (SearchBackend, error) {
	if name == "" {
		name = DefaultAlgorithm
	}
	backendMu.RLock()
	factory, ok := backends[name]
	backendMu.RUnlock()
	if !ok {
		if reg := Backends(); len(reg) > 0 {
			return nil, fmt.Errorf("core: unknown search algorithm %q (registered: %s)",
				name, strings.Join(reg, ", "))
		}
		return nil, fmt.Errorf("core: unknown search algorithm %q (no backends registered; import specwise/internal/search)", name)
	}
	return factory(), nil
}
