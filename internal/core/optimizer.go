package core

import (
	"context"
	"fmt"
	"io"
	"sync"

	"specwise/internal/coord"
	"specwise/internal/evalcache"
	"specwise/internal/feasopt"
	"specwise/internal/linmodel"
	"specwise/internal/rng"
	"specwise/internal/wcd"
)

// Options configures the yield optimizer. The zero value gives the paper's
// setup: functional constraints on, worst-case linearization, mirrored
// specs, 10,000 model samples and 300 verification samples.
type Options struct {
	// ModelSamples is N for the linear-model yield estimate (Eq. 17).
	ModelSamples int
	// VerifySamples is the simulation-based Monte-Carlo sample size.
	VerifySamples int
	// MaxIterations bounds the outer linearize/search/line-search loop.
	MaxIterations int
	// Seed drives every random stream of the run. A zero Seed selects
	// the paper's default stream unless HasSeed is set.
	Seed uint64
	// HasSeed marks Seed as explicitly chosen, making seed 0 a real,
	// requestable stream instead of shorthand for the default.
	HasSeed bool
	// NoConstraints disables the functional constraints entirely — the
	// Table-3 ablation.
	NoConstraints bool
	// LinearizeAtNominal builds the spec models at s = 0 instead of the
	// worst-case points — the Table-4 ablation.
	LinearizeAtNominal bool
	// NoMirrorSpecs disables the quadratic-performance mirror models of
	// Eqs. 21–22.
	NoMirrorSpecs bool
	// SkipVerify skips the simulation-based Monte-Carlo verification
	// (used by cheap smoke tests; table runs keep it on).
	SkipVerify bool
	// LHS draws the linear-model yield samples by Latin-hypercube
	// stratification instead of plain Monte Carlo, reducing estimator
	// noise at the same N (an extension beyond the paper's setup).
	LHS bool
	// RefineThetaPasses enables golden-section refinement of the
	// worst-case operating points after corner enumeration, catching
	// interior worst cases (e.g. mid-range phase-margin dips). 0 = off.
	RefineThetaPasses int
	// QuadraticSpecs upgrades detected quadratic performances from the
	// paper's linear+mirror pair to a radial-quadratic model at the same
	// simulation cost (extension; see the QuadStudy experiment).
	QuadraticSpecs bool
	// NoEvalCache disables the evaluation memoization cache, forcing
	// every (d, s, θ) point back to the simulator. Results are
	// bit-identical either way (the cache keys on exact bit patterns);
	// the switch exists for ablation and the determinism tests.
	NoEvalCache bool
	// EvalCache, when non-nil, replaces the run's private memoization
	// cache — typically a problem-scoped evalcache.Shared view, so sweep
	// members reuse each other's simulations. Ignored when NoEvalCache is
	// set. Bit-exact keying keeps results identical either way.
	EvalCache evalcache.Wrapper
	// EvalCacheSize caps the number of memoized evaluation points.
	// 0 selects evalcache.DefaultMaxEntries.
	EvalCacheSize int
	// VerifyWorkers bounds the Monte-Carlo verification worker pool.
	// 0 means GOMAXPROCS. Verification results are bit-identical for
	// every setting.
	VerifyWorkers int
	// SweepWorkers bounds the per-frequency fan-out inside each AC
	// sweep when the problem's simulator supports it (see
	// problem.SimOptions). 0 means GOMAXPROCS; results are
	// bit-identical for every setting.
	SweepWorkers int
	// WC tunes the worst-case distance searches.
	WC wcd.Options
	// Coord tunes the coordinate search.
	Coord coord.Options
	// Log, when non-nil, receives human-readable progress lines.
	Log io.Writer
	// Progress, when non-nil, receives one event after every completed
	// analysis (the initial state and each accepted or rejected step).
	// It is called synchronously from the optimizer goroutine.
	Progress func(ProgressEvent)
}

// ProgressEvent is one optimizer milestone, emitted through
// Options.Progress so that long runs (e.g. jobs behind a service) can
// report live state.
type ProgressEvent struct {
	// Stage is "initial", "accepted" or "rejected".
	Stage string
	// Iteration counts accepted optimizer states so far (0 = initial).
	Iteration int
	// Attempt counts linearize/search/line-search cycles tried.
	Attempt int
	// ModelYield is the linear-model yield estimate at the analyzed point.
	ModelYield float64
	// MCYield is the verified yield (-1 when verification is off).
	MCYield float64
	// Design is a copy of the analyzed design point.
	Design []float64
}

func (o *Options) defaults() {
	if o.ModelSamples == 0 {
		o.ModelSamples = 10000
	}
	if o.VerifySamples == 0 {
		o.VerifySamples = 300
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 2
	}
	if o.Seed == 0 && !o.HasSeed {
		o.Seed = 20010618 // DAC 2001 opening day
	}
}

// SpecState is one spec's situation at an iteration point, mirroring the
// per-spec rows of the paper's Tables 1, 3, 4 and 6.
type SpecState struct {
	// NominalMargin is f(d, s0, θ_wc) − f_b in the normalized ">= 0 is
	// good" sense (the paper's f − f_b rows, sign-adjusted for ≤ specs).
	NominalMargin float64
	// BadPerMille is the linear-model bad-sample rate in ‰ (Eq. 18).
	BadPerMille float64
	// Beta is the signed worst-case distance.
	Beta float64
	// ThetaWc is the spec's worst-case operating point.
	ThetaWc []float64
	// MCMean / MCSigma are the verification-run performance moments.
	MCMean, MCSigma float64
	// MCBad counts verification samples violating the spec.
	MCBad int
}

// Iteration is the full record of one optimizer state (the "Initial",
// "1st Iter", "2nd Iter" blocks of the paper's tables).
type Iteration struct {
	Design     []float64
	Specs      []SpecState
	ModelYield float64 // Ȳ over the linear models at Design
	MCYield    float64 // Ỹ from simulation (NaN when verification is off)
	MCResult   *MCResult
	WorstCases []*wcd.WorstCase
	Models     []*linmodel.SpecModel
}

// Result is the outcome of a full optimization run.
type Result struct {
	Problem *Problem
	// Iterations[0] is the initial state; each further entry is the state
	// after one linearize → search → line-search cycle.
	Iterations  []Iteration
	FinalDesign []float64
	// Simulations totals the full performance evaluations that actually
	// reached the simulator (cache hits are excluded).
	Simulations int64
	// ConstraintSims totals the DC-only constraint evaluations that
	// reached the simulator.
	ConstraintSims int64
	// EvalCache reports the memoization-cache counters of the run
	// (zero when Options.NoEvalCache disabled the cache).
	EvalCache evalcache.Stats
	// Sim reports the simulator-side effort counters (DC warm starts,
	// homotopy fallbacks, Newton iterations) when the problem exposes
	// them through Problem.SimStats; zero otherwise.
	Sim SimCounters
}

// Optimizer runs the paper's Fig.-6 algorithm.
type Optimizer struct {
	problem *Problem
	opts    Options
	counter Counter
	cache   evalcache.Wrapper // nil when Options.NoEvalCache is set
	sim0    SimCounters       // simulator counters at construction time
	p       *Problem          // instrumented (and possibly cached) copy
}

// NewOptimizer validates the problem and prepares an instrumented copy.
// Unless Options.NoEvalCache is set, evaluations are memoized: the
// counter sits between the cache and the simulator, so Result.Simulations
// counts only evaluations that actually ran.
func NewOptimizer(problem *Problem, opts Options) (*Optimizer, error) {
	if err := problem.Validate(); err != nil {
		return nil, err
	}
	opts.defaults()
	o := &Optimizer{problem: problem, opts: opts}
	o.p = o.counter.Instrument(problem)
	if !opts.NoEvalCache {
		if opts.EvalCache != nil {
			o.cache = opts.EvalCache
		} else {
			o.cache = evalcache.New(opts.EvalCacheSize)
		}
		o.p = o.cache.Wrap(o.p)
	}
	if opts.NoConstraints {
		o.p.Constraints = nil
	}
	if problem.SimConfigure != nil {
		problem.SimConfigure(SimOptions{SweepWorkers: opts.SweepWorkers})
	}
	if problem.SimStats != nil {
		o.sim0 = problem.SimStats()
	}
	return o, nil
}

func (o *Optimizer) logf(format string, args ...any) {
	if o.opts.Log != nil {
		fmt.Fprintf(o.opts.Log, format+"\n", args...)
	}
}

// Run executes the optimization without external cancellation; see
// RunContext.
func (o *Optimizer) Run() (*Result, error) {
	return o.RunContext(context.Background())
}

// emit forwards a progress event to the Options.Progress hook, if set.
func (o *Optimizer) emit(stage string, iteration, attempt int, it *Iteration) {
	if o.opts.Progress == nil {
		return
	}
	o.opts.Progress(ProgressEvent{
		Stage:      stage,
		Iteration:  iteration,
		Attempt:    attempt,
		ModelYield: it.ModelYield,
		MCYield:    it.MCYield,
		Design:     append([]float64(nil), it.Design...),
	})
}

// RunContext executes: feasible start (Sec. 5.5), then MaxIterations
// cycles of constraint linearization (Eq. 15), worst-case analysis
// (Eqs. 2 and 8), spec-wise linearization (Eq. 16, with Eqs. 21–22
// mirrors), sampled-yield coordinate search (Eqs. 17–20) and a
// simulation-based line search (Eq. 23). The state before each cycle —
// and the final state — is recorded, so a run with MaxIterations=2
// yields the three table blocks.
//
// Cancelling ctx stops the run promptly — between optimizer stages and
// between individual Monte-Carlo verification samples — and returns
// ctx.Err().
func (o *Optimizer) RunContext(ctx context.Context) (*Result, error) {
	p := o.p
	opts := o.opts
	res := &Result{Problem: o.problem}

	// Initial step: find a feasible starting point.
	d := p.InitialDesign()
	if p.Constraints != nil {
		df, err := feasopt.FeasibleStart(p, d, 0)
		if err != nil {
			o.logf("feasible start: %v (continuing from best effort)", err)
		}
		if df != nil {
			d = df
		}
	}

	seed := opts.Seed
	coordOpts := opts.Coord

	// score ranks iteration states: verified yield when available,
	// model-estimated yield otherwise.
	score := func(it *Iteration) float64 {
		if opts.SkipVerify {
			return it.ModelYield
		}
		return it.MCYield
	}

	cur, _, est, err := o.analyze(ctx, d, seed)
	if err != nil {
		return nil, err
	}
	o.logf("initial: model yield %.4f, MC yield %.4f", cur.ModelYield, cur.MCYield)
	res.Iterations = append(res.Iterations, *cur)
	o.emit("initial", 0, 0, cur)

	rejections := 0
	for accepted, attempt := 0, 0; accepted < opts.MaxIterations && attempt < opts.MaxIterations+4; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Linearize the feasibility region at the current point (Eq. 15).
		var lc *coord.LinearConstraints
		if p.Constraints != nil {
			lc, err = feasopt.Linearize(p, d, 0)
			if err != nil {
				return nil, err
			}
		}

		// Maximize the sampled yield estimate by coordinate search.
		sr := coord.Search(designBox(p), est, lc, d, coordOpts)
		o.logf("attempt %d: coordinate search yield %.4f after %d passes", attempt, sr.Yield, sr.Passes)
		if !sr.Moved {
			o.logf("attempt %d: no improving move found; stopping", attempt)
			break
		}

		// Pull the optimum back into the true feasibility region (Eq. 23).
		var dNew []float64
		if p.Constraints != nil {
			gamma, dn, err := feasopt.LineSearch(p, d, sr.D, 0)
			if err != nil {
				return nil, err
			}
			o.logf("attempt %d: line search gamma %.3f", attempt, gamma)
			dNew = dn
		} else {
			dNew = p.ClampDesign(sr.D)
		}

		next, _, estNew, err := o.analyze(ctx, dNew, seed+uint64(attempt)+1)
		if err != nil {
			return nil, err
		}
		o.logf("attempt %d: model yield %.4f, MC yield %.4f", attempt, next.ModelYield, next.MCYield)

		// Accept/reject: the loop runs "until no further improvement of
		// the yield". A step that loses yield is rejected; the design
		// stays put, the trust region shrinks (the models were
		// over-trusted) and the search reuses the current models.
		if score(next) < score(cur)-0.02 {
			newTrust := trustOf(coordOpts) / 2
			rejections++
			o.logf("attempt %d: yield regressed (%.4f < %.4f); trust -> %.2f",
				attempt, score(next), score(cur), newTrust)
			o.emit("rejected", accepted, attempt+1, next)
			if newTrust < 1.2 || rejections > 3 {
				break
			}
			coordOpts.TrustFactor = newTrust
			if coordOpts.TrustFrac <= 0 {
				coordOpts.TrustFrac = 0.35
			}
			coordOpts.TrustFrac /= 2
			continue
		}
		d = dNew
		cur, est = next, estNew
		res.Iterations = append(res.Iterations, *cur)
		accepted++
		o.emit("accepted", accepted, attempt+1, cur)
	}

	res.FinalDesign = d
	res.Simulations = o.counter.Evals()
	res.ConstraintSims = o.counter.ConstraintEvals()
	if o.cache != nil {
		res.EvalCache = o.cache.Stats()
	}
	if o.problem.SimStats != nil {
		// Report only this run's share of the (problem-cumulative)
		// simulator counters.
		now := o.problem.SimStats()
		res.Sim = SimCounters{
			WarmStarts:     now.WarmStarts - o.sim0.WarmStarts,
			WarmConverged:  now.WarmConverged - o.sim0.WarmConverged,
			Fallbacks:      now.Fallbacks - o.sim0.Fallbacks,
			NewtonIters:    now.NewtonIters - o.sim0.NewtonIters,
			Solver:         now.Solver,
			Factorizations: now.Factorizations - o.sim0.Factorizations,
			Solves:         now.Solves - o.sim0.Solves,
			SymbolicFacts:  now.SymbolicFacts - o.sim0.SymbolicFacts,
			MatrixNNZ:      now.MatrixNNZ,
			FactorNNZ:      now.FactorNNZ,
			DCSolveNanos:   now.DCSolveNanos - o.sim0.DCSolveNanos,
			ACSolveNanos:   now.ACSolveNanos - o.sim0.ACSolveNanos,
			TranSolveNanos: now.TranSolveNanos - o.sim0.TranSolveNanos,
		}
	}
	return res, nil
}

// trustOf reads the effective trust factor from coordinate options.
func trustOf(o coord.Options) float64 {
	if o.TrustFactor <= 0 {
		return 2.5
	}
	return o.TrustFactor
}

// designBox extracts the design-space box constraint for the search.
func designBox(p *Problem) coord.Box {
	box := coord.Box{
		Lo:  make([]float64, p.NumDesign()),
		Hi:  make([]float64, p.NumDesign()),
		Log: make([]bool, p.NumDesign()),
	}
	for k, prm := range p.Design {
		box.Lo[k], box.Hi[k], box.Log[k] = prm.Lo, prm.Hi, prm.LogScale
	}
	return box
}

// analyze performs the worst-case analysis and model build at design d and
// assembles the iteration record (including the optional MC verification).
func (o *Optimizer) analyze(ctx context.Context, d []float64, seed uint64) (*Iteration, []*linmodel.SpecModel, *linmodel.Estimator, error) {
	p := o.p
	opts := o.opts
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	// Worst-case operating points (Eq. 2) at the nominal statistical point.
	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := wcd.RefineTheta(p, d, zeroS, thetaRes, opts.RefineThetaPasses); err != nil {
		return nil, nil, nil, err
	}

	// Worst-case statistical points (Eq. 8) per spec. The searches are
	// independent, so they run concurrently (the paper used a machine
	// cluster for the same reason); seeds are per-spec, so the result is
	// identical to the serial run.
	wcs := make([]*wcd.WorstCase, p.NumSpecs())
	wcErrs := make([]error, p.NumSpecs())
	var wg sync.WaitGroup
	for i := range p.Specs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			theta := thetaRes.PerSpec[i]
			marginFn := func(s []float64) (float64, error) {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
				vals, err := p.Eval(d, s, theta)
				if err != nil {
					return 0, err
				}
				return p.Specs[i].Margin(vals[i]), nil
			}
			wcOpts := opts.WC
			if wcOpts.Seed == 0 {
				wcOpts.Seed = seed + uint64(i)*1000003
			} else {
				// A pinned WC seed (Options.WC.Seed) decouples the restart
				// stream from the run seed: the search becomes a pure
				// function of (d, spec), so seed sweeps vary only their
				// sampling streams — and share the WC simulations.
				wcOpts.Seed = opts.WC.Seed + uint64(i)*1000003
			}
			wcs[i], wcErrs[i] = wcd.FindWorstCase(marginFn, p.NumStat(), wcOpts)
		}()
	}
	wg.Wait()
	for _, err := range wcErrs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	// Spec-wise linear models (Eq. 16 / Eqs. 21–22).
	models, err := linmodel.Build(p, d, wcs, thetaRes.PerSpec, linmodel.BuildOptions{
		MirrorSpecs:    !opts.NoMirrorSpecs && !opts.LinearizeAtNominal,
		AtNominal:      opts.LinearizeAtNominal,
		QuadraticSpecs: opts.QuadraticSpecs,
	})
	if err != nil {
		return nil, nil, nil, err
	}

	var est *linmodel.Estimator
	if opts.LHS {
		est = linmodel.NewEstimatorLHS(models, p.NumStat(), opts.ModelSamples, rng.New(seed))
	} else {
		est = linmodel.NewEstimator(models, p.NumStat(), opts.ModelSamples, rng.New(seed))
	}
	pass, bad := est.Count(d)

	iter := &Iteration{
		Design:     append([]float64(nil), d...),
		Specs:      make([]SpecState, p.NumSpecs()),
		ModelYield: float64(pass) / float64(est.N),
		WorstCases: wcs,
		Models:     models,
	}
	for i := range p.Specs {
		iter.Specs[i] = SpecState{
			NominalMargin: thetaRes.Margins[i],
			BadPerMille:   1000 * float64(bad[i]) / float64(est.N),
			Beta:          wcs[i].Beta,
			ThetaWc:       thetaRes.PerSpec[i],
		}
	}

	iter.MCYield = -1
	if !opts.SkipVerify {
		mc, err := VerifyMCContext(ctx, p, d, thetaRes.PerSpec, opts.VerifySamples, seed^0xabcdef, opts.VerifyWorkers)
		if err != nil {
			return nil, nil, nil, err
		}
		iter.MCResult = mc
		iter.MCYield = mc.Estimate.Yield()
		for i := range p.Specs {
			iter.Specs[i].MCMean = mc.Moments[i].Mean()
			iter.Specs[i].MCSigma = mc.Moments[i].Sigma()
			iter.Specs[i].MCBad = mc.BadPerSpec[i]
		}
	}
	return iter, models, est, nil
}

// NewAndRun is a convenience wrapper: validate, construct and run.
func NewAndRun(p *Problem, opts Options) (*Result, error) {
	o, err := NewOptimizer(p, opts)
	if err != nil {
		return nil, err
	}
	return o.Run()
}
