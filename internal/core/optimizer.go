package core

import (
	"context"
	"io"

	"specwise/internal/coord"
	"specwise/internal/evalcache"
	"specwise/internal/linmodel"
	"specwise/internal/wcd"
)

// Options configures the yield optimizer. The zero value gives the paper's
// setup: functional constraints on, worst-case linearization, mirrored
// specs, 10,000 model samples and 300 verification samples.
type Options struct {
	// Algorithm selects the search backend driving the run. The empty
	// string selects DefaultAlgorithm (the paper's feasibility-guided
	// coordinate search); any other value must name a registered
	// SearchBackend — importing specwise/internal/search registers the
	// built-in set.
	Algorithm string
	// ModelSamples is N for the linear-model yield estimate (Eq. 17).
	ModelSamples int
	// VerifySamples is the simulation-based Monte-Carlo sample size.
	VerifySamples int
	// MaxIterations bounds the outer linearize/search/line-search loop.
	MaxIterations int
	// Seed drives every random stream of the run. A zero Seed selects
	// the paper's default stream unless HasSeed is set.
	Seed uint64
	// HasSeed marks Seed as explicitly chosen, making seed 0 a real,
	// requestable stream instead of shorthand for the default.
	HasSeed bool
	// NoConstraints disables the functional constraints entirely — the
	// Table-3 ablation.
	NoConstraints bool
	// LinearizeAtNominal builds the spec models at s = 0 instead of the
	// worst-case points — the Table-4 ablation.
	LinearizeAtNominal bool
	// NoMirrorSpecs disables the quadratic-performance mirror models of
	// Eqs. 21–22.
	NoMirrorSpecs bool
	// SkipVerify skips the simulation-based Monte-Carlo verification
	// (used by cheap smoke tests; table runs keep it on).
	SkipVerify bool
	// LHS draws the linear-model yield samples by Latin-hypercube
	// stratification instead of plain Monte Carlo, reducing estimator
	// noise at the same N (an extension beyond the paper's setup).
	LHS bool
	// RefineThetaPasses enables golden-section refinement of the
	// worst-case operating points after corner enumeration, catching
	// interior worst cases (e.g. mid-range phase-margin dips). 0 = off.
	RefineThetaPasses int
	// QuadraticSpecs upgrades detected quadratic performances from the
	// paper's linear+mirror pair to a radial-quadratic model at the same
	// simulation cost (extension; see the QuadStudy experiment).
	QuadraticSpecs bool
	// NoEvalCache disables the evaluation memoization cache, forcing
	// every (d, s, θ) point back to the simulator. Results are
	// bit-identical either way (the cache keys on exact bit patterns);
	// the switch exists for ablation and the determinism tests.
	NoEvalCache bool
	// EvalCache, when non-nil, replaces the run's private memoization
	// cache — typically a problem-scoped evalcache.Shared view, so sweep
	// members reuse each other's simulations. Ignored when NoEvalCache is
	// set. Bit-exact keying keeps results identical either way.
	EvalCache evalcache.Wrapper
	// EvalCacheSize caps the number of memoized evaluation points.
	// 0 selects evalcache.DefaultMaxEntries.
	EvalCacheSize int
	// VerifyWorkers bounds the Monte-Carlo verification worker pool.
	// 0 means GOMAXPROCS. Verification results are bit-identical for
	// every setting.
	VerifyWorkers int
	// SweepWorkers bounds the per-frequency fan-out inside each AC
	// sweep when the problem's simulator supports it (see
	// problem.SimOptions). 0 means GOMAXPROCS; results are
	// bit-identical for every setting.
	SweepWorkers int
	// Speculate enables the deterministic predict-ahead pipeline: while
	// the authoritative search step runs, a background pool pre-simulates
	// the design points the backend predicts for its next step into the
	// evaluation cache (see Speculator). Results — every accept/reject,
	// every rng draw, every counter — are bit-identical with speculation
	// on or off at any worker count; mispredictions only waste idle
	// cycles, and speculative work runs at strictly lower scheduler
	// priority than the foreground pools. Requires the evaluation cache
	// (ignored under NoEvalCache) and a backend implementing Speculator
	// (ignored otherwise).
	Speculate bool
	// SpecWorkers bounds the speculation pool. 0 means GOMAXPROCS. Only
	// meaningful with Speculate set.
	SpecWorkers int
	// WC tunes the worst-case distance searches.
	WC wcd.Options
	// Coord tunes the coordinate search.
	Coord coord.Options
	// Log, when non-nil, receives human-readable progress lines.
	Log io.Writer
	// Progress, when non-nil, receives one event after every completed
	// analysis (the initial state and each accepted or rejected step).
	// It is called synchronously from the optimizer goroutine.
	Progress func(ProgressEvent)
}

// ProgressEvent is one optimizer milestone, emitted through
// Options.Progress so that long runs (e.g. jobs behind a service) can
// report live state.
type ProgressEvent struct {
	// Stage is "initial", "accepted" or "rejected".
	Stage string
	// Iteration counts accepted optimizer states so far (0 = initial).
	Iteration int
	// Attempt counts linearize/search/line-search cycles tried.
	Attempt int
	// ModelYield is the linear-model yield estimate at the analyzed point.
	ModelYield float64
	// MCYield is the verified yield (-1 when verification is off).
	MCYield float64
	// Design is a copy of the analyzed design point.
	Design []float64
}

func (o *Options) defaults() {
	if o.ModelSamples == 0 {
		o.ModelSamples = 10000
	}
	if o.VerifySamples == 0 {
		o.VerifySamples = 300
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 2
	}
	if o.Seed == 0 && !o.HasSeed {
		o.Seed = 20010618 // DAC 2001 opening day
	}
}

// SpecState is one spec's situation at an iteration point, mirroring the
// per-spec rows of the paper's Tables 1, 3, 4 and 6.
type SpecState struct {
	// NominalMargin is f(d, s0, θ_wc) − f_b in the normalized ">= 0 is
	// good" sense (the paper's f − f_b rows, sign-adjusted for ≤ specs).
	NominalMargin float64
	// BadPerMille is the linear-model bad-sample rate in ‰ (Eq. 18).
	BadPerMille float64
	// Beta is the signed worst-case distance.
	Beta float64
	// ThetaWc is the spec's worst-case operating point.
	ThetaWc []float64
	// MCMean / MCSigma are the verification-run performance moments.
	MCMean, MCSigma float64
	// MCBad counts verification samples violating the spec.
	MCBad int
}

// Iteration is the full record of one optimizer state (the "Initial",
// "1st Iter", "2nd Iter" blocks of the paper's tables).
type Iteration struct {
	Design     []float64
	Specs      []SpecState
	ModelYield float64 // Ȳ over the linear models at Design
	MCYield    float64 // Ỹ from simulation (NaN when verification is off)
	MCResult   *MCResult
	WorstCases []*wcd.WorstCase
	Models     []*linmodel.SpecModel
}

// Result is the outcome of a full optimization run.
type Result struct {
	Problem *Problem
	// Algorithm names the search backend that produced the run.
	Algorithm string
	// Iterations[0] is the initial state; each further entry is a state
	// the backend recorded along the way (for the default backend, one
	// per accepted linearize → search → line-search cycle).
	Iterations  []Iteration
	FinalDesign []float64
	// Simulations totals the full performance evaluations that actually
	// reached the simulator (cache hits are excluded).
	Simulations int64
	// ConstraintSims totals the DC-only constraint evaluations that
	// reached the simulator.
	ConstraintSims int64
	// EvalCache reports the memoization-cache counters of the run
	// (zero when Options.NoEvalCache disabled the cache).
	EvalCache evalcache.Stats
	// Speculation reports the predict-ahead pipeline's effort (zero when
	// Options.Speculate was off or the backend cannot predict).
	Speculation SpecStats
	// Sim reports the simulator-side effort counters (DC warm starts,
	// homotopy fallbacks, Newton iterations) when the problem exposes
	// them through Problem.SimStats; zero otherwise.
	Sim SimCounters
}

// Optimizer pairs the engine with a search backend. The default backend
// runs the paper's Fig.-6 algorithm.
type Optimizer struct {
	eng     *Engine
	backend SearchBackend
}

// NewOptimizer validates the problem, resolves the search backend named
// by Options.Algorithm and prepares an instrumented engine. Unless
// Options.NoEvalCache is set, evaluations are memoized: the counter sits
// between the cache and the simulator, so Result.Simulations counts only
// evaluations that actually ran.
func NewOptimizer(problem *Problem, opts Options) (*Optimizer, error) {
	if err := problem.Validate(); err != nil {
		return nil, err
	}
	opts.defaults()
	backend, err := backendFor(opts.Algorithm)
	if err != nil {
		return nil, err
	}
	return &Optimizer{eng: newEngine(problem, opts), backend: backend}, nil
}

// Run executes the optimization without external cancellation; see
// RunContext.
func (o *Optimizer) Run() (*Result, error) {
	return o.RunContext(context.Background())
}

// RunContext executes the selected search backend against the engine:
// Init finds and analyzes the starting point, then Step runs search
// cycles until the backend converges. With the default feasguided
// backend this is the paper's algorithm — feasible start (Sec. 5.5),
// then MaxIterations cycles of constraint linearization (Eq. 15),
// worst-case analysis (Eqs. 2 and 8), spec-wise linearization (Eq. 16,
// with Eqs. 21–22 mirrors), sampled-yield coordinate search
// (Eqs. 17–20) and a simulation-based line search (Eq. 23) — so a run
// with MaxIterations=2 yields the three table blocks.
//
// Cancelling ctx stops the run promptly — between optimizer stages and
// between individual Monte-Carlo verification samples — and returns
// ctx.Err().
func (o *Optimizer) RunContext(ctx context.Context) (*Result, error) {
	return o.eng.run(ctx, o.backend)
}

// NewAndRun is a convenience wrapper: validate, construct and run.
func NewAndRun(p *Problem, opts Options) (*Result, error) {
	o, err := NewOptimizer(p, opts)
	if err != nil {
		return nil, err
	}
	return o.Run()
}
