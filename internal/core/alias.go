// Package core implements the paper's primary contribution: the iterative
// direct yield optimizer of Fig. 6, built from spec-wise linearization at
// worst-case points (Sec. 5.2), feasibility-region linearization
// (Sec. 5.1), a sampled-yield coordinate search (Sec. 5.3), a
// simulation-based line search (Sec. 5.4) and a feasible-start search
// (Sec. 5.5). The problem abstraction lives in internal/problem and is
// re-exported here so that callers deal with a single package.
package core

import "specwise/internal/problem"

// Aliases re-exporting the problem abstraction.
type (
	// Problem is the black-box circuit abstraction the optimizer runs on.
	Problem = problem.Problem
	// Spec is one performance specification with its bound.
	Spec = problem.Spec
	// SpecKind distinguishes >= from <= specifications.
	SpecKind = problem.SpecKind
	// Param is a bounded design parameter.
	Param = problem.Param
	// OpRange is one operating parameter with its tolerance range.
	OpRange = problem.OpRange
	// EvalFunc evaluates all performances at one parameter point.
	EvalFunc = problem.EvalFunc
	// ConstraintFunc evaluates the functional constraints c(d) >= 0.
	ConstraintFunc = problem.ConstraintFunc
	// Counter tallies simulator invocations for effort reporting.
	Counter = problem.Counter
	// SimCounters reports simulator-side effort (DC warm starts,
	// homotopy fallbacks, Newton iterations).
	SimCounters = problem.SimCounters
	// SimOptions is behaviour-preserving simulator tuning (worker
	// fan-out) applied through Problem.SimConfigure.
	SimOptions = problem.SimOptions
)

// Re-exported spec-kind constants.
const (
	// GE means the performance must satisfy f >= Bound.
	GE = problem.GE
	// LE means the performance must satisfy f <= Bound.
	LE = problem.LE
)
