package core

import (
	"context"
	"math"
	"testing"
)

// TestVerifyMCWorkerDeterminism pins the verification pool's contract:
// the sample stream is drawn up front and results land by index, so the
// estimate, per-spec counts and moments are bit-identical for every
// worker count.
func TestVerifyMCWorkerDeterminism(t *testing.T) {
	p := analyticProblem()
	thetas := [][]float64{{0}, {0}}
	run := func(workers int) *MCResult {
		mc, err := VerifyMCContext(context.Background(), p, p.InitialDesign(), thetas, 400, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		return mc
	}
	ref := run(1)
	for _, workers := range []int{2, 5, 16} {
		got := run(workers)
		if got.Estimate != ref.Estimate {
			t.Fatalf("workers=%d: estimate %+v, want %+v", workers, got.Estimate, ref.Estimate)
		}
		if got.Evals != ref.Evals {
			t.Fatalf("workers=%d: evals %d, want %d", workers, got.Evals, ref.Evals)
		}
		for i := range ref.BadPerSpec {
			if got.BadPerSpec[i] != ref.BadPerSpec[i] {
				t.Fatalf("workers=%d: BadPerSpec[%d] = %d, want %d", workers, i, got.BadPerSpec[i], ref.BadPerSpec[i])
			}
			gm, rm := got.Moments[i], ref.Moments[i]
			if math.Float64bits(gm.Mean()) != math.Float64bits(rm.Mean()) ||
				math.Float64bits(gm.Sigma()) != math.Float64bits(rm.Sigma()) {
				t.Fatalf("workers=%d: moments[%d] = (%v, %v), want (%v, %v)",
					workers, i, gm.Mean(), gm.Sigma(), rm.Mean(), rm.Sigma())
			}
		}
	}
}
